package repro

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/sim"
)

// TestMetamorphicRADSvsCFDS: the DRAM reorganization is supposed to be
// invisible to the outside world. Feed the exact same arrival/request
// trace to a RADS buffer and to CFDS buffers at several granularities:
// the delivered cell streams must be identical (the delivery *timing*
// shifts by each configuration's fixed pipeline, but order and content
// may not change).
func TestMetamorphicRADSvsCFDS(t *testing.T) {
	const (
		queues = 8
		slots  = 20000
	)
	type event struct {
		arrival, request cell.QueueID
	}

	for seed := int64(1); seed <= 5; seed++ {
		// Pre-generate a trace that is valid for any buffer: track a
		// reference occupancy so requests never exceed arrivals. All
		// buffers see the same trace because their externally visible
		// acceptance behaviour is identical (unbounded DRAM).
		rng := rand.New(rand.NewSource(seed))
		trace := make([]event, slots)
		occ := make([]int, queues)
		pending := 0
		for i := range trace {
			e := event{arrival: cell.NoQueue, request: cell.NoQueue}
			if rng.Intn(10) < 8 {
				q := rng.Intn(queues)
				e.arrival = cell.QueueID(q)
				occ[q]++
			}
			if rng.Intn(10) < 7 {
				// Random requestable queue under the reference model.
				start := rng.Intn(queues)
				for k := 0; k < queues; k++ {
					q := (start + k) % queues
					if occ[q] > 0 {
						e.request = cell.QueueID(q)
						occ[q]--
						pending++
						break
					}
				}
			}
			trace[i] = e
		}

		run := func(bsmall int) []cell.Cell {
			buf, err := core.New(core.Config{Q: queues, B: 8, Bsmall: bsmall, Banks: 16})
			if err != nil {
				t.Fatal(err)
			}
			var delivered []cell.Cell
			for i, e := range trace {
				out, err := buf.Tick(core.TickInput{Arrival: e.arrival, Request: e.request})
				if err != nil {
					t.Fatalf("seed %d b=%d slot %d: %v", seed, bsmall, i, err)
				}
				if out.Delivered != nil {
					delivered = append(delivered, *out.Delivered)
				}
			}
			// Flush the pipeline: idle ticks until everything requested
			// has been delivered.
			for i := 0; i < 100000 && len(delivered) < pending; i++ {
				out, err := buf.Tick(core.TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue})
				if err != nil {
					t.Fatalf("seed %d b=%d flush: %v", seed, bsmall, err)
				}
				if out.Delivered != nil {
					delivered = append(delivered, *out.Delivered)
				}
			}
			return delivered
		}

		reference := run(8) // RADS
		for _, b := range []int{4, 2, 1} {
			got := run(b)
			if len(got) != len(reference) {
				t.Fatalf("seed %d b=%d: delivered %d cells, RADS delivered %d",
					seed, b, len(got), len(reference))
			}
			for i := range got {
				if got[i] != reference[i] {
					t.Fatalf("seed %d b=%d: delivery %d = %v, RADS %v",
						seed, b, i, got[i], reference[i])
				}
			}
		}
		if len(reference) != pending {
			t.Fatalf("seed %d: delivered %d of %d requested", seed, len(reference), pending)
		}
	}
}

// TestPaperScaleConfiguration runs the Figure 10 design point (Q=512,
// B=32, b=4, M=256) long enough to cycle the whole pipeline several
// times.
func TestPaperScaleConfiguration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	buf, err := core.New(core.Config{Q: 512, B: 32, Bsmall: 4, Banks: 256})
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := sim.NewRoundRobinArrivals(512, 1.0)
	req, _ := sim.NewRoundRobinDrain(512)
	warm := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
	if _, err := warm.Run(512 * 32); err != nil {
		t.Fatal(err)
	}
	r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	res, err := r.Run(60000)
	if err != nil {
		t.Fatalf("%v (stats %v)", err, res.Stats)
	}
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.Stats)
	}
	cfg := buf.Config()
	if res.Stats.HeadHighWater > cfg.HeadSRAMCells {
		t.Errorf("head high-water %d exceeds capacity %d", res.Stats.HeadHighWater, cfg.HeadSRAMCells)
	}
	d := cfg.Dimension()
	if res.Stats.DSS.MaxSkips > cfg.IssuesPerCycle*d.MaxSkips() {
		t.Errorf("skips %d exceed bound %d", res.Stats.DSS.MaxSkips, cfg.IssuesPerCycle*d.MaxSkips())
	}
}

// TestQuickRandomConfigurations property-checks New+Tick across random
// small geometries: any configuration the validator accepts must run
// the adversary cleanly.
func TestQuickRandomConfigurations(t *testing.T) {
	f := func(qRaw, bExp, mExp uint8, seed int64) bool {
		queues := int(qRaw)%12 + 1
		bigB := 8
		b := 1 << (int(bExp) % 4) // 1,2,4,8
		banks := (bigB / b) << (int(mExp) % 3)
		cfg := core.Config{Q: queues, B: bigB, Bsmall: b, Banks: banks}
		buf, err := core.New(cfg)
		if err != nil {
			// Geometry rejected by validation — fine, skip.
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			in := core.TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
			if rng.Intn(10) < 8 {
				in.Arrival = cell.QueueID(rng.Intn(queues))
			}
			q := cell.QueueID(rng.Intn(queues))
			if buf.Requestable(q) > 0 && rng.Intn(10) < 8 {
				in.Request = q
			}
			if _, err := buf.Tick(in); err != nil {
				t.Logf("cfg %+v: %v", cfg, err)
				return false
			}
		}
		return buf.Stats().Clean()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCellConservationEndToEnd runs a long mixed workload and then
// drains completely: arrivals must equal deliveries exactly.
func TestCellConservationEndToEnd(t *testing.T) {
	buf, err := core.New(core.Config{Q: 16, B: 8, Bsmall: 2, Banks: 32})
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := sim.NewBurstyArrivals(16, 24, 8, 21)
	req, _ := sim.NewUniformRequests(16, 0.6, 22)
	r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	if _, err := r.Run(40000); err != nil {
		t.Fatal(err)
	}
	drain, _ := sim.NewRoundRobinDrain(16)
	r.Requests = drain
	if _, _, err := r.Drain(400000); err != nil {
		t.Fatal(err)
	}
	st := buf.Stats()
	if st.Arrivals != st.Deliveries {
		t.Fatalf("arrivals %d != deliveries %d", st.Arrivals, st.Deliveries)
	}
	for q := cell.QueueID(0); q < 16; q++ {
		if buf.Len(q) != 0 {
			t.Errorf("Len(%d) = %d after drain", q, buf.Len(q))
		}
	}
}
