package repro

import (
	"testing"

	"repro/pktbuf"
	psim "repro/pktbuf/sim"
)

// ------------------------------------------------------------------
// BenchmarkPktbuf* façade suite: the same steady-state workloads as
// the internal BenchmarkTick* suite, driven entirely through the
// public API. The façade is required to be the fast path: steady
// state must report 0 allocs/op (Output has value semantics, the
// runner and generator adapters are allocation-free) and land within
// ~10% of the equivalent internal numbers. Baselines live in
// BENCH_baseline.json.
// ------------------------------------------------------------------

// oc3072 is the public equivalent of the internal OC-3072 design
// point (Q=64, B=32, b=4, M=256, CAM SRAM).
func oc3072() pktbuf.Config {
	return pktbuf.Config{Queues: 64, LineRate: pktbuf.OC3072, Granularity: 4, Banks: 256}
}

// newSteadyFacade builds a buffer and drives it to the adversarial
// steady state: warmup backlog first, then full-rate round-robin
// arrivals against the §3 round-robin drain.
func newSteadyFacade(tb testing.TB, cfg pktbuf.Config, queues int) (*pktbuf.Buffer, psim.ArrivalProcess, psim.RequestPolicy) {
	tb.Helper()
	buf, err := pktbuf.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	arr, _ := psim.NewRoundRobinArrivals(queues, 1.0)
	req, _ := psim.NewRoundRobinDrain(queues)
	bigB := buf.Sizing().GranularityB
	warm := &psim.Runner{Buffer: buf, Arrivals: arr, Requests: psim.NewIdleRequests()}
	if _, err := warm.Run(uint64(queues * bigB * 4)); err != nil {
		tb.Fatal(err)
	}
	steady := &psim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	if _, err := steady.Run(uint64(queues * bigB * 8)); err != nil {
		tb.Fatal(err)
	}
	return buf, arr, req
}

func benchPktbufTickSteadyState(b *testing.B, cfg pktbuf.Config, queues int) {
	b.Helper()
	buf, arr, req := newSteadyFacade(b, cfg, queues)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := pktbuf.Input{Arrival: arr.Next(buf.Now()), Request: req.Next(buf.Now(), buf)}
		if _, err := buf.Tick(in); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if buf.Stats().Misses != 0 {
		b.Fatalf("misses: %+v", buf.Stats())
	}
}

// BenchmarkPktbufTickOC3072SteadyState is the façade twin of the
// internal BenchmarkTickOC3072SteadyState regression gate.
func BenchmarkPktbufTickOC3072SteadyState(b *testing.B) {
	benchPktbufTickSteadyState(b, oc3072(), 64)
}

// BenchmarkPktbufTickIdle measures the per-slot façade floor with no
// traffic (pipeline bookkeeping plus the Output conversion).
func BenchmarkPktbufTickIdle(b *testing.B) {
	buf, err := pktbuf.New(oc3072())
	if err != nil {
		b.Fatal(err)
	}
	in := pktbuf.Input{Arrival: pktbuf.None, Request: pktbuf.None}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buf.Tick(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPktbufTickBatch pushes the steady-state workload through
// the TickBatch entry point with precomputed input batches: in the
// steady state one arrival plus one request per slot, both cycling
// the queues round-robin, keeps every occupancy constant, so the
// stimulus is a fixed repeating pattern.
func BenchmarkPktbufTickBatch(b *testing.B) {
	const queues = 64
	buf, _, _ := newSteadyFacade(b, oc3072(), queues)
	const batch = 2048 // multiple of queues, so batches tile the cycle
	in := make([]pktbuf.Input, batch)
	out := make([]pktbuf.Output, batch)
	for i := range in {
		q := pktbuf.Queue(i % queues)
		in[i] = pktbuf.Input{Arrival: q, Request: q}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for left := b.N; left > 0; {
		n := batch
		if left < n {
			n = left
		}
		if _, err := buf.TickBatch(in[:n], out[:n]); err != nil {
			b.Fatal(err)
		}
		left -= n
	}
	b.StopTimer()
	if buf.Stats().Misses != 0 {
		b.Fatalf("misses: %+v", buf.Stats())
	}
}

// BenchmarkPktbufRunBatch is the acceptance gate for the public
// driver: the full public sim.Runner batched loop (generator
// adapters included) on the OC-3072 steady state. It must report 0
// allocs/op and stay within ~10% of the internal
// BenchmarkTickOC3072SteadyState number.
func BenchmarkPktbufRunBatch(b *testing.B) {
	const queues = 64
	buf, arr, req := newSteadyFacade(b, oc3072(), queues)
	r := &psim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	// Prime the runner's scratch so the timed region allocates nothing.
	if _, err := r.RunBatch(1, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := r.RunBatch(uint64(b.N), 0)
	if err != nil {
		b.Fatalf("%v (stats %+v)", err, res.Stats)
	}
	b.StopTimer()
	if res.Stats.Misses != 0 {
		b.Fatalf("misses: %+v", res.Stats)
	}
}

// TestFacadeSteadyStateZeroAlloc asserts the façade hot paths
// allocate nothing in steady state — the allocs/op gate as a plain
// test, so `go test` catches a regression without running benchmarks.
func TestFacadeSteadyStateZeroAlloc(t *testing.T) {
	const queues = 64
	buf, arr, req := newSteadyFacade(t, oc3072(), queues)

	if avg := testing.AllocsPerRun(5000, func() {
		in := pktbuf.Input{Arrival: arr.Next(buf.Now()), Request: req.Next(buf.Now(), buf)}
		if _, err := buf.Tick(in); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state Tick allocates %.1f per slot, want 0", avg)
	}

	in := make([]pktbuf.Input, queues)
	out := make([]pktbuf.Output, queues)
	for i := range in {
		q := pktbuf.Queue(i % queues)
		in[i] = pktbuf.Input{Arrival: q, Request: q}
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := buf.TickBatch(in, out); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state TickBatch allocates %.1f per batch, want 0", avg)
	}

	r := &psim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	if _, err := r.RunBatch(64, 0); err != nil { // prime the scratch buffer
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := r.RunBatch(256, 0); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state Runner.RunBatch allocates %.1f per call, want 0", avg)
	}
}
