// Command pktbufd serves the hybrid SRAM/DRAM packet buffer over the
// network: a long-lived daemon wrapping one engine instance behind
// the repro/pktbuf/serve layer. Clients speak the length-prefixed
// wire protocol on -listen (handshake for flows, submit cells,
// receive deliveries with typed backpressure); operators scrape
// Prometheus-text metrics and health on -http and stop the daemon
// with SIGINT/SIGTERM, which drains gracefully: admission closes,
// every in-flight cell is delivered, connections are confirmed with
// Bye, then the process exits.
//
// With -checkpoint the daemon is crash-safe: the engine state and
// session table are written atomically (tmp file + rename) on a
// -checkpoint-every cadence and again on SIGINT/SIGTERM, which then
// exits immediately instead of draining; a successor booted with
// -restore resumes exactly where the checkpoint left off, and clients
// built on serve.DialWith reattach their sessions with no duplicate
// and no lost delivery. -resumable retains sessions across connection
// failures without checkpointing, and -keepalive reaps peers that go
// silent.
//
// Quickstart:
//
//	pktbufd -queues 16384 -listen :9950 -http :9951 \
//	    -checkpoint /var/lib/pktbufd.ckpt -checkpoint-every 10s -keepalive 5s
//	pktbufload -addr localhost:9950 -flows 10000 -duration 5s -retry 10
//	curl -s localhost:9951/metrics | grep pktbufd_
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pktbuf"
	"repro/pktbuf/serve"
)

// checkpointTo writes a crash-consistent checkpoint with an atomic
// tmp-file-then-rename, so a crash mid-write never corrupts the last
// good checkpoint.
func checkpointTo(srv *serve.Server, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := srv.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func lineRate(s string) (pktbuf.LineRate, error) {
	switch s {
	case "oc192":
		return pktbuf.OC192, nil
	case "oc768":
		return pktbuf.OC768, nil
	case "oc3072":
		return pktbuf.OC3072, nil
	}
	return 0, fmt.Errorf("unknown line rate %q (want oc192|oc768|oc3072)", s)
}

func main() {
	var (
		listen   = flag.String("listen", ":9950", "data-plane listen address (wire protocol)")
		httpAddr = flag.String("http", ":9951", "control-plane listen address (/metrics, /healthz; empty disables)")

		queues   = flag.Int("queues", 1024, "number of VOQs (Q)")
		rateName = flag.String("rate", "oc768", "line rate: oc192|oc768|oc3072")
		gran     = flag.Int("b", 2, "CFDS granularity b in cells")
		banks    = flag.Int("banks", 256, "DRAM banks (M)")
		bankCap  = flag.Int("bankcap", 0, "blocks per bank (0 = unbounded)")

		maxConns  = flag.Int("maxconns", 0, "max concurrent client connections (0 = default)")
		ring      = flag.Int("ring", 0, "per-connection ingress ring capacity in cells (0 = default)")
		window    = flag.Int("window", 0, "per-connection in-system window in cells (0 = auto from pipeline depth)")
		batch     = flag.Int("batch", 0, "serving-loop TickBatch size in slots (0 = default)")
		tickEvery = flag.Duration("tick", 0, "wall-clock pacing per slot (0 = free-running)")

		report       = flag.Duration("report", 0, "log an engine stats delta this often (0 = off)")
		drainTimeout = flag.Duration("draintimeout", 30*time.Second, "graceful drain budget on SIGINT/SIGTERM")

		resumable   = flag.Bool("resumable", false, "retain sessions of failed connections for resumption")
		keepAlive   = flag.Duration("keepalive", 0, "probe idle peers this often; reap after two silent intervals (0 = off)")
		ckptPath    = flag.String("checkpoint", "", "checkpoint file: written atomically on -checkpoint-every and on shutdown signals (implies -resumable)")
		ckptEvery   = flag.Duration("checkpoint-every", 0, "periodic checkpoint interval (0 = only at shutdown; needs -checkpoint)")
		restorePath = flag.String("restore", "", "boot from this checkpoint file instead of an empty buffer (implies -resumable)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "pktbufd: ", log.LstdFlags)

	rate, err := lineRate(*rateName)
	if err != nil {
		logger.Fatal(err)
	}
	cfg := serve.Config{
		Buffer: pktbuf.Config{
			Queues:             *queues,
			LineRate:           rate,
			Granularity:        *gran,
			Banks:              *banks,
			BankCapacityBlocks: *bankCap,
		},
		MaxConns:    *maxConns,
		IngressRing: *ring,
		Window:      *window,
		Batch:       *batch,
		TickEvery:   *tickEvery,
		Resumable:   *resumable || *ckptPath != "",
		KeepAlive:   *keepAlive,
		ErrorLog:    logger,
	}
	var srv *serve.Server
	if *restorePath != "" {
		f, err := os.Open(*restorePath)
		if err != nil {
			logger.Fatal(err)
		}
		srv, err = serve.RestoreServer(f, cfg)
		f.Close()
		if err != nil {
			logger.Fatalf("restore %s: %v", *restorePath, err)
		}
		logger.Printf("restored from %s; sessions resume on reconnect", *restorePath)
	} else {
		srv, err = serve.NewServer(cfg)
		if err != nil {
			logger.Fatal(err)
		}
	}
	sz := srv.Sizing()
	logger.Printf("engine: Q=%d b=%d lookahead=%d delay=%d slots, window=%d ring=%d",
		*queues, sz.Granularity, sz.Lookahead, sz.DelaySlots,
		srv.Config().Window, srv.Config().IngressRing)

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("data plane on %s", lis.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	var httpSrv *http.Server
	if *httpAddr != "" {
		ctlLis, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("control plane on %s", ctlLis.Addr())
		httpSrv = &http.Server{Handler: srv.Handler()}
		go func() {
			if err := httpSrv.Serve(ctlLis); err != nil && err != http.ErrServerClosed {
				logger.Printf("control plane: %v", err)
			}
		}()
	}

	var reportStop chan struct{}
	if *report > 0 {
		reportStop = make(chan struct{})
		go func() {
			prev := srv.BufferStats()
			prevSlots := srv.Slots()
			tick := time.NewTicker(*report)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					cur := srv.BufferStats()
					slots := srv.Slots()
					d := cur.Sub(prev)
					adm := srv.Admission()
					logger.Printf("interval: slots=%d arrivals=%d deliveries=%d bypasses=%d drops=%d ff=%d | conns=%d flows=%d rejected=%d",
						slots-prevSlots, d.Arrivals, d.Deliveries, d.Bypasses, d.Drops,
						d.FastForwardedSlots, adm.Conns, adm.Flows, adm.Rejected())
					prev, prevSlots = cur, slots
				case <-reportStop:
					return
				}
			}
		}()
	}

	var ckptStop chan struct{}
	if *ckptPath != "" && *ckptEvery > 0 {
		ckptStop = make(chan struct{})
		go func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := checkpointTo(srv, *ckptPath); err != nil {
						logger.Printf("checkpoint: %v", err)
					}
				case <-ckptStop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		logger.Printf("%v: stopping", got)
	case err := <-serveErr:
		logger.Fatalf("data plane: %v", err)
	}
	if ckptStop != nil {
		close(ckptStop)
	}
	if *ckptPath != "" {
		// Crash-safe stop: persist the full state — sessions and every
		// in-flight cell — and exit immediately. A successor started
		// with -restore picks up exactly here; clients ride through on
		// session resumption, so no drain is needed (or wanted: a drain
		// would throw the buffered cells' ordering guarantees to clients
		// that are mid-reconnect).
		if err := checkpointTo(srv, *ckptPath); err != nil {
			logger.Printf("final checkpoint: %v", err)
			os.Exit(1)
		}
		logger.Printf("checkpointed to %s; closing without drain", *ckptPath)
		srv.Close()
	} else if err := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		return srv.Shutdown(ctx)
	}(); err != nil {
		logger.Printf("drain failed (%v); closed hard", err)
		os.Exit(1)
	}
	if reportStop != nil {
		close(reportStop)
	}
	if httpSrv != nil {
		httpSrv.Close()
	}
	st := srv.BufferStats()
	adm := srv.Admission()
	logger.Printf("drained clean: slots=%d arrivals=%d deliveries=%d admitted=%d rejected=%d clean=%v",
		srv.Slots(), st.Arrivals, st.Deliveries, adm.Admitted, adm.Rejected(), st.Clean())
}
