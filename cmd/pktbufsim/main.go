// Command pktbufsim runs the slot-accurate packet-buffer simulator
// under a chosen workload and prints the invariant verdict and
// statistics. It is the general-purpose harness behind the paper's
// zero-miss and conflict-freedom claims, and it is built entirely on
// the public API (repro/pktbuf and its sim and trace subpackages).
//
// Example — the §3 adversarial pattern on a CFDS buffer:
//
//	pktbufsim -queues 64 -rate oc3072 -b 4 -slots 200000 \
//	          -arrivals roundrobin -requests rrdrain
//
// With -router the harness drives the full Figure-1 system instead:
// a sharded router engine (repro/pktbuf/router) with one VOQ buffer
// per input port, segmentation, an iSLIP fabric and output
// reassembly:
//
//	pktbufsim -router -ports 8 -classes 2 -b 4 -slots 200000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"repro/pktbuf"
	"repro/pktbuf/packet"
	"repro/pktbuf/router"
	"repro/pktbuf/sim"
	"repro/pktbuf/trace"
)

func lineRate(s string) (pktbuf.LineRate, error) {
	switch s {
	case "oc192":
		return pktbuf.OC192, nil
	case "oc768":
		return pktbuf.OC768, nil
	case "oc3072":
		return pktbuf.OC3072, nil
	default:
		return 0, fmt.Errorf("unknown rate %q (oc192|oc768|oc3072)", s)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pktbufsim: ")

	var (
		queues    = flag.Int("queues", 16, "number of VOQs (Q)")
		rateName  = flag.String("rate", "oc3072", "line rate: oc192|oc768|oc3072")
		gran      = flag.Int("b", 0, "CFDS granularity b in cells (0 = RADS baseline b=B)")
		banks     = flag.Int("banks", 256, "DRAM banks (M)")
		bankCap   = flag.Int("bankcap", 0, "blocks per bank (0 = unbounded)")
		renaming  = flag.Bool("renaming", false, "enable §6 queue renaming")
		lookahead = flag.Int("lookahead", 0, "MMA lookahead override in slots (0 = full ECQF lookahead Q(b-1)+1; small values shorten the request pipeline so sparse loads can fast-forward)")
		latSlots  = flag.Int("latslots", 0, "latency register override in slots (0 = equation (3) default; combine with -lookahead for a short pipeline)")
		orgName   = flag.String("org", "cam", "SRAM organization: cam|list")
		mmaName   = flag.String("mma", "ecqf", "head MMA: ecqf|mdqf")
		slots     = flag.Uint64("slots", 100000, "slots to simulate")
		report    = flag.Uint64("report", 0, "print an engine stats delta every this many slots (0 = off; ignored with -latency/-router)")
		batch     = flag.Uint64("batch", 0, "batched-driver chunk size in slots (0 = default; 1 = plain per-slot loop)")
		warmup    = flag.Uint64("warmup", 0, "arrival-only slots before requests start (0 = auto: Q·b·4)")
		arrName   = flag.String("arrivals", "roundrobin", "arrivals: roundrobin|bernoulli|uniform|hotspot|bursty|single|none (bernoulli draws geometric gaps, so sparse -load runs fast-forward idle spans)")
		reqName   = flag.String("requests", "rrdrain", "requests: rrdrain|uniform|longest|none")
		load      = flag.Float64("load", 1.0, "offered arrival load (cells/slot; also paces -router mode)")
		seed      = flag.Int64("seed", 1, "workload RNG seed")
		allow     = flag.Bool("allowdrops", false, "tolerate drops when the DRAM is bounded")
		record    = flag.String("record", "", "record the workload trace to this file")
		replay    = flag.String("replay", "", "replay a recorded trace instead of generating (overrides -arrivals/-requests/-warmup/-slots)")
		latency   = flag.Bool("latency", false, "measure per-cell sojourn times (cells buffered before measurement are excluded; with -replay the samples therefore include the recorded warmup prefix, which a recording run's -latency does not see)")

		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		blockProf = flag.String("blockprofile", "", "write a pprof blocking profile at exit to this file (enables block profiling; mainly useful with -router workers)")

		routerMode = flag.Bool("router", false, "drive the Figure-1 router engine instead of a single buffer (uses -ports/-classes/-workers/-iters; -queues/-arrivals/-requests/-warmup/-record/-replay/-latency are ignored)")
		ports      = flag.Int("ports", 4, "router mode: input (= output) ports")
		classes    = flag.Int("classes", 1, "router mode: service classes per output")
		workers    = flag.Int("workers", 0, "router mode: worker goroutines (0 = one per port, 1 = serial)")
		iters      = flag.Int("iters", 1, "router mode: iSLIP iterations per slot")
		epoch      = flag.Int("epoch", 1, "router mode: epoch-batched speculation window K (1 = lockstep barrier every slot)")
		pktBytes   = flag.Int("pktbytes", 576, "router mode: mean packet size in bytes (trimodal mix around it)")
	)
	flag.Parse()

	if err := startProfiles(*cpuProf, *memProf, *blockProf); err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	rate, err := lineRate(*rateName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pktbuf.Config{
		Queues:             *queues,
		LineRate:           rate,
		Granularity:        *gran,
		Banks:              *banks,
		BankCapacityBlocks: *bankCap,
		Renaming:           *renaming,
		Lookahead:          *lookahead,
		LatencySlots:       *latSlots,
	}
	switch *orgName {
	case "cam":
		cfg.Organization = pktbuf.GlobalCAM
	case "list":
		cfg.Organization = pktbuf.UnifiedLinkedList
	default:
		log.Fatalf("unknown org %q", *orgName)
	}
	switch *mmaName {
	case "ecqf":
		cfg.MMA = pktbuf.ECQF
	case "mdqf":
		cfg.MMA = pktbuf.MDQF
	default:
		log.Fatalf("unknown mma %q", *mmaName)
	}

	if *routerMode {
		runRouter(cfg, routerOpts{
			ports: *ports, classes: *classes, workers: *workers, iters: *iters,
			epoch: *epoch, slots: *slots, load: *load, seed: *seed, meanBytes: *pktBytes,
		})
		return
	}

	buf, err := pktbuf.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := buf.Sizing()
	fmt.Printf("config: Q=%d B=%d b=%d M=%d lookahead=%d latency=%d RR=%d headSRAM=%d tailSRAM=%d renaming=%v org=%s mma=%s\n",
		cfg.Queues, s.GranularityB, s.Granularity, *banks, s.Lookahead, s.LatencySlots,
		s.RequestRegister, s.HeadSRAMCells, s.TailSRAMCells, cfg.Renaming, *orgName, *mmaName)

	var arr sim.ArrivalProcess
	switch *arrName {
	case "roundrobin":
		arr, err = sim.NewRoundRobinArrivals(*queues, *load)
	case "bernoulli":
		arr, err = sim.NewBernoulliArrivals(*queues, *load, *seed)
	case "uniform":
		arr, err = sim.NewUniformArrivals(*queues, *load, *seed)
	case "hotspot":
		arr, err = sim.NewHotspotArrivals(*queues, *load, 0.8, *seed)
	case "bursty":
		arr, err = sim.NewBurstyArrivals(*queues, 32, 32*(1-*load)/maxf(*load, 0.01), *seed)
	case "single":
		arr = sim.NewSingleQueueArrivals(0)
	case "none":
		arr = noneArrivals{}
	default:
		log.Fatalf("unknown arrivals %q", *arrName)
	}
	if err != nil {
		log.Fatal(err)
	}

	var req sim.RequestPolicy
	switch *reqName {
	case "rrdrain":
		req, err = sim.NewRoundRobinDrain(*queues)
	case "uniform":
		req, err = sim.NewUniformRequests(*queues, *load, *seed+1)
	case "longest":
		req, err = sim.NewLongestFirst(*queues)
	case "none":
		req = sim.NewIdleRequests()
	default:
		log.Fatalf("unknown requests %q", *reqName)
	}
	if err != nil {
		log.Fatal(err)
	}

	var rec *trace.Recorder
	if *replay != "" {
		if *record != "" {
			log.Fatal("-record cannot be combined with -replay (the trace already exists)")
		}
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		arr, req = trace.NewReplayer(tr).Halves()
		// Replay the whole trace: it contains the recording run's
		// warmup prefix, so cutting it at -slots would replay a
		// different (request-starved) experiment.
		*slots = uint64(len(tr.Events))
	} else {
		w := *warmup
		if w == 0 {
			w = uint64(cfg.Queues * s.Granularity * 4)
		}
		// When recording, the warmup slots must be part of the trace:
		// a replay starts from an empty buffer, so a trace that began
		// after the warmup would request queues that are still empty.
		warmArr, warmReq := arr, sim.NewIdleRequests()
		if *record != "" {
			rec = &trace.Recorder{Arr: arr, Req: warmReq}
			warmArr, warmReq = rec.Halves()
		}
		warmRunner := &sim.Runner{Buffer: buf, Arrivals: warmArr, Requests: warmReq, AllowDrops: *allow}
		if _, err := warmRunner.Run(w); err != nil {
			log.Fatalf("warmup: %v", err)
		}
		if rec != nil {
			rec.Req = req
			arr, req = rec.Halves()
		}
	}
	runner := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req, AllowDrops: *allow}
	var res sim.Result
	if *latency {
		var lat sim.LatencyStats
		res, lat, err = runner.RunWithLatency(*slots)
		if err == nil {
			fmt.Printf("%v\n", lat)
		}
	} else if *report > 0 {
		// Chunk the run at the reporting interval and print interval
		// deltas via Stats.Sub; repeated RunBatch calls on one runner
		// continue the same experiment.
		prev := buf.Stats()
		var done uint64
		for done < *slots && err == nil {
			chunk := *report
			if rem := *slots - done; chunk > rem {
				chunk = rem
			}
			res, err = runner.RunBatch(chunk, *batch)
			done += res.Slots
			cur := buf.Stats()
			d := cur.Sub(prev)
			fmt.Printf("report: slots=%d/%d arrivals=%d requests=%d deliveries=%d bypasses=%d misses=%d drops=%d ff=%d\n",
				done, *slots, d.Arrivals, d.Requests, d.Deliveries,
				d.Bypasses, d.Misses, d.Drops, d.FastForwardedSlots)
			prev = cur
		}
		res.Slots = done
	} else {
		res, err = runner.RunBatch(*slots, *batch)
	}
	if err != nil {
		log.Printf("INVARIANT VIOLATION: %v", err)
		fmt.Printf("stats: %+v\n", res.Stats)
		exit(1)
	}
	if rec != nil {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.Trace().Write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d slots recorded to %s\n", len(rec.Trace().Events), *record)
	}
	fmt.Printf("stats: %+v\n", res.Stats)
	if ff := res.Stats.FastForwardedSlots; res.Slots > 0 {
		fmt.Printf("sparse: %d/%d slots fast-forwarded (%.1f%%)\n",
			ff, res.Slots, 100*float64(ff)/float64(res.Slots))
	}
	if res.Clean() {
		fmt.Println("verdict: CLEAN — zero misses, zero conflicts, bounded reordering")
	} else {
		fmt.Println("verdict: NOT CLEAN")
		exit(1)
	}
}

// stopProfiles finalizes whatever startProfiles armed. It is a
// package-level hook so the early-exit paths (invariant violations,
// NOT CLEAN verdicts) can flush profiles before os.Exit skips the
// deferred call; exit routes them all through it.
var stopProfiles = func() {}

// startProfiles arms the requested pprof outputs: the CPU profile
// runs from here to exit, the heap and block profiles are snapshotted
// at exit. Block profiling is only enabled when asked for — its
// bookkeeping slows the router's worker handoffs.
func startProfiles(cpu, mem, block string) error {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		cpuF = f
	}
	if block != "" {
		runtime.SetBlockProfileRate(1)
	}
	var once sync.Once
	stopProfiles = func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			snapshot := func(profile, path string) {
				if path == "" {
					return
				}
				f, err := os.Create(path)
				if err != nil {
					log.Printf("%s profile: %v", profile, err)
					return
				}
				if profile == "heap" {
					runtime.GC()
				}
				if err := pprof.Lookup(profile).WriteTo(f, 0); err != nil {
					log.Printf("%s profile: %v", profile, err)
				}
				f.Close()
			}
			snapshot("heap", mem)
			snapshot("block", block)
		})
	}
	return nil
}

// exit flushes any armed profiles before terminating with code.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

type noneArrivals struct{}

func (noneArrivals) Next(uint64) pktbuf.Queue { return pktbuf.None }

type routerOpts struct {
	ports, classes, workers, iters int
	epoch                          int
	slots                          uint64
	load                           float64
	seed                           int64
	meanBytes                      int
}

// runRouter drives the sharded router engine under uniform random
// packet traffic paced to -load offered cells per input per slot,
// with a trimodal packet-size mix around -pktbytes.
func runRouter(buffer pktbuf.Config, o routerOpts) {
	eng, err := router.New(router.Config{
		Ports:               o.ports,
		Classes:             o.classes,
		Workers:             o.workers,
		SchedulerIterations: o.iters,
		EpochSlots:          o.epoch,
		Buffer:              buffer,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	epochK := eng.Config().EpochSlots
	fmt.Printf("router: ports=%d classes=%d workers=%d iters=%d epoch=%d voqs/input=%d load=%.2f cells/slot/port\n",
		o.ports, o.classes, eng.Workers(), o.iters, epochK, o.ports*o.classes, o.load)

	rng := rand.New(rand.NewSource(o.seed))
	sizes := [3]int{40, o.meanBytes, 1500}
	drawPacket := func() packet.Packet {
		size := sizes[rng.Intn(3)]
		payload := make([]byte, size)
		rng.Read(payload)
		return packet.Packet{
			Flow:    eng.VOQ(rng.Intn(o.ports), rng.Intn(o.classes)),
			Payload: payload,
		}
	}
	// Per-port pacing: accumulate -load cells of credit per slot and
	// offer the next drawn packet once the credit covers its cells.
	credit := make([]float64, o.ports)
	next := make([]packet.Packet, o.ports)
	for p := range next {
		next[p] = drawPacket()
	}
	// Step epochK slots per batch so the engine can amortize the
	// barrier; ingress credit for the whole batch is granted up front
	// (at -epoch 1 this is exactly the old slot-at-a-time pacing).
	out := make([]router.Egress, 0, 4*o.ports)
	for slot := uint64(0); slot < o.slots; {
		n := uint64(epochK)
		if rem := o.slots - slot; rem < n {
			n = rem
		}
		for p := 0; p < o.ports; p++ {
			credit[p] += o.load * float64(n)
			for try := uint64(0); try < n; try++ {
				cells := float64(packet.CellCount(len(next[p].Payload)))
				if credit[p] < cells {
					break
				}
				if err := eng.Offer(p, next[p]); err != nil {
					break
				}
				credit[p] -= cells
				next[p] = drawPacket()
			}
		}
		var err error
		out, err = eng.StepBatch(int(n), out[:0])
		if err != nil {
			log.Fatalf("slot %d: %v", slot, err)
		}
		slot += n
	}

	st := eng.Stats()
	fmt.Printf("stats: %+v\n", st)
	fmt.Printf("fabric: %.3f cells/slot switched, %.3f matches/slot; %d/%d packets delivered\n",
		float64(st.SwitchedCells)/float64(st.Slots),
		float64(st.Matches)/float64(st.Slots),
		st.DeliveredPackets, st.OfferedPackets)
	if epochK > 1 {
		es := eng.EpochStats()
		fmt.Printf("epoch: K=%d epochs=%d planned=%d committed=%d horizon_truncations=%d serial_fallback=%d divergences=%d sync_ops=%d (%.3f/slot)\n",
			epochK, es.Epochs, es.PlannedSlots, es.CommittedSlots,
			es.HorizonTruncations, es.SerialFallbackSlots, es.Divergences,
			es.SyncOps, float64(es.SyncOps)/float64(st.Slots))
	}
	clean := true
	skipped := uint64(0)
	for p := 0; p < o.ports; p++ {
		bs := eng.BufferStats(p)
		skipped += bs.FastForwardedSlots
		if !bs.Clean() {
			clean = false
			fmt.Printf("input %d buffer NOT clean: %+v\n", p, bs)
		}
	}
	if st.Slots > 0 {
		fmt.Printf("sparse: %d port-slots fast-forwarded (%.1f%% of %d ports × %d slots)\n",
			skipped, 100*float64(skipped)/float64(uint64(o.ports)*st.Slots), o.ports, st.Slots)
	}
	if clean {
		fmt.Println("verdict: CLEAN — zero misses, zero conflicts, bounded reordering on every port")
	} else {
		fmt.Println("verdict: NOT CLEAN")
		exit(1)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
