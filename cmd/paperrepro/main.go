// Command paperrepro regenerates every table and figure of the
// paper's evaluation (MICRO-36 2003, García et al.) and prints them as
// text tables. With no flags it prints everything.
//
// Usage:
//
//	paperrepro [-fig8] [-table2] [-fig10] [-fig11] [-headline] [-sizes]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments" //pktbuf:allow publicapi paperrepro is the paper-evaluation driver and shares the experiment matrix with bench_test.go; the matrix is not public API
	"repro/pktbuf"
)

func main() {
	fig8 := flag.Bool("fig8", false, "print Figure 8 (RADS h-SRAM vs lookahead)")
	table2 := flag.Bool("table2", false, "print Table 2 (Requests Register sizing)")
	fig10 := flag.Bool("fig10", false, "print Figure 10 (CFDS vs RADS area/access vs delay)")
	fig11 := flag.Bool("fig11", false, "print Figure 11 (max queues per granularity)")
	headline := flag.Bool("headline", false, "print the §8.3/§10 headline comparison")
	sizes := flag.Bool("sizes", false, "print the §7.2 SRAM size ranges")
	validate := flag.Bool("validate", false, "run the §5 guarantee-validation simulation matrix")
	valSlots := flag.Uint64("validate-slots", 20000, "slots per validation run")
	flag.Parse()

	all := !(*fig8 || *table2 || *fig10 || *fig11 || *headline || *sizes || *validate)
	out := os.Stdout

	if all || *fig8 {
		for _, f := range experiments.Figure8() {
			fmt.Fprintln(out, f.TableString())
		}
	}
	if all || *sizes {
		fmt.Fprintln(out, "§7.2 RADS h-SRAM size ranges (min lookahead → full lookahead)")
		for _, s := range experiments.Section7Sizes() {
			fmt.Fprintf(out, "  %-8v %8.1f kB → %8.1f kB\n", s.Point.Rate,
				float64(s.MinLookaheadCells*pktbuf.CellSize)/1e3,
				float64(s.FullLookaheadCells*pktbuf.CellSize)/1e3)
		}
		fmt.Fprintln(out)
	}
	if all || *table2 {
		for _, p := range experiments.Table2() {
			fmt.Fprintln(out, p.TableString())
		}
	}
	if all || *fig10 {
		for _, s := range experiments.Figure10() {
			fmt.Fprintln(out, s.TableString())
		}
	}
	if all || *fig11 {
		fmt.Fprintln(out, experiments.Fig11TableString(experiments.Figure11()))
	}
	if all || *headline {
		fmt.Fprintln(out, experiments.HeadlineString(experiments.Headline()))
	}
	if *validate { // not in `all`: it simulates for a while
		rows, err := experiments.ValidateGuarantees(16, *valSlots)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: validation: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(out, experiments.ValidationTableString(rows))
		for _, r := range rows {
			if !r.Pass {
				fmt.Fprintln(os.Stderr, "paperrepro: VALIDATION FAILED")
				os.Exit(1)
			}
		}
	}
}
