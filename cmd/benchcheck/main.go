// Command benchcheck gates benchmark output against recorded baselines.
//
// It reads `go test -bench` output on stdin, extracts ns/op and
// allocs/op per benchmark, and compares them to a section of
// BENCH_baseline.json:
//
//	go test -run '^$' -bench 'BenchmarkTick' -benchtime 2s . |
//	    go run ./cmd/benchcheck -section fused_kernel_pr6
//
// A benchmark fails the gate when its ns/op exceeds the recorded
// baseline by more than -tolerance (default 25%), or when it reports a
// nonzero allocs/op while the baseline row records zero. Benchmarks
// with no baseline row are reported but never fail the gate, so suites
// can grow ahead of the recorded baselines; conversely, baseline rows
// with no matching observation in the run are warned about but never
// fail the gate, so a narrower -bench selection can be checked against
// a wide baseline section.
//
// Baseline sections may nest sub-objects (queue_scaling, rows, ...);
// any object with an "ns_op" field found under the section, keyed by a
// name starting with "Benchmark", is treated as a baseline row. The
// "-N" GOMAXPROCS suffix that `go test` appends on multi-core hosts is
// stripped before lookup, so baselines recorded on a single-CPU box
// match runs from any runner.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type row struct {
	NsOp     float64
	AllocsOp float64
	hasNs    bool
}

// flatten walks a decoded JSON value and collects every
// {"ns_op": ..., "allocs_op": ...} object keyed by a Benchmark* name.
func flatten(v interface{}, out map[string]row) {
	m, ok := v.(map[string]interface{})
	if !ok {
		return
	}
	for k, child := range m {
		cm, ok := child.(map[string]interface{})
		if !ok {
			continue
		}
		if strings.HasPrefix(k, "Benchmark") {
			var r row
			if ns, ok := cm["ns_op"].(float64); ok {
				r.NsOp, r.hasNs = ns, true
			}
			if al, ok := cm["allocs_op"].(float64); ok {
				r.AllocsOp = al
			}
			if r.hasNs {
				out[k] = r
				continue
			}
		}
		flatten(child, out)
	}
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
var allocsField = regexp.MustCompile(`([0-9.]+) allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json",
		"path to the baseline JSON file")
	section := flag.String("section", "fused_kernel_pr6",
		"top-level section of the baseline file to gate against")
	tolerance := flag.Float64("tolerance", 0.25,
		"allowed fractional ns/op regression over baseline")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck: parse baseline:", err)
		os.Exit(2)
	}
	sec, ok := doc[*section]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchcheck: no section %q in %s\n",
			*section, *baselinePath)
		os.Exit(2)
	}
	baselines := make(map[string]row)
	flatten(sec, baselines)
	if len(baselines) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: section %q has no baseline rows\n",
			*section)
		os.Exit(2)
	}

	// Keep the best (lowest ns/op) observation per benchmark: with
	// -count N on a noisy host, min-of-N is the comparable statistic.
	type obs struct {
		nsOp   float64
		allocs float64
	}
	seen := make(map[string]obs)
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass output through for the CI log
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		var allocs float64
		if am := allocsField.FindStringSubmatch(m[3]); am != nil {
			allocs, _ = strconv.ParseFloat(am[1], 64)
		}
		if prev, dup := seen[name]; !dup || ns < prev.nsOp {
			if !dup {
				order = append(order, name)
			}
			seen[name] = obs{nsOp: ns, allocs: allocs}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck: read stdin:", err)
		os.Exit(2)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines on stdin")
		os.Exit(2)
	}

	failed := false
	for _, name := range order {
		o := seen[name]
		base, ok := baselines[name]
		if !ok {
			fmt.Printf("benchcheck: %-55s %10.1f ns/op  (no baseline, skipped)\n",
				name, o.nsOp)
			continue
		}
		limit := base.NsOp * (1 + *tolerance)
		status := "ok"
		if o.nsOp > limit {
			status = "FAIL ns/op"
			failed = true
		}
		if o.allocs > 0 && base.AllocsOp == 0 {
			status += " FAIL allocs/op>0"
			failed = true
		}
		fmt.Printf("benchcheck: %-55s %10.1f ns/op  vs %8.1f (limit %8.1f)  %s\n",
			name, o.nsOp, base.NsOp, limit, status)
	}
	var missing []string
	for name := range baselines {
		if _, ok := seen[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("benchcheck: %-55s not in this run (baseline row unused)\n", name)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchcheck: FAIL: regression over baseline")
		os.Exit(1)
	}
	fmt.Println("benchcheck: PASS")
}
