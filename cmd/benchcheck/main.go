// Command benchcheck gates benchmark output against recorded baselines.
//
// It reads `go test -bench` output on stdin, extracts ns/op and
// allocs/op per benchmark, and compares them to a section of
// BENCH_baseline.json:
//
//	go test -run '^$' -bench 'BenchmarkTick' -benchtime 2s . |
//	    go run ./cmd/benchcheck -section fused_kernel_pr6
//
// A benchmark fails the gate when its ns/op exceeds the recorded
// baseline by more than -tolerance (default 25%), or when it reports a
// nonzero allocs/op while the baseline row records zero. Benchmarks
// with no baseline row are reported but never fail the gate, so suites
// can grow ahead of the recorded baselines; conversely, baseline rows
// with no matching observation in the run are warned about but never
// fail the gate, so a narrower -bench selection can be checked against
// a wide baseline section.
//
// Baseline sections may nest sub-objects (queue_scaling, rows, ...);
// any object with an "ns_op" field found under the section, keyed by a
// name starting with "Benchmark", is treated as a baseline row. The
// "-N" GOMAXPROCS suffix that `go test` appends on multi-core hosts is
// stripped before lookup, so baselines recorded on a single-CPU box
// match runs from any runner.
//
// With -scaling, benchcheck additionally enforces the multi-core
// speedup bar: for every configuration present under both
// BenchmarkRouterParallel/<cfg> and BenchmarkRouterStep/<cfg>, the
// parallel engine must be at least -scaling-min× faster than the
// serial reference. The bar applies only when the parallel baseline
// row records cpus ≥ -scaling-cpus AND the run reports cpus ≥
// -scaling-cpus (benchmarks emit runtime.NumCPU() as a "cpus"
// metric); on smaller hosts the gate prints a machine-readable
// "benchcheck: SCALING SKIP ... reason=..." line instead of silently
// passing, so CI logs record that the bar was not exercised.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json",
		"path to the baseline JSON file")
	section := flag.String("section", "fused_kernel_pr6",
		"top-level section of the baseline file to gate against")
	tolerance := flag.Float64("tolerance", 0.25,
		"allowed fractional ns/op regression over baseline")
	scaling := flag.Bool("scaling", false,
		"enforce the parallel-vs-serial router scaling gate")
	scalingMin := flag.Float64("scaling-min", 2.0,
		"required parallel-over-serial speedup factor")
	scalingCpus := flag.Float64("scaling-cpus", 8,
		"minimum cpus (baseline row and run) for the scaling gate to apply")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	baselines, err := loadBaselines(raw, *section)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}

	seen, order, err := parseRuns(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck: read stdin:", err)
		os.Exit(2)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines on stdin")
		os.Exit(2)
	}

	failed := compare(order, seen, baselines, *tolerance, os.Stdout)
	if *scaling && scalingGate(seen, baselines, *scalingMin, *scalingCpus, os.Stdout) {
		fmt.Fprintln(os.Stderr, "benchcheck: FAIL: parallel engine below scaling bar")
		failed = true
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchcheck: FAIL: regression over baseline")
		os.Exit(1)
	}
	fmt.Println("benchcheck: PASS")
}
