// Command benchcheck gates benchmark output against recorded baselines.
//
// It reads `go test -bench` output on stdin, extracts ns/op and
// allocs/op per benchmark, and compares them to a section of
// BENCH_baseline.json:
//
//	go test -run '^$' -bench 'BenchmarkTick' -benchtime 2s . |
//	    go run ./cmd/benchcheck -section fused_kernel_pr6
//
// A benchmark fails the gate when its ns/op exceeds the recorded
// baseline by more than -tolerance (default 25%), or when it reports a
// nonzero allocs/op while the baseline row records zero. Benchmarks
// with no baseline row are reported but never fail the gate, so suites
// can grow ahead of the recorded baselines; conversely, baseline rows
// with no matching observation in the run are warned about but never
// fail the gate, so a narrower -bench selection can be checked against
// a wide baseline section.
//
// Baseline sections may nest sub-objects (queue_scaling, rows, ...);
// any object with an "ns_op" field found under the section, keyed by a
// name starting with "Benchmark", is treated as a baseline row. The
// "-N" GOMAXPROCS suffix that `go test` appends on multi-core hosts is
// stripped before lookup, so baselines recorded on a single-CPU box
// match runs from any runner.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json",
		"path to the baseline JSON file")
	section := flag.String("section", "fused_kernel_pr6",
		"top-level section of the baseline file to gate against")
	tolerance := flag.Float64("tolerance", 0.25,
		"allowed fractional ns/op regression over baseline")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	baselines, err := loadBaselines(raw, *section)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}

	seen, order, err := parseRuns(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck: read stdin:", err)
		os.Exit(2)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines on stdin")
		os.Exit(2)
	}

	if compare(order, seen, baselines, *tolerance, os.Stdout) {
		fmt.Fprintln(os.Stderr, "benchcheck: FAIL: regression over baseline")
		os.Exit(1)
	}
	fmt.Println("benchcheck: PASS")
}
