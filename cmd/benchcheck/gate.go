package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type row struct {
	NsOp     float64
	AllocsOp float64
	Cpus     float64
	hasNs    bool
}

// flatten walks a decoded JSON value and collects every
// {"ns_op": ..., "allocs_op": ...} object keyed by a Benchmark* name.
func flatten(v interface{}, out map[string]row) {
	m, ok := v.(map[string]interface{})
	if !ok {
		return
	}
	for k, child := range m {
		cm, ok := child.(map[string]interface{})
		if !ok {
			continue
		}
		if strings.HasPrefix(k, "Benchmark") {
			var r row
			if ns, ok := cm["ns_op"].(float64); ok {
				r.NsOp, r.hasNs = ns, true
			}
			if al, ok := cm["allocs_op"].(float64); ok {
				r.AllocsOp = al
			}
			if c, ok := cm["cpus"].(float64); ok {
				r.Cpus = c
			}
			if r.hasNs {
				out[k] = r
				continue
			}
		}
		flatten(child, out)
	}
}

// loadBaselines decodes the baseline JSON and flattens the named
// top-level section into baseline rows.
func loadBaselines(raw []byte, section string) (map[string]row, error) {
	var doc map[string]interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("parse baseline: %w", err)
	}
	sec, ok := doc[section]
	if !ok {
		return nil, fmt.Errorf("no section %q in baseline", section)
	}
	baselines := make(map[string]row)
	flatten(sec, baselines)
	if len(baselines) == 0 {
		return nil, fmt.Errorf("section %q has no baseline rows", section)
	}
	return baselines, nil
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
var allocsField = regexp.MustCompile(`([0-9.]+) allocs/op`)
var cpusField = regexp.MustCompile(`([0-9.]+) cpus`)

// obs is the best observation of one benchmark in the run.
type obs struct {
	nsOp   float64
	allocs float64
	cpus   float64
}

// parseRuns scans `go test -bench` output, echoing every line to echo
// (the CI log), and keeps the best (lowest ns/op) observation per
// benchmark: with -count N on a noisy host, min-of-N is the
// comparable statistic. The returned order preserves first
// appearance. The "-N" GOMAXPROCS suffix is stripped from names.
func parseRuns(r io.Reader, echo io.Writer) (map[string]obs, []string, error) {
	seen := make(map[string]obs)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		var allocs, cpus float64
		if am := allocsField.FindStringSubmatch(m[3]); am != nil {
			allocs, _ = strconv.ParseFloat(am[1], 64)
		}
		if cm := cpusField.FindStringSubmatch(m[3]); cm != nil {
			cpus, _ = strconv.ParseFloat(cm[1], 64)
		}
		if prev, dup := seen[name]; !dup || ns < prev.nsOp {
			if !dup {
				order = append(order, name)
			}
			seen[name] = obs{nsOp: ns, allocs: allocs, cpus: cpus}
		}
	}
	return seen, order, sc.Err()
}

// compare gates the observations against the baselines and writes the
// per-benchmark verdict lines to w. It returns true when the gate
// fails: an ns/op more than tolerance over baseline, or nonzero
// allocs/op against a zero-alloc baseline row. Benchmarks without a
// baseline row and baseline rows without an observation are reported
// but never fail.
func compare(order []string, seen map[string]obs, baselines map[string]row, tolerance float64, w io.Writer) bool {
	failed := false
	for _, name := range order {
		o := seen[name]
		base, ok := baselines[name]
		if !ok {
			fmt.Fprintf(w, "benchcheck: %-55s %10.1f ns/op  (no baseline, skipped)\n",
				name, o.nsOp)
			continue
		}
		limit := base.NsOp * (1 + tolerance)
		status := "ok"
		if o.nsOp > limit {
			status = "FAIL ns/op"
			failed = true
		}
		if o.allocs > 0 && base.AllocsOp == 0 {
			status += " FAIL allocs/op>0"
			failed = true
		}
		fmt.Fprintf(w, "benchcheck: %-55s %10.1f ns/op  vs %8.1f (limit %8.1f)  %s\n",
			name, o.nsOp, base.NsOp, limit, status)
	}
	var missing []string
	for name := range baselines {
		if _, ok := seen[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "benchcheck: %-55s not in this run (baseline row unused)\n", name)
	}
	return failed
}

const (
	scalingParallel = "BenchmarkRouterParallel"
	scalingSerial   = "BenchmarkRouterStep"
)

// scalingGate enforces the multi-core speedup bar: for every
// configuration observed under both BenchmarkRouterParallel/<cfg> and
// BenchmarkRouterStep/<cfg>, the sharded engine must be at least
// minSpeedup× faster than the serial reference. The bar only means
// anything when the cores exist on both sides of the comparison, so
// the gate applies only when the parallel baseline row carries
// cpus ≥ minCpus AND the run reports cpus ≥ minCpus; otherwise it
// emits a machine-readable SKIP line (key=value tokens) instead of
// silently passing. Returns true when the gate fails.
func scalingGate(seen map[string]obs, baselines map[string]row, minSpeedup, minCpus float64, w io.Writer) bool {
	var cfgs []string
	for name := range seen {
		if strings.HasPrefix(name, scalingParallel+"/") {
			cfgs = append(cfgs, strings.TrimPrefix(name, scalingParallel+"/"))
		}
	}
	sort.Strings(cfgs)
	failed := false
	for _, cfg := range cfgs {
		par := seen[scalingParallel+"/"+cfg]
		ser, ok := seen[scalingSerial+"/"+cfg]
		if !ok {
			fmt.Fprintf(w, "benchcheck: SCALING SKIP cfg=%s reason=missing-serial-pair\n", cfg)
			continue
		}
		base, ok := baselines[scalingParallel+"/"+cfg]
		if !ok {
			fmt.Fprintf(w, "benchcheck: SCALING SKIP cfg=%s reason=no-baseline run_cpus=%g\n",
				cfg, par.cpus)
			continue
		}
		if base.Cpus < minCpus {
			fmt.Fprintf(w, "benchcheck: SCALING SKIP cfg=%s reason=baseline-cpus base_cpus=%g min_cpus=%g\n",
				cfg, base.Cpus, minCpus)
			continue
		}
		if par.cpus < minCpus {
			fmt.Fprintf(w, "benchcheck: SCALING SKIP cfg=%s reason=host-cpus run_cpus=%g min_cpus=%g\n",
				cfg, par.cpus, minCpus)
			continue
		}
		speedup := ser.nsOp / par.nsOp
		status := "ok"
		if speedup < minSpeedup {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(w, "benchcheck: SCALING cfg=%s speedup=%.2f min_speedup=%.2f serial_ns=%.1f parallel_ns=%.1f run_cpus=%g status=%s\n",
			cfg, speedup, minSpeedup, ser.nsOp, par.nsOp, par.cpus, status)
	}
	if len(cfgs) == 0 {
		fmt.Fprintf(w, "benchcheck: SCALING SKIP reason=no-parallel-rows\n")
	}
	return failed
}
