package main

import (
	"io"
	"strings"
	"testing"
)

func TestLoadBaselinesNested(t *testing.T) {
	raw := []byte(`{
		"fused_kernel_pr6": {
			"BenchmarkTickFused": {"ns_op": 100.0, "allocs_op": 0},
			"queue_scaling": {
				"rows": {
					"BenchmarkTickQ64": {"ns_op": 250.5, "allocs_op": 2}
				}
			},
			"note": "not a row",
			"BenchmarkNoNs": {"allocs_op": 1}
		},
		"other_section": {
			"BenchmarkElsewhere": {"ns_op": 1.0}
		}
	}`)
	got, err := loadBaselines(raw, "fused_kernel_pr6")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d rows, want 2: %v", len(got), got)
	}
	if r := got["BenchmarkTickFused"]; r.NsOp != 100.0 || r.AllocsOp != 0 {
		t.Errorf("BenchmarkTickFused = %+v", r)
	}
	if r := got["BenchmarkTickQ64"]; r.NsOp != 250.5 || r.AllocsOp != 2 {
		t.Errorf("nested BenchmarkTickQ64 = %+v", r)
	}
	if _, ok := got["BenchmarkElsewhere"]; ok {
		t.Error("row from another section leaked into the result")
	}
}

func TestLoadBaselinesErrors(t *testing.T) {
	if _, err := loadBaselines([]byte(`{`), "s"); err == nil {
		t.Error("malformed JSON: want error")
	}
	if _, err := loadBaselines([]byte(`{"a":{}}`), "missing"); err == nil {
		t.Error("missing section: want error")
	}
	if _, err := loadBaselines([]byte(`{"a":{"note":"x"}}`), "a"); err == nil {
		t.Error("section with no rows: want error")
	}
}

func TestParseRunsMinOfCount(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		"goos: linux",
		"BenchmarkTick-8   \t1000\t 120.5 ns/op\t       0 B/op\t       0 allocs/op",
		"BenchmarkTick-8   \t1000\t 110.2 ns/op\t       0 B/op\t       0 allocs/op",
		"BenchmarkTick-8   \t1000\t 130.9 ns/op\t       0 B/op\t       0 allocs/op",
		"BenchmarkOther    \t 500\t 300 ns/op\t      16 B/op\t       2 allocs/op",
		"PASS",
	}, "\n"))
	seen, order, err := parseRuns(in, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "BenchmarkTick" || order[1] != "BenchmarkOther" {
		t.Fatalf("order = %v", order)
	}
	if o := seen["BenchmarkTick"]; o.nsOp != 110.2 || o.allocs != 0 {
		t.Errorf("min-of-count: BenchmarkTick = %+v, want ns 110.2", o)
	}
	if o := seen["BenchmarkOther"]; o.nsOp != 300 || o.allocs != 2 {
		t.Errorf("BenchmarkOther = %+v", o)
	}
}

func TestParseRunsStripsGOMAXPROCSSuffix(t *testing.T) {
	in := strings.NewReader("BenchmarkX-16 \t10\t 5.0 ns/op\n")
	seen, _, err := parseRuns(in, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := seen["BenchmarkX"]; !ok {
		t.Fatalf("suffix not stripped: %v", seen)
	}
}

func TestParseRunsEchoesEveryLine(t *testing.T) {
	input := "goos: linux\nBenchmarkX \t10\t 5.0 ns/op\nPASS\n"
	var echo strings.Builder
	if _, _, err := parseRuns(strings.NewReader(input), &echo); err != nil {
		t.Fatal(err)
	}
	if echo.String() != input {
		t.Errorf("echo = %q, want the input passed through verbatim", echo.String())
	}
}

func TestCompareToleranceGate(t *testing.T) {
	baselines := map[string]row{
		"BenchmarkOK":   {NsOp: 100, AllocsOp: 0, hasNs: true},
		"BenchmarkSlow": {NsOp: 100, AllocsOp: 0, hasNs: true},
		"BenchmarkEdge": {NsOp: 100, AllocsOp: 0, hasNs: true},
	}
	seen := map[string]obs{
		"BenchmarkOK":   {nsOp: 110},
		"BenchmarkSlow": {nsOp: 126}, // over 100 * 1.25
		"BenchmarkEdge": {nsOp: 125}, // exactly at the limit: passes
	}
	order := []string{"BenchmarkOK", "BenchmarkSlow", "BenchmarkEdge"}
	var out strings.Builder
	if !compare(order, seen, baselines, 0.25, &out) {
		t.Fatal("regression over +25% tolerance must fail the gate")
	}
	if !strings.Contains(out.String(), "BenchmarkSlow") ||
		!strings.Contains(out.String(), "FAIL ns/op") {
		t.Errorf("output missing ns/op failure: %s", out.String())
	}
	delete(seen, "BenchmarkSlow")
	order = []string{"BenchmarkOK", "BenchmarkEdge"}
	out.Reset()
	if compare(order, seen, baselines, 0.25, &out) {
		t.Errorf("within-tolerance runs must pass: %s", out.String())
	}
}

func TestCompareAllocsGate(t *testing.T) {
	baselines := map[string]row{
		"BenchmarkZero": {NsOp: 100, AllocsOp: 0, hasNs: true},
		"BenchmarkSome": {NsOp: 100, AllocsOp: 3, hasNs: true},
	}
	seen := map[string]obs{
		"BenchmarkZero": {nsOp: 100, allocs: 1}, // regression: 0-alloc baseline
		"BenchmarkSome": {nsOp: 100, allocs: 5}, // baseline already allocates: ns-only gate
	}
	order := []string{"BenchmarkZero", "BenchmarkSome"}
	var out strings.Builder
	if !compare(order, seen, baselines, 0.25, &out) {
		t.Fatal("allocs against a zero-alloc baseline must fail the gate")
	}
	if !strings.Contains(out.String(), "FAIL allocs/op>0") {
		t.Errorf("output missing allocs failure: %s", out.String())
	}
	seen["BenchmarkZero"] = obs{nsOp: 100, allocs: 0}
	out.Reset()
	if compare(order, seen, baselines, 0.25, &out) {
		t.Errorf("zero-alloc run against zero-alloc baseline must pass: %s", out.String())
	}
}

func TestCompareNoBaselineSkipped(t *testing.T) {
	baselines := map[string]row{
		"BenchmarkKnown": {NsOp: 100, hasNs: true},
	}
	seen := map[string]obs{
		"BenchmarkKnown": {nsOp: 90},
		"BenchmarkNew":   {nsOp: 1e9, allocs: 99},
	}
	order := []string{"BenchmarkKnown", "BenchmarkNew"}
	var out strings.Builder
	if compare(order, seen, baselines, 0.25, &out) {
		t.Fatalf("benchmark without a baseline row must not fail the gate: %s", out.String())
	}
	if !strings.Contains(out.String(), "(no baseline, skipped)") {
		t.Errorf("output missing skip notice: %s", out.String())
	}
}

func TestCompareMissingBaselineWarned(t *testing.T) {
	baselines := map[string]row{
		"BenchmarkRan":    {NsOp: 100, hasNs: true},
		"BenchmarkBOnly":  {NsOp: 50, hasNs: true},
		"BenchmarkAOnly2": {NsOp: 50, hasNs: true},
	}
	seen := map[string]obs{"BenchmarkRan": {nsOp: 90}}
	var out strings.Builder
	if compare([]string{"BenchmarkRan"}, seen, baselines, 0.25, &out) {
		t.Fatalf("unused baseline rows must not fail the gate: %s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "BenchmarkBOnly") || !strings.Contains(s, "BenchmarkAOnly2") ||
		!strings.Contains(s, "not in this run (baseline row unused)") {
		t.Errorf("output missing unused-baseline warnings: %s", s)
	}
	if strings.Index(s, "BenchmarkAOnly2") > strings.Index(s, "BenchmarkBOnly") {
		t.Errorf("unused-baseline warnings not sorted: %s", s)
	}
}

func TestParseRunsCapturesCpusMetric(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		"BenchmarkRouterParallel/ports=8-8 \t100\t 2000 ns/op\t 12.0 cells/slot\t 8.000 cpus\t 0 B/op\t 0 allocs/op",
		"BenchmarkRouterStep/ports=8 \t100\t 5000 ns/op\t 0 allocs/op",
	}, "\n"))
	seen, _, err := parseRuns(in, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o := seen["BenchmarkRouterParallel/ports=8"]; o.cpus != 8 {
		t.Errorf("cpus = %v, want 8: %+v", o.cpus, o)
	}
	if o := seen["BenchmarkRouterStep/ports=8"]; o.cpus != 0 {
		t.Errorf("no cpus metric must parse as 0, got %v", o.cpus)
	}
}

func TestLoadBaselinesCpusField(t *testing.T) {
	raw := []byte(`{
		"s": {
			"BenchmarkRouterParallel/ports=8": {"ns_op": 2000, "allocs_op": 0, "cpus": 16}
		}
	}`)
	got, err := loadBaselines(raw, "s")
	if err != nil {
		t.Fatal(err)
	}
	if r := got["BenchmarkRouterParallel/ports=8"]; r.Cpus != 16 {
		t.Errorf("Cpus = %v, want 16", r.Cpus)
	}
}

func scalingFixture(runCpus, baseCpus, serialNs, parallelNs float64) (map[string]obs, map[string]row) {
	seen := map[string]obs{
		"BenchmarkRouterParallel/ports=8": {nsOp: parallelNs, cpus: runCpus},
		"BenchmarkRouterStep/ports=8":     {nsOp: serialNs, cpus: runCpus},
	}
	baselines := map[string]row{
		"BenchmarkRouterParallel/ports=8": {NsOp: parallelNs, Cpus: baseCpus, hasNs: true},
	}
	return seen, baselines
}

func TestScalingGateEnforced(t *testing.T) {
	// 8 cpus on both sides, parallel exactly 2× faster: passes.
	seen, baselines := scalingFixture(8, 8, 4000, 2000)
	var out strings.Builder
	if scalingGate(seen, baselines, 2.0, 8, &out) {
		t.Fatalf("2.0× speedup at the 2.0× bar must pass: %s", out.String())
	}
	if !strings.Contains(out.String(), "SCALING cfg=ports=8") ||
		!strings.Contains(out.String(), "status=ok") {
		t.Errorf("output missing ok verdict: %s", out.String())
	}
	// Parallel below 2× serial: fails.
	seen, baselines = scalingFixture(8, 8, 4000, 2100)
	out.Reset()
	if !scalingGate(seen, baselines, 2.0, 8, &out) {
		t.Fatalf("sub-2× speedup on an 8-cpu host must fail: %s", out.String())
	}
	if !strings.Contains(out.String(), "status=FAIL") {
		t.Errorf("output missing FAIL verdict: %s", out.String())
	}
}

func TestScalingGateSkipsSmallHost(t *testing.T) {
	// Run host has 1 cpu: SKIP, never fail, machine-readable reason.
	seen, baselines := scalingFixture(1, 8, 4000, 4100)
	var out strings.Builder
	if scalingGate(seen, baselines, 2.0, 8, &out) {
		t.Fatalf("single-cpu run must skip, not fail: %s", out.String())
	}
	if !strings.Contains(out.String(), "SCALING SKIP cfg=ports=8 reason=host-cpus") {
		t.Errorf("output missing host-cpus skip: %s", out.String())
	}
}

func TestScalingGateSkipsSmallBaseline(t *testing.T) {
	// Baseline recorded on a 1-cpu box: the recorded parallel ns/op
	// carries serialized-worker overhead, so the bar must not apply.
	seen, baselines := scalingFixture(16, 1, 4000, 4100)
	var out strings.Builder
	if scalingGate(seen, baselines, 2.0, 8, &out) {
		t.Fatalf("single-cpu baseline must skip, not fail: %s", out.String())
	}
	if !strings.Contains(out.String(), "SCALING SKIP cfg=ports=8 reason=baseline-cpus") {
		t.Errorf("output missing baseline-cpus skip: %s", out.String())
	}
}

func TestScalingGateSkipsUnpaired(t *testing.T) {
	seen := map[string]obs{
		"BenchmarkRouterParallel/ports=8": {nsOp: 2000, cpus: 8},
	}
	baselines := map[string]row{
		"BenchmarkRouterParallel/ports=8": {NsOp: 2000, Cpus: 8, hasNs: true},
	}
	var out strings.Builder
	if scalingGate(seen, baselines, 2.0, 8, &out) {
		t.Fatalf("missing serial pair must skip, not fail: %s", out.String())
	}
	if !strings.Contains(out.String(), "reason=missing-serial-pair") {
		t.Errorf("output missing unpaired skip: %s", out.String())
	}
	// No baseline row for the parallel benchmark: skip too.
	seen["BenchmarkRouterStep/ports=8"] = obs{nsOp: 4000, cpus: 8}
	delete(baselines, "BenchmarkRouterParallel/ports=8")
	out.Reset()
	if scalingGate(seen, baselines, 2.0, 8, &out) {
		t.Fatalf("missing baseline row must skip, not fail: %s", out.String())
	}
	if !strings.Contains(out.String(), "reason=no-baseline") {
		t.Errorf("output missing no-baseline skip: %s", out.String())
	}
	// No parallel rows at all: a single summary skip line.
	out.Reset()
	if scalingGate(map[string]obs{"BenchmarkRouterStep/ports=8": {nsOp: 4000}},
		baselines, 2.0, 8, &out) {
		t.Fatal("no parallel rows must not fail")
	}
	if !strings.Contains(out.String(), "reason=no-parallel-rows") {
		t.Errorf("output missing no-parallel-rows skip: %s", out.String())
	}
}
