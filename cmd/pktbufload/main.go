// Command pktbufload is the load-generator client for pktbufd: it
// opens data-plane connections, handshakes each for a slice of flows,
// and submits cells drawn from the repro/pktbuf/sim workload
// generators at a paced aggregate rate, reporting delivery and
// backpressure counters at the end. The soak smoke in CI drives a
// high-flow-count run against a live daemon and asserts zero
// admission rejects at sub-capacity load.
//
//	pktbufload -addr localhost:9950 -conns 8 -flows 10000 -rate 200000 -duration 5s
//
// With -retry each connection rides through server restarts: lost
// connections reconnect with jittered exponential backoff and resume
// their session, and the delivery/reject ledgers keep counting across
// reconnects — so -strict and the lost-cell audit hold for the whole
// run, crashes included. A connection that dies past its retry budget
// (or fails fast on a fatal reject such as session_unknown) exits
// non-zero with the terminal error.
//
// Exit status is non-zero if any connection failed, any cell was
// rejected while -strict is set, or not every submitted cell was
// delivered by the final Bye.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/pktbuf"
	"repro/pktbuf/serve"
	"repro/pktbuf/sim"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:9950", "pktbufd data-plane address")
		conns    = flag.Int("conns", 8, "client connections to open")
		flows    = flag.Int("flows", 1024, "total flows across all connections")
		rate     = flag.Float64("rate", 100000, "aggregate offered load in cells/second")
		duration = flag.Duration("duration", 5*time.Second, "how long to offer load")
		every    = flag.Duration("every", 5*time.Millisecond, "submit cadence per connection")
		pattern  = flag.String("arrivals", "uniform", "flow-choice pattern: uniform|roundrobin")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		strict   = flag.Bool("strict", false, "exit non-zero on any admission reject (counted across reconnects)")
		byeWait  = flag.Duration("byewait", 30*time.Second, "drain confirmation budget per connection")

		retry     = flag.Int("retry", 0, "reconnect attempts with session resumption per failure (0 = fail on first error)")
		retryBase = flag.Duration("retry-base", 50*time.Millisecond, "initial reconnect backoff (doubles per attempt, jittered)")
		retryMax  = flag.Duration("retry-max", 5*time.Second, "reconnect backoff ceiling")
		keepAlive = flag.Duration("keepalive", 0, "probe an idle server this often; treat two silent intervals as a dead connection")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "pktbufload: ", log.LstdFlags)
	if *conns <= 0 || *flows < *conns {
		logger.Fatalf("need at least one flow per connection (conns=%d flows=%d)", *conns, *flows)
	}

	type result struct {
		stats   serve.ClientStats
		rejects int
		err     error
	}
	results := make([]result, *conns)
	var wg sync.WaitGroup
	perConn := *flows / *conns
	cps := *rate / float64(*conns)
	for i := 0; i < *conns; i++ {
		n := perConn
		if i == 0 {
			n += *flows % *conns
		}
		wg.Add(1)
		go func(i, nFlows int) {
			defer wg.Done()
			res := &results[i]
			c, err := serve.DialWith(serve.DialConfig{
				Addr:      *addr,
				Flows:     nFlows,
				KeepAlive: *keepAlive,
				Retry: serve.Retry{
					Attempts: *retry,
					Base:     *retryBase,
					Max:      *retryMax,
					Seed:     *seed + int64(i),
				},
			})
			if err != nil {
				res.err = fmt.Errorf("dial: %w", err)
				return
			}
			assigned := c.Flows()
			// The sim generator picks which flow each cell belongs to;
			// load 1.0 yields one pick per draw.
			var gen sim.ArrivalProcess
			switch *pattern {
			case "uniform":
				gen, err = sim.NewUniformArrivals(nFlows, 1.0, *seed+int64(i))
			case "roundrobin":
				gen, err = sim.NewRoundRobinArrivals(nFlows, 1.0)
			default:
				err = fmt.Errorf("unknown arrivals pattern %q", *pattern)
			}
			if err != nil {
				res.err = err
				c.Close()
				return
			}
			var (
				slot    uint64
				carry   float64
				deadln  = time.Now().Add(*duration)
				burst   = make([]pktbuf.Queue, 0, 4096)
				perTick = cps * every.Seconds()
			)
			for time.Now().Before(deadln) {
				carry += perTick
				n := int(carry)
				carry -= float64(n)
				burst = burst[:0]
				for j := 0; j < n; j++ {
					q := gen.Next(slot)
					slot++
					if q == pktbuf.None {
						continue
					}
					burst = append(burst, assigned[q])
					if len(burst) == cap(burst) {
						if err := c.Submit(burst); err != nil {
							res.err = fmt.Errorf("submit: %w", err)
							break
						}
						burst = burst[:0]
					}
				}
				if res.err == nil && len(burst) > 0 {
					if err := c.Submit(burst); err != nil {
						res.err = fmt.Errorf("submit: %w", err)
					}
				}
				if res.err != nil {
					break
				}
				time.Sleep(*every)
			}
			if res.err == nil {
				ctx, cancel := context.WithTimeout(context.Background(), *byeWait)
				if err := c.Bye(ctx); err != nil {
					res.err = fmt.Errorf("bye: %w", err)
				}
				cancel()
			} else {
				c.Close()
			}
			// A connection that died past its retry budget is a failure
			// even if every Submit happened to return nil before the
			// reader noticed: the diagnostic names the terminal error.
			if err := c.Err(); err != nil && res.err == nil {
				res.err = fmt.Errorf("connection dead: %w", err)
			}
			res.stats = c.Stats()
			res.rejects = len(c.Rejects())
		}(i, n)
	}
	wg.Wait()

	var total serve.ClientStats
	rejects, failures := 0, 0
	for i := range results {
		r := &results[i]
		total.Submitted += r.stats.Submitted
		total.Delivered += r.stats.Delivered
		total.Rejected += r.stats.Rejected
		total.Resumes += r.stats.Resumes
		rejects += r.rejects
		if r.err != nil {
			failures++
			logger.Printf("conn %d: %v", i, r.err)
		}
	}
	logger.Printf("submitted=%d delivered=%d rejected=%d reject_frames=%d resumes=%d conns=%d flows=%d",
		total.Submitted, total.Delivered, total.Rejected, rejects, total.Resumes, *conns, *flows)
	switch {
	case failures > 0:
		os.Exit(1)
	case total.Delivered+total.Rejected != total.Submitted:
		logger.Printf("lost cells: %d submitted never resolved",
			total.Submitted-total.Delivered-total.Rejected)
		os.Exit(1)
	case *strict && total.Rejected > 0:
		logger.Printf("strict: %d cells rejected", total.Rejected)
		os.Exit(1)
	}
}
