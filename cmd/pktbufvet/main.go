// Command pktbufvet runs the repo's invariant analyzers
// (repro/internal/analysis): hotpath-noalloc, singlewriter, errwrap
// and publicapi, plus the compile-time escape gate for
// //pktbuf:hotpath functions.
//
// Standalone (the developer entrypoint — run it before pushing):
//
//	go run ./cmd/pktbufvet ./...
//	go run ./cmd/pktbufvet -escapes ./...
//
// As a vet tool (same analyzers, driven by the go command's
// per-package vet protocol):
//
//	go build -o /tmp/pktbufvet ./cmd/pktbufvet
//	go vet -vettool=/tmp/pktbufvet ./...
//
// The escape gate (-escapes) compiles the annotated packages with
// -gcflags='repro/...=-m', collects the compiler's escape-analysis
// diagnostics, and fails on any heap escape inside a
// //pktbuf:hotpath function that is not recorded in the baseline
// file (default testdata/escapes_baseline.txt; missing file = empty
// baseline, which is the current state of the tree).
// -write-baseline regenerates the file from the observed escapes.
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/escape"
	"repro/internal/analysis/load"
)

func main() {
	// The go vet vettool protocol calls with -V=full, -flags, or a
	// single *.cfg argument; everything else is the standalone CLI.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			printVersion()
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(unitCheck(os.Args[1]))
		}
	}

	escapes := flag.Bool("escapes", false,
		"run the escape-analysis gate over //pktbuf:hotpath functions")
	baseline := flag.String("escape-baseline", "testdata/escapes_baseline.txt",
		"baseline file of known hot-path escapes")
	writeBaseline := flag.Bool("write-baseline", false,
		"with -escapes: record the observed escapes as the new baseline")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: pktbufvet [-escapes [-escape-baseline file] [-write-baseline]] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, fset, err := load.Packages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pktbufvet:", err)
		os.Exit(2)
	}

	if *escapes {
		os.Exit(runEscapes(pkgs, fset, *baseline, *writeBaseline))
	}

	findings := 0
	for _, p := range pkgs {
		if !p.Target() {
			continue
		}
		findings += badWaivers(p, fset)
		pass := &analysis.Pass{
			Fset:      fset,
			Files:     p.Syntax,
			Pkg:       p.Types,
			TypesInfo: p.Info,
		}
		for _, a := range analysis.All() {
			pass.Report = func(d analysis.Diagnostic) {
				findings++
				fmt.Printf("%s: %s\n", fset.Position(d.Pos), d.Message)
			}
			if err := analysis.Run(a, pass); err != nil {
				fmt.Fprintf(os.Stderr, "pktbufvet: %s: %s: %v\n", a.Name, p.ImportPath, err)
				os.Exit(2)
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "pktbufvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// badWaivers reports //pktbuf:allow comments that name no analyzer or
// carry no justification: an unexplained waiver is itself a finding.
func badWaivers(p *load.Package, fset *token.FileSet) int {
	n := 0
	for _, f := range p.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//pktbuf:allow") {
					continue
				}
				if _, ok := analysis.ParseWaiver(c.Text); !ok {
					n++
					fmt.Printf("%s: malformed waiver %q: want //pktbuf:allow <analyzer> <reason>\n",
						fset.Position(c.Pos()), c.Text)
				}
			}
		}
	}
	return n
}

// runEscapes drives the escape gate.
func runEscapes(pkgs []*load.Package, fset *token.FileSet, baseline string, write bool) int {
	fresh, all, err := escape.Check(pkgs, fset, baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pktbufvet:", err)
		return 2
	}
	if write {
		if err := escape.WriteBaseline(baseline, all); err != nil {
			fmt.Fprintln(os.Stderr, "pktbufvet:", err)
			return 2
		}
		fmt.Printf("pktbufvet: escape baseline written to %s (%d sites)\n", baseline, len(all))
		return 0
	}
	for _, s := range fresh {
		fmt.Printf("%s: escape in hot path %s: %s\n", s.Pos, s.Func, s.Message)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr,
			"pktbufvet: %d new heap escape(s) in //pktbuf:hotpath functions\n", len(fresh))
		return 1
	}
	fmt.Printf("pktbufvet: escape gate clean (%d annotated function(s), %d baselined site(s))\n",
		countAnnotated(pkgs), len(all))
	return 0
}

func countAnnotated(pkgs []*load.Package) int {
	n := 0
	for _, p := range pkgs {
		if p.Target() {
			n += len(analysis.HotpathFuncs(p.Syntax))
		}
	}
	return n
}
