package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/analysis"
)

// vetConfig mirrors the JSON configuration the go command hands a
// -vettool for each package (the x/tools unitchecker protocol). Only
// the fields this tool consumes are declared.
type vetConfig struct {
	ID                        string
	ImportPath                string
	Dir                       string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion implements -V=full in the exact shape the go command's
// tool-ID parser requires: "<name> version devel ... buildID=<hex>",
// with the hex keyed to the binary contents so rebuilding the tool
// invalidates vet's result cache.
func printVersion() {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, h.Sum(nil))
}

// unitCheck analyzes one package described by a vet .cfg file and
// returns the process exit code. The go command invokes the tool once
// per package in the build graph: dependency invocations arrive with
// VetxOnly set and only need the facts file written (this suite uses
// no cross-package facts, so the file is a placeholder).
func unitCheck(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pktbufvet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pktbufvet: parse cfg:", err)
		return 2
	}
	if cfg.VetxOnly {
		return writeVetx(cfg, 0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			// The invariants guard production code; test-variant
			// packages re-run on their non-test files only.
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pktbufvet:", err)
			return 2
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return writeVetx(cfg, 0)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	// Test variants carry an " [pkg.test]" suffix on the import path;
	// strip it so path-keyed analyzers (errwrap, publicapi) behave
	// identically to the base package.
	path := cfg.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg, 0)
		}
		fmt.Fprintln(os.Stderr, "pktbufvet: typecheck:", err)
		return 2
	}

	findings := 0
	pass := &analysis.Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
	}
	for _, a := range analysis.All() {
		pass.Report = func(d analysis.Diagnostic) {
			findings++
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		}
		if err := analysis.Run(a, pass); err != nil {
			fmt.Fprintf(os.Stderr, "pktbufvet: %s: %v\n", a.Name, err)
			return 2
		}
	}
	code := 0
	if findings > 0 {
		code = 2
	}
	return writeVetx(cfg, code)
}

// writeVetx writes the (empty) facts file the go command expects as
// the vet action's output, then returns code.
func writeVetx(cfg vetConfig, code int) int {
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("pktbufvet.vetx"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "pktbufvet:", err)
			return 2
		}
	}
	return code
}
