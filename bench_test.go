package repro

import (
	"fmt"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
)

// ------------------------------------------------------------------
// Paper experiment benchmarks: one per table/figure. Each bench both
// times the generator and sanity-checks its output, so `go test
// -bench=.` regenerates the full evaluation.
// ------------------------------------------------------------------

// BenchmarkFigure8 regenerates Figure 8 (RADS h-SRAM access time and
// area vs lookahead, OC-768 and OC-3072, CAM vs linked list).
func BenchmarkFigure8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		figs := experiments.Figure8()
		if len(figs) != 2 {
			b.Fatal("bad Figure8 output")
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (Requests Register sizes and
// scheduling times per granularity).
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2()) != 2 {
			b.Fatal("bad Table2 output")
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10 (CFDS vs RADS SRAM area and
// access time as a function of delay, OC-3072).
func BenchmarkFigure10(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(experiments.Figure10()) != 6 {
			b.Fatal("bad Figure10 output")
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11 (maximum queue count per
// granularity under the 3.2 ns budget).
func BenchmarkFigure11(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure11()
		if len(rows) != 6 {
			b.Fatal("bad Figure11 output")
		}
	}
}

// BenchmarkHeadline regenerates the §8.3/§10 RADS-vs-CFDS headline.
func BenchmarkHeadline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := experiments.Headline()
		if h.RADS.AccessCAM <= h.CFDS.AccessCAM {
			b.Fatal("headline inverted")
		}
	}
}

// ------------------------------------------------------------------
// Simulation benchmarks: slot-accurate runs of the full buffer under
// the §3 adversarial pattern. ns/op is the cost of one simulated
// slot; the reported miss metric must stay zero.
// ------------------------------------------------------------------

func benchSimulate(b *testing.B, cfg core.Config, queues int) {
	b.Helper()
	b.ReportAllocs()
	buf, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	arr, _ := sim.NewRoundRobinArrivals(queues, 1.0)
	req, _ := sim.NewRoundRobinDrain(queues)
	warm := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
	if _, err := warm.Run(uint64(queues * cfg.Bsmall * 8)); err != nil {
		b.Fatal(err)
	}
	r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	b.ResetTimer()
	res, err := r.RunBatch(uint64(b.N), 0)
	if err != nil {
		b.Fatalf("%v (stats %v)", err, res.Stats)
	}
	b.StopTimer()
	if res.Stats.Misses != 0 {
		b.Fatalf("misses: %v", res.Stats)
	}
	b.ReportMetric(float64(res.Stats.Deliveries)/float64(b.N), "deliveries/slot")
}

// BenchmarkSimulateRADS runs the baseline (b=B) under the adversarial
// round-robin drain.
func BenchmarkSimulateRADS(b *testing.B) {
	benchSimulate(b, core.Config{Q: 32, B: 32, Bsmall: 32, Banks: 256}, 32)
}

// BenchmarkSimulateCFDS sweeps the CFDS granularity — the paper's
// central ablation (Figure 10/11's x-axis).
func BenchmarkSimulateCFDS(b *testing.B) {
	for _, gran := range []int{16, 8, 4, 2, 1} {
		b.Run(fmt.Sprintf("b=%d", gran), func(b *testing.B) {
			benchSimulate(b, core.Config{Q: 32, B: 32, Bsmall: gran, Banks: 256}, 32)
		})
	}
}

// BenchmarkSimulateSRAMOrg compares the two shared-SRAM organizations
// on the same workload (functional ablation of §7.1/§8.2).
func BenchmarkSimulateSRAMOrg(b *testing.B) {
	for _, org := range []core.SRAMOrg{core.OrgCAM, core.OrgLinkedList} {
		b.Run(org.String(), func(b *testing.B) {
			benchSimulate(b, core.Config{Q: 32, B: 32, Bsmall: 4, Banks: 256, Org: org}, 32)
		})
	}
}

// BenchmarkSimulateMMA compares ECQF against the lookahead-free MDQF
// baseline ([13]'s trade-off).
func BenchmarkSimulateMMA(b *testing.B) {
	for _, m := range []core.MMAKind{core.ECQF, core.MDQF} {
		b.Run(m.String(), func(b *testing.B) {
			benchSimulate(b, core.Config{Q: 32, B: 32, Bsmall: 4, Banks: 256, MMA: m}, 32)
		})
	}
}

// BenchmarkSimulateRenaming measures the §6 renaming layer's overhead
// on the datapath (unbounded DRAM, so renaming is pure bookkeeping).
func BenchmarkSimulateRenaming(b *testing.B) {
	for _, renaming := range []bool{false, true} {
		b.Run(fmt.Sprintf("renaming=%v", renaming), func(b *testing.B) {
			benchSimulate(b, core.Config{Q: 32, B: 32, Bsmall: 4, Banks: 256, Renaming: renaming}, 32)
		})
	}
}

// BenchmarkSimulateHotspot runs the skewed workload (80% of traffic on
// one queue) at full drain rate.
func BenchmarkSimulateHotspot(b *testing.B) {
	b.ReportAllocs()
	buf, err := core.New(core.Config{Q: 32, B: 32, Bsmall: 4, Banks: 256})
	if err != nil {
		b.Fatal(err)
	}
	arr, _ := sim.NewHotspotArrivals(32, 1.0, 0.8, 17)
	req, _ := sim.NewRoundRobinDrain(32)
	r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	b.ResetTimer()
	res, err := r.RunBatch(uint64(b.N), 0)
	if err != nil {
		b.Fatalf("%v (stats %v)", err, res.Stats)
	}
	b.StopTimer()
	if res.Stats.Misses != 0 {
		b.Fatal("misses")
	}
}

// BenchmarkSimulateLargeScale runs a paper-scale configuration
// (Q=512, b=4, M=256 — the Figure 10 design point) to show the
// simulator handles the full system.
func BenchmarkSimulateLargeScale(b *testing.B) {
	b.ReportAllocs()
	buf, err := core.New(core.Config{Q: 512, B: 32, Bsmall: 4, Banks: 256})
	if err != nil {
		b.Fatal(err)
	}
	arr, _ := sim.NewRoundRobinArrivals(512, 1.0)
	req, _ := sim.NewRoundRobinDrain(512)
	warm := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
	if _, err := warm.Run(512 * 16); err != nil {
		b.Fatal(err)
	}
	r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	b.ResetTimer()
	res, err := r.RunBatch(uint64(b.N), 0)
	if err != nil {
		b.Fatalf("%v (stats %v)", err, res.Stats)
	}
	b.StopTimer()
	if res.Stats.Misses != 0 {
		b.Fatal("misses")
	}
}

// BenchmarkSingleQueueBlast is the single-group stress: all traffic on
// one queue sustains 2 cells/slot on B/b banks (skips exercised).
func BenchmarkSingleQueueBlast(b *testing.B) {
	b.ReportAllocs()
	buf, err := core.New(core.Config{Q: 16, B: 32, Bsmall: 4, Banks: 64})
	if err != nil {
		b.Fatal(err)
	}
	req, _ := sim.NewRoundRobinDrain(16)
	warm := &sim.Runner{Buffer: buf, Arrivals: sim.NewSingleQueueArrivals(0), Requests: sim.NewIdleRequests()}
	if _, err := warm.Run(512); err != nil {
		b.Fatal(err)
	}
	r := &sim.Runner{Buffer: buf, Arrivals: sim.NewSingleQueueArrivals(0), Requests: req}
	b.ResetTimer()
	res, err := r.RunBatch(uint64(b.N), 0)
	if err != nil {
		b.Fatalf("%v (stats %v)", err, res.Stats)
	}
	b.StopTimer()
	if res.Stats.Misses != 0 {
		b.Fatal("misses")
	}
	b.ReportMetric(float64(res.Stats.DSS.MaxSkips), "max-skips")
}

// BenchmarkTick measures the raw per-slot cost of the buffer with no
// traffic (pipeline bookkeeping floor).
func BenchmarkTick(b *testing.B) {
	buf, err := core.New(core.Config{Q: 64, B: 32, Bsmall: 4, Banks: 256})
	if err != nil {
		b.Fatal(err)
	}
	in := core.TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buf.Tick(in); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------------
// BenchmarkTick* steady-state suite: per-slot cost of Tick under
// sustained full-rate traffic (one arrival and one request per slot,
// the §3 adversarial round-robin drain) at the OC-3072 design point
// (B=32). ns/op is the cost of one simulated slot including workload
// generation; allocs/op is the bookkeeping gate — the dense-arena
// datapath must stay at ~0 in steady state. Baselines are recorded in
// BENCH_baseline.json.
// ------------------------------------------------------------------

func benchTickSteadyState(b *testing.B, cfg core.Config, queues int) {
	b.Helper()
	buf, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	arr, _ := sim.NewRoundRobinArrivals(queues, 1.0)
	req, _ := sim.NewRoundRobinDrain(queues)
	warm := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
	if _, err := warm.Run(uint64(queues * cfg.B * 4)); err != nil {
		b.Fatal(err)
	}
	steady := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	if _, err := steady.Run(uint64(queues * cfg.B * 8)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := core.TickInput{Arrival: arr.Next(buf.Now()), Request: req.Next(buf.Now(), buf)}
		if _, err := buf.Tick(in); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if buf.Stats().Misses != 0 {
		b.Fatalf("misses: %v", buf.Stats())
	}
}

// BenchmarkTickOC3072SteadyState is the headline regression gate: the
// CFDS design point (Q=64, B=32, b=4, M=256, CAM SRAM) in steady
// state.
func BenchmarkTickOC3072SteadyState(b *testing.B) {
	benchTickSteadyState(b, core.Config{Q: 64, B: 32, Bsmall: 4, Banks: 256}, 64)
}

// BenchmarkTickOC3072Renaming adds the §6 renaming layer on the same
// design point.
func BenchmarkTickOC3072Renaming(b *testing.B) {
	benchTickSteadyState(b, core.Config{Q: 64, B: 32, Bsmall: 4, Banks: 256, Renaming: true}, 64)
}

// BenchmarkTickOC3072ListSRAM swaps in the unified linked-list head
// SRAM (the zero-map slab organization).
func BenchmarkTickOC3072ListSRAM(b *testing.B) {
	benchTickSteadyState(b, core.Config{Q: 64, B: 32, Bsmall: 4, Banks: 256, Org: core.OrgLinkedList}, 64)
}

// BenchmarkTickOC3072LargeScale is the Figure 10 paper-scale point
// (Q=512) in steady state.
func BenchmarkTickOC3072LargeScale(b *testing.B) {
	benchTickSteadyState(b, core.Config{Q: 512, B: 32, Bsmall: 4, Banks: 256}, 512)
}

// ------------------------------------------------------------------
// BenchmarkTickSparse suite: per-slot cost at low offered loads,
// where most slots carry no arrival and no request. The sparse
// variant is the event-driven fast path (Bernoulli gap generator +
// idle-stable drain policy + Buffer.FastForward through quiescent
// spans); the dense variant runs the identical workload with the
// fast paths hidden, paying the full per-slot loop. Cost per
// simulated slot includes workload generation and the request
// policy — exactly what a driver pays. The configuration is a
// short-pipeline point (lookahead 2 + latency 2, so idle gaps at
// ρ=0.01 dwarf the request pipeline) at RADS granularity b=B, where
// these loads never accumulate a DRAM block and the run stays
// miss-free by construction. Baselines live in BENCH_baseline.json
// (sparse_ff_pr5 section).
// ------------------------------------------------------------------

// benchDenseArrivals hides the sparse/batch fast paths of a generator.
type benchDenseArrivals struct{ inner sim.ArrivalProcess }

func (d benchDenseArrivals) Next(slot cell.Slot) cell.QueueID { return d.inner.Next(slot) }

// benchUnstableRequests hides a policy's idle-stable marker.
type benchUnstableRequests struct{ inner sim.RequestPolicy }

func (u benchUnstableRequests) Next(slot cell.Slot, v sim.View) cell.QueueID {
	return u.inner.Next(slot, v)
}

func benchTickSparse(b *testing.B, queues int, load float64, dense bool) {
	b.ReportAllocs()
	buf, err := core.New(core.Config{
		Q: queues, B: 32, Bsmall: 32, Banks: 256, Lookahead: 2, LatencySlots: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	arr, err := sim.NewBernoulliArrivals(queues, load, 1)
	if err != nil {
		b.Fatal(err)
	}
	req, err := sim.NewRoundRobinDrain(queues)
	if err != nil {
		b.Fatal(err)
	}
	r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	if dense {
		r.Arrivals = benchDenseArrivals{arr}
		r.Requests = benchUnstableRequests{req}
	}
	b.ResetTimer()
	res, err := r.RunBatch(uint64(b.N), 0)
	if err != nil {
		b.Fatalf("%v (stats %v)", err, res.Stats)
	}
	b.StopTimer()
	if res.Stats.Misses != 0 || res.Stats.BadRequests != 0 {
		b.Fatalf("not clean: %v", res.Stats)
	}
	b.ReportMetric(100*float64(res.Stats.FastForwardedSlots)/float64(b.N), "%slots-skipped")
}

// BenchmarkTickSparse measures the event-driven fast path across the
// low-load/bursty scenario family (ρ ∈ {0.01, 0.1, 0.5} × Q ∈ {1k,
// 64k}). Gate: at ρ=0.01 the sparse path must be ≥10× cheaper per
// simulated slot than BenchmarkTickSparseDense at the same load, at
// 0 allocs/op.
func BenchmarkTickSparse(b *testing.B) {
	for _, load := range []float64{0.01, 0.1, 0.5} {
		for _, queues := range []int{1024, 65536} {
			b.Run(fmt.Sprintf("rho=%g/Q=%d", load, queues), func(b *testing.B) {
				benchTickSparse(b, queues, load, false)
			})
		}
	}
}

// BenchmarkTickSparseDense is the dense reference: the identical
// workload with the fast paths hidden, paying the full per-slot loop.
func BenchmarkTickSparseDense(b *testing.B) {
	for _, load := range []float64{0.01, 0.1, 0.5} {
		for _, queues := range []int{1024, 65536} {
			b.Run(fmt.Sprintf("rho=%g/Q=%d", load, queues), func(b *testing.B) {
				benchTickSparse(b, queues, load, true)
			})
		}
	}
}

// benchTickBatchFused measures the dense fused batch kernel: steady
// full-rate round-robin traffic (the §3 adversary — one arrival and
// one request per slot) driven through TickBatch with precomputed
// inputs, so ns/op is the cost of one simulated slot through the
// structure-of-arrays kernel alone. The batch length is a multiple of
// the queue count, so every batch replays an identical whole number
// of round-robin rounds against warmed structures; the gates are
// 0 allocs/op and a miss-free run. Baselines live in
// BENCH_baseline.json (fused_kernel_pr6 section).
func benchTickBatchFused(b *testing.B, cfg core.Config, queues int) {
	b.Helper()
	buf, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Arrival-only warmup: eight cells per queue, so the full-rate
	// request stream below never outruns the backlog (per-queue
	// requests in flight stay bounded by ~pipe/Q + 1 < 8).
	arr, _ := sim.NewRoundRobinArrivals(queues, 1.0)
	warm := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
	if _, err := warm.Run(uint64(queues * 8)); err != nil {
		b.Fatal(err)
	}
	batch := queues
	if batch < 8192 {
		batch = (8192 / queues) * queues
	}
	ins := make([]core.TickInput, batch)
	for i := range ins {
		q := cell.QueueID(i % queues)
		ins[i] = core.TickInput{Arrival: q, Request: q}
	}
	outs := make([]core.TickOutput, batch)
	// Prime the fused path (kernel build, scratch arena, pipeline fill)
	// off the clock; the batch length divides the round-robin period,
	// so alignment is preserved.
	for i := 0; i < 4; i++ {
		if _, err := buf.TickBatch(ins, outs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := batch
		if left := b.N - done; left < n {
			n = left
		}
		if _, err := buf.TickBatch(ins[:n], outs[:n]); err != nil {
			b.Fatal(err)
		}
		done += n
	}
	b.StopTimer()
	if st := buf.Stats(); st.Misses != 0 {
		b.Fatalf("misses: %v", st)
	}
}

// BenchmarkTickBatchFused is the dense fused-kernel suite: the paper
// design points from LargeScale (Q=512) up to Q=64k for both head
// MMAs. The Q=65536 rows are the sub-100ns tentpole gate.
func BenchmarkTickBatchFused(b *testing.B) {
	for _, m := range []core.MMAKind{core.ECQF, core.MDQF} {
		for _, queues := range []int{512, 4096, 65536} {
			b.Run(fmt.Sprintf("%s/Q=%d", m, queues), func(b *testing.B) {
				benchTickBatchFused(b, core.Config{Q: queues, B: 32, Bsmall: 4, Banks: 256, MMA: m}, queues)
			})
		}
	}
}

// BenchmarkTickQueueScaling sweeps the queue count across three
// orders of magnitude for both head MMAs. Per-slot cost must stay
// near-flat: every selection decision resolves through the
// hierarchical bitmap indices (O(log₆₄ Q)) rather than scanning the
// Q occupancy counters or the Q(b−1)+1 lookahead, so queue count no
// longer prices the hot path. Warmup is deliberately light (the full
// steady-state soak at Q=64k would dwarf the measurement); the
// no-miss gate still holds by construction.
func BenchmarkTickQueueScaling(b *testing.B) {
	for _, m := range []core.MMAKind{core.ECQF, core.MDQF} {
		for _, queues := range []int{64, 1024, 16384, 65536} {
			b.Run(fmt.Sprintf("%s/Q=%d", m, queues), func(b *testing.B) {
				buf, err := core.New(core.Config{Q: queues, B: 32, Bsmall: 4, Banks: 256, MMA: m})
				if err != nil {
					b.Fatal(err)
				}
				arr, _ := sim.NewRoundRobinArrivals(queues, 1.0)
				req, _ := sim.NewRoundRobinDrain(queues)
				warm := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
				if _, err := warm.Run(uint64(queues * 4)); err != nil {
					b.Fatal(err)
				}
				steady := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
				if _, err := steady.Run(uint64(queues * 2)); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					in := core.TickInput{Arrival: arr.Next(buf.Now()), Request: req.Next(buf.Now(), buf)}
					if _, err := buf.Tick(in); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if buf.Stats().Misses != 0 {
					b.Fatalf("misses: %v", buf.Stats())
				}
			})
		}
	}
}
