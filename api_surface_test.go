package repro

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// publicPackages is the supported API surface: everything importable
// outside the module. A change here is a compatibility event.
var publicPackages = []string{"pktbuf", "pktbuf/packet", "pktbuf/router", "pktbuf/serve", "pktbuf/serve/wire", "pktbuf/sim", "pktbuf/trace"}

// publicAPISurface renders the exported declarations (signatures
// only, no bodies, no comments) of every public package into a
// deterministic text form.
func publicAPISurface(t *testing.T) string {
	t.Helper()
	var out bytes.Buffer
	for _, dir := range publicPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", dir, err)
		}
		names := make([]string, 0, len(pkgs))
		for name := range pkgs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			pkg := pkgs[name]
			fmt.Fprintf(&out, "package %s // import %q\n\n", name, "repro/"+dir)
			files := make([]string, 0, len(pkg.Files))
			for fn := range pkg.Files {
				files = append(files, fn)
			}
			sort.Strings(files)
			for _, fn := range files {
				f := pkg.Files[fn]
				if !ast.FileExports(f) {
					continue
				}
				for _, d := range f.Decls {
					if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
						continue
					}
					if fd, ok := d.(*ast.FuncDecl); ok {
						fd.Body = nil
					}
					if err := printer.Fprint(&out, fset, d); err != nil {
						t.Fatal(err)
					}
					out.WriteString("\n\n")
				}
			}
		}
	}
	return out.String()
}

// TestPublicAPISurface is the breaking-change tripwire: the exported
// surface of the public packages must match the checked-in golden
// snapshot. After an intentional API change, regenerate it with
//
//	UPDATE_API_SURFACE=1 go test -run TestPublicAPISurface .
//
// and review the golden diff like any other API review.
func TestPublicAPISurface(t *testing.T) {
	got := publicAPISurface(t)
	golden := filepath.Join("testdata", "api_surface.golden")
	if os.Getenv("UPDATE_API_SURFACE") == "1" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden snapshot (run UPDATE_API_SURFACE=1 go test -run TestPublicAPISurface .): %v", err)
	}
	if got != string(want) {
		t.Errorf("public API surface changed.\nIf intentional, regenerate with UPDATE_API_SURFACE=1 go test -run TestPublicAPISurface .\n%s",
			surfaceDiff(string(want), got))
	}
}

// surfaceDiff renders a minimal line diff (full context is in the
// golden file; this just points at the first divergence).
func surfaceDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first divergence at golden line %d:\n- %s\n+ %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("golden has %d lines, current surface has %d", len(wl), len(gl))
}

// TestExamplesUsePublicAPIOnly enforces the façade boundary: example
// code is user-facing documentation and must not reach into
// repro/internal. cmd/pktbufsim is held to the same rule — it is the
// reference harness for the public surface, including the router
// engine mode — as are cmd/pktbufd and cmd/pktbufload, the serving
// daemon and its load generator.
func TestExamplesUsePublicAPIOnly(t *testing.T) {
	files, err := filepath.Glob("examples/*/*.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []string{"cmd/pktbufsim/*.go", "cmd/pktbufd/*.go", "cmd/pktbufload/*.go"} {
		more, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, more...)
	}
	if len(files) == 0 {
		t.Fatal("no example files found")
	}
	for _, file := range files {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if strings.HasPrefix(path, "repro/internal") {
				t.Errorf("%s imports %s; examples must use the public API only", file, path)
			}
		}
	}
}
