package repro

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/sram"
)

// driveCountingMisses runs an adversarial full-load trace, tolerating
// (and counting) guarantee violations — misses, overflows and drops —
// used by ablations that deliberately forfeit the guarantees.
func driveCountingMisses(tb testing.TB, b *core.Buffer, queues, slots int) (deliveries, violations uint64) {
	tb.Helper()
	for i := 0; i < slots; i++ {
		in := core.TickInput{Arrival: cell.QueueID(i % queues), Request: cell.NoQueue}
		q := cell.QueueID(i % queues)
		if b.Requestable(q) > 0 {
			in.Request = q
		}
		out, err := b.Tick(in)
		switch {
		case err == nil:
		case errors.Is(err, core.ErrMiss),
			errors.Is(err, core.ErrTailOverflow),
			errors.Is(err, core.ErrBufferFull),
			errors.Is(err, core.ErrOutOfOrder),
			errors.Is(err, sram.ErrFull):
			// Degradation evidence (drop-induced gaps cascade into
			// order violations); keep running and keep counting.
			violations++
		default:
			tb.Fatalf("slot %d: %v", i, err)
		}
		if out.Delivered != nil {
			deliveries++
		}
	}
	return deliveries, violations
}

// TestAblationFIFOSchedulerDegrades demonstrates the §5.3 motivation
// end to end: replacing the DSA's oldest-ready-first selection with
// head-of-line blocking on the same configuration loses throughput
// and/or the zero-miss guarantee, while the paper's scheduler keeps
// both.
func TestAblationFIFOSchedulerDegrades(t *testing.T) {
	const queues, slots = 16, 60000
	mk := func(fifo bool) *core.Buffer {
		b, err := core.New(core.Config{
			Q: queues, B: 32, Bsmall: 2, Banks: 64, FIFOScheduler: fifo,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Backlog deep into DRAM so the DRAM path carries the drain.
		for i := 0; i < queues*64; i++ {
			if _, err := b.Tick(core.TickInput{Arrival: cell.QueueID(i % queues), Request: cell.NoQueue}); err != nil {
				t.Fatal(err)
			}
		}
		return b
	}
	goodDel, goodViol := driveCountingMisses(t, mk(false), queues, slots)
	fifoDel, fifoViol := driveCountingMisses(t, mk(true), queues, slots)
	if goodViol != 0 {
		t.Fatalf("paper scheduler violated guarantees %d times", goodViol)
	}
	degraded := fifoViol > 0 || fifoDel < goodDel*95/100
	if !degraded {
		t.Errorf("FIFO ablation did not degrade: deliveries %d vs %d, violations %d",
			fifoDel, goodDel, fifoViol)
	}
	t.Logf("oldest-ready: %d deliveries, %d violations; FIFO: %d deliveries, %d violations",
		goodDel, goodViol, fifoDel, fifoViol)
}

// BenchmarkAblationScheduler times both disciplines on the same
// adversarial workload, reporting deliveries/slot and misses.
func BenchmarkAblationScheduler(b *testing.B) {
	b.ReportAllocs()
	for _, fifo := range []bool{false, true} {
		name := "oldest-ready-first"
		if fifo {
			name = "fifo-blocking"
		}
		b.Run(name, func(b *testing.B) {
			buf, err := core.New(core.Config{
				Q: 16, B: 32, Bsmall: 2, Banks: 64, FIFOScheduler: fifo,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 16*64; i++ {
				if _, err := buf.Tick(core.TickInput{Arrival: cell.QueueID(i % 16), Request: cell.NoQueue}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			del, viol := driveCountingMisses(b, buf, 16, b.N)
			b.StopTimer()
			b.ReportMetric(float64(del)/float64(b.N), "deliveries/slot")
			b.ReportMetric(float64(viol), "violations")
		})
	}
}

// BenchmarkAblationMMASizing quantifies [13]'s lookahead trade-off on
// the running system: ECQF vs the lookahead-free MDQF at identical
// capacity, reporting the head SRAM high-water mark each actually
// needs.
func BenchmarkAblationMMASizing(b *testing.B) {
	b.ReportAllocs()
	for _, kind := range []core.MMAKind{core.ECQF, core.MDQF} {
		b.Run(fmt.Sprintf("%v", kind), func(b *testing.B) {
			cfg, err := (core.Config{Q: 16, B: 32, Bsmall: 4, Banks: 64, MMA: kind}).ApplyDefaults()
			if err != nil {
				b.Fatal(err)
			}
			cfg.HeadSRAMCells *= 8 // headroom so both finish cleanly
			buf, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 16*64; i++ {
				if _, err := buf.Tick(core.TickInput{Arrival: cell.QueueID(i % 16), Request: cell.NoQueue}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			_, viol := driveCountingMisses(b, buf, 16, b.N)
			b.StopTimer()
			if viol != 0 {
				b.Fatalf("violations: %d", viol)
			}
			b.ReportMetric(float64(buf.Stats().HeadHighWater), "headSRAM-highwater-cells")
		})
	}
}
