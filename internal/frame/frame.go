// Package frame is the snapshot serialization layer. Snapshots reuse
// the trace record conventions — line-oriented text, `#` comments,
// whitespace separated decimal fields — and add one structuring
// construct on top: a frame, opened by a `!name key=value ...` header
// line and holding zero or more data rows of signed decimal fields
// until the next header. A snapshot is a flat sequence of frames; each
// substrate owns the frames it wrote and is oblivious to the rest, so
// the encoding versions as a whole (the reader surfaces unknown
// layouts through the caller's version frame, not by guessing).
//
//	# pktbuf snapshot, version 1
//	!core now=512 inpipe=3
//	!tails total=7
//	0 2 4 1 4 2
//	...
package frame

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrFrame reports a malformed snapshot frame.
var ErrFrame = errors.New("frame: malformed")

// Writer emits frames. Errors are sticky and surfaced by Flush.
type Writer struct {
	bw       *bufio.Writer
	err      error
	inHeader bool
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

func (w *Writer) endHeader() {
	if w.inHeader {
		w.inHeader = false
		w.writeByte('\n')
	}
}

func (w *Writer) writeByte(b byte) {
	if w.err == nil {
		w.err = w.bw.WriteByte(b)
	}
}

func (w *Writer) writeString(s string) {
	if w.err == nil {
		_, w.err = w.bw.WriteString(s)
	}
}

// Comment writes a `#` comment line.
func (w *Writer) Comment(text string) {
	w.endHeader()
	w.writeString("# ")
	w.writeString(text)
	w.writeByte('\n')
}

// Begin opens a frame header; Attr appends key=value pairs to it until
// the first Row, Comment or next Begin closes the line.
func (w *Writer) Begin(name string) {
	w.endHeader()
	w.writeByte('!')
	w.writeString(name)
	w.inHeader = true
}

// Attr appends one key=value pair to the open frame header.
func (w *Writer) Attr(key string, v int64) {
	if !w.inHeader && w.err == nil {
		w.err = fmt.Errorf("%w: Attr %q outside a frame header", ErrFrame, key)
		return
	}
	w.writeByte(' ')
	w.writeString(key)
	w.writeByte('=')
	w.writeString(strconv.FormatInt(v, 10))
}

// Row writes one data row of signed decimal fields.
func (w *Writer) Row(vals ...int64) {
	w.endHeader()
	for i, v := range vals {
		if i > 0 {
			w.writeByte(' ')
		}
		w.writeString(strconv.FormatInt(v, 10))
	}
	w.writeByte('\n')
}

// Flush terminates the stream and returns the first write error.
func (w *Writer) Flush() error {
	w.endHeader()
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Reader parses a frame stream.
type Reader struct {
	sc      *bufio.Scanner
	line    int
	name    string
	attrs   map[string]int64
	pending string // a header line read while scanning rows
	hasPend bool
	eof     bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{sc: bufio.NewScanner(r), attrs: map[string]int64{}}
}

// nextLine returns the next non-blank, non-comment line.
func (r *Reader) nextLine() (string, bool, error) {
	if r.hasPend {
		r.hasPend = false
		return r.pending, true, nil
	}
	for r.sc.Scan() {
		r.line++
		text := strings.TrimSpace(r.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		return text, true, nil
	}
	r.eof = true
	return "", false, r.sc.Err()
}

// Next advances to the next frame header and returns its name, or
// io.EOF at the end of the stream. Unread rows of the previous frame
// are skipped.
func (r *Reader) Next() (string, error) {
	for {
		text, ok, err := r.nextLine()
		if err != nil {
			return "", err
		}
		if !ok {
			return "", io.EOF
		}
		if !strings.HasPrefix(text, "!") {
			continue // skip leftover rows of the previous frame
		}
		return r.parseHeader(text)
	}
}

// Expect advances to the next frame and requires it to be name.
func (r *Reader) Expect(name string) error {
	got, err := r.Next()
	if err != nil {
		return fmt.Errorf("%w: want frame %q: %v", ErrFrame, name, err)
	}
	if got != name {
		return fmt.Errorf("%w: line %d: want frame %q, got %q", ErrFrame, r.line, name, got)
	}
	return nil
}

func (r *Reader) parseHeader(text string) (string, error) {
	fields := strings.Fields(text[1:])
	if len(fields) == 0 {
		return "", fmt.Errorf("%w: line %d: empty frame header", ErrFrame, r.line)
	}
	r.name = fields[0]
	clear(r.attrs)
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return "", fmt.Errorf("%w: line %d: bad attr %q", ErrFrame, r.line, f)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return "", fmt.Errorf("%w: line %d: bad attr %q", ErrFrame, r.line, f)
		}
		r.attrs[key] = n
	}
	return r.name, nil
}

// Name returns the current frame's name.
func (r *Reader) Name() string { return r.name }

// Attr returns the named header attribute of the current frame.
func (r *Reader) Attr(key string) (int64, bool) {
	v, ok := r.attrs[key]
	return v, ok
}

// NeedAttr returns the named attribute or a format error.
func (r *Reader) NeedAttr(key string) (int64, error) {
	v, ok := r.attrs[key]
	if !ok {
		return 0, fmt.Errorf("%w: frame %q missing attr %q", ErrFrame, r.name, key)
	}
	return v, nil
}

// Row returns the next data row of the current frame, or ok=false when
// the frame ends (next header or end of stream).
func (r *Reader) Row() ([]int64, bool, error) {
	text, ok, err := r.nextLine()
	if err != nil || !ok {
		return nil, false, err
	}
	if strings.HasPrefix(text, "!") {
		r.pending, r.hasPend = text, true
		return nil, false, nil
	}
	fields := strings.Fields(text)
	vals := make([]int64, len(fields))
	for i, f := range fields {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, false, fmt.Errorf("%w: line %d: bad field %q", ErrFrame, r.line, f)
		}
		vals[i] = n
	}
	return vals, true, nil
}

// NeedRow returns the next data row, requiring it to exist and have
// exactly n fields (n < 0 skips the length check).
func (r *Reader) NeedRow(n int) ([]int64, error) {
	vals, ok, err := r.Row()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: frame %q: missing row", ErrFrame, r.name)
	}
	if n >= 0 && len(vals) != n {
		return nil, fmt.Errorf("%w: line %d: frame %q: want %d fields, got %d", ErrFrame, r.line, r.name, n, len(vals))
	}
	return vals, nil
}
