package frame

import (
	"errors"
	"io"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Comment("pktbuf snapshot, version 1")
	w.Begin("core")
	w.Attr("now", 512)
	w.Attr("inpipe", -1)
	w.Begin("tails")
	w.Attr("n", 2)
	w.Row(0, 2, 4)
	w.Row(1, -7)
	w.Begin("empty")
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	r := NewReader(strings.NewReader(sb.String()))
	if err := r.Expect("core"); err != nil {
		t.Fatalf("Expect core: %v", err)
	}
	if v, err := r.NeedAttr("now"); err != nil || v != 512 {
		t.Fatalf("now = %d, %v", v, err)
	}
	if v, err := r.NeedAttr("inpipe"); err != nil || v != -1 {
		t.Fatalf("inpipe = %d, %v", v, err)
	}
	if _, err := r.NeedAttr("missing"); !errors.Is(err, ErrFrame) {
		t.Fatalf("missing attr: %v", err)
	}
	if err := r.Expect("tails"); err != nil {
		t.Fatalf("Expect tails: %v", err)
	}
	row, err := r.NeedRow(3)
	if err != nil || row[0] != 0 || row[1] != 2 || row[2] != 4 {
		t.Fatalf("row 1 = %v, %v", row, err)
	}
	row, err = r.NeedRow(-1)
	if err != nil || len(row) != 2 || row[1] != -7 {
		t.Fatalf("row 2 = %v, %v", row, err)
	}
	if _, ok, err := r.Row(); ok || err != nil {
		t.Fatalf("row past end: ok=%v err=%v", ok, err)
	}
	if err := r.Expect("empty"); err != nil {
		t.Fatalf("Expect empty after pushback: %v", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next at end: %v", err)
	}
}

func TestSkipsLeftoverRows(t *testing.T) {
	in := "!a n=3\n1\n2\n3\n!b\n"
	r := NewReader(strings.NewReader(in))
	if err := r.Expect("a"); err != nil {
		t.Fatal(err)
	}
	// Read only one of three rows; Next must skip the rest.
	if _, err := r.NeedRow(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Expect("b"); err != nil {
		t.Fatal(err)
	}
}

func TestMalformed(t *testing.T) {
	for _, in := range []string{
		"!a x\n",      // attr without =
		"!a x=y\n",    // non-numeric attr
		"!\n",         // empty header
		"!a\n1 two\n", // non-numeric field
	} {
		r := NewReader(strings.NewReader(in))
		_, err := r.Next()
		if err == nil {
			_, err = r.NeedRow(-1)
		}
		if !errors.Is(err, ErrFrame) {
			t.Errorf("input %q: err = %v, want ErrFrame", in, err)
		}
	}
}

func TestAttrOutsideHeader(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Begin("a")
	w.Row(1)
	w.Attr("late", 9)
	if err := w.Flush(); !errors.Is(err, ErrFrame) {
		t.Fatalf("Flush = %v, want ErrFrame", err)
	}
}
