// Package experiments regenerates every table and figure of the
// paper's evaluation (§7 and §8) from the dimensioning formulas
// (internal/dimension) and the technology model (internal/cacti).
// Each generator returns a plain data structure plus a TableString
// rendering; cmd/paperrepro prints them and the repository benchmarks
// time them. EXPERIMENTS.md records paper-vs-model values.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cacti"
	"repro/internal/cell"
	"repro/internal/dimension"
)

// Point groups the two evaluation configurations used throughout §7
// and §8 (Q=128, B=8 at OC-768; Q=512, B=32 at OC-3072, M=256 banks).
type Point struct {
	Rate  cell.LineRate
	Q, B  int
	Banks int
}

// OC768 and OC3072 are the paper's two technology evaluation points.
var (
	OC768  = Point{Rate: cell.OC768, Q: 128, B: 8, Banks: 256}
	OC3072 = Point{Rate: cell.OC3072, Q: 512, B: 32, Banks: 256}
)

// config builds the dimension.Config for granularity b and lookahead l.
func (p Point) config(b, l int) dimension.Config {
	return dimension.Config{Q: p.Q, B: p.B, Bsmall: b, M: p.Banks, Lookahead: l}
}

// lookaheadSweep returns an increasing grid of lookahead values from
// one block to the ECQF full lookahead.
func lookaheadSweep(q, b, points int) []int {
	full := dimension.FullLookahead(q, b)
	if points < 2 || full <= b {
		return []int{full}
	}
	out := make([]int, 0, points)
	for i := 0; i < points; i++ {
		l := b + (full-b)*i/(points-1)
		if len(out) == 0 || l > out[len(out)-1] {
			out = append(out, l)
		}
	}
	return out
}

// ---------------------------------------------------------------- Fig 8

// Fig8Row is one lookahead sample of Figure 8: the RADS h-SRAM size
// and the two organizations' cost.
type Fig8Row struct {
	Lookahead int
	SRAMCells int
	CAM, LL   cacti.Estimate
}

// Fig8 is one panel pair (access time + area) of Figure 8.
type Fig8 struct {
	Point Point
	Rows  []Fig8Row
}

// Figure8 reproduces Figure 8: RADS h-SRAM access time and area as a
// function of the lookahead, for OC-768 (Q=128, B=8) and OC-3072
// (Q=512, B=32), global CAM vs unified linked list.
func Figure8() []Fig8 {
	var out []Fig8
	for _, p := range []Point{OC768, OC3072} {
		f := Fig8{Point: p}
		for _, l := range lookaheadSweep(p.Q, p.B, 12) {
			cells := dimension.RADSSRAMSize(p.Q, l, p.B)
			f.Rows = append(f.Rows, Fig8Row{
				Lookahead: l,
				SRAMCells: cells,
				CAM:       cacti.ForCells(cacti.OrgCAM, cells),
				LL:        cacti.ForCells(cacti.OrgLinkedList, cells),
			})
		}
		out = append(out, f)
	}
	return out
}

// TableString renders the panel as the paper's series.
func (f Fig8) TableString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — %s (Q=%d, B=%d): RADS h-SRAM vs lookahead\n",
		f.Point.Rate, f.Point.Q, f.Point.B)
	fmt.Fprintf(&b, "%10s %10s %10s %12s %12s %12s %12s\n",
		"lookahead", "cells", "kB", "CAM ns", "LL ns", "CAM cm2", "LL cm2")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%10d %10d %10.1f %12.2f %12.2f %12.3f %12.3f\n",
			r.Lookahead, r.SRAMCells, float64(r.SRAMCells*cell.Size)/1e3,
			r.CAM.AccessNS, r.LL.AccessNS, r.CAM.AreaCM2, r.LL.AreaCM2)
	}
	fmt.Fprintf(&b, "budget: %.1f ns per cell\n", f.Point.Rate.AccessBudgetNS())
	return b.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one granularity column of Table 2.
type Table2Row struct {
	Bsmall  int
	RRSize  int
	SchedNS float64 // 0 renders as "-" (degenerate RR)
}

// Table2Panel is one line-rate row pair of Table 2.
type Table2Panel struct {
	Point Point
	Rows  []Table2Row
}

// Table2 reproduces Table 2: Requests Register size (equation (1))
// and the time available to schedule one request, per granularity.
func Table2() []Table2Panel {
	var out []Table2Panel
	for _, p := range []Point{OC768, OC3072} {
		panel := Table2Panel{Point: p}
		for _, b := range []int{32, 16, 8, 4, 2, 1} {
			if b > p.B {
				continue
			}
			c := p.config(b, 0)
			panel.Rows = append(panel.Rows, Table2Row{
				Bsmall:  b,
				RRSize:  c.RRSize(),
				SchedNS: c.SchedulingTimeNS(p.Rate),
			})
		}
		out = append(out, panel)
	}
	return out
}

// TableString renders the panel like the paper's Table 2.
func (t Table2Panel) TableString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — %s (Q=%d, B=%d, M=%d)\n", t.Point.Rate, t.Point.Q, t.Point.B, t.Point.Banks)
	fmt.Fprintf(&b, "%18s", "b")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%9d", r.Bsmall)
	}
	fmt.Fprintf(&b, "\n%18s", "RR size")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%9d", r.RRSize)
	}
	fmt.Fprintf(&b, "\n%18s", "sched. time (ns)")
	for _, r := range t.Rows {
		if r.SchedNS == 0 {
			fmt.Fprintf(&b, "%9s", "-")
		} else {
			fmt.Fprintf(&b, "%9.1f", r.SchedNS)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// ---------------------------------------------------------------- Fig 10

// Fig10Row is one lookahead sample of one granularity series.
type Fig10Row struct {
	Lookahead    int
	LatencySlots int
	DelaySeconds float64
	HeadCells    int
	TailCells    int
	// Access is the most restricting access time (the larger SRAM)
	// in the global CAM organization; AreaCAM / AreaLL are the
	// combined h+t areas.
	AccessCAM float64
	AreaCAM   float64
	AreaLL    float64
}

// Fig10Series is one granularity curve (b=32 is the RADS baseline).
type Fig10Series struct {
	Bsmall int
	IsRADS bool
	Rows   []Fig10Row
}

// Figure10 reproduces Figure 10: SRAM (h+t) area and most-restricting
// access time as a function of the total delay (lookahead + latency),
// at OC-3072 with Q=512, M=256, for b ∈ {32(RADS),16,8,4,2,1}.
func Figure10() []Fig10Series {
	p := OC3072
	var out []Fig10Series
	for _, b := range []int{32, 16, 8, 4, 2, 1} {
		s := Fig10Series{Bsmall: b, IsRADS: b == p.B}
		for _, l := range lookaheadSweep(p.Q, b, 10) {
			c := p.config(b, l)
			head := c.HeadSRAMSize()
			tail := c.TailSRAMSize()
			larger := head
			if tail > larger {
				larger = tail
			}
			s.Rows = append(s.Rows, Fig10Row{
				Lookahead:    l,
				LatencySlots: c.LatencySlots(),
				DelaySeconds: c.DelaySeconds(p.Rate),
				HeadCells:    head,
				TailCells:    tail,
				AccessCAM:    cacti.ForCells(cacti.OrgCAM, larger).AccessNS,
				AreaCAM:      cacti.ForCells(cacti.OrgCAM, head).AreaCM2 + cacti.ForCells(cacti.OrgCAM, tail).AreaCM2,
				AreaLL:       cacti.ForCells(cacti.OrgLinkedList, head).AreaCM2 + cacti.ForCells(cacti.OrgLinkedList, tail).AreaCM2,
			})
		}
		out = append(out, s)
	}
	return out
}

// TableString renders one series.
func (s Fig10Series) TableString() string {
	var b strings.Builder
	label := fmt.Sprintf("b=%d", s.Bsmall)
	if s.IsRADS {
		label += " (RADS)"
	}
	fmt.Fprintf(&b, "Figure 10 — OC-3072 series %s\n", label)
	fmt.Fprintf(&b, "%10s %10s %12s %10s %10s %12s %12s %12s\n",
		"lookahead", "latency", "delay(us)", "head", "tail", "CAM ns", "CAM cm2", "LL cm2")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%10d %10d %12.2f %10d %10d %12.2f %12.3f %12.3f\n",
			r.Lookahead, r.LatencySlots, r.DelaySeconds*1e6,
			r.HeadCells, r.TailCells, r.AccessCAM, r.AreaCAM, r.AreaLL)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig 11

// Fig11Row is one bar of Figure 11.
type Fig11Row struct {
	Bsmall   int
	IsRADS   bool
	MaxQueue int
}

// Figure11 reproduces Figure 11: the maximum number of (physical)
// queues whose h/t-SRAM still meets the OC-3072 access budget
// (3.2 ns) in the global CAM organization, at full lookahead, per
// granularity. b=32 is the RADS bar.
func Figure11() []Fig11Row {
	p := OC3072
	var out []Fig11Row
	for _, b := range []int{32, 16, 8, 4, 2, 1} {
		out = append(out, Fig11Row{
			Bsmall:   b,
			IsRADS:   b == p.B,
			MaxQueue: maxQueues(p, b),
		})
	}
	return out
}

// maxQueues binary-searches the largest Q whose most-restricting SRAM
// meets the access budget.
func maxQueues(p Point, b int) int {
	feasible := func(q int) bool {
		c := dimension.Config{
			Q: q, B: p.B, Bsmall: b, M: p.Banks,
			Lookahead: dimension.FullLookahead(q, b),
		}
		cells := c.HeadSRAMSize()
		if t := c.TailSRAMSize(); t > cells {
			cells = t
		}
		return cacti.MeetsBudget(cacti.OrgCAM, cells, p.Rate)
	}
	lo, hi := 0, 1
	for feasible(hi) && hi < 1<<20 {
		hi *= 2
	}
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Fig11TableString renders the bar chart data.
func Fig11TableString(rows []Fig11Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 — OC-3072 max #queues under %.1f ns budget (CAM, full lookahead)\n",
		OC3072.Rate.AccessBudgetNS())
	fmt.Fprintf(&b, "%8s %12s\n", "b", "max queues")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Bsmall)
		if r.IsRADS {
			label += "*"
		}
		fmt.Fprintf(&b, "%8s %12d\n", label, r.MaxQueue)
	}
	b.WriteString("(* = RADS baseline)\n")
	return b.String()
}

// ---------------------------------------------------------------- §7 / §8 headlines

// SizeRange is a paper-quoted SRAM size span.
type SizeRange struct {
	Point              Point
	MinLookaheadCells  int // size at the shortest lookahead
	FullLookaheadCells int // size at the ECQF full lookahead
}

// Section7Sizes reproduces the §7.2 text numbers: the RADS h-SRAM
// spans 300 kB → 64 kB at OC-768 and 6.2 MB → 1.0 MB at OC-3072.
func Section7Sizes() []SizeRange {
	var out []SizeRange
	for _, p := range []Point{OC768, OC3072} {
		out = append(out, SizeRange{
			Point:              p,
			MinLookaheadCells:  dimension.RADSSRAMSize(p.Q, p.B, p.B),
			FullLookaheadCells: dimension.RADSSRAMSize(p.Q, dimension.FullLookahead(p.Q, p.B), p.B),
		})
	}
	return out
}

// Headline compares the §8.3/§10 endpoints: RADS (b=32) vs CFDS (b=2)
// at OC-3072 and full lookahead.
type HeadlineResult struct {
	RADS, CFDS Fig10Row
}

// Headline returns the two headline operating points.
func Headline() HeadlineResult {
	series := Figure10()
	var res HeadlineResult
	for _, s := range series {
		last := s.Rows[len(s.Rows)-1]
		switch s.Bsmall {
		case 32:
			res.RADS = last
		case 2:
			res.CFDS = last
		}
	}
	return res
}

// HeadlineString renders the §10 comparison.
func HeadlineString(h HeadlineResult) string {
	var b strings.Builder
	b.WriteString("§8.3/§10 headline — OC-3072, full lookahead (CAM organization)\n")
	fmt.Fprintf(&b, "%8s %12s %12s %12s\n", "", "access ns", "delay us", "area cm2")
	fmt.Fprintf(&b, "%8s %12.2f %12.1f %12.2f\n", "RADS", h.RADS.AccessCAM, h.RADS.DelaySeconds*1e6, h.RADS.AreaCAM)
	fmt.Fprintf(&b, "%8s %12.2f %12.1f %12.2f\n", "CFDS b=2", h.CFDS.AccessCAM, h.CFDS.DelaySeconds*1e6, h.CFDS.AreaCAM)
	return b.String()
}
