package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cell"
)

func TestFigure8Shapes(t *testing.T) {
	figs := Figure8()
	if len(figs) != 2 {
		t.Fatalf("got %d panels, want 2", len(figs))
	}
	for _, f := range figs {
		if len(f.Rows) < 5 {
			t.Fatalf("%v: only %d rows", f.Point.Rate, len(f.Rows))
		}
		for i := 1; i < len(f.Rows); i++ {
			prev, cur := f.Rows[i-1], f.Rows[i]
			if cur.Lookahead <= prev.Lookahead {
				t.Errorf("%v: lookahead not increasing", f.Point.Rate)
			}
			if cur.SRAMCells > prev.SRAMCells {
				t.Errorf("%v: SRAM grew with lookahead", f.Point.Rate)
			}
			if cur.CAM.AccessNS > prev.CAM.AccessNS+1e-9 {
				t.Errorf("%v: CAM access grew with lookahead", f.Point.Rate)
			}
		}
		for _, r := range f.Rows {
			if r.LL.AccessNS <= r.CAM.AccessNS {
				t.Errorf("%v: LL faster than CAM at L=%d", f.Point.Rate, r.Lookahead)
			}
			if r.LL.AreaCM2 >= r.CAM.AreaCM2 {
				t.Errorf("%v: LL larger than CAM at L=%d", f.Point.Rate, r.Lookahead)
			}
		}
	}
}

func TestFigure8PaperClaims(t *testing.T) {
	figs := Figure8()
	// OC-768: every point of both orgs meets 12.8 ns (§7.2 "RADS is an
	// ideal way of providing fast packet buffering for OC-768").
	for _, r := range figs[0].Rows {
		if r.CAM.AccessNS > 12.8 || r.LL.AccessNS > 12.8 {
			t.Errorf("OC-768 L=%d: CAM %.2f / LL %.2f exceed 12.8 ns",
				r.Lookahead, r.CAM.AccessNS, r.LL.AccessNS)
		}
	}
	// OC-3072: no point of either org meets 3.2 ns.
	for _, r := range figs[1].Rows {
		if r.CAM.AccessNS <= 3.2 || r.LL.AccessNS <= 3.2 {
			t.Errorf("OC-3072 L=%d: CAM %.2f / LL %.2f meet 3.2 ns (RADS must fail)",
				r.Lookahead, r.CAM.AccessNS, r.LL.AccessNS)
		}
	}
}

func TestSection7Sizes(t *testing.T) {
	within := func(cells int, wantBytes float64) bool {
		return math.Abs(float64(cells*cell.Size)-wantBytes)/wantBytes < 0.15
	}
	sizes := Section7Sizes()
	if !within(sizes[0].MinLookaheadCells, 300e3) || !within(sizes[0].FullLookaheadCells, 64e3) {
		t.Errorf("OC-768 sizes = %d / %d cells, want ≈300 kB / 64 kB",
			sizes[0].MinLookaheadCells, sizes[0].FullLookaheadCells)
	}
	if !within(sizes[1].MinLookaheadCells, 6.2e6) || !within(sizes[1].FullLookaheadCells, 1.0e6) {
		t.Errorf("OC-3072 sizes = %d / %d cells, want ≈6.2 MB / 1.0 MB",
			sizes[1].MinLookaheadCells, sizes[1].FullLookaheadCells)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	panels := Table2()
	if len(panels) != 2 {
		t.Fatal("want 2 panels")
	}
	// OC-768 row: b = 8,4,2,1 → RR 0, 4, 16, 64 (paper prints 0,2,16,64;
	// see EXPERIMENTS.md for the b=4 delta), sched - ,51.2, 25.6, 12.8.
	oc768 := map[int]Table2Row{}
	for _, r := range panels[0].Rows {
		oc768[r.Bsmall] = r
	}
	if oc768[8].RRSize != 0 || oc768[2].RRSize != 16 || oc768[1].RRSize != 64 {
		t.Errorf("OC-768 RR sizes: %+v", panels[0].Rows)
	}
	if oc768[8].SchedNS != 0 || math.Abs(oc768[1].SchedNS-12.8) > 1e-9 {
		t.Errorf("OC-768 sched times: %+v", panels[0].Rows)
	}
	// OC-3072 row: b=32..1 → 0, 16, 64, 256, 1024, 4096 (paper prints 8
	// at b=16; delta recorded).
	oc3072 := map[int]Table2Row{}
	for _, r := range panels[1].Rows {
		oc3072[r.Bsmall] = r
	}
	want := map[int]int{32: 0, 8: 64, 4: 256, 2: 1024, 1: 4096}
	for b, rr := range want {
		if oc3072[b].RRSize != rr {
			t.Errorf("OC-3072 b=%d RR = %d, want %d", b, oc3072[b].RRSize, rr)
		}
	}
	if math.Abs(oc3072[1].SchedNS-3.2) > 1e-9 || math.Abs(oc3072[16].SchedNS-51.2) > 1e-9 {
		t.Errorf("OC-3072 sched times: %+v", panels[1].Rows)
	}
}

func TestFigure10Shapes(t *testing.T) {
	series := Figure10()
	if len(series) != 6 {
		t.Fatalf("got %d series", len(series))
	}
	byB := map[int]Fig10Series{}
	for _, s := range series {
		byB[s.Bsmall] = s
		if s.IsRADS != (s.Bsmall == 32) {
			t.Errorf("b=%d IsRADS=%v", s.Bsmall, s.IsRADS)
		}
	}
	// CFDS b=2 must meet the 3.2 ns budget at full lookahead; RADS must
	// not (the paper's central comparison).
	last := func(b int) Fig10Row { s := byB[b]; return s.Rows[len(s.Rows)-1] }
	if last(2).AccessCAM > 3.2 {
		t.Errorf("CFDS b=2 access %.2f ns > 3.2", last(2).AccessCAM)
	}
	if last(32).AccessCAM <= 3.2 {
		t.Errorf("RADS access %.2f ns ≤ 3.2", last(32).AccessCAM)
	}
	// RADS delay > 50 µs at full lookahead; CFDS b=2 delay around
	// 10-20 µs ("modest lookahead delay (10 µs)").
	if d := last(32).DelaySeconds; d < 50e-6 {
		t.Errorf("RADS delay %.1f µs, want > 50 µs", d*1e6)
	}
	if d := last(2).DelaySeconds; d > 25e-6 {
		t.Errorf("CFDS b=2 delay %.1f µs, want ≲ 20 µs", d*1e6)
	}
	// Area advantage: CFDS b=2 total area well below RADS (paper: ~0.6
	// vs ~2 cm²).
	if last(2).AreaCAM*2 > last(32).AreaCAM {
		t.Errorf("CFDS area %.2f not < half of RADS %.2f", last(2).AreaCAM, last(32).AreaCAM)
	}
}

func TestFigure10OptimalInteriorB(t *testing.T) {
	// §8.3's second conclusion: there is an optimal b strictly between
	// 1 and 32 — the access time at full lookahead is minimized at an
	// interior granularity.
	series := Figure10()
	best, bestB := math.Inf(1), 0
	for _, s := range series {
		r := s.Rows[len(s.Rows)-1]
		if r.AccessCAM < best {
			best, bestB = r.AccessCAM, s.Bsmall
		}
	}
	if bestB == 1 || bestB == 32 {
		t.Errorf("optimal b = %d, want interior (trade-off of §8.3)", bestB)
	}
}

func TestFigure11PaperClaims(t *testing.T) {
	rows := Figure11()
	byB := map[int]int{}
	rads := 0
	for _, r := range rows {
		byB[r.Bsmall] = r.MaxQueue
		if r.IsRADS {
			rads = r.MaxQueue
		}
	}
	if rads < 100 || rads > 200 {
		t.Errorf("RADS max queues = %d, want ≈140", rads)
	}
	peak := 0
	for _, q := range byB {
		if q > peak {
			peak = q
		}
	}
	// Paper: "CFDS allows 6 times more queues ... (up to 850 queues)".
	if peak < 700 || peak > 1000 {
		t.Errorf("CFDS peak max queues = %d, want ≈850", peak)
	}
	if ratio := float64(peak) / float64(rads); ratio < 5 || ratio > 8 {
		t.Errorf("CFDS/RADS ratio = %.1f, want ≈6", ratio)
	}
	// The paper's Figure 11 shows ≥512 queues feasible for mid-range b
	// (its own evaluation uses Q=512 with b=2..8).
	for _, b := range []int{2, 4} {
		if byB[b] < 512 {
			t.Errorf("b=%d supports only %d queues, want ≥512", b, byB[b])
		}
	}
}

func TestHeadline(t *testing.T) {
	h := Headline()
	if h.RADS.AccessCAM <= h.CFDS.AccessCAM {
		t.Errorf("RADS access %.2f not worse than CFDS %.2f", h.RADS.AccessCAM, h.CFDS.AccessCAM)
	}
	if h.RADS.AreaCAM <= h.CFDS.AreaCAM {
		t.Errorf("RADS area %.2f not larger than CFDS %.2f", h.RADS.AreaCAM, h.CFDS.AreaCAM)
	}
	// §10: RADS ≈ 7 ns and ≈ 2 cm²; CFDS < 3.2 ns.
	if math.Abs(h.RADS.AccessCAM-7.0) > 1.5 {
		t.Errorf("RADS access %.2f ns, want ≈7", h.RADS.AccessCAM)
	}
	if math.Abs(h.RADS.AreaCAM-2.0) > 0.8 {
		t.Errorf("RADS area %.2f cm², want ≈2", h.RADS.AreaCAM)
	}
}

func TestTableStringsNonEmpty(t *testing.T) {
	for _, f := range Figure8() {
		if !strings.Contains(f.TableString(), "Figure 8") {
			t.Error("Fig8 TableString malformed")
		}
	}
	for _, p := range Table2() {
		s := p.TableString()
		if !strings.Contains(s, "Table 2") || !strings.Contains(s, "-") {
			t.Error("Table2 TableString malformed")
		}
	}
	for _, s := range Figure10() {
		if !strings.Contains(s.TableString(), "Figure 10") {
			t.Error("Fig10 TableString malformed")
		}
	}
	if !strings.Contains(Fig11TableString(Figure11()), "RADS baseline") {
		t.Error("Fig11 TableString malformed")
	}
	if !strings.Contains(HeadlineString(Headline()), "CFDS b=2") {
		t.Error("Headline string malformed")
	}
}
