package experiments

import (
	"strings"
	"testing"
)

func TestValidateGuaranteesAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("validation matrix skipped in -short mode")
	}
	rows, err := ValidateGuarantees(8, 12000)
	if err != nil {
		t.Fatal(err)
	}
	// 3 granularities × 2 renaming × 3 workloads.
	if len(rows) != 18 {
		t.Fatalf("got %d rows, want 18", len(rows))
	}
	for _, r := range rows {
		if !r.Pass {
			t.Errorf("%s b=%d renaming=%v FAILED: %v (skips %d/%d, rr %d/%d, head %d/%d, tail %d/%d)",
				r.Name, r.Bsmall, r.Renaming, r.Stats,
				r.Stats.DSS.MaxSkips, r.SkipBound,
				r.Stats.DSS.MaxOccupancy, r.RRCap,
				r.Stats.HeadHighWater, r.HeadCap,
				r.Stats.TailHighWater, r.TailCap)
		}
		if r.Stats.Deliveries == 0 {
			t.Errorf("%s b=%d: nothing delivered", r.Name, r.Bsmall)
		}
	}
	s := ValidationTableString(rows)
	if !strings.Contains(s, "rr-adversary") || !strings.Contains(s, "true") {
		t.Error("table rendering incomplete")
	}
}
