package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// ValidationRow is one empirical check of the §5 worst-case claims:
// a full simulation run and the bounds it must respect.
type ValidationRow struct {
	// Name identifies the configuration/workload pair.
	Name string
	// Bsmall is the granularity; Renaming reports the §6 layer.
	Bsmall   int
	Renaming bool
	// Slots simulated and resulting stats.
	Slots uint64
	Stats core.Stats
	// SkipBound is the budget-scaled equation (2) limit; RRCap the
	// configured equation (1) register.
	SkipBound, RRCap int
	// HeadCap/TailCap are the dimensioned SRAM sizes.
	HeadCap, TailCap int
	// Pass reports that every invariant and bound held.
	Pass bool
}

// ValidateGuarantees runs the §5 guarantee checks across granularities
// and workloads on a Q-queue buffer for the given number of slots per
// cell. It is the simulation companion to the analytic figures: the
// paper proves the bounds, this measures them.
func ValidateGuarantees(queues int, slots uint64) ([]ValidationRow, error) {
	type workload struct {
		name string
		arr  func() (sim.ArrivalProcess, error)
		req  func() (sim.RequestPolicy, error)
	}
	workloads := []workload{
		{
			name: "rr-adversary",
			arr:  func() (sim.ArrivalProcess, error) { return sim.NewRoundRobinArrivals(queues, 1.0) },
			req:  func() (sim.RequestPolicy, error) { return sim.NewRoundRobinDrain(queues) },
		},
		{
			name: "hotspot",
			arr:  func() (sim.ArrivalProcess, error) { return sim.NewHotspotArrivals(queues, 1.0, 0.8, 7) },
			req:  func() (sim.RequestPolicy, error) { return sim.NewRoundRobinDrain(queues) },
		},
		{
			name: "bursty-longest",
			arr:  func() (sim.ArrivalProcess, error) { return sim.NewBurstyArrivals(queues, 24, 6, 3) },
			req:  func() (sim.RequestPolicy, error) { return sim.NewLongestFirst(queues) },
		},
	}
	var rows []ValidationRow
	for _, b := range []int{32, 8, 2} {
		for _, renaming := range []bool{false, true} {
			for _, w := range workloads {
				cfg := core.Config{Q: queues, B: 32, Bsmall: b, Banks: 256, Renaming: renaming}
				buf, err := core.New(cfg)
				if err != nil {
					return nil, err
				}
				arr, err := w.arr()
				if err != nil {
					return nil, err
				}
				req, err := w.req()
				if err != nil {
					return nil, err
				}
				warm := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
				if _, err := warm.Run(uint64(queues * b * 6)); err != nil {
					return nil, fmt.Errorf("%s warmup: %w", w.name, err)
				}
				r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
				res, err := r.Run(slots)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", w.name, err)
				}
				final := buf.Config()
				d := final.Dimension()
				row := ValidationRow{
					Name:      w.name,
					Bsmall:    b,
					Renaming:  renaming,
					Slots:     res.Slots,
					Stats:     res.Stats,
					SkipBound: final.IssuesPerCycle * d.MaxSkips(),
					RRCap:     final.RRCapacity,
					HeadCap:   final.HeadSRAMCells,
					TailCap:   final.TailSRAMCells,
				}
				row.Pass = res.Stats.Clean() &&
					res.Stats.DSS.MaxSkips <= row.SkipBound &&
					res.Stats.DSS.MaxOccupancy <= row.RRCap &&
					res.Stats.HeadHighWater <= row.HeadCap &&
					res.Stats.TailHighWater <= row.TailCap
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// ValidationTableString renders the matrix.
func ValidationTableString(rows []ValidationRow) string {
	var b strings.Builder
	b.WriteString("§5 guarantee validation (slot-accurate simulation)\n")
	fmt.Fprintf(&b, "%-16s %4s %7s %8s %8s %12s %10s %6s\n",
		"workload", "b", "rename", "misses", "skips", "headHW/cap", "rrHW/cap", "pass")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %4d %7v %8d %5d/%-3d %6d/%-6d %4d/%-4d %6v\n",
			r.Name, r.Bsmall, r.Renaming, r.Stats.Misses,
			r.Stats.DSS.MaxSkips, r.SkipBound,
			r.Stats.HeadHighWater, r.HeadCap,
			r.Stats.DSS.MaxOccupancy, r.RRCap, r.Pass)
	}
	return b.String()
}
