// Package facade bridges the public pktbuf façade to its sibling
// public driver packages: it lets pktbuf/sim unwrap a *pktbuf.Buffer
// to the *core.Buffer behind it, so re-exported request policies can
// consult the buffer state directly instead of through two stacked
// interface adapters per probe. The hook is installed by package
// pktbuf at init time; the argument is typed any because pktbuf
// cannot be imported from here without a cycle.
package facade

import "repro/internal/core"

// CoreOf returns the core buffer behind a *pktbuf.Buffer. It is set
// by package pktbuf's init and is therefore non-nil in any program
// that links the façade.
var CoreOf func(buffer any) *core.Buffer
