// Package facade bridges the public pktbuf façade to its sibling
// public packages: it lets pktbuf/sim unwrap a *pktbuf.Buffer to the
// *core.Buffer behind it (so re-exported request policies consult the
// buffer state directly instead of through two stacked interface
// adapters per probe), and it lets pktbuf/router translate the public
// buffer configuration and statistics without duplicating the
// façade's mapping logic. The hooks are installed by package pktbuf
// at init time; arguments and results are typed any where pktbuf
// types are involved, because pktbuf cannot be imported from here
// without a cycle.
package facade

import "repro/internal/core"

// CoreOf returns the core buffer behind a *pktbuf.Buffer. It is set
// by package pktbuf's init and is therefore non-nil in any program
// that links the façade.
var CoreOf func(buffer any) *core.Buffer

// CoreConfig translates a pktbuf.Config (passed as any) into the
// core.Config it dimensions, applying the same defaulting and
// validation as pktbuf.New. Set by package pktbuf's init.
var CoreConfig func(config any) (core.Config, error)

// PublicStats translates a core.Stats into the pktbuf.Stats (returned
// as any) the façade reports for it. Set by package pktbuf's init.
var PublicStats func(s core.Stats) any
