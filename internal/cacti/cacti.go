// Package cacti is an analytical SRAM/CAM area and access-time model
// standing in for CACTI 3.0 [19], which the paper uses to evaluate the
// shared SRAM buffer organizations at a 0.13 µm process (§7.1).
//
// CACTI itself is a closed tool; what the reproduction needs from it
// is the *relative* behaviour the paper's figures rest on:
//
//   - access time grows monotonically (and slightly super-linearly in
//     the paper's regime) with capacity;
//   - the global CAM is the fastest organization per operation, while
//     the time-multiplexed unified linked list serializes three
//     array operations (read + two pointer updates, §7.1) and is
//     therefore ~2-3× slower;
//   - the linked list is by far the smallest in area, the CAM the
//     largest (match logic per bit).
//
// We model access time as a calibrated power law t = t₀ + a·S^p and
// area as a per-bit cost with organization-dependent overhead. The
// constants are anchored to the numbers the paper states in text:
//
//   - CAM access ≈ 3.2 ns at the h-SRAM size where Figure 11 places
//     the OC-3072 RADS queue maximum (~137 queues × (B−1) × 64 B ≈
//     272 kB);
//   - CAM access ≈ 7 ns at 1.0 MB ("the baseline counterpart system
//     would require an access time 7 ns", §10);
//   - unified linked list ≈ 0.1 cm² at 300 kB (§7.2, OC-768);
//   - RADS h+t SRAM ≈ 2 cm² at 2 × 1.0 MB in CAM (§8.3).
//
// EXPERIMENTS.md records where the resulting curves deviate from the
// scanned figures.
package cacti

import (
	"fmt"
	"math"

	"repro/internal/cell"
)

// Org identifies a shared-buffer organization (§7.1).
type Org int

// Organizations evaluated in the paper.
const (
	// OrgSRAM is a plain direct-mapped single-port SRAM array — the
	// building block of the other two (and the per-queue circular
	// buffer organization usable only for distributed buffers).
	OrgSRAM Org = iota
	// OrgCAM is the global content-addressable memory: one associative
	// lookup per operation, two ports (§7.1).
	OrgCAM
	// OrgLinkedList is the unified linked list, time-multiplexed onto
	// a single-port direct-mapped array: three serialized array
	// operations per cell access (§7.1).
	OrgLinkedList
)

// String implements fmt.Stringer.
func (o Org) String() string {
	switch o {
	case OrgSRAM:
		return "direct-mapped SRAM"
	case OrgCAM:
		return "global CAM"
	case OrgLinkedList:
		return "unified linked list (time-mux)"
	default:
		return fmt.Sprintf("Org(%d)", int(o))
	}
}

// Model calibration constants (0.13 µm, see package comment).
const (
	// accessAnchorBytes / accessAnchorNS pin the CAM power law.
	accessAnchorBytes = 272e3
	accessAnchorNS    = 3.2
	// accessExponent is fitted to the second anchor CAM(1.0 MB)=7 ns:
	// p = ln(7/3.2) / ln(1.0e6/272e3) ≈ 0.59.
	accessExponent = 0.59
	// accessFloorNS is the fixed decode+sense overhead.
	accessFloorNS = 0.15
	// sramVsCAMSpeed is the direct-mapped array's speed advantage over
	// the CAM (no match line, no tag broadcast).
	sramVsCAMSpeed = 0.60
	// listSerialOps is the time-multiplexing factor of the unified
	// linked list: read cell + update old tail pointer + update
	// head/tail table (§7.1).
	listSerialOps = 3
	// Per-bit areas in µm², including peripheral overhead. The linked
	// list stores a pointer per 512-bit cell on top of the payload,
	// accounted separately via listPointerOverhead.
	sramAreaPerBit = 3.4
	camAreaPerBit  = 12.0
	listAreaPerBit = 4.2
)

// Estimate is the model output for one array.
type Estimate struct {
	// AccessNS is the time for one full cell operation in nanoseconds
	// (for the linked list this includes the serialized pointer
	// operations).
	AccessNS float64
	// AreaCM2 is the silicon area in cm².
	AreaCM2 float64
}

// camAccessNS is the calibrated base curve.
func camAccessNS(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return accessFloorNS + accessAnchorNS*math.Pow(bytes/accessAnchorBytes, accessExponent)
}

// AccessNS returns the per-cell-operation access time of an array of
// the given capacity in bytes.
func AccessNS(org Org, bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	b := float64(bytes)
	switch org {
	case OrgCAM:
		return camAccessNS(b)
	case OrgLinkedList:
		return float64(listSerialOps) * (accessFloorNS + sramVsCAMSpeed*(camAccessNS(b)-accessFloorNS))
	default:
		return accessFloorNS + sramVsCAMSpeed*(camAccessNS(b)-accessFloorNS)
	}
}

// AreaCM2 returns the silicon area of an array of the given capacity.
func AreaCM2(org Org, bytes int) float64 {
	bits := float64(bytes) * 8
	var perBit float64
	switch org {
	case OrgCAM:
		perBit = camAreaPerBit
	case OrgLinkedList:
		perBit = listAreaPerBit
	default:
		perBit = sramAreaPerBit
	}
	const um2PerCM2 = 1e8
	return bits * perBit / um2PerCM2
}

// Estimate returns both metrics for an array of capacity cells cells
// (64 B each).
func ForCells(org Org, cells64 int) Estimate {
	bytes := cells64 * cell.Size
	return Estimate{AccessNS: AccessNS(org, bytes), AreaCM2: AreaCM2(org, bytes)}
}

// MeetsBudget reports whether the organization at the given capacity
// sustains one cell operation per slot at the line rate.
func MeetsBudget(org Org, cells64 int, rate cell.LineRate) bool {
	return ForCells(org, cells64).AccessNS <= rate.AccessBudgetNS()
}
