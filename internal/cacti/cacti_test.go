package cacti

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cell"
)

func TestCalibrationAnchors(t *testing.T) {
	// CAM(272 kB) ≈ 3.2 ns and CAM(1.0 MB) ≈ 7 ns (§10's "7 ns" RADS
	// headline), within 10%.
	if got := AccessNS(OrgCAM, 272_000); math.Abs(got-3.2)/3.2 > 0.10 {
		t.Errorf("CAM(272kB) = %.2f ns, want ≈3.2", got)
	}
	if got := AccessNS(OrgCAM, 1_000_000); math.Abs(got-7.0)/7.0 > 0.10 {
		t.Errorf("CAM(1MB) = %.2f ns, want ≈7", got)
	}
	// Linked list ≈ 0.1 cm² at 300 kB (§7.2).
	if got := AreaCM2(OrgLinkedList, 300_000); math.Abs(got-0.1)/0.1 > 0.15 {
		t.Errorf("LL area(300kB) = %.3f cm², want ≈0.1", got)
	}
}

func TestOC768AlwaysFeasible(t *testing.T) {
	// §7.2: both organizations beat the 12.8 ns OC-768 budget across
	// the whole lookahead sweep (300 kB down to 64 kB).
	for _, bytes := range []int{64_000, 150_000, 300_000} {
		for _, org := range []Org{OrgCAM, OrgLinkedList} {
			if got := AccessNS(org, bytes); got > 12.8 {
				t.Errorf("%v at %d B = %.2f ns > 12.8", org, bytes, got)
			}
		}
	}
}

func TestOC3072RADSInfeasible(t *testing.T) {
	// §7.2: no organization meets 3.2 ns for the RADS OC-3072 sizes
	// (1.0 MB – 6.2 MB), "not even for the longest lookaheads".
	for _, bytes := range []int{1_000_000, 3_000_000, 6_200_000} {
		for _, org := range []Org{OrgCAM, OrgLinkedList} {
			if got := AccessNS(org, bytes); got <= 3.2 {
				t.Errorf("%v at %d B = %.2f ns ≤ 3.2 (should be infeasible)", org, bytes, got)
			}
		}
	}
}

func TestOrgOrdering(t *testing.T) {
	// For any size: CAM is the fastest full operation, the linked list
	// the smallest; plain SRAM sits between on area and below CAM on
	// time.
	for _, bytes := range []int{10_000, 100_000, 1_000_000, 10_000_000} {
		cam, ll, sr := AccessNS(OrgCAM, bytes), AccessNS(OrgLinkedList, bytes), AccessNS(OrgSRAM, bytes)
		if !(sr < cam && cam < ll) {
			t.Errorf("at %d B: sram=%.2f cam=%.2f ll=%.2f, want sram<cam<ll", bytes, sr, cam, ll)
		}
		if !(AreaCM2(OrgLinkedList, bytes) < AreaCM2(OrgCAM, bytes)) {
			t.Errorf("at %d B: LL area not below CAM area", bytes)
		}
		if !(AreaCM2(OrgSRAM, bytes) < AreaCM2(OrgLinkedList, bytes)) {
			t.Errorf("at %d B: SRAM area not below LL area", bytes)
		}
	}
}

func TestMonotonicity(t *testing.T) {
	f := func(kb1, kb2 uint16) bool {
		a, b := int(kb1)+1, int(kb2)+1
		if a > b {
			a, b = b, a
		}
		for _, org := range []Org{OrgSRAM, OrgCAM, OrgLinkedList} {
			if AccessNS(org, a*1024) > AccessNS(org, b*1024) {
				return false
			}
			if AreaCM2(org, a*1024) > AreaCM2(org, b*1024) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForCellsAndBudget(t *testing.T) {
	e := ForCells(OrgCAM, 1000)
	if e.AccessNS <= 0 || e.AreaCM2 <= 0 {
		t.Errorf("ForCells = %+v", e)
	}
	// 1000 cells = 64 kB: feasible at OC-3072 for the CAM.
	if !MeetsBudget(OrgCAM, 1000, cell.OC3072) {
		t.Error("CAM 64kB should meet 3.2 ns")
	}
	// 100k cells = 6.4 MB: not feasible.
	if MeetsBudget(OrgCAM, 100_000, cell.OC3072) {
		t.Error("CAM 6.4MB should not meet 3.2 ns")
	}
}

func TestZeroSize(t *testing.T) {
	if got := AccessNS(OrgCAM, 0); got != 0 {
		t.Errorf("AccessNS(0) = %v", got)
	}
	if got := AreaCM2(OrgCAM, 0); got != 0 {
		t.Errorf("AreaCM2(0) = %v", got)
	}
}

func TestOrgString(t *testing.T) {
	if OrgSRAM.String() == "" || OrgCAM.String() == "" || OrgLinkedList.String() == "" {
		t.Error("empty Org strings")
	}
	if Org(9).String() != "Org(9)" {
		t.Error("unknown org string")
	}
}
