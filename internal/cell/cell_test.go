package cell

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLineRateGbps(t *testing.T) {
	tests := []struct {
		rate LineRate
		want float64
	}{
		{OC192, 10},
		{OC768, 40},
		{OC3072, 160},
		{LineRate(99), 0},
	}
	for _, tt := range tests {
		if got := tt.rate.Gbps(); got != tt.want {
			t.Errorf("%v.Gbps() = %v, want %v", tt.rate, got, tt.want)
		}
	}
}

func TestSlotTimeMatchesPaper(t *testing.T) {
	// §2: "for a line rate of 160 Gb/s the basic time-slot is of 3.2 ns".
	if got := OC3072.SlotTimeNS(); math.Abs(got-3.2) > 1e-9 {
		t.Errorf("OC3072 slot time = %v ns, want 3.2", got)
	}
	// §7.2: "For an OC-768 system, we need to access a new cell every 12.8 ns".
	if got := OC768.SlotTimeNS(); math.Abs(got-12.8) > 1e-9 {
		t.Errorf("OC768 slot time = %v ns, want 12.8", got)
	}
	if got := OC192.SlotTimeNS(); math.Abs(got-51.2) > 1e-9 {
		t.Errorf("OC192 slot time = %v ns, want 51.2", got)
	}
}

func TestAccessBudgetEqualsSlotTime(t *testing.T) {
	for _, r := range []LineRate{OC192, OC768, OC3072} {
		if r.AccessBudgetNS() != r.SlotTimeNS() {
			t.Errorf("%v: budget %v != slot time %v", r, r.AccessBudgetNS(), r.SlotTimeNS())
		}
	}
}

func TestGranularityMatchesPaper(t *testing.T) {
	// §7: B=8 for OC-768, B=32 for OC-3072 at 48 ns DRAM access.
	if got := OC768.Granularity(DefaultDRAMAccessNS); got != 8 {
		t.Errorf("OC768 granularity = %d, want 8", got)
	}
	if got := OC3072.Granularity(DefaultDRAMAccessNS); got != 32 {
		t.Errorf("OC3072 granularity = %d, want 32", got)
	}
	if got := OC192.Granularity(DefaultDRAMAccessNS); got != 2 {
		t.Errorf("OC192 granularity = %d, want 2", got)
	}
}

func TestGranularityZeroRate(t *testing.T) {
	if got := LineRate(99).Granularity(DefaultDRAMAccessNS); got != 0 {
		t.Errorf("unknown rate granularity = %d, want 0", got)
	}
}

func TestGranularityCoversAccessTime(t *testing.T) {
	// Property: B slots must cover the DRAM access time, and B must be
	// a power of two.
	f := func(accessTenthNS uint16) bool {
		access := float64(accessTenthNS) / 10.0
		for _, r := range []LineRate{OC192, OC768, OC3072} {
			b := r.Granularity(access)
			if b <= 0 {
				return false
			}
			if float64(b)*r.SlotTimeNS() < 2*access {
				return false
			}
			if b&(b-1) != 0 {
				return false
			}
			// Minimality: half of B must not cover (unless B==1).
			if b > 1 && float64(b/2)*r.SlotTimeNS() >= 2*access {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBufferBytesRuleOfThumb(t *testing.T) {
	// §2: 0.2 s RTT at 160 Gb/s -> 4 GB.
	if got := OC3072.BufferBytes(0.2); got != 4e9 {
		t.Errorf("OC3072 buffer = %d bytes, want 4e9", got)
	}
	if got := OC768.BufferBytes(0.2); got != 1e9 {
		t.Errorf("OC768 buffer = %d bytes, want 1e9", got)
	}
}

func TestCellString(t *testing.T) {
	c := Cell{Queue: 3, Seq: 17}
	if got, want := c.String(), "cell{q=3 seq=17}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestLineRateString(t *testing.T) {
	if OC3072.String() != "OC-3072" || OC768.String() != "OC-768" || OC192.String() != "OC-192" {
		t.Error("unexpected LineRate strings")
	}
	if LineRate(7).String() != "LineRate(7)" {
		t.Errorf("unknown rate string = %q", LineRate(7).String())
	}
}
