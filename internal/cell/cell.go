// Package cell defines the basic data units of the packet buffer:
// fixed-size cells, logical and physical queue identifiers, time slots,
// and the line-rate parameters the paper evaluates (OC-192 through
// OC-3072).
//
// Following §2 of the paper, packets are internally fragmented into
// fixed-length 64-byte cells; the system operates synchronously in
// time slots equal to the transmission time of one cell at the line
// rate (3.2 ns at OC-3072).
package cell

import "fmt"

// Size is the cell size in bytes (§2, "Basic time-slot").
const Size = 64

// QueueID names a logical Virtual Output Queue (Qˡ in the paper's
// renaming scheme). Logical queue names are what the external
// scheduler uses.
type QueueID int32

// PhysQueueID names a physical queue (Qᵖ), the unit the DRAM banking
// and the renaming scheme operate on. Without renaming, logical and
// physical queues coincide one-to-one.
type PhysQueueID int32

// NoQueue is the sentinel for "no queue" in lookahead entries and
// request registers (the paper treats empty requests as requests to a
// special queue).
const NoQueue QueueID = -1

// NoPhysQueue is the physical-queue sentinel.
const NoPhysQueue PhysQueueID = -1

// Slot is a discrete time slot index since simulation start.
type Slot uint64

// Cell is one 64-byte unit moving through the buffer. The simulator
// does not carry payload bytes; Queue and Seq identify the cell and
// let tests verify end-to-end FIFO delivery per logical queue.
type Cell struct {
	// Queue is the logical VOQ the cell belongs to.
	Queue QueueID
	// Seq is the 0-based arrival ordinal of the cell within its
	// logical queue. Deliveries must be in strictly increasing Seq
	// order per queue.
	Seq uint64
}

// String implements fmt.Stringer.
func (c Cell) String() string {
	return fmt.Sprintf("cell{q=%d seq=%d}", c.Queue, c.Seq)
}

// LineRate identifies one of the SONET line rates considered in the
// paper's evaluation.
type LineRate int

// Line rates used in the paper (§2, §7).
const (
	// OC192 is 10 Gb/s.
	OC192 LineRate = iota
	// OC768 is 40 Gb/s.
	OC768
	// OC3072 is 160 Gb/s, the paper's headline target.
	OC3072
)

// String implements fmt.Stringer.
func (r LineRate) String() string {
	switch r {
	case OC192:
		return "OC-192"
	case OC768:
		return "OC-768"
	case OC3072:
		return "OC-3072"
	default:
		return fmt.Sprintf("LineRate(%d)", int(r))
	}
}

// Gbps returns the nominal line rate in gigabits per second.
func (r LineRate) Gbps() float64 {
	switch r {
	case OC192:
		return 10
	case OC768:
		return 40
	case OC3072:
		return 160
	default:
		return 0
	}
}

// SlotTimeNS returns the duration of one time slot in nanoseconds: the
// transmission time of a 64-byte cell at the line rate (§2). At
// OC-3072 this is 3.2 ns; at OC-768, 12.8 ns.
func (r LineRate) SlotTimeNS() float64 {
	g := r.Gbps()
	if g == 0 {
		return 0
	}
	return float64(Size*8) / g
}

// AccessBudgetNS returns the SRAM access-time budget for the rate:
// one cell must be read every slot, so the budget equals the slot
// time (§7.2).
func (r LineRate) AccessBudgetNS() float64 { return r.SlotTimeNS() }

// Granularity returns the paper's RADS data granularity B for the
// rate. The packet buffer bandwidth is twice the line rate (§2: every
// cell is both written and read), so each B-slot interval must fit one
// write access and one read access: B·slotTime ≥ 2·T_RC, rounded up to
// a power of two. With the paper's assumed 48 ns DRAM random access
// time this yields B=8 for OC-768 and B=32 for OC-3072 (§7).
func (r LineRate) Granularity(dramAccessNS float64) int {
	st := r.SlotTimeNS()
	if st == 0 {
		return 0
	}
	b := 1
	for float64(b)*st < 2*dramAccessNS {
		b *= 2
	}
	return b
}

// DefaultDRAMAccessNS is the DRAM random access time the paper assumes
// for its evaluation (§7: "assuming 48 ns of main DRAM random access
// time").
const DefaultDRAMAccessNS = 48.0

// BufferBytes returns the rule-of-thumb buffer capacity for the rate:
// round-trip time × line rate (§2, "Buffer size"; RTT 0.2 s at
// 160 Gb/s gives 4 GB).
func (r LineRate) BufferBytes(rttSeconds float64) uint64 {
	return uint64(r.Gbps() * 1e9 * rttSeconds / 8)
}
