package core

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/dss"
	"repro/internal/mma"
	"repro/internal/sram"
)

// kernelState is the structure-of-arrays per-queue state arena shared
// by the slot-at-a-time path and the fused batch kernel: the arrival
// and delivery sequence cursors and the occupancy/pending counters,
// each in its own contiguous word-aligned array indexed by the logical
// queue ordinal. Splitting the former array-of-structs arena this way
// keeps each counter class dense — the round-robin steady state walks
// sixteen queues per cache line instead of two — and lets the kernel
// address one class without dragging the others through the cache.
type kernelState struct {
	arrivedSeq   []uint64
	deliveredSeq []uint64
	sysOcc       []int32
	pendingReq   []int32
}

func newKernelState(queues int) kernelState {
	return kernelState{
		arrivedSeq:   make([]uint64, queues),
		deliveredSeq: make([]uint64, queues),
		sysOcc:       make([]int32, queues),
		pendingReq:   make([]int32, queues),
	}
}

// kernel is the fused dense-batch engine behind TickBatch: one
// arrival→select→issue→deliver loop over a span of slots with the
// per-slot overhead of the reference path hoisted into a per-batch
// prologue/epilogue. The prologue devirtualizes the substrate (the
// head MMA, head SRAM store and queue mapper are resolved to their
// concrete types once per buffer, not once per call through an
// interface word), converts the completion-ring index, the MMA phase
// and the logical-ring head from per-slot modulos into carried
// counters, and arms batch-local statistics deltas; the epilogue
// flushes the deltas and write back the carried counters. The loop
// body replicates tickSlot exactly — same order, same error
// precedence, same statistics — which the seeded differential suite
// in kernel_test.go pins bit-for-bit across ECQF/MDQF × b ×
// bounded/unbounded DRAM × renaming.
type kernel struct {
	b *Buffer

	// Devirtualized substrate: exactly one per pair/group is non-nil.
	ecqf  *mma.ECQF
	mdqf  *mma.MDQF
	cam   *sram.CAMStore
	list  *sram.ListStore
	ident *identityMapper

	// Batch-local statistics deltas for the per-slot hot counters,
	// reset by the prologue and flushed by the epilogue (the rare
	// counters — drops, misses, stalls — hit Stats directly on their
	// cold paths).
	dArrivals   uint64
	dRequests   uint64
	dDeliveries uint64
	dBypasses   uint64
}

// kernel returns the buffer's fused batch kernel, building it on first
// use (the substrate components are fixed at construction, so the
// devirtualization never goes stale).
func (b *Buffer) kernel() *kernel {
	if b.kern == nil {
		k := &kernel{b: b}
		switch h := b.hmma.(type) {
		case *mma.ECQF:
			k.ecqf = h
		case *mma.MDQF:
			k.mdqf = h
		}
		switch s := b.head.(type) {
		case *sram.CAMStore:
			k.cam = s
		case *sram.ListStore:
			k.list = s
		}
		if m, ok := b.mapr.(*identityMapper); ok {
			k.ident = m
		}
		b.kern = k
	}
	return b.kern
}

// flush folds the batch-local deltas into the buffer statistics.
func (k *kernel) flush() {
	k.b.stats.Arrivals += k.dArrivals
	k.b.stats.Requests += k.dRequests
	k.b.stats.Deliveries += k.dDeliveries
	k.b.stats.Bypasses += k.dBypasses
}

// insertHead lands one cell in the head SRAM through the concrete
// store type.
func (k *kernel) insertHead(p cell.PhysQueueID, pos uint64, c cell.Cell) error {
	switch {
	case k.cam != nil:
		return k.cam.Insert(p, pos, c)
	case k.list != nil:
		return k.list.Insert(p, pos, c)
	default:
		return k.b.head.Insert(p, pos, c)
	}
}

// run advances the buffer by one slot per element of in — the fused
// equivalent of calling tickSlot len(in) times. It returns the number
// of slots ticked; on error it stops after the offending slot (which
// still completes, with its outcome in out[n-1]).
//
//pktbuf:hotpath
func (k *kernel) run(in []TickInput, out []TickOutput, scratch []cell.Cell) (int, error) {
	b := k.b

	// Prologue: hoist the per-slot ring arithmetic into carried
	// counters and reset the batch-local stats deltas.
	ringLen := len(b.compRing)
	slotIdx := int(b.now % cell.Slot(ringLen))
	bs := b.cfg.Bsmall
	phase := int(b.now) % bs
	half := bs/2 - 1
	fullBudget := b.cfg.IssuesPerCycle
	halfBudget := (fullBudget + 1) / 2
	logN := len(b.logical)
	logHead := b.logHead
	k.dArrivals, k.dRequests, k.dDeliveries, k.dBypasses = 0, 0, 0, 0

	for i := range in {
		var firstErr error

		// 1. Land DRAM→SRAM transfers completing this slot (the
		// compPending gate keeps the empty-calendar case to one
		// compare).
		if b.compPending != 0 {
			if pending := b.compRing[slotIdx]; len(pending) > 0 {
				for _, c := range pending {
					base := c.ordinal * uint64(bs)
					for j, cl := range c.cells {
						if err := k.insertHead(c.phys, base+uint64(j), cl); err != nil {
							b.stats.HeadOverflows++
							if firstErr == nil {
								firstErr = fmt.Errorf("head SRAM insert: %w", err)
							}
						}
					}
					b.dram.ReleaseBlock(c.cells)
				}
				b.compPending -= len(pending)
				b.compRing[slotIdx] = pending[:0]
			}
		}

		// 2. Arrival.
		if q := in[i].Arrival; q != cell.NoQueue {
			if err := k.arrive(q); err != nil && firstErr == nil {
				firstErr = err
			}
		}

		// 3. Request enters the pipeline; one shift per slot.
		phys := cell.NoPhysQueue
		logical := cell.NoQueue
		if q := in[i].Request; q != cell.NoQueue {
			p, lq, err := k.admitRequest(q)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			phys, logical = p, lq
		}
		// ECQF's window exit is delivered in this same slot (step 4), so
		// its shift observation and the delivery's leave event fuse into
		// one index update; deliver() skips OnRequestLeave in return.
		var outPhys cell.PhysQueueID
		if k.ecqf != nil {
			outPhys = k.ecqf.ShiftDelivered(phys)
		} else {
			outPhys = b.look.Shift(phys)
		}
		outEntry := b.logical[logHead]
		b.logical[logHead] = pipeEntry{logical: logical}
		logHead++
		if logHead == logN {
			logHead = 0
		}
		if logical != cell.NoQueue {
			b.inPipe++
		}

		// 4. Delivery at the pipeline exit.
		out[i] = TickOutput{}
		if outEntry.logical != cell.NoQueue {
			b.inPipe--
			delivered, bypassed, err := k.deliver(outPhys, outEntry.logical, &scratch[i])
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if delivered != nil {
				out[i].Delivered = delivered
				out[i].Bypassed = bypassed
			}
		}

		// 5. MMA and DSA cycles at the b-slot phase boundaries.
		if phase == bs-1 {
			if err := k.tailCycle(); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := k.headCycle(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if bs == 1 {
			if err := b.dsaCycle(fullBudget); err != nil && firstErr == nil {
				firstErr = err
			}
		} else if phase == bs-1 || phase == half {
			if err := b.dsaCycle(halfBudget); err != nil && firstErr == nil {
				firstErr = err
			}
		}

		if b.tailTotal > b.stats.TailHighWater {
			b.stats.TailHighWater = b.tailTotal
		}
		b.now++
		slotIdx++
		if slotIdx == ringLen {
			slotIdx = 0
		}
		phase++
		if phase == bs {
			phase = 0
		}

		if firstErr != nil {
			b.logHead = logHead
			k.flush()
			return i + 1, firstErr
		}
	}

	// Epilogue: write back the carried counters, fold in the stats.
	b.logHead = logHead
	k.flush()
	return len(in), nil
}

// arrive is the fused twin of Buffer.arrive (batch-local arrival
// counter; otherwise identical).
func (k *kernel) arrive(q cell.QueueID) error {
	b := k.b
	if q < 0 || int(q) >= len(b.tails) {
		return fmt.Errorf("%w: arrival for queue %d (Q=%d)", ErrUnknownQueue, q, len(b.tails))
	}
	if b.tailTotal >= b.cfg.TailSRAMCells {
		b.stats.Drops++
		if b.cfg.BankCapacityBlocks > 0 {
			return fmt.Errorf("%w: queue %d at slot %d", ErrBufferFull, q, b.now)
		}
		return fmt.Errorf("%w: %d cells at slot %d", ErrTailOverflow, b.tailTotal, b.now)
	}
	seq := b.ks.arrivedSeq[q]
	b.ks.arrivedSeq[q] = seq + 1
	b.tails[q].push(cell.Cell{Queue: q, Seq: seq})
	b.tailTotal++
	b.tmma.OnArrival(q)
	b.ks.sysOcc[q]++
	k.dArrivals++
	return nil
}

// admitRequest is the fused twin of Buffer.admitRequest: the
// requestable probe reads the packed arrays, the identity mapper is
// consumed inline, and the head-MMA entry event goes to the concrete
// type (a no-op for ECQF, so the call disappears entirely).
func (k *kernel) admitRequest(q cell.QueueID) (cell.PhysQueueID, cell.QueueID, error) {
	b := k.b
	if q < 0 || int(q) >= len(b.ks.sysOcc) || b.ks.sysOcc[q]-b.ks.pendingReq[q] <= 0 {
		b.stats.BadRequests++
		return cell.NoPhysQueue, cell.NoQueue,
			fmt.Errorf("%w: queue %d at slot %d", ErrBadRequest, q, b.now)
	}
	b.ks.pendingReq[q]++
	b.pendingTotal++
	k.dRequests++
	var phys cell.PhysQueueID
	var ok bool
	if m := k.ident; m != nil {
		if m.towardDRAM[q] > 0 {
			m.towardDRAM[q]--
			phys, ok = cell.PhysQueueID(q), true
		}
	} else {
		phys, ok = b.mapr.ConsumeForRequest(q)
	}
	if !ok {
		b.tails[q].promised++
		b.tmma.OnBypass(q)
		return cell.NoPhysQueue, q, nil
	}
	if k.mdqf != nil {
		k.mdqf.OnRequestEnter(phys)
	} else if k.ecqf == nil {
		b.hmma.OnRequestEnter(phys)
	}
	return phys, q, nil
}

// deliver is the fused twin of Buffer.deliver with the head-SRAM pop
// and the leave event resolved to the concrete types.
//
//pktbuf:hotpath
func (k *kernel) deliver(phys cell.PhysQueueID, q cell.QueueID, dst *cell.Cell) (*cell.Cell, bool, error) {
	b := k.b
	var c cell.Cell
	bypassed := false
	if phys == cell.NoPhysQueue {
		tq := &b.tails[q]
		if tq.len() == 0 || tq.promised == 0 {
			b.stats.Misses++
			return nil, false, fmt.Errorf("%w: bypass for queue %d at slot %d finds no cell",
				ErrMiss, q, b.now) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
		}
		c = tq.popFront()
		tq.promised--
		b.tailTotal--
		bypassed = true
	} else {
		// ECQF's leave event was already folded into ShiftDelivered;
		// MDQF's is a no-op by construction.
		if k.ecqf == nil && k.mdqf == nil {
			b.hmma.OnRequestLeave(phys)
		}
		var popped cell.Cell
		var err error
		switch {
		case k.cam != nil:
			popped, err = k.cam.Pop(phys)
		case k.list != nil:
			popped, err = k.list.Pop(phys)
		default:
			popped, err = b.head.Pop(phys)
		}
		if err != nil {
			b.stats.Misses++
			return nil, false, fmt.Errorf("%w: queue %d (phys %d) at slot %d: %v",
				ErrMiss, q, phys, b.now, err) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
		}
		c = popped
	}

	*dst = c
	want := b.ks.deliveredSeq[q]
	if c.Queue != q || c.Seq != want {
		return dst, bypassed, fmt.Errorf("%w: queue %d got %v, want seq %d",
			ErrOutOfOrder, q, c, want) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
	}
	b.ks.deliveredSeq[q] = want + 1
	b.ks.sysOcc[q]--
	b.ks.pendingReq[q]--
	b.pendingTotal--
	k.dDeliveries++
	if bypassed {
		k.dBypasses++
	}
	return dst, bypassed, nil
}

// tailCycle is the fused twin of Buffer.tailCycle with the identity
// mapper's write-target probe inlined.
func (k *kernel) tailCycle() error {
	b := k.b
	if !b.sched.CanEnqueue() {
		b.stats.TailStalls++
		return nil
	}
	q, ok := b.tmma.Select(b.writeEligible)
	if !ok {
		return nil
	}
	var p cell.PhysQueueID
	if m := k.ident; m != nil {
		p = cell.PhysQueueID(q)
		if !b.dram.CanWrite(p) {
			b.stats.TailStalls++
			return nil
		}
	} else {
		var err error
		p, err = b.mapr.WriteTarget(q)
		if err != nil {
			b.stats.TailStalls++
			return nil
		}
	}
	ordinal, bank, err := b.dram.ReserveWrite(p)
	if err != nil {
		b.stats.TailStalls++
		return nil
	}
	if m := k.ident; m != nil {
		m.towardDRAM[q] += b.cfg.Bsmall
	} else if err := b.mapr.NoteWrite(q, p); err != nil {
		return err
	}
	blk := b.dram.AcquireBlock()
	b.tails[q].extractBlock(b.cfg.Bsmall, blk)
	b.tmma.OnTransfer(q)
	return b.sched.Enqueue(dss.Request{
		Queue: p, Dir: dss.Write, Ordinal: ordinal, Bank: bank,
		Cells: blk, Enqueued: b.now,
	})
}

// headCycle is the fused twin of Buffer.headCycle with the selection
// resolved through the concrete head MMA.
func (k *kernel) headCycle() error {
	b := k.b
	if !b.sched.CanEnqueue() {
		b.stats.HeadStalls++
		return nil
	}
	var p cell.PhysQueueID
	var ok bool
	switch {
	case k.ecqf != nil:
		p, ok = k.ecqf.Select(nil)
	case k.mdqf != nil:
		p, ok = k.mdqf.Select(nil)
	default:
		p, ok = b.hmma.Select(nil)
	}
	if !ok {
		return nil
	}
	ordinal, bank, err := b.dram.ReserveRead(p)
	if err != nil {
		return fmt.Errorf("core: replenish reserve for phys %d: %w", p, err)
	}
	if k.ecqf != nil {
		k.ecqf.OnReplenish(p)
	} else if k.mdqf != nil {
		k.mdqf.OnReplenish(p)
	} else {
		b.hmma.OnReplenish(p)
	}
	return b.sched.Enqueue(dss.Request{
		Queue: p, Dir: dss.Read, Ordinal: ordinal, Bank: bank, Enqueued: b.now,
	})
}
