package core

import (
	"errors"
	"fmt"

	"repro/internal/cell"
	"repro/internal/dram"
	"repro/internal/dss"
	"repro/internal/mma"
	"repro/internal/rename"
	"repro/internal/sram"
)

// Invariant and usage errors surfaced by Tick. The Err* invariant
// errors correspond to the paper's worst-case guarantees: a correctly
// dimensioned buffer never produces them, and the test suite asserts
// exactly that.
var (
	// ErrMiss is a head-SRAM miss: the arbiter's request exited the
	// pipeline but its cell was not resident (§3's zero-miss claim).
	ErrMiss = errors.New("core: head SRAM miss")
	// ErrTailOverflow means the tail SRAM exceeded its dimensioned
	// capacity even though the DRAM still had room.
	ErrTailOverflow = errors.New("core: tail SRAM overflow")
	// ErrBufferFull is a usage signal: the buffer (DRAM and tail SRAM)
	// is genuinely out of space and the arriving cell was rejected.
	ErrBufferFull = errors.New("core: buffer full, arrival dropped")
	// ErrBadRequest means the arbiter requested a queue with no
	// outstanding cells — forbidden by the system model (§2).
	ErrBadRequest = errors.New("core: request for empty queue")
	// ErrOutOfOrder means a delivered cell violated per-queue FIFO
	// order — never acceptable.
	ErrOutOfOrder = errors.New("core: out-of-order delivery")
)

// TickInput carries the per-slot stimulus: at most one arriving cell
// and one scheduler request. Use cell.NoQueue for "none".
type TickInput struct {
	// Arrival is the logical queue of the cell arriving this slot.
	Arrival cell.QueueID
	// Request is the logical queue the arbiter requests this slot.
	Request cell.QueueID
}

// TickOutput reports the slot's outcome.
type TickOutput struct {
	// Delivered is the cell granted to the arbiter this slot, if any.
	Delivered *cell.Cell
	// Bypassed reports that the delivery came straight from the tail
	// SRAM (cut-through for queues with no DRAM-bound cells).
	Bypassed bool
}

// tailQueue is one logical queue's slice of the tail SRAM: cells in
// arrival order. The first promised cells are committed to the bypass
// path; staging removes cells from the front of the unpromised region
// (DRAM receives cells strictly in arrival order).
type tailQueue struct {
	cells    []cell.Cell
	promised int
}

// completion is a DRAM→SRAM block transfer scheduled to land at a
// future slot.
type completion struct {
	phys    cell.PhysQueueID
	ordinal uint64
	cells   []cell.Cell
}

// pipeEntry pairs the physical name stored in the lookahead with the
// logical request it translates (the logical side is needed for the
// bypass path and FIFO verification).
type pipeEntry struct {
	logical cell.QueueID
}

// Buffer is the complete packet buffer (Figure 5). Create one with
// New; drive it with Tick once per slot.
type Buffer struct {
	cfg Config

	dram  *dram.DRAM
	head  sram.Store
	sched *dss.Scheduler
	hmma  mma.HeadMMA
	tmma  *mma.TailMMA
	mapr  mapper

	// look holds the physical-side pipeline (latency register +
	// lookahead, §5.4); logical is the parallel logical-side ring.
	look    *mma.Lookahead
	logical []pipeEntry
	logHead int

	tail      map[cell.QueueID]*tailQueue
	tailTotal int // resident cells incl. promised and staged

	completions map[cell.Slot][]completion

	now          cell.Slot
	arrivedSeq   map[cell.QueueID]uint64
	deliveredSeq map[cell.QueueID]uint64
	sysOcc       map[cell.QueueID]int
	pendingReq   map[cell.QueueID]int

	stats Stats
}

// New builds a buffer from cfg (ApplyDefaults is invoked internally,
// so a minimal Config works).
func New(cfg Config) (*Buffer, error) {
	cfg, err := cfg.ApplyDefaults()
	if err != nil {
		return nil, err
	}
	d := cfg.Dimension()

	dcfg := dram.Config{
		Banks:              cfg.Banks,
		BanksPerGroup:      d.BanksPerGroup(),
		AccessSlots:        cfg.accessSlots(),
		BlockCells:         cfg.Bsmall,
		BankCapacityBlocks: cfg.BankCapacityBlocks,
	}
	if err := dcfg.Validate(); err != nil {
		return nil, err
	}

	var head sram.Store
	switch cfg.Org {
	case OrgLinkedList:
		ls, err := sram.NewList(cfg.HeadSRAMCells, cfg.Bsmall, d.BanksPerGroup())
		if err != nil {
			return nil, err
		}
		head = ls
	default:
		head = sram.NewCAM(cfg.HeadSRAMCells)
	}

	pipeLen := cfg.Lookahead + cfg.LatencySlots
	if pipeLen < 1 {
		pipeLen = 1
	}
	look, err := mma.NewLookahead(pipeLen)
	if err != nil {
		return nil, err
	}

	var hm mma.HeadMMA
	switch cfg.MMA {
	case MDQF:
		m, err := mma.NewMDQF(cfg.Bsmall)
		if err != nil {
			return nil, err
		}
		hm = m
	default:
		e, err := mma.NewECQF(look, cfg.Bsmall)
		if err != nil {
			return nil, err
		}
		hm = e
	}

	tm, err := mma.NewTailMMA(cfg.Bsmall)
	if err != nil {
		return nil, err
	}

	dr := dram.New(dcfg)
	var mp mapper
	if cfg.Renaming {
		namesPerGroup := (cfg.Q*cfg.Oversub + d.Groups() - 1) / d.Groups()
		tbl, err := rename.New(d.Groups(), namesPerGroup, cfg.RegisterCap, cfg.Bsmall)
		if err != nil {
			return nil, err
		}
		mp = &renameMapper{table: tbl, dram: dr}
	} else {
		mp = newIdentityMapper(dr)
	}

	logical := make([]pipeEntry, pipeLen)
	for i := range logical {
		logical[i].logical = cell.NoQueue
	}
	policy := dss.OldestReadyFirst
	if cfg.FIFOScheduler {
		policy = dss.FIFOBlocking
	}
	return &Buffer{
		cfg:          cfg,
		dram:         dr,
		head:         head,
		sched:        dss.NewWithPolicy(cfg.RRCapacity, policy),
		hmma:         hm,
		tmma:         tm,
		mapr:         mp,
		look:         look,
		logical:      logical,
		tail:         make(map[cell.QueueID]*tailQueue),
		completions:  make(map[cell.Slot][]completion),
		arrivedSeq:   make(map[cell.QueueID]uint64),
		deliveredSeq: make(map[cell.QueueID]uint64),
		sysOcc:       make(map[cell.QueueID]int),
		pendingReq:   make(map[cell.QueueID]int),
	}, nil
}

// Config returns the fully defaulted configuration in use.
func (b *Buffer) Config() Config { return b.cfg }

// Now returns the current slot (the number of Ticks performed).
func (b *Buffer) Now() cell.Slot { return b.now }

// Len returns the number of cells of queue q currently in the buffer.
func (b *Buffer) Len(q cell.QueueID) int { return b.sysOcc[q] }

// Requestable returns how many cells of q the arbiter may still
// request (cells in the system minus requests already in flight).
func (b *Buffer) Requestable(q cell.QueueID) int {
	return b.sysOcc[q] - b.pendingReq[q]
}

// Stats returns a snapshot of the accumulated statistics.
func (b *Buffer) Stats() Stats {
	s := b.stats
	s.DSS = b.sched.Stats()
	s.HeadHighWater = b.head.HighWater()
	return s
}

func (b *Buffer) tailQueue(q cell.QueueID) *tailQueue {
	t, ok := b.tail[q]
	if !ok {
		t = &tailQueue{}
		b.tail[q] = t
	}
	return t
}

// Tick advances the buffer by one slot. Errors wrapping the Err*
// invariant sentinels indicate a violated worst-case guarantee;
// ErrBufferFull / ErrBadRequest indicate caller-visible conditions
// (the slot still completes: deliveries and internal transfers occur).
func (b *Buffer) Tick(in TickInput) (TickOutput, error) {
	var out TickOutput
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// 1. Land DRAM→SRAM transfers completing this slot, before the
	// delivery point ("perfectly synchronized hardware", §3).
	for _, c := range b.completions[b.now] {
		base := c.ordinal * uint64(b.cfg.Bsmall)
		for i, cl := range c.cells {
			if err := b.head.Insert(c.phys, base+uint64(i), cl); err != nil {
				b.stats.HeadOverflows++
				record(fmt.Errorf("head SRAM insert: %w", err))
			}
		}
	}
	delete(b.completions, b.now)

	// 2. Arrival.
	if in.Arrival != cell.NoQueue {
		record(b.arrive(in.Arrival))
	}

	// 3. Request enters the pipeline; the pipeline shifts exactly once
	// per slot, so idle slots propagate bubbles.
	phys := cell.NoPhysQueue
	logical := cell.NoQueue
	if in.Request != cell.NoQueue {
		p, lq, err := b.admitRequest(in.Request)
		record(err)
		phys, logical = p, lq
	}
	outPhys := b.look.Shift(phys)
	outEntry := b.logical[b.logHead]
	b.logical[b.logHead] = pipeEntry{logical: logical}
	b.logHead = (b.logHead + 1) % len(b.logical)

	// 4. Delivery at the pipeline exit.
	if outEntry.logical != cell.NoQueue {
		delivered, bypassed, err := b.deliver(outPhys, outEntry.logical)
		record(err)
		if delivered != nil {
			out.Delivered = delivered
			out.Bypassed = bypassed
		}
	}

	// 5. MMA cycle every b slots; DSA issues are staggered across the
	// cycle so that the write and read access of one window hit the
	// DRAM a random-access-time apart (the paper's RADS alternates
	// accesses every T_RC; CFDS overlaps them across banks).
	bs := b.cfg.Bsmall
	phase := int(b.now) % bs
	if phase == bs-1 {
		record(b.tailCycle())
		record(b.headCycle())
	}
	if bs == 1 {
		record(b.dsaCycle(b.cfg.IssuesPerCycle))
	} else if phase == bs-1 || phase == bs/2-1 {
		record(b.dsaCycle((b.cfg.IssuesPerCycle + 1) / 2))
	}

	if b.tailTotal > b.stats.TailHighWater {
		b.stats.TailHighWater = b.tailTotal
	}
	b.now++
	return out, firstErr
}

// arrive admits one cell into the tail SRAM.
func (b *Buffer) arrive(q cell.QueueID) error {
	if b.tailTotal >= b.cfg.TailSRAMCells {
		// With a bounded DRAM the tail bound is conditional: any queue
		// blocked from writing (a full group without renaming, or §6's
		// residual fragmentation with it) legitimately backs cells up
		// into the tail SRAM, so the overflow is backpressure. With an
		// unbounded DRAM the t-MMA can always drain and an overflow is
		// a violated dimensioning bound.
		b.stats.Drops++
		if b.cfg.BankCapacityBlocks > 0 {
			return fmt.Errorf("%w: queue %d at slot %d", ErrBufferFull, q, b.now)
		}
		return fmt.Errorf("%w: %d cells at slot %d", ErrTailOverflow, b.tailTotal, b.now)
	}
	seq := b.arrivedSeq[q]
	b.arrivedSeq[q] = seq + 1
	tq := b.tailQueue(q)
	tq.cells = append(tq.cells, cell.Cell{Queue: q, Seq: seq})
	b.tailTotal++
	b.tmma.OnArrival(q)
	b.sysOcc[q]++
	b.stats.Arrivals++
	return nil
}

// admitRequest validates and translates a scheduler request. Cells
// already written toward DRAM route via their physical queue; the
// remainder are promised to the tail-SRAM bypass.
func (b *Buffer) admitRequest(q cell.QueueID) (cell.PhysQueueID, cell.QueueID, error) {
	if b.Requestable(q) <= 0 {
		b.stats.BadRequests++
		return cell.NoPhysQueue, cell.NoQueue,
			fmt.Errorf("%w: queue %d at slot %d", ErrBadRequest, q, b.now)
	}
	b.pendingReq[q]++
	b.stats.Requests++
	phys, ok := b.mapr.ConsumeForRequest(q)
	if !ok {
		// Bypass: commit the oldest unpromised tail cell to direct
		// delivery and remove it from the t-MMA's stageable ledger.
		tq := b.tailQueue(q)
		tq.promised++
		b.tmma.OnBypass(q)
		return cell.NoPhysQueue, q, nil
	}
	b.hmma.OnRequestEnter(phys)
	return phys, q, nil
}

// deliver pops the cell for a request exiting the pipeline.
func (b *Buffer) deliver(phys cell.PhysQueueID, q cell.QueueID) (*cell.Cell, bool, error) {
	want := b.deliveredSeq[q]
	finish := func(c cell.Cell, bypassed bool) (*cell.Cell, bool, error) {
		if c.Queue != q || c.Seq != want {
			return &c, bypassed, fmt.Errorf("%w: queue %d got %v, want seq %d",
				ErrOutOfOrder, q, c, want)
		}
		b.deliveredSeq[q] = want + 1
		b.sysOcc[q]--
		b.pendingReq[q]--
		b.stats.Deliveries++
		if bypassed {
			b.stats.Bypasses++
		}
		return &c, bypassed, nil
	}

	if phys == cell.NoPhysQueue {
		// Bypass delivery from the tail SRAM front.
		tq := b.tailQueue(q)
		if len(tq.cells) == 0 || tq.promised == 0 {
			b.stats.Misses++
			return nil, false, fmt.Errorf("%w: bypass for queue %d at slot %d finds no cell",
				ErrMiss, q, b.now)
		}
		c := tq.cells[0]
		tq.cells = tq.cells[1:]
		tq.promised--
		b.tailTotal--
		return finish(c, true)
	}

	b.hmma.OnRequestLeave(phys)
	c, err := b.head.Pop(phys)
	if err != nil {
		b.stats.Misses++
		return nil, false, fmt.Errorf("%w: queue %d (phys %d) at slot %d: %v",
			ErrMiss, q, phys, b.now, err)
	}
	return finish(c, false)
}

// tailCycle runs the t-MMA: stage one block of b cells toward DRAM.
func (b *Buffer) tailCycle() error {
	if !b.sched.CanEnqueue() {
		b.stats.TailStalls++
		return nil
	}
	q, ok := b.tmma.Select(func(q cell.QueueID) bool {
		_, err := b.mapr.PeekWriteTarget(q)
		return err == nil
	})
	if !ok {
		return nil
	}
	p, err := b.mapr.WriteTarget(q)
	if err != nil {
		// Raced capacity; treated as a stall, retried next cycle.
		b.stats.TailStalls++
		return nil
	}
	ordinal, bank, err := b.dram.ReserveWrite(p)
	if err != nil {
		b.stats.TailStalls++
		return nil
	}
	if err := b.mapr.NoteWrite(q, p); err != nil {
		return err
	}
	tq := b.tailQueue(q)
	blk := make([]cell.Cell, b.cfg.Bsmall)
	copy(blk, tq.cells[tq.promised:tq.promised+b.cfg.Bsmall])
	tq.cells = append(tq.cells[:tq.promised], tq.cells[tq.promised+b.cfg.Bsmall:]...)
	b.tmma.OnTransfer(q)
	return b.sched.Enqueue(dss.Request{
		Queue: p, Dir: dss.Write, Ordinal: ordinal, Bank: bank,
		Cells: blk, Enqueued: b.now,
	})
}

// headCycle runs the h-MMA: order one replenishment of b cells.
func (b *Buffer) headCycle() error {
	if !b.sched.CanEnqueue() {
		b.stats.HeadStalls++
		return nil
	}
	p, ok := b.hmma.Select(func(p cell.PhysQueueID) bool {
		return b.dram.ReadableNow(p)
	})
	if !ok {
		return nil
	}
	ordinal, bank, err := b.dram.ReserveRead(p)
	if err != nil {
		return fmt.Errorf("core: replenish reserve for phys %d: %w", p, err)
	}
	b.hmma.OnReplenish(p)
	return b.sched.Enqueue(dss.Request{
		Queue: p, Dir: dss.Read, Ordinal: ordinal, Bank: bank, Enqueued: b.now,
	})
}

// dsaCycle issues up to budget requests through the DSA and executes
// them against the DRAM.
func (b *Buffer) dsaCycle(budget int) error {
	access := cell.Slot(b.cfg.accessSlots())
	for _, r := range b.sched.Cycle(b.now, budget, b.cfg.accessSlots()) {
		switch r.Dir {
		case dss.Write:
			if _, err := b.dram.BeginWriteAt(r.Queue, r.Ordinal, r.Cells, b.now); err != nil {
				return fmt.Errorf("core: DSA write issue: %w", err)
			}
			// The block physically leaves the tail SRAM on the bus.
			b.tailTotal -= len(r.Cells)
		case dss.Read:
			_, cells, err := b.dram.BeginReadAt(r.Queue, r.Ordinal, b.now)
			if err != nil {
				return fmt.Errorf("core: DSA read issue: %w", err)
			}
			at := b.now + access
			b.completions[at] = append(b.completions[at], completion{
				phys: r.Queue, ordinal: r.Ordinal, cells: cells,
			})
		}
	}
	return nil
}
