package core

import (
	"errors"
	"fmt"

	"repro/internal/cell"
	"repro/internal/dram"
	"repro/internal/dss"
	"repro/internal/mma"
	"repro/internal/rename"
	"repro/internal/sram"
)

// Invariant and usage errors surfaced by Tick. The Err* invariant
// errors correspond to the paper's worst-case guarantees: a correctly
// dimensioned buffer never produces them, and the test suite asserts
// exactly that.
var (
	// ErrMiss is a head-SRAM miss: the arbiter's request exited the
	// pipeline but its cell was not resident (§3's zero-miss claim).
	ErrMiss = errors.New("core: head SRAM miss")
	// ErrTailOverflow means the tail SRAM exceeded its dimensioned
	// capacity even though the DRAM still had room.
	ErrTailOverflow = errors.New("core: tail SRAM overflow")
	// ErrBufferFull is a usage signal: the buffer (DRAM and tail SRAM)
	// is genuinely out of space and the arriving cell was rejected.
	ErrBufferFull = errors.New("core: buffer full, arrival dropped")
	// ErrBadRequest means the arbiter requested a queue with no
	// outstanding cells — forbidden by the system model (§2).
	ErrBadRequest = errors.New("core: request for empty queue")
	// ErrOutOfOrder means a delivered cell violated per-queue FIFO
	// order — never acceptable.
	ErrOutOfOrder = errors.New("core: out-of-order delivery")
	// ErrUnknownQueue means an arrival named a logical queue outside
	// [0, Q): the dense state arenas are sized from Config at
	// construction, so queue ids are ordinals, not arbitrary keys.
	// (An out-of-range request surfaces as ErrBadRequest — such a
	// queue trivially has nothing requestable.)
	ErrUnknownQueue = errors.New("core: queue id out of range")
	// ErrBadConfig marks a configuration rejected at construction time
	// (New / ApplyDefaults): inconsistent dimensioning parameters, an
	// invalid granularity, or substrate sizes below their minima. Every
	// config-validation failure wraps this sentinel so callers (and the
	// public façade) can errors.Is-match it.
	ErrBadConfig = errors.New("core: invalid configuration")
)

// TickInput carries the per-slot stimulus: at most one arriving cell
// and one scheduler request. Use cell.NoQueue for "none". Queue ids
// must be ordinals in [0, Config.Q).
type TickInput struct {
	// Arrival is the logical queue of the cell arriving this slot.
	Arrival cell.QueueID
	// Request is the logical queue the arbiter requests this slot.
	Request cell.QueueID
}

// TickOutput reports the slot's outcome.
type TickOutput struct {
	// Delivered is the cell granted to the arbiter this slot, if any.
	// The pointee is owned by the Buffer: a Tick output is overwritten
	// by the next Tick, a TickBatch output lives in batch-local
	// scratch and stays valid until the next Tick or TickBatch call.
	// Callers that retain the cell beyond that must copy it.
	Delivered *cell.Cell
	// Bypassed reports that the delivery came straight from the tail
	// SRAM (cut-through for queues with no DRAM-bound cells).
	Bypassed bool
}

// tailQueue is one logical queue's slice of the tail SRAM: a deque of
// cells in arrival order, stored in cells[start:]. The first promised
// cells of the live region are committed to the bypass path; staging
// removes cells from the front of the unpromised region (DRAM receives
// cells strictly in arrival order). The deque compacts in place when
// the backing array fills, so steady-state operation does not
// allocate.
type tailQueue struct {
	cells    []cell.Cell
	start    int
	promised int
}

func (t *tailQueue) len() int { return len(t.cells) - t.start }

func (t *tailQueue) push(c cell.Cell) {
	if len(t.cells) == cap(t.cells) && t.start > 0 {
		n := copy(t.cells, t.cells[t.start:])
		t.cells = t.cells[:n]
		t.start = 0
	}
	t.cells = append(t.cells, c)
}

// popFront removes and returns the oldest cell (the bypass delivery).
func (t *tailQueue) popFront() cell.Cell {
	c := t.cells[t.start]
	t.start++
	if t.start == len(t.cells) {
		t.cells, t.start = t.cells[:0], 0
	}
	return c
}

// extractBlock copies the n oldest unpromised cells into dst and
// removes them from the deque, preserving the promised prefix (which
// slides right over the vacated region).
func (t *tailQueue) extractBlock(n int, dst []cell.Cell) {
	base := t.start + t.promised
	copy(dst, t.cells[base:base+n])
	copy(t.cells[t.start+n:base+n], t.cells[t.start:base])
	t.start += n
	if t.start == len(t.cells) {
		t.cells, t.start = t.cells[:0], 0
	}
}

// Per-queue scalar state (arrival/delivery cursors, occupancy and
// pending-request counters) lives in the structure-of-arrays arena
// kernelState (kernel.go), shared by the slot-at-a-time path and the
// fused batch kernel; only the tail-SRAM deques stay array-of-structs
// because each holds a variable-length cell slice.

// completion is a DRAM→SRAM block transfer scheduled to land at a
// future slot.
type completion struct {
	phys    cell.PhysQueueID
	ordinal uint64
	cells   []cell.Cell
}

// pipeEntry pairs the physical name stored in the lookahead with the
// logical request it translates (the logical side is needed for the
// bypass path and FIFO verification).
type pipeEntry struct {
	logical cell.QueueID
}

// Buffer is the complete packet buffer (Figure 5). Create one with
// New; drive it with Tick once per slot.
type Buffer struct {
	cfg Config

	dram  *dram.DRAM
	head  sram.Store
	sched *dss.Scheduler
	hmma  mma.HeadMMA
	tmma  *mma.TailMMA
	mapr  mapper

	// look holds the physical-side pipeline (latency register +
	// lookahead, §5.4); logical is the parallel logical-side ring.
	look    *mma.Lookahead
	logical []pipeEntry
	logHead int

	// ks is the packed per-queue state arena (structure of arrays,
	// kernel.go) and tails the parallel tail-SRAM deque arena, both
	// indexed by the logical queue ordinal and sized to Config.Q at
	// construction.
	ks        kernelState
	tails     []tailQueue
	tailTotal int // resident cells incl. promised and staged
	// pendingTotal counts admitted requests not yet delivered (the
	// cells in flight through the request pipeline).
	pendingTotal int
	// inPipe counts non-idle entries in the logical pipeline ring. It
	// differs from pendingTotal only after a miss (the entry left the
	// ring but the delivery never completed); the quiescence predicate
	// uses it because ring emptiness, not delivery accounting, is what
	// makes an idle shift a pure rotation.
	inPipe int
	// compPending counts DRAM→SRAM completions waiting in compRing.
	compPending int

	// compRing is the completion calendar: a fixed ring of length
	// accessSlots+1 indexed by slot mod length. Slot buckets are
	// truncated (capacity kept) after landing, so the steady-state
	// read path does not allocate.
	compRing [][]completion

	now cell.Slot
	// delivered is the scratch cell TickOutput.Delivered points into.
	delivered cell.Cell
	// deliveredBatch is the batch-local scratch TickBatch outputs point
	// into: one cell per batch slot, so every delivery of one TickBatch
	// call stays valid until the next Tick/TickBatch call.
	deliveredBatch []cell.Cell

	// writeEligible is the t-MMA selection predicate, built once at
	// construction (closures created per cycle escape through the MMA
	// interface call and would allocate every b slots). It is nil when
	// the write path can never stall — identity mapping over an
	// unbounded DRAM — so the t-MMA walks its index with no
	// per-candidate calls at all. The h-MMA predicate needs no closure:
	// the DRAM publishes its readable-now bits as a dense bitset that
	// the head selectors consume directly (SetEligibility).
	writeEligible func(q cell.QueueID) bool

	// kern is the fused dense-batch kernel (kernel.go), built lazily on
	// the first TickBatch call; the slot-at-a-time Tick path never
	// touches it.
	kern *kernel

	stats Stats
}

// New builds a buffer from cfg (ApplyDefaults is invoked internally,
// so a minimal Config works).
func New(cfg Config) (*Buffer, error) {
	cfg, err := cfg.ApplyDefaults()
	if err != nil {
		return nil, err
	}
	d := cfg.Dimension()

	// The dense arenas are sized from the physical name space P: the
	// logical space Q without renaming, or the register-bounded ordinal
	// space the rename table hands out (§6 oversubscription, A·Q names
	// rounded up to whole groups).
	physSpace := cfg.Q
	var tbl *rename.Table
	if cfg.Renaming {
		namesPerGroup := (cfg.Q*cfg.Oversub + d.Groups() - 1) / d.Groups()
		tbl, err = rename.New(d.Groups(), namesPerGroup, cfg.RegisterCap, cfg.Bsmall)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		physSpace = d.Groups() * namesPerGroup
		// Renaming keeps physical ids dense: every name is an ordinal
		// in [0, P). The arenas below rely on that, so check it here
		// rather than discover it as an index panic on the datapath.
		if tbl.TotalNames() != physSpace || physSpace < cfg.Q {
			return nil, fmt.Errorf("core: physical name space %d inconsistent (Q=%d, groups=%d)",
				tbl.TotalNames(), cfg.Q, d.Groups())
		}
	}

	dcfg := dram.Config{
		Banks:              cfg.Banks,
		BanksPerGroup:      d.BanksPerGroup(),
		AccessSlots:        cfg.accessSlots(),
		BlockCells:         cfg.Bsmall,
		BankCapacityBlocks: cfg.BankCapacityBlocks,
		Queues:             physSpace,
	}
	if err := dcfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}

	var head sram.Store
	switch cfg.Org {
	case OrgLinkedList:
		ls, err := sram.NewList(cfg.HeadSRAMCells, cfg.Bsmall, d.BanksPerGroup(), physSpace)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		head = ls
	default:
		head = sram.NewCAM(cfg.HeadSRAMCells, physSpace)
	}

	pipeLen := cfg.Lookahead + cfg.LatencySlots
	if pipeLen < 1 {
		pipeLen = 1
	}
	look, err := mma.NewLookahead(pipeLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}

	var hm mma.HeadMMA
	switch cfg.MMA {
	case MDQF:
		m, err := mma.NewMDQF(cfg.Bsmall, physSpace)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		hm = m
	default:
		e, err := mma.NewECQF(look, cfg.Bsmall, physSpace)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		hm = e
	}

	tm, err := mma.NewTailMMA(cfg.Bsmall, cfg.Q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}

	dr := dram.New(dcfg)
	var mp mapper
	if cfg.Renaming {
		mp = &renameMapper{table: tbl, dram: dr}
	} else {
		mp = newIdentityMapper(dr, cfg.Q)
	}

	logical := make([]pipeEntry, pipeLen)
	for i := range logical {
		logical[i].logical = cell.NoQueue
	}
	policy := dss.OldestReadyFirst
	if cfg.FIFOScheduler {
		policy = dss.FIFOBlocking
	}
	buf := &Buffer{
		cfg:      cfg,
		dram:     dr,
		head:     head,
		sched:    dss.NewWithPolicy(cfg.RRCapacity, policy),
		hmma:     hm,
		tmma:     tm,
		mapr:     mp,
		look:     look,
		logical:  logical,
		ks:       newKernelState(cfg.Q),
		tails:    make([]tailQueue, cfg.Q),
		compRing: make([][]completion, cfg.accessSlots()+1),
	}
	// The head MMA selects against the DRAM's readable-now bitset in
	// place of per-candidate eligibility calls.
	hm.SetEligibility(dr.ReadableSet())
	if cfg.BankCapacityBlocks == 0 && !cfg.Renaming {
		// Identity mapping over an unbounded DRAM: PeekWriteTarget can
		// never fail, so the t-MMA runs unmasked.
		buf.writeEligible = nil
	} else {
		buf.writeEligible = func(q cell.QueueID) bool {
			_, err := buf.mapr.PeekWriteTarget(q)
			return err == nil
		}
	}
	return buf, nil
}

// Config returns the fully defaulted configuration in use.
func (b *Buffer) Config() Config { return b.cfg }

// Now returns the current slot (the number of Ticks performed).
func (b *Buffer) Now() cell.Slot { return b.now }

// Len returns the number of cells of queue q currently in the buffer.
func (b *Buffer) Len(q cell.QueueID) int {
	if q < 0 || int(q) >= len(b.ks.sysOcc) {
		return 0
	}
	return int(b.ks.sysOcc[q])
}

// Requestable returns how many cells of q the arbiter may still
// request (cells in the system minus requests already in flight).
func (b *Buffer) Requestable(q cell.QueueID) int {
	if q < 0 || int(q) >= len(b.ks.sysOcc) {
		return 0
	}
	return int(b.ks.sysOcc[q] - b.ks.pendingReq[q])
}

// PendingRequests returns the number of admitted requests still in
// flight through the pipeline (requested but not yet delivered). A
// drain loop may stop as soon as this reaches zero with no further
// requests issued.
func (b *Buffer) PendingRequests() int { return b.pendingTotal }

// TailFree returns the number of future arrivals guaranteed to admit
// before the tail SRAM could possibly fill: its capacity minus the
// resident cells. The bound is conservative in the caller's favor —
// tailTotal only ever grows by one per admitted arrival (staging and
// bypass deliveries shrink it), so any arrival schedule that stays
// within TailFree can never observe ErrBufferFull or ErrTailOverflow.
// The router's epoch planner uses it as the speculation horizon.
func (b *Buffer) TailFree() int { return b.cfg.TailSRAMCells - b.tailTotal }

// ArrivedSeq returns the number of cells that have ever arrived for
// queue q — equivalently, the Seq the next arrival to q will be
// assigned. Samplers that attach to a buffer mid-run (for example the
// latency tracker) use it to align with the per-queue numbering.
func (b *Buffer) ArrivedSeq(q cell.QueueID) uint64 {
	if q < 0 || int(q) >= len(b.ks.arrivedSeq) {
		return 0
	}
	return b.ks.arrivedSeq[q]
}

// DeliveredSeq returns the number of cells ever delivered for queue q
// — equivalently, the Seq the next delivery of q will carry.
// Restore-time reconciliation (the serve package's session resumption)
// compares it against a client's received count to decide what to
// redeliver.
func (b *Buffer) DeliveredSeq(q cell.QueueID) uint64 {
	if q < 0 || int(q) >= len(b.ks.deliveredSeq) {
		return 0
	}
	return b.ks.deliveredSeq[q]
}

// Stats returns a snapshot of the accumulated statistics.
func (b *Buffer) Stats() Stats {
	s := b.stats
	s.DSS = b.sched.Stats()
	s.HeadHighWater = b.head.HighWater()
	return s
}

// Tick advances the buffer by one slot. Errors wrapping the Err*
// invariant sentinels indicate a violated worst-case guarantee;
// ErrBufferFull / ErrBadRequest indicate caller-visible conditions
// (the slot still completes: deliveries and internal transfers occur).
func (b *Buffer) Tick(in TickInput) (TickOutput, error) {
	return b.tickSlot(in, &b.delivered)
}

// recordErr keeps the first non-nil error of a slot; later errors of
// the same slot are dropped (the slot still completes, matching the
// hardware model where a violation is flagged but the clock advances).
func recordErr(dst *error, err error) {
	if err != nil && *dst == nil {
		*dst = err
	}
}

// tickSlot is the slot body shared by Tick and TickBatch: one full
// slot against the given delivered-cell scratch.
//
//pktbuf:hotpath
func (b *Buffer) tickSlot(in TickInput, dst *cell.Cell) (TickOutput, error) {
	var out TickOutput
	var firstErr error

	// 1. Land DRAM→SRAM transfers completing this slot, before the
	// delivery point ("perfectly synchronized hardware", §3). The
	// completion calendar is a fixed ring indexed by slot.
	slotIdx := int(b.now % cell.Slot(len(b.compRing)))
	if pending := b.compRing[slotIdx]; len(pending) > 0 {
		for _, c := range pending {
			base := c.ordinal * uint64(b.cfg.Bsmall)
			for i, cl := range c.cells {
				if err := b.head.Insert(c.phys, base+uint64(i), cl); err != nil {
					b.stats.HeadOverflows++
					recordErr(&firstErr, fmt.Errorf("head SRAM insert: %w", err))
				}
			}
			b.dram.ReleaseBlock(c.cells)
		}
		b.compPending -= len(pending)
		b.compRing[slotIdx] = pending[:0]
	}

	// 2. Arrival.
	if in.Arrival != cell.NoQueue {
		recordErr(&firstErr, b.arrive(in.Arrival))
	}

	// 3. Request enters the pipeline; the pipeline shifts exactly once
	// per slot, so idle slots propagate bubbles.
	phys := cell.NoPhysQueue
	logical := cell.NoQueue
	if in.Request != cell.NoQueue {
		p, lq, err := b.admitRequest(in.Request)
		recordErr(&firstErr, err)
		phys, logical = p, lq
	}
	outPhys := b.look.Shift(phys)
	outEntry := b.logical[b.logHead]
	b.logical[b.logHead] = pipeEntry{logical: logical}
	b.logHead = (b.logHead + 1) % len(b.logical)
	if logical != cell.NoQueue {
		b.inPipe++
	}

	// 4. Delivery at the pipeline exit.
	if outEntry.logical != cell.NoQueue {
		b.inPipe--
		delivered, bypassed, err := b.deliver(outPhys, outEntry.logical, dst)
		recordErr(&firstErr, err)
		if delivered != nil {
			out.Delivered = delivered
			out.Bypassed = bypassed
		}
	}

	// 5. MMA cycle every b slots; DSA issues are staggered across the
	// cycle so that the write and read access of one window hit the
	// DRAM a random-access-time apart (the paper's RADS alternates
	// accesses every T_RC; CFDS overlaps them across banks).
	bs := b.cfg.Bsmall
	phase := int(b.now) % bs
	if phase == bs-1 {
		recordErr(&firstErr, b.tailCycle())
		recordErr(&firstErr, b.headCycle())
	}
	if bs == 1 {
		recordErr(&firstErr, b.dsaCycle(b.cfg.IssuesPerCycle))
	} else if phase == bs-1 || phase == bs/2-1 {
		recordErr(&firstErr, b.dsaCycle((b.cfg.IssuesPerCycle+1)/2))
	}

	if b.tailTotal > b.stats.TailHighWater {
		b.stats.TailHighWater = b.tailTotal
	}
	b.now++
	return out, firstErr
}

// Quiescent reports whether an idle Tick (no arrival, no request)
// would be a pure time advance: the request pipeline and logical ring
// are empty, no completion is in flight in the calendar, the Requests
// Register is empty (and not a zero-capacity degenerate that stalls
// every cycle), and neither MMA would order a transfer. In a
// quiescent state an idle Tick changes nothing but the slot counter
// and the DSS empty-cycle count — which is exactly what FastForward
// reproduces analytically — and quiescence is stable: no idle Tick
// can leave it.
func (b *Buffer) Quiescent() bool {
	if b.inPipe != 0 || b.compPending != 0 || b.sched.Len() != 0 || !b.sched.CanEnqueue() {
		return false
	}
	// Both Selects are pure probes of the incrementally maintained
	// indices. Their answers cannot change across idle slots: every
	// state they read moves only through arrivals, requests or the
	// in-flight work ruled out above.
	if _, ok := b.tmma.Select(b.writeEligible); ok {
		return false
	}
	if _, ok := b.hmma.Select(nil); ok {
		return false
	}
	return true
}

// NextEventSlot is the event-query form of Quiescent, deliberately
// conservative: when the buffer is quiescent there is no internal
// event ever (ok=false — the caller may FastForward arbitrarily far);
// otherwise it returns the current slot, meaning every slot must be
// ticked until quiescence. It performs no calendar lookup — it never
// names a strictly future event slot — because in-flight work makes
// almost every intervening slot do real bookkeeping anyway, so there
// is nothing to skip to.
func (b *Buffer) NextEventSlot() (slot cell.Slot, ok bool) {
	if b.Quiescent() {
		return 0, false
	}
	return b.now, true
}

// FastForward advances the buffer by n idle slots in O(1). It is
// bit-identical to calling Tick n times with an idle TickInput from a
// quiescent state — identical statistics (FastForwardedSlots aside,
// which dense ticking leaves zero by definition) and identical
// subsequent behavior: the completion-ring index and the MMA cycle
// phase follow now analytically, the (empty) lookahead and logical
// rings are rotated in place, and the DSA cycles the skipped span
// would have run on an empty Requests Register are credited to the
// DSS empty-cycle count. If the buffer is not quiescent nothing
// happens; the number of slots actually skipped (n or 0) is returned.
func (b *Buffer) FastForward(n uint64) uint64 {
	if n == 0 || !b.Quiescent() {
		return 0
	}
	b.fastForward(n)
	return n
}

// fastForward performs the jump; the caller has established
// quiescence.
func (b *Buffer) fastForward(n uint64) {
	b.sched.SkipIdleCycles(dsaCyclesIn(uint64(b.now), n, b.cfg.Bsmall))
	b.look.FastForward(n)
	b.logHead = int((uint64(b.logHead) + n) % uint64(len(b.logical)))
	b.now += cell.Slot(n)
	b.stats.FastForwardedSlots += n
}

// dsaCyclesIn counts the DSA scheduling cycles Tick would run over the
// n slots starting at start: every slot when b=1, otherwise the two
// stagger phases b-1 and b/2-1 of each b-slot cycle.
func dsaCyclesIn(start, n uint64, bs int) uint64 {
	if bs == 1 {
		return n
	}
	m := uint64(bs)
	return slotsWithResidue(start, n, m, m-1) + slotsWithResidue(start, n, m, m/2-1)
}

// slotsWithResidue counts slots t in [start, start+n) with t % m == r.
func slotsWithResidue(start, n, m, r uint64) uint64 {
	first := start + (r-start%m+m)%m
	if first >= start+n {
		return 0
	}
	return (start+n-1-first)/m + 1
}

// TickBatch advances one slot per element of in, writing slot i's
// outcome to out[i]. It requires len(out) ≥ len(in) and returns the
// number of slots ticked; on error it stops after the offending slot
// (which, per Tick semantics, still completes and has its outcome in
// out[n-1]). It is the fused fast path: busy spans run through the
// structure-of-arrays batch kernel (kernel.go) — one fused
// arrival→select→issue→deliver loop with per-batch prologue/epilogue
// in place of tickSlot's per-slot overhead — delivered cells land in a
// batch-local scratch (every out[i].Delivered stays valid until the
// next Tick or TickBatch call, not just one slot), and runs of idle
// inputs are converted to FastForward the moment the buffer goes
// quiescent, so fully idle spans cost O(1) instead of O(slots). The
// outcome is bit-identical to calling Tick once per input, which the
// differential suites in kernel_test.go and fastforward_test.go pin.
func (b *Buffer) TickBatch(in []TickInput, out []TickOutput) (int, error) {
	if len(out) < len(in) {
		return 0, fmt.Errorf("core: TickBatch output slice too short: %d outputs for %d inputs",
			len(out), len(in))
	}
	if cap(b.deliveredBatch) < len(in) {
		b.deliveredBatch = make([]cell.Cell, len(in))
	}
	scratch := b.deliveredBatch[:cap(b.deliveredBatch)]
	k := b.kernel()
	i := 0
	for i < len(in) {
		if in[i].Arrival == cell.NoQueue && in[i].Request == cell.NoQueue {
			// Idle run: tick until quiescent, then skip the rest in O(1).
			j := i + 1
			for j < len(in) && in[j].Arrival == cell.NoQueue && in[j].Request == cell.NoQueue {
				j++
			}
			for i < j {
				if b.Quiescent() {
					b.fastForward(uint64(j - i))
					for ; i < j; i++ {
						out[i] = TickOutput{}
					}
					break
				}
				n, err := k.run(in[i:i+1], out[i:i+1], scratch[i:i+1])
				i += n
				if err != nil {
					return i, err
				}
			}
			continue
		}
		// Busy span: hand the maximal run of non-idle slots to the
		// fused kernel in one call.
		j := i + 1
		for j < len(in) && (in[j].Arrival != cell.NoQueue || in[j].Request != cell.NoQueue) {
			j++
		}
		n, err := k.run(in[i:j], out[i:j], scratch[i:j])
		i += n
		if err != nil {
			return i, err
		}
	}
	return len(in), nil
}

// arrive admits one cell into the tail SRAM.
func (b *Buffer) arrive(q cell.QueueID) error {
	if q < 0 || int(q) >= len(b.tails) {
		return fmt.Errorf("%w: arrival for queue %d (Q=%d)", ErrUnknownQueue, q, len(b.tails))
	}
	if b.tailTotal >= b.cfg.TailSRAMCells {
		// With a bounded DRAM the tail bound is conditional: any queue
		// blocked from writing (a full group without renaming, or §6's
		// residual fragmentation with it) legitimately backs cells up
		// into the tail SRAM, so the overflow is backpressure. With an
		// unbounded DRAM the t-MMA can always drain and an overflow is
		// a violated dimensioning bound.
		b.stats.Drops++
		if b.cfg.BankCapacityBlocks > 0 {
			return fmt.Errorf("%w: queue %d at slot %d", ErrBufferFull, q, b.now)
		}
		return fmt.Errorf("%w: %d cells at slot %d", ErrTailOverflow, b.tailTotal, b.now)
	}
	seq := b.ks.arrivedSeq[q]
	b.ks.arrivedSeq[q] = seq + 1
	b.tails[q].push(cell.Cell{Queue: q, Seq: seq})
	b.tailTotal++
	b.tmma.OnArrival(q)
	b.ks.sysOcc[q]++
	b.stats.Arrivals++
	return nil
}

// admitRequest validates and translates a scheduler request. Cells
// already written toward DRAM route via their physical queue; the
// remainder are promised to the tail-SRAM bypass.
func (b *Buffer) admitRequest(q cell.QueueID) (cell.PhysQueueID, cell.QueueID, error) {
	if b.Requestable(q) <= 0 {
		b.stats.BadRequests++
		return cell.NoPhysQueue, cell.NoQueue,
			fmt.Errorf("%w: queue %d at slot %d", ErrBadRequest, q, b.now)
	}
	b.ks.pendingReq[q]++
	b.pendingTotal++
	b.stats.Requests++
	phys, ok := b.mapr.ConsumeForRequest(q)
	if !ok {
		// Bypass: commit the oldest unpromised tail cell to direct
		// delivery and remove it from the t-MMA's stageable ledger.
		b.tails[q].promised++
		b.tmma.OnBypass(q)
		return cell.NoPhysQueue, q, nil
	}
	b.hmma.OnRequestEnter(phys)
	return phys, q, nil
}

// deliver pops the cell for a request exiting the pipeline, storing it
// in dst (the per-Tick or per-batch-slot scratch the returned pointer
// aliases).
//
//pktbuf:hotpath
func (b *Buffer) deliver(phys cell.PhysQueueID, q cell.QueueID, dst *cell.Cell) (*cell.Cell, bool, error) {
	var c cell.Cell
	bypassed := false
	if phys == cell.NoPhysQueue {
		// Bypass delivery from the tail SRAM front.
		tq := &b.tails[q]
		if tq.len() == 0 || tq.promised == 0 {
			b.stats.Misses++
			return nil, false, fmt.Errorf("%w: bypass for queue %d at slot %d finds no cell",
				ErrMiss, q, b.now) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
		}
		c = tq.popFront()
		tq.promised--
		b.tailTotal--
		bypassed = true
	} else {
		b.hmma.OnRequestLeave(phys)
		popped, err := b.head.Pop(phys)
		if err != nil {
			b.stats.Misses++
			return nil, false, fmt.Errorf("%w: queue %d (phys %d) at slot %d: %v",
				ErrMiss, q, phys, b.now, err) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
		}
		c = popped
	}

	*dst = c
	want := b.ks.deliveredSeq[q]
	if c.Queue != q || c.Seq != want {
		return dst, bypassed, fmt.Errorf("%w: queue %d got %v, want seq %d",
			ErrOutOfOrder, q, c, want) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
	}
	b.ks.deliveredSeq[q] = want + 1
	b.ks.sysOcc[q]--
	b.ks.pendingReq[q]--
	b.pendingTotal--
	b.stats.Deliveries++
	if bypassed {
		b.stats.Bypasses++
	}
	return dst, bypassed, nil
}

// tailCycle runs the t-MMA: stage one block of b cells toward DRAM.
func (b *Buffer) tailCycle() error {
	if !b.sched.CanEnqueue() {
		b.stats.TailStalls++
		return nil
	}
	q, ok := b.tmma.Select(b.writeEligible)
	if !ok {
		return nil
	}
	p, err := b.mapr.WriteTarget(q)
	if err != nil {
		// Raced capacity; treated as a stall, retried next cycle.
		b.stats.TailStalls++
		return nil
	}
	ordinal, bank, err := b.dram.ReserveWrite(p)
	if err != nil {
		b.stats.TailStalls++
		return nil
	}
	if err := b.mapr.NoteWrite(q, p); err != nil {
		return err
	}
	blk := b.dram.AcquireBlock()
	b.tails[q].extractBlock(b.cfg.Bsmall, blk)
	b.tmma.OnTransfer(q)
	return b.sched.Enqueue(dss.Request{
		Queue: p, Dir: dss.Write, Ordinal: ordinal, Bank: bank,
		Cells: blk, Enqueued: b.now,
	})
}

// headCycle runs the h-MMA: order one replenishment of b cells.
func (b *Buffer) headCycle() error {
	if !b.sched.CanEnqueue() {
		b.stats.HeadStalls++
		return nil
	}
	// Eligibility comes from the DRAM's readable bitset installed at
	// construction, so no per-candidate closure is passed.
	p, ok := b.hmma.Select(nil)
	if !ok {
		return nil
	}
	ordinal, bank, err := b.dram.ReserveRead(p)
	if err != nil {
		return fmt.Errorf("core: replenish reserve for phys %d: %w", p, err)
	}
	b.hmma.OnReplenish(p)
	return b.sched.Enqueue(dss.Request{
		Queue: p, Dir: dss.Read, Ordinal: ordinal, Bank: bank, Enqueued: b.now,
	})
}

// dsaCycle issues up to budget requests through the DSA and executes
// them against the DRAM.
func (b *Buffer) dsaCycle(budget int) error {
	access := cell.Slot(b.cfg.accessSlots())
	for _, r := range b.sched.Cycle(b.now, budget, b.cfg.accessSlots()) {
		switch r.Dir {
		case dss.Write:
			if _, err := b.dram.BeginWriteAt(r.Queue, r.Ordinal, r.Cells, b.now); err != nil {
				return fmt.Errorf("core: DSA write issue: %w", err)
			}
			// The block physically leaves the tail SRAM on the bus; its
			// staging storage goes back to the pool.
			b.tailTotal -= len(r.Cells)
			b.dram.ReleaseBlock(r.Cells)
		case dss.Read:
			_, cells, err := b.dram.BeginReadAt(r.Queue, r.Ordinal, b.now)
			if err != nil {
				return fmt.Errorf("core: DSA read issue: %w", err)
			}
			at := int((b.now + access) % cell.Slot(len(b.compRing)))
			b.compRing[at] = append(b.compRing[at], completion{
				phys: r.Queue, ordinal: r.Ordinal, cells: cells,
			})
			b.compPending++
		}
	}
	return nil
}
