package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cell"
)

// smallCFDS returns a small CFDS configuration exercising real
// banking: Q=4, B=8, b=2 (4 banks/group, 4 groups).
func smallCFDS(t *testing.T) *Buffer {
	t.Helper()
	b, err := New(Config{Q: 4, B: 8, Bsmall: 2, Banks: 16})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// smallRADS returns the degenerate b=B baseline with the same
// externals.
func smallRADS(t *testing.T) *Buffer {
	t.Helper()
	b, err := New(Config{Q: 4, B: 8, Bsmall: 8, Banks: 16})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// drive runs the buffer for slots ticks with the given per-slot
// stimulus function, failing the test on any invariant error.
func drive(t *testing.T, b *Buffer, slots int, stim func(slot int) TickInput) {
	t.Helper()
	for i := 0; i < slots; i++ {
		if _, err := b.Tick(stim(i)); err != nil {
			t.Fatalf("slot %d: %v\nstats: %v", i, err, b.Stats())
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Q: 0, B: 8, Banks: 16},
		{Q: 4, B: 7, Banks: 16},             // odd B
		{Q: 4, B: 0, Banks: 16},             // zero B
		{Q: 4, B: 8, Banks: 0},              // zero banks
		{Q: 4, B: 8, Bsmall: 16, Banks: 16}, // b > B
		{Q: 4, B: 8, Bsmall: 3, Banks: 16},  // b does not divide B
		{Q: 4, B: 8, Bsmall: 2, Banks: 6},   // B/b does not divide M
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) succeeded, want error", i, cfg)
		}
	}
}

func TestDefaultsFollowDimensioning(t *testing.T) {
	b := smallCFDS(t)
	cfg := b.Config()
	d := cfg.Dimension()
	if cfg.Lookahead != 4*(2-1)+1 {
		t.Errorf("Lookahead = %d, want %d", cfg.Lookahead, 4+1)
	}
	if cfg.RRCapacity < d.RRSize() {
		t.Errorf("RRCapacity = %d < analytic %d", cfg.RRCapacity, d.RRSize())
	}
	if cfg.HeadSRAMCells < d.HeadSRAMSize() {
		t.Errorf("HeadSRAMCells = %d < analytic %d", cfg.HeadSRAMCells, d.HeadSRAMSize())
	}
	if cfg.IssuesPerCycle != 2 {
		t.Errorf("IssuesPerCycle = %d, want 2", cfg.IssuesPerCycle)
	}
}

func TestSingleCellThrough(t *testing.T) {
	b := smallCFDS(t)
	// One arrival, then one request; the cell must come back (via the
	// bypass, since it never reached a full block).
	if _, err := b.Tick(TickInput{Arrival: 0, Request: cell.NoQueue}); err != nil {
		t.Fatal(err)
	}
	if got := b.Len(0); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	var delivered *cell.Cell
	var bypassed bool
	req := cell.QueueID(0)
	for i := 0; i < 200 && delivered == nil; i++ {
		out, err := b.Tick(TickInput{Arrival: cell.NoQueue, Request: req})
		if err != nil {
			t.Fatal(err)
		}
		req = cell.NoQueue // single request
		if out.Delivered != nil {
			delivered, bypassed = out.Delivered, out.Bypassed
		}
	}
	if delivered == nil {
		t.Fatal("cell never delivered")
	}
	if delivered.Queue != 0 || delivered.Seq != 0 {
		t.Errorf("delivered %v", delivered)
	}
	if !bypassed {
		t.Error("single cell should use the bypass path")
	}
	if got := b.Len(0); got != 0 {
		t.Errorf("Len after delivery = %d", got)
	}
}

func TestBadRequestRejected(t *testing.T) {
	b := smallCFDS(t)
	_, err := b.Tick(TickInput{Arrival: cell.NoQueue, Request: 2})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
	if b.Stats().BadRequests != 1 {
		t.Error("BadRequests not counted")
	}
	// One cell in, one request ok, a second request must fail.
	if _, err := b.Tick(TickInput{Arrival: 2, Request: cell.NoQueue}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Tick(TickInput{Arrival: cell.NoQueue, Request: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Tick(TickInput{Arrival: cell.NoQueue, Request: 2}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("second request err = %v, want ErrBadRequest", err)
	}
}

// saturate drives full-rate traffic: one arrival and one request per
// slot, requests lagging arrivals so queues stay backlogged.
func saturate(t *testing.T, b *Buffer, q int, slots int, arrivalPick, requestPick func(slot int) cell.QueueID) {
	t.Helper()
	delivered := uint64(0)
	for i := 0; i < slots; i++ {
		in := TickInput{Arrival: arrivalPick(i), Request: cell.NoQueue}
		if r := requestPick(i); r != cell.NoQueue && b.Requestable(r) > 0 {
			in.Request = r
		}
		out, err := b.Tick(in)
		if err != nil {
			t.Fatalf("slot %d: %v\nstats: %v", i, err, b.Stats())
		}
		if out.Delivered != nil {
			delivered++
		}
	}
	st := b.Stats()
	if !st.Clean() {
		t.Fatalf("run not clean: %v", st)
	}
	if delivered != st.Deliveries {
		t.Fatalf("delivered %d != stats %d", delivered, st.Deliveries)
	}
	if st.Deliveries == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestAdversarialRoundRobinCFDS is the paper's §3 worst case: the
// scheduler drains queues round-robin, one cell each, so all SRAM
// queues empty nearly simultaneously. Zero misses required.
func TestAdversarialRoundRobinCFDS(t *testing.T) {
	const Q = 4
	b := smallCFDS(t)
	// Warm up: backlog every queue deep into DRAM (round-robin
	// arrivals, no requests).
	warm := 40 * Q
	drive(t, b, warm, func(i int) TickInput {
		return TickInput{Arrival: cell.QueueID(i % Q), Request: cell.NoQueue}
	})
	// Steady state: round-robin arrivals and round-robin requests.
	saturate(t, b, Q, 30000,
		func(i int) cell.QueueID { return cell.QueueID(i % Q) },
		func(i int) cell.QueueID { return cell.QueueID(i % Q) },
	)
	st := b.Stats()
	d := b.Config().Dimension()
	bound := b.Config().IssuesPerCycle * d.MaxSkips()
	if st.DSS.MaxSkips > bound {
		t.Errorf("MaxSkips %d exceeds β·Dmax %d", st.DSS.MaxSkips, bound)
	}
	if st.DSS.MaxOccupancy > b.Config().RRCapacity {
		t.Errorf("RR occupancy %d exceeded capacity %d", st.DSS.MaxOccupancy, b.Config().RRCapacity)
	}
}

func TestAdversarialRoundRobinRADS(t *testing.T) {
	const Q = 4
	b := smallRADS(t)
	warm := 100 * Q
	drive(t, b, warm, func(i int) TickInput {
		return TickInput{Arrival: cell.QueueID(i % Q), Request: cell.NoQueue}
	})
	saturate(t, b, Q, 30000,
		func(i int) cell.QueueID { return cell.QueueID(i % Q) },
		func(i int) cell.QueueID { return cell.QueueID(i % Q) },
	)
}

// TestSingleQueueBlast pushes all traffic through one queue — the
// hardest case for a single bank group (sustained 2 cells/slot on
// B/b banks).
func TestSingleQueueBlast(t *testing.T) {
	b := smallCFDS(t)
	drive(t, b, 200, func(i int) TickInput {
		return TickInput{Arrival: 0, Request: cell.NoQueue}
	})
	saturate(t, b, 1, 20000,
		func(i int) cell.QueueID { return 0 },
		func(i int) cell.QueueID { return 0 },
	)
}

// TestRandomTrafficCFDS drives random valid arrivals/requests across
// many seeds.
func TestRandomTrafficCFDS(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := smallCFDS(t)
		const Q = 4
		for i := 0; i < 15000; i++ {
			in := TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
			if rng.Intn(10) < 8 {
				in.Arrival = cell.QueueID(rng.Intn(Q))
			}
			if rng.Intn(10) < 8 {
				q := cell.QueueID(rng.Intn(Q))
				if b.Requestable(q) > 0 {
					in.Request = q
				}
			}
			if _, err := b.Tick(in); err != nil {
				t.Fatalf("seed %d slot %d: %v\nstats: %v", seed, i, err, b.Stats())
			}
		}
		if st := b.Stats(); !st.Clean() {
			t.Fatalf("seed %d: %v", seed, st)
		}
	}
}

// TestDrainToEmpty fills the buffer and then drains it completely; all
// cells must come back in order (the buffer's own FIFO check) and the
// occupancy must return to zero.
func TestDrainToEmpty(t *testing.T) {
	for _, mk := range []func(*testing.T) *Buffer{smallCFDS, smallRADS} {
		b := mk(t)
		const Q = 4
		const per = 100
		drive(t, b, Q*per, func(i int) TickInput {
			return TickInput{Arrival: cell.QueueID(i % Q), Request: cell.NoQueue}
		})
		total := uint64(0)
		for i := 0; i < 20*Q*per && total < Q*per; i++ {
			in := TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
			q := cell.QueueID(i % Q)
			if b.Requestable(q) > 0 {
				in.Request = q
			}
			out, err := b.Tick(in)
			if err != nil {
				t.Fatalf("slot %d: %v", i, err)
			}
			if out.Delivered != nil {
				total++
			}
		}
		if total != Q*per {
			t.Fatalf("drained %d of %d cells", total, Q*per)
		}
		for q := cell.QueueID(0); q < Q; q++ {
			if b.Len(q) != 0 {
				t.Errorf("Len(%d) = %d after drain", q, b.Len(q))
			}
		}
	}
}

// TestHotColdMix puts 90% of traffic on one queue and sprinkles the
// rest — exercising both the DRAM path and the bypass path at once.
func TestHotColdMix(t *testing.T) {
	b := smallCFDS(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		in := TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
		if rng.Intn(10) < 9 {
			if rng.Intn(10) < 9 {
				in.Arrival = 0
			} else {
				in.Arrival = cell.QueueID(1 + rng.Intn(3))
			}
		}
		q := cell.QueueID(0)
		if rng.Intn(10) >= 9 {
			q = cell.QueueID(1 + rng.Intn(3))
		}
		if b.Requestable(q) > 0 {
			in.Request = q
		}
		if _, err := b.Tick(in); err != nil {
			t.Fatalf("slot %d: %v\nstats %v", i, err, b.Stats())
		}
	}
	st := b.Stats()
	if !st.Clean() {
		t.Fatalf("not clean: %v", st)
	}
	if st.Bypasses == 0 {
		t.Error("expected some bypass deliveries for the cold queues")
	}
}

// TestBoundedDRAMBackpressure bounds the DRAM and floods one queue:
// arrivals must eventually be rejected with ErrBufferFull (not an
// invariant error), and no cell may be lost silently.
func TestBoundedDRAMBackpressure(t *testing.T) {
	cfg := Config{Q: 4, B: 8, Bsmall: 2, Banks: 16, BankCapacityBlocks: 2}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := 0
	accepted := 0
	for i := 0; i < 5000; i++ {
		_, err := b.Tick(TickInput{Arrival: 0, Request: cell.NoQueue})
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrBufferFull):
			full++
		default:
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	if full == 0 {
		t.Fatal("bounded DRAM never backpressured")
	}
	if accepted != b.Len(0) {
		t.Errorf("accepted %d != Len %d", accepted, b.Len(0))
	}
	// Everything accepted must still drain cleanly.
	drained := 0
	for i := 0; i < 50*accepted && drained < accepted; i++ {
		in := TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
		if b.Requestable(0) > 0 {
			in.Request = 0
		}
		out, err := b.Tick(in)
		if err != nil {
			t.Fatalf("drain slot %d: %v", i, err)
		}
		if out.Delivered != nil {
			drained++
		}
	}
	if drained != accepted {
		t.Errorf("drained %d of %d accepted cells", drained, accepted)
	}
}

// TestRenamingSpreadsSingleQueue floods one queue with renaming on and
// a bounded DRAM: it must occupy more than one group's share.
func TestRenamingSpreadsSingleQueue(t *testing.T) {
	cfg := Config{
		Q: 4, B: 8, Bsmall: 2, Banks: 16,
		BankCapacityBlocks: 4, Renaming: true,
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for i := 0; i < 6000; i++ {
		_, err := b.Tick(TickInput{Arrival: 0, Request: cell.NoQueue})
		if err == nil {
			accepted++
		} else if !errors.Is(err, ErrBufferFull) {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	// One group holds 4 banks/group? No: B/b = 4 banks per group, 4
	// blocks per bank -> 16 blocks = 32 cells per group. Without
	// renaming queue 0 would cap near one group's share plus SRAM;
	// with renaming it must exceed it clearly.
	oneGroupCells := 4 * 4 * cfg.Bsmall
	if accepted <= oneGroupCells {
		t.Errorf("accepted %d cells, want > one group's %d", accepted, oneGroupCells)
	}
	// And drain cleanly.
	drained := 0
	for i := 0; i < 100*accepted && drained < accepted; i++ {
		in := TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
		if b.Requestable(0) > 0 {
			in.Request = 0
		}
		out, err := b.Tick(in)
		if err != nil {
			t.Fatalf("drain slot %d: %v\nstats %v", i, err, b.Stats())
		}
		if out.Delivered != nil {
			drained++
		}
	}
	if drained != accepted {
		t.Errorf("drained %d of %d", drained, accepted)
	}
}

// TestLinkedListOrgEquivalent runs the adversarial pattern on the
// linked-list SRAM organization.
func TestLinkedListOrgEquivalent(t *testing.T) {
	b, err := New(Config{Q: 4, B: 8, Bsmall: 2, Banks: 16, Org: OrgLinkedList})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, b, 160, func(i int) TickInput {
		return TickInput{Arrival: cell.QueueID(i % 4), Request: cell.NoQueue}
	})
	saturate(t, b, 4, 20000,
		func(i int) cell.QueueID { return cell.QueueID(i % 4) },
		func(i int) cell.QueueID { return cell.QueueID(i % 4) },
	)
}

// TestMDQFStillZeroMiss runs the MDQF baseline; with the default
// (generous) SRAM it must also avoid misses on moderate load.
func TestMDQFStillZeroMiss(t *testing.T) {
	b, err := New(Config{Q: 4, B: 8, Bsmall: 2, Banks: 16, MMA: MDQF})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, b, 160, func(i int) TickInput {
		return TickInput{Arrival: cell.QueueID(i % 4), Request: cell.NoQueue}
	})
	saturate(t, b, 4, 15000,
		func(i int) cell.QueueID { return cell.QueueID(i % 4) },
		func(i int) cell.QueueID { return cell.QueueID(i % 4) },
	)
}

// TestPermutedRequestPattern uses a rotating permutation instead of
// strict round-robin, another §3-style adversarial shape.
func TestPermutedRequestPattern(t *testing.T) {
	b := smallCFDS(t)
	perm := []cell.QueueID{2, 0, 3, 1}
	drive(t, b, 160, func(i int) TickInput {
		return TickInput{Arrival: cell.QueueID(i % 4), Request: cell.NoQueue}
	})
	saturate(t, b, 4, 20000,
		func(i int) cell.QueueID { return cell.QueueID((i * 3) % 4) },
		func(i int) cell.QueueID { return perm[i%4] },
	)
}

func TestStatsString(t *testing.T) {
	b := smallCFDS(t)
	if _, err := b.Tick(TickInput{Arrival: 1, Request: cell.NoQueue}); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.Arrivals != 1 || !s.Clean() {
		t.Errorf("stats = %v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}
