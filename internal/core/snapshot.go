package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/cell"
	"repro/internal/frame"
	"repro/internal/mma"
	"repro/internal/sram"
)

// Snapshot errors.
var (
	// ErrSnapshotVersion means the stream encodes a snapshot layout this
	// build does not understand.
	ErrSnapshotVersion = errors.New("core: unsupported snapshot version")
	// ErrSnapshot marks a snapshot rejected on restore: truncated,
	// internally inconsistent, or taken from a differently configured
	// buffer.
	ErrSnapshot = errors.New("core: invalid snapshot")
)

// snapshotVersion is the layout version this build reads and writes.
const snapshotVersion = 1

// Snapshot serializes the complete engine state — every arena, ledger,
// ring and counter the next Tick can observe — as a versioned sequence
// of text frames (internal/frame, layered on the trace record
// conventions). RestoreBuffer reproduces a buffer that is
// bit-identical to this one: the differential suite pins that a
// restored buffer and the original produce identical outputs and
// statistics for any subsequent stimulus.
//
// Scratch that the next slot cannot observe (delivery scratch cells,
// the batch kernel's devirtualization cache, the block recycling pool,
// epoch-stamped workspaces) is not serialized; derived indices
// (bitsets, critical-slot rings, bucketed max-trackers) are rebuilt on
// restore from the authoritative state.
func (b *Buffer) Snapshot(w io.Writer) error {
	fw := frame.NewWriter(w)
	fw.Comment("pktbuf snapshot")
	fw.Begin("snapshot")
	fw.Attr("version", snapshotVersion)
	snapshotConfig(fw, b.cfg)

	fw.Begin("core")
	fw.Attr("now", int64(b.now))
	fw.Attr("loghead", int64(b.logHead))
	fw.Attr("inpipe", int64(b.inPipe))
	fw.Attr("pending", int64(b.pendingTotal))
	fw.Attr("tailtotal", int64(b.tailTotal))
	fw.Attr("comppending", int64(b.compPending))

	fw.Begin("core-stats")
	fw.Attr("arrivals", int64(b.stats.Arrivals))
	fw.Attr("requests", int64(b.stats.Requests))
	fw.Attr("deliveries", int64(b.stats.Deliveries))
	fw.Attr("bypasses", int64(b.stats.Bypasses))
	fw.Attr("misses", int64(b.stats.Misses))
	fw.Attr("drops", int64(b.stats.Drops))
	fw.Attr("badreq", int64(b.stats.BadRequests))
	fw.Attr("headovf", int64(b.stats.HeadOverflows))
	fw.Attr("tailstalls", int64(b.stats.TailStalls))
	fw.Attr("headstalls", int64(b.stats.HeadStalls))
	fw.Attr("tailhw", int64(b.stats.TailHighWater))
	fw.Attr("ff", int64(b.stats.FastForwardedSlots))

	// The logical side of the request pipeline: ring slots holding a
	// live request. (The physical side is the lookahead, framed below.)
	live := 0
	for _, e := range b.logical {
		if e.logical != cell.NoQueue {
			live++
		}
	}
	fw.Begin("logical")
	fw.Attr("entries", int64(live))
	for i, e := range b.logical {
		if e.logical != cell.NoQueue {
			fw.Row(int64(i), int64(e.logical))
		}
	}

	// Per-queue cursor/counter arena.
	live = 0
	for q := range b.ks.arrivedSeq {
		if b.ks.arrivedSeq[q] != 0 || b.ks.deliveredSeq[q] != 0 || b.ks.sysOcc[q] != 0 || b.ks.pendingReq[q] != 0 {
			live++
		}
	}
	fw.Begin("ks")
	fw.Attr("entries", int64(live))
	for q := range b.ks.arrivedSeq {
		if b.ks.arrivedSeq[q] != 0 || b.ks.deliveredSeq[q] != 0 || b.ks.sysOcc[q] != 0 || b.ks.pendingReq[q] != 0 {
			fw.Row(int64(q), int64(b.ks.arrivedSeq[q]), int64(b.ks.deliveredSeq[q]),
				int64(b.ks.sysOcc[q]), int64(b.ks.pendingReq[q]))
		}
	}

	// Tail SRAM deques, oldest cell first.
	live = 0
	for q := range b.tails {
		if b.tails[q].len() > 0 {
			live++
		}
	}
	fw.Begin("tails")
	fw.Attr("queues", int64(live))
	for q := range b.tails {
		t := &b.tails[q]
		if t.len() == 0 {
			continue
		}
		fw.Begin("tail")
		fw.Attr("q", int64(q))
		fw.Attr("promised", int64(t.promised))
		fw.Attr("n", int64(t.len()))
		for _, c := range t.cells[t.start:] {
			fw.Row(int64(c.Queue), int64(c.Seq))
		}
	}

	// Completion calendar: in-flight DRAM→SRAM transfers by landing
	// slot.
	live = 0
	for _, bucket := range b.compRing {
		if len(bucket) > 0 {
			live++
		}
	}
	fw.Begin("comp")
	fw.Attr("buckets", int64(live))
	for i, bucket := range b.compRing {
		if len(bucket) == 0 {
			continue
		}
		fw.Begin("comp-slot")
		fw.Attr("i", int64(i))
		fw.Attr("n", int64(len(bucket)))
		for _, c := range bucket {
			row := make([]int64, 2, 2+2*len(c.cells))
			row[0], row[1] = int64(c.phys), int64(c.ordinal)
			for _, cl := range c.cells {
				row = append(row, int64(cl.Queue), int64(cl.Seq))
			}
			fw.Row(row...)
		}
	}

	// Logical→physical mapping state.
	switch m := b.mapr.(type) {
	case *identityMapper:
		live = 0
		for _, v := range m.towardDRAM {
			if v != 0 {
				live++
			}
		}
		fw.Begin("ident")
		fw.Attr("entries", int64(live))
		for q, v := range m.towardDRAM {
			if v != 0 {
				fw.Row(int64(q), int64(v))
			}
		}
	case *renameMapper:
		m.table.Snapshot(fw)
	}

	// Substrates. The lookahead precedes the head MMA: an ECQF rebuilds
	// its window index from the restored ring.
	b.look.Snapshot(fw)
	switch h := b.hmma.(type) {
	case *mma.ECQF:
		h.Snapshot(fw)
	case *mma.MDQF:
		h.Snapshot(fw)
	}
	b.tmma.Snapshot(fw)
	switch s := b.head.(type) {
	case *sram.CAMStore:
		s.Snapshot(fw)
	case *sram.ListStore:
		s.Snapshot(fw)
	}
	b.dram.Snapshot(fw)
	b.sched.Snapshot(fw)
	fw.Begin("end")
	return fw.Flush()
}

// RestoreBuffer reconstructs a buffer from a Snapshot stream. cfg must
// describe the same buffer the snapshot was taken from (ApplyDefaults
// is invoked internally, then the defaulted configuration is checked
// against the one recorded in the snapshot); a mismatch is rejected
// with ErrSnapshot rather than restored approximately.
func RestoreBuffer(r io.Reader, cfg Config) (*Buffer, error) {
	fr := frame.NewReader(r)
	if err := fr.Expect("snapshot"); err != nil {
		return nil, err
	}
	v, err := fr.NeedAttr("version")
	if err != nil {
		return nil, err
	}
	if v != snapshotVersion {
		return nil, fmt.Errorf("%w: got %d, this build reads %d", ErrSnapshotVersion, v, snapshotVersion)
	}
	snapCfg, err := restoreConfig(fr)
	if err != nil {
		return nil, err
	}
	cfg, err = cfg.ApplyDefaults()
	if err != nil {
		return nil, err
	}
	if cfg != snapCfg {
		return nil, fmt.Errorf("%w: snapshot taken from a different configuration (snapshot %+v, restore %+v)",
			ErrSnapshot, snapCfg, cfg)
	}
	b, err := New(cfg)
	if err != nil {
		return nil, err
	}

	if err := fr.Expect("core"); err != nil {
		return nil, err
	}
	for _, f := range []struct {
		key string
		set func(int64)
	}{
		{"now", func(v int64) { b.now = cell.Slot(v) }},
		{"loghead", func(v int64) { b.logHead = int(v) }},
		{"inpipe", func(v int64) { b.inPipe = int(v) }},
		{"pending", func(v int64) { b.pendingTotal = int(v) }},
		{"tailtotal", func(v int64) { b.tailTotal = int(v) }},
		{"comppending", func(v int64) { b.compPending = int(v) }},
	} {
		v, err := fr.NeedAttr(f.key)
		if err != nil {
			return nil, err
		}
		f.set(v)
	}

	if err := fr.Expect("core-stats"); err != nil {
		return nil, err
	}
	for _, f := range []struct {
		key string
		set func(int64)
	}{
		{"arrivals", func(v int64) { b.stats.Arrivals = uint64(v) }},
		{"requests", func(v int64) { b.stats.Requests = uint64(v) }},
		{"deliveries", func(v int64) { b.stats.Deliveries = uint64(v) }},
		{"bypasses", func(v int64) { b.stats.Bypasses = uint64(v) }},
		{"misses", func(v int64) { b.stats.Misses = uint64(v) }},
		{"drops", func(v int64) { b.stats.Drops = uint64(v) }},
		{"badreq", func(v int64) { b.stats.BadRequests = uint64(v) }},
		{"headovf", func(v int64) { b.stats.HeadOverflows = uint64(v) }},
		{"tailstalls", func(v int64) { b.stats.TailStalls = uint64(v) }},
		{"headstalls", func(v int64) { b.stats.HeadStalls = uint64(v) }},
		{"tailhw", func(v int64) { b.stats.TailHighWater = int(v) }},
		{"ff", func(v int64) { b.stats.FastForwardedSlots = uint64(v) }},
	} {
		v, err := fr.NeedAttr(f.key)
		if err != nil {
			return nil, err
		}
		f.set(v)
	}

	if err := fr.Expect("logical"); err != nil {
		return nil, err
	}
	n, err := fr.NeedAttr("entries")
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < n; i++ {
		row, err := fr.NeedRow(2)
		if err != nil {
			return nil, err
		}
		slot := int(row[0])
		if slot < 0 || slot >= len(b.logical) {
			return nil, fmt.Errorf("%w: pipeline slot %d out of range", frame.ErrFrame, slot)
		}
		b.logical[slot].logical = cell.QueueID(row[1])
	}

	if err := fr.Expect("ks"); err != nil {
		return nil, err
	}
	if n, err = fr.NeedAttr("entries"); err != nil {
		return nil, err
	}
	for i := int64(0); i < n; i++ {
		row, err := fr.NeedRow(5)
		if err != nil {
			return nil, err
		}
		q := int(row[0])
		if q < 0 || q >= len(b.ks.arrivedSeq) {
			return nil, fmt.Errorf("%w: ks queue %d out of range", frame.ErrFrame, q)
		}
		b.ks.arrivedSeq[q] = uint64(row[1])
		b.ks.deliveredSeq[q] = uint64(row[2])
		b.ks.sysOcc[q] = int32(row[3])
		b.ks.pendingReq[q] = int32(row[4])
	}

	if err := fr.Expect("tails"); err != nil {
		return nil, err
	}
	if n, err = fr.NeedAttr("queues"); err != nil {
		return nil, err
	}
	for i := int64(0); i < n; i++ {
		if err := fr.Expect("tail"); err != nil {
			return nil, err
		}
		q, err := fr.NeedAttr("q")
		if err != nil {
			return nil, err
		}
		promised, err := fr.NeedAttr("promised")
		if err != nil {
			return nil, err
		}
		cells, err := fr.NeedAttr("n")
		if err != nil {
			return nil, err
		}
		if q < 0 || q >= int64(len(b.tails)) {
			return nil, fmt.Errorf("%w: tail queue %d out of range", frame.ErrFrame, q)
		}
		t := &b.tails[q]
		for j := int64(0); j < cells; j++ {
			row, err := fr.NeedRow(2)
			if err != nil {
				return nil, err
			}
			t.push(cell.Cell{Queue: cell.QueueID(row[0]), Seq: uint64(row[1])})
		}
		if promised < 0 || promised > cells {
			return nil, fmt.Errorf("%w: tail queue %d promises %d of %d cells", frame.ErrFrame, q, promised, cells)
		}
		t.promised = int(promised)
	}

	if err := fr.Expect("comp"); err != nil {
		return nil, err
	}
	if n, err = fr.NeedAttr("buckets"); err != nil {
		return nil, err
	}
	for i := int64(0); i < n; i++ {
		if err := fr.Expect("comp-slot"); err != nil {
			return nil, err
		}
		slot, err := fr.NeedAttr("i")
		if err != nil {
			return nil, err
		}
		cnt, err := fr.NeedAttr("n")
		if err != nil {
			return nil, err
		}
		if slot < 0 || slot >= int64(len(b.compRing)) {
			return nil, fmt.Errorf("%w: completion slot %d out of range", frame.ErrFrame, slot)
		}
		for j := int64(0); j < cnt; j++ {
			row, err := fr.NeedRow(2 + 2*b.cfg.Bsmall)
			if err != nil {
				return nil, err
			}
			blk := b.dram.AcquireBlock()
			for k := range blk {
				blk[k] = cell.Cell{Queue: cell.QueueID(row[2+2*k]), Seq: uint64(row[3+2*k])}
			}
			b.compRing[slot] = append(b.compRing[slot], completion{
				phys: cell.PhysQueueID(row[0]), ordinal: uint64(row[1]), cells: blk,
			})
		}
	}

	switch m := b.mapr.(type) {
	case *identityMapper:
		if err := fr.Expect("ident"); err != nil {
			return nil, err
		}
		if n, err = fr.NeedAttr("entries"); err != nil {
			return nil, err
		}
		for i := int64(0); i < n; i++ {
			row, err := fr.NeedRow(2)
			if err != nil {
				return nil, err
			}
			q := int(row[0])
			if q < 0 || q >= len(m.towardDRAM) {
				return nil, fmt.Errorf("%w: mapper queue %d out of range", frame.ErrFrame, q)
			}
			m.towardDRAM[q] = int(row[1])
		}
	case *renameMapper:
		if err := m.table.Restore(fr); err != nil {
			return nil, err
		}
	}

	if err := b.look.Restore(fr); err != nil {
		return nil, err
	}
	switch h := b.hmma.(type) {
	case *mma.ECQF:
		err = h.Restore(fr)
	case *mma.MDQF:
		err = h.Restore(fr)
	}
	if err != nil {
		return nil, err
	}
	if err := b.tmma.Restore(fr); err != nil {
		return nil, err
	}
	switch s := b.head.(type) {
	case *sram.CAMStore:
		err = s.Restore(fr)
	case *sram.ListStore:
		err = s.Restore(fr)
	}
	if err != nil {
		return nil, err
	}
	if err := b.dram.Restore(fr); err != nil {
		return nil, err
	}
	if err := b.sched.Restore(fr); err != nil {
		return nil, err
	}
	if err := fr.Expect("end"); err != nil {
		return nil, fmt.Errorf("%w: truncated stream: %v", ErrSnapshot, err)
	}
	return b, nil
}

func boolAttr(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// snapshotConfig frames the fully defaulted configuration so restore
// can reject a mismatched target instead of misinterpreting arenas.
func snapshotConfig(w *frame.Writer, c Config) {
	w.Begin("config")
	w.Attr("q", int64(c.Q))
	w.Attr("b", int64(c.B))
	w.Attr("bsmall", int64(c.Bsmall))
	w.Attr("banks", int64(c.Banks))
	w.Attr("lookahead", int64(c.Lookahead))
	w.Attr("latency", int64(c.LatencySlots))
	w.Attr("rrcap", int64(c.RRCapacity))
	w.Attr("issues", int64(c.IssuesPerCycle))
	w.Attr("headcells", int64(c.HeadSRAMCells))
	w.Attr("tailcells", int64(c.TailSRAMCells))
	w.Attr("bankcap", int64(c.BankCapacityBlocks))
	w.Attr("renaming", boolAttr(c.Renaming))
	w.Attr("oversub", int64(c.Oversub))
	w.Attr("regcap", int64(c.RegisterCap))
	w.Attr("org", int64(c.Org))
	w.Attr("mma", int64(c.MMA))
	w.Attr("fifo", boolAttr(c.FIFOScheduler))
}

func restoreConfig(r *frame.Reader) (Config, error) {
	var c Config
	if err := r.Expect("config"); err != nil {
		return c, err
	}
	for _, f := range []struct {
		key string
		set func(int64)
	}{
		{"q", func(v int64) { c.Q = int(v) }},
		{"b", func(v int64) { c.B = int(v) }},
		{"bsmall", func(v int64) { c.Bsmall = int(v) }},
		{"banks", func(v int64) { c.Banks = int(v) }},
		{"lookahead", func(v int64) { c.Lookahead = int(v) }},
		{"latency", func(v int64) { c.LatencySlots = int(v) }},
		{"rrcap", func(v int64) { c.RRCapacity = int(v) }},
		{"issues", func(v int64) { c.IssuesPerCycle = int(v) }},
		{"headcells", func(v int64) { c.HeadSRAMCells = int(v) }},
		{"tailcells", func(v int64) { c.TailSRAMCells = int(v) }},
		{"bankcap", func(v int64) { c.BankCapacityBlocks = int(v) }},
		{"renaming", func(v int64) { c.Renaming = v != 0 }},
		{"oversub", func(v int64) { c.Oversub = int(v) }},
		{"regcap", func(v int64) { c.RegisterCap = int(v) }},
		{"org", func(v int64) { c.Org = SRAMOrg(v) }},
		{"mma", func(v int64) { c.MMA = MMAKind(v) }},
		{"fifo", func(v int64) { c.FIFOScheduler = v != 0 }},
	} {
		v, err := r.NeedAttr(f.key)
		if err != nil {
			return c, err
		}
		f.set(v)
	}
	return c, nil
}
