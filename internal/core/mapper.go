package core

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/dram"
	"repro/internal/rename"
)

// mapper abstracts the logical→physical queue translation so the same
// buffer datapath runs with renaming enabled (§6) or with the static
// identity assignment of §5.1.
type mapper interface {
	// PeekWriteTarget reports whether a block of q could be written
	// now, without mutating state (the t-MMA's eligibility check).
	PeekWriteTarget(q cell.QueueID) (cell.PhysQueueID, error)
	// WriteTarget returns the physical queue the next block of q must
	// be written to, allocating names as needed.
	WriteTarget(q cell.QueueID) (cell.PhysQueueID, error)
	// NoteWrite credits one staged block to q's mapping.
	NoteWrite(q cell.QueueID, p cell.PhysQueueID) error
	// ConsumeForRequest translates one scheduler request. ok=false
	// means the cell never entered the DRAM path (bypass).
	ConsumeForRequest(q cell.QueueID) (p cell.PhysQueueID, ok bool)
}

// identityMapper is the §5.1 static assignment: physical name = q, so
// the queue's group is q mod G forever.
type identityMapper struct {
	dram *dram.DRAM
	// towardDRAM counts cells written toward DRAM minus cells
	// requested, per queue — the single-entry degenerate form of the
	// renaming counter. Dense arena indexed by the queue ordinal.
	towardDRAM []int
}

func newIdentityMapper(d *dram.DRAM, queues int) *identityMapper {
	return &identityMapper{dram: d, towardDRAM: make([]int, queues)}
}

func (m *identityMapper) PeekWriteTarget(q cell.QueueID) (cell.PhysQueueID, error) {
	p := cell.PhysQueueID(q)
	if !m.dram.CanWrite(p) {
		return cell.NoPhysQueue, fmt.Errorf("core: group %d full for queue %d", m.dram.Group(p), q)
	}
	return p, nil
}

func (m *identityMapper) WriteTarget(q cell.QueueID) (cell.PhysQueueID, error) {
	return m.PeekWriteTarget(q)
}

func (m *identityMapper) NoteWrite(q cell.QueueID, _ cell.PhysQueueID) error {
	m.towardDRAM[q] += m.dram.Config().BlockCells
	return nil
}

func (m *identityMapper) ConsumeForRequest(q cell.QueueID) (cell.PhysQueueID, bool) {
	if q < 0 || int(q) >= len(m.towardDRAM) || m.towardDRAM[q] <= 0 {
		return cell.NoPhysQueue, false
	}
	m.towardDRAM[q]--
	return cell.PhysQueueID(q), true
}

// renameMapper adapts rename.Table to the mapper interface, feeding it
// the DRAM's capacity and occupancy views.
type renameMapper struct {
	table *rename.Table
	dram  *dram.DRAM
}

func (m *renameMapper) groupOK(g int) bool {
	if m.dram.Config().BankCapacityBlocks == 0 {
		return true
	}
	return m.dram.GroupOccupancy(g) < m.dram.GroupCapacityBlocks()
}

func (m *renameMapper) PeekWriteTarget(q cell.QueueID) (cell.PhysQueueID, error) {
	// Cheap feasibility probe: either the tail entry's group has room,
	// or some group has both room and a free name.
	if p, ok := m.table.ReadTargetTail(q); ok && m.groupOK(int(p)%m.table.Groups()) {
		return p, nil
	}
	for g := 0; g < m.table.Groups(); g++ {
		if m.table.FreeNames(g) > 0 && m.groupOK(g) {
			if m.table.Entries(q) >= m.table.RegisterCap() && m.table.Entries(q) > 0 {
				break
			}
			return cell.NoPhysQueue, nil // allocation would succeed
		}
	}
	return cell.NoPhysQueue, rename.ErrNoFreeNames
}

func (m *renameMapper) WriteTarget(q cell.QueueID) (cell.PhysQueueID, error) {
	return m.table.WriteTarget(q, m.groupOK, m.dram.GroupOccupancy)
}

func (m *renameMapper) NoteWrite(q cell.QueueID, p cell.PhysQueueID) error {
	return m.table.NoteWrite(q, p)
}

func (m *renameMapper) ConsumeForRequest(q cell.QueueID) (cell.PhysQueueID, bool) {
	p, err := m.table.ConsumeCell(q)
	if err != nil {
		return cell.NoPhysQueue, false
	}
	return p, true
}
