package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cell"
)

// These tests deliberately undersize one structure at a time and
// verify that the corresponding invariant error fires — evidence that
// the zero-miss results elsewhere are real checks, not dead code.

// runUntilError drives an adversarial full-load pattern until the
// buffer errors or the slot budget runs out.
func runUntilError(b *Buffer, queues, slots int) error {
	for i := 0; i < slots; i++ {
		in := TickInput{Arrival: cell.QueueID(i % queues), Request: cell.NoQueue}
		q := cell.QueueID(i % queues)
		if b.Requestable(q) > 0 {
			in.Request = q
		}
		if _, err := b.Tick(in); err != nil {
			return err
		}
	}
	return nil
}

func TestUndersizedHeadSRAMTripsInvariant(t *testing.T) {
	cfg, err := (Config{Q: 4, B: 8, Bsmall: 2, Banks: 16}).ApplyDefaults()
	if err != nil {
		t.Fatal(err)
	}
	cfg.HeadSRAMCells = cfg.Bsmall * 2 // absurdly small
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Backlog every queue deep into DRAM first so deliveries must flow
	// through the head SRAM rather than the bypass.
	for i := 0; i < 400; i++ {
		if _, err := b.Tick(TickInput{Arrival: cell.QueueID(i % 4), Request: cell.NoQueue}); err != nil {
			t.Fatal(err)
		}
	}
	err = runUntilError(b, 4, 50000)
	if err == nil {
		t.Fatal("undersized head SRAM survived the adversary")
	}
	// Either a miss (replenishment could not be stored) or an explicit
	// head-SRAM overflow is acceptable; both are invariant errors.
	if !errors.Is(err, ErrMiss) && b.Stats().HeadOverflows == 0 {
		t.Fatalf("unexpected error class: %v", err)
	}
}

func TestUndersizedTailSRAMTripsInvariant(t *testing.T) {
	cfg, err := (Config{Q: 4, B: 8, Bsmall: 8, Banks: 16}).ApplyDefaults()
	if err != nil {
		t.Fatal(err)
	}
	cfg.TailSRAMCells = cfg.Bsmall // one block only
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = runUntilError(b, 4, 5000)
	if !errors.Is(err, ErrTailOverflow) {
		t.Fatalf("err = %v, want ErrTailOverflow", err)
	}
}

func TestUndersizedLatencyRegisterTripsMiss(t *testing.T) {
	// A latency register far below equation (3) gives the DSS no time
	// to complete reordered transfers: requests reach the pipeline
	// exit before their cells reach the SRAM.
	cfg, err := (Config{Q: 8, B: 8, Bsmall: 2, Banks: 16}).ApplyDefaults()
	if err != nil {
		t.Fatal(err)
	}
	cfg.LatencySlots = 1
	cfg.Lookahead = 2 // also strangle the MMA's foresight
	cfg.HeadSRAMCells = 0
	cfg.TailSRAMCells = 0
	cfg, err = cfg.ApplyDefaults()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var got error
	for i := 0; i < 50000 && got == nil; i++ {
		in := TickInput{Arrival: cell.QueueID(rng.Intn(8)), Request: cell.NoQueue}
		q := cell.QueueID(rng.Intn(8))
		if b.Requestable(q) > 0 {
			in.Request = q
		}
		_, got = b.Tick(in)
	}
	if !errors.Is(got, ErrMiss) {
		t.Fatalf("err = %v, want ErrMiss", got)
	}
	if b.Stats().Misses == 0 {
		t.Error("miss not counted")
	}
}

func TestTinyRRBackpressuresWithoutCorruption(t *testing.T) {
	// An undersized Requests Register must not corrupt traffic — the
	// MMAs stall (recorded) and the buffer stays correct, only slower.
	cfg, err := (Config{Q: 4, B: 8, Bsmall: 2, Banks: 16}).ApplyDefaults()
	if err != nil {
		t.Fatal(err)
	}
	cfg.RRCapacity = 2
	// Recompute dependent sizes for the altered RR.
	cfg.LatencySlots = 0
	cfg.HeadSRAMCells = 0
	cfg.TailSRAMCells = 0
	cfg, err = cfg.ApplyDefaults()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := runUntilError(b, 4, 30000); err != nil {
		t.Fatalf("tiny RR corrupted traffic: %v", err)
	}
	st := b.Stats()
	if !st.Clean() {
		t.Fatalf("not clean: %v", st)
	}
	if st.DSS.MaxOccupancy > 2 {
		t.Errorf("RR occupancy %d exceeded capacity 2", st.DSS.MaxOccupancy)
	}
}

func TestShortLookaheadStillZeroMiss(t *testing.T) {
	// [13]'s trade-off: a short lookahead is legal as long as the SRAM
	// grows per rads_sram_size. The defaults must keep the guarantee.
	cfg := Config{Q: 8, B: 8, Bsmall: 2, Banks: 16, Lookahead: 4}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := runUntilError(b, 8, 40000); err != nil {
		t.Fatalf("short-lookahead run failed: %v", err)
	}
	if !b.Stats().Clean() {
		t.Fatalf("stats: %v", b.Stats())
	}
}

func TestRenamingRandomTrafficClean(t *testing.T) {
	// Renaming under mixed random traffic with a bounded DRAM: no
	// invariant may break; drops are allowed only via ErrBufferFull.
	cfg := Config{
		Q: 8, B: 8, Bsmall: 2, Banks: 16,
		BankCapacityBlocks: 8, Renaming: true,
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60000; i++ {
		in := TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
		if rng.Intn(10) < 9 {
			in.Arrival = cell.QueueID(rng.Intn(8))
		}
		q := cell.QueueID(rng.Intn(8))
		if rng.Intn(10) < 8 && b.Requestable(q) > 0 {
			in.Request = q
		}
		if _, err := b.Tick(in); err != nil && !errors.Is(err, ErrBufferFull) {
			t.Fatalf("slot %d: %v\nstats %v", i, err, b.Stats())
		}
	}
	st := b.Stats()
	if st.Misses != 0 || st.BadRequests != 0 || st.HeadOverflows != 0 {
		t.Fatalf("invariants broken: %v", st)
	}
}

func TestMDQFWithProperSizing(t *testing.T) {
	// MDQF has no lookahead, so it needs the larger [13] bound; give
	// it a directly oversized head SRAM and verify it stays clean on
	// the adversary.
	cfg, err := (Config{Q: 4, B: 8, Bsmall: 2, Banks: 16, MMA: MDQF}).ApplyDefaults()
	if err != nil {
		t.Fatal(err)
	}
	cfg.HeadSRAMCells *= 4
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := runUntilError(b, 4, 40000); err != nil {
		t.Fatalf("MDQF run failed: %v", err)
	}
}
