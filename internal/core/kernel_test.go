package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cell"
)

// denseStimulus drives buf slot-by-slot with a seeded full-load
// workload (an arrival almost every slot, a round-robin drain against
// the live view) and records every TickInput plus the delivery
// outcome. Unlike phasedStimulus it emits no fully idle slot, so a
// replay exercises the fused kernel on maximal busy spans with no
// fast-forward interference.
func denseStimulus(t *testing.T, buf *Buffer, rng *rand.Rand, slots int) ([]TickInput, []slotOutcome) {
	t.Helper()
	ins := make([]TickInput, 0, slots)
	outs := make([]slotOutcome, 0, slots)
	queues := buf.Config().Q
	rrNext := 0
	for len(ins) < slots {
		in := TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
		if rng.Float64() < 0.9 {
			in.Arrival = cell.QueueID(rng.Intn(queues))
		}
		if rng.Float64() < 0.85 {
			for i := 0; i < queues; i++ {
				q := cell.QueueID((rrNext + i) % queues)
				if buf.Requestable(q) > 0 {
					in.Request = q
					rrNext = (int(q) + 1) % queues
					break
				}
			}
		}
		if in.Arrival == cell.NoQueue && in.Request == cell.NoQueue {
			// Keep the stimulus dense: an all-idle slot would open a
			// fast-forward window and this suite pins the kernel alone.
			in.Arrival = cell.QueueID(rng.Intn(queues))
		}
		out, err := buf.Tick(in)
		if err != nil {
			t.Fatalf("reference tick slot %d: %v", len(ins), err)
		}
		oc := slotOutcome{}
		if out.Delivered != nil {
			oc = slotOutcome{ok: true, bypassed: out.Bypassed, cell: *out.Delivered}
		}
		ins = append(ins, in)
		outs = append(outs, oc)
	}
	return ins, outs
}

// replayBatches replays ins through buf.TickBatch in chunks of
// batchLen and asserts outcome-for-outcome equality with want.
func replayBatches(t *testing.T, buf *Buffer, ins []TickInput, want []slotOutcome, batchLen int) {
	t.Helper()
	out := make([]TickOutput, batchLen)
	pos := 0
	for pos < len(ins) {
		n := batchLen
		if left := len(ins) - pos; left < n {
			n = left
		}
		m, err := buf.TickBatch(ins[pos:pos+n], out[:n])
		if err != nil {
			t.Fatalf("fused batch at slot %d: %v", pos+m-1, err)
		}
		for i := 0; i < m; i++ {
			w := want[pos+i]
			g := slotOutcome{}
			if out[i].Delivered != nil {
				g = slotOutcome{ok: true, bypassed: out[i].Bypassed, cell: *out[i].Delivered}
			}
			if g != w {
				t.Fatalf("slot %d: fused %+v, reference %+v", pos+i, g, w)
			}
		}
		pos += m
	}
}

// TestKernelDifferential pins the tentpole equivalence on dense spans:
// replaying a recorded full-load workload through the fused
// structure-of-arrays kernel must be bit-identical to the
// slot-at-a-time reference — same deliveries in the same slots, same
// final statistics, same clock — across ECQF/MDQF × b ×
// bounded/unbounded DRAM × renaming and across batch lengths that do
// and do not divide the b-slot MMA cycle or the completion ring.
func TestKernelDifferential(t *testing.T) {
	for ci, cfg := range ffConfigs() {
		cfg := cfg
		name := fmt.Sprintf("%s/b=%d/cap=%d/ren=%v", cfg.MMA, cfg.Bsmall, cfg.BankCapacityBlocks, cfg.Renaming)
		t.Run(name, func(t *testing.T) {
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(94017 + ci)))
			ins, want := denseStimulus(t, ref, rng, 20000)

			for _, batchLen := range []int{1, 7, 256, 20000} {
				fused, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				replayBatches(t, fused, ins, want, batchLen)
				if got, wantS := fused.Stats(), ref.Stats(); got != wantS {
					t.Errorf("batchLen %d: stats diverge:\nfused %+v\nref   %+v", batchLen, got, wantS)
				}
				if fused.Now() != ref.Now() {
					t.Errorf("batchLen %d: clock diverges: fused %d, ref %d", batchLen, fused.Now(), ref.Now())
				}
			}
		})
	}
}

// TestKernelErrorParity pins the kernel's error semantics against the
// reference: an invalid request mid-batch must surface the same
// sentinel after the same number of slots, the offending slot must
// still complete, and the two buffers must remain bit-identical
// afterwards.
func TestKernelErrorParity(t *testing.T) {
	cfg := Config{Q: 8, B: 8, Bsmall: 4, Banks: 16}
	mk := func() *Buffer {
		buf, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	ref, fused := mk(), mk()

	// A batch whose third slot requests an empty queue.
	ins := []TickInput{
		{Arrival: 0, Request: cell.NoQueue},
		{Arrival: 1, Request: cell.NoQueue},
		{Arrival: 2, Request: 7},
		{Arrival: 3, Request: cell.NoQueue},
	}
	var refErr error
	refSlots := 0
	for _, in := range ins {
		if _, err := ref.Tick(in); err != nil {
			refErr = err
			refSlots++
			break
		}
		refSlots++
	}
	out := make([]TickOutput, len(ins))
	n, err := fused.TickBatch(ins, out)
	if (err == nil) != (refErr == nil) || n != refSlots {
		t.Fatalf("fused stopped after %d slots (err %v); reference after %d (err %v)", n, err, refSlots, refErr)
	}
	if got, want := fused.Stats(), ref.Stats(); got != want {
		t.Errorf("stats diverge after error:\nfused %+v\nref   %+v", got, want)
	}
	if fused.Now() != ref.Now() {
		t.Errorf("clock diverges after error: fused %d, ref %d", fused.Now(), ref.Now())
	}

	// Both continue identically after the error.
	rest := []TickInput{{Arrival: 4, Request: 0}, {Arrival: 5, Request: 1}}
	for _, in := range rest {
		if _, err := ref.Tick(in); err != nil {
			t.Fatalf("reference resume: %v", err)
		}
	}
	if _, err := fused.TickBatch(rest, out[:len(rest)]); err != nil {
		t.Fatalf("fused resume: %v", err)
	}
	if got, want := fused.Stats(), ref.Stats(); got != want {
		t.Errorf("stats diverge after resume:\nfused %+v\nref   %+v", got, want)
	}
}

// TestTickBatchBoundaries pins the TickBatch edge cases the fused
// dispatch must preserve: zero-length and single-slot batches, a batch
// straddling a quiescent→busy transition (the idle prefix
// fast-forwards, the busy suffix runs through the kernel), and batches
// whose spans end mid-renaming — all bit-identical to slot-at-a-time
// ticks.
func TestTickBatchBoundaries(t *testing.T) {
	t.Run("zero-length", func(t *testing.T) {
		buf, err := New(Config{Q: 4, B: 8, Bsmall: 4, Banks: 16})
		if err != nil {
			t.Fatal(err)
		}
		n, err := buf.TickBatch(nil, nil)
		if n != 0 || err != nil {
			t.Fatalf("TickBatch(nil) = %d, %v", n, err)
		}
		if buf.Now() != 0 {
			t.Fatalf("zero-length batch moved the clock to %d", buf.Now())
		}
	})

	t.Run("length-1", func(t *testing.T) {
		cfg := Config{Q: 4, B: 8, Bsmall: 2, Banks: 16}
		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]TickOutput, 1)
		for i := 0; i < 4*cfg.Q*cfg.Bsmall; i++ {
			in := TickInput{Arrival: cell.QueueID(i % cfg.Q), Request: cell.NoQueue}
			if i%2 == 1 {
				in.Request = cell.QueueID((i / 2) % cfg.Q)
			}
			wantOut, wantErr := ref.Tick(in)
			n, gotErr := fused.TickBatch([]TickInput{in}, out)
			if n != 1 || (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("slot %d: batch n=%d err=%v, reference err=%v", i, n, gotErr, wantErr)
			}
			switch {
			case (wantOut.Delivered == nil) != (out[0].Delivered == nil):
				t.Fatalf("slot %d: delivery presence diverges", i)
			case wantOut.Delivered != nil && (*wantOut.Delivered != *out[0].Delivered || wantOut.Bypassed != out[0].Bypassed):
				t.Fatalf("slot %d: delivered cell diverges", i)
			}
		}
		if got, want := fused.Stats(), ref.Stats(); got != want {
			t.Errorf("stats diverge:\nfused %+v\nref   %+v", got, want)
		}
	})

	t.Run("quiescent-to-busy-straddle", func(t *testing.T) {
		cfg := Config{Q: 4, B: 8, Bsmall: 4, Banks: 16, Lookahead: 2, LatencySlots: 2}
		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// One batch: idle span long past quiescence, then a busy tail.
		var ins []TickInput
		for i := 0; i < 64; i++ {
			ins = append(ins, TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue})
		}
		for i := 0; i < 40; i++ {
			in := TickInput{Arrival: cell.QueueID(i % cfg.Q), Request: cell.NoQueue}
			if i >= 8 {
				in.Request = cell.QueueID((i - 8) % cfg.Q)
			}
			ins = append(ins, in)
		}
		want := make([]slotOutcome, len(ins))
		for i, in := range ins {
			out, err := ref.Tick(in)
			if err != nil {
				t.Fatalf("reference slot %d: %v", i, err)
			}
			if out.Delivered != nil {
				want[i] = slotOutcome{ok: true, bypassed: out.Bypassed, cell: *out.Delivered}
			}
		}
		replayBatches(t, fused, ins, want, len(ins))
		if fused.Stats().FastForwardedSlots == 0 {
			t.Error("straddling batch never fast-forwarded its idle prefix")
		}
		if got, wantS := normalizeFF(fused.Stats()), normalizeFF(ref.Stats()); got != wantS {
			t.Errorf("stats diverge:\nfused %+v\nref   %+v", got, wantS)
		}
		if fused.Now() != ref.Now() {
			t.Errorf("clock diverges: fused %d, ref %d", fused.Now(), ref.Now())
		}
	})

	t.Run("batch-ends-mid-renaming", func(t *testing.T) {
		// Renaming config under sustained load; batch boundaries are
		// deliberately coprime to the b-slot cycle so batches end with
		// renamed blocks and replenishments in flight.
		cfg := Config{Q: 8, B: 8, Bsmall: 4, Banks: 16, Renaming: true, BankCapacityBlocks: 64}
		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(424242))
		ins, want := denseStimulus(t, ref, rng, 5000)
		for _, batchLen := range []int{3, 5, 7, 11, 13} {
			fused, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			replayBatches(t, fused, ins, want, batchLen)
			if got, wantS := fused.Stats(), ref.Stats(); got != wantS {
				t.Errorf("batchLen %d: stats diverge:\nfused %+v\nref   %+v", batchLen, got, wantS)
			}
		}
	})
}
