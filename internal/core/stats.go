package core

import (
	"fmt"

	"repro/internal/dss"
)

// Stats aggregates everything the paper's guarantees quantify over.
// A correctly dimensioned buffer finishes any run with Misses,
// HeadOverflows, Drops and BadRequests all zero; the DSS sub-stats
// must respect equations (1)–(3).
type Stats struct {
	// Arrivals, Requests and Deliveries count cells through the three
	// external interfaces.
	Arrivals, Requests, Deliveries uint64
	// Bypasses counts deliveries served by the tail-SRAM cut-through.
	Bypasses uint64
	// Misses counts zero-miss violations (must stay 0).
	Misses uint64
	// Drops counts rejected arrivals.
	Drops uint64
	// BadRequests counts arbiter requests for empty queues.
	BadRequests uint64
	// HeadOverflows counts head-SRAM insert failures (must stay 0).
	HeadOverflows uint64
	// TailStalls / HeadStalls count MMA cycles skipped because the
	// Requests Register or DRAM capacity pushed back.
	TailStalls, HeadStalls uint64
	// TailHighWater / HeadHighWater are SRAM occupancy maxima in
	// cells, for validating the dimensioning formulas.
	TailHighWater, HeadHighWater int
	// FastForwardedSlots counts slots skipped in O(1) by FastForward
	// (and the fused TickBatch idle path) instead of being ticked.
	// It is the only counter dense slot-by-slot ticking leaves zero:
	// equivalence comparisons exclude it by definition.
	FastForwardedSlots uint64
	// DSS carries the scheduler's own counters.
	DSS dss.Stats
}

// Clean reports whether the run upheld every worst-case guarantee.
func (s Stats) Clean() bool {
	return s.Misses == 0 && s.HeadOverflows == 0 && s.Drops == 0 && s.BadRequests == 0
}

// String implements fmt.Stringer with a compact one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"arrivals=%d requests=%d deliveries=%d bypasses=%d misses=%d drops=%d "+
			"headHW=%d tailHW=%d rrMaxOcc=%d rrMaxSkips=%d rrMaxDelay=%d",
		s.Arrivals, s.Requests, s.Deliveries, s.Bypasses, s.Misses, s.Drops,
		s.HeadHighWater, s.TailHighWater,
		s.DSS.MaxOccupancy, s.DSS.MaxSkips, s.DSS.MaxDelaySlots)
}
