package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestSnapshotDifferential pins the crash-safety tentpole: interrupting
// a run at an arbitrary slot — any phase of the b-slot MMA cycle, with
// transfers in flight through the completion calendar and the Requests
// Register — by Snapshot+RestoreBuffer must be invisible. The restored
// buffer replays the remaining stimulus with identical deliveries,
// identical final statistics and an identical clock, across ECQF/MDQF
// × b × bounded/unbounded DRAM × renaming; and a snapshot of the
// restored buffer is byte-identical to the original snapshot.
func TestSnapshotDifferential(t *testing.T) {
	for ci, cfg := range ffConfigs() {
		cfg := cfg
		name := fmt.Sprintf("%s/b=%d/cap=%d/ren=%v", cfg.MMA, cfg.Bsmall, cfg.BankCapacityBlocks, cfg.Renaming)
		t.Run(name, func(t *testing.T) {
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(70117 + ci)))
			ins, want := denseStimulus(t, ref, rng, 3000)

			// Cut at the start, the end, and one full MMA cycle of
			// consecutive mid-run slots so every phase of the b-slot
			// cycle is a snapshot point.
			cuts := []int{0, len(ins) / 2, len(ins)}
			for ph := 0; ph < cfg.Bsmall; ph++ {
				cuts = append(cuts, 1001+ph)
			}
			for _, cut := range cuts {
				live, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < cut; i++ {
					if _, err := live.Tick(ins[i]); err != nil {
						t.Fatalf("cut %d: live tick %d: %v", cut, i, err)
					}
				}
				var snap bytes.Buffer
				if err := live.Snapshot(&snap); err != nil {
					t.Fatalf("cut %d: snapshot: %v", cut, err)
				}
				restored, err := RestoreBuffer(bytes.NewReader(snap.Bytes()), cfg)
				if err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				var again bytes.Buffer
				if err := restored.Snapshot(&again); err != nil {
					t.Fatalf("cut %d: re-snapshot: %v", cut, err)
				}
				if !bytes.Equal(snap.Bytes(), again.Bytes()) {
					t.Fatalf("cut %d: snapshot of restored buffer is not byte-identical", cut)
				}
				if got, wantS := restored.Stats(), live.Stats(); got != wantS {
					t.Fatalf("cut %d: stats diverge at restore:\nrestored %+v\nlive     %+v", cut, got, wantS)
				}
				for i := cut; i < len(ins); i++ {
					out, err := restored.Tick(ins[i])
					if err != nil {
						t.Fatalf("cut %d: restored tick %d: %v", cut, i, err)
					}
					got := slotOutcome{}
					if out.Delivered != nil {
						got = slotOutcome{ok: true, bypassed: out.Bypassed, cell: *out.Delivered}
					}
					if got != want[i] {
						t.Fatalf("cut %d: slot %d: restored %+v, reference %+v", cut, i, got, want[i])
					}
				}
				if got, wantS := restored.Stats(), ref.Stats(); got != wantS {
					t.Errorf("cut %d: final stats diverge:\nrestored %+v\nref      %+v", cut, got, wantS)
				}
				if restored.Now() != ref.Now() {
					t.Errorf("cut %d: clock diverges: restored %d, ref %d", cut, restored.Now(), ref.Now())
				}
			}
		})
	}
}

// TestSnapshotRestoreThenBatch pins that a restored buffer feeds the
// fused batch kernel identically: the devirtualization cache is
// rebuilt lazily, not restored, so the first TickBatch after a restore
// is the interesting one.
func TestSnapshotRestoreThenBatch(t *testing.T) {
	cfg := Config{Q: 8, B: 8, Bsmall: 4, Banks: 16, Renaming: true, BankCapacityBlocks: 64}
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51109))
	ins, want := denseStimulus(t, ref, rng, 4000)

	cut := len(ins) / 2
	live, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cut; i++ {
		if _, err := live.Tick(ins[i]); err != nil {
			t.Fatalf("live tick %d: %v", i, err)
		}
	}
	var snap bytes.Buffer
	if err := live.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreBuffer(&snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayBatches(t, restored, ins[cut:], want[cut:], 23)
	if got, wantS := restored.Stats(), ref.Stats(); got != wantS {
		t.Errorf("final stats diverge:\nrestored %+v\nref      %+v", got, wantS)
	}
}

// TestSnapshotVersionRejected pins the version gate: a future layout
// surfaces ErrSnapshotVersion, not a misparse.
func TestSnapshotVersionRejected(t *testing.T) {
	_, err := RestoreBuffer(strings.NewReader("!snapshot version=99\n"), Config{Q: 4, B: 8, Banks: 16})
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("RestoreBuffer = %v, want ErrSnapshotVersion", err)
	}
}

// TestSnapshotConfigMismatch pins that restoring into a differently
// dimensioned buffer is rejected outright.
func TestSnapshotConfigMismatch(t *testing.T) {
	buf, err := New(Config{Q: 4, B: 8, Banks: 16})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := buf.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	_, err = RestoreBuffer(&snap, Config{Q: 8, B: 8, Banks: 16})
	if !errors.Is(err, ErrSnapshot) {
		t.Fatalf("RestoreBuffer = %v, want ErrSnapshot", err)
	}
}

// TestSnapshotTruncated pins that a stream cut short fails loudly.
func TestSnapshotTruncated(t *testing.T) {
	cfg := Config{Q: 8, B: 8, Bsmall: 4, Banks: 16}
	buf, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ins, _ := denseStimulus(t, buf, rng, 500)
	_ = ins
	var snap bytes.Buffer
	if err := buf.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	cutoff := snap.Len() / 2
	if _, err := RestoreBuffer(bytes.NewReader(snap.Bytes()[:cutoff]), cfg); err == nil {
		t.Fatal("restore of a truncated snapshot succeeded")
	}
}
