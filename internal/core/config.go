// Package core composes the substrates — DRAM banks, shared SRAM
// stores, MMAs, the DRAM Scheduler Subsystem and queue renaming —
// into the complete packet buffer of the paper: the CFDS architecture
// of Figure 5, with the RADS baseline of Figure 2/3 as the b = B
// degenerate configuration.
//
// The buffer is a slot-accurate simulator: the caller drives one Tick
// per time slot, presenting at most one arriving cell and one
// scheduler request, and receives at most one delivered cell. All the
// paper's worst-case claims are checked as runtime invariants: a head
// SRAM miss, a DRAM bank conflict, an overflowing Requests Register or
// SRAM all surface as errors, so tests can assert they never occur.
package core

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/dimension"
)

// SRAMOrg selects the shared-SRAM organization (§7.1).
type SRAMOrg int

// Organizations.
const (
	// OrgCAM is the global content-addressable memory (shortest
	// access time).
	OrgCAM SRAMOrg = iota
	// OrgLinkedList is the unified linked list, time-multiplexed
	// (smallest area).
	OrgLinkedList
)

// String implements fmt.Stringer.
func (o SRAMOrg) String() string {
	if o == OrgCAM {
		return "global-cam"
	}
	return "unified-linked-list"
}

// MMAKind selects the head Memory Management Algorithm.
type MMAKind int

// Algorithms.
const (
	// ECQF is Earliest Critical Queue First (the paper's h-MMA).
	ECQF MMAKind = iota
	// MDQF is the lookahead-free Most Deficit Queue First baseline.
	MDQF
)

// String implements fmt.Stringer.
func (m MMAKind) String() string {
	if m == ECQF {
		return "ecqf"
	}
	return "mdqf"
}

// Config fully describes a packet buffer instance. Zero values are
// filled by ApplyDefaults; FromDimension builds a paper-faithful
// configuration from the Table 1 parameters.
type Config struct {
	// Q is the number of logical Virtual Output Queues.
	Q int
	// B is the RADS granularity: 2·T_RC in slots (one write plus one
	// read access per B-slot window; see cell.LineRate.Granularity).
	B int
	// Bsmall is the CFDS granularity b; set equal to B for RADS.
	Bsmall int
	// Banks is M, the number of DRAM banks.
	Banks int
	// Lookahead is the MMA lookahead L in slots. Defaults to the ECQF
	// full lookahead Q(b−1)+1.
	Lookahead int
	// LatencySlots is the latency shift register Λ. Defaults to the
	// budget-aware equation (3).
	LatencySlots int
	// RRCapacity is the Requests Register size. Defaults to
	// equation (1), floored at 2·IssuesPerCycle so the degenerate
	// RADS case can stage one read and one write.
	RRCapacity int
	// IssuesPerCycle is the DSA issue budget β per b-slot cycle.
	// Defaults to 2 (one read plus one write sustains the 2× line-rate
	// buffer bandwidth).
	IssuesPerCycle int
	// HeadSRAMCells is the h-SRAM capacity. Defaults to equation (4)
	// plus the in-flight slack absorbed by the latency register.
	HeadSRAMCells int
	// TailSRAMCells is the t-SRAM capacity. Defaults per §3 plus the
	// staging slack.
	TailSRAMCells int
	// BankCapacityBlocks bounds each bank's storage (0 = unbounded).
	BankCapacityBlocks int
	// Renaming enables the §6 logical→physical queue renaming. When
	// disabled queues map to physical names identically (q mod G fixes
	// the group, as in §5.1).
	Renaming bool
	// Oversub is the renaming oversubscription factor A: the physical
	// name space is A·Q. Defaults to 2.
	Oversub int
	// RegisterCap bounds each circular renaming register. Defaults to
	// the number of groups (a queue can span every group).
	RegisterCap int
	// Org selects the shared SRAM organization.
	Org SRAMOrg
	// MMA selects the head MMA.
	MMA MMAKind
	// FIFOScheduler replaces the DSA's oldest-ready-first selection
	// with head-of-line blocking — the ablation showing why §5.3's
	// issue-queue reordering is necessary. WARNING: this deliberately
	// forfeits the worst-case guarantees; conflicting streams stall
	// the Requests Register and misses become possible.
	FIFOScheduler bool
}

// Dimension converts the buffer configuration to the analytic
// parameter set of internal/dimension.
func (c Config) Dimension() dimension.Config {
	q := c.Q
	if c.Renaming {
		// Dimensioning follows the physical name space (§6: "Q is used
		// instead", with P = A·Q).
		q = c.Q * c.oversub()
	}
	return dimension.Config{Q: q, B: c.B, Bsmall: c.Bsmall, M: c.Banks, Lookahead: c.Lookahead}
}

func (c Config) oversub() int {
	if c.Oversub <= 0 {
		return 2
	}
	return c.Oversub
}

// ApplyDefaults fills derived parameters from the dimensioning
// formulas and validates the result.
func (c Config) ApplyDefaults() (Config, error) {
	if c.Bsmall == 0 {
		c.Bsmall = c.B
	}
	if c.IssuesPerCycle <= 0 {
		c.IssuesPerCycle = 2
	}
	if c.Lookahead <= 0 {
		c.Lookahead = dimension.FullLookahead(c.Q, c.Bsmall)
	}
	if c.Renaming {
		c.Oversub = c.oversub()
	}
	d := c.Dimension()
	if err := d.Validate(); err != nil {
		return c, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if c.RRCapacity <= 0 {
		c.RRCapacity = d.RRSize()
		if min := 2 * c.IssuesPerCycle; c.RRCapacity < min {
			c.RRCapacity = min
		}
	}
	if c.LatencySlots <= 0 {
		// Budget-aware equation (3), recomputed with the actual RR
		// capacity (which may exceed the analytic size in the RADS
		// floor case).
		lam := (c.RRCapacity-1)*c.Bsmall + c.IssuesPerCycle*d.MaxSkips()*c.Bsmall + c.B
		c.LatencySlots = lam
	}
	if c.HeadSRAMCells <= 0 {
		// Equation (4) plus engineering slack the analytic bound does
		// not cover: cells resident while their requests traverse the
		// latency register (one block per DSA cycle of Λ), blocks that
		// land together in one slot (β per cycle), and one access
		// window of burst arrival.
		c.HeadSRAMCells = d.HeadSRAMSize() +
			(c.LatencySlots/c.Bsmall+1)*c.Bsmall +
			c.IssuesPerCycle*c.Bsmall + c.B
	}
	if c.TailSRAMCells <= 0 {
		// §3's Q(b−1)+1 bound (inside d.TailSRAMSize) assumes the
		// t-MMA acts the instant a queue reaches b cells; our MMA runs
		// once per b slots, so up to B more cells arrive in between.
		// Staged blocks also occupy the SRAM while their write request
		// sits in the (possibly floored-up) Requests Register, and a
		// cell promised to the cut-through bypass stays resident for a
		// full request pipeline (one per slot at most).
		c.TailSRAMCells = d.TailSRAMSize() + c.B +
			c.RRCapacity*c.Bsmall +
			c.Lookahead + c.LatencySlots
	}
	if c.Renaming && c.RegisterCap <= 0 {
		c.RegisterCap = d.Groups()
	}
	if err := c.validate(); err != nil {
		return c, err
	}
	return c, nil
}

func (c Config) validate() error {
	switch {
	case c.Q <= 0:
		return fmt.Errorf("%w: Q must be positive, got %d", ErrBadConfig, c.Q)
	case c.B < 2 || c.B%2 != 0:
		return fmt.Errorf("%w: B must be an even granularity ≥ 2 (one write + one read per window), got %d", ErrBadConfig, c.B)
	case c.HeadSRAMCells < c.Bsmall:
		return fmt.Errorf("%w: head SRAM (%d cells) smaller than one block (%d)", ErrBadConfig, c.HeadSRAMCells, c.Bsmall)
	case c.TailSRAMCells < c.Bsmall:
		return fmt.Errorf("%w: tail SRAM (%d cells) smaller than one block (%d)", ErrBadConfig, c.TailSRAMCells, c.Bsmall)
	case c.Renaming && c.Oversub < 1:
		return fmt.Errorf("%w: oversubscription must be ≥ 1, got %d", ErrBadConfig, c.Oversub)
	}
	return nil
}

// FromLineRate returns a defaulted configuration for a line rate using
// the paper's assumptions: 48 ns DRAM access, M banks, granularity b.
func FromLineRate(rate cell.LineRate, q, b, banks int, renaming bool) (Config, error) {
	cfg := Config{
		Q:        q,
		B:        rate.Granularity(cell.DefaultDRAMAccessNS),
		Bsmall:   b,
		Banks:    banks,
		Renaming: renaming,
	}
	return cfg.ApplyDefaults()
}

// accessSlots returns the bank random access time T_RC in slots: B/2
// under the B = 2·T_RC convention (§2: buffer bandwidth is twice the
// line rate, so each B-slot window fits one write and one read).
func (c Config) accessSlots() int {
	a := c.B / 2
	if a < 1 {
		a = 1
	}
	return a
}
