package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cell"
)

// ffConfigs is the differential matrix the fast-forward equivalence is
// pinned over: both head MMAs, granularities 1..8, bounded and
// unbounded DRAM, plus the renaming write path (whose eligibility
// closure the quiescence probe must consult).
func ffConfigs() []Config {
	var cfgs []Config
	for _, m := range []MMAKind{ECQF, MDQF} {
		for _, bs := range []int{1, 2, 4, 8} {
			cfgs = append(cfgs,
				Config{Q: 8, B: 8, Bsmall: bs, Banks: 16, MMA: m},
				Config{Q: 8, B: 8, Bsmall: bs, Banks: 16, MMA: m, BankCapacityBlocks: 64},
			)
		}
	}
	cfgs = append(cfgs, Config{Q: 8, B: 8, Bsmall: 4, Banks: 16, Renaming: true, BankCapacityBlocks: 64})
	return cfgs
}

// normalizeFF zeroes the only counter dense ticking cannot accumulate,
// so fast-forwarded and dense runs compare bit-identically.
func normalizeFF(s Stats) Stats {
	s.FastForwardedSlots = 0
	return s
}

// phasedStimulus drives buf slot-by-slot with a seeded phase machine
// (busy / fill-only / drain-only / fully idle, idle spans long enough
// to outlast the request pipeline) and records the exact TickInput of
// every slot plus the delivery outcome. The recorded stimulus replays
// bit-identically through any equivalent advance of the same
// configuration.
type slotOutcome struct {
	ok       bool
	bypassed bool
	cell     cell.Cell
}

func phasedStimulus(t *testing.T, buf *Buffer, rng *rand.Rand, slots int) ([]TickInput, []slotOutcome) {
	t.Helper()
	ins := make([]TickInput, 0, slots)
	outs := make([]slotOutcome, 0, slots)
	queues := buf.Config().Q
	pipe := buf.Config().Lookahead + buf.Config().LatencySlots
	rrNext := 0
	for len(ins) < slots {
		kind := rng.Intn(4)
		length := 1 + rng.Intn(60)
		if kind == 3 {
			// Fully idle phase: long enough that quiescence is reached
			// and a fast-forwarding replay actually skips.
			length = pipe + 1 + rng.Intn(3*pipe+2*queues*buf.Config().Bsmall)
		}
		for s := 0; s < length && len(ins) < slots; s++ {
			in := TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
			if (kind == 0 || kind == 1) && rng.Float64() < 0.8 {
				in.Arrival = cell.QueueID(rng.Intn(queues))
			}
			if kind == 0 || kind == 2 {
				// Round-robin drain against the live view, like the §3
				// adversary; the chosen queue is recorded so the replay
				// needs no view.
				for i := 0; i < queues; i++ {
					q := cell.QueueID((rrNext + i) % queues)
					if buf.Requestable(q) > 0 {
						in.Request = q
						rrNext = (int(q) + 1) % queues
						break
					}
				}
			}
			out, err := buf.Tick(in)
			if err != nil {
				t.Fatalf("reference tick slot %d: %v", len(ins), err)
			}
			oc := slotOutcome{}
			if out.Delivered != nil {
				oc = slotOutcome{ok: true, bypassed: out.Bypassed, cell: *out.Delivered}
			}
			ins = append(ins, in)
			outs = append(outs, oc)
		}
	}
	return ins, outs
}

// TestFastForwardDifferential pins the tentpole equivalence: replaying
// a recorded phased workload through the fused TickBatch — which
// fast-forwards every idle span the moment the buffer goes quiescent —
// must be bit-identical to the slot-by-slot reference run: same
// deliveries in the same slots, same final statistics (skipped-slot
// counter aside) and same clock.
func TestFastForwardDifferential(t *testing.T) {
	for ci, cfg := range ffConfigs() {
		cfg := cfg
		name := fmt.Sprintf("%s/b=%d/cap=%d/ren=%v", cfg.MMA, cfg.Bsmall, cfg.BankCapacityBlocks, cfg.Renaming)
		t.Run(name, func(t *testing.T) {
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(7331 + ci)))
			ins, want := phasedStimulus(t, ref, rng, 30000)

			fused, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]TickOutput, 512)
			pos := 0
			for pos < len(ins) {
				n := len(out)
				if left := len(ins) - pos; left < n {
					n = left
				}
				m, err := fused.TickBatch(ins[pos:pos+n], out[:n])
				if err != nil {
					t.Fatalf("fused batch at slot %d: %v", pos+m-1, err)
				}
				for i := 0; i < m; i++ {
					w := want[pos+i]
					g := slotOutcome{}
					if out[i].Delivered != nil {
						g = slotOutcome{ok: true, bypassed: out[i].Bypassed, cell: *out[i].Delivered}
					}
					if g != w {
						t.Fatalf("slot %d: fused %+v, reference %+v", pos+i, g, w)
					}
				}
				pos += m
			}
			if got, wantS := normalizeFF(fused.Stats()), normalizeFF(ref.Stats()); got != wantS {
				t.Errorf("stats diverge:\nfused %+v\nref   %+v", got, wantS)
			}
			if fused.Now() != ref.Now() {
				t.Errorf("clock diverges: fused %d, ref %d", fused.Now(), ref.Now())
			}
			if fused.Stats().FastForwardedSlots == 0 {
				t.Error("fused path never fast-forwarded: the differential exercised nothing")
			}
		})
	}
}

// TestFastForwardMatchesIdleTicks pins FastForward(n) ≡ n idle Ticks
// directly, including mid-pipeline starting phases: two identically
// driven buffers are brought to quiescence, offset into every phase of
// the b-slot MMA cycle, advanced (one by ticking, one by jumping), and
// then driven with live traffic again — stats, deliveries and clocks
// must stay identical throughout.
func TestFastForwardMatchesIdleTicks(t *testing.T) {
	idle := TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
	for _, cfg := range ffConfigs() {
		cfg := cfg
		name := fmt.Sprintf("%s/b=%d/cap=%d/ren=%v", cfg.MMA, cfg.Bsmall, cfg.BankCapacityBlocks, cfg.Renaming)
		t.Run(name, func(t *testing.T) {
			for _, n := range []uint64{1, 2, 3, 7, 64, 1009} {
				for phase := 0; phase < cfg.Bsmall; phase++ {
					a, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					b, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					drive := func(in TickInput) {
						t.Helper()
						oa, ea := a.Tick(in)
						ob, eb := b.Tick(in)
						if (ea == nil) != (eb == nil) {
							t.Fatalf("error divergence: %v vs %v", ea, eb)
						}
						if ea != nil {
							t.Fatalf("tick: %v", ea)
						}
						switch {
						case (oa.Delivered == nil) != (ob.Delivered == nil):
							t.Fatalf("delivery divergence at slot %d", a.Now())
						case oa.Delivered != nil && (*oa.Delivered != *ob.Delivered || oa.Bypassed != ob.Bypassed):
							t.Fatalf("delivered cell divergence at slot %d", a.Now())
						}
					}
					// Load some traffic and request part of it back, then
					// let both buffers settle to quiescence.
					for i := 0; i < 4*cfg.Bsmall; i++ {
						drive(TickInput{Arrival: cell.QueueID(i % cfg.Q), Request: cell.NoQueue})
					}
					for q := 0; q < cfg.Q/2; q++ {
						drive(TickInput{Arrival: cell.NoQueue, Request: cell.QueueID(q)})
					}
					for i := 0; !a.Quiescent(); i++ {
						if i > 1<<16 {
							t.Fatal("buffer never went quiescent")
						}
						drive(idle)
					}
					if !b.Quiescent() {
						t.Fatal("identically driven buffers disagree on quiescence")
					}
					// Offset into the requested phase of the MMA cycle.
					for int(a.Now())%cfg.Bsmall != phase {
						drive(idle)
					}
					// Advance: a ticks, b jumps.
					for i := uint64(0); i < n; i++ {
						if _, err := a.Tick(idle); err != nil {
							t.Fatalf("idle tick: %v", err)
						}
					}
					if got := b.FastForward(n); got != n {
						t.Fatalf("FastForward(%d) skipped %d", n, got)
					}
					if a.Now() != b.Now() {
						t.Fatalf("clock divergence: %d vs %d", a.Now(), b.Now())
					}
					if ga, gb := a.Stats(), normalizeFF(b.Stats()); ga != gb {
						t.Fatalf("stats divergence after advance (n=%d phase=%d):\nticked %+v\njumped %+v", n, phase, ga, gb)
					}
					// Live traffic afterwards must behave identically.
					for i := 0; i < 6*cfg.Q*cfg.Bsmall; i++ {
						in := TickInput{Arrival: cell.QueueID(i % cfg.Q), Request: cell.NoQueue}
						if i%2 == 1 {
							in.Request = cell.QueueID((i / 2) % cfg.Q)
						}
						drive(in)
					}
					if ga, gb := a.Stats(), normalizeFF(b.Stats()); ga != gb {
						t.Fatalf("stats divergence after resume (n=%d phase=%d):\nticked %+v\njumped %+v", n, phase, ga, gb)
					}
				}
			}
		})
	}
}

// TestFastForwardRefusesBusyBuffer pins the guard: a buffer with any
// in-flight work refuses to jump.
func TestFastForwardRefusesBusyBuffer(t *testing.T) {
	buf, err := New(Config{Q: 4, B: 8, Bsmall: 4, Banks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !buf.Quiescent() {
		t.Fatal("fresh buffer must be quiescent")
	}
	if got := buf.FastForward(0); got != 0 {
		t.Errorf("FastForward(0) = %d", got)
	}
	if _, err := buf.Tick(TickInput{Arrival: 0, Request: cell.NoQueue}); err != nil {
		t.Fatal(err)
	}
	if _, err := buf.Tick(TickInput{Arrival: cell.NoQueue, Request: 0}); err != nil {
		t.Fatal(err)
	}
	if buf.Quiescent() {
		t.Fatal("buffer with an in-flight request must not be quiescent")
	}
	if got := buf.FastForward(100); got != 0 {
		t.Errorf("busy FastForward skipped %d slots", got)
	}
	if _, ok := buf.NextEventSlot(); !ok {
		t.Error("busy buffer must report a pending event slot")
	}
}

// TestQuiescenceStableUnderIdleTicks pins the absorbing property the
// fast path relies on: once quiescent, idle ticks change nothing but
// the clock (and the DSS empty-cycle count), and the buffer stays
// quiescent.
func TestQuiescenceStableUnderIdleTicks(t *testing.T) {
	for _, cfg := range ffConfigs() {
		buf, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Busy it, then settle.
		for i := 0; i < 64; i++ {
			in := TickInput{Arrival: cell.QueueID(i % cfg.Q), Request: cell.NoQueue}
			if i%3 == 2 {
				in.Request = cell.QueueID(rand.New(rand.NewSource(int64(i))).Intn(cfg.Q))
				if buf.Requestable(in.Request) == 0 {
					in.Request = cell.NoQueue
				}
			}
			if _, err := buf.Tick(in); err != nil {
				t.Fatal(err)
			}
		}
		idle := TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
		for i := 0; !buf.Quiescent(); i++ {
			if i > 1<<16 {
				t.Fatal("never quiescent")
			}
			if _, err := buf.Tick(idle); err != nil {
				t.Fatal(err)
			}
		}
		ref := buf.Stats()
		ref.DSS.EmptyCycles = 0
		for i := 0; i < 4*cfg.Bsmall+3; i++ {
			if _, err := buf.Tick(idle); err != nil {
				t.Fatal(err)
			}
			if !buf.Quiescent() {
				t.Fatalf("quiescence lost after %d idle ticks (b=%d)", i+1, cfg.Bsmall)
			}
			got := buf.Stats()
			got.DSS.EmptyCycles = 0
			if got != ref {
				t.Fatalf("idle tick %d changed stats:\nbefore %+v\nafter  %+v", i+1, ref, got)
			}
		}
	}
}

// TestTickBatchFusedZeroAlloc gates the fused batch path at zero
// allocations per batch once warm. The stimulus is a deterministic
// period — full-load phase, fully idle gap (long enough that the
// batch fast-forwards through it), lagged drain, trailing idle — that
// returns the buffer to empty quiescence, so every measured batch
// replays identical work against warmed structures.
func TestTickBatchFusedZeroAlloc(t *testing.T) {
	const q, lag, n = 16, 32, 2048
	buf, err := New(Config{Q: q, B: 32, Bsmall: 4, Banks: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The two idle spans must outlast the request pipeline (lookahead
	// plus latency register — ~400 slots here) or nothing ever goes
	// quiescent mid-batch.
	ins := make([]TickInput, n)
	outs := make([]TickOutput, n)
	for i := range ins {
		in := TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}
		switch {
		case i < 512: // full load, requests lagging arrivals by lag slots
			in.Arrival = cell.QueueID(i % q)
			if i >= lag {
				in.Request = cell.QueueID((i - lag) % q)
			}
		case i < 1536: // idle gap: the fused path must fast-forward here
		case i < 1536+lag: // drain the backlog the lag left behind
			in.Request = cell.QueueID((i - 1536) % q)
		default: // trailing idle: back to empty quiescence
		}
		ins[i] = in
	}
	run := func() {
		m, err := buf.TickBatch(ins, outs)
		if err != nil || m != n {
			t.Fatalf("batch: %d slots, %v", m, err)
		}
	}
	// Warm every high-water structure and all completion-ring buckets
	// (the batch length is not a multiple of the ring length, so
	// successive periods land on different buckets).
	before := buf.Stats().FastForwardedSlots
	for i := 0; i < 24; i++ {
		run()
	}
	if buf.Stats().FastForwardedSlots == before {
		t.Fatal("fused batch never fast-forwarded the idle gap")
	}
	if allocs := testing.AllocsPerRun(16, run); allocs != 0 {
		t.Errorf("fused TickBatch allocates %.1f times per batch, want 0", allocs)
	}
	if !buf.Stats().Clean() {
		t.Errorf("run not clean: %+v", buf.Stats())
	}
}
