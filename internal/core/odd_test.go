package core

import (
	"testing"

	"repro/internal/cell"
)

// TestOddGranularity exercises a non-power-of-two geometry (B=6, b=3):
// the DSA's half-cycle staggering must still avoid conflicts and keep
// zero misses.
func TestOddGranularity(t *testing.T) {
	b, err := New(Config{Q: 4, B: 6, Bsmall: 3, Banks: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Backlog, then adversarial drain.
	for i := 0; i < 240; i++ {
		if _, err := b.Tick(TickInput{Arrival: cell.QueueID(i % 4), Request: cell.NoQueue}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30000; i++ {
		in := TickInput{Arrival: cell.QueueID(i % 4), Request: cell.NoQueue}
		q := cell.QueueID(i % 4)
		if b.Requestable(q) > 0 {
			in.Request = q
		}
		if _, err := b.Tick(in); err != nil {
			t.Fatalf("slot %d: %v\nstats %v", i, err, b.Stats())
		}
	}
	if !b.Stats().Clean() {
		t.Fatalf("stats: %v", b.Stats())
	}
}

// TestQuadIssueBudget runs with IssuesPerCycle=4 (an over-provisioned
// DSA): still clean, and the skip bound scales with the budget.
func TestQuadIssueBudget(t *testing.T) {
	b, err := New(Config{Q: 8, B: 8, Bsmall: 2, Banks: 16, IssuesPerCycle: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 320; i++ {
		if _, err := b.Tick(TickInput{Arrival: cell.QueueID(i % 8), Request: cell.NoQueue}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20000; i++ {
		in := TickInput{Arrival: cell.QueueID(i % 8), Request: cell.NoQueue}
		q := cell.QueueID(i % 8)
		if b.Requestable(q) > 0 {
			in.Request = q
		}
		if _, err := b.Tick(in); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	st := b.Stats()
	if !st.Clean() {
		t.Fatalf("stats: %v", st)
	}
	d := b.Config().Dimension()
	if st.DSS.MaxSkips > 4*d.MaxSkips() {
		t.Errorf("skips %d exceed 4·Dmax %d", st.DSS.MaxSkips, 4*d.MaxSkips())
	}
}
