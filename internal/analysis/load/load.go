// Package load type-checks the module's packages for the pktbufvet
// standalone driver without depending on golang.org/x/tools: package
// metadata comes from `go list -export -deps -json`, module packages
// are parsed and type-checked from source (comments included, so the
// //pktbuf: annotation contract is visible), and imports outside the
// module resolve through the compiler's export data via go/importer.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string

	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Target reports whether the package was named by the load patterns
// (rather than pulled in as a dependency) and lives in the module.
func (p *Package) Target() bool { return !p.DepOnly && !p.Standard }

// Packages loads and type-checks the packages matching patterns plus
// their module-local dependencies. The returned slice is in
// dependency order; the FileSet is shared by every package.
func Packages(patterns []string) ([]*Package, *token.FileSet, error) {
	metas, err := goList(patterns)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	exports := make(map[string]string)
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}
	byPath := make(map[string]*Package)
	imp := &combinedImporter{
		local: byPath,
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}

	var out []*Package
	for _, m := range metas {
		p := &Package{
			ImportPath: m.ImportPath,
			Dir:        m.Dir,
			Name:       m.Name,
			GoFiles:    m.GoFiles,
			Standard:   m.Standard,
			DepOnly:    m.DepOnly,
			Export:     m.Export,
		}
		out = append(out, p)
		if p.Standard {
			continue // resolved through export data on demand
		}
		for _, name := range p.GoFiles {
			file := name
			if !filepath.IsAbs(file) {
				file = filepath.Join(p.Dir, name)
			}
			syn, err := parser.ParseFile(fset, file, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, nil, fmt.Errorf("load %s: %w", p.ImportPath, err)
			}
			p.Syntax = append(p.Syntax, syn)
		}
		p.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		tpkg, err := conf.Check(p.ImportPath, fset, p.Syntax, p.Info)
		if err != nil {
			return nil, nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		p.Types = tpkg
		byPath[p.ImportPath] = p
	}
	return out, fset, nil
}

type listMeta struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
}

// goList shells out to the go command for package metadata and export
// data. -deps emits dependencies before dependents, which is exactly
// the order source type-checking needs.
func goList(patterns []string) ([]listMeta, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Standard,DepOnly,Export",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
	}
	var out []listMeta
	dec := json.NewDecoder(&stdout)
	for {
		var m listMeta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		out = append(out, m)
	}
	return out, nil
}

// combinedImporter resolves module-local imports to the packages this
// loader type-checked from source and everything else (the standard
// library) to compiler export data.
type combinedImporter struct {
	local map[string]*Package
	gc    types.Importer
}

func (c *combinedImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := c.local[path]; ok {
		return p.Types, nil
	}
	return c.gc.Import(path)
}
