package analysis

import "testing"

func TestParseWaiver(t *testing.T) {
	cases := []struct {
		comment string
		name    string
		ok      bool
	}{
		{"//pktbuf:allow hotpath-noalloc bounded by construction", "hotpath-noalloc", true},
		{"//pktbuf:allow singlewriter loop parked here", "singlewriter", true},
		{"//pktbuf:allow errwrap", "", false},      // no reason
		{"//pktbuf:allow errwrap   ", "", false},   // blank reason
		{"//pktbuf:allow", "", false},              // nothing at all
		{"// pktbuf:allow errwrap why", "", false}, // not a directive comment
		{"//pktbuf:hotpath", "", false},            // different directive
		{"// ordinary comment", "", false},
	}
	for _, c := range cases {
		name, ok := ParseWaiver(c.comment)
		if name != c.name || ok != c.ok {
			t.Errorf("ParseWaiver(%q) = (%q, %v), want (%q, %v)",
				c.comment, name, ok, c.name, c.ok)
		}
	}
}
