package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath is the hotpath-noalloc analyzer: a function annotated
// //pktbuf:hotpath must not contain constructs that allocate or that
// the zero-alloc discipline bans outright —
//
//   - map construction, indexing, iteration or deletion (dense
//     slice-indexed arenas replaced every hot-path map in PR 1),
//   - channel construction and operations, select, and go statements
//     (the serving loop and kernels are single-goroutine by design),
//   - append (statically indistinguishable from append-that-grows;
//     provably bounded sites carry a justified //pktbuf:allow),
//   - function literals (closures were hoisted to fields in PR 2),
//   - interface boxing: converting a non-pointer-shaped concrete
//     value to an interface type, the classic hidden allocation.
//
// The check is per-function and purely syntactic/type-based; the
// dynamic complement is the AllocsPerRun/benchcheck gates and the
// compile-time complement is the escape gate (cmd/pktbufvet
// -escapes), which asks the compiler for the ground truth.
var HotPath = &Analyzer{
	Name: "hotpath-noalloc",
	Doc:  "ban allocation-prone constructs in //pktbuf:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, fd := range hotpathFuncs(pass.Files) {
		if fd.Body == nil {
			continue
		}
		_, qual := FuncName(fd)
		w := &hotpathWalker{pass: pass, fn: qual}
		if sig, ok := pass.TypesInfo.TypeOf(fd.Name).(*types.Signature); ok {
			w.results = sig.Results()
		}
		ast.Inspect(fd.Body, w.visit)
	}
	return nil
}

type hotpathWalker struct {
	pass    *Pass
	fn      string
	results *types.Tuple
}

func (w *hotpathWalker) bad(pos token.Pos, format string, args ...any) {
	w.pass.Reportf(pos, "hotpath %s: "+format, append([]any{w.fn}, args...)...)
}

func (w *hotpathWalker) visit(n ast.Node) bool {
	info := w.pass.TypesInfo
	switch n := n.(type) {
	case *ast.FuncLit:
		w.bad(n.Pos(), "closure (function literal allocates)")
		return false // the literal's body belongs to the closure, not this function
	case *ast.GoStmt:
		w.bad(n.Pos(), "go statement (goroutine start allocates)")
	case *ast.SendStmt:
		w.bad(n.Pos(), "channel send")
	case *ast.SelectStmt:
		w.bad(n.Pos(), "select statement")
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			w.bad(n.Pos(), "channel receive")
		}
	case *ast.CompositeLit:
		if t := info.TypeOf(n); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				w.bad(n.Pos(), "map literal")
			}
		}
	case *ast.IndexExpr:
		if t := info.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				w.bad(n.Pos(), "map access")
			}
		}
	case *ast.RangeStmt:
		if t := info.TypeOf(n.X); t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				w.bad(n.Pos(), "map iteration")
			case *types.Chan:
				w.bad(n.Pos(), "channel iteration")
			}
		}
	case *ast.CallExpr:
		w.call(n)
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				w.boxing(info.TypeOf(lhs), n.Rhs[i])
			}
		}
	case *ast.ValueSpec:
		if n.Type != nil && len(n.Values) > 0 {
			if t := info.TypeOf(n.Type); t != nil {
				for _, v := range n.Values {
					w.boxing(t, v)
				}
			}
		}
	case *ast.ReturnStmt:
		if w.results != nil && len(n.Results) == w.results.Len() {
			for i, res := range n.Results {
				w.boxing(w.results.At(i).Type(), res)
			}
		}
	}
	return true
}

// call flags banned builtins, conversions to interface types, and
// boxing at call-argument positions.
func (w *hotpathWalker) call(call *ast.CallExpr) {
	info := w.pass.TypesInfo
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					if t := info.TypeOf(call.Args[0]); t != nil {
						switch t.Underlying().(type) {
						case *types.Map:
							w.bad(call.Pos(), "make(map)")
						case *types.Chan:
							w.bad(call.Pos(), "make(chan)")
						}
					}
				}
			case "append":
				w.bad(call.Pos(), "append may grow its backing array")
			case "delete":
				w.bad(call.Pos(), "map delete")
			case "close":
				w.bad(call.Pos(), "channel close")
			}
			return
		}
	}
	// Conversion T(x) where T is an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			w.boxing(tv.Type, call.Args[0])
		}
		return
	}
	// Boxing at parameter positions.
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice does not box per element
			}
			pt = params.At(params.Len() - 1).Type()
			if s, ok := pt.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		w.boxing(pt, arg)
	}
}

// boxing reports a conversion of a non-pointer-shaped concrete value
// to an interface type: the canonical hidden heap allocation.
func (w *hotpathWalker) boxing(dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := w.pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	st := tv.Type
	if types.IsInterface(st) {
		return // interface-to-interface carries the existing box
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if pointerShaped(st) {
		return // the interface data word holds the pointer; no allocation
	}
	w.bad(src.Pos(), "interface boxing of %s value", st)
}

// pointerShaped reports whether values of t fit the interface data
// word without allocating: pointers, channels, maps, funcs and
// unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
