// Package escape is the compile-time half of the zero-alloc gate: it
// asks the compiler for its escape-analysis diagnostics
// (go build -gcflags=<module>/...=-m) and fails when any heap
// allocation lands inside a function annotated //pktbuf:hotpath. The
// AllocsPerRun benchmark gates catch a regression at bench time and
// only on the paths the benchmark drives; this gate catches it at
// build time on every path of every annotated function.
//
// Known escapes can be recorded in a baseline file (one
// "pkg.func: message" per line, # comments allowed); only escapes
// absent from the baseline fail the gate, so a deliberate, justified
// allocation does not wedge CI while still preventing silent growth.
// The current tree's baseline is empty.
package escape

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// A Site is one compiler-reported heap escape inside an annotated
// function.
type Site struct {
	// Func is the qualified function name ("Type.Method" or "Func")
	// prefixed by its import path.
	Func string
	// Message is the compiler diagnostic ("moved to heap: x",
	// "&x escapes to heap", ...).
	Message string
	// Pos is the diagnostic's file:line:col.
	Pos string
}

// Key is the baseline identity of the site: position-independent so
// unrelated edits to the file do not invalidate the baseline.
func (s Site) Key() string { return s.Func + ": " + s.Message }

// annotated is one //pktbuf:hotpath function's source range.
type annotated struct {
	pkg, name          string
	file               string
	startLine, endLine int
}

// Check builds the annotated packages with escape diagnostics enabled
// and returns the escape sites inside annotated functions that are
// not covered by the baseline file (missing baseline file = empty
// baseline), plus all observed sites for reporting.
func Check(pkgs []*load.Package, fset *token.FileSet, baselinePath string) (fresh, all []Site, err error) {
	var funcs []annotated
	targets := make(map[string]bool)
	for _, p := range pkgs {
		if !p.Target() {
			continue
		}
		for _, fd := range analysis.HotpathFuncs(p.Syntax) {
			_, qual := analysis.FuncName(fd)
			start := fset.Position(fd.Pos())
			end := fset.Position(fd.End())
			funcs = append(funcs, annotated{
				pkg:       p.ImportPath,
				name:      qual,
				file:      start.Filename,
				startLine: start.Line,
				endLine:   end.Line,
			})
			targets[p.ImportPath] = true
		}
	}
	if len(funcs) == 0 {
		return nil, nil, fmt.Errorf("escape: no //pktbuf:hotpath annotations found")
	}

	var pkgArgs []string
	module := ""
	for path := range targets {
		pkgArgs = append(pkgArgs, path)
		if i := strings.Index(path, "/"); i >= 0 {
			module = path[:i]
		} else {
			module = path
		}
	}
	sort.Strings(pkgArgs)

	diags, err := buildDiagnostics(module, pkgArgs)
	if err != nil {
		return nil, nil, err
	}

	all = matchSites(diags, funcs)
	baseline, err := readBaseline(baselinePath)
	if err != nil {
		return nil, nil, err
	}
	for _, s := range all {
		if !baseline[s.Key()] {
			fresh = append(fresh, s)
		}
	}
	return fresh, all, nil
}

// WriteBaseline records every observed site to path.
func WriteBaseline(path string, all []Site) error {
	var b bytes.Buffer
	b.WriteString("# pktbufvet escape baseline: known heap escapes inside //pktbuf:hotpath\n")
	b.WriteString("# functions. Regenerate with: go run ./cmd/pktbufvet -escapes -write-baseline\n")
	keys := make([]string, 0, len(all))
	seen := make(map[string]bool)
	for _, s := range all {
		if !seen[s.Key()] {
			seen[s.Key()] = true
			keys = append(keys, s.Key())
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, b.Bytes(), 0o644)
}

func readBaseline(path string) (map[string]bool, error) {
	out := make(map[string]bool)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
	}
	return out, sc.Err()
}

type diag struct {
	file    string
	line    int
	message string
}

var diagLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// buildDiagnostics compiles the packages with -m and returns the
// heap-escape diagnostics. The build cache replays compiler output,
// so warm runs stay cheap without losing diagnostics.
func buildDiagnostics(module string, pkgs []string) ([]diag, error) {
	args := append([]string{"build", "-gcflags=" + module + "/...=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escape: go build: %v\n%s", err, stderr.Bytes())
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var out []diag
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := diagLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "moved to heap") &&
			(!strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "does not escape")) {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(cwd, file)
		}
		line, _ := strconv.Atoi(m[2])
		out = append(out, diag{file: file, line: line, message: msg})
	}
	return out, sc.Err()
}

// matchSites keeps the diagnostics whose position falls inside an
// annotated function's source range.
func matchSites(diags []diag, funcs []annotated) []Site {
	var out []Site
	for _, d := range diags {
		for _, fn := range funcs {
			if d.file == fn.file && d.line >= fn.startLine && d.line <= fn.endLine {
				out = append(out, Site{
					Func:    fn.pkg + "." + fn.name,
					Message: d.message,
					Pos:     fmt.Sprintf("%s:%d", d.file, d.line),
				})
				break
			}
		}
	}
	return out
}
