package escape

import (
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.txt")
	sites := []Site{
		{Func: "repro/internal/core.kernel.run", Message: "moved to heap: x", Pos: "a.go:1"},
		{Func: "repro/internal/core.kernel.run", Message: "moved to heap: x", Pos: "a.go:9"}, // dup key
		{Func: "repro/internal/sram.CAMStore.Pop", Message: "q escapes to heap", Pos: "b.go:2"},
	}
	if err := WriteBaseline(path, sites); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("baseline has %d keys, want 2 (dup collapsed): %v", len(got), got)
	}
	for _, s := range sites {
		if !got[s.Key()] {
			t.Errorf("baseline missing %q", s.Key())
		}
	}
}

func TestReadBaselineMissingFileIsEmpty(t *testing.T) {
	got, err := readBaseline(filepath.Join(t.TempDir(), "nope.txt"))
	if err != nil {
		t.Fatalf("missing baseline must read as empty, got error %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("missing baseline must read as empty, got %v", got)
	}
}

func TestMatchSitesRangeFilter(t *testing.T) {
	funcs := []annotated{
		{pkg: "repro/p", name: "T.hot", file: "/src/f.go", startLine: 10, endLine: 20},
	}
	diags := []diag{
		{file: "/src/f.go", line: 15, message: "x escapes to heap"}, // inside
		{file: "/src/f.go", line: 5, message: "y escapes to heap"},  // before
		{file: "/src/f.go", line: 21, message: "z escapes to heap"}, // after
		{file: "/src/g.go", line: 15, message: "w escapes to heap"}, // other file
	}
	got := matchSites(diags, funcs)
	if len(got) != 1 {
		t.Fatalf("matchSites kept %d sites, want 1: %v", len(got), got)
	}
	if got[0].Func != "repro/p.T.hot" || got[0].Message != "x escapes to heap" {
		t.Errorf("matched wrong site: %+v", got[0])
	}
}
