package analysis

import (
	"strconv"
	"strings"
)

// PublicAPI generalizes the repo's TestExamplesUsePublicAPIOnly
// golden rule into an import-graph analyzer: packages under examples/
// and cmd/ must consume the module exclusively through its public
// pktbuf/... surface, never by importing internal/ packages directly.
// Two commands are exempt by contract because they are repo tooling,
// not engine consumers: cmd/benchcheck (CI gate over the benchmark
// baseline) and cmd/pktbufvet (the driver for these analyzers, which
// necessarily imports repro/internal/analysis). Anything else needs a
// per-line //pktbuf:allow waiver with a reason.
var PublicAPI = &Analyzer{
	Name: "publicapi",
	Doc:  "examples/ and cmd/ must not import internal/ packages",
	Run:  runPublicAPI,
}

func runPublicAPI(pass *Pass) error {
	path := pass.Pkg.Path()
	if !publicOnlyConsumer(path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if internalImport(p) {
				pass.Reportf(imp.Pos(),
					"publicapi: %s imports %s; examples/ and cmd/ must use the public pktbuf API only",
					path, p)
			}
		}
	}
	return nil
}

// publicOnlyConsumer reports whether the package path falls under the
// examples/ or cmd/ trees (cmd/benchcheck and cmd/pktbufvet
// excepted).
func publicOnlyConsumer(path string) bool {
	segs := strings.Split(path, "/")
	for i, seg := range segs {
		switch seg {
		case "examples":
			return true
		case "cmd":
			if i+1 < len(segs) && (segs[i+1] == "benchcheck" || segs[i+1] == "pktbufvet") {
				return false
			}
			return true
		}
	}
	return false
}

// internalImport reports whether the import path names an internal
// package.
func internalImport(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}
