package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SingleWriter enforces //pktbuf:owner=f1,f2 field annotations: the
// field may be accessed only from the declared owner functions and
// from helpers the static call graph proves are reachable exclusively
// from them (a helper called from an owner and from anywhere else, or
// ever used as a function value, does not qualify). This is the
// machine-checked form of "the serving loop is the only code that
// touches the engine state" from the serve package and of the SPSC
// ring contract.
//
// Fields of sync/atomic types get the SPSC relaxation: calling .Load()
// on the field is a read and allowed anywhere; mutating methods
// (Store, Add, Swap, CompareAndSwap, Or, And) remain owner-only. For
// plain fields every access — read or write — is owner-only, because
// a cross-goroutine read of loop-private state is already a race.
//
// Owner names are bare function names or Type.Method; references from
// *_test.go files are never analyzed (drivers exclude test files), so
// tests may drive loop internals synchronously.
var SingleWriter = &Analyzer{
	Name: "singlewriter",
	Doc:  "restrict //pktbuf:owner= fields to their declared owner functions",
	Run:  runSingleWriter,
}

func runSingleWriter(pass *Pass) error {
	owned := collectOwnedFields(pass)
	if len(owned) == 0 {
		return nil
	}
	funcs := packageFuncs(pass)
	dominated := dominatedSets(pass, funcs, owned)

	for _, fd := range funcs {
		fd := fd
		ast.Inspect(fd.decl, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := fieldObject(pass, sel)
			if obj == nil {
				return true
			}
			spec, ok := owned[obj]
			if !ok {
				return true
			}
			if dominated[obj][fd.decl] {
				return true
			}
			if atomicLoad(pass, fd.decl, sel) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"singlewriter: field %s is owned by %s; accessed from %s",
				obj.Name(), strings.Join(spec.owners, ","), fd.qualified)
			return true
		})
	}

	// Accesses outside any function (package-level declarations).
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if obj := fieldObject(pass, sel); obj != nil {
					if spec, ok := owned[obj]; ok {
						pass.Reportf(sel.Sel.Pos(),
							"singlewriter: field %s is owned by %s; accessed at package scope",
							obj.Name(), strings.Join(spec.owners, ","))
					}
				}
				return true
			})
		}
	}
	return nil
}

type ownedField struct {
	owners []string
}

// collectOwnedFields maps annotated field objects to their owner
// lists.
func collectOwnedFields(pass *Pass) map[*types.Var]ownedField {
	out := make(map[*types.Var]ownedField)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				arg := directiveArg(field.Doc, ownerDirective)
				if arg == "" {
					arg = directiveArg(field.Comment, ownerDirective)
				}
				if arg == "" {
					continue
				}
				owners := strings.Split(arg, ",")
				for i := range owners {
					owners[i] = strings.TrimSpace(owners[i])
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = ownedField{owners: owners}
					}
				}
			}
			return true
		})
	}
	return out
}

type pkgFunc struct {
	decl             *ast.FuncDecl
	obj              *types.Func
	short, qualified string
}

func packageFuncs(pass *Pass) []*pkgFunc {
	var out []*pkgFunc
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			short, qual := FuncName(fd)
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			out = append(out, &pkgFunc{decl: fd, obj: fn, short: short, qualified: qual})
		}
	}
	return out
}

// dominatedSets computes, per owned field, the set of function
// declarations allowed to touch it: the declared owners plus every
// function whose references all occur as direct calls from
// already-allowed functions.
func dominatedSets(pass *Pass, funcs []*pkgFunc, owned map[*types.Var]ownedField) map[*types.Var]map[*ast.FuncDecl]bool {
	byObj := make(map[*types.Func]*pkgFunc)
	for _, fn := range funcs {
		if fn.obj != nil {
			byObj[fn.obj] = fn
		}
	}

	// Identifiers appearing as the function operand of a call.
	callIdents := make(map[*ast.Ident]bool)
	for _, fn := range funcs {
		ast.Inspect(fn.decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callIdents[fun] = true
			case *ast.SelectorExpr:
				callIdents[fun.Sel] = true
			}
			return true
		})
	}

	// Reference graph over package functions: per callee, the set of
	// calling declarations, plus whether the function ever escapes as
	// a value (referenced outside a direct call).
	callers := make(map[*types.Func]map[*ast.FuncDecl]bool)
	escapes := make(map[*types.Func]bool)
	for _, fn := range funcs {
		fn := fn
		ast.Inspect(fn.decl, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if _, local := byObj[obj]; !local {
				return true
			}
			if !callIdents[id] {
				escapes[obj] = true
				return true
			}
			if callers[obj] == nil {
				callers[obj] = make(map[*ast.FuncDecl]bool)
			}
			callers[obj][fn.decl] = true
			return true
		})
	}

	out := make(map[*types.Var]map[*ast.FuncDecl]bool)
	for v, spec := range owned {
		allowed := make(map[*ast.FuncDecl]bool)
		for _, fn := range funcs {
			for _, name := range spec.owners {
				if name == fn.short || name == fn.qualified {
					allowed[fn.decl] = true
				}
			}
		}
		for changed := true; changed; {
			changed = false
			for _, fn := range funcs {
				if allowed[fn.decl] || fn.obj == nil || escapes[fn.obj] {
					continue
				}
				cs := callers[fn.obj]
				if len(cs) == 0 {
					continue
				}
				all := true
				for caller := range cs {
					if !allowed[caller] {
						all = false
						break
					}
				}
				if all {
					allowed[fn.decl] = true
					changed = true
				}
			}
		}
		out[v] = allowed
	}
	return out
}

// fieldObject resolves a selector to the field variable it selects,
// or nil when the selector is not a field access.
func fieldObject(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// atomicLoad reports whether the annotated-field access sel is the
// receiver of a .Load() call on a sync/atomic type — the read half of
// the SPSC contract, allowed anywhere.
func atomicLoad(pass *Pass, scope *ast.FuncDecl, sel *ast.SelectorExpr) bool {
	t := pass.TypesInfo.TypeOf(sel)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return false
	}
	allowed := false
	ast.Inspect(scope, func(n ast.Node) bool {
		outer, ok := n.(*ast.SelectorExpr)
		if !ok || outer.X != sel {
			return true
		}
		if outer.Sel.Name == "Load" {
			allowed = true
		}
		return true
	})
	return allowed
}
