// Package analysis is the repo's self-contained static-analysis
// framework: a minimal go/analysis-shaped API (the module vendors no
// third-party code, so golang.org/x/tools is deliberately not a
// dependency) plus the pktbufvet analyzer suite enforcing the
// module's load-bearing invariants at build time:
//
//   - hotpath-noalloc: functions annotated //pktbuf:hotpath must not
//     contain allocation-prone constructs (maps, channels, append,
//     closures, interface boxing). The dynamic complement is the
//     0 allocs/op benchmark gates; the compile-time complement is the
//     escape gate in cmd/pktbufvet -escapes.
//   - singlewriter: struct fields annotated //pktbuf:owner=<funcs>
//     may be touched only by the declared owner functions and by
//     helpers provably called from them alone.
//   - errwrap: every error crossing the public pktbuf/... API
//     boundary must be a named sentinel or wrap one with %w, so
//     errors.Is dispatch keeps working for clients.
//   - publicapi: examples/ and cmd/ (except cmd/benchcheck) must not
//     import internal/ packages.
//
// Analyzers run over one type-checked package at a time (a Pass) and
// never need cross-package facts, which keeps them runnable both from
// the standalone cmd/pktbufvet driver and as a `go vet -vettool`.
// Findings can be waived line-by-line with a justified
// "//pktbuf:allow <analyzer> <reason>" comment; see directives.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pktbuf:allow waivers.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an analyzer. Test files
// (*_test.go) are excluded by every driver: the invariants guard
// production code, and tests legitimately drive loop-private state
// single-threadedly.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full pktbufvet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{HotPath, SingleWriter, ErrWrap, PublicAPI}
}

// Run applies a to the package, honouring //pktbuf:allow waivers:
// a diagnostic on a line carrying a waiver for a.Name is suppressed.
// Drivers should call Run rather than a.Run directly.
func Run(a *Analyzer, pass *Pass) error {
	waived := waivedLines(pass.Fset, pass.Files, a.Name)
	inner := pass.Report
	filtered := *pass
	filtered.Analyzer = a
	filtered.Report = func(d Diagnostic) {
		p := pass.Fset.Position(d.Pos)
		if waived[LineKey{p.Filename, p.Line}] {
			return
		}
		inner(d)
	}
	return a.Run(&filtered)
}

// sameModule reports whether two import paths belong to the same
// module, approximated by a shared first path element (the module
// here is "repro", so "repro/internal/core" and "repro/pktbuf" match
// while "fmt" and "net" do not).
func sameModule(a, b string) bool {
	return firstSegment(a) == firstSegment(b)
}

func firstSegment(path string) string {
	if i := strings.Index(path, "/"); i >= 0 {
		return path[:i]
	}
	return path
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
