// Package thing sits on a public pktbuf/... path, so every error an
// exported function returns must errors.Is-match a sentinel.
package thing

import (
	"errors"
	"fmt"
	"io"
)

// ErrThing is the package sentinel.
var ErrThing = errors.New("thing: failed")

func Sentinel() error { return ErrThing }

func StdlibSentinel() error { return io.EOF }

func Wrapped(n int) error { return fmt.Errorf("thing: n=%d: %w", n, ErrThing) }

func Joined() error { return errors.Join(ErrThing, io.EOF) }

func Nil() error { return nil }

func ViaLocal() error {
	err := fmt.Errorf("thing: %w", ErrThing)
	return err
}

func BadNew() error {
	return errors.New("thing: ad hoc") // want "errors.New at API boundary"
}

func BadNoVerb(n int) error {
	return fmt.Errorf("thing: n=%d", n) // want "fmt.Errorf without %w"
}

func BadLocal() error {
	err := errors.New("thing: stored ad hoc") // want "errors.New at API boundary"
	return err
}

// unexported functions are not an API boundary.
func internalScratch() error {
	return errors.New("thing: internal scratch")
}
