// Package thing sits on a public pktbuf/... path, so every error an
// exported function returns must errors.Is-match a sentinel.
package thing

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrThing is the package sentinel.
var ErrThing = errors.New("thing: failed")

// Sentinels mirroring the crash-safe serving taxonomy: snapshot
// version mismatches, unknown resume sessions, silent-peer deadline
// expiry. Each must be reachable via errors.Is through every exported
// return path below.
var (
	ErrSnapshotVersion = errors.New("thing: unsupported snapshot version")
	ErrSessionUnknown  = errors.New("thing: unknown session")
	ErrPeerTimeout     = errors.New("thing: peer deadline expired")
)

func Sentinel() error { return ErrThing }

func StdlibSentinel() error { return io.EOF }

func Wrapped(n int) error { return fmt.Errorf("thing: n=%d: %w", n, ErrThing) }

func Joined() error { return errors.Join(ErrThing, io.EOF) }

func Nil() error { return nil }

func ViaLocal() error {
	err := fmt.Errorf("thing: %w", ErrThing)
	return err
}

func BadNew() error {
	return errors.New("thing: ad hoc") // want "errors.New at API boundary"
}

func BadNoVerb(n int) error {
	return fmt.Errorf("thing: n=%d", n) // want "fmt.Errorf without %w"
}

func BadLocal() error {
	err := errors.New("thing: stored ad hoc") // want "errors.New at API boundary"
	return err
}

// Restore-shaped path: version check wraps the sentinel with the
// versions folded into the message, unknown token returns the bare
// sentinel — both Is-matchable.
func RestoreVersioned(got, want int, token string) error {
	if got != want {
		return fmt.Errorf("thing: snapshot v%d, want v%d: %w", got, want, ErrSnapshotVersion)
	}
	if token == "" {
		return ErrSessionUnknown
	}
	return nil
}

// Deadline-shaped path: a timeout surfaces as the typed sentinel (or
// the stdlib one net honors), never as a raw ad-hoc error.
func DeadlineExpired(silent bool) error {
	if silent {
		return ErrPeerTimeout
	}
	return os.ErrDeadlineExceeded
}

func BadDeadline() error {
	return errors.New("thing: peer went silent") // want "errors.New at API boundary"
}

// unexported functions are not an API boundary.
func internalScratch() error {
	return errors.New("thing: internal scratch")
}
