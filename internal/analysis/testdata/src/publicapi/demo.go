// Command demo is a cmd/ package: importing internal/ packages is a
// publicapi violation.
package main

import (
	_ "fixmod/internal/secret" // want "must use the public pktbuf API only"
	_ "fixmod/pktbuf/thing"
)

func main() {}
