// Package hot seeds one violation per hotpath-noalloc rule, plus a
// waived line and a clean unannotated function.
package hot

type sink interface{ m() }

type val struct{ x int }

func (val) m() {}

//pktbuf:hotpath
func bad(m map[int]int, ch chan int, s []int, v val) []int {
	_ = m[1]         // want "map access"
	ch <- 1          // want "channel send"
	<-ch             // want "channel receive"
	s = append(s, 1) // want "append may grow"
	f := func() {}   // want "closure"
	_ = f
	go probe()           // want "go statement"
	mm := map[int]int{}  // want "map literal"
	delete(mm, 1)        // want "map delete"
	c2 := make(chan int) // want "make\(chan\)"
	close(c2)            // want "channel close"
	var i any
	i = v // want "interface boxing of fixmod/internal/hot.val value"
	_ = i
	var j sink = v // want "interface boxing"
	_ = j
	probeArg(v) // want "interface boxing"
	return s
}

//pktbuf:hotpath
func boxReturn(v val) any {
	return v // want "interface boxing"
}

//pktbuf:hotpath
func waived(s []int) []int {
	s = append(s, 1) //pktbuf:allow hotpath-noalloc fixture: bounded by construction
	return s
}

//pktbuf:hotpath
func cleanPtr(v *val) any {
	return v // pointer-shaped: no box, no finding
}

// cold is unannotated: anything goes.
func cold(m map[int]int) int { return m[1] }

func probe() {}

func probeArg(s sink) { s.m() }
