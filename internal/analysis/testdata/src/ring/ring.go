// Package ring seeds singlewriter violations: an owned scalar written
// off-owner, an owned atomic mutated off-owner (Loads stay legal
// anywhere), plus the allowed cases — the owner itself, a helper the
// call graph proves is loop-only, and a waived access.
package ring

import "sync/atomic"

type engine struct {
	cursor int           //pktbuf:owner=engine.loop
	seq    atomic.Uint64 //pktbuf:owner=engine.loop
	free   int
}

func (e *engine) loop() {
	e.cursor++
	e.step()
	e.seq.Store(e.seq.Load() + 1)
}

// step is called only from loop, so domination admits it.
func (e *engine) step() {
	e.cursor = 0
}

func (e *engine) rogue() {
	e.cursor = 1     // want "owned by engine.loop"
	_ = e.cursor     // want "owned by engine.loop"
	e.seq.Store(2)   // want "owned by engine.loop"
	_ = e.seq.Load() // atomic Load: legal from any goroutine
	e.free = 9       // unannotated field: not checked
}

func (e *engine) waivedPeek() int {
	return e.cursor //pktbuf:allow singlewriter fixture: loop is provably parked here
}
