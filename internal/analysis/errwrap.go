package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrWrap closes the error-taxonomy loop PR 2 started: every error
// value returned across the public pktbuf/... API boundary must be
// errors.Is-matchable against a typed sentinel. Concretely, each
// error returned by an exported function or method of a public
// package must be, at every return site:
//
//   - nil,
//   - a named package-level error variable (a sentinel — the module's
//     Err* taxonomy, or a well-known stdlib sentinel such as io.EOF
//     that a protocol contract requires verbatim),
//   - fmt.Errorf with a %w verb (wrapping preserves Is matching),
//   - a value produced by another function of this module (whose own
//     returns are held to the same rule, so safety is inductive), or
//   - a local variable all of whose assignments satisfy the above.
//
// Raw errors.New(...) at a return site, fmt.Errorf without %w, and
// errors from external packages (stdlib, net, io) returned without
// wrapping are reported: they cross the boundary with no sentinel for
// clients to dispatch on. Wrap them ("%w" keeps the original
// matchable) or name them as an exported sentinel.
//
// The analyzer only fires on public module packages: import paths
// containing a "pktbuf" element and no "internal" element, excluding
// main packages.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "public API errors must wrap or be typed sentinels",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) error {
	if !publicModulePackage(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedBoundary(pass, fd) {
				continue
			}
			checkFuncErrors(pass, fd)
		}
	}
	return nil
}

// publicModulePackage reports whether pkg is part of the module's
// public API surface.
func publicModulePackage(pkg *types.Package) bool {
	if pkg.Name() == "main" {
		return false
	}
	hasPktbuf := false
	for _, seg := range strings.Split(pkg.Path(), "/") {
		switch seg {
		case "internal":
			return false
		case "pktbuf":
			hasPktbuf = true
		}
	}
	return hasPktbuf
}

// exportedBoundary reports whether fd is part of the exported API: an
// exported function, or an exported method on an exported type.
func exportedBoundary(pass *Pass, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil {
		return true
	}
	_, qual := FuncName(fd)
	typeName, _, _ := strings.Cut(qual, ".")
	return token.IsExported(typeName)
}

// checkFuncErrors verifies every error-typed result at every return
// site of fd.
func checkFuncErrors(pass *Pass, fd *ast.FuncDecl) {
	sig, ok := pass.TypesInfo.TypeOf(fd.Name).(*types.Signature)
	if !ok {
		return
	}
	results := sig.Results()
	errIdx := make([]int, 0, results.Len())
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			errIdx = append(errIdx, i)
		}
	}
	if len(errIdx) == 0 {
		return
	}

	c := &errChecker{pass: pass, fn: fd}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals run on their own schedule; not API returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		switch {
		case len(ret.Results) == 0:
			// Naked return: the named error results' assignments are
			// checked by assignment scanning below.
			for _, i := range errIdx {
				if v := results.At(i); v.Name() != "" {
					c.checkNamedResult(v)
				}
			}
		case len(ret.Results) == 1 && results.Len() > 1:
			// return f() expanding to multiple results.
			c.checkExpr(ret.Results[0])
		default:
			for _, i := range errIdx {
				if i < len(ret.Results) {
					c.checkExpr(ret.Results[i])
				}
			}
		}
		return true
	})
}

type errChecker struct {
	pass *Pass
	fn   *ast.FuncDecl
	// visiting guards against assignment cycles (x = y; y = x).
	visiting map[types.Object]bool
}

func (c *errChecker) report(pos token.Pos, format string, args ...any) {
	_, qual := FuncName(c.fn)
	c.pass.Reportf(pos, "errwrap %s: "+format, append([]any{qual}, args...)...)
}

// checkExpr verifies one returned error expression.
func (c *errChecker) checkExpr(e ast.Expr) {
	if msg, pos := c.unsafeReason(e); msg != "" {
		c.report(pos, "%s", msg)
	}
}

// checkNamedResult verifies every assignment to a named error result.
func (c *errChecker) checkNamedResult(v *types.Var) {
	obj := types.Object(v)
	c.checkAssignments(obj)
}

// unsafeReason classifies an error expression; it returns a non-empty
// message and position when the expression can cross the API boundary
// without a sentinel to match.
func (c *errChecker) unsafeReason(e ast.Expr) (string, token.Pos) {
	e = ast.Unparen(e)
	info := c.pass.TypesInfo
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return "", token.NoPos
		}
		obj := info.Uses[e]
		if obj == nil {
			return "", token.NoPos
		}
		if isSentinel(obj) {
			return "", token.NoPos
		}
		// A local: every assignment to it must be safe.
		c.checkAssignments(obj)
		return "", token.NoPos
	case *ast.SelectorExpr:
		if obj := info.Uses[e.Sel]; obj != nil && isSentinel(obj) {
			return "", token.NoPos // pkg.ErrFoo
		}
		return "", token.NoPos // field reads carry stored errors; assume wrapped at the store
	case *ast.CallExpr:
		return c.callReason(e)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// &someError{...}: a typed error; safe if the type is ours.
			if t := info.TypeOf(e); t != nil && declaredInModule(t, c.pass.Pkg) {
				return "", token.NoPos
			}
			return "address of non-module error value returned across API", e.Pos()
		}
	}
	return "", token.NoPos
}

// callReason classifies a call expression producing a returned error.
func (c *errChecker) callReason(call *ast.CallExpr) (string, token.Pos) {
	info := c.pass.TypesInfo
	var callee *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil || callee.Pkg() == nil {
		return "", token.NoPos // builtin, conversion or dynamic call
	}
	path := callee.Pkg().Path()
	full := path + "." + callee.Name()
	switch full {
	case "fmt.Errorf":
		if fmtHasWrapVerb(info, call) {
			return "", token.NoPos
		}
		return "fmt.Errorf without %w loses errors.Is matching", call.Pos()
	case "errors.New":
		return "errors.New at API boundary: declare a sentinel instead", call.Pos()
	case "errors.Join":
		return "", token.NoPos // Join preserves Is over its operands
	}
	if sameModule(path, c.pass.Pkg.Path()) {
		return "", token.NoPos // inductively checked in its own package
	}
	if recvInModule(callee, c.pass.Pkg) {
		return "", token.NoPos
	}
	return "returns error from " + path + " unwrapped: wrap with %w or map to a sentinel", call.Pos()
}

// checkAssignments walks the function body for assignments to obj and
// classifies each right-hand side.
func (c *errChecker) checkAssignments(obj types.Object) {
	if c.visiting == nil {
		c.visiting = make(map[types.Object]bool)
	}
	if c.visiting[obj] {
		return
	}
	c.visiting[obj] = true
	info := c.pass.TypesInfo
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			lobj := info.Defs[id]
			if lobj == nil {
				lobj = info.Uses[id]
			}
			if lobj != obj {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0] // multi-value call; classify the call
			}
			if rhs != nil {
				if msg, pos := c.unsafeReason(rhs); msg != "" {
					c.report(pos, "%s", msg)
				}
			}
		}
		return true
	})
}

// isSentinel reports whether obj is a package-level variable of type
// error — a named sentinel clients can errors.Is against.
func isSentinel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false
	}
	return isErrorType(v.Type())
}

// fmtHasWrapVerb reports whether the call's constant format string
// contains a %w verb; a non-constant format is assumed wrapping (the
// caller made a deliberate choice the analyzer cannot see through).
func fmtHasWrapVerb(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return true
	}
	s := tv.Value.String()
	return strings.Contains(s, "%w")
}

// declaredInModule reports whether t (after pointer peeling) is a
// named type declared in pkg's module.
func declaredInModule(t types.Type, pkg *types.Package) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return sameModule(named.Obj().Pkg().Path(), pkg.Path())
}

// recvInModule reports whether callee is a method whose receiver type
// is declared in pkg's module.
func recvInModule(callee *types.Func, pkg *types.Package) bool {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return declaredInModule(sig.Recv().Type(), pkg)
}
