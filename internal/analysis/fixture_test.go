package analysis_test

// An analysistest-shaped harness with no golang.org/x/tools
// dependency: fixture packages live under testdata/src/<dir>/, and
// every line expecting a diagnostic carries a trailing
// `// want "regexp"` comment. The test fails on unexpected
// diagnostics, on unmatched expectations, and on diagnostics whose
// message does not match the expectation's pattern — the same
// contract analysistest enforces.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// fixtureImporter resolves stdlib imports from source and fabricates
// empty packages for anything else (fixtures only need non-stdlib
// imports to *exist*, e.g. the publicapi fixture's blank import of a
// fake internal package).
type fixtureImporter struct {
	std types.Importer
}

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if p, err := fi.std.Import(path); err == nil {
		return p, nil
	}
	name := path[strings.LastIndex(path, "/")+1:]
	p := types.NewPackage(path, name)
	p.MarkComplete()
	return p, nil
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// runFixture typechecks testdata/src/<dir> under the given import
// path and checks the analyzer's diagnostics against the fixture's
// want comments.
func runFixture(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	pattern := filepath.Join("testdata", "src", dir, "*.go")
	names, err := filepath.Glob(pattern)
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files match %s", pattern)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	wants := make(map[analysis.LineKey][]*expectation)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), m[1], err)
				}
				p := fset.Position(c.Pos())
				k := analysis.LineKey{File: p.Filename, Line: p.Line}
				wants[k] = append(wants[k], &expectation{re: re})
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: fixtureImporter{std: importer.ForCompiler(fset, "source", nil)}}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	var unexpected []string
	pass := &analysis.Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report: func(d analysis.Diagnostic) {
			p := fset.Position(d.Pos)
			k := analysis.LineKey{File: p.Filename, Line: p.Line}
			for _, exp := range wants[k] {
				if !exp.matched && exp.re.MatchString(d.Message) {
					exp.matched = true
					return
				}
			}
			unexpected = append(unexpected, fmt.Sprintf("%s: %s", p, d.Message))
		},
	}
	if err := analysis.Run(a, pass); err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	for _, d := range unexpected {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for k, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none",
					k.File, k.Line, exp.re)
			}
		}
	}
}

func TestHotPathFixture(t *testing.T) {
	runFixture(t, "hot", "fixmod/internal/hot", analysis.HotPath)
}

func TestSingleWriterFixture(t *testing.T) {
	runFixture(t, "ring", "fixmod/internal/ring", analysis.SingleWriter)
}

func TestErrWrapFixture(t *testing.T) {
	runFixture(t, "errwrap", "fixmod/pktbuf/thing", analysis.ErrWrap)
}

func TestPublicAPIFixture(t *testing.T) {
	runFixture(t, "publicapi", "fixmod/cmd/demo", analysis.PublicAPI)
}
