package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The annotation contract. All directives are standard Go directive
// comments (no space after //, so gofmt leaves them alone and godoc
// hides them):
//
//	//pktbuf:hotpath
//	    On a function or method declaration (in its doc comment
//	    group). The function body must stay free of allocation-prone
//	    constructs (hotpath-noalloc) and of compiler-reported heap
//	    escapes (cmd/pktbufvet -escapes). The check is per-function,
//	    not transitive: annotate each function on the hot path.
//
//	//pktbuf:owner=f1,f2
//	    On a struct field (doc comment or trailing same-line
//	    comment). The field may be accessed only from the named
//	    functions — bare names or Type.Method — and from helpers the
//	    call graph proves are called exclusively from them. Fields of
//	    sync/atomic types relax reads: .Load() is allowed anywhere,
//	    only mutations (Store/Add/Swap/CompareAndSwap) are owner-only,
//	    which is exactly the SPSC-ring contract.
//
//	//pktbuf:allow <analyzer> <reason>
//	    On the offending line: waives that analyzer's findings for
//	    the line. The reason is mandatory; an empty reason is itself
//	    reported by the drivers (see ParseWaiver).
const (
	hotpathDirective = "pktbuf:hotpath"
	ownerDirective   = "pktbuf:owner="
	allowDirective   = "pktbuf:allow "
)

// HotpathFuncs returns the function declarations annotated
// //pktbuf:hotpath across files; the escape gate shares it with the
// HotPath analyzer.
func HotpathFuncs(files []*ast.File) []*ast.FuncDecl {
	return hotpathFuncs(files)
}

// hotpathFuncs returns the function declarations annotated
// //pktbuf:hotpath across files.
func hotpathFuncs(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			if hasDirective(fd.Doc, hotpathDirective) {
				out = append(out, fd)
			}
		}
	}
	return out
}

// hasDirective reports whether the comment group contains the exact
// directive (as a whole comment line).
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	for _, c := range cg.List {
		if strings.TrimPrefix(c.Text, "//") == directive {
			return true
		}
	}
	return false
}

// directiveArg returns the argument of a "//pktbuf:name=arg"
// directive in the comment group, or "" when absent.
func directiveArg(cg *ast.CommentGroup, prefix string) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		if strings.HasPrefix(text, prefix) {
			return strings.TrimSpace(strings.TrimPrefix(text, prefix))
		}
	}
	return ""
}

// FuncName returns the short and qualified ("Type.Method") names of a
// declaration; for plain functions both are the bare name.
func FuncName(fd *ast.FuncDecl) (short, qualified string) {
	short = fd.Name.Name
	qualified = short
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			qualified = id.Name + "." + short
		}
	}
	return short, qualified
}

// A LineKey identifies one source line; waiver suppression and the
// fixture harness key diagnostics by it.
type LineKey struct {
	File string
	Line int
}

// waivedLines collects the lines carrying a //pktbuf:allow waiver for
// the named analyzer.
func waivedLines(fset *token.FileSet, files []*ast.File, analyzer string) map[LineKey]bool {
	out := make(map[LineKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := ParseWaiver(c.Text)
				if !ok || name != analyzer {
					continue
				}
				p := fset.Position(c.Pos())
				out[LineKey{p.Filename, p.Line}] = true
			}
		}
	}
	return out
}

// ParseWaiver parses a "//pktbuf:allow <analyzer> <reason>" comment
// and returns the analyzer name. A waiver without a non-empty reason
// is invalid and returns ok=false, so drivers surface it instead of
// silently honouring it.
func ParseWaiver(comment string) (analyzer string, ok bool) {
	text := strings.TrimPrefix(comment, "//")
	if !strings.HasPrefix(text, allowDirective) {
		return "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
	name, reason, _ := strings.Cut(rest, " ")
	if name == "" || strings.TrimSpace(reason) == "" {
		return "", false
	}
	return name, true
}
