package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cell"
)

func TestCellCount(t *testing.T) {
	tests := []struct{ bytes, want int }{
		{0, 1}, {-5, 1}, {1, 1}, {CellPayload, 1}, {CellPayload + 1, 2},
		{3 * CellPayload, 3}, {1500, (1500 + CellPayload - 1) / CellPayload},
	}
	for _, tt := range tests {
		if got := CellCount(tt.bytes); got != tt.want {
			t.Errorf("CellCount(%d) = %d, want %d", tt.bytes, got, tt.want)
		}
	}
}

func TestSegmentBasics(t *testing.T) {
	var s Segmenter
	payload := make([]byte, 2*CellPayload+10)
	for i := range payload {
		payload[i] = byte(i)
	}
	cells := s.Segment(Packet{Flow: 7, Payload: payload})
	if len(cells) != 3 {
		t.Fatalf("got %d cells", len(cells))
	}
	if !cells[0].Head || cells[1].Head || cells[2].Head {
		t.Error("head flags wrong")
	}
	if cells[0].Cells != 3 {
		t.Errorf("Cells = %d", cells[0].Cells)
	}
	var joined []byte
	for _, c := range cells {
		if c.Flow != 7 {
			t.Error("flow lost")
		}
		joined = append(joined, c.Payload...)
	}
	if !bytes.Equal(joined, payload) {
		t.Error("payload mangled")
	}
	if s.Segmented() != 3 {
		t.Errorf("Segmented = %d", s.Segmented())
	}
}

func TestSegmentEmptyPacket(t *testing.T) {
	var s Segmenter
	cells := s.Segment(Packet{Flow: 1})
	if len(cells) != 1 || !cells[0].Head || len(cells[0].Payload) != 0 {
		t.Errorf("empty packet cells = %+v", cells)
	}
}

func TestReassembleRoundTrip(t *testing.T) {
	var s Segmenter
	r := NewReassembler()
	payload := []byte("hello, line card — this packet spans multiple 56-byte cell payloads for sure......")
	cells := s.Segment(Packet{Flow: 3, Payload: payload})
	for i, c := range cells {
		p, err := r.Push(c)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(cells)-1 && p != nil {
			t.Fatal("completed early")
		}
		if i == len(cells)-1 {
			if p == nil {
				t.Fatal("never completed")
			}
			if p.Flow != 3 || !bytes.Equal(p.Payload, payload) {
				t.Errorf("reassembled %+v", p)
			}
		}
	}
	if r.Pending() != 0 || r.Completed() != 1 {
		t.Errorf("Pending=%d Completed=%d", r.Pending(), r.Completed())
	}
}

func TestReassembleInterleavedFlows(t *testing.T) {
	// Cells of different flows may interleave arbitrarily; within a
	// flow they are in order (the buffer guarantees that).
	var s Segmenter
	r := NewReassembler()
	pA := Packet{Flow: 1, Payload: bytes.Repeat([]byte{0xA}, 3*CellPayload)}
	pB := Packet{Flow: 2, Payload: bytes.Repeat([]byte{0xB}, 2*CellPayload)}
	ca, cb := s.Segment(pA), s.Segment(pB)
	order := []SegCell{ca[0], cb[0], ca[1], cb[1], ca[2]}
	var done []Packet
	for _, c := range order {
		p, err := r.Push(c)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			done = append(done, *p)
		}
	}
	if len(done) != 2 || done[0].Flow != 2 || done[1].Flow != 1 {
		t.Fatalf("completion order = %+v", done)
	}
	if !bytes.Equal(done[1].Payload, pA.Payload) || !bytes.Equal(done[0].Payload, pB.Payload) {
		t.Error("payloads mangled")
	}
}

func TestReassembleErrors(t *testing.T) {
	r := NewReassembler()
	// Continuation with no head.
	if _, err := r.Push(SegCell{Flow: 5}); !errors.Is(err, ErrOrphanCell) {
		t.Errorf("err = %v, want ErrOrphanCell", err)
	}
	// Two heads interleaved within one flow.
	if _, err := r.Push(SegCell{Flow: 5, Head: true, Cells: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(SegCell{Flow: 5, Head: true, Cells: 2}); !errors.Is(err, ErrInterleaved) {
		t.Errorf("err = %v, want ErrInterleaved", err)
	}
}

func TestSegmentAppendReusesBacking(t *testing.T) {
	var s Segmenter
	payload := bytes.Repeat([]byte{7}, 4*CellPayload)
	dst := make([]SegCell, 0, 16)
	dst = s.SegmentAppend(dst, Packet{Flow: 1, Payload: payload})
	if len(dst) != 4 {
		t.Fatalf("got %d cells", len(dst))
	}
	allocs := testing.AllocsPerRun(50, func() {
		dst = s.SegmentAppend(dst[:0], Packet{Flow: 1, Payload: payload})
	})
	if allocs != 0 {
		t.Errorf("SegmentAppend into capacity allocated %.1f/op", allocs)
	}
	var joined []byte
	for _, c := range dst {
		joined = append(joined, c.Payload...)
	}
	if !bytes.Equal(joined, payload) {
		t.Error("payload mangled")
	}
}

func TestDenseReassemblerRoundTrip(t *testing.T) {
	var s Segmenter
	r := NewDenseReassembler(4)
	payload := bytes.Repeat([]byte{0xC3}, 3*CellPayload+5)
	cells := s.Segment(Packet{Flow: 2, Payload: payload})
	for i, c := range cells {
		p, ok, err := r.Push(c)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (i == len(cells)-1) {
			t.Fatalf("cell %d: ok=%v", i, ok)
		}
		if ok && (p.Flow != 2 || !bytes.Equal(p.Payload, payload)) {
			t.Errorf("reassembled %+v", p)
		}
	}
	if r.Pending() != 0 || r.Completed() != 1 {
		t.Errorf("Pending=%d Completed=%d", r.Pending(), r.Completed())
	}
}

func TestDenseReassemblerErrors(t *testing.T) {
	r := NewDenseReassembler(2)
	if _, _, err := r.Push(SegCell{Flow: 5, Head: true, Cells: 1}); !errors.Is(err, ErrFlowRange) {
		t.Errorf("err = %v, want ErrFlowRange", err)
	}
	if _, _, err := r.Push(SegCell{Flow: -1, Head: true, Cells: 1}); !errors.Is(err, ErrFlowRange) {
		t.Errorf("err = %v, want ErrFlowRange", err)
	}
	if _, _, err := r.Push(SegCell{Flow: 0}); !errors.Is(err, ErrOrphanCell) {
		t.Errorf("err = %v, want ErrOrphanCell", err)
	}
	if _, _, err := r.Push(SegCell{Flow: 0, Head: true, Cells: 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Push(SegCell{Flow: 0, Head: true, Cells: 2}); !errors.Is(err, ErrInterleaved) {
		t.Errorf("err = %v, want ErrInterleaved", err)
	}
}

// TestDenseReassemblerZeroAllocSteadyState: once a flow has seen its
// largest packet, reassembling further packets allocates nothing.
func TestDenseReassemblerZeroAllocSteadyState(t *testing.T) {
	var s Segmenter
	r := NewDenseReassembler(2)
	payload := bytes.Repeat([]byte{9}, 5*CellPayload)
	cells := make([]SegCell, 0, 8)
	push := func() {
		cells = s.SegmentAppend(cells[:0], Packet{Flow: 1, Payload: payload})
		for _, c := range cells {
			if _, _, err := r.Push(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	push() // warm the flow's payload buffer
	if allocs := testing.AllocsPerRun(50, push); allocs != 0 {
		t.Errorf("steady-state dense reassembly allocated %.1f/op", allocs)
	}
}

// TestPropertySegmentReassembleIdentity: segmenting then reassembling
// any packet mix (interleaved across flows, in-order within flows) is
// the identity.
func TestPropertySegmentReassembleIdentity(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 32 {
			sizes = sizes[:32]
		}
		rng := rand.New(rand.NewSource(seed))
		var s Segmenter
		r := NewReassembler()

		// One packet per flow id (flows don't interleave packets).
		type stream struct {
			cells []SegCell
			next  int
			want  Packet
		}
		var streams []*stream
		for i, size := range sizes {
			payload := make([]byte, int(size)%2000)
			rng.Read(payload)
			p := Packet{Flow: cell.QueueID(i), Payload: payload}
			streams = append(streams, &stream{cells: s.Segment(p), want: p})
		}
		var got []Packet
		for remaining := true; remaining; {
			remaining = false
			// Random interleave: advance a random stream one cell.
			perm := rng.Perm(len(streams))
			advanced := false
			for _, i := range perm {
				st := streams[i]
				if st.next >= len(st.cells) {
					continue
				}
				remaining = true
				if !advanced {
					p, err := r.Push(st.cells[st.next])
					if err != nil {
						return false
					}
					st.next++
					advanced = true
					if p != nil {
						got = append(got, *p)
					}
				}
			}
		}
		if len(got) != len(streams) {
			return false
		}
		byFlow := map[cell.QueueID]Packet{}
		for _, p := range got {
			byFlow[p.Flow] = p
		}
		for _, st := range streams {
			p, ok := byFlow[st.want.Flow]
			if !ok || !bytes.Equal(p.Payload, st.want.Payload) {
				return false
			}
		}
		return r.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
