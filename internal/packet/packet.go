// Package packet implements the cell segmentation and reassembly
// layer of §2: "packets in the router are internally fragmented into
// fixed-length 64 byte units that we call cells. Cells are handled as
// independent units, although they are reassembled at the output port
// before packet transmission."
//
// A Segmenter slices variable-length IP packets into cells tagged with
// the packet's flow; a Reassembler collects in-order cells per flow
// and emits completed packets. Because the packet buffer guarantees
// per-VOQ FIFO delivery, reassembly needs no sequence numbers beyond a
// per-packet cell count carried in the first cell's header — exactly
// the discipline real line cards use.
package packet

import (
	"errors"
	"fmt"

	"repro/internal/cell"
)

// CellPayload is the number of packet bytes one cell carries after
// the internal header (flow id, cell count, length). The paper's cell
// is 64 bytes; we model an 8-byte internal header.
const CellPayload = cell.Size - 8

// Packet is a variable-length unit entering or leaving the router.
type Packet struct {
	// Flow identifies the (output port, class) stream — the VOQ.
	Flow cell.QueueID
	// Payload is the packet body.
	Payload []byte
}

// Errors returned by the reassemblers.
var (
	ErrInterleaved = errors.New("packet: cells of two packets interleaved within one flow")
	ErrOrphanCell  = errors.New("packet: continuation cell without a packet head")
	ErrFlowRange   = errors.New("packet: flow id outside the reassembler's dense range")
)

// SegCell is one segmented unit: the cell-level identity used by the
// buffer plus the reassembly header fields.
type SegCell struct {
	// Flow is the VOQ the cell travels in.
	Flow cell.QueueID
	// Head marks the first cell of a packet; Cells is the packet's
	// total cell count (valid on the head cell).
	Head  bool
	Cells int
	// Payload is this cell's slice of the packet body.
	Payload []byte
}

// Segmenter slices packets into cells.
type Segmenter struct {
	// segmented counts cells produced, for stats.
	segmented uint64
}

// Segment fragments p into ceil(len/CellPayload) cells (at least one:
// zero-length packets still occupy a head cell, as on real hardware).
func (s *Segmenter) Segment(p Packet) []SegCell {
	return s.SegmentAppend(make([]SegCell, 0, CellCount(len(p.Payload))), p)
}

// SegmentAppend fragments p like Segment but appends the cells to dst
// and returns the extended slice. It allocates only when dst lacks
// capacity, so a caller reusing its backing array segments packets
// with zero steady-state allocation. Cell payloads alias p.Payload.
func (s *Segmenter) SegmentAppend(dst []SegCell, p Packet) []SegCell {
	n := CellCount(len(p.Payload))
	for i := 0; i < n; i++ {
		lo := i * CellPayload
		hi := lo + CellPayload
		if hi > len(p.Payload) {
			hi = len(p.Payload)
		}
		dst = append(dst, SegCell{
			Flow:    p.Flow,
			Head:    i == 0,
			Cells:   n,
			Payload: p.Payload[lo:hi],
		})
	}
	s.segmented += uint64(n)
	return dst
}

// Segmented returns the number of cells produced so far.
func (s *Segmenter) Segmented() uint64 { return s.segmented }

// CellCount returns how many cells Segment would produce for a packet
// of the given byte length.
func CellCount(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + CellPayload - 1) / CellPayload
}

// flowState is a partially reassembled packet.
type flowState struct {
	want    int
	have    int
	payload []byte
}

// Reassembler rebuilds packets from per-flow in-order cell streams
// (one Reassembler per output port).
type Reassembler struct {
	flows map[cell.QueueID]*flowState
	done  uint64
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{flows: make(map[cell.QueueID]*flowState)}
}

// Push accepts the next cell of a flow. It returns the completed
// packet when the cell finishes one, or nil.
func (r *Reassembler) Push(c SegCell) (*Packet, error) {
	st := r.flows[c.Flow]
	if c.Head {
		if st != nil {
			return nil, fmt.Errorf("%w: flow %d (packet of %d cells had %d/%d)",
				ErrInterleaved, c.Flow, c.Cells, st.have, st.want)
		}
		st = &flowState{want: c.Cells}
		r.flows[c.Flow] = st
	} else if st == nil {
		return nil, fmt.Errorf("%w: flow %d", ErrOrphanCell, c.Flow)
	}
	st.payload = append(st.payload, c.Payload...)
	st.have++
	if st.have < st.want {
		return nil, nil
	}
	delete(r.flows, c.Flow)
	r.done++
	return &Packet{Flow: c.Flow, Payload: st.payload}, nil
}

// Pending returns the number of flows with a partially reassembled
// packet.
func (r *Reassembler) Pending() int { return len(r.flows) }

// Completed returns the number of packets emitted.
func (r *Reassembler) Completed() uint64 { return r.done }

// denseFlow is one flow's slot in the dense reassembly arena. The
// payload buffer is retained across packets so steady-state reassembly
// performs no allocation once every flow has seen its largest packet.
type denseFlow struct {
	want, have int
	active     bool
	payload    []byte
}

// DenseReassembler is the arena variant of Reassembler for callers —
// such as the router — whose flow ids are ordinals in [0, flows). It
// replaces the per-flow map and per-packet allocations with a dense
// slice of reusable flow states, matching the dense-arena discipline
// of the core buffer.
type DenseReassembler struct {
	flows   []denseFlow
	pending int
	done    uint64
}

// NewDenseReassembler returns a reassembler for flow ids in
// [0, flows).
func NewDenseReassembler(flows int) *DenseReassembler {
	return &DenseReassembler{flows: make([]denseFlow, flows)}
}

// Push accepts the next cell of a flow. When the cell completes a
// packet it returns the packet and ok=true. The returned payload
// aliases the flow's reused buffer: it is valid until the next packet
// of the same flow completes, so callers that retain it must copy.
func (r *DenseReassembler) Push(c SegCell) (Packet, bool, error) {
	if c.Flow < 0 || int(c.Flow) >= len(r.flows) {
		return Packet{}, false, fmt.Errorf("%w: %d (dense range [0, %d))", ErrFlowRange, c.Flow, len(r.flows))
	}
	st := &r.flows[c.Flow]
	if c.Head {
		if st.active {
			return Packet{}, false, fmt.Errorf("%w: flow %d (packet of %d cells had %d/%d)",
				ErrInterleaved, c.Flow, c.Cells, st.have, st.want)
		}
		st.active = true
		st.want = c.Cells
		st.have = 0
		st.payload = st.payload[:0]
		r.pending++
	} else if !st.active {
		return Packet{}, false, fmt.Errorf("%w: flow %d", ErrOrphanCell, c.Flow)
	}
	st.payload = append(st.payload, c.Payload...)
	st.have++
	if st.have < st.want {
		return Packet{}, false, nil
	}
	st.active = false
	r.pending--
	r.done++
	return Packet{Flow: c.Flow, Payload: st.payload}, true, nil
}

// Pending returns the number of flows with a partially reassembled
// packet.
func (r *DenseReassembler) Pending() int { return r.pending }

// Completed returns the number of packets emitted.
func (r *DenseReassembler) Completed() uint64 { return r.done }
