package dss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/dram"
)

// TestPropertyNoConflictingIssues: whatever the request stream, the
// DSA never issues two requests to one bank within the access time,
// and same-bank requests issue in age order.
func TestPropertyNoConflictingIssues(t *testing.T) {
	f := func(seed int64, capRaw, accessRaw uint8) bool {
		capacity := int(capRaw)%30 + 2
		access := int(accessRaw)%12 + 2
		s := New(capacity)
		rng := rand.New(rand.NewSource(seed))

		type issueRec struct {
			slot cell.Slot
			age  cell.Slot
		}
		lastIssue := map[dram.BankID]issueRec{}
		slot := cell.Slot(0)
		for c := 0; c < 400; c++ {
			for s.CanEnqueue() && rng.Intn(3) > 0 {
				_ = s.Enqueue(Request{
					Bank:     dram.BankID(rng.Intn(6)),
					Enqueued: slot,
				})
			}
			for _, r := range s.Cycle(slot, 2, access) {
				if prev, ok := lastIssue[r.Bank]; ok {
					if slot-prev.slot < cell.Slot(access) {
						return false // bank conflict
					}
					if r.Enqueued < prev.age {
						return false // same-bank age inversion
					}
				}
				lastIssue[r.Bank] = issueRec{slot: slot, age: r.Enqueued}
			}
			slot += 2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStatsConsistency: issued ≤ enqueued, occupancy equals
// enqueued − issued at all times.
func TestPropertyStatsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		s := New(8)
		rng := rand.New(rand.NewSource(seed))
		slot := cell.Slot(0)
		for c := 0; c < 200; c++ {
			if s.CanEnqueue() && rng.Intn(2) == 0 {
				_ = s.Enqueue(Request{Bank: dram.BankID(rng.Intn(3)), Enqueued: slot})
			}
			s.Cycle(slot, 1, 4)
			st := s.Stats()
			if st.Issued > st.Enqueued {
				return false
			}
			if int(st.Enqueued-st.Issued) != s.Len() {
				return false
			}
			slot += 2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
