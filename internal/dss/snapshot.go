package dss

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/dram"
	"repro/internal/frame"
)

// Snapshot serializes the scheduler through the trace frame codec: the
// age-ordered Requests Register verbatim (including staged write
// payloads), the live ORR bank locks, and the accumulated statistics.
// The reusable issue buffer is scratch and is not framed.
func (s *Scheduler) Snapshot(w *frame.Writer) {
	w.Begin("dss")
	w.Attr("rr", int64(len(s.rr)))
	w.Attr("orr", int64(len(s.orr)))
	w.Attr("enqueued", int64(s.stats.Enqueued))
	w.Attr("issued", int64(s.stats.Issued))
	w.Attr("maxocc", int64(s.stats.MaxOccupancy))
	w.Attr("maxskips", int64(s.stats.MaxSkips))
	w.Attr("maxdelay", int64(s.stats.MaxDelaySlots))
	w.Attr("idle", int64(s.stats.IdleCycles))
	w.Attr("empty", int64(s.stats.EmptyCycles))
	for i := range s.rr {
		r := &s.rr[i]
		row := make([]int64, 0, 7+2*len(r.Cells))
		row = append(row, int64(r.Queue), int64(r.Dir), int64(r.Ordinal),
			int64(r.Bank), int64(r.Enqueued), int64(r.Skips), int64(len(r.Cells)))
		for _, c := range r.Cells {
			row = append(row, int64(c.Queue), int64(c.Seq))
		}
		w.Row(row...)
	}
	w.Begin("dss-orr")
	for _, l := range s.orr {
		w.Row(int64(l.bank), int64(l.until))
	}
}

// Restore loads a snapshot written by Snapshot into a freshly
// constructed scheduler of the same capacity and policy.
func (s *Scheduler) Restore(r *frame.Reader) error {
	if err := r.Expect("dss"); err != nil {
		return err
	}
	rr, err := r.NeedAttr("rr")
	if err != nil {
		return err
	}
	orr, err := r.NeedAttr("orr")
	if err != nil {
		return err
	}
	for _, f := range []struct {
		key string
		dst any
	}{
		{"enqueued", &s.stats.Enqueued}, {"issued", &s.stats.Issued},
		{"maxocc", &s.stats.MaxOccupancy}, {"maxskips", &s.stats.MaxSkips},
		{"maxdelay", &s.stats.MaxDelaySlots}, {"idle", &s.stats.IdleCycles},
		{"empty", &s.stats.EmptyCycles},
	} {
		v, err := r.NeedAttr(f.key)
		if err != nil {
			return err
		}
		switch dst := f.dst.(type) {
		case *uint64:
			*dst = uint64(v)
		case *int:
			*dst = int(v)
		case *cell.Slot:
			*dst = cell.Slot(v)
		}
	}
	if int(rr) > s.capacity {
		return fmt.Errorf("%w: dss rr holds %d, capacity %d", frame.ErrFrame, rr, s.capacity)
	}
	for i := int64(0); i < rr; i++ {
		row, err := r.NeedRow(-1)
		if err != nil {
			return err
		}
		if len(row) < 7 {
			return fmt.Errorf("%w: dss rr row too short", frame.ErrFrame)
		}
		nc := int(row[6])
		if len(row) != 7+2*nc {
			return fmt.Errorf("%w: dss rr row: want %d cells", frame.ErrFrame, nc)
		}
		req := Request{
			Queue:    cell.PhysQueueID(row[0]),
			Dir:      Direction(row[1]),
			Ordinal:  uint64(row[2]),
			Bank:     dram.BankID(row[3]),
			Enqueued: cell.Slot(row[4]),
			Skips:    int(row[5]),
		}
		if nc > 0 {
			req.Cells = make([]cell.Cell, nc)
			for k := range req.Cells {
				req.Cells[k] = cell.Cell{Queue: cell.QueueID(row[7+2*k]), Seq: uint64(row[8+2*k])}
			}
		}
		s.rr = append(s.rr, req)
	}
	if err := r.Expect("dss-orr"); err != nil {
		return err
	}
	for i := int64(0); i < orr; i++ {
		row, err := r.NeedRow(2)
		if err != nil {
			return err
		}
		s.orr = append(s.orr, lock{bank: dram.BankID(row[0]), until: cell.Slot(row[1])})
	}
	return nil
}
