package dss

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/dram"
)

func req(q int, dir Direction, bank dram.BankID, at cell.Slot) Request {
	return Request{Queue: cell.PhysQueueID(q), Dir: dir, Bank: bank, Enqueued: at}
}

func TestEnqueueCapacity(t *testing.T) {
	s := New(2)
	if !s.CanEnqueue() {
		t.Fatal("fresh scheduler cannot enqueue")
	}
	if err := s.Enqueue(req(0, Read, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(req(1, Read, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if s.CanEnqueue() {
		t.Error("CanEnqueue true at capacity")
	}
	if err := s.Enqueue(req(2, Read, 2, 0)); !errors.Is(err, ErrRRFull) {
		t.Errorf("err = %v, want ErrRRFull", err)
	}
	if got := s.Stats().MaxOccupancy; got != 2 {
		t.Errorf("MaxOccupancy = %d, want 2", got)
	}
}

func TestZeroCapacityScheduler(t *testing.T) {
	s := New(0)
	if s.CanEnqueue() {
		t.Error("zero-capacity scheduler accepts requests")
	}
	if err := s.Enqueue(req(0, Read, 0, 0)); !errors.Is(err, ErrRRFull) {
		t.Errorf("err = %v", err)
	}
	s2 := New(-5)
	if s2.Capacity() != 0 {
		t.Errorf("negative capacity clamped to %d", s2.Capacity())
	}
}

func TestCycleOldestFirst(t *testing.T) {
	s := New(8)
	for i := 0; i < 3; i++ {
		if err := s.Enqueue(req(i, Read, dram.BankID(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Cycle(0, 1, 4)
	if len(got) != 1 || got[0].Queue != 0 {
		t.Fatalf("Cycle issued %v, want oldest (queue 0)", got)
	}
}

func TestCycleSkipsLockedBank(t *testing.T) {
	s := New(8)
	// Request to bank 0 issues at slot 0, locking bank 0 for 4 slots.
	if err := s.Enqueue(req(0, Read, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Cycle(0, 1, 4)); n != 1 {
		t.Fatal("first issue failed")
	}
	// Two more requests: oldest targets the locked bank 0, younger
	// targets bank 1. The younger one must issue and the older one's
	// skip counter must increment.
	if err := s.Enqueue(req(1, Read, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(req(2, Write, 1, 1)); err != nil {
		t.Fatal(err)
	}
	got := s.Cycle(2, 1, 4)
	if len(got) != 1 || got[0].Queue != 2 {
		t.Fatalf("Cycle = %v, want queue 2 (bank 1)", got)
	}
	// After the lock expires, the skipped request issues with Skips=1.
	got = s.Cycle(4, 1, 4)
	if len(got) != 1 || got[0].Queue != 1 || got[0].Skips != 1 {
		t.Fatalf("Cycle = %+v, want queue 1 with Skips=1", got)
	}
	if s.Stats().MaxSkips != 1 {
		t.Errorf("MaxSkips = %d, want 1", s.Stats().MaxSkips)
	}
}

func TestCycleAllLockedIdles(t *testing.T) {
	s := New(8)
	if err := s.Enqueue(req(0, Read, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Cycle(0, 1, 10)); n != 1 {
		t.Fatal("issue failed")
	}
	if err := s.Enqueue(req(1, Read, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if got := s.Cycle(2, 1, 10); got != nil {
		t.Fatalf("Cycle = %v, want nil (bank locked)", got)
	}
	if s.Stats().IdleCycles != 1 {
		t.Errorf("IdleCycles = %d, want 1", s.Stats().IdleCycles)
	}
	// Empty cycles counted separately.
	s2 := New(4)
	s2.Cycle(0, 1, 4)
	if s2.Stats().EmptyCycles != 1 {
		t.Errorf("EmptyCycles = %d, want 1", s2.Stats().EmptyCycles)
	}
}

func TestCycleBudgetTwoDistinctBanks(t *testing.T) {
	s := New(8)
	if err := s.Enqueue(req(0, Read, 5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(req(1, Write, 5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(req(2, Write, 6, 0)); err != nil {
		t.Fatal(err)
	}
	got := s.Cycle(0, 2, 4)
	if len(got) != 2 || got[0].Queue != 0 || got[1].Queue != 2 {
		t.Fatalf("Cycle = %v, want queues 0 and 2 (same-bank pair split)", got)
	}
	// The same-cycle selection locked bank 5; queue 1 waits.
	if got := s.Cycle(2, 2, 4); got != nil {
		t.Fatalf("Cycle = %v, want nil", got)
	}
	got = s.Cycle(4, 2, 4)
	if len(got) != 1 || got[0].Queue != 1 {
		t.Fatalf("Cycle = %v, want queue 1", got)
	}
}

func TestORRExpiry(t *testing.T) {
	s := New(4)
	if err := s.Enqueue(req(0, Read, 2, 0)); err != nil {
		t.Fatal(err)
	}
	s.Cycle(0, 1, 8)
	if got := s.ORRLen(0); got != 1 {
		t.Errorf("ORRLen(0) = %d, want 1", got)
	}
	if got := s.ORRLen(7); got != 1 {
		t.Errorf("ORRLen(7) = %d, want 1", got)
	}
	if got := s.ORRLen(8); got != 0 {
		t.Errorf("ORRLen(8) = %d, want 0", got)
	}
}

func TestMaxDelayTracked(t *testing.T) {
	s := New(4)
	if err := s.Enqueue(req(0, Read, 0, 10)); err != nil {
		t.Fatal(err)
	}
	s.Cycle(25, 1, 4)
	if got := s.Stats().MaxDelaySlots; got != 15 {
		t.Errorf("MaxDelaySlots = %d, want 15", got)
	}
}

// TestConflictFreedomAgainstDRAM drives the scheduler against a real
// DRAM model with a block-cyclic request stream and verifies that no
// issued request ever hits a busy bank — the §5.3 guarantee.
func TestConflictFreedomAgainstDRAM(t *testing.T) {
	const (
		banks    = 16
		perGroup = 4
		access   = 8 // B slots
		blockB   = 2 // b
		queues   = 8 // physical queues, 2 per group
	)
	d := dram.New(dram.Config{
		Banks: banks, BanksPerGroup: perGroup, AccessSlots: access, BlockCells: blockB,
	})
	// Equation (1) with 2Q/G = 2·8/4 = 4 streams, B/b = 4: R = 16.
	s := New(16)
	rng := rand.New(rand.NewSource(42))

	pending := map[cell.PhysQueueID]uint64{} // write seq per queue
	cycle := 0
	for slot := cell.Slot(0); slot < 20000; slot += blockB {
		cycle++
		// MMA side: enqueue up to one write and one read request per
		// cycle, round-robining queues (an adversarial same-queue run
		// is exercised in the core tests).
		if s.CanEnqueue() {
			q := cell.PhysQueueID(rng.Intn(queues))
			ord, bank, err := d.ReserveWrite(q)
			if err == nil {
				seq := pending[q]
				cells := []cell.Cell{
					{Queue: cell.QueueID(q), Seq: seq},
					{Queue: cell.QueueID(q), Seq: seq + 1},
				}
				pending[q] = seq + 2
				if err := s.Enqueue(Request{
					Queue: q, Dir: Write, Ordinal: ord, Bank: bank,
					Cells: cells, Enqueued: slot,
				}); err != nil {
					t.Fatalf("slot %d: %v", slot, err)
				}
			}
		}
		if s.CanEnqueue() && rng.Intn(2) == 0 {
			q := cell.PhysQueueID(rng.Intn(queues))
			if d.ReadableNow(q) {
				ord, bank, err := d.ReserveRead(q)
				if err != nil {
					t.Fatalf("reserve read: %v", err)
				}
				if err := s.Enqueue(Request{
					Queue: q, Dir: Read, Ordinal: ord, Bank: bank, Enqueued: slot,
				}); err != nil {
					t.Fatalf("slot %d: %v", slot, err)
				}
			}
		}
		// DSA side: up to 2 issues per cycle. Any bank conflict
		// surfaces as an error from the DRAM model.
		for _, r := range s.Cycle(slot, 2, access) {
			switch r.Dir {
			case Write:
				if _, err := d.BeginWriteAt(r.Queue, r.Ordinal, r.Cells, slot); err != nil {
					t.Fatalf("slot %d: conflict on write: %v", slot, err)
				}
			case Read:
				if _, _, err := d.BeginReadAt(r.Queue, r.Ordinal, slot); err != nil {
					t.Fatalf("slot %d: conflict on read: %v", slot, err)
				}
			}
		}
	}
	st := s.Stats()
	if st.Issued == 0 {
		t.Fatal("nothing issued")
	}
	// Equation (2) scaled by the dual-issue budget:
	// β·Dmax = 2·(⌈2Q/G⌉−1)(B/b) = 2·3·4 = 24.
	if st.MaxSkips > 24 {
		t.Errorf("MaxSkips = %d exceeds β·Dmax = 24", st.MaxSkips)
	}
	t.Logf("issued=%d maxOcc=%d maxSkips=%d maxDelay=%d idle=%d",
		st.Issued, st.MaxOccupancy, st.MaxSkips, st.MaxDelaySlots, st.IdleCycles)
}

func TestDirectionString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("unexpected Direction strings")
	}
}
