// Package dss implements the DRAM Scheduler Subsystem of §5.3: the
// Requests Register (RR), the Ongoing Requests Register (ORR), and the
// DRAM Scheduler Algorithm (DSA).
//
// The RR is modeled after an out-of-order processor's issue window
// (Figure 9): every DSA cycle (b slots) the ORR's bank tags "wake up"
// the RR entries whose banks are free, the selection logic picks the
// oldest ready entry, and the register compacts to keep age order.
// Choosing the *oldest* non-locked request bounds how often any
// request can be overtaken (equation (2)), which in turn bounds the
// latency register (equation (3)).
package dss

import (
	"errors"
	"fmt"

	"repro/internal/cell"
	"repro/internal/dram"
)

// Direction distinguishes head-side reads (DRAM→SRAM) from tail-side
// writes (SRAM→DRAM). A single DSS schedules both (§5.3 uses 2Q for
// this reason).
type Direction uint8

// Directions.
const (
	Read Direction = iota
	Write
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Read {
		return "read"
	}
	return "write"
}

// Request is one pending block transfer.
type Request struct {
	// Queue is the physical queue being transferred.
	Queue cell.PhysQueueID
	// Dir is the transfer direction.
	Dir Direction
	// Ordinal is the block ordinal reserved in the DRAM for this
	// transfer; it determines Bank under the block-cyclic interleave.
	Ordinal uint64
	// Bank is the target bank (fixed at reservation time).
	Bank dram.BankID
	// Cells carries the block payload for writes (nil for reads).
	Cells []cell.Cell
	// Enqueued is the slot the request entered the RR.
	Enqueued cell.Slot
	// Skips counts how many times a younger request issued first.
	Skips int
}

// Errors returned by the scheduler.
var (
	// ErrRRFull signals that the Requests Register overflowed — with
	// the equation (1) sizing this indicates a violated bound, so the
	// core treats it as an invariant failure.
	ErrRRFull = errors.New("dss: requests register full")
)

// Stats aggregates scheduler observations used to validate the §5.3
// bounds empirically.
type Stats struct {
	// Enqueued and Issued count requests through the RR.
	Enqueued, Issued uint64
	// MaxOccupancy is the RR occupancy high-water mark.
	MaxOccupancy int
	// MaxSkips is the largest per-request skip count observed at issue
	// time (must stay ≤ equation (2)).
	MaxSkips int
	// MaxDelaySlots is the largest enqueue-to-issue delay observed
	// (must stay ≤ equation (3) minus the access time).
	MaxDelaySlots cell.Slot
	// IdleCycles counts DSA cycles with pending requests but none
	// ready (never happens with a correctly sized RR under the
	// block-cyclic interleave, per the [8] proof).
	IdleCycles uint64
	// EmptyCycles counts DSA cycles with an empty RR.
	EmptyCycles uint64
}

// Policy selects the DSA's request-selection discipline.
type Policy uint8

// Policies.
const (
	// OldestReadyFirst is the paper's DSA: select the oldest request
	// whose bank is not locked, skipping over blocked ones (§5.3).
	OldestReadyFirst Policy = iota
	// FIFOBlocking is the ablation baseline: only the head of the RR
	// may issue; a locked bank stalls the whole register. It shows why
	// the issue-queue-like reordering is necessary — conflicting
	// streams collapse its throughput (see the package benchmarks).
	FIFOBlocking
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == FIFOBlocking {
		return "fifo-blocking"
	}
	return "oldest-ready-first"
}

// Scheduler is the DSS. It owns the RR and ORR; the caller drives one
// Cycle per b slots and executes the returned requests against the
// DRAM model.
type Scheduler struct {
	capacity int
	policy   Policy
	rr       []Request // age-ordered: rr[0] is the oldest
	orr      []lock
	// issued is the reusable result buffer handed back by Cycle, so
	// the per-cycle selection does not allocate.
	issued []Request
	stats  Stats
}

// lock is one ORR entry: a bank and the slot its access completes.
type lock struct {
	bank  dram.BankID
	until cell.Slot
}

// New returns a Scheduler whose RR holds capacity requests. A zero
// capacity builds a degenerate scheduler for the RADS case (every
// request must issue the cycle it is enqueued); Enqueue then always
// fails, so RADS callers bypass the RR via Cycle's immediate path —
// see CycleImmediate.
func New(capacity int) *Scheduler {
	if capacity < 0 {
		capacity = 0
	}
	return &Scheduler{capacity: capacity}
}

// NewWithPolicy returns a Scheduler using the given selection policy
// (New defaults to OldestReadyFirst, the paper's DSA).
func NewWithPolicy(capacity int, p Policy) *Scheduler {
	s := New(capacity)
	s.policy = p
	return s
}

// Policy returns the selection discipline in use.
func (s *Scheduler) Policy() Policy { return s.policy }

// Capacity returns the RR capacity.
func (s *Scheduler) Capacity() int { return s.capacity }

// Len returns the current RR occupancy.
func (s *Scheduler) Len() int { return len(s.rr) }

// CanEnqueue reports whether one more request fits.
func (s *Scheduler) CanEnqueue() bool { return len(s.rr) < s.capacity }

// Stats returns a copy of the accumulated statistics.
func (s *Scheduler) Stats() Stats { return s.stats }

// SkipIdleCycles credits n scheduling cycles elided by the core's
// fast-forward path while the RR was empty. It keeps the statistics
// bit-identical to running Cycle n times on an empty register: each
// such Cycle would count exactly one EmptyCycle and do nothing else
// observable (expired ORR locks are pruned lazily by the next real
// Cycle and never lock a bank once their slot has passed).
func (s *Scheduler) SkipIdleCycles(n uint64) { s.stats.EmptyCycles += n }

// Enqueue appends a request at the RR tail (the MMA issues one request
// per b slots; reads and writes share the register).
func (s *Scheduler) Enqueue(r Request) error {
	if len(s.rr) >= s.capacity {
		return fmt.Errorf("%w: capacity %d", ErrRRFull, s.capacity)
	}
	s.rr = append(s.rr, r)
	s.stats.Enqueued++
	if len(s.rr) > s.stats.MaxOccupancy {
		s.stats.MaxOccupancy = len(s.rr)
	}
	return nil
}

// locked reports whether bank b is in the ORR at slot now.
func (s *Scheduler) locked(b dram.BankID, now cell.Slot) bool {
	for _, l := range s.orr {
		if l.bank == b && now < l.until {
			return true
		}
	}
	return false
}

// pruneORR drops expired locks. The ORR size is bounded by
// issuesPerCycle·(B/b − 1) live entries, matching §5.3's "size of the
// ORR is hence (B/b)−1" for the single-issue case.
func (s *Scheduler) pruneORR(now cell.Slot) {
	kept := s.orr[:0]
	for _, l := range s.orr {
		if now < l.until {
			kept = append(kept, l)
		}
	}
	s.orr = kept
}

// ORRLen returns the number of live ORR entries at slot now.
func (s *Scheduler) ORRLen(now cell.Slot) int {
	n := 0
	for _, l := range s.orr {
		if now < l.until {
			n++
		}
	}
	return n
}

// Cycle runs one DSA scheduling cycle at slot now: it selects up to
// budget requests — each the *oldest* whose bank is neither locked in
// the ORR nor selected earlier this cycle — removes them from the RR
// (compacting, so age order is preserved), registers their banks in
// the ORR for accessSlots slots, and returns them in selection order.
//
// budget is 2 in the paper's configuration: the buffer sustains one
// read and one write block per b slots (bandwidth 2× the line rate).
//
// The returned slice is owned by the Scheduler and valid only until
// the next Cycle call; callers must consume it before cycling again.
func (s *Scheduler) Cycle(now cell.Slot, budget, accessSlots int) []Request {
	s.pruneORR(now)
	if len(s.rr) == 0 {
		s.stats.EmptyCycles++
		return nil
	}
	issued := s.issued[:0]
	// cursor is where the oldest-ready scan resumes within this cycle:
	// entries before it were already probed and found bank-locked, and
	// locks only accumulate during a cycle (pruning happens once, at
	// entry), so they stay unselectable until the next cycle. This
	// folds the per-issue rescan of the register into one rotating
	// pass: at most len(rr)+budget probes per cycle in total.
	cursor := 0
	for n := 0; n < budget; n++ {
		idx := -1
		if s.policy == FIFOBlocking {
			if len(s.rr) > 0 && !s.locked(s.rr[0].Bank, now) {
				idx = 0
			}
		} else {
			for i := cursor; i < len(s.rr); i++ {
				if !s.locked(s.rr[i].Bank, now) {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			if len(s.rr) > 0 && n == 0 {
				s.stats.IdleCycles++
			}
			break
		}
		req := s.rr[idx]
		// Everything older than the selected request is overtaken.
		for i := 0; i < idx; i++ {
			s.rr[i].Skips++
			if s.rr[i].Skips > s.stats.MaxSkips {
				s.stats.MaxSkips = s.rr[i].Skips
			}
		}
		// Compact: shift the tail forward, preserving age order
		// ("the requests from this position to the tail of the RR are
		// shifted ahead", §5.3). The scan resumes at the compacted
		// position: everything before it stays locked this cycle.
		s.rr = append(s.rr[:idx], s.rr[idx+1:]...)
		cursor = idx
		s.orr = append(s.orr, lock{bank: req.Bank, until: now + cell.Slot(accessSlots)})
		if req.Skips > s.stats.MaxSkips {
			s.stats.MaxSkips = req.Skips
		}
		if d := now - req.Enqueued; d > s.stats.MaxDelaySlots {
			s.stats.MaxDelaySlots = d
		}
		s.stats.Issued++
		issued = append(issued, req)
		if len(s.rr) == 0 {
			break
		}
	}
	s.issued = issued
	if len(issued) == 0 {
		return nil
	}
	return issued
}
