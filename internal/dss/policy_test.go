package dss

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/dram"
)

// adversarialStream enqueues an alternating two-queue pattern whose
// consecutive requests collide on the same bank: queue A block k and
// queue B block k both map to the same group when A ≡ B (mod G), and
// their interleaved enqueue order forces head-of-line conflicts for a
// FIFO scheduler.
func runPolicy(t *testing.T, p Policy, cycles int) Stats {
	t.Helper()
	s := NewWithPolicy(16, p)
	// Two interleaved streams to banks {0,1}: requests to bank 0 twice
	// in a row, then bank 1 twice, etc. FIFO stalls whenever the head
	// repeats a just-issued bank; oldest-ready-first slips the other
	// stream in.
	banks := []dram.BankID{0, 0, 1, 1}
	const access = 4 // bank busy 4 slots = 2 cycles at 2 slots/cycle
	slot := cell.Slot(0)
	k := 0
	for c := 0; c < cycles; c++ {
		for s.CanEnqueue() {
			if err := s.Enqueue(Request{
				Queue: cell.PhysQueueID(k % 2), Dir: Read,
				Bank: banks[k%len(banks)], Enqueued: slot,
			}); err != nil {
				t.Fatal(err)
			}
			k++
		}
		s.Cycle(slot, 1, access)
		slot += 2
	}
	return s.Stats()
}

func TestFIFOBlockingThroughputCollapse(t *testing.T) {
	// The paper's motivation for the issue-queue mechanism: with
	// conflicting head-of-line requests, FIFO idles while work exists;
	// oldest-ready-first keeps every cycle busy.
	const cycles = 2000
	oo := runPolicy(t, OldestReadyFirst, cycles)
	fifo := runPolicy(t, FIFOBlocking, cycles)

	if oo.IdleCycles != 0 {
		t.Errorf("oldest-ready-first idled %d cycles on a reorderable stream", oo.IdleCycles)
	}
	if fifo.IdleCycles == 0 {
		t.Error("FIFO never stalled on the conflicting stream")
	}
	if fifo.Issued >= oo.Issued {
		t.Errorf("FIFO issued %d ≥ out-of-order %d", fifo.Issued, oo.Issued)
	}
	// FIFO never reorders, so nothing is ever skipped.
	if fifo.MaxSkips != 0 {
		t.Errorf("FIFO MaxSkips = %d", fifo.MaxSkips)
	}
	t.Logf("issued: oldest-ready=%d fifo=%d (%.0f%% throughput)",
		oo.Issued, fifo.Issued, 100*float64(fifo.Issued)/float64(oo.Issued))
}

func TestPolicyAccessors(t *testing.T) {
	if New(4).Policy() != OldestReadyFirst {
		t.Error("default policy wrong")
	}
	if NewWithPolicy(4, FIFOBlocking).Policy() != FIFOBlocking {
		t.Error("explicit policy lost")
	}
	if OldestReadyFirst.String() == "" || FIFOBlocking.String() == "" {
		t.Error("empty policy strings")
	}
}

// BenchmarkPolicy measures scheduler cycles per second for both
// disciplines on the conflicting stream (the DESIGN.md ablation).
func BenchmarkPolicy(b *testing.B) {
	b.ReportAllocs()
	for _, p := range []Policy{OldestReadyFirst, FIFOBlocking} {
		b.Run(p.String(), func(b *testing.B) {
			s := NewWithPolicy(16, p)
			banks := []dram.BankID{0, 0, 1, 1}
			slot := cell.Slot(0)
			k := 0
			for i := 0; i < b.N; i++ {
				for s.CanEnqueue() {
					_ = s.Enqueue(Request{Bank: banks[k%4], Enqueued: slot})
					k++
				}
				s.Cycle(slot, 1, 4)
				slot += 2
			}
			b.ReportMetric(float64(s.Stats().Issued)/float64(b.N), "issues/cycle")
		})
	}
}
