package arena

import "testing"

func TestGrown(t *testing.T) {
	s := []int32{1, 2, 3}
	if got := Grown(s, 2); len(got) != 3 {
		t.Fatalf("shrink request changed length to %d", len(got))
	}
	g := Grown(s, 10)
	if len(g) != 10 || cap(g) < 10 {
		t.Fatalf("len/cap = %d/%d, want 10/>=10", len(g), cap(g))
	}
	if g[0] != 1 || g[1] != 2 || g[2] != 3 {
		t.Error("prefix not preserved")
	}
	for i := 3; i < 10; i++ {
		if g[i] != 0 {
			t.Fatalf("g[%d] = %d, want zero", i, g[i])
		}
	}
	// Growth within capacity must re-zero the exposed tail even if the
	// backing array held stale values from a previous regime.
	raw := make([]int32, 8)
	for i := range raw {
		raw[i] = 9
	}
	s2 := raw[:2]
	g2 := Grown(s2, 6)
	if len(g2) != 6 {
		t.Fatalf("len = %d, want 6", len(g2))
	}
	for i := 2; i < 6; i++ {
		if g2[i] != 0 {
			t.Fatalf("g2[%d] = %d, want zero (stale tail exposed)", i, g2[i])
		}
	}
	// Geometric: growing by one element repeatedly must not reallocate
	// every time.
	var s3 []int
	allocsBefore := testing.AllocsPerRun(1, func() {
		s3 = s3[:0]
		for i := 0; i < 1000; i++ {
			s3 = Grown(s3, i+1)
		}
	})
	if allocsBefore > 20 {
		t.Fatalf("1000 one-element growths allocated %.0f times, want amortized O(log n)", allocsBefore)
	}
}
