// Package arena holds the one slice idiom every dense per-queue
// arena in this repo shares: grow-to-n in a single allocation with
// geometric capacity, so ordinal-indexed state can expand past its
// constructed size in amortized O(1) per element, off the
// steady-state path.
package arena

// Grown returns s extended to length n (one allocation, capacity at
// least doubled), or s unchanged if it is already long enough. New
// elements are zero values.
func Grown[T any](s []T, n int) []T {
	if n <= len(s) {
		return s
	}
	if n <= cap(s) {
		// The capacity tail of an append-grown slice is zeroed, but be
		// explicit: these arenas must never expose stale state.
		t := s[:n]
		var zero T
		for i := len(s); i < n; i++ {
			t[i] = zero
		}
		return t
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	if c < 8 {
		c = 8
	}
	t := make([]T, n, c)
	copy(t, s)
	return t
}
