package dram

import (
	"errors"
	"testing"

	"repro/internal/cell"
)

// TestOutOfOrderSameQueueAccesses exercises the DSA-driven path:
// reservations in MMA order, issues in a different order.
func TestOutOfOrderSameQueueAccesses(t *testing.T) {
	d := New(testConfig()) // B/b banks per group = 4, access 8 slots
	p := cell.PhysQueueID(1)

	// Reserve three writes; banks follow the interleave 4,5,6.
	var ords []uint64
	var banks []BankID
	for i := 0; i < 3; i++ {
		o, b, err := d.ReserveWrite(p)
		if err != nil {
			t.Fatal(err)
		}
		ords = append(ords, o)
		banks = append(banks, b)
	}
	if banks[0] != 4 || banks[1] != 5 || banks[2] != 6 {
		t.Fatalf("reserved banks = %v", banks)
	}

	// Issue them out of order: 2, 0, 1 — different banks, same slot
	// window is fine.
	for _, i := range []int{2, 0, 1} {
		if _, err := d.BeginWriteAt(p, ords[i], mkBlock(1, uint64(2*i), 2), 0); err != nil {
			t.Fatalf("write ordinal %d: %v", ords[i], err)
		}
	}

	// Reads reserve in order 0,1,2 and may also issue out of order.
	var rords []uint64
	for i := 0; i < 3; i++ {
		o, b, err := d.ReserveRead(p)
		if err != nil {
			t.Fatal(err)
		}
		if b != banks[i] {
			t.Errorf("read %d bank = %d, want %d", i, b, banks[i])
		}
		rords = append(rords, o)
	}
	got := map[uint64][]cell.Cell{}
	for _, i := range []int{1, 2, 0} {
		_, cells, err := d.BeginReadAt(p, rords[i], 20)
		if err != nil {
			t.Fatalf("read ordinal %d: %v", rords[i], err)
		}
		got[rords[i]] = cells
	}
	// Block k carries seqs 2k, 2k+1.
	for k := uint64(0); k < 3; k++ {
		cells := got[k]
		if len(cells) != 2 || cells[0].Seq != 2*k || cells[1].Seq != 2*k+1 {
			t.Errorf("block %d cells = %v", k, cells)
		}
	}
}

func TestReserveReadGatesOnIssuedWrite(t *testing.T) {
	d := New(testConfig())
	p := cell.PhysQueueID(0)
	o0, _, err := d.ReserveWrite(p)
	if err != nil {
		t.Fatal(err)
	}
	o1, _, err := d.ReserveWrite(p)
	if err != nil {
		t.Fatal(err)
	}
	// Issue only the *second* write. The first block is still absent,
	// so no read can be reserved (FIFO order would be violated).
	if _, err := d.BeginWriteAt(p, o1, mkBlock(0, 2, 2), 0); err != nil {
		t.Fatal(err)
	}
	if d.ReadableNow(p) {
		t.Error("ReadableNow true while block 0 write unissued")
	}
	if _, _, err := d.ReserveRead(p); !errors.Is(err, ErrQueueEmpty) {
		t.Errorf("ReserveRead err = %v, want ErrQueueEmpty", err)
	}
	if _, err := d.BeginWriteAt(p, o0, mkBlock(0, 0, 2), 1); err != nil {
		t.Fatal(err)
	}
	if !d.ReadableNow(p) {
		t.Error("ReadableNow false after both writes issued")
	}
	if _, _, err := d.ReserveRead(p); err != nil {
		t.Errorf("ReserveRead after issue: %v", err)
	}
}

func TestBeginWriteAtValidation(t *testing.T) {
	d := New(testConfig())
	p := cell.PhysQueueID(0)
	// Unreserved ordinal.
	if _, err := d.BeginWriteAt(p, 0, mkBlock(0, 0, 2), 0); !errors.Is(err, ErrBadOrdinal) {
		t.Errorf("unreserved write err = %v", err)
	}
	o, _, err := d.ReserveWrite(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.BeginWriteAt(p, o, mkBlock(0, 0, 3), 0); !errors.Is(err, ErrBadBlockSize) {
		t.Errorf("bad size err = %v", err)
	}
	if _, err := d.BeginWriteAt(p, o, mkBlock(0, 0, 2), 0); err != nil {
		t.Fatal(err)
	}
	// Duplicate issue.
	if _, err := d.BeginWriteAt(p, o, mkBlock(0, 0, 2), 100); !errors.Is(err, ErrBadOrdinal) {
		t.Errorf("duplicate write err = %v", err)
	}
}

func TestBeginReadAtValidation(t *testing.T) {
	d := New(testConfig())
	p := cell.PhysQueueID(0)
	if _, err := d.BeginWrite(p, mkBlock(0, 0, 2), 0); err != nil {
		t.Fatal(err)
	}
	// Unreserved read ordinal.
	if _, _, err := d.BeginReadAt(p, 0, 50); !errors.Is(err, ErrBadOrdinal) {
		t.Errorf("unreserved read err = %v", err)
	}
	o, _, err := d.ReserveRead(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.BeginReadAt(p, o, 50); err != nil {
		t.Fatal(err)
	}
	// Double read of the same ordinal.
	if _, _, err := d.BeginReadAt(p, o, 100); !errors.Is(err, ErrBadOrdinal) {
		t.Errorf("double read err = %v", err)
	}
}

func TestReserveWriteCapacity(t *testing.T) {
	d := New(testConfig()) // 16 blocks per group
	p := cell.PhysQueueID(0)
	for i := 0; i < 16; i++ {
		if _, _, err := d.ReserveWrite(p); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
	}
	if _, _, err := d.ReserveWrite(p); !errors.Is(err, ErrGroupFull) {
		t.Errorf("over-reserve err = %v, want ErrGroupFull", err)
	}
	// Capacity is charged at reservation: occupancy reflects it.
	if got := d.GroupOccupancy(0); got != 16 {
		t.Errorf("GroupOccupancy = %d, want 16", got)
	}
}

func TestBeginWriteRollbackOnConflict(t *testing.T) {
	d := New(testConfig())
	p := cell.PhysQueueID(0)
	if _, err := d.BeginWrite(p, mkBlock(0, 0, 2), 0); err != nil {
		t.Fatal(err)
	}
	// Force a same-bank conflict: 4 more writes cycle back to bank 0
	// at ordinal 4. Write ordinals 1..3 at distinct banks, then the
	// 5th write while bank 0 is still busy must fail AND roll back its
	// reservation.
	for i := 1; i <= 3; i++ {
		if _, err := d.BeginWrite(p, mkBlock(0, uint64(2*i), 2), cell.Slot(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := d.GroupOccupancy(0)
	if _, err := d.BeginWrite(p, mkBlock(0, 8, 2), 4); !errors.Is(err, ErrBankConflict) {
		t.Fatalf("err = %v, want ErrBankConflict", err)
	}
	if got := d.GroupOccupancy(0); got != before {
		t.Errorf("occupancy leaked on rollback: %d -> %d", before, got)
	}
	// Retry after the bank frees succeeds with the same ordinal/bank.
	if _, err := d.BeginWrite(p, mkBlock(0, 8, 2), 8); err != nil {
		t.Errorf("retry: %v", err)
	}
}
