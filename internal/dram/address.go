package dram

import (
	"fmt"
	"math/bits"

	"repro/internal/cell"
)

// Address is the decoded form of the Figure 6 mapping function. The
// memory address of block ordinal k of physical queue p has the
// low-order log2(b·64) bits zero (block alignment), a queue field and
// an ordinal field; the group index comes from the low-order bits of
// the queue field and the bank index within the group from the
// low-order bits of the ordinal field.
type Address struct {
	// Queue is the physical queue field.
	Queue cell.PhysQueueID
	// Ordinal is the block's position within the queue (k).
	Ordinal uint64
	// Group is the bank group index: low log2(G) bits of Queue.
	Group int
	// BankInGroup is the bank index within the group: low log2(B/b)
	// bits of Ordinal.
	BankInGroup int
	// Bank is the flat bank identifier.
	Bank BankID
}

// Mapper computes Figure 6 addresses for a given geometry. Geometry
// dimensions must be powers of two, matching the bit-field
// decomposition in the figure.
type Mapper struct {
	groups        int
	banksPerGroup int
	blockCells    int
	queueBits     uint
	ordinalBits   uint
}

// NewMapper builds a Mapper for G groups of B/b banks with b-cell
// blocks, supporting queueSpace physical queues and ordinalSpace block
// ordinals per queue. All arguments must be powers of two.
func NewMapper(groups, banksPerGroup, blockCells, queueSpace, ordinalSpace int) (*Mapper, error) {
	for name, v := range map[string]int{
		"groups": groups, "banksPerGroup": banksPerGroup, "blockCells": blockCells,
		"queueSpace": queueSpace, "ordinalSpace": ordinalSpace,
	} {
		if v <= 0 || v&(v-1) != 0 {
			return nil, fmt.Errorf("dram: %s must be a positive power of two, got %d", name, v)
		}
	}
	if groups > queueSpace {
		return nil, fmt.Errorf("dram: groups=%d exceeds queue space %d", groups, queueSpace)
	}
	if banksPerGroup > ordinalSpace {
		return nil, fmt.Errorf("dram: banksPerGroup=%d exceeds ordinal space %d", banksPerGroup, ordinalSpace)
	}
	return &Mapper{
		groups:        groups,
		banksPerGroup: banksPerGroup,
		blockCells:    blockCells,
		queueBits:     uint(bits.TrailingZeros(uint(queueSpace))),
		ordinalBits:   uint(bits.TrailingZeros(uint(ordinalSpace))),
	}, nil
}

// Map decodes the address of block ordinal k of queue p.
func (m *Mapper) Map(p cell.PhysQueueID, ordinal uint64) Address {
	g := int(uint(p) & uint(m.groups-1))
	bi := int(ordinal & uint64(m.banksPerGroup-1))
	return Address{
		Queue:       p,
		Ordinal:     ordinal,
		Group:       g,
		BankInGroup: bi,
		Bank:        BankID(g*m.banksPerGroup + bi),
	}
}

// Encode packs the address into the Figure 6 bit layout:
// [queue | ordinal | log2(b·64) zero bits].
func (m *Mapper) Encode(p cell.PhysQueueID, ordinal uint64) uint64 {
	blockShift := uint(bits.TrailingZeros(uint(m.blockCells * cell.Size)))
	return (uint64(p)<<m.ordinalBits | ordinal) << blockShift
}

// Decode reverses Encode.
func (m *Mapper) Decode(addr uint64) Address {
	blockShift := uint(bits.TrailingZeros(uint(m.blockCells * cell.Size)))
	v := addr >> blockShift
	ordinal := v & (1<<m.ordinalBits - 1)
	p := cell.PhysQueueID(v >> m.ordinalBits)
	return m.Map(p, ordinal)
}
