package dram

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cell"
)

func testConfig() Config {
	return Config{
		Banks:              16,
		BanksPerGroup:      4,
		AccessSlots:        8,
		BlockCells:         2,
		BankCapacityBlocks: 4,
	}
}

func mkBlock(q cell.QueueID, start uint64, n int) []cell.Cell {
	cells := make([]cell.Cell, n)
	for i := range cells {
		cells[i] = cell.Cell{Queue: q, Seq: start + uint64(i)}
	}
	return cells
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(c *Config) {}, true},
		{"zero banks", func(c *Config) { c.Banks = 0 }, false},
		{"zero per group", func(c *Config) { c.BanksPerGroup = 0 }, false},
		{"group not divisor", func(c *Config) { c.BanksPerGroup = 3 }, false},
		{"zero access", func(c *Config) { c.AccessSlots = 0 }, false},
		{"zero block", func(c *Config) { c.BlockCells = 0 }, false},
		{"negative capacity", func(c *Config) { c.BankCapacityBlocks = -1 }, false},
		{"unbounded capacity ok", func(c *Config) { c.BankCapacityBlocks = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New did not panic on invalid config")
		}
	}()
	New(Config{})
}

func TestGroupAssignment(t *testing.T) {
	d := New(testConfig()) // G = 4
	for p := 0; p < 12; p++ {
		if got, want := d.Group(cell.PhysQueueID(p)), p%4; got != want {
			t.Errorf("Group(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestBlockCyclicInterleave(t *testing.T) {
	d := New(testConfig())
	p := cell.PhysQueueID(1) // group 1, banks 4..7
	now := cell.Slot(0)
	var banks []BankID
	for k := 0; k < 8; k++ {
		b := d.WriteBank(p)
		got, err := d.BeginWrite(p, mkBlock(1, uint64(2*k), 2), now)
		if err != nil {
			t.Fatalf("write %d: %v", k, err)
		}
		if got != b {
			t.Errorf("write %d: WriteBank predicted %d, used %d", k, b, got)
		}
		banks = append(banks, got)
		now += cell.Slot(d.Config().AccessSlots)
	}
	want := []BankID{4, 5, 6, 7, 4, 5, 6, 7}
	for i := range want {
		if banks[i] != want[i] {
			t.Errorf("block %d went to bank %d, want %d (round-robin within group)", i, banks[i], want[i])
		}
	}
}

func TestConflictDetection(t *testing.T) {
	d := New(testConfig())
	p := cell.PhysQueueID(0)
	if _, err := d.BeginWrite(p, mkBlock(0, 0, 2), 0); err != nil {
		t.Fatal(err)
	}
	// Writing to the same queue 4 blocks later returns to bank 0; but
	// the immediate next block goes to bank 1, so no conflict.
	if _, err := d.BeginWrite(p, mkBlock(0, 2, 2), 1); err != nil {
		t.Fatalf("different bank should not conflict: %v", err)
	}
	// Reading the front block (bank 0) before AccessSlots have passed
	// must conflict.
	_, _, err := d.BeginRead(p, 7)
	if !errors.Is(err, ErrBankConflict) {
		t.Errorf("read at slot 7 err = %v, want ErrBankConflict", err)
	}
	// At slot 8 the bank is free again.
	if _, _, err := d.BeginRead(p, 8); err != nil {
		t.Errorf("read at slot 8: %v", err)
	}
}

func TestReadFIFOAndCells(t *testing.T) {
	d := New(testConfig())
	p := cell.PhysQueueID(2)
	now := cell.Slot(0)
	for k := 0; k < 4; k++ {
		if _, err := d.BeginWrite(p, mkBlock(2, uint64(2*k), 2), now); err != nil {
			t.Fatal(err)
		}
		now += 8
	}
	if got := d.QueueCells(p); got != 8 {
		t.Errorf("QueueCells = %d, want 8", got)
	}
	var seqs []uint64
	for k := 0; k < 4; k++ {
		_, cells, err := d.BeginRead(p, now)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			if c.Queue != 2 {
				t.Errorf("cell from wrong queue: %v", c)
			}
			seqs = append(seqs, c.Seq)
		}
		now += 8
	}
	for i := range seqs {
		if seqs[i] != uint64(i) {
			t.Errorf("seq[%d] = %d, want %d (FIFO violated)", i, seqs[i], i)
		}
	}
}

func TestReadEmptyQueue(t *testing.T) {
	d := New(testConfig())
	_, _, err := d.BeginRead(5, 0)
	if !errors.Is(err, ErrQueueEmpty) {
		t.Errorf("err = %v, want ErrQueueEmpty", err)
	}
}

func TestBadBlockSize(t *testing.T) {
	d := New(testConfig())
	_, err := d.BeginWrite(0, mkBlock(0, 0, 3), 0)
	if !errors.Is(err, ErrBadBlockSize) {
		t.Errorf("err = %v, want ErrBadBlockSize", err)
	}
}

func TestCapacityAndGroupFull(t *testing.T) {
	d := New(testConfig()) // 4 blocks/bank, 4 banks/group -> 16 blocks/group
	p := cell.PhysQueueID(3)
	now := cell.Slot(0)
	if got := d.GroupCapacityBlocks(); got != 16 {
		t.Fatalf("GroupCapacityBlocks = %d, want 16", got)
	}
	for k := 0; k < 16; k++ {
		if !d.CanWrite(p) {
			t.Fatalf("CanWrite false at block %d", k)
		}
		if _, err := d.BeginWrite(p, mkBlock(3, uint64(2*k), 2), now); err != nil {
			t.Fatalf("write %d: %v", k, err)
		}
		now += 8
	}
	if d.CanWrite(p) {
		t.Error("CanWrite true for full group")
	}
	_, err := d.BeginWrite(p, mkBlock(3, 32, 2), now)
	if !errors.Is(err, ErrGroupFull) {
		t.Errorf("err = %v, want ErrGroupFull", err)
	}
	// Other groups unaffected.
	if !d.CanWrite(cell.PhysQueueID(0)) {
		t.Error("group 0 should still accept writes")
	}
	if got := d.GroupOccupancy(3); got != 16 {
		t.Errorf("GroupOccupancy(3) = %d, want 16", got)
	}
	if got := d.TotalOccupancyBlocks(); got != 16 {
		t.Errorf("TotalOccupancyBlocks = %d, want 16", got)
	}
}

func TestUnboundedCapacity(t *testing.T) {
	cfg := testConfig()
	cfg.BankCapacityBlocks = 0
	d := New(cfg)
	now := cell.Slot(0)
	for k := 0; k < 100; k++ {
		if !d.CanWrite(0) {
			t.Fatal("unbounded DRAM reported full")
		}
		if _, err := d.BeginWrite(0, mkBlock(0, uint64(2*k), 2), now); err != nil {
			t.Fatal(err)
		}
		now += 8
	}
	if got := d.TotalCapacityBlocks(); got != 0 {
		t.Errorf("TotalCapacityBlocks = %d, want 0 (unbounded)", got)
	}
}

func TestLeastOccupiedGroup(t *testing.T) {
	d := New(testConfig())
	now := cell.Slot(0)
	// Fill group 0 with 2 blocks, group 1 with 1 block.
	for k := 0; k < 2; k++ {
		if _, err := d.BeginWrite(0, mkBlock(0, uint64(2*k), 2), now); err != nil {
			t.Fatal(err)
		}
		now += 8
	}
	if _, err := d.BeginWrite(1, mkBlock(1, 0, 2), now); err != nil {
		t.Fatal(err)
	}
	if got := d.LeastOccupiedGroup(); got != 2 {
		t.Errorf("LeastOccupiedGroup = %d, want 2 (empty)", got)
	}
}

func TestReadBankTracksFront(t *testing.T) {
	d := New(testConfig())
	p := cell.PhysQueueID(0)
	if got := d.ReadBank(p); got != NoBank {
		t.Errorf("ReadBank empty = %d, want NoBank", got)
	}
	now := cell.Slot(0)
	for k := 0; k < 3; k++ {
		if _, err := d.BeginWrite(p, mkBlock(0, uint64(2*k), 2), now); err != nil {
			t.Fatal(err)
		}
		now += 8
	}
	for k := 0; k < 3; k++ {
		want := BankID(k) // group 0 banks 0..3 round-robin
		if got := d.ReadBank(p); got != want {
			t.Errorf("ReadBank before read %d = %d, want %d", k, got, want)
		}
		if _, _, err := d.BeginRead(p, now); err != nil {
			t.Fatal(err)
		}
		now += 8
	}
}

func TestAccessesCounter(t *testing.T) {
	d := New(testConfig())
	if _, err := d.BeginWrite(0, mkBlock(0, 0, 2), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.BeginRead(0, 8); err != nil {
		t.Fatal(err)
	}
	if got := d.Accesses(); got != 2 {
		t.Errorf("Accesses = %d, want 2", got)
	}
}

// TestPropertyConsecutiveQueueAccessesConflictFree verifies the §5.1
// claim: B/b consecutive accesses to the same queue never conflict,
// because the interleave advances one bank per block.
func TestPropertyConsecutiveQueueAccessesConflictFree(t *testing.T) {
	f := func(pRaw uint8, spacing uint8) bool {
		cfg := Config{Banks: 32, BanksPerGroup: 8, AccessSlots: 8, BlockCells: 1}
		d := New(cfg)
		p := cell.PhysQueueID(pRaw % 16)
		gap := cell.Slot(spacing%3 + 1) // 1..3 slots between accesses (b=1)
		now := cell.Slot(0)
		// 8 consecutive writes to the same queue at b-slot spacing must
		// all succeed as long as gap*8 >= AccessSlots... with gap=1,
		// bank reuse happens after 8 slots = AccessSlots exactly.
		for k := 0; k < 16; k++ {
			if _, err := d.BeginWrite(p, mkBlock(cell.QueueID(p), uint64(k), 1), now); err != nil {
				return false
			}
			now += gap
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyCellConservation writes random blocks to random queues,
// reads them all back, and checks nothing is lost or duplicated.
func TestPropertyCellConservation(t *testing.T) {
	f := func(seed uint16) bool {
		cfg := Config{Banks: 8, BanksPerGroup: 2, AccessSlots: 4, BlockCells: 2}
		d := New(cfg)
		now := cell.Slot(0)
		written := make(map[cell.PhysQueueID]uint64)
		rng := uint64(seed) + 1
		next := func(n uint64) uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return (rng >> 33) % n }
		for i := 0; i < 40; i++ {
			p := cell.PhysQueueID(next(6))
			seq := written[p]
			if _, err := d.BeginWrite(p, mkBlock(cell.QueueID(p), seq, 2), now); err != nil {
				return false
			}
			written[p] = seq + 2
			now += 4 // one access per AccessSlots: trivially conflict-free
		}
		for p, n := range written {
			var got uint64
			for d.QueueBlocks(p) > 0 {
				_, cells, err := d.BeginRead(p, now)
				if err != nil {
					return false
				}
				for _, c := range cells {
					if c.Seq != got || c.Queue != cell.QueueID(p) {
						return false
					}
					got++
				}
				now += 4
			}
			if got != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUtilization(t *testing.T) {
	d := New(testConfig()) // AccessSlots=8, 16 banks
	if got := d.Utilization(0); got != 0 {
		t.Errorf("Utilization(0) = %v", got)
	}
	if _, err := d.BeginWrite(0, mkBlock(0, 0, 2), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.BeginWrite(1, mkBlock(1, 0, 2), 0); err != nil {
		t.Fatal(err)
	}
	// Two 8-slot accesses over 16 banks × 8 slots = 16/128.
	want := 16.0 / 128.0
	if got := d.Utilization(8); got != want {
		t.Errorf("Utilization(8) = %v, want %v", got, want)
	}
}
