// Package dram models the banked DRAM system of §4-§5.1: M banks
// organized into G = M/(B/b) groups of B/b banks, block-cyclic
// interleaving of each queue's cells across the banks of its group,
// per-bank busy timing (the random access time), capacity accounting
// per group, and strict conflict detection.
//
// Because the DRAM Scheduler Subsystem (§5.3) may reorder requests —
// including two requests of the *same* queue — accesses are split into
// a reservation step (performed in MMA order, which fixes the block
// ordinal and hence the bank under the block-cyclic interleave) and an
// issue step (performed in DSA order, addressed by ordinal). The
// convenience wrappers BeginWrite/BeginRead combine both for in-order
// callers such as the RADS baseline.
//
// The model is storage-accurate (it holds the actual cells, so tests
// can verify end-to-end FIFO delivery) and timing-accurate at slot
// granularity (a bank touched at slot t is busy until t+B). It does
// not model rows, columns or refresh: the paper's guarantees are
// expressed purely in terms of the random access time, which already
// upper-bounds activate+precharge overheads.
package dram

import (
	"errors"
	"fmt"

	"repro/internal/arena"
	"repro/internal/bitset"
	"repro/internal/cell"
)

// BankID identifies one DRAM bank, numbered group-major:
// bank = group·(B/b) + indexWithinGroup.
type BankID int32

// NoBank is the sentinel for "no bank".
const NoBank BankID = -1

// Errors reported by the DRAM model. ErrBankConflict signals a
// violated worst-case guarantee (the DSS must make it impossible);
// the others signal resource exhaustion or misuse the caller handles.
var (
	ErrBankConflict = errors.New("dram: bank accessed within its random access time")
	ErrGroupFull    = errors.New("dram: bank group out of capacity")
	ErrQueueEmpty   = errors.New("dram: queue has no readable blocks in DRAM")
	ErrBadBlockSize = errors.New("dram: block must contain exactly b cells")
	ErrBadOrdinal   = errors.New("dram: ordinal not reserved or already used")
)

// Config parameterizes the DRAM system.
type Config struct {
	// Banks is M, the total number of banks.
	Banks int
	// BanksPerGroup is B/b, the number of banks per group (§5.1).
	BanksPerGroup int
	// AccessSlots is the bank random access time in slots (B): a bank
	// touched at slot t cannot be touched again before slot t+B.
	AccessSlots int
	// BlockCells is b, the number of cells per block (the CFDS
	// transfer granularity).
	BlockCells int
	// BankCapacityBlocks is the number of blocks each bank can store.
	// Zero means unbounded (useful for pure-timing tests).
	BankCapacityBlocks int
	// Queues sizes the per-queue state arena at construction (the
	// physical name space P). Zero lets the arena grow on demand —
	// convenient for tests, but production callers should size it so
	// the datapath never grows.
	Queues int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Banks <= 0:
		return fmt.Errorf("dram: Banks must be positive, got %d", c.Banks)
	case c.BanksPerGroup <= 0:
		return fmt.Errorf("dram: BanksPerGroup must be positive, got %d", c.BanksPerGroup)
	case c.Banks%c.BanksPerGroup != 0:
		return fmt.Errorf("dram: BanksPerGroup=%d must divide Banks=%d", c.BanksPerGroup, c.Banks)
	case c.AccessSlots <= 0:
		return fmt.Errorf("dram: AccessSlots must be positive, got %d", c.AccessSlots)
	case c.BlockCells <= 0:
		return fmt.Errorf("dram: BlockCells must be positive, got %d", c.BlockCells)
	case c.BankCapacityBlocks < 0:
		return fmt.Errorf("dram: BankCapacityBlocks must be non-negative, got %d", c.BankCapacityBlocks)
	case c.Queues < 0:
		return fmt.Errorf("dram: Queues must be non-negative, got %d", c.Queues)
	}
	return nil
}

// Groups returns G, the number of bank groups.
func (c Config) Groups() int { return c.Banks / c.BanksPerGroup }

// queueState tracks one physical queue's stored blocks plus the
// reservation cursors. The stored blocks live in an ordinal-indexed
// ring window (see blockRing) instead of a hash map: block ordinals
// are dense and monotone, so the window [ring.base, writeReserved)
// addresses every live or in-flight block with one mask, no hashing
// and no per-entry allocation — the datapath probes are pure indexed
// loads. Ordinals below readReserved are consumed or have their read
// in flight; ordinals in [readReserved, writeReserved) are live.
type queueState struct {
	ring blockRing
	// writeReserved is the next block ordinal to assign to a write.
	writeReserved uint64
	// readReserved is the next block ordinal to assign to a read.
	readReserved uint64
	// readsDone counts issued reads, for stats.
	readsDone uint64
}

// blockRing is a power-of-two ring of issued-but-unread blocks indexed
// by block ordinal. base is the lowest ordinal the window may still
// address; slots[ordinal&mask] is nil when the ordinal is absent
// (consumed, or its write not yet issued). The window only needs to
// cover [base, writeReserved); base advances lazily over consumed
// ordinals (nil slots below readReserved), so steady-state operation
// re-uses the same few slots and the ring grows — geometrically, off
// the steady-state path — only when a genuine block backlog builds up.
type blockRing struct {
	slots [][]cell.Cell
	base  uint64
}

// get returns the block stored at ordinal, or nil.
func (r *blockRing) get(ordinal uint64) []cell.Cell {
	if ordinal < r.base || ordinal-r.base >= uint64(len(r.slots)) {
		return nil
	}
	return r.slots[ordinal&uint64(len(r.slots)-1)]
}

// del removes the block at ordinal (a no-op when absent).
func (r *blockRing) del(ordinal uint64) {
	if ordinal < r.base || ordinal-r.base >= uint64(len(r.slots)) {
		return
	}
	r.slots[ordinal&uint64(len(r.slots)-1)] = nil
}

// put stores blk at ordinal, growing the window as needed. consumedLim
// is the caller's readReserved cursor: every nil slot below it is a
// consumed ordinal the base may slide past to make room without
// growing.
func (r *blockRing) put(ordinal uint64, blk []cell.Cell, consumedLim uint64) {
	if ordinal < r.base {
		// Cannot happen with the DRAM's cursor discipline (writes land
		// at ordinals ≥ readReserved ≥ base); guard for safety.
		panic("dram: block ordinal below ring window")
	}
	if ordinal-r.base >= uint64(len(r.slots)) {
		r.grow(ordinal, consumedLim)
	}
	r.slots[ordinal&uint64(len(r.slots)-1)] = blk
}

// grow makes the window cover ordinal: first the base slides past
// consumed ordinals, then the ring doubles until the span fits.
func (r *blockRing) grow(ordinal, consumedLim uint64) {
	if n := uint64(len(r.slots)); n > 0 {
		for r.base < consumedLim && r.slots[r.base&(n-1)] == nil {
			r.base++
		}
	}
	need := ordinal - r.base + 1
	size := uint64(len(r.slots))
	if size == 0 {
		size = 8
	}
	for size < need {
		size *= 2
	}
	if size == uint64(len(r.slots)) {
		return
	}
	grown := make([][]cell.Cell, size)
	for o := r.base; o < r.base+uint64(len(r.slots)); o++ {
		grown[o&(size-1)] = r.slots[o&uint64(len(r.slots)-1)]
	}
	r.slots = grown
}

// DRAM is the banked memory system. It is not safe for concurrent use;
// the simulator is single-goroutine by design (see DESIGN.md §6).
type DRAM struct {
	cfg       Config
	busyUntil []cell.Slot  // per bank: busy while now < busyUntil
	groupBlk  []int        // per group: blocks reserved-or-stored
	queues    []queueState // dense arena indexed by physical ordinal

	// groupMask/bankMask replace the per-probe modulo of Group/BankFor
	// with a mask when the respective count is a power of two (-1
	// otherwise): both sit on the per-block datapath (every CanWrite,
	// bank probe and DSS conflict test lands here), where a runtime
	// division is the single most expensive instruction left.
	groups    int
	groupMask int
	bankMask  int

	// readable mirrors ReadableNow per physical queue as a dense
	// hierarchical bitset, updated by every reservation/issue
	// transition. The MMA selectors consume it as their eligibility
	// mask (see ReadableSet), replacing per-candidate map probes.
	readable *bitset.Set

	// blockPool recycles b-cell block storage between writes and reads
	// so the steady-state datapath does not allocate.
	blockPool [][]cell.Cell

	// accesses counts issued bank accesses, for stats.
	accesses uint64
	// busySlots accumulates bank-busy time (accesses × AccessSlots),
	// for utilization reporting.
	busySlots uint64
}

// New constructs a DRAM from cfg. It panics on invalid configuration;
// callers are expected to Validate first (construction happens at
// setup time, not on the datapath).
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &DRAM{
		cfg:       cfg,
		busyUntil: make([]cell.Slot, cfg.Banks),
		groupBlk:  make([]int, cfg.Groups()),
		queues:    make([]queueState, cfg.Queues),
		readable:  bitset.New(cfg.Queues),
		groups:    cfg.Groups(),
		groupMask: -1,
		bankMask:  -1,
	}
	if g := d.groups; g&(g-1) == 0 {
		d.groupMask = g - 1
	}
	if b := cfg.BanksPerGroup; b&(b-1) == 0 {
		d.bankMask = b - 1
	}
	return d
}

// Config returns the configuration the DRAM was built with.
func (d *DRAM) Config() Config { return d.cfg }

// Group returns the bank group a physical queue is statically assigned
// to: the low-order bits of the queue field (Figure 6), i.e. p mod G.
func (d *DRAM) Group(p cell.PhysQueueID) int {
	if d.groupMask >= 0 {
		return int(p) & d.groupMask
	}
	return int(p) % d.groups
}

// BankFor returns the bank that block ordinal k of queue p maps to
// under the block-cyclic interleave of Figure 6.
//
//pktbuf:hotpath
func (d *DRAM) BankFor(p cell.PhysQueueID, ordinal uint64) BankID {
	g := d.Group(p)
	var idx int
	if d.bankMask >= 0 {
		idx = int(ordinal) & d.bankMask
	} else {
		idx = int(ordinal % uint64(d.cfg.BanksPerGroup))
	}
	return BankID(g*d.cfg.BanksPerGroup + idx)
}

// WriteBank returns the bank the *next reserved* write block of queue
// p will target. The DSS uses this to test requests against the ORR.
//
//pktbuf:hotpath
func (d *DRAM) WriteBank(p cell.PhysQueueID) BankID {
	return d.BankFor(p, d.queue(p).writeReserved)
}

// ReadBank returns the bank holding the next unreserved-for-read block
// of queue p, or NoBank if no readable block remains.
//
//pktbuf:hotpath
func (d *DRAM) ReadBank(p cell.PhysQueueID) BankID {
	q := d.queue(p)
	if q.readReserved >= q.writeReserved {
		return NoBank
	}
	return d.BankFor(p, q.readReserved)
}

// BankBusy reports whether bank b is within its random access time at
// slot now.
//
//pktbuf:hotpath
func (d *DRAM) BankBusy(b BankID, now cell.Slot) bool {
	return now < d.busyUntil[b]
}

// CanWrite reports whether queue p's group has room to reserve one
// more block.
//
//pktbuf:hotpath
func (d *DRAM) CanWrite(p cell.PhysQueueID) bool {
	if d.cfg.BankCapacityBlocks == 0 {
		return true
	}
	return d.groupBlk[d.Group(p)] < d.GroupCapacityBlocks()
}

// GroupCapacityBlocks returns the block capacity of one group.
func (d *DRAM) GroupCapacityBlocks() int {
	return d.cfg.BankCapacityBlocks * d.cfg.BanksPerGroup
}

// TotalCapacityBlocks returns the block capacity of the whole DRAM
// (zero if unbounded).
func (d *DRAM) TotalCapacityBlocks() int {
	return d.cfg.BankCapacityBlocks * d.cfg.Banks
}

// GroupOccupancy returns the number of blocks reserved or stored in
// group g.
func (d *DRAM) GroupOccupancy(g int) int { return d.groupBlk[g] }

// TotalOccupancyBlocks returns the number of blocks reserved or stored
// overall.
func (d *DRAM) TotalOccupancyBlocks() int {
	total := 0
	for _, n := range d.groupBlk {
		total += n
	}
	return total
}

// LeastOccupiedGroup returns the group with the fewest stored blocks
// (ties broken toward the lowest index). The renaming allocator uses
// this to balance DRAM occupancy (§6).
//
//pktbuf:hotpath
func (d *DRAM) LeastOccupiedGroup() int {
	best, bestOcc := 0, d.groupBlk[0]
	for g := 1; g < len(d.groupBlk); g++ {
		if d.groupBlk[g] < bestOcc {
			best, bestOcc = g, d.groupBlk[g]
		}
	}
	return best
}

// QueueBlocks returns the number of readable blocks queue p holds
// (reserved writes included, consumed reads excluded).
func (d *DRAM) QueueBlocks(p cell.PhysQueueID) int {
	q := d.queue(p)
	return int(q.writeReserved - q.readReserved)
}

// QueueCells returns the number of readable cells queue p holds.
func (d *DRAM) QueueCells(p cell.PhysQueueID) int {
	return d.QueueBlocks(p) * d.cfg.BlockCells
}

// ReadableNow reports whether the next read reservation for p targets
// a block whose write has already been issued (its cells are in the
// array). The MMA's eligibility test uses this to avoid ordering reads
// that would race their own data. It reads the incrementally
// maintained readable bitset, so the answer is one word probe.
//
//pktbuf:hotpath
func (d *DRAM) ReadableNow(p cell.PhysQueueID) bool {
	return d.readable.Has(int(p))
}

// ReadableSet exposes the per-physical-queue "readable now" bits as a
// dense bitset the MMA selectors AND into their indices. The set is
// owned and kept current by the DRAM; callers must treat it as
// read-only.
func (d *DRAM) ReadableSet() *bitset.Set { return d.readable }

// refreshReadable re-derives p's readable bit from the reservation
// cursors and the stored blocks. Called after every transition that
// can flip it; idempotent.
//
//pktbuf:hotpath
func (d *DRAM) refreshReadable(p cell.PhysQueueID, q *queueState) {
	ok := q.readReserved < q.writeReserved && q.ring.get(q.readReserved) != nil
	if ok {
		d.readable.Set(int(p))
	} else {
		d.readable.Clear(int(p))
	}
}

// Accesses returns the number of bank accesses issued.
func (d *DRAM) Accesses() uint64 { return d.accesses }

// Utilization returns the fraction of aggregate bank-time spent busy
// over the first `now` slots (1.0 = every bank always busy). It
// quantifies how much of the raw DRAM bandwidth the scheduler
// actually exploits — the §4 "potential of bank interleaving".
func (d *DRAM) Utilization(now cell.Slot) float64 {
	if now == 0 {
		return 0
	}
	return float64(d.busySlots) / (float64(now) * float64(d.cfg.Banks))
}

func (d *DRAM) queue(p cell.PhysQueueID) *queueState {
	if int(p) >= len(d.queues) {
		d.queues = arena.Grown(d.queues, int(p)+1)
		d.readable.Grow(len(d.queues))
	}
	return &d.queues[p]
}

// AcquireBlock returns a length-b cell slice from the recycling pool
// (or a fresh one). Recycled slices retain stale contents: the caller
// must overwrite all b entries. Callers staging a write block through
// the DSS use it so the steady-state write path does not allocate;
// the slice comes back to the pool via ReleaseBlock.
func (d *DRAM) AcquireBlock() []cell.Cell {
	if n := len(d.blockPool); n > 0 {
		blk := d.blockPool[n-1]
		d.blockPool = d.blockPool[:n-1]
		return blk
	}
	return make([]cell.Cell, d.cfg.BlockCells)
}

// ReleaseBlock returns a block slice — one handed out by AcquireBlock
// or returned by BeginRead/BeginReadAt — to the recycling pool. The
// caller must not retain the slice afterwards. Slices of the wrong
// size are dropped.
func (d *DRAM) ReleaseBlock(blk []cell.Cell) {
	if len(blk) != d.cfg.BlockCells {
		return
	}
	d.blockPool = append(d.blockPool, blk)
}

// ReserveWrite assigns the next block ordinal (and hence bank) of
// queue p to a pending write and charges the group's capacity. The
// reservation happens in MMA order; the issue may happen later and out
// of order via BeginWriteAt.
func (d *DRAM) ReserveWrite(p cell.PhysQueueID) (ordinal uint64, bank BankID, err error) {
	if !d.CanWrite(p) {
		return 0, NoBank, fmt.Errorf("%w: group %d", ErrGroupFull, d.Group(p))
	}
	q := d.queue(p)
	ordinal = q.writeReserved
	q.writeReserved++
	d.groupBlk[d.Group(p)]++
	d.refreshReadable(p, q)
	return ordinal, d.BankFor(p, ordinal), nil
}

// BeginWriteAt issues the write of a reserved block: exactly b cells
// stored at the given ordinal, occupying its bank for AccessSlots
// slots starting at now.
func (d *DRAM) BeginWriteAt(p cell.PhysQueueID, ordinal uint64, cells []cell.Cell, now cell.Slot) (BankID, error) {
	if len(cells) != d.cfg.BlockCells {
		return NoBank, fmt.Errorf("%w: got %d, want %d", ErrBadBlockSize, len(cells), d.cfg.BlockCells)
	}
	q := d.queue(p)
	if ordinal >= q.writeReserved {
		return NoBank, fmt.Errorf("%w: write ordinal %d not reserved (next %d)", ErrBadOrdinal, ordinal, q.writeReserved)
	}
	if q.ring.get(ordinal) != nil {
		return NoBank, fmt.Errorf("%w: write ordinal %d already issued", ErrBadOrdinal, ordinal)
	}
	if ordinal < q.readReserved {
		return NoBank, fmt.Errorf("%w: write ordinal %d already consumed", ErrBadOrdinal, ordinal)
	}
	b := d.BankFor(p, ordinal)
	if d.BankBusy(b, now) {
		return NoBank, fmt.Errorf("%w: bank %d busy until slot %d, write at slot %d",
			ErrBankConflict, b, d.busyUntil[b], now)
	}
	stored := d.AcquireBlock()
	copy(stored, cells)
	q.ring.put(ordinal, stored, q.readReserved)
	d.busyUntil[b] = now + cell.Slot(d.cfg.AccessSlots)
	d.accesses++
	d.busySlots += uint64(d.cfg.AccessSlots)
	d.refreshReadable(p, q)
	return b, nil
}

// BeginWrite reserves and immediately issues an in-order write (the
// RADS path, where reservation and issue coincide).
func (d *DRAM) BeginWrite(p cell.PhysQueueID, cells []cell.Cell, now cell.Slot) (BankID, error) {
	if len(cells) != d.cfg.BlockCells {
		return NoBank, fmt.Errorf("%w: got %d, want %d", ErrBadBlockSize, len(cells), d.cfg.BlockCells)
	}
	ordinal, _, err := d.ReserveWrite(p)
	if err != nil {
		return NoBank, err
	}
	bank, err := d.BeginWriteAt(p, ordinal, cells, now)
	if err != nil {
		// Roll the reservation back so the caller can retry later.
		q := d.queue(p)
		q.writeReserved--
		d.groupBlk[d.Group(p)]--
		d.refreshReadable(p, q)
		return NoBank, err
	}
	return bank, nil
}

// ReserveRead assigns the next readable block ordinal of queue p to a
// pending read. It fails if no block is readable (either the queue is
// drained or the next block's write has not been issued yet).
func (d *DRAM) ReserveRead(p cell.PhysQueueID) (ordinal uint64, bank BankID, err error) {
	q := d.queue(p)
	if q.readReserved >= q.writeReserved {
		return 0, NoBank, fmt.Errorf("%w: physical queue %d", ErrQueueEmpty, p)
	}
	if q.ring.get(q.readReserved) == nil {
		return 0, NoBank, fmt.Errorf("%w: physical queue %d block %d write not yet issued",
			ErrQueueEmpty, p, q.readReserved)
	}
	ordinal = q.readReserved
	q.readReserved++
	d.refreshReadable(p, q)
	return ordinal, d.BankFor(p, ordinal), nil
}

// BeginReadAt issues a reserved read: the block at ordinal is removed
// and its cells returned; its bank is occupied for AccessSlots slots
// starting at now. The caller models transfer latency by delivering
// the cells to SRAM AccessSlots later.
func (d *DRAM) BeginReadAt(p cell.PhysQueueID, ordinal uint64, now cell.Slot) (BankID, []cell.Cell, error) {
	q := d.queue(p)
	if ordinal >= q.readReserved {
		return NoBank, nil, fmt.Errorf("%w: read ordinal %d not reserved (next %d)", ErrBadOrdinal, ordinal, q.readReserved)
	}
	blk := q.ring.get(ordinal)
	if blk == nil {
		return NoBank, nil, fmt.Errorf("%w: read ordinal %d absent or already read", ErrBadOrdinal, ordinal)
	}
	b := d.BankFor(p, ordinal)
	if d.BankBusy(b, now) {
		return NoBank, nil, fmt.Errorf("%w: bank %d busy until slot %d, read at slot %d",
			ErrBankConflict, b, d.busyUntil[b], now)
	}
	q.ring.del(ordinal)
	q.readsDone++
	d.busyUntil[b] = now + cell.Slot(d.cfg.AccessSlots)
	d.groupBlk[d.Group(p)]--
	d.accesses++
	d.busySlots += uint64(d.cfg.AccessSlots)
	d.refreshReadable(p, q)
	return b, blk, nil
}

// BeginRead reserves and immediately issues an in-order read (the RADS
// path).
func (d *DRAM) BeginRead(p cell.PhysQueueID, now cell.Slot) (BankID, []cell.Cell, error) {
	q := d.queue(p)
	if q.readReserved >= q.writeReserved {
		return NoBank, nil, fmt.Errorf("%w: physical queue %d", ErrQueueEmpty, p)
	}
	ordinal, _, err := d.ReserveRead(p)
	if err != nil {
		return NoBank, nil, err
	}
	bank, cells, err := d.BeginReadAt(p, ordinal, now)
	if err != nil {
		q.readReserved--
		d.refreshReadable(p, q)
		return NoBank, nil, err
	}
	return bank, cells, err
}
