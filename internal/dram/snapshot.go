package dram

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/frame"
)

// Snapshot serializes the DRAM occupancy and timing state through the
// trace frame codec: per-bank busy horizons, per-group block counts,
// per-queue reservation cursors and the stored blocks themselves. The
// geometry comes from the configuration the owner reconstructs; the
// readable bitset and the block recycling pool are derived state and
// are rebuilt on restore.
func (d *DRAM) Snapshot(w *frame.Writer) {
	busy, groups, live := 0, 0, 0
	for _, until := range d.busyUntil {
		if until > 0 {
			busy++
		}
	}
	for _, n := range d.groupBlk {
		if n != 0 {
			groups++
		}
	}
	for p := range d.queues {
		q := &d.queues[p]
		if q.writeReserved > 0 || q.readReserved > 0 || q.readsDone > 0 {
			live++
		}
	}
	w.Begin("dram")
	w.Attr("accesses", int64(d.accesses))
	w.Attr("busyslots", int64(d.busySlots))
	w.Attr("banks", int64(busy))
	w.Attr("groups", int64(groups))
	w.Attr("queues", int64(live))
	w.Begin("dram-banks")
	for b, until := range d.busyUntil {
		if until > 0 {
			w.Row(int64(b), int64(until))
		}
	}
	w.Begin("dram-groups")
	for g, n := range d.groupBlk {
		if n != 0 {
			w.Row(int64(g), int64(n))
		}
	}
	for p := range d.queues {
		q := &d.queues[p]
		if q.writeReserved == 0 && q.readReserved == 0 && q.readsDone == 0 {
			continue
		}
		blocks := 0
		for o := q.ring.base; o < q.writeReserved; o++ {
			if q.ring.get(o) != nil {
				blocks++
			}
		}
		w.Begin("dram-queue")
		w.Attr("q", int64(p))
		w.Attr("wres", int64(q.writeReserved))
		w.Attr("rres", int64(q.readReserved))
		w.Attr("rdone", int64(q.readsDone))
		w.Attr("blocks", int64(blocks))
		for o := q.ring.base; o < q.writeReserved; o++ {
			blk := q.ring.get(o)
			if blk == nil {
				continue
			}
			row := make([]int64, 1, 1+2*len(blk))
			row[0] = int64(o)
			for _, c := range blk {
				row = append(row, int64(c.Queue), int64(c.Seq))
			}
			w.Row(row...)
		}
	}
}

// Restore loads a snapshot written by Snapshot into a freshly
// constructed DRAM of the same configuration.
func (d *DRAM) Restore(r *frame.Reader) error {
	if err := r.Expect("dram"); err != nil {
		return err
	}
	accesses, err := r.NeedAttr("accesses")
	if err != nil {
		return err
	}
	busySlots, err := r.NeedAttr("busyslots")
	if err != nil {
		return err
	}
	banks, err := r.NeedAttr("banks")
	if err != nil {
		return err
	}
	groups, err := r.NeedAttr("groups")
	if err != nil {
		return err
	}
	queues, err := r.NeedAttr("queues")
	if err != nil {
		return err
	}
	d.accesses = uint64(accesses)
	d.busySlots = uint64(busySlots)
	if err := r.Expect("dram-banks"); err != nil {
		return err
	}
	for i := int64(0); i < banks; i++ {
		row, err := r.NeedRow(2)
		if err != nil {
			return err
		}
		b := int(row[0])
		if b < 0 || b >= len(d.busyUntil) {
			return fmt.Errorf("%w: dram bank %d out of range", frame.ErrFrame, b)
		}
		d.busyUntil[b] = cell.Slot(row[1])
	}
	if err := r.Expect("dram-groups"); err != nil {
		return err
	}
	for i := int64(0); i < groups; i++ {
		row, err := r.NeedRow(2)
		if err != nil {
			return err
		}
		g := int(row[0])
		if g < 0 || g >= len(d.groupBlk) {
			return fmt.Errorf("%w: dram group %d out of range", frame.ErrFrame, g)
		}
		d.groupBlk[g] = int(row[1])
	}
	for i := int64(0); i < queues; i++ {
		if err := r.Expect("dram-queue"); err != nil {
			return err
		}
		p, err := r.NeedAttr("q")
		if err != nil {
			return err
		}
		wres, err := r.NeedAttr("wres")
		if err != nil {
			return err
		}
		rres, err := r.NeedAttr("rres")
		if err != nil {
			return err
		}
		rdone, err := r.NeedAttr("rdone")
		if err != nil {
			return err
		}
		blocks, err := r.NeedAttr("blocks")
		if err != nil {
			return err
		}
		q := d.queue(cell.PhysQueueID(p))
		q.writeReserved = uint64(wres)
		q.readReserved = uint64(rres)
		q.readsDone = uint64(rdone)
		for j := int64(0); j < blocks; j++ {
			row, err := r.NeedRow(1 + 2*d.cfg.BlockCells)
			if err != nil {
				return err
			}
			blk := make([]cell.Cell, d.cfg.BlockCells)
			for k := range blk {
				blk[k] = cell.Cell{Queue: cell.QueueID(row[1+2*k]), Seq: uint64(row[2+2*k])}
			}
			q.ring.put(uint64(row[0]), blk, q.readReserved)
		}
		d.refreshReadable(cell.PhysQueueID(p), q)
	}
	return nil
}
