package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
)

func TestNewMapperValidation(t *testing.T) {
	if _, err := NewMapper(4, 4, 2, 64, 16); err != nil {
		t.Fatalf("valid mapper: %v", err)
	}
	bad := [][5]int{
		{3, 4, 2, 64, 16},   // groups not power of two
		{4, 3, 2, 64, 16},   // banksPerGroup not power of two
		{4, 4, 3, 64, 16},   // blockCells not power of two
		{4, 4, 2, 60, 16},   // queueSpace not power of two
		{4, 4, 2, 64, 15},   // ordinalSpace not power of two
		{0, 4, 2, 64, 16},   // zero
		{128, 4, 2, 64, 16}, // groups exceed queue space
		{4, 32, 2, 64, 16},  // banks exceed ordinal space
	}
	for i, c := range bad {
		if _, err := NewMapper(c[0], c[1], c[2], c[3], c[4]); err == nil {
			t.Errorf("case %d: NewMapper(%v) succeeded, want error", i, c)
		}
	}
}

func TestMapMatchesFigure6(t *testing.T) {
	m, err := NewMapper(4, 4, 2, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Queue 5 -> group 5 mod 4 = 1; ordinal 6 -> bank-in-group 2;
	// flat bank = 1*4+2 = 6.
	a := m.Map(5, 6)
	if a.Group != 1 || a.BankInGroup != 2 || a.Bank != 6 {
		t.Errorf("Map(5,6) = %+v", a)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m, err := NewMapper(8, 4, 4, 1024, 256)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pRaw uint16, ordRaw uint8) bool {
		p := cell.PhysQueueID(pRaw % 1024)
		ord := uint64(ordRaw)
		addr := m.Encode(p, ord)
		// Block alignment: low log2(4*64)=8 bits zero.
		if addr&0xff != 0 {
			return false
		}
		dec := m.Decode(addr)
		return dec.Queue == p && dec.Ordinal == ord &&
			dec.Group == int(p)%8 && dec.BankInGroup == int(ord%4) &&
			dec.Bank == BankID(dec.Group*4+dec.BankInGroup)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapperAgreesWithDRAM(t *testing.T) {
	// The Mapper's bank assignment must agree with the DRAM model's
	// internal bankFor on power-of-two geometries.
	cfg := Config{Banks: 16, BanksPerGroup: 4, AccessSlots: 8, BlockCells: 2}
	d := New(cfg)
	m, err := NewMapper(cfg.Groups(), cfg.BanksPerGroup, cfg.BlockCells, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	now := cell.Slot(0)
	for p := cell.PhysQueueID(0); p < 8; p++ {
		for k := uint64(0); k < 6; k++ {
			want := m.Map(p, k).Bank
			got, err := d.BeginWrite(p, mkBlock(cell.QueueID(p), 2*k, 2), now)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("queue %d block %d: DRAM bank %d, Mapper bank %d", p, k, got, want)
			}
			now += 8
		}
	}
}
