package rename

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cell"
)

// TestPropertyAgainstReferenceModel drives the renaming table with
// random write/consume sequences and checks it against a trivial
// reference: per logical queue, a FIFO of cells; the table's visible
// counters and FIFO-across-names order must always agree.
func TestPropertyAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		const (
			groups    = 4
			names     = 3
			regCap    = 4
			blockCell = 2
			queues    = 5
			perGroup  = 6 // group capacity in blocks
		)
		tb, err := New(groups, names, regCap, blockCell)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		occ := make([]int, groups) // blocks per group
		groupOK := func(g int) bool { return occ[g] < perGroup }
		groupOcc := func(g int) int { return occ[g] }

		// Reference: cells in DRAM per logical queue (count only; FIFO
		// order is implied by the per-name counters the table keeps).
		ref := make([]int, queues)
		// ownedBy tracks which logical queue holds each phys name.
		for op := 0; op < 500; op++ {
			q := cell.QueueID(rng.Intn(queues))
			if rng.Intn(2) == 0 {
				p, err := tb.WriteTarget(q, groupOK, groupOcc)
				if err != nil {
					continue // exhaustion is legal; state must stay consistent
				}
				if int(p)%groups < 0 {
					return false
				}
				if owner, ok := tb.Owner(p); !ok || owner != q {
					return false
				}
				if err := tb.NoteWrite(q, p); err != nil {
					return false
				}
				occ[int(p)%groups]++
				ref[q] += blockCell
			} else {
				p, err := tb.ConsumeCell(q)
				if ref[q] == 0 {
					if err == nil {
						return false // consumed a cell that does not exist
					}
					continue
				}
				if err != nil {
					return false
				}
				// The consumed cell must come from a name q owns (or
				// owned: the name may have been freed by this consume).
				if owner, ok := tb.Owner(p); ok && owner != q {
					return false
				}
				ref[q]--
				// occupancy accounting: the simulator decrements group
				// occupancy at read issue; approximate with per-cell
				// fractional release at block boundaries.
				if ref[q]%blockCell == 0 {
					occ[int(p)%groups]--
				}
			}
			// Table counters must match the reference at all times.
			for lq := cell.QueueID(0); lq < queues; lq++ {
				if tb.CellsInDRAM(lq) != ref[lq] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNameConservation: names allocated + names free is
// invariant, and no name is ever owned by two queues.
func TestPropertyNameConservation(t *testing.T) {
	f := func(seed int64) bool {
		const groups, names = 3, 4
		tb, err := New(groups, names, 8, 1)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		all := func(int) bool { return true }
		zero := func(int) int { return 0 }
		pending := map[cell.QueueID]int{}
		for op := 0; op < 300; op++ {
			q := cell.QueueID(rng.Intn(4))
			if rng.Intn(2) == 0 {
				if p, err := tb.WriteTarget(q, all, zero); err == nil {
					if err := tb.NoteWrite(q, p); err != nil {
						return false
					}
					pending[q]++
				}
			} else if pending[q] > 0 {
				if _, err := tb.ConsumeCell(q); err != nil {
					return false
				}
				pending[q]--
			}
			free := 0
			for g := 0; g < groups; g++ {
				free += tb.FreeNames(g)
			}
			owned := 0
			for p := 0; p < groups*names; p++ {
				if _, ok := tb.Owner(cell.PhysQueueID(p)); ok {
					owned++
				}
			}
			if free+owned != tb.TotalNames() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
