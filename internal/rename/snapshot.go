package rename

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/frame"
)

// Snapshot serializes the renaming state through the trace frame
// codec: every register's live entries in head order, and each group's
// free-name stack verbatim. The stack order is semantic — names pop
// from the top, and recycled names land back there — so a restored
// table must hand out future names in exactly the sequence the
// original would have. The name→owner table is derived from the
// registers on restore.
func (t *Table) Snapshot(w *frame.Writer) {
	live, freeN := 0, 0
	for q := range t.regs {
		if t.regs[q].count > 0 {
			live++
		}
	}
	for _, names := range t.free {
		freeN += len(names)
	}
	w.Begin("rename")
	w.Attr("regs", int64(live))
	w.Attr("free", int64(freeN))
	w.Begin("rename-free")
	for g, names := range t.free {
		for _, p := range names { // bottom of the stack first
			w.Row(int64(g), int64(p))
		}
	}
	for q := range t.regs {
		r := &t.regs[q]
		if r.count == 0 {
			continue
		}
		w.Begin("rename-reg")
		w.Attr("q", int64(q))
		w.Attr("n", int64(r.count))
		for i := 0; i < r.count; i++ {
			e := r.at(i)
			w.Row(int64(e.phys), int64(e.count))
		}
	}
}

// Restore loads a snapshot written by Snapshot into a freshly
// constructed table of the same geometry, replacing its virgin free
// stacks with the recorded ones.
func (t *Table) Restore(r *frame.Reader) error {
	if err := r.Expect("rename"); err != nil {
		return err
	}
	regs, err := r.NeedAttr("regs")
	if err != nil {
		return err
	}
	freeN, err := r.NeedAttr("free")
	if err != nil {
		return err
	}
	for g := range t.free {
		t.free[g] = t.free[g][:0]
	}
	for i := range t.inUse {
		t.inUse[i] = cell.NoQueue
	}
	if err := r.Expect("rename-free"); err != nil {
		return err
	}
	for i := int64(0); i < freeN; i++ {
		row, err := r.NeedRow(2)
		if err != nil {
			return err
		}
		g := int(row[0])
		if g < 0 || g >= t.groups {
			return fmt.Errorf("%w: rename group %d out of range", frame.ErrFrame, g)
		}
		t.free[g] = append(t.free[g], cell.PhysQueueID(row[1]))
	}
	used := 0
	for i := int64(0); i < regs; i++ {
		if err := r.Expect("rename-reg"); err != nil {
			return err
		}
		q, err := r.NeedAttr("q")
		if err != nil {
			return err
		}
		n, err := r.NeedAttr("n")
		if err != nil {
			return err
		}
		reg := t.reg(cell.QueueID(q))
		if int(n) > t.capacity {
			return fmt.Errorf("%w: rename register %d holds %d entries, capacity %d", frame.ErrFrame, q, n, t.capacity)
		}
		if reg.entries == nil {
			reg.entries = make([]entry, t.capacity)
		}
		// Ring phase is unobservable; normalize the restored register to
		// head 0 with the entries in head order.
		reg.head = 0
		reg.count = int(n)
		for j := 0; j < int(n); j++ {
			row, err := r.NeedRow(2)
			if err != nil {
				return err
			}
			p := cell.PhysQueueID(row[0])
			if p < 0 || int(p) >= len(t.inUse) {
				return fmt.Errorf("%w: rename physical name %d out of range", frame.ErrFrame, p)
			}
			reg.entries[j] = entry{phys: p, count: int(row[1])}
			t.inUse[p] = cell.QueueID(q)
			used++
		}
	}
	if used+int(freeN) != t.totalNames {
		return fmt.Errorf("%w: rename names used %d + free %d != total %d", frame.ErrFrame, used, freeN, t.totalNames)
	}
	return nil
}
