package rename

import (
	"errors"
	"testing"

	"repro/internal/cell"
)

func allOK(int) bool  { return true }
func zeroOcc(int) int { return 0 }

func TestNewValidation(t *testing.T) {
	cases := [][4]int{{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0}}
	for _, c := range cases {
		if _, err := New(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("New(%v) succeeded, want error", c)
		}
	}
	tb, err := New(4, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Groups() != 4 || tb.TotalNames() != 32 {
		t.Errorf("Groups=%d TotalNames=%d", tb.Groups(), tb.TotalNames())
	}
	for g := 0; g < 4; g++ {
		if tb.FreeNames(g) != 8 {
			t.Errorf("FreeNames(%d) = %d", g, tb.FreeNames(g))
		}
	}
}

func TestNameGroupAlignment(t *testing.T) {
	// Allocated names must belong (mod G) to the group they were
	// allocated from, matching the DRAM's static assignment.
	tb, _ := New(4, 4, 4, 2)
	occ := map[int]int{}
	for i := 0; i < 8; i++ {
		q := cell.QueueID(i)
		p, err := tb.WriteTarget(q, allOK, func(g int) int { return occ[g] })
		if err != nil {
			t.Fatal(err)
		}
		g := int(p) % 4
		occ[g] += 10 // make this group look loaded so spreading occurs
		if owner, ok := tb.Owner(p); !ok || owner != q {
			t.Errorf("Owner(%d) = %v, %v", p, owner, ok)
		}
	}
	// With least-occupied allocation, the 8 queues spread 2 per group.
	for g := 0; g < 4; g++ {
		if tb.FreeNames(g) != 2 {
			t.Errorf("FreeNames(%d) = %d, want 2", g, tb.FreeNames(g))
		}
	}
}

func TestWriteReadLifecycle(t *testing.T) {
	tb, _ := New(2, 2, 4, 2)
	q := cell.QueueID(7)

	// No mapping yet.
	if _, ok := tb.ReadTarget(q); ok {
		t.Error("ReadTarget on empty queue")
	}
	if _, err := tb.ConsumeCell(q); !errors.Is(err, ErrNoEntry) {
		t.Errorf("ConsumeCell err = %v", err)
	}

	p, err := tb.WriteTarget(q, allOK, zeroOcc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.NoteWrite(q, p); err != nil {
		t.Fatal(err)
	}
	if err := tb.NoteWrite(q, p); err != nil {
		t.Fatal(err)
	}
	if got := tb.CellsInDRAM(q); got != 4 {
		t.Errorf("CellsInDRAM = %d, want 4", got)
	}
	rp, ok := tb.ReadTarget(q)
	if !ok || rp != p {
		t.Errorf("ReadTarget = %d, %v; want %d", rp, ok, p)
	}
	for i := 0; i < 4; i++ {
		p2, err := tb.ConsumeCell(q)
		if err != nil || p2 != p {
			t.Fatalf("consume %d = %v, %v", i, p2, err)
		}
	}
	// Fully drained: register entry freed, name recycled.
	if got := tb.Entries(q); got != 0 {
		t.Errorf("Entries = %d, want 0", got)
	}
	if _, ok := tb.Owner(p); ok {
		t.Error("drained name still owned")
	}
	g := int(p) % 2
	if tb.FreeNames(g) != 2 {
		t.Errorf("FreeNames(%d) = %d, want 2", g, tb.FreeNames(g))
	}
}

func TestSpillToSecondGroup(t *testing.T) {
	// Group of the tail fills; the next write must allocate a second
	// entry in another group, and reads must drain FIFO across both.
	tb, _ := New(2, 2, 4, 2)
	q := cell.QueueID(0)
	occ := []int{0, 0}
	groupOK := func(g int) bool { return occ[g] < 2 } // 2 blocks per group

	p1, err := tb.WriteTarget(q, groupOK, func(g int) int { return occ[g] })
	if err != nil {
		t.Fatal(err)
	}
	g1 := int(p1) % 2
	for i := 0; i < 2; i++ {
		if err := tb.NoteWrite(q, p1); err != nil {
			t.Fatal(err)
		}
		occ[g1]++
	}
	// Group g1 now full: next target must be a new name elsewhere.
	p2, err := tb.WriteTarget(q, groupOK, func(g int) int { return occ[g] })
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Fatal("WriteTarget reused a full group's name")
	}
	if int(p2)%2 == g1 {
		t.Errorf("second name in same full group %d", g1)
	}
	if err := tb.NoteWrite(q, p2); err != nil {
		t.Fatal(err)
	}
	if got := tb.Entries(q); got != 2 {
		t.Errorf("Entries = %d, want 2", got)
	}
	// Reads drain p1 first (FIFO), then p2.
	for i := 0; i < 4; i++ {
		rp, ok := tb.ReadTarget(q)
		if !ok || rp != p1 {
			t.Fatalf("read %d target = %d, want %d", i, rp, p1)
		}
		if got, err := tb.ConsumeCell(q); err != nil || got != p1 {
			t.Fatal(err)
		}
	}
	rp, ok := tb.ReadTarget(q)
	if !ok || rp != p2 {
		t.Errorf("after draining p1, target = %d, want %d", rp, p2)
	}
	// p1's name is recycled.
	if _, owned := tb.Owner(p1); owned {
		t.Error("p1 still owned after drain")
	}
}

func TestNoteWriteMustTargetTail(t *testing.T) {
	tb, _ := New(2, 2, 4, 2)
	q := cell.QueueID(0)
	p, _ := tb.WriteTarget(q, allOK, zeroOcc)
	if err := tb.NoteWrite(q, p+100); !errors.Is(err, ErrNotTail) {
		t.Errorf("err = %v, want ErrNotTail", err)
	}
}

func TestRegisterCapacity(t *testing.T) {
	// registerCap 2: a queue can chain at most 2 physical names.
	tb, _ := New(4, 4, 2, 1)
	q := cell.QueueID(0)
	full := map[int]bool{}
	groupOK := func(g int) bool { return !full[g] }

	p1, err := tb.WriteTarget(q, groupOK, zeroOcc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.NoteWrite(q, p1); err != nil {
		t.Fatal(err)
	}
	full[int(p1)%4] = true
	p2, err := tb.WriteTarget(q, groupOK, zeroOcc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.NoteWrite(q, p2); err != nil {
		t.Fatal(err)
	}
	full[int(p2)%4] = true
	if _, err := tb.WriteTarget(q, groupOK, zeroOcc); !errors.Is(err, ErrRegisterFull) {
		t.Errorf("err = %v, want ErrRegisterFull", err)
	}
}

func TestNoFreeNames(t *testing.T) {
	tb, _ := New(1, 1, 4, 1)
	p, err := tb.WriteTarget(0, allOK, zeroOcc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.NoteWrite(0, p); err != nil {
		t.Fatal(err)
	}
	// A different logical queue wants a name; none left and queue 0's
	// group is "full" for it.
	if _, err := tb.WriteTarget(1, allOK, zeroOcc); !errors.Is(err, ErrNoFreeNames) {
		t.Errorf("err = %v, want ErrNoFreeNames", err)
	}
	// Vetoed groups also yield ErrNoFreeNames.
	tb2, _ := New(2, 2, 4, 1)
	if _, err := tb2.WriteTarget(0, func(int) bool { return false }, zeroOcc); !errors.Is(err, ErrNoFreeNames) {
		t.Errorf("err = %v, want ErrNoFreeNames", err)
	}
}

func TestConsumeCellPastEmpty(t *testing.T) {
	tb, _ := New(2, 2, 4, 4)
	q := cell.QueueID(0)
	p, _ := tb.WriteTarget(q, allOK, zeroOcc)
	if err := tb.NoteWrite(q, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := tb.ConsumeCell(q); err != nil {
			t.Fatal(err)
		}
	}
	// Entry drained and removed: the next consume has no entry.
	if _, err := tb.ConsumeCell(q); !errors.Is(err, ErrNoEntry) {
		t.Errorf("err = %v, want ErrNoEntry", err)
	}
}

// TestSingleQueueCanUseWholeDRAM is the §6 headline: with renaming, a
// single logical queue spreads across all groups; without (registerCap
// 1) it is confined to one group's capacity.
func TestSingleQueueCanUseWholeDRAM(t *testing.T) {
	const groups, perGroupBlocks = 4, 8
	occ := make([]int, groups)
	groupOK := func(g int) bool { return occ[g] < perGroupBlocks }
	groupOcc := func(g int) int { return occ[g] }

	// With renaming (ample register): all 32 blocks land.
	tb, _ := New(groups, 4, 16, 1)
	written := 0
	for i := 0; i < groups*perGroupBlocks; i++ {
		p, err := tb.WriteTarget(0, groupOK, groupOcc)
		if err != nil {
			break
		}
		if err := tb.NoteWrite(0, p); err != nil {
			t.Fatal(err)
		}
		occ[int(p)%groups]++
		written++
	}
	if written != groups*perGroupBlocks {
		t.Errorf("with renaming: wrote %d blocks, want %d", written, groups*perGroupBlocks)
	}

	// Without renaming (register capacity 1 = a single static name):
	// the queue stalls at one group's share.
	occ2 := make([]int, groups)
	tb2, _ := New(groups, 4, 1, 1)
	written2 := 0
	for i := 0; i < groups*perGroupBlocks; i++ {
		p, err := tb2.WriteTarget(0,
			func(g int) bool { return occ2[g] < perGroupBlocks },
			func(g int) int { return occ2[g] })
		if err != nil {
			break
		}
		if err := tb2.NoteWrite(0, p); err != nil {
			t.Fatal(err)
		}
		occ2[int(p)%groups]++
		written2++
	}
	if written2 != perGroupBlocks {
		t.Errorf("without renaming: wrote %d blocks, want %d (1/G of DRAM)", written2, perGroupBlocks)
	}
}
