// Package rename implements the DRAM-fragmentation remedy of §6:
// circular renaming registers that map each logical queue Qˡ onto a
// FIFO chain of physical queues Qᵖ, so one logical queue can spread
// across bank groups and occupy the entire DRAM.
//
// Each register entry holds a physical queue name and a counter of
// cells stored under that name (Figure 7). Writes always extend the
// tail entry; when the tail's group runs out of DRAM, a fresh physical
// name is allocated from the group that can "offer free DRAM space"
// (we pick the least-occupied one). Reads always drain the head entry;
// when its counter reaches zero the head advances and the physical
// name returns to the free pool.
//
// The scheme is invisible to the MMA and DSS layers: they operate on
// physical names only ("all previous results remain the same, although
// QP is used instead of Q", §6).
package rename

import (
	"errors"
	"fmt"

	"repro/internal/cell"
)

// Errors returned by the table.
var (
	ErrRegisterFull = errors.New("rename: renaming register at capacity")
	ErrNoFreeNames  = errors.New("rename: no free physical queue names in any writable group")
	ErrNoEntry      = errors.New("rename: logical queue has no physical mapping")
	ErrUnderflow    = errors.New("rename: counter underflow")
	ErrNotTail      = errors.New("rename: writes must target the tail entry")
)

// entry is one slot of a circular renaming register: the RNq field
// (physical name) and RNc field (cell count) of Figure 7.
type entry struct {
	phys  cell.PhysQueueID
	count int
}

// register is the per-logical-queue circular register. The paper's
// hardware is a fixed-capacity ring; we model it as a bounded deque.
type register struct {
	entries []entry
}

// Table is the set of renaming registers plus the free pool of
// physical queue names, partitioned by bank group (name p belongs to
// group p mod G, matching the DRAM's static assignment).
type Table struct {
	groups     int
	blockCells int
	capacity   int // max entries per register
	regs       map[cell.QueueID]*register
	free       [][]cell.PhysQueueID // per group, LIFO of free names
	inUse      map[cell.PhysQueueID]cell.QueueID
	totalNames int
}

// New builds a Table for G groups with namesPerGroup physical names
// each (the paper's oversubscription: P = A·Q names for Q logical
// queues), registers bounded at registerCap entries, and blocks of
// blockCells cells.
func New(groups, namesPerGroup, registerCap, blockCells int) (*Table, error) {
	switch {
	case groups <= 0:
		return nil, fmt.Errorf("rename: groups must be positive, got %d", groups)
	case namesPerGroup <= 0:
		return nil, fmt.Errorf("rename: namesPerGroup must be positive, got %d", namesPerGroup)
	case registerCap <= 0:
		return nil, fmt.Errorf("rename: registerCap must be positive, got %d", registerCap)
	case blockCells <= 0:
		return nil, fmt.Errorf("rename: blockCells must be positive, got %d", blockCells)
	}
	t := &Table{
		groups:     groups,
		blockCells: blockCells,
		capacity:   registerCap,
		regs:       make(map[cell.QueueID]*register),
		free:       make([][]cell.PhysQueueID, groups),
		inUse:      make(map[cell.PhysQueueID]cell.QueueID),
		totalNames: groups * namesPerGroup,
	}
	// Name p lives in group p mod G; stack them so low names pop first.
	for g := 0; g < groups; g++ {
		names := make([]cell.PhysQueueID, 0, namesPerGroup)
		for i := namesPerGroup - 1; i >= 0; i-- {
			names = append(names, cell.PhysQueueID(i*groups+g))
		}
		t.free[g] = names
	}
	return t, nil
}

// Groups returns G.
func (t *Table) Groups() int { return t.groups }

// FreeNames returns the number of unused physical names in group g.
func (t *Table) FreeNames(g int) int { return len(t.free[g]) }

// TotalNames returns the physical name space size P.
func (t *Table) TotalNames() int { return t.totalNames }

// RegisterCap returns the per-register entry capacity.
func (t *Table) RegisterCap() int { return t.capacity }

// ReadTargetTail returns the physical name of q's tail entry (where
// writes currently land), if any.
func (t *Table) ReadTargetTail(q cell.QueueID) (cell.PhysQueueID, bool) {
	r := t.regs[q]
	if r == nil || len(r.entries) == 0 {
		return cell.NoPhysQueue, false
	}
	return r.entries[len(r.entries)-1].phys, true
}

// Entries returns the number of live register entries for q.
func (t *Table) Entries(q cell.QueueID) int {
	if r, ok := t.regs[q]; ok {
		return len(r.entries)
	}
	return 0
}

// CellsInDRAM returns the total cell count across q's entries.
func (t *Table) CellsInDRAM(q cell.QueueID) int {
	r, ok := t.regs[q]
	if !ok {
		return 0
	}
	total := 0
	for _, e := range r.entries {
		total += e.count
	}
	return total
}

// Owner returns the logical queue using physical name p, if any.
func (t *Table) Owner(p cell.PhysQueueID) (cell.QueueID, bool) {
	q, ok := t.inUse[p]
	return q, ok
}

// WriteTarget returns the physical queue the next block of q must be
// written to, allocating a fresh name when needed. groupOK reports
// whether a group can accept one more block (the DRAM's CanWrite);
// groupOcc returns a group's occupancy, used to pick the least-loaded
// group for new allocations (§6: "the assignment algorithm could
// select a Qᵖ from the group with the least cells").
//
// The call is transactional: a name is allocated only when one is
// returned, and NoteWrite must follow each successful DRAM
// reservation.
func (t *Table) WriteTarget(q cell.QueueID, groupOK func(g int) bool, groupOcc func(g int) int) (cell.PhysQueueID, error) {
	r := t.regs[q]
	if r != nil && len(r.entries) > 0 {
		tail := r.entries[len(r.entries)-1]
		if groupOK(int(tail.phys) % t.groups) {
			return tail.phys, nil
		}
		if len(r.entries) >= t.capacity {
			return cell.NoPhysQueue, fmt.Errorf("%w: queue %d has %d entries", ErrRegisterFull, q, len(r.entries))
		}
	}
	// Allocate from the least-occupied group that has both free names
	// and room for the block.
	bestG := -1
	bestOcc := 0
	for g := 0; g < t.groups; g++ {
		if len(t.free[g]) == 0 || !groupOK(g) {
			continue
		}
		if occ := groupOcc(g); bestG < 0 || occ < bestOcc {
			bestG, bestOcc = g, occ
		}
	}
	if bestG < 0 {
		return cell.NoPhysQueue, ErrNoFreeNames
	}
	names := t.free[bestG]
	p := names[len(names)-1]
	t.free[bestG] = names[:len(names)-1]
	if r == nil {
		r = &register{}
		t.regs[q] = r
	}
	r.entries = append(r.entries, entry{phys: p})
	t.inUse[p] = q
	return p, nil
}

// NoteWrite credits one block of cells to the tail entry of q, which
// must be the entry WriteTarget returned.
func (t *Table) NoteWrite(q cell.QueueID, p cell.PhysQueueID) error {
	r := t.regs[q]
	if r == nil || len(r.entries) == 0 {
		return fmt.Errorf("%w: queue %d", ErrNoEntry, q)
	}
	tail := &r.entries[len(r.entries)-1]
	if tail.phys != p {
		return fmt.Errorf("%w: queue %d tail is %d, got %d", ErrNotTail, q, tail.phys, p)
	}
	tail.count += t.blockCells
	return nil
}

// ReadTarget returns the physical queue holding the oldest cells of q
// (the head entry), or false if q has nothing in DRAM.
func (t *Table) ReadTarget(q cell.QueueID) (cell.PhysQueueID, bool) {
	r := t.regs[q]
	if r == nil || len(r.entries) == 0 || r.entries[0].count == 0 {
		return cell.NoPhysQueue, false
	}
	return r.entries[0].phys, true
}

// ConsumeCell debits one cell from the head entry of q — the §6
// per-request translation: "each time a request for a Qˡ is issued by
// the scheduler ... the RNc counter would be decreased". It returns
// the physical name the request must use. When the counter reaches
// zero the head advances and the physical name is recycled.
func (t *Table) ConsumeCell(q cell.QueueID) (cell.PhysQueueID, error) {
	r := t.regs[q]
	if r == nil || len(r.entries) == 0 {
		return cell.NoPhysQueue, fmt.Errorf("%w: queue %d", ErrNoEntry, q)
	}
	head := &r.entries[0]
	if head.count < 1 {
		return cell.NoPhysQueue, fmt.Errorf("%w: queue %d head count %d", ErrUnderflow, q, head.count)
	}
	p := head.phys
	head.count--
	if head.count == 0 {
		t.releaseHead(q, r)
	}
	return p, nil
}

// releaseHead frees exhausted head entries. The tail entry is released
// too when empty — the queue then has no DRAM presence and its next
// write reallocates, possibly in a different group.
func (t *Table) releaseHead(q cell.QueueID, r *register) {
	for len(r.entries) > 0 && r.entries[0].count == 0 {
		p := r.entries[0].phys
		g := int(p) % t.groups
		t.free[g] = append(t.free[g], p)
		delete(t.inUse, p)
		r.entries = r.entries[1:]
	}
	if len(r.entries) == 0 {
		delete(t.regs, q)
	}
}
