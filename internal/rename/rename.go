// Package rename implements the DRAM-fragmentation remedy of §6:
// circular renaming registers that map each logical queue Qˡ onto a
// FIFO chain of physical queues Qᵖ, so one logical queue can spread
// across bank groups and occupy the entire DRAM.
//
// Each register entry holds a physical queue name and a counter of
// cells stored under that name (Figure 7). Writes always extend the
// tail entry; when the tail's group runs out of DRAM, a fresh physical
// name is allocated from the group that can "offer free DRAM space"
// (we pick the least-occupied one). Reads always drain the head entry;
// when its counter reaches zero the head advances and the physical
// name returns to the free pool.
//
// The registers live in a dense slice indexed by the logical queue
// ordinal, and each register is a true fixed-capacity ring (matching
// the paper's circular hardware register); the name→owner table is a
// slice indexed by the physical ordinal. Physical names are dense by
// construction: name p belongs to group p mod G and the full space is
// exactly G·namesPerGroup ordinals, so slice indexing is exact, not a
// hash.
//
// The scheme is invisible to the MMA and DSS layers: they operate on
// physical names only ("all previous results remain the same, although
// QP is used instead of Q", §6).
package rename

import (
	"errors"
	"fmt"

	"repro/internal/cell"
)

// Errors returned by the table.
var (
	ErrRegisterFull = errors.New("rename: renaming register at capacity")
	ErrNoFreeNames  = errors.New("rename: no free physical queue names in any writable group")
	ErrNoEntry      = errors.New("rename: logical queue has no physical mapping")
	ErrUnderflow    = errors.New("rename: counter underflow")
	ErrNotTail      = errors.New("rename: writes must target the tail entry")
)

// entry is one slot of a circular renaming register: the RNq field
// (physical name) and RNc field (cell count) of Figure 7.
type entry struct {
	phys  cell.PhysQueueID
	count int
}

// register is the per-logical-queue circular register: a fixed-size
// ring of entries. Storage is allocated on the queue's first write and
// reused forever after.
type register struct {
	entries []entry
	head    int
	count   int
}

func (r *register) at(i int) *entry {
	return &r.entries[(r.head+i)%len(r.entries)]
}

func (r *register) headEntry() *entry { return r.at(0) }

func (r *register) tailEntry() *entry { return r.at(r.count - 1) }

func (r *register) push(e entry) {
	*r.at(r.count) = e
	r.count++
}

func (r *register) popHead() entry {
	e := r.entries[r.head]
	r.head = (r.head + 1) % len(r.entries)
	r.count--
	return e
}

// Table is the set of renaming registers plus the free pool of
// physical queue names, partitioned by bank group (name p belongs to
// group p mod G, matching the DRAM's static assignment).
type Table struct {
	groups     int
	blockCells int
	capacity   int        // max entries per register
	regs       []register // dense arena indexed by logical ordinal
	free       [][]cell.PhysQueueID
	inUse      []cell.QueueID // indexed by physical ordinal; NoQueue = free
	totalNames int
}

// New builds a Table for G groups with namesPerGroup physical names
// each (the paper's oversubscription: P = A·Q names for Q logical
// queues), registers bounded at registerCap entries, and blocks of
// blockCells cells.
func New(groups, namesPerGroup, registerCap, blockCells int) (*Table, error) {
	switch {
	case groups <= 0:
		return nil, fmt.Errorf("rename: groups must be positive, got %d", groups)
	case namesPerGroup <= 0:
		return nil, fmt.Errorf("rename: namesPerGroup must be positive, got %d", namesPerGroup)
	case registerCap <= 0:
		return nil, fmt.Errorf("rename: registerCap must be positive, got %d", registerCap)
	case blockCells <= 0:
		return nil, fmt.Errorf("rename: blockCells must be positive, got %d", blockCells)
	}
	t := &Table{
		groups:     groups,
		blockCells: blockCells,
		capacity:   registerCap,
		free:       make([][]cell.PhysQueueID, groups),
		inUse:      make([]cell.QueueID, groups*namesPerGroup),
		totalNames: groups * namesPerGroup,
	}
	for i := range t.inUse {
		t.inUse[i] = cell.NoQueue
	}
	// Name p lives in group p mod G; stack them so low names pop first.
	for g := 0; g < groups; g++ {
		names := make([]cell.PhysQueueID, 0, namesPerGroup)
		for i := namesPerGroup - 1; i >= 0; i-- {
			names = append(names, cell.PhysQueueID(i*groups+g))
		}
		t.free[g] = names
	}
	return t, nil
}

// Groups returns G.
func (t *Table) Groups() int { return t.groups }

// FreeNames returns the number of unused physical names in group g.
func (t *Table) FreeNames(g int) int { return len(t.free[g]) }

// TotalNames returns the physical name space size P. Every name the
// table ever hands out is an ordinal in [0, P), so arenas indexed by
// physical name can be sized exactly.
func (t *Table) TotalNames() int { return t.totalNames }

// RegisterCap returns the per-register entry capacity.
func (t *Table) RegisterCap() int { return t.capacity }

// reg returns the register for q, growing the arena if q is beyond it
// (amortized; steady state never grows). It may return a register with
// count == 0 (no live mapping).
func (t *Table) reg(q cell.QueueID) *register {
	for int(q) >= len(t.regs) {
		t.regs = append(t.regs, register{})
	}
	return &t.regs[q]
}

// peek returns the register for q without growing the arena, or nil.
func (t *Table) peek(q cell.QueueID) *register {
	if q < 0 || int(q) >= len(t.regs) {
		return nil
	}
	return &t.regs[q]
}

// ReadTargetTail returns the physical name of q's tail entry (where
// writes currently land), if any.
func (t *Table) ReadTargetTail(q cell.QueueID) (cell.PhysQueueID, bool) {
	r := t.peek(q)
	if r == nil || r.count == 0 {
		return cell.NoPhysQueue, false
	}
	return r.tailEntry().phys, true
}

// Entries returns the number of live register entries for q.
func (t *Table) Entries(q cell.QueueID) int {
	if r := t.peek(q); r != nil {
		return r.count
	}
	return 0
}

// CellsInDRAM returns the total cell count across q's entries.
func (t *Table) CellsInDRAM(q cell.QueueID) int {
	r := t.peek(q)
	if r == nil {
		return 0
	}
	total := 0
	for i := 0; i < r.count; i++ {
		total += r.at(i).count
	}
	return total
}

// Owner returns the logical queue using physical name p, if any.
func (t *Table) Owner(p cell.PhysQueueID) (cell.QueueID, bool) {
	if p < 0 || int(p) >= len(t.inUse) || t.inUse[p] == cell.NoQueue {
		return cell.NoQueue, false
	}
	return t.inUse[p], true
}

// WriteTarget returns the physical queue the next block of q must be
// written to, allocating a fresh name when needed. groupOK reports
// whether a group can accept one more block (the DRAM's CanWrite);
// groupOcc returns a group's occupancy, used to pick the least-loaded
// group for new allocations (§6: "the assignment algorithm could
// select a Qᵖ from the group with the least cells").
//
// The call is transactional: a name is allocated only when one is
// returned, and NoteWrite must follow each successful DRAM
// reservation.
func (t *Table) WriteTarget(q cell.QueueID, groupOK func(g int) bool, groupOcc func(g int) int) (cell.PhysQueueID, error) {
	r := t.reg(q)
	if r.count > 0 {
		tail := r.tailEntry()
		if groupOK(int(tail.phys) % t.groups) {
			return tail.phys, nil
		}
		if r.count >= t.capacity {
			return cell.NoPhysQueue, fmt.Errorf("%w: queue %d has %d entries", ErrRegisterFull, q, r.count)
		}
	}
	// Allocate from the least-occupied group that has both free names
	// and room for the block.
	bestG := -1
	bestOcc := 0
	for g := 0; g < t.groups; g++ {
		if len(t.free[g]) == 0 || !groupOK(g) {
			continue
		}
		if occ := groupOcc(g); bestG < 0 || occ < bestOcc {
			bestG, bestOcc = g, occ
		}
	}
	if bestG < 0 {
		return cell.NoPhysQueue, ErrNoFreeNames
	}
	names := t.free[bestG]
	p := names[len(names)-1]
	t.free[bestG] = names[:len(names)-1]
	if r.entries == nil {
		r.entries = make([]entry, t.capacity)
	}
	r.push(entry{phys: p})
	t.inUse[p] = q
	return p, nil
}

// NoteWrite credits one block of cells to the tail entry of q, which
// must be the entry WriteTarget returned.
func (t *Table) NoteWrite(q cell.QueueID, p cell.PhysQueueID) error {
	r := t.peek(q)
	if r == nil || r.count == 0 {
		return fmt.Errorf("%w: queue %d", ErrNoEntry, q)
	}
	tail := r.tailEntry()
	if tail.phys != p {
		return fmt.Errorf("%w: queue %d tail is %d, got %d", ErrNotTail, q, tail.phys, p)
	}
	tail.count += t.blockCells
	return nil
}

// ReadTarget returns the physical queue holding the oldest cells of q
// (the head entry), or false if q has nothing in DRAM.
func (t *Table) ReadTarget(q cell.QueueID) (cell.PhysQueueID, bool) {
	r := t.peek(q)
	if r == nil || r.count == 0 || r.headEntry().count == 0 {
		return cell.NoPhysQueue, false
	}
	return r.headEntry().phys, true
}

// ConsumeCell debits one cell from the head entry of q — the §6
// per-request translation: "each time a request for a Qˡ is issued by
// the scheduler ... the RNc counter would be decreased". It returns
// the physical name the request must use. When the counter reaches
// zero the head advances and the physical name is recycled.
func (t *Table) ConsumeCell(q cell.QueueID) (cell.PhysQueueID, error) {
	r := t.peek(q)
	if r == nil || r.count == 0 {
		return cell.NoPhysQueue, fmt.Errorf("%w: queue %d", ErrNoEntry, q)
	}
	head := r.headEntry()
	if head.count < 1 {
		return cell.NoPhysQueue, fmt.Errorf("%w: queue %d head count %d", ErrUnderflow, q, head.count)
	}
	p := head.phys
	head.count--
	if head.count == 0 {
		t.releaseHead(r)
	}
	return p, nil
}

// releaseHead frees exhausted head entries. The tail entry is released
// too when empty — the queue then has no DRAM presence and its next
// write reallocates, possibly in a different group.
func (t *Table) releaseHead(r *register) {
	for r.count > 0 && r.headEntry().count == 0 {
		e := r.popHead()
		g := int(e.phys) % t.groups
		t.free[g] = append(t.free[g], e.phys)
		t.inUse[e.phys] = cell.NoQueue
	}
}
