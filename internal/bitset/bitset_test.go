package bitset

import (
	"math/rand"
	"testing"
)

// reference is a plain boolean-slice model of the Set.
type reference []bool

func (r reference) nextFrom(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < len(r); i++ {
		if r[i] {
			return i
		}
	}
	return -1
}

func (r reference) prevFrom(i int) int {
	if i >= len(r) {
		i = len(r) - 1
	}
	for ; i >= 0; i-- {
		if r[i] {
			return i
		}
	}
	return -1
}

func TestSetBasics(t *testing.T) {
	s := New(200)
	if !s.Empty() || s.First() != -1 || s.Last() != -1 {
		t.Fatal("fresh set not empty")
	}
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(199)
	for _, i := range []int{0, 63, 64, 199} {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false", i)
		}
	}
	if s.Has(-1) || s.Has(200) || s.Has(100) {
		t.Error("spurious Has")
	}
	if s.First() != 0 || s.Last() != 199 {
		t.Errorf("First/Last = %d/%d", s.First(), s.Last())
	}
	if got := s.NextFrom(1); got != 63 {
		t.Errorf("NextFrom(1) = %d, want 63", got)
	}
	if got := s.NextFrom(65); got != 199 {
		t.Errorf("NextFrom(65) = %d, want 199", got)
	}
	if got := s.PrevFrom(198); got != 64 {
		t.Errorf("PrevFrom(198) = %d, want 64", got)
	}
	s.Clear(0)
	s.Clear(199)
	if s.First() != 63 || s.Last() != 64 {
		t.Errorf("after clear First/Last = %d/%d", s.First(), s.Last())
	}
	s.Clear(63)
	s.Clear(64)
	if !s.Empty() {
		t.Error("set not empty after clearing all bits")
	}
}

func TestSetZeroCapacity(t *testing.T) {
	s := New(0)
	if !s.Empty() || s.First() != -1 || s.Last() != -1 || s.Has(0) {
		t.Error("zero-capacity set misbehaves")
	}
	if s.NextFrom(0) != -1 || s.PrevFrom(5) != -1 {
		t.Error("zero-capacity scan found a bit")
	}
}

// TestSetRandomizedAgainstReference drives random ops over sizes that
// exercise 1-, 2- and 3-level summaries and cross-checks every query
// against the boolean-slice model.
func TestSetRandomizedAgainstReference(t *testing.T) {
	for _, n := range []int{1, 64, 65, 4096, 4097, 300000} {
		rng := rand.New(rand.NewSource(int64(n)))
		s := New(n)
		ref := make(reference, n)
		ops := 4000
		if n >= 4096 {
			ops = 20000
		}
		for op := 0; op < ops; op++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Set(i)
				ref[i] = true
			} else {
				s.Clear(i)
				ref[i] = false
			}
			j := rng.Intn(n)
			if got, want := s.Has(j), ref[j]; got != want {
				t.Fatalf("n=%d op=%d: Has(%d) = %v, want %v", n, op, j, got, want)
			}
			if got, want := s.NextFrom(j), ref.nextFrom(j); got != want {
				t.Fatalf("n=%d op=%d: NextFrom(%d) = %d, want %d", n, op, j, got, want)
			}
			if got, want := s.PrevFrom(j), ref.prevFrom(j); got != want {
				t.Fatalf("n=%d op=%d: PrevFrom(%d) = %d, want %d", n, op, j, got, want)
			}
		}
		if got, want := s.First(), ref.nextFrom(0); got != want {
			t.Fatalf("n=%d: First = %d, want %d", n, got, want)
		}
		if got, want := s.Last(), ref.prevFrom(n-1); got != want {
			t.Fatalf("n=%d: Last = %d, want %d", n, got, want)
		}
	}
}

func TestSetNextAndFrom(t *testing.T) {
	const n = 10000
	rng := rand.New(rand.NewSource(7))
	a, b := New(n), New(n)
	refA, refB := make(reference, n), make(reference, n)
	for i := 0; i < 600; i++ {
		j := rng.Intn(n)
		a.Set(j)
		refA[j] = true
		k := rng.Intn(n)
		b.Set(k)
		refB[k] = true
	}
	for from := 0; from < n; from += 37 {
		want := -1
		for i := from; i < n; i++ {
			if refA[i] && refB[i] {
				want = i
				break
			}
		}
		if got := a.NextAndFrom(b, from); got != want {
			t.Fatalf("NextAndFrom(%d) = %d, want %d", from, got, want)
		}
	}
	// Mask shorter than the set: bits beyond it read as clear.
	short := New(100)
	short.Set(99)
	a2 := New(n)
	a2.Set(99)
	a2.Set(5000)
	if got := a2.NextAndFrom(short, 0); got != 99 {
		t.Errorf("short-mask NextAndFrom = %d, want 99", got)
	}
	if got := a2.NextAndFrom(short, 100); got != -1 {
		t.Errorf("short-mask NextAndFrom(100) = %d, want -1", got)
	}
}

func TestSetGrow(t *testing.T) {
	s := New(10)
	s.Set(3)
	s.Set(9)
	s.Grow(5) // no-op
	if s.Len() != 10 {
		t.Fatalf("Len = %d after no-op Grow", s.Len())
	}
	s.Grow(100000)
	if s.Len() != 100000 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has(3) || !s.Has(9) || s.Has(10) {
		t.Error("contents not preserved across Grow")
	}
	s.Set(99999)
	if s.Last() != 99999 || s.First() != 3 || s.NextFrom(4) != 9 {
		t.Error("queries wrong after Grow")
	}
}

func TestSetSteadyStateZeroAlloc(t *testing.T) {
	s := New(100000)
	mask := New(100000)
	for i := 0; i < 100000; i += 97 {
		mask.Set(i)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Set(70000)
		s.Set(131)
		_ = s.First()
		_ = s.Last()
		_ = s.NextFrom(200)
		_ = s.PrevFrom(69999)
		_ = s.NextAndFrom(mask, 0)
		s.Clear(131)
		s.Clear(70000)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ops allocated %.1f/op", allocs)
	}
}

func TestNextFromWrap(t *testing.T) {
	s := New(200)
	if got := s.NextFromWrap(0); got != -1 {
		t.Fatalf("empty NextFromWrap(0) = %d, want -1", got)
	}
	s.Set(5)
	s.Set(130)
	cases := []struct{ from, want int }{
		{0, 5},     // ahead in the straight segment
		{5, 5},     // own position counts
		{6, 130},   // next across a word boundary
		{130, 130}, // own position at the high bit
		{131, 5},   // wraps past the end back to the lowest
		{199, 5},   // wraps from the last index
		{200, 5},   // indices at/after Len wrap too (ring callers pass slot+1)
	}
	for _, c := range cases {
		if got := s.NextFromWrap(c.from); got != c.want {
			t.Errorf("NextFromWrap(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	s.Clear(5)
	s.Clear(130)
	if got := s.NextFromWrap(64); got != -1 {
		t.Errorf("cleared set NextFromWrap(64) = %d, want -1", got)
	}
}
