// Package bitset provides a hierarchical (multi-level summarized)
// bitmap in the style of an O(1) scheduler runqueue index: level 0
// holds one bit per element and every level above summarizes 64 words
// of the level below into one word, so locating the first or last set
// bit costs O(log₆₄ n) word probes via bits.TrailingZeros64 /
// bits.Len64 instead of a linear scan.
//
// The packet buffer's selection paths use Sets as incrementally
// maintained indices: the MMA layer keeps critical-queue and occupancy
// bucket membership here, and the DRAM layer publishes per-queue
// eligibility ("readable now") bits that selectors AND against at
// word granularity. All steady-state operations are allocation-free;
// only Grow allocates.
package bitset

import "math/bits"

// Set is a fixed-capacity hierarchical bitmap over [0, Len()). The
// zero value is unusable; construct with New.
type Set struct {
	n int
	// levels[0] is the bit array; levels[l][w] bit k summarizes word
	// levels[l-1][w*64+k] (set iff that word is non-zero). The top
	// level is always a single word.
	levels [][]uint64
}

// New returns a Set with capacity for n bits, all clear. n may be 0
// (every query then reports empty).
func New(n int) *Set {
	s := &Set{}
	s.init(n)
	return s
}

func (s *Set) init(n int) {
	if n < 0 {
		n = 0
	}
	s.n = n
	s.levels = s.levels[:0]
	words := (n + 63) >> 6
	if words == 0 {
		words = 1
	}
	for {
		s.levels = append(s.levels, make([]uint64, words))
		if words == 1 {
			return
		}
		words = (words + 63) >> 6
	}
}

// Len returns the bit capacity.
func (s *Set) Len() int { return s.n }

// Grow extends the capacity to at least n bits, preserving contents.
// It is the only allocating operation; callers keep it off the
// steady-state path (arena growth is amortized).
func (s *Set) Grow(n int) {
	if n <= s.n {
		return
	}
	old := s.levels[0]
	s.levels = nil
	s.init(n)
	copy(s.levels[0], old)
	// Rebuild the summaries bottom-up from the preserved leaf words.
	for l := 1; l < len(s.levels); l++ {
		below := s.levels[l-1]
		for w, word := range below {
			if word != 0 {
				s.levels[l][w>>6] |= 1 << uint(w&63)
			}
		}
	}
}

// Has reports whether bit i is set. Out-of-range indices are clear.
//
//pktbuf:hotpath
func (s *Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.levels[0][i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i. i must be in [0, Len()).
//
//pktbuf:hotpath
func (s *Set) Set(i int) {
	w := i >> 6
	old := s.levels[0][w]
	s.levels[0][w] = old | 1<<uint(i&63)
	// A word that was already non-zero has its summary bit set at every
	// level above; stop at the first such word (the dual of Clear's
	// early exit on a word that stays non-zero).
	for l := 1; old == 0 && l < len(s.levels); l++ {
		old = s.levels[l][w>>6]
		s.levels[l][w>>6] = old | 1<<uint(w&63)
		w >>= 6
	}
}

// Clear clears bit i. i must be in [0, Len()).
//
//pktbuf:hotpath
func (s *Set) Clear(i int) {
	w := i >> 6
	s.levels[0][w] &^= 1 << uint(i&63)
	for l := 1; l < len(s.levels); l++ {
		if s.levels[l-1][w] != 0 {
			return
		}
		s.levels[l][w>>6] &^= 1 << uint(w&63)
		w >>= 6
	}
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool { return s.levels[len(s.levels)-1][0] == 0 }

// word returns leaf word w, or 0 beyond capacity.
//
//pktbuf:hotpath
func (s *Set) word(w int) uint64 {
	if w >= len(s.levels[0]) {
		return 0
	}
	return s.levels[0][w]
}

// descend resolves a set bit at (level, bit index within level) down
// to the leaf bit index.
//
//pktbuf:hotpath
func (s *Set) descend(level, idx int) int {
	for l := level - 1; l >= 0; l-- {
		idx = idx<<6 + bits.TrailingZeros64(s.levels[l][idx])
	}
	return idx
}

// First returns the lowest set bit, or -1.
func (s *Set) First() int { return s.NextFrom(0) }

// Last returns the highest set bit, or -1.
func (s *Set) Last() int { return s.PrevFrom(s.n - 1) }

// NextFrom returns the lowest set bit ≥ i, or -1.
//
//pktbuf:hotpath
func (s *Set) NextFrom(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	// pos is a bit index at the current level: at level l it addresses
	// a word l levels down.
	pos := i
	for l := 0; l < len(s.levels); l++ {
		lv := s.levels[l]
		w := pos >> 6
		if w < len(lv) {
			if word := lv[w] >> uint(pos&63) << uint(pos&63); word != 0 {
				return s.descend(l, w<<6+bits.TrailingZeros64(word))
			}
		}
		// No hit in this word: resume one level up, one summary bit
		// past the word we just exhausted.
		pos = w + 1
	}
	return -1
}

// NextFromWrap returns the first set bit at or after i in circular
// order: the lowest set bit ≥ i, or — when no bit ≥ i is set — the
// lowest set bit overall (the scan wraps to 0). It returns -1 only on
// an empty set. Ring-indexed structures (the MMA lookahead window)
// use it to resolve "first candidate from the window head" in one
// probe instead of two explicit segment scans.
//
//pktbuf:hotpath
func (s *Set) NextFromWrap(i int) int {
	if j := s.NextFrom(i); j >= 0 {
		return j
	}
	return s.NextFrom(0)
}

// PrevFrom returns the highest set bit ≤ i, or -1.
//
//pktbuf:hotpath
func (s *Set) PrevFrom(i int) int {
	if i >= s.n {
		i = s.n - 1
	}
	if i < 0 {
		return -1
	}
	pos := i
	for l := 0; l < len(s.levels); l++ {
		w := pos >> 6
		keep := uint(pos&63) + 1
		if word := s.levels[l][w] << (64 - keep) >> (64 - keep); word != 0 {
			idx := w<<6 + bits.Len64(word) - 1
			for m := l - 1; m >= 0; m-- {
				idx = idx<<6 + bits.Len64(s.levels[m][idx]) - 1
			}
			return idx
		}
		if w == 0 {
			return -1
		}
		pos = w - 1
	}
	return -1
}

// NextAndFrom returns the lowest bit ≥ i set in both s and mask, or
// -1. The scan is guided by s's summaries, so its cost is bounded by
// the set words of s rather than the capacity; mask may have any
// capacity (bits beyond it read as clear).
//
//pktbuf:hotpath
func (s *Set) NextAndFrom(mask *Set, i int) int {
	for {
		j := s.NextFrom(i)
		if j < 0 {
			return -1
		}
		w := j >> 6
		if word := s.levels[0][w] & (mask.word(w) >> uint(j&63) << uint(j&63)); word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		i = (w + 1) << 6
	}
}
