// Package trace records and replays slot-level workload traces. The
// paper's evaluation has no public traffic traces (and production
// router traces are proprietary — see DESIGN.md §2), so experiments
// are driven by synthetic generators; this package makes any such run
// *reproducible and portable*: capture the exact per-slot stimulus
// once, replay it against any buffer configuration or implementation
// revision.
//
// The format is line-oriented text, one slot per line:
//
//	# comment / header
//	a3 r7     arrival for queue 3, request for queue 7
//	a0        arrival only
//	r2        request only
//	.         idle slot
//
// Lines are ordered; slot numbers are implicit.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cell"
	"repro/internal/sim"
)

// Event is the stimulus of one slot.
type Event struct {
	// Arrival and Request are queue ids, cell.NoQueue for none.
	Arrival, Request cell.QueueID
}

// Trace is an in-memory sequence of per-slot events.
type Trace struct {
	Events []Event
}

// ErrFormat reports a malformed trace line.
var ErrFormat = errors.New("trace: malformed line")

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# pktbuf slot trace, %d slots\n", len(t.Events)); err != nil {
		return err
	}
	for _, e := range t.Events {
		switch {
		case e.Arrival == cell.NoQueue && e.Request == cell.NoQueue:
			if _, err := bw.WriteString(".\n"); err != nil {
				return err
			}
		case e.Request == cell.NoQueue:
			if _, err := fmt.Fprintf(bw, "a%d\n", e.Arrival); err != nil {
				return err
			}
		case e.Arrival == cell.NoQueue:
			if _, err := fmt.Fprintf(bw, "r%d\n", e.Request); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(bw, "a%d r%d\n", e.Arrival, e.Request); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses a trace.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		e := Event{Arrival: cell.NoQueue, Request: cell.NoQueue}
		if text != "." {
			for _, tok := range strings.Fields(text) {
				if len(tok) < 2 {
					return nil, fmt.Errorf("%w %d: %q", ErrFormat, line, text)
				}
				n, err := strconv.Atoi(tok[1:])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("%w %d: %q", ErrFormat, line, text)
				}
				switch tok[0] {
				case 'a':
					e.Arrival = cell.QueueID(n)
				case 'r':
					e.Request = cell.QueueID(n)
				default:
					return nil, fmt.Errorf("%w %d: %q", ErrFormat, line, text)
				}
			}
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Capture runs the generators for the given number of slots against a
// live view and records the stimulus they produce. The view is needed
// because request policies are state-dependent; use it with a real
// buffer run (see Recorder) or sim.View adapters.
func Capture(arr sim.ArrivalProcess, req sim.RequestPolicy, v sim.View, slots int) *Trace {
	t := &Trace{Events: make([]Event, 0, slots)}
	for s := 0; s < slots; s++ {
		t.Events = append(t.Events, Event{
			Arrival: arr.Next(cell.Slot(s)),
			Request: req.Next(cell.Slot(s), v),
		})
	}
	return t
}

// Recorder wraps an ArrivalProcess/RequestPolicy pair, transparently
// recording everything they emit while a Runner drives them.
type Recorder struct {
	Arr sim.ArrivalProcess
	Req sim.RequestPolicy
	t   Trace
	// pending pairs the two halves of one slot.
	haveArrival bool
	arrival     cell.QueueID
}

// Next implements sim.ArrivalProcess.
func (r *Recorder) Next(slot cell.Slot) cell.QueueID {
	q := r.Arr.Next(slot)
	r.arrival, r.haveArrival = q, true
	return q
}

// NextRequest implements sim.RequestPolicy via the Request method
// below; Recorder itself is used as both halves.
func (r *Recorder) NextRequest(slot cell.Slot, v sim.View) cell.QueueID {
	q := r.Req.Next(slot, v)
	a := cell.NoQueue
	if r.haveArrival {
		a, r.haveArrival = r.arrival, false
	}
	r.t.Events = append(r.t.Events, Event{Arrival: a, Request: q})
	return q
}

// Trace returns the recorded trace so far.
func (r *Recorder) Trace() *Trace { return &r.t }

// requestHalf adapts Recorder's request side to sim.RequestPolicy.
type requestHalf struct{ r *Recorder }

func (h requestHalf) Next(slot cell.Slot, v sim.View) cell.QueueID {
	return h.r.NextRequest(slot, v)
}

// Halves returns the two generator halves to plug into a sim.Runner.
func (r *Recorder) Halves() (sim.ArrivalProcess, sim.RequestPolicy) {
	return r, requestHalf{r}
}

// Replayer replays a trace as a sim.ArrivalProcess / sim.RequestPolicy
// pair. Requests are replayed verbatim: the trace must have been
// recorded against a behaviourally identical buffer (same acceptance
// decisions), which holds for any unbounded-DRAM configuration.
type Replayer struct {
	t   *Trace
	pos int
}

// NewReplayer wraps a trace.
func NewReplayer(t *Trace) *Replayer { return &Replayer{t: t} }

// Next implements sim.ArrivalProcess.
func (r *Replayer) Next(cell.Slot) cell.QueueID {
	if r.pos >= len(r.t.Events) {
		return cell.NoQueue
	}
	return r.t.Events[r.pos].Arrival
}

// request advances the slot cursor (the request half runs second in
// the Runner's slot loop).
func (r *Replayer) request(cell.Slot, sim.View) cell.QueueID {
	if r.pos >= len(r.t.Events) {
		return cell.NoQueue
	}
	q := r.t.Events[r.pos].Request
	r.pos++
	return q
}

// Halves returns the replaying generator pair.
func (r *Replayer) Halves() (sim.ArrivalProcess, sim.RequestPolicy) {
	return r, replayRequest{r}
}

type replayRequest struct{ r *Replayer }

func (h replayRequest) Next(slot cell.Slot, v sim.View) cell.QueueID {
	return h.r.request(slot, v)
}
