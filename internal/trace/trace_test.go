package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestWriteReadRoundTrip(t *testing.T) {
	in := &Trace{Events: []Event{
		{Arrival: 3, Request: 7},
		{Arrival: 0, Request: cell.NoQueue},
		{Arrival: cell.NoQueue, Request: 2},
		{Arrival: cell.NoQueue, Request: cell.NoQueue},
	}}
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Events) != len(in.Events) {
		t.Fatalf("got %d events", len(out.Events))
	}
	for i := range in.Events {
		if out.Events[i] != in.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, out.Events[i], in.Events[i])
		}
	}
}

func TestReadFormat(t *testing.T) {
	good := "# header\n\na1 r2\n.\nr0\na5\n"
	tr, err := Read(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 4 {
		t.Fatalf("events = %d", len(tr.Events))
	}
	for _, bad := range []string{"x3\n", "a\n", "a-1\n", "azz\n"} {
		if _, err := Read(strings.NewReader(bad)); !errors.Is(err, ErrFormat) {
			t.Errorf("Read(%q) err = %v, want ErrFormat", bad, err)
		}
	}
}

func TestCaptureGenerators(t *testing.T) {
	arr, _ := sim.NewRoundRobinArrivals(4, 1.0)
	req, _ := sim.NewRoundRobinDrain(4)
	v := staticView{n: 5}
	tr := Capture(arr, req, v, 8)
	if len(tr.Events) != 8 {
		t.Fatalf("captured %d", len(tr.Events))
	}
	if tr.Events[0].Arrival != 0 || tr.Events[1].Arrival != 1 {
		t.Errorf("arrivals not round-robin: %+v", tr.Events[:2])
	}
}

type staticView struct{ n int }

func (v staticView) Requestable(cell.QueueID) int { return v.n }
func (v staticView) Len(cell.QueueID) int         { return v.n }

// TestRecordReplayIdentical records a live adversarial run and replays
// it against a fresh identical buffer: the delivered streams must
// match slot for slot.
func TestRecordReplayIdentical(t *testing.T) {
	mkBuf := func() *core.Buffer {
		b, err := core.New(core.Config{Q: 4, B: 8, Bsmall: 2, Banks: 16})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// Record.
	arr, _ := sim.NewUniformArrivals(4, 0.9, 5)
	req, _ := sim.NewUniformRequests(4, 0.8, 6)
	rec := &Recorder{Arr: arr, Req: req}
	ra, rr := rec.Halves()
	var recorded []cell.Cell
	r1 := &sim.Runner{Buffer: mkBuf(), Arrivals: ra, Requests: rr,
		OnDeliver: func(c cell.Cell, _ bool) { recorded = append(recorded, c) }}
	if _, err := r1.Run(6000); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	if len(tr.Events) != 6000 {
		t.Fatalf("recorded %d events", len(tr.Events))
	}

	// Serialize + parse (exercise the wire format end to end).
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Replay.
	var replayed []cell.Cell
	pa, pr := NewReplayer(parsed).Halves()
	r2 := &sim.Runner{Buffer: mkBuf(), Arrivals: pa, Requests: pr,
		OnDeliver: func(c cell.Cell, _ bool) { replayed = append(replayed, c) }}
	if _, err := r2.Run(6000); err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(recorded) {
		t.Fatalf("replayed %d cells, recorded %d", len(replayed), len(recorded))
	}
	for i := range recorded {
		if recorded[i] != replayed[i] {
			t.Fatalf("delivery %d: %v != %v", i, recorded[i], replayed[i])
		}
	}
}

func TestReplayerExhaustion(t *testing.T) {
	tr := &Trace{Events: []Event{{Arrival: 1, Request: cell.NoQueue}}}
	pa, pr := NewReplayer(tr).Halves()
	if q := pa.Next(0); q != 1 {
		t.Errorf("arrival = %d", q)
	}
	if q := pr.Next(0, staticView{}); q != cell.NoQueue {
		t.Errorf("request = %d", q)
	}
	// Past the end: idle forever.
	if q := pa.Next(1); q != cell.NoQueue {
		t.Errorf("post-end arrival = %d", q)
	}
	if q := pr.Next(1, staticView{}); q != cell.NoQueue {
		t.Errorf("post-end request = %d", q)
	}
}
