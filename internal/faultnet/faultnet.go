// Package faultnet wraps net.Listener/net.Conn with deterministic
// fault injection for crash-safety tests: cut every connection at
// once (a process crash seen from the network), truncate a write
// mid-frame and then hang (a crash mid-flush), add per-write latency,
// or black-hole traffic without closing sockets (a silent peer, which
// keepalive probing must detect).
//
// The wrappers are transport-faithful: a cut surfaces to both sides
// as an abrupt connection error, exactly like a killed process, so a
// client retry/resume implementation exercised through faultnet sees
// the same error sequences it would see in production.
package faultnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Network tracks every connection made through its wrappers and
// applies the currently configured faults to all of them.
type Network struct {
	mu    sync.Mutex
	conns map[*Conn]struct{}

	latency   atomic.Int64 // per-write delay, nanoseconds
	blackhole atomic.Bool

	cuts atomic.Uint64
}

// New returns an empty fault-injection network.
func New() *Network {
	return &Network{conns: make(map[*Conn]struct{})}
}

// Listen wraps a listener so every accepted connection is tracked.
func (n *Network) Listen(inner net.Listener) *Listener {
	return &Listener{Listener: inner, n: n}
}

// Dial runs dial and wraps the resulting connection.
func (n *Network) Dial(dial func() (net.Conn, error)) (net.Conn, error) {
	nc, err := dial()
	if err != nil {
		return nil, err
	}
	return n.wrap(nc), nil
}

func (n *Network) wrap(nc net.Conn) *Conn {
	c := &Conn{Conn: nc, n: n, done: make(chan struct{})}
	c.partial.Store(-1)
	n.mu.Lock()
	n.conns[c] = struct{}{}
	n.mu.Unlock()
	return c
}

// CutAll abruptly closes every tracked connection — the network view
// of a crashed process. Subsequent reads and writes on both ends fail
// immediately (unblocking any write parked in a blackhole or a
// partial-write hang).
func (n *Network) CutAll() {
	n.mu.Lock()
	conns := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.conns = make(map[*Conn]struct{})
	n.mu.Unlock()
	for _, c := range conns {
		c.cut()
	}
	n.cuts.Add(uint64(len(conns)))
}

// Cuts returns the total number of connections cut so far.
func (n *Network) Cuts() uint64 { return n.cuts.Load() }

// Conns returns the current number of tracked (un-cut, un-closed)
// connections.
func (n *Network) Conns() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

// SetLatency delays every subsequent write by d.
func (n *Network) SetLatency(d time.Duration) { n.latency.Store(int64(d)) }

// Blackhole makes writes block (without erroring and without closing
// sockets) until cleared or the connection is cut — a silent peer.
func (n *Network) Blackhole(on bool) { n.blackhole.Store(on) }

func (n *Network) drop(c *Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// Listener wraps accepted connections into the network.
type Listener struct {
	net.Listener
	n *Network
}

// Accept wraps the inner Accept's connection.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.n.wrap(nc), nil
}

// Conn is a tracked connection with write-side fault injection. Reads
// pass through untouched: cutting closes the underlying socket, which
// fails reads on both ends the way a peer crash does.
type Conn struct {
	net.Conn
	n *Network

	// partial counts down bytes still allowed through before writes
	// hang forever (-1 disables).
	partial atomic.Int64

	closeOnce sync.Once
	done      chan struct{}
}

// PartialThenHang lets the next limit bytes through, then makes every
// write block until the connection is cut — a process crashing with a
// frame half-flushed.
func (c *Conn) PartialThenHang(limit int) { c.partial.Store(int64(limit)) }

// cut closes the underlying socket without removing fault state, so
// blocked writers wake with an error.
func (c *Conn) cut() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.Conn.Close()
	})
}

// Close unregisters and closes the connection.
func (c *Conn) Close() error {
	c.n.drop(c)
	err := error(nil)
	c.closeOnce.Do(func() {
		close(c.done)
		err = c.Conn.Close()
	})
	return err
}

// Write applies latency, blackhole, and partial-write faults, then
// forwards to the underlying connection.
func (c *Conn) Write(p []byte) (int, error) {
	if d := c.n.latency.Load(); d > 0 {
		select {
		case <-time.After(time.Duration(d)):
		case <-c.done:
			return 0, net.ErrClosed
		}
	}
	for c.n.blackhole.Load() {
		select {
		case <-time.After(time.Millisecond):
		case <-c.done:
			return 0, net.ErrClosed
		}
	}
	if rem := c.partial.Load(); rem >= 0 {
		if int64(len(p)) <= rem {
			n, err := c.Conn.Write(p)
			c.partial.Add(int64(-n))
			return n, err
		}
		n := 0
		if rem > 0 {
			n, _ = c.Conn.Write(p[:rem])
			c.partial.Add(int64(-n))
		}
		// The allowance is spent mid-buffer: hang until cut, like a
		// process that died with a frame half-flushed.
		<-c.done
		return n, net.ErrClosed
	}
	return c.Conn.Write(p)
}
