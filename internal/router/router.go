// Package router assembles the paper's system context (Figure 1): an
// input-queued router whose every input line card carries a VOQ packet
// buffer (internal/core), fed by the cell segmentation layer
// (internal/packet) and drained by an iSLIP-style request-grant-accept
// fabric scheduler. Output ports reassemble cells into packets.
//
// The router is the "example application" the paper motivates — it is
// also the harshest client of the buffer's guarantees: the fabric
// scheduler's per-slot requests form exactly the adversarial patterns
// (§3) the buffer must absorb, and any miss, conflict or reorder
// surfaces as a corrupted packet at an output port.
//
// A slot decomposes into three building blocks — schedule (the iSLIP
// request-grant-accept exchange), tickPort (one port's ingress, buffer
// tick and metadata bookkeeping) and collect (fabric crossing and
// output reassembly). Router.Step runs them serially; Engine runs
// tickPort on one worker goroutine per port shard with schedule and
// collect as the only per-slot serialization points, producing
// bit-identical results (tickPort touches only port-local state, and
// collect consumes deliveries in input-port order either way).
//
// All per-cell metadata lives in dense slice-indexed arenas: per-VOQ
// compacting deques keyed by the delivery sequence order the buffer
// guarantees, so the steady-state Step path performs no hashing and no
// allocation.
package router

import (
	"errors"
	"fmt"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/packet"
)

// Config describes the router.
type Config struct {
	// Ports is the number of input (= output) ports.
	Ports int
	// Classes is the number of service classes; each input buffer
	// holds Ports×Classes VOQs (§2: "Each logical queue corresponds to
	// an output line interface and a class of service").
	Classes int
	// Buffer is the per-input packet buffer template; its Q field is
	// overwritten with Ports×Classes.
	Buffer core.Config
	// SchedulerIterations is the number of iSLIP iterations per slot
	// (≥1; more iterations converge closer to a maximal matching).
	SchedulerIterations int
	// IngressCap bounds each input's pre-segmentation cell backlog
	// (0 = a generous default of 4096 cells).
	IngressCap int
	// EpochSlots is the engine's speculation window K: the coordinator
	// plans up to K consecutive slots of iSLIP matchings in one
	// serialized pass and hands each worker the whole plan in a single
	// exchange, so the per-slot barrier becomes a per-epoch barrier
	// (≤0 = 1 = the lockstep engine; clamped to 4096). The serial
	// Router ignores it; see Engine.
	EpochSlots int
}

// Errors returned by the router. Config rejections wrap
// core.ErrBadConfig so callers (and the public façade) dispatch on one
// taxonomy with errors.Is.
var (
	ErrIngressFull = errors.New("router: ingress backlog full")
	ErrBadPort     = errors.New("router: port out of range")
	ErrBadFlow     = errors.New("router: packet flow out of range")
	ErrClosed      = errors.New("router: engine closed")
	// ErrEpochDiverged reports that a port shard's live state diverged
	// from the epoch plan mid-execution and other shards had already
	// run past the divergence point. The committed prefix returned
	// with the error is valid; the engine is torn beyond it and
	// rejects further calls. Reachable only when a buffer invariant
	// has already broken — the planner's admission horizon makes the
	// prediction exact in every healthy state (see planEpoch).
	ErrEpochDiverged = errors.New("router: epoch execution diverged from plan")
)

// Egress is one packet leaving the router.
type Egress struct {
	// Output is the egress port.
	Output int
	// Input is the port the packet entered on.
	Input int
	// Packet is the reassembled packet (Flow = output×classes+class,
	// as offered). Its payload lives in the router's egress arena: it
	// is valid until the next Step / StepAppend / StepBatch call, so
	// callers that retain egress across steps must copy.
	Packet packet.Packet
}

// segRing is a compacting deque of segmented cells: push appends,
// popFront advances a start cursor, and the backing array is compacted
// in place when it fills, so steady-state operation does not allocate.
type segRing struct {
	cells []packet.SegCell
	start int
}

func (q *segRing) len() int { return len(q.cells) - q.start }

// ensure compacts so that n appends fit without growing, when the
// slack at the front allows it.
func (q *segRing) ensure(n int) {
	if q.start > 0 && len(q.cells)+n > cap(q.cells) {
		m := copy(q.cells, q.cells[q.start:])
		q.cells = q.cells[:m]
		q.start = 0
	}
}

func (q *segRing) push(c packet.SegCell) {
	q.ensure(1)
	q.cells = append(q.cells, c)
}

func (q *segRing) front() packet.SegCell { return q.cells[q.start] }

// at returns the j-th queued cell (0 = front) without consuming it.
// The epoch planner walks the pending ring this way to predict which
// VOQ each future arrival lands in.
func (q *segRing) at(j int) packet.SegCell { return q.cells[q.start+j] }

func (q *segRing) popFront() packet.SegCell {
	c := q.cells[q.start]
	q.cells[q.start] = packet.SegCell{} // drop the payload reference
	q.start++
	if q.start == len(q.cells) {
		q.cells, q.start = q.cells[:0], 0
	}
	return c
}

// lineCard is one ingress port: its VOQ buffer plus the dense
// per-VOQ metadata arenas. All lineCard state is port-local — the
// sharded engine mutates it only from the port's own worker.
type lineCard struct {
	buf *core.Buffer
	seg packet.Segmenter
	// pending serializes segmented cells onto the line (1 per slot).
	pending segRing
	// arrivals[voq] counts cells admitted, assigning the sequence
	// numbers the buffer will deliver back; delivered[voq] counts
	// deliveries consumed, verifying the buffer's FIFO guarantee.
	arrivals  []uint64
	delivered []uint64
	// meta[voq] holds the admitted cells' payloads and headers in
	// arrival order; per-VOQ FIFO delivery makes the front cell the
	// one the buffer hands back next.
	meta []segRing
	// reqVec[output] is the highest-priority requestable VOQ addressed
	// to output, refreshed after every tick (cell.NoQueue = none). The
	// scheduler reads it at the next slot's request phase.
	reqVec []cell.QueueID
}

// computeReqVec refreshes reqVec from the buffer state.
func (in *lineCard) computeReqVec(classes int) {
	for o := range in.reqVec {
		in.reqVec[o] = cell.NoQueue
		base := o * classes
		for class := 0; class < classes; class++ {
			q := cell.QueueID(base + class)
			if in.buf.Requestable(q) > 0 {
				in.reqVec[o] = q
				break
			}
		}
	}
}

// delivery is one port's tick outcome, handed from tickPort to
// collect.
type delivery struct {
	sc    packet.SegCell
	queue cell.QueueID
	ok    bool
	err   error
}

// Stats aggregates router-level counters.
type Stats struct {
	// OfferedPackets / DeliveredPackets count whole packets.
	OfferedPackets, DeliveredPackets uint64
	// SwitchedCells counts cells moved through the fabric.
	SwitchedCells uint64
	// Matches counts input-output matches made by the scheduler.
	Matches uint64
	// Slots counts Step calls.
	Slots uint64
}

// Router is the composed system.
type Router struct {
	cfg     Config
	inputs  []*lineCard
	reasm   []*packet.DenseReassembler // per output port
	grant   []int                      // iSLIP grant pointers, per output
	accept  []int                      // iSLIP accept pointers, per input
	stats   Stats
	voqs    int
	flowMul cell.QueueID // reassembly namespace multiplier

	// Scheduler and step scratch, reused every slot.
	reqMat      []bool // request matrix, [output*Ports+input]
	grantChoice []int  // per-output granted input this iteration
	matchedOut  []int  // per-output matched input
	matched     []int  // per-input matched output
	deliveries  []delivery
	egScratch   []Egress
	// reqRows[i] aliases inputs[i].reqVec: the serial path hands
	// schedule the live request vectors through the same row-view
	// interface the epoch planner uses for predicted ones.
	reqRows [][]cell.QueueID
	// egArena backs the payloads of returned Egress packets. It is
	// reset at the start of every Step / StepAppend / (engine)
	// StepBatch call, so egress stays valid for the whole batch: a
	// mid-batch grow moves new payloads to a fresh block while
	// already-returned slices keep the old one alive and untouched.
	egArena []byte
}

// New builds a router. Rejected configurations return errors matching
// core.ErrBadConfig.
func New(cfg Config) (*Router, error) {
	if cfg.Ports <= 0 {
		return nil, fmt.Errorf("%w: router: Ports must be positive, got %d", core.ErrBadConfig, cfg.Ports)
	}
	if cfg.Classes < 0 {
		return nil, fmt.Errorf("%w: router: Classes must not be negative, got %d", core.ErrBadConfig, cfg.Classes)
	}
	if cfg.Classes == 0 {
		cfg.Classes = 1
	}
	if cfg.SchedulerIterations <= 0 {
		cfg.SchedulerIterations = 1
	}
	if cfg.IngressCap <= 0 {
		cfg.IngressCap = 4096
	}
	if cfg.EpochSlots <= 0 {
		cfg.EpochSlots = 1
	}
	if cfg.EpochSlots > maxEpochSlots {
		cfg.EpochSlots = maxEpochSlots
	}
	voqs := cfg.Ports * cfg.Classes
	cfg.Buffer.Q = voqs

	r := &Router{
		cfg:         cfg,
		grant:       make([]int, cfg.Ports),
		accept:      make([]int, cfg.Ports),
		voqs:        voqs,
		flowMul:     cell.QueueID(voqs),
		reqMat:      make([]bool, cfg.Ports*cfg.Ports),
		grantChoice: make([]int, cfg.Ports),
		matchedOut:  make([]int, cfg.Ports),
		matched:     make([]int, cfg.Ports),
		deliveries:  make([]delivery, cfg.Ports),
	}
	for i := 0; i < cfg.Ports; i++ {
		buf, err := core.New(cfg.Buffer)
		if err != nil {
			return nil, fmt.Errorf("router: input %d buffer: %w", i, err)
		}
		r.inputs = append(r.inputs, &lineCard{
			buf:       buf,
			arrivals:  make([]uint64, voqs),
			delivered: make([]uint64, voqs),
			meta:      make([]segRing, voqs),
			reqVec:    newNoQueueVec(cfg.Ports),
		})
		// Reassembly streams are namespaced per (input, voq) so
		// same-flow cells of different inputs never interleave.
		r.reasm = append(r.reasm, packet.NewDenseReassembler(cfg.Ports*voqs))
	}
	r.reqRows = make([][]cell.QueueID, cfg.Ports)
	for i, in := range r.inputs {
		r.reqRows[i] = in.reqVec
	}
	return r, nil
}

// maxEpochSlots bounds the speculation window so plan arenas stay a
// few MB even at large port counts.
const maxEpochSlots = 4096

func newNoQueueVec(n int) []cell.QueueID {
	v := make([]cell.QueueID, n)
	for i := range v {
		v[i] = cell.NoQueue
	}
	return v
}

// Config returns the normalized configuration.
func (r *Router) Config() Config { return r.cfg }

// VOQ maps (output, class) to the logical queue id used inside each
// input buffer.
func (r *Router) VOQ(output, class int) cell.QueueID {
	return cell.QueueID(output*r.cfg.Classes + class)
}

// Offer enqueues a packet at an input port. The packet's Flow must be
// a valid VOQ id (use VOQ to build it). The segmented cells alias
// p.Payload until the packet leaves the router.
func (r *Router) Offer(port int, p packet.Packet) error {
	if port < 0 || port >= r.cfg.Ports {
		return fmt.Errorf("%w: %d", ErrBadPort, port)
	}
	if p.Flow < 0 || int(p.Flow) >= r.voqs {
		return fmt.Errorf("%w: %d", ErrBadFlow, p.Flow)
	}
	in := r.inputs[port]
	n := packet.CellCount(len(p.Payload))
	if in.pending.len()+n > r.cfg.IngressCap {
		return fmt.Errorf("%w: port %d", ErrIngressFull, port)
	}
	in.pending.ensure(n)
	in.pending.cells = in.seg.SegmentAppend(in.pending.cells, p)
	r.stats.OfferedPackets++
	return nil
}

// OfferBatch enqueues packets at an input port in one validated pass:
// the port is bounds-checked once, the accepted prefix is sized
// against the ingress budget up front, and its cells are segmented in
// a single run with one ring compaction. It returns the number of
// packets accepted and the error that stopped the run (ErrBadFlow, or
// ErrIngressFull when the next packet would overflow the backlog); the
// remaining packets are not offered.
func (r *Router) OfferBatch(port int, ps []packet.Packet) (int, error) {
	if port < 0 || port >= r.cfg.Ports {
		return 0, fmt.Errorf("%w: %d", ErrBadPort, port)
	}
	in := r.inputs[port]
	budget := r.cfg.IngressCap - in.pending.len()
	n, cells := 0, 0
	var stop error
	for k := range ps {
		if ps[k].Flow < 0 || int(ps[k].Flow) >= r.voqs {
			stop = fmt.Errorf("%w: %d", ErrBadFlow, ps[k].Flow)
			break
		}
		c := packet.CellCount(len(ps[k].Payload))
		if cells+c > budget {
			stop = fmt.Errorf("%w: port %d", ErrIngressFull, port)
			break
		}
		n++
		cells += c
	}
	in.pending.ensure(cells)
	for k := 0; k < n; k++ {
		in.pending.cells = in.seg.SegmentAppend(in.pending.cells, ps[k])
	}
	r.stats.OfferedPackets += uint64(n)
	return n, stop
}

// IngressBacklog returns the number of cells waiting to enter port's
// buffer.
func (r *Router) IngressBacklog(port int) int { return r.inputs[port].pending.len() }

// BufferStats exposes an input buffer's statistics.
func (r *Router) BufferStats(port int) core.Stats { return r.inputs[port].buf.Stats() }

// Stats returns the router-level counters.
func (r *Router) Stats() Stats { return r.stats }

// Quiescent reports whether a Step would be a pure slot-counter
// advance on every port: no ingress cell is waiting, no port's
// request vector names a VOQ (so the iSLIP exchange makes no match
// and moves no pointer), and every buffer shard is itself quiescent.
// The checks run cheapest-first and bail on the first busy port, so
// a loaded router pays almost nothing for the probe.
func (r *Router) Quiescent() bool {
	for _, in := range r.inputs {
		if in.pending.len() > 0 {
			return false
		}
		for _, q := range in.reqVec {
			if q != cell.NoQueue {
				return false
			}
		}
		if !in.buf.Quiescent() {
			return false
		}
	}
	return true
}

// fastForward advances all port shards by n slots in lockstep; the
// caller has established Quiescent. It is bit-identical to n Steps of
// a quiescent router: every buffer fast-forwards (which is exact per
// core.Buffer.FastForward), the request vectors recomputed by those
// skipped ticks would be unchanged, and the only router-level state a
// quiescent slot touches is the slot counter.
func (r *Router) fastForward(n uint64) {
	for _, in := range r.inputs {
		in.buf.FastForward(n)
	}
	r.stats.Slots += n
}

// schedule computes one slot's input→output matching with iterative
// round-robin request-grant-accept (iSLIP) over the given request
// rows, writing matched[input] = output or -1. It is the single
// serialization point of the sharded engine. reqRows[i][o] names the
// VOQ input i would serve to output o (cell.NoQueue = none): the
// serial path passes r.reqRows (live per-port vectors published by the
// ports' previous ticks); the epoch planner passes rows predicted from
// a synthetic occupancy view, so both evolve the grant/accept pointers
// through identical code.
//
//pktbuf:hotpath
func (r *Router) schedule(reqRows [][]cell.QueueID, matched []int) {
	P := r.cfg.Ports
	for i := 0; i < P; i++ {
		matched[i], r.matchedOut[i] = -1, -1
	}
	for iter := 0; iter < r.cfg.SchedulerIterations; iter++ {
		// Request: unmatched inputs request every unmatched output they
		// can serve a cell to.
		any := false
		for o := 0; o < P; o++ {
			row := r.reqMat[o*P : o*P+P]
			if r.matchedOut[o] >= 0 {
				for i := range row {
					row[i] = false
				}
				continue
			}
			for i := 0; i < P; i++ {
				row[i] = matched[i] < 0 && reqRows[i][o] != cell.NoQueue
				any = any || row[i]
			}
		}
		if !any {
			break
		}
		// Grant: each output picks the requesting input nearest its
		// grant pointer.
		for o := 0; o < P; o++ {
			r.grantChoice[o] = -1
			if r.matchedOut[o] >= 0 {
				continue
			}
			row := r.reqMat[o*P : o*P+P]
			for k := 0; k < P; k++ {
				i := (r.grant[o] + k) % P
				if row[i] {
					r.grantChoice[o] = i
					break
				}
			}
		}
		// Accept: each input picks the granting output nearest its
		// accept pointer; pointers advance only on first-iteration
		// accepts (the iSLIP desynchronization rule).
		for i := 0; i < P; i++ {
			if matched[i] >= 0 {
				continue
			}
			best, bestDist := -1, P+1
			for o := 0; o < P; o++ {
				if r.grantChoice[o] != i {
					continue
				}
				if d := (o - r.accept[i] + P) % P; d < bestDist {
					best, bestDist = o, d
				}
			}
			if best < 0 {
				continue
			}
			matched[i], r.matchedOut[best] = best, i
			r.stats.Matches++
			if iter == 0 {
				r.accept[i] = (best + 1) % P
				r.grant[best] = (i + 1) % P
			}
		}
	}
}

// tickPort advances one port one slot: admit one pending ingress cell,
// tick the buffer with the fabric request for the matched output, and
// resolve the delivered cell's metadata. It touches only the port's
// lineCard, so the engine runs it concurrently across ports.
//
//pktbuf:hotpath
func (r *Router) tickPort(i, matchedOut int) delivery {
	in := r.inputs[i]
	tick := core.TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}

	// Ingress: admit one pending cell.
	admit := false
	if in.pending.len() > 0 {
		tick.Arrival = in.pending.front().Flow
		admit = true
	}
	// Fabric request for the matched output; the scheduler only
	// matches ports whose request vector named a VOQ.
	if matchedOut >= 0 {
		tick.Request = in.reqVec[matchedOut]
	}

	res, err := in.buf.Tick(tick)
	var d delivery
	if err != nil {
		if errors.Is(err, core.ErrBufferFull) {
			// Keep the cell pending; retry next slot.
			admit = false
		} else {
			d.err = fmt.Errorf("router: input %d: %w", i, err) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
			in.computeReqVec(r.cfg.Classes)
			return d
		}
	}
	if admit {
		head := in.pending.popFront()
		in.arrivals[head.Flow]++
		in.meta[head.Flow].push(head)
	}

	// Egress: resolve the delivered cell's payload and header from the
	// per-VOQ FIFO metadata.
	if res.Delivered != nil {
		dc := *res.Delivered
		mq := &in.meta[dc.Queue]
		if mq.len() == 0 || in.delivered[dc.Queue] != dc.Seq {
			d.err = fmt.Errorf("router: input %d delivered unknown cell %v", i, dc) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
			in.computeReqVec(r.cfg.Classes)
			return d
		}
		in.delivered[dc.Queue]++
		d.sc = mq.popFront()
		d.queue = dc.Queue
		d.ok = true
	}
	in.computeReqVec(r.cfg.Classes)
	return d
}

// collect moves port i's delivered cell across the fabric to its
// output reassembler, appending any completed packet to out. It runs
// serially in input-port order so egress order is deterministic.
//
//pktbuf:hotpath
func (r *Router) collect(i int, d delivery, out []Egress) ([]Egress, error) {
	if d.err != nil {
		return out, d.err
	}
	if !d.ok {
		return out, nil
	}
	r.stats.SwitchedCells++
	output := int(d.queue) / r.cfg.Classes
	sc := d.sc
	// Reassemble per (input, voq) stream so same-flow cells of
	// different inputs never interleave.
	sc.Flow = cell.QueueID(i)*r.flowMul + d.queue
	p, ok, err := r.reasm[output].Push(sc)
	if err != nil {
		return out, fmt.Errorf("router: output %d: %w", output, err) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
	}
	if ok {
		p.Flow %= r.flowMul // restore the offered flow id
		// Copy the payload out of the reassembler's per-flow buffer
		// (overwritten by the stream's next packet) into the egress
		// arena (stable until the next step call).
		off := len(r.egArena)
		r.egArena = append(r.egArena, p.Payload...) //pktbuf:allow hotpath-noalloc egress arena append: amortized, capacity reused across steps
		p.Payload = r.egArena[off:len(r.egArena):len(r.egArena)]
		out = append(out, Egress{Output: output, Input: i, Packet: p}) //pktbuf:allow hotpath-noalloc appends into the reused egScratch backing array; grows only on the first steps
		r.stats.DeliveredPackets++
	}
	return out, nil
}

// Step advances the router one slot: one ingress cell per port, one
// fabric matching, one buffer tick per port, and output reassembly.
// It returns the packets completed this slot; the slice (and the
// packet payloads, see Egress) is scratch reused by the next Step.
func (r *Router) Step() ([]Egress, error) {
	out, err := r.StepAppend(r.egScratch[:0])
	r.egScratch = out
	return out, err
}

// StepAppend is Step appending the slot's egress to out, for callers
// that manage their own egress buffer. On a tick error the slot still
// completes on every port; the first error in input-port order is
// returned.
func (r *Router) StepAppend(out []Egress) ([]Egress, error) {
	r.egArena = r.egArena[:0]
	return r.stepSlot(out)
}

// stepSlot advances one slot without resetting the egress arena (the
// engine's StepBatch resets it once per batch).
func (r *Router) stepSlot(out []Egress) ([]Egress, error) {
	r.schedule(r.reqRows, r.matched)
	for i := range r.inputs {
		r.deliveries[i] = r.tickPort(i, r.matched[i])
	}
	var firstErr error
	for i := range r.inputs {
		var err error
		out, err = r.collect(i, r.deliveries[i], out)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	r.stats.Slots++
	return out, firstErr
}
