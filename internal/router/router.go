// Package router assembles the paper's system context (Figure 1): an
// input-queued router whose every input line card carries a VOQ packet
// buffer (internal/core), fed by the cell segmentation layer
// (internal/packet) and drained by an iSLIP-style request-grant-accept
// fabric scheduler. Output ports reassemble cells into packets.
//
// The router is the "example application" the paper motivates — it is
// also the harshest client of the buffer's guarantees: the fabric
// scheduler's per-slot requests form exactly the adversarial patterns
// (§3) the buffer must absorb, and any miss, conflict or reorder
// surfaces as a corrupted packet at an output port.
package router

import (
	"errors"
	"fmt"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/packet"
)

// Config describes the router.
type Config struct {
	// Ports is the number of input (= output) ports.
	Ports int
	// Classes is the number of service classes; each input buffer
	// holds Ports×Classes VOQs (§2: "Each logical queue corresponds to
	// an output line interface and a class of service").
	Classes int
	// Buffer is the per-input packet buffer template; its Q field is
	// overwritten with Ports×Classes.
	Buffer core.Config
	// SchedulerIterations is the number of iSLIP iterations per slot
	// (≥1; more iterations converge closer to a maximal matching).
	SchedulerIterations int
	// IngressCap bounds each input's pre-segmentation cell backlog
	// (0 = a generous default of 4096 cells).
	IngressCap int
}

// Errors returned by the router.
var (
	ErrIngressFull = errors.New("router: ingress backlog full")
	ErrBadPort     = errors.New("router: port out of range")
	ErrBadFlow     = errors.New("router: packet flow out of range")
)

// Egress is one packet leaving the router.
type Egress struct {
	// Output is the egress port.
	Output int
	// Input is the port the packet entered on.
	Input int
	// Packet is the reassembled packet (Flow = output×classes+class,
	// as offered).
	Packet packet.Packet
}

// metaKey identifies one cell inside one input buffer.
type metaKey struct {
	voq cell.QueueID
	seq uint64
}

// input is one ingress line card.
type input struct {
	buf *core.Buffer
	seg packet.Segmenter
	// pending serializes segmented cells onto the line (1 per slot).
	pending []packet.SegCell
	// arrivals counts per-VOQ cells admitted, assigning the sequence
	// numbers the buffer will deliver back.
	arrivals map[cell.QueueID]uint64
	// meta recovers a delivered cell's payload and header.
	meta map[metaKey]packet.SegCell
}

// Stats aggregates router-level counters.
type Stats struct {
	// OfferedPackets / DeliveredPackets count whole packets.
	OfferedPackets, DeliveredPackets uint64
	// SwitchedCells counts cells moved through the fabric.
	SwitchedCells uint64
	// Matches counts input-output matches made by the scheduler.
	Matches uint64
	// Slots counts Step calls.
	Slots uint64
}

// Router is the composed system.
type Router struct {
	cfg     Config
	inputs  []*input
	reasm   []*packet.Reassembler // per output port
	grant   []int                 // iSLIP grant pointers, per output
	accept  []int                 // iSLIP accept pointers, per input
	stats   Stats
	voqs    int
	flowMul cell.QueueID // reassembly namespace multiplier
}

// New builds a router.
func New(cfg Config) (*Router, error) {
	if cfg.Ports <= 0 {
		return nil, fmt.Errorf("router: Ports must be positive, got %d", cfg.Ports)
	}
	if cfg.Classes <= 0 {
		cfg.Classes = 1
	}
	if cfg.SchedulerIterations <= 0 {
		cfg.SchedulerIterations = 1
	}
	if cfg.IngressCap <= 0 {
		cfg.IngressCap = 4096
	}
	voqs := cfg.Ports * cfg.Classes
	cfg.Buffer.Q = voqs

	r := &Router{
		cfg:     cfg,
		grant:   make([]int, cfg.Ports),
		accept:  make([]int, cfg.Ports),
		voqs:    voqs,
		flowMul: cell.QueueID(voqs),
	}
	for i := 0; i < cfg.Ports; i++ {
		buf, err := core.New(cfg.Buffer)
		if err != nil {
			return nil, fmt.Errorf("router: input %d buffer: %w", i, err)
		}
		r.inputs = append(r.inputs, &input{
			buf:      buf,
			arrivals: make(map[cell.QueueID]uint64),
			meta:     make(map[metaKey]packet.SegCell),
		})
		r.reasm = append(r.reasm, packet.NewReassembler())
	}
	return r, nil
}

// VOQ maps (output, class) to the logical queue id used inside each
// input buffer.
func (r *Router) VOQ(output, class int) cell.QueueID {
	return cell.QueueID(output*r.cfg.Classes + class)
}

// Offer enqueues a packet at an input port. The packet's Flow must be
// a valid VOQ id (use VOQ to build it).
func (r *Router) Offer(port int, p packet.Packet) error {
	if port < 0 || port >= r.cfg.Ports {
		return fmt.Errorf("%w: %d", ErrBadPort, port)
	}
	if p.Flow < 0 || int(p.Flow) >= r.voqs {
		return fmt.Errorf("%w: %d", ErrBadFlow, p.Flow)
	}
	in := r.inputs[port]
	cells := in.seg.Segment(p)
	if len(in.pending)+len(cells) > r.cfg.IngressCap {
		return fmt.Errorf("%w: port %d", ErrIngressFull, port)
	}
	in.pending = append(in.pending, cells...)
	r.stats.OfferedPackets++
	return nil
}

// IngressBacklog returns the number of cells waiting to enter port's
// buffer.
func (r *Router) IngressBacklog(port int) int { return len(r.inputs[port].pending) }

// BufferStats exposes an input buffer's statistics.
func (r *Router) BufferStats(port int) core.Stats { return r.inputs[port].buf.Stats() }

// Stats returns the router-level counters.
func (r *Router) Stats() Stats { return r.stats }

// schedule computes this slot's input→output matching with iterative
// round-robin request-grant-accept (iSLIP). matched[i] = output or -1.
func (r *Router) schedule() []int {
	P := r.cfg.Ports
	matchedIn := make([]int, P)  // input -> output
	matchedOut := make([]int, P) // output -> input
	for i := range matchedIn {
		matchedIn[i], matchedOut[i] = -1, -1
	}
	for iter := 0; iter < r.cfg.SchedulerIterations; iter++ {
		// Request: unmatched inputs request every output they can
		// serve a cell to.
		requests := make([][]bool, P) // [output][input]
		any := false
		for i, in := range r.inputs {
			if matchedIn[i] >= 0 {
				continue
			}
			for o := 0; o < P; o++ {
				if matchedOut[o] >= 0 {
					continue
				}
				if r.requestableVOQ(in, o) != cell.NoQueue {
					if requests[o] == nil {
						requests[o] = make([]bool, P)
					}
					requests[o][i] = true
					any = true
				}
			}
		}
		if !any {
			break
		}
		// Grant: each output picks the requesting input nearest its
		// grant pointer.
		grants := make([]int, P) // input -> granting output (last wins replaced by accept step)
		for i := range grants {
			grants[i] = -1
		}
		grantOf := make([][]int, P) // input -> outputs granting it
		for o := 0; o < P; o++ {
			if requests[o] == nil {
				continue
			}
			for k := 0; k < P; k++ {
				i := (r.grant[o] + k) % P
				if requests[o][i] {
					grantOf[i] = append(grantOf[i], o)
					break
				}
			}
		}
		// Accept: each input picks the granting output nearest its
		// accept pointer; pointers advance only on first-iteration
		// accepts (the iSLIP desynchronization rule).
		for i := 0; i < P; i++ {
			if len(grantOf[i]) == 0 {
				continue
			}
			best, bestDist := -1, P+1
			for _, o := range grantOf[i] {
				d := (o - r.accept[i] + P) % P
				if d < bestDist {
					best, bestDist = o, d
				}
			}
			matchedIn[i], matchedOut[best] = best, i
			if iter == 0 {
				r.accept[i] = (best + 1) % P
				r.grant[best] = (i + 1) % P
			}
		}
	}
	return matchedIn
}

// requestableVOQ returns the highest-priority class VOQ of input in
// with a requestable cell for output o.
func (r *Router) requestableVOQ(in *input, o int) cell.QueueID {
	for class := 0; class < r.cfg.Classes; class++ {
		q := cell.QueueID(o*r.cfg.Classes + class)
		if in.buf.Requestable(q) > 0 {
			return q
		}
	}
	return cell.NoQueue
}

// Step advances the router one slot: one ingress cell per port, one
// fabric matching, one buffer tick per port, and output reassembly.
// It returns the packets completed this slot.
func (r *Router) Step() ([]Egress, error) {
	matched := r.schedule()
	var out []Egress
	for i, in := range r.inputs {
		tick := core.TickInput{Arrival: cell.NoQueue, Request: cell.NoQueue}

		// Ingress: admit one pending cell.
		var admitted *packet.SegCell
		if len(in.pending) > 0 {
			c := in.pending[0]
			tick.Arrival = c.Flow
			admitted = &c
		}
		// Fabric request for the matched output.
		if o := matched[i]; o >= 0 {
			if q := r.requestableVOQ(in, o); q != cell.NoQueue {
				tick.Request = q
				r.stats.Matches++
			}
		}

		res, err := in.buf.Tick(tick)
		if err != nil {
			if errors.Is(err, core.ErrBufferFull) {
				// Keep the cell pending; retry next slot.
				admitted = nil
			} else {
				return out, fmt.Errorf("router: input %d: %w", i, err)
			}
		}
		if admitted != nil {
			seq := in.arrivals[admitted.Flow]
			in.arrivals[admitted.Flow] = seq + 1
			in.meta[metaKey{voq: admitted.Flow, seq: seq}] = *admitted
			in.pending = in.pending[1:]
		}

		// Egress: a delivered cell crosses the fabric to its output.
		if res.Delivered != nil {
			d := *res.Delivered
			k := metaKey{voq: d.Queue, seq: d.Seq}
			sc, ok := in.meta[k]
			if !ok {
				return out, fmt.Errorf("router: input %d delivered unknown cell %v", i, d)
			}
			delete(in.meta, k)
			r.stats.SwitchedCells++
			output := int(d.Queue) / r.cfg.Classes
			// Reassemble per (input, voq) stream so same-flow cells of
			// different inputs never interleave.
			sc.Flow = cell.QueueID(i)*r.flowMul + d.Queue
			p, err := r.reasm[output].Push(sc)
			if err != nil {
				return out, fmt.Errorf("router: output %d: %w", output, err)
			}
			if p != nil {
				p.Flow %= r.flowMul // restore the offered flow id
				out = append(out, Egress{Output: output, Input: i, Packet: *p})
				r.stats.DeliveredPackets++
			}
		}
	}
	r.stats.Slots++
	return out, nil
}
