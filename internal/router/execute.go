package router

// runPortEpoch advances port i through the epoch plan's slots. Before
// each slot the port validates its live request vector against the
// planned prediction — the guard that keeps speculation bounded: a
// mismatch means the analytic occupancy view broke (possible only
// when a buffer invariant broke first, see planEpoch), so the port
// stops before ticking and the coordinator truncates the epoch at the
// earliest divergence. e.div[i] records how many planned slots the
// port executed; a tick error also stops the port, with the erroring
// slot counted as executed so its delivery surfaces through collect
// exactly as in lockstep.
//
// Everything touched here is port-local (the plan and e.epDeliv are
// indexed by port), so workers run it concurrently with no
// synchronization inside the epoch.
//
//pktbuf:hotpath
func (e *Engine) runPortEpoch(i int) {
	r := e.r
	p := e.plan
	P := r.cfg.Ports
	in := r.inputs[i]
	k := p.k
	for s := 0; s < k; s++ {
		row := p.reqVec[(s*P+i)*P : (s*P+i)*P+P]
		for o := 0; o < P; o++ {
			if in.reqVec[o] != row[o] {
				e.div[i] = int32(s)
				return
			}
		}
		d := r.tickPort(i, p.matched[s*P+i])
		e.epDeliv[s*P+i] = d
		if d.err != nil {
			e.div[i] = int32(s + 1)
			return
		}
	}
	e.div[i] = int32(k)
}

// executeEpoch fans the current plan out to the shards: one command
// send and one completion receive per worker for the whole epoch —
// the entire synchronization cost that the lockstep engine pays every
// slot.
func (e *Engine) executeEpoch() {
	if e.workers <= 1 {
		for i := range e.r.inputs {
			e.runPortEpoch(i)
		}
		return
	}
	k := e.plan.k
	for w := 0; w < e.workers; w++ {
		e.cmd[w] <- k
	}
	for w := 0; w < e.workers; w++ {
		<-e.done
	}
	e.estats.SyncOps += uint64(2 * e.workers)
}
