package router

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
)

// BenchmarkRouterStep measures the per-slot cost of the whole router
// (segmentation + 4 buffers + iSLIP + reassembly) under ~full load.
func BenchmarkRouterStep(b *testing.B) {
	b.ReportAllocs()
	r, err := New(Config{
		Ports:   4,
		Classes: 2,
		Buffer:  core.Config{B: 32, Bsmall: 4, Banks: 256},
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4 == 0 {
			in := rng.Intn(4)
			p := packet.Packet{Flow: r.VOQ(rng.Intn(4), rng.Intn(2)), Payload: payload}
			_ = r.Offer(in, p)
		}
		if _, err := r.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := r.Stats()
	if st.Slots == 0 {
		b.Fatal("no slots")
	}
	b.ReportMetric(float64(st.SwitchedCells)/float64(st.Slots), "cells/slot")
}
