package router

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/packet"
)

// Engine is the sharded router: each input port's buffer shard is
// advanced by a dedicated worker goroutine, and the iSLIP
// request-grant-accept exchange (schedule) plus the in-order egress
// collection are the only serialization points. Because tickPort
// touches only port-local state, schedule reads only request vectors
// published by previous ticks, and collect consumes deliveries in
// input-port order, the engine's output is bit-identical to
// Router.Step on the same offered workload —
// TestEngineMatchesSerialRouter pins that equivalence.
//
// With Config.EpochSlots = K > 1 the engine runs epoch-batched: the
// coordinator plans up to K consecutive slots of matchings in one
// serialized pass against predicted request vectors (plan.go), hands
// each worker the whole plan in a single command send, and the
// workers advance their shards K slots without touching a channel
// (execute.go), so the per-slot barrier of the lockstep engine
// becomes a per-epoch barrier — coordinator↔worker channel
// operations drop from 2·workers per slot to 2·workers per epoch.
// The plan is truncated at the earliest divergence and the engine
// re-plans from committed state (repair.go); K = 1 degenerates to
// the lockstep engine exactly.
//
// The engine is single-driver: Offer, Step, StepBatch and Close must
// be called from one goroutine (the workers never touch router state
// outside a Step). With workers ≤ 1 the engine runs the serial path
// in place, with no goroutines — useful as the reference and for
// GOMAXPROCS=1 hosts where the barrier overhead buys nothing.
type Engine struct {
	r       *Router
	workers int
	epochK  int        // speculation window (1 = lockstep)
	cmd     []chan int // per-worker command: 0 = one lockstep slot, k > 0 = run the k-slot plan
	done    chan struct{}
	closed  bool
	// poisoned is set when epoch execution tore the shard state (see
	// ErrEpochDiverged); every subsequent call returns it.
	poisoned error

	plan    *epochPlan
	epDeliv []delivery // [K×Ports] per-slot deliveries, slot-major
	div     []int32    // div[i] = planned slots port i executed
	estats  EpochStats
}

// EpochStats counts the epoch engine's planning and synchronization
// activity. It is deliberately separate from Stats, which stays
// bit-identical to the serial router's counters for every K.
type EpochStats struct {
	// Epochs counts executed plans (length ≥ 1); PlannedSlots the
	// slots they covered and CommittedSlots the slots that committed
	// (equal unless a divergence truncated a plan).
	Epochs, PlannedSlots, CommittedSlots uint64
	// HorizonTruncations counts plans cut short of the full window by
	// the admission horizon (a port's tail-SRAM budget could no longer
	// guarantee its next arrival admits).
	HorizonTruncations uint64
	// SerialFallbackSlots counts slots stepped in exact lockstep
	// because not even one slot could be planned (ingress waiting on a
	// full tail SRAM): the serial path applies the reject/retry rule.
	SerialFallbackSlots uint64
	// Divergences counts execution-time validation failures. Zero in
	// every healthy state: the planner's predictions are exact unless
	// a buffer invariant has already broken.
	Divergences uint64
	// SyncOps counts coordinator↔worker channel operations (each
	// worker costs one command send plus one completion receive per
	// exchange). The lockstep engine pays 2·workers per slot; the
	// epoch engine 2·workers per epoch.
	SyncOps uint64
}

// NewEngine builds a sharded router over cfg. workers ≤ 0 selects one
// worker per port (the goroutine-per-port sharding of the paper's
// Figure 1, one line card per goroutine); workers between 2 and
// Ports-1 stripes the ports across that many workers; workers == 1
// runs serially in place.
func NewEngine(cfg Config, workers int) (*Engine, error) {
	r, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return newEngine(r, workers), nil
}

// newEngine wraps an existing router. The router must not be stepped
// directly while the engine owns it.
func newEngine(r *Router, workers int) *Engine {
	ports := r.cfg.Ports
	if workers <= 0 || workers > ports {
		workers = ports
	}
	e := &Engine{r: r, workers: workers, epochK: r.cfg.EpochSlots}
	if e.epochK > 1 {
		e.plan = newEpochPlan(e.epochK, ports, r.voqs)
		e.epDeliv = make([]delivery, e.epochK*ports)
		e.div = make([]int32, ports)
	}
	if workers > 1 {
		e.cmd = make([]chan int, workers)
		e.done = make(chan struct{}, workers)
		for w := 0; w < workers; w++ {
			e.cmd[w] = make(chan int, 1)
			go e.worker(w)
		}
	}
	return e
}

// worker advances the ports striped onto worker w (ports w, w+W,
// w+2W, …) each time the coordinator sends a command, then reports
// completion. A command of 0 ticks one lockstep slot from r.matched;
// k > 0 runs the k-slot epoch plan. Writes land in per-port slots of
// r.deliveries / e.epDeliv / e.div and are published to the
// coordinator by the done send.
func (e *Engine) worker(w int) {
	r := e.r
	ports := r.cfg.Ports
	for k := range e.cmd[w] {
		if k > 0 {
			for i := w; i < ports; i += e.workers {
				e.runPortEpoch(i)
			}
		} else {
			for i := w; i < ports; i += e.workers {
				r.deliveries[i] = r.tickPort(i, r.matched[i])
			}
		}
		e.done <- struct{}{}
	}
}

// Workers returns the number of worker goroutines (1 = serial).
func (e *Engine) Workers() int { return e.workers }

// Config returns the normalized configuration.
func (e *Engine) Config() Config { return e.r.cfg }

// VOQ maps (output, class) to the logical queue id used inside each
// input buffer.
func (e *Engine) VOQ(output, class int) int { return int(e.r.VOQ(output, class)) }

// Offer enqueues a packet at an input port (see Router.Offer).
func (e *Engine) Offer(port int, p packet.Packet) error {
	if e.closed {
		return ErrClosed
	}
	if e.poisoned != nil {
		return e.poisoned
	}
	return e.r.Offer(port, p)
}

// OfferBatch enqueues packets at an input port in one validated pass
// (see Router.OfferBatch): the port and engine state are checked
// once, the accepted prefix is sized against the ingress budget up
// front, and its cells are segmented in a single run. It returns the
// number of packets accepted and the error that stopped the run; the
// remaining packets are not offered.
func (e *Engine) OfferBatch(port int, ps []packet.Packet) (int, error) {
	if e.closed {
		return 0, ErrClosed
	}
	if e.poisoned != nil {
		return 0, e.poisoned
	}
	return e.r.OfferBatch(port, ps)
}

// IngressBacklog returns the number of cells waiting to enter port's
// buffer.
func (e *Engine) IngressBacklog(port int) int { return e.r.IngressBacklog(port) }

// BufferStats exposes an input buffer's statistics.
func (e *Engine) BufferStats(port int) core.Stats { return e.r.BufferStats(port) }

// Router returns the underlying serial router (for stats and VOQ
// mapping; do not Step it while the engine owns it).
func (e *Engine) Router() *Router { return e.r }

// Stats returns the router-level counters.
func (e *Engine) Stats() Stats { return e.r.stats }

// EpochStats returns the epoch engine's planning and synchronization
// counters (all zero while EpochSlots ≤ 1, except SyncOps, which the
// lockstep barrier also maintains).
func (e *Engine) EpochStats() EpochStats { return e.estats }

// Step advances the engine one slot and returns the packets completed
// this slot; the slice and payloads are scratch reused by the next
// Step (see Egress). Step always takes the exact lockstep path — a
// one-slot epoch plans nothing worth amortizing.
func (e *Engine) Step() ([]Egress, error) {
	out, err := e.StepAppend(e.r.egScratch[:0])
	e.r.egScratch = out
	return out, err
}

// StepAppend advances one slot, appending the slot's egress to out.
// Egress payloads are valid until the next step call.
func (e *Engine) StepAppend(out []Egress) ([]Egress, error) {
	if e.closed {
		return out, ErrClosed
	}
	if e.poisoned != nil {
		return out, e.poisoned
	}
	e.r.egArena = e.r.egArena[:0]
	return e.stepSlot(out)
}

// stepSlot advances one lockstep slot without resetting the egress
// arena.
func (e *Engine) stepSlot(out []Egress) ([]Egress, error) {
	r := e.r
	// Serialize: the request-grant-accept exchange over the request
	// vectors the ports published after their previous ticks.
	r.schedule(r.reqRows, r.matched)
	// Fan out: every port shard ticks concurrently.
	if e.workers <= 1 {
		for i := range r.inputs {
			r.deliveries[i] = r.tickPort(i, r.matched[i])
		}
	} else {
		for w := 0; w < e.workers; w++ {
			e.cmd[w] <- 0
		}
		for w := 0; w < e.workers; w++ {
			<-e.done
		}
		e.estats.SyncOps += uint64(2 * e.workers)
	}
	// Serialize: collect deliveries in input-port order.
	var firstErr error
	for i := range r.inputs {
		var err error
		out, err = r.collect(i, r.deliveries[i], out)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	r.stats.Slots++
	return out, firstErr
}

// StepBatch advances up to slots slots, appending all egress to out.
// Egress payloads from the whole batch stay valid until the next step
// call. On a slot error it stops after the offending slot (whose
// egress is already appended) and returns the error. The returned
// slice extends out; with enough capacity the batch path allocates
// nothing. When every port goes quiescent (drained buffers, empty
// ingress, no pending requests) the remaining slots are skipped in
// one lockstep fast-forward of all shards — bit-identical to stepping
// them, so a batch that outlives its traffic costs O(events), not
// O(slots). With EpochSlots > 1 the batch runs as a sequence of
// planned epochs (see Engine doc); quiescence is then probed at epoch
// boundaries, so the only observable difference from the lockstep
// engine is core.Stats.FastForwardedSlots — egress, router stats and
// every other buffer counter stay bit-identical.
func (e *Engine) StepBatch(slots int, out []Egress) ([]Egress, error) {
	if e.closed {
		return out, ErrClosed
	}
	if e.poisoned != nil {
		return out, e.poisoned
	}
	e.r.egArena = e.r.egArena[:0]
	if e.epochK > 1 {
		return e.stepEpochs(slots, out)
	}
	for s := 0; s < slots; s++ {
		if e.r.Quiescent() {
			e.r.fastForward(uint64(slots - s))
			break
		}
		var err error
		out, err = e.stepSlot(out)
		if err != nil {
			return out, fmt.Errorf("slot %d of batch: %w", s, err)
		}
	}
	return out, nil
}

// Quiescent reports whether every port shard is quiescent (see
// Router.Quiescent): a Step would only advance the slot counter, and
// StepBatch fast-forwards instead of stepping.
func (e *Engine) Quiescent() bool { return e.r.Quiescent() }

// Close stops the worker goroutines. A closed engine rejects further
// Offer and Step calls with ErrClosed. Close is idempotent.
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	for _, c := range e.cmd {
		close(c)
	}
	return nil
}
