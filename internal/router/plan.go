package router

import "repro/internal/cell"

// epochPlan is the coordinator's K-slot speculation: the iSLIP
// exchange run ahead of the shards against a synthetic occupancy
// view, plus everything needed to validate the plan port-locally and
// to roll the scheduler state back to any committed prefix. All
// arenas are sized once at engine construction; planning allocates
// nothing.
type epochPlan struct {
	k int // planned slots this epoch (≤ the EpochSlots window)

	// Per-slot outputs, slot-major.
	reqVec  []cell.QueueID // [K×P×P] predicted request rows: reqVec[(s·P+i)·P+o]
	matched []int          // [K×P] matched[s·P+i] = output or -1
	grant   []int          // [K×P] grant pointers after slot s
	accept  []int          // [K×P] accept pointers after slot s
	matches []uint64       // [K] cumulative Stats.Matches after slot s

	// Committed-state snapshot before slot 0, for rollback to an
	// empty prefix.
	grantBase   []int
	acceptBase  []int
	matchesBase uint64

	// Planner scratch.
	predReq  []int32          // [P×voqs] predicted Requestable per VOQ
	arrCur   []int            // [P] pending-ring cells consumed by the plan
	tailRoom []int            // [P] guaranteed-admission budget (TailFree)
	rows     [][]cell.QueueID // [P] row views into reqVec handed to schedule
}

func newEpochPlan(k, ports, voqs int) *epochPlan {
	return &epochPlan{
		reqVec:     make([]cell.QueueID, k*ports*ports),
		matched:    make([]int, k*ports),
		grant:      make([]int, k*ports),
		accept:     make([]int, k*ports),
		matches:    make([]uint64, k),
		grantBase:  make([]int, ports),
		acceptBase: make([]int, ports),
		predReq:    make([]int32, ports*voqs),
		arrCur:     make([]int, ports),
		tailRoom:   make([]int, ports),
		rows:       make([][]cell.QueueID, ports),
	}
}

// planEpoch runs the request-grant-accept exchange for up to maxSlots
// consecutive slots in one serialized pass and returns the plan
// length. The exchange for slot s needs request vectors the ports
// will only publish after ticking slot s-1, so the planner evolves a
// synthetic occupancy view instead of waiting: predReq starts from
// each VOQ's live Requestable count and advances by the buffer's own
// conservation law — an arrival raises it by one, an admitted fabric
// request lowers it by one, and the request's eventual delivery is
// net zero (it retires the occupancy and the pending request
// together). That view is exact, not heuristic, as long as every
// arrival the plan assumes actually admits; the admission horizon
// below enforces exactly that, so in every healthy state the shards
// execute the whole plan without divergence and the lag stays
// bounded by construction rather than by rollback frequency.
//
// Pointer evolution is shared, not simulated: each planned slot runs
// the same Router.schedule the lockstep engine runs, over the
// predicted rows, mutating the live grant/accept pointers and match
// counter — so a fully committed epoch leaves them exactly where K
// lockstep slots would, and per-slot snapshots allow rollback to any
// shorter prefix.
//
//pktbuf:hotpath
func (e *Engine) planEpoch(maxSlots int) int {
	r := e.r
	p := e.plan
	P := r.cfg.Ports
	V := r.voqs
	C := r.cfg.Classes
	for i, in := range r.inputs {
		base := i * V
		for q := 0; q < V; q++ {
			p.predReq[base+q] = int32(in.buf.Requestable(cell.QueueID(q)))
		}
		p.arrCur[i] = 0
		p.tailRoom[i] = in.buf.TailFree()
	}
	copy(p.grantBase, r.grant)
	copy(p.acceptBase, r.accept)
	p.matchesBase = r.stats.Matches
	k := 0
	for k < maxSlots {
		// Admission horizon: every arrival the plan assumes must be
		// guaranteed to admit. A port with ingress waiting but no tail
		// budget left ends the plan here — tickPort's reject/retry
		// path would hold the cell back and desynchronize the view.
		for i, in := range r.inputs {
			if p.arrCur[i] < in.pending.len() && p.tailRoom[i] <= 0 {
				p.k = k
				return k
			}
		}
		// Predicted request rows for this slot: lowest requestable
		// class per output, exactly computeReqVec's rule.
		off := k * P
		for i := 0; i < P; i++ {
			row := p.reqVec[(off+i)*P : (off+i)*P+P]
			base := i * V
			for o := 0; o < P; o++ {
				row[o] = cell.NoQueue
				qb := o * C
				for c := 0; c < C; c++ {
					if p.predReq[base+qb+c] > 0 {
						row[o] = cell.QueueID(qb + c)
						break
					}
				}
			}
			p.rows[i] = row
		}
		matchedRow := p.matched[off : off+P]
		r.schedule(p.rows, matchedRow)
		copy(p.grant[off:off+P], r.grant)
		copy(p.accept[off:off+P], r.accept)
		p.matches[k] = r.stats.Matches
		// Evolve the view: one ingress admission per port, one debit
		// per granted request.
		for i, in := range r.inputs {
			if p.arrCur[i] < in.pending.len() {
				f := in.pending.at(p.arrCur[i]).Flow
				p.predReq[i*V+int(f)]++
				p.arrCur[i]++
				p.tailRoom[i]--
			}
			if mo := matchedRow[i]; mo >= 0 {
				q := p.reqVec[(off+i)*P+mo]
				p.predReq[i*V+int(q)]--
			}
		}
		k++
	}
	p.k = k
	return k
}
