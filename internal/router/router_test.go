package router

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
)

func testRouter(t *testing.T, ports, classes int) *Router {
	t.Helper()
	r, err := New(Config{
		Ports:   ports,
		Classes: classes,
		Buffer:  core.Config{B: 8, Bsmall: 2, Banks: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Ports: 0}); err == nil {
		t.Error("zero ports accepted")
	}
	// Bad buffer geometry propagates.
	if _, err := New(Config{Ports: 2, Buffer: core.Config{B: 8, Bsmall: 3, Banks: 16}}); err == nil {
		t.Error("bad buffer config accepted")
	}
	r := testRouter(t, 4, 2)
	if got := r.VOQ(3, 1); got != 7 {
		t.Errorf("VOQ(3,1) = %d", got)
	}
}

func TestOfferValidation(t *testing.T) {
	r := testRouter(t, 2, 1)
	if err := r.Offer(5, packet.Packet{Flow: 0}); !errors.Is(err, ErrBadPort) {
		t.Errorf("err = %v", err)
	}
	if err := r.Offer(0, packet.Packet{Flow: 99}); !errors.Is(err, ErrBadFlow) {
		t.Errorf("err = %v", err)
	}
	if err := r.Offer(0, packet.Packet{Flow: -1}); !errors.Is(err, ErrBadFlow) {
		t.Errorf("err = %v", err)
	}
}

func TestIngressCap(t *testing.T) {
	r, err := New(Config{
		Ports: 2, Classes: 1,
		Buffer:     core.Config{B: 8, Bsmall: 2, Banks: 16},
		IngressCap: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	big := packet.Packet{Flow: 0, Payload: make([]byte, 3*packet.CellPayload)}
	if err := r.Offer(0, big); err != nil {
		t.Fatal(err)
	}
	if err := r.Offer(0, big); !errors.Is(err, ErrIngressFull) {
		t.Errorf("err = %v, want ErrIngressFull", err)
	}
	if got := r.IngressBacklog(0); got != 3 {
		t.Errorf("backlog = %d", got)
	}
}

func TestSinglePacketAcrossFabric(t *testing.T) {
	r := testRouter(t, 2, 1)
	payload := bytes.Repeat([]byte{0x5A}, 2*packet.CellPayload+7)
	if err := r.Offer(0, packet.Packet{Flow: r.VOQ(1, 0), Payload: payload}); err != nil {
		t.Fatal(err)
	}
	var got []Egress
	for slot := 0; slot < 5000 && len(got) == 0; slot++ {
		eg, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, eg...)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d packets", len(got))
	}
	e := got[0]
	if e.Output != 1 || e.Input != 0 {
		t.Errorf("routing: %+v", e)
	}
	if !bytes.Equal(e.Packet.Payload, payload) {
		t.Error("payload corrupted in flight")
	}
	st := r.Stats()
	if st.DeliveredPackets != 1 || st.SwitchedCells != 3 {
		t.Errorf("stats = %+v", st)
	}
}

// TestUniformTrafficConservation pushes random packets through a 4×4
// router and checks every single one emerges intact at the right port.
func TestUniformTrafficConservation(t *testing.T) {
	const ports, classes = 4, 2
	r := testRouter(t, ports, classes)
	rng := rand.New(rand.NewSource(99))

	type want struct{ payload []byte }
	sent := map[int]map[int][]want{} // output -> input -> packets in order
	for o := 0; o < ports; o++ {
		sent[o] = map[int][]want{}
	}
	offered := 0
	for slot := 0; slot < 30000; slot++ {
		// Offer a packet now and then (mean size a few cells).
		if offered < 600 && rng.Intn(8) == 0 {
			in := rng.Intn(ports)
			out := rng.Intn(ports)
			class := rng.Intn(classes)
			payload := make([]byte, rng.Intn(5*packet.CellPayload))
			rng.Read(payload)
			p := packet.Packet{Flow: r.VOQ(out, class), Payload: payload}
			if err := r.Offer(in, p); err == nil {
				sent[out][in] = append(sent[out][in], want{payload: payload})
				offered++
			}
		}
		eg, err := r.Step()
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		for _, e := range eg {
			q := sent[e.Output][e.Input]
			if len(q) == 0 {
				t.Fatalf("unexpected packet at output %d from input %d", e.Output, e.Input)
			}
			// Per (input→output) pair with one class... classes may
			// reorder relative to each other, so search the first few.
			found := -1
			for k := 0; k < len(q) && k < 8; k++ {
				if bytes.Equal(q[k].payload, e.Packet.Payload) {
					found = k
					break
				}
			}
			if found < 0 {
				t.Fatalf("payload mismatch at output %d from input %d", e.Output, e.Input)
			}
			sent[e.Output][e.Input] = append(q[:found], q[found+1:]...)
		}
	}
	// Drain.
	for slot := 0; slot < 200000 && r.Stats().DeliveredPackets < uint64(offered); slot++ {
		eg, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range eg {
			q := sent[e.Output][e.Input]
			found := -1
			for k := 0; k < len(q) && k < 8; k++ {
				if bytes.Equal(q[k].payload, e.Packet.Payload) {
					found = k
					break
				}
			}
			if found < 0 {
				t.Fatalf("drain: payload mismatch at output %d", e.Output)
			}
			sent[e.Output][e.Input] = append(q[:found], q[found+1:]...)
		}
	}
	if got := r.Stats().DeliveredPackets; got != uint64(offered) {
		t.Fatalf("delivered %d of %d packets", got, offered)
	}
	for o := range sent {
		for i := range sent[o] {
			if len(sent[o][i]) != 0 {
				t.Errorf("output %d input %d: %d packets lost", o, i, len(sent[o][i]))
			}
		}
	}
	// Every input buffer upheld its guarantees.
	for p := 0; p < ports; p++ {
		if st := r.BufferStats(p); !st.Clean() {
			t.Errorf("input %d buffer: %v", p, st)
		}
	}
}

// TestHotspotOutputContention: all inputs target one output; the
// fabric serializes them (≤1 cell/slot through the hot output) and
// nothing is lost.
func TestHotspotOutputContention(t *testing.T) {
	const ports = 4
	r := testRouter(t, ports, 1)
	const perInput = 30
	for i := 0; i < ports; i++ {
		for k := 0; k < perInput; k++ {
			p := packet.Packet{Flow: r.VOQ(2, 0), Payload: []byte{byte(i), byte(k)}}
			if err := r.Offer(i, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := uint64(ports * perInput)
	for slot := 0; slot < 100000 && r.Stats().DeliveredPackets < want; slot++ {
		eg, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range eg {
			if e.Output != 2 {
				t.Fatalf("packet at wrong output %d", e.Output)
			}
		}
	}
	if got := r.Stats().DeliveredPackets; got != want {
		t.Fatalf("delivered %d of %d", got, want)
	}
}

// TestISLIPDesynchronization: under full uniform backlog, an
// iSLIP-scheduled fabric should approach one match per output per
// slot (the classic 100%-throughput behaviour for uniform traffic).
func TestISLIPDesynchronization(t *testing.T) {
	const ports = 4
	r := testRouter(t, ports, 1)
	rng := rand.New(rand.NewSource(4))
	// Keep every input backlogged for every output: offer one 1-cell
	// packet per input per slot (full load, uniform destinations).
	step := func() {
		t.Helper()
		for i := 0; i < ports; i++ {
			p := packet.Packet{Flow: r.VOQ(rng.Intn(ports), 0), Payload: []byte{1}}
			_ = r.Offer(i, p) // ingress-full is fine under full load
		}
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: fill the VOQs and desynchronize the pointers.
	for slot := 0; slot < 1500; slot++ {
		step()
	}
	before := r.Stats().Matches
	const window = 400
	for slot := 0; slot < window; slot++ {
		step()
	}
	rate := float64(r.Stats().Matches-before) / float64(window) / ports
	if rate < 0.9 {
		t.Errorf("match rate %.2f per output per slot, want ≥0.9 (iSLIP desync)", rate)
	}
}

// TestMultiIterationScheduler: extra iterations never reduce the
// matching.
func TestMultiIterationScheduler(t *testing.T) {
	for _, iters := range []int{1, 2, 4} {
		r, err := New(Config{
			Ports: 4, Classes: 1,
			Buffer:              core.Config{B: 8, Bsmall: 2, Banks: 16},
			SchedulerIterations: iters,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			for o := 0; o < 4; o++ {
				if err := r.Offer(i, packet.Packet{Flow: r.VOQ(o, 0), Payload: []byte{1}}); err != nil {
					t.Fatal(err)
				}
			}
		}
		for slot := 0; slot < 2000 && r.Stats().DeliveredPackets < 16; slot++ {
			if _, err := r.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if r.Stats().DeliveredPackets != 16 {
			t.Errorf("iters=%d: delivered %d of 16", iters, r.Stats().DeliveredPackets)
		}
	}
}
