package router

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/packet"
)

func recordEgress(eg []Egress, dst *[]slotRecord) {
	for _, e := range eg {
		*dst = append(*dst, slotRecord{
			output: e.Output, input: e.Input, flow: int(e.Packet.Flow),
			payload: append([]byte(nil), e.Packet.Payload...),
		})
	}
}

// TestEpochMatchesSerial is the epoch engine's golden-equivalence
// sweep: for every speculation window K, port count, class count and
// worker striping, a seeded bursty workload stepped through
// epoch-batched StepBatch calls of adversarial lengths (misaligned
// with K, so epochs are truncated by batch boundaries) must be
// bit-identical to the serial Router stepping slot by slot — egress
// stream, router stats and buffer stats included.
func TestEpochMatchesSerial(t *testing.T) {
	bufCfg := core.Config{B: 8, Bsmall: 2, Banks: 16}
	for _, pc := range []struct{ ports, classes int }{{4, 1}, {4, 2}, {8, 2}} {
		for _, K := range []int{1, 2, 4, 16} {
			for _, workers := range []int{1, 0} {
				name := fmt.Sprintf("ports=%d/classes=%d/K=%d/workers=%d", pc.ports, pc.classes, K, workers)
				t.Run(name, func(t *testing.T) {
					testEpochEquivalence(t, pc.ports, pc.classes, K, workers, bufCfg, 4000, false)
				})
			}
		}
	}
}

// TestEpochRepairBoundaries drives the repair-boundary scenarios the
// predictor must survive: a tail SRAM tiny enough that arrivals
// reject under pressure (the admission horizon must truncate plans
// and fall back to exact lockstep slots mid-batch), ingress bursts
// landing between epochs, and VOQs draining dry inside a planned
// window. The differential bar is unchanged — bit-identical to
// serial — and the test additionally requires the horizon to have
// actually engaged.
func TestEpochRepairBoundaries(t *testing.T) {
	// BankCapacityBlocks bounds the banks so a full tail SRAM rejects
	// with ErrBufferFull (retry next slot) instead of erroring out.
	bufCfg := core.Config{B: 8, Bsmall: 2, Banks: 4, BankCapacityBlocks: 4, TailSRAMCells: 6}
	for _, pc := range []struct{ ports, classes int }{{4, 2}, {8, 2}} {
		for _, K := range []int{2, 4, 16} {
			for _, workers := range []int{1, 0} {
				name := fmt.Sprintf("ports=%d/classes=%d/K=%d/workers=%d", pc.ports, pc.classes, K, workers)
				t.Run(name, func(t *testing.T) {
					testEpochEquivalence(t, pc.ports, pc.classes, K, workers, bufCfg, 4000, true)
				})
			}
		}
	}
}

func testEpochEquivalence(t *testing.T, ports, classes, K, workers int, bufCfg core.Config, slots int, wantHorizon bool) {
	t.Helper()
	serial, err := New(Config{Ports: ports, Classes: classes, Buffer: bufCfg, SchedulerIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{Ports: ports, Classes: classes, Buffer: bufCfg, SchedulerIterations: 2, EpochSlots: K}, workers)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.Config().EpochSlots; got != K {
		t.Fatalf("EpochSlots normalized to %d, want %d", got, K)
	}
	rng := rand.New(rand.NewSource(int64(1000*ports + 100*classes + K)))
	var sOut, eOut []slotRecord
	for done := 0; done < slots; {
		if rng.Intn(2) == 0 {
			// An ingress burst, landing mid-epoch relative to the
			// engine's batching.
			for b, n := 0, rng.Intn(3*ports); b < n; b++ {
				in, out, class := rng.Intn(ports), rng.Intn(ports), rng.Intn(classes)
				payload := make([]byte, rng.Intn(3*packet.CellPayload))
				rng.Read(payload)
				p := packet.Packet{Flow: serial.VOQ(out, class), Payload: payload}
				errA := serial.Offer(in, p)
				errB := eng.Offer(in, p)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("offer disagreement: serial %v, epoch %v", errA, errB)
				}
				if errA != nil && !errors.Is(errA, ErrIngressFull) {
					t.Fatal(errA)
				}
			}
		}
		// Batch lengths misaligned with K, so epochs are clipped by
		// batch boundaries as often as by the window.
		n := 1 + rng.Intn(2*K+3)
		if rem := slots - done; n > rem {
			n = rem
		}
		for s := 0; s < n; s++ {
			eg, err := serial.Step()
			if err != nil {
				t.Fatal(err)
			}
			recordEgress(eg, &sOut)
		}
		eg, err := eng.StepBatch(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		recordEgress(eg, &eOut)
		done += n
	}
	if len(sOut) != len(eOut) {
		t.Fatalf("egress diverges: serial %d packets, epoch %d", len(sOut), len(eOut))
	}
	for k := range sOut {
		a, b := sOut[k], eOut[k]
		if a.output != b.output || a.input != b.input || a.flow != b.flow || !bytes.Equal(a.payload, b.payload) {
			t.Fatalf("egress %d diverges: %+v vs %+v", k, a, b)
		}
	}
	if serial.Stats() != eng.Stats() {
		t.Errorf("router stats diverge:\nserial %+v\nepoch  %+v", serial.Stats(), eng.Stats())
	}
	for p := 0; p < ports; p++ {
		ss, es := serial.BufferStats(p), eng.BufferStats(p)
		ss.FastForwardedSlots, es.FastForwardedSlots = 0, 0
		if ss != es {
			t.Errorf("port %d buffer stats diverge:\nserial %+v\nepoch  %+v", p, ss, es)
		}
		// Under reject pressure both sides drop (identically, per the
		// stats equality above); Clean() only holds without it.
		if !wantHorizon && !es.Clean() {
			t.Errorf("port %d not clean: %+v", p, es)
		}
	}
	es := eng.EpochStats()
	if es.Divergences != 0 {
		t.Errorf("epoch execution diverged %d times; predictions must be exact in healthy states", es.Divergences)
	}
	if es.PlannedSlots != es.CommittedSlots {
		t.Errorf("planned %d slots but committed %d", es.PlannedSlots, es.CommittedSlots)
	}
	if K > 1 && es.Epochs == 0 {
		t.Error("epoch path never ran")
	}
	if wantHorizon && es.HorizonTruncations+es.SerialFallbackSlots == 0 {
		t.Error("admission horizon never engaged: the reject-pressure scenario exercised nothing")
	}
}

// TestEpochTruncationRepairs pins the repair path itself, which is
// unreachable through the public API in healthy states (the planner's
// predictions are exact): the plan's slot-2 request rows are
// corrupted in place so every port stops at the same boundary before
// ticking it. The coordinator must commit exactly the two validated
// slots, roll the grant/accept pointers and match counter back to the
// commit point, and leave the engine consistent — pinned by stepping
// both engines thousands of slots further in bit-identical lockstep.
func TestEpochTruncationRepairs(t *testing.T) {
	const ports, classes = 4, 2
	bufCfg := core.Config{B: 8, Bsmall: 2, Banks: 16}
	serial, err := New(Config{Ports: ports, Classes: classes, Buffer: bufCfg, SchedulerIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{Ports: ports, Classes: classes, Buffer: bufCfg, SchedulerIterations: 2, EpochSlots: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rng := rand.New(rand.NewSource(7))
	offerBoth := func(n int) {
		for b := 0; b < n; b++ {
			in, out, class := rng.Intn(ports), rng.Intn(ports), rng.Intn(classes)
			payload := make([]byte, 1+rng.Intn(2*packet.CellPayload))
			rng.Read(payload)
			p := packet.Packet{Flow: serial.VOQ(out, class), Payload: payload}
			if err := serial.Offer(in, p); err != nil {
				t.Fatal(err)
			}
			if err := eng.Offer(in, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	stepBoth := func(slots int) {
		var sOut, eOut []slotRecord
		for s := 0; s < slots; s++ {
			eg, err := serial.Step()
			if err != nil {
				t.Fatal(err)
			}
			recordEgress(eg, &sOut)
		}
		eg, err := eng.StepBatch(slots, nil)
		if err != nil {
			t.Fatal(err)
		}
		recordEgress(eg, &eOut)
		if len(sOut) != len(eOut) {
			t.Fatalf("egress diverges: serial %d, epoch %d", len(sOut), len(eOut))
		}
		for k := range sOut {
			a, b := sOut[k], eOut[k]
			if a.output != b.output || a.input != b.input || a.flow != b.flow || !bytes.Equal(a.payload, b.payload) {
				t.Fatalf("egress %d diverges", k)
			}
		}
	}
	offerBoth(40)
	stepBoth(50) // warm, already through the epoch path

	// White-box epoch round with a sabotaged plan: run the coordinator
	// stages by hand the way stepEpochs does.
	eng.r.egArena = eng.r.egArena[:0]
	k := eng.planEpoch(8)
	if k < 4 {
		t.Fatalf("planned only %d slots; need ≥ 4 to truncate at slot 2", k)
	}
	const divergeAt = 2
	for i := 0; i < ports; i++ {
		row := eng.plan.reqVec[(divergeAt*ports+i)*ports : (divergeAt*ports+i)*ports+ports]
		for o := range row {
			row[o] = cell.QueueID(9999) // matches no live request vector
		}
	}
	eng.executeEpoch()
	out, commit, _, err := eng.commitEpoch(nil)
	if err != nil {
		t.Fatalf("repairable truncation returned error: %v", err)
	}
	if commit != divergeAt {
		t.Fatalf("committed %d slots, want %d", commit, divergeAt)
	}
	if eng.poisoned != nil {
		t.Fatalf("uniform truncation must not poison: %v", eng.poisoned)
	}
	if es := eng.EpochStats(); es.Divergences != 1 {
		t.Fatalf("Divergences = %d, want 1", es.Divergences)
	}
	var sOut, eOut []slotRecord
	recordEgress(out, &eOut)
	for s := 0; s < divergeAt; s++ {
		eg, err := serial.Step()
		if err != nil {
			t.Fatal(err)
		}
		recordEgress(eg, &sOut)
	}
	if len(sOut) != len(eOut) {
		t.Fatalf("truncated-epoch egress diverges: serial %d, epoch %d", len(sOut), len(eOut))
	}
	for k := range sOut {
		a, b := sOut[k], eOut[k]
		if a.output != b.output || a.input != b.input || a.flow != b.flow || !bytes.Equal(a.payload, b.payload) {
			t.Fatalf("truncated-epoch egress %d diverges", k)
		}
	}
	if serial.Stats() != eng.Stats() {
		t.Fatalf("stats diverge after rollback:\nserial %+v\nepoch  %+v", serial.Stats(), eng.Stats())
	}

	// The rolled-back engine must continue bit-identically: the
	// speculated tail's pointer movement really was revoked.
	for round := 0; round < 40; round++ {
		offerBoth(10)
		stepBoth(50)
	}
	if serial.Stats() != eng.Stats() {
		t.Errorf("stats diverge after repair:\nserial %+v\nepoch  %+v", serial.Stats(), eng.Stats())
	}
	for p := 0; p < ports; p++ {
		ss, es := serial.BufferStats(p), eng.BufferStats(p)
		ss.FastForwardedSlots, es.FastForwardedSlots = 0, 0
		if ss != es {
			t.Errorf("port %d buffer stats diverge after repair", p)
		}
	}
}

// TestEpochDivergencePoison: when one port's live state disagrees
// with the plan while other ports have already run past the boundary,
// the shards are torn — the engine must deliver the committed prefix,
// report ErrEpochDiverged, and refuse every subsequent call.
func TestEpochDivergencePoison(t *testing.T) {
	const ports = 4
	eng, err := NewEngine(Config{Ports: ports, Classes: 1, Buffer: core.Config{B: 8, Bsmall: 2, Banks: 16}, EpochSlots: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	payload := bytes.Repeat([]byte{7}, packet.CellPayload)
	for p := 0; p < ports; p++ {
		for n := 0; n < 6; n++ {
			if err := eng.Offer(p, packet.Packet{Flow: eng.r.VOQ((p+1)%ports, 0), Payload: payload}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := eng.StepBatch(8, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt port 2's published request vector: its slot-0 validation
	// now fails while the other ports execute their full plans.
	in := eng.r.inputs[2]
	for o := range in.reqVec {
		in.reqVec[o] = cell.QueueID(9999)
	}
	_, err = eng.StepBatch(8, nil)
	if !errors.Is(err, ErrEpochDiverged) {
		t.Fatalf("StepBatch on torn state = %v, want ErrEpochDiverged", err)
	}
	if _, err := eng.StepBatch(1, nil); !errors.Is(err, ErrEpochDiverged) {
		t.Errorf("StepBatch after poison = %v, want ErrEpochDiverged", err)
	}
	if _, err := eng.Step(); !errors.Is(err, ErrEpochDiverged) {
		t.Errorf("Step after poison = %v, want ErrEpochDiverged", err)
	}
	if err := eng.Offer(0, packet.Packet{Flow: 0, Payload: payload}); !errors.Is(err, ErrEpochDiverged) {
		t.Errorf("Offer after poison = %v, want ErrEpochDiverged", err)
	}
	if _, err := eng.OfferBatch(0, []packet.Packet{{Flow: 0, Payload: payload}}); !errors.Is(err, ErrEpochDiverged) {
		t.Errorf("OfferBatch after poison = %v, want ErrEpochDiverged", err)
	}
	if err := eng.Close(); err != nil {
		t.Errorf("Close on poisoned engine: %v", err)
	}
}

// TestOfferBatchPartialAccept: the batched ingress path validates the
// whole run up front — the accepted prefix lands, the rejected tail
// does not, and a bad flow mid-run stops with ErrBadFlow. Mirrors
// Offer's per-packet semantics exactly.
func TestOfferBatchPartialAccept(t *testing.T) {
	mk := func() *Engine {
		e, err := NewEngine(Config{
			Ports: 2, Classes: 1,
			Buffer:     core.Config{B: 8, Bsmall: 2, Banks: 16},
			IngressCap: 5,
		}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	pkt := func(flow cell.QueueID, cells int) packet.Packet {
		return packet.Packet{Flow: flow, Payload: bytes.Repeat([]byte{1}, cells*packet.CellPayload)}
	}

	// Capacity stop: 2+2 cells fit the 5-cell budget, the third
	// 2-cell packet does not; nothing past the stop is offered.
	e := mk()
	n, err := e.OfferBatch(0, []packet.Packet{pkt(0, 2), pkt(1, 2), pkt(0, 2), pkt(1, 1)})
	if n != 2 || !errors.Is(err, ErrIngressFull) {
		t.Errorf("capacity stop = %d, %v; want 2, ErrIngressFull", n, err)
	}
	if got := e.IngressBacklog(0); got != 4 {
		t.Errorf("backlog = %d, want 4", got)
	}
	if got := e.Stats().OfferedPackets; got != 2 {
		t.Errorf("OfferedPackets = %d, want 2", got)
	}

	// Flow stop: an out-of-range flow mid-run rejects exactly there.
	e = mk()
	n, err = e.OfferBatch(0, []packet.Packet{pkt(1, 1), pkt(99, 1), pkt(0, 1)})
	if n != 1 || !errors.Is(err, ErrBadFlow) {
		t.Errorf("flow stop = %d, %v; want 1, ErrBadFlow", n, err)
	}
	if got := e.IngressBacklog(0); got != 1 {
		t.Errorf("backlog = %d, want 1", got)
	}

	// Whole batch fits: every packet lands, no error.
	e = mk()
	n, err = e.OfferBatch(1, []packet.Packet{pkt(0, 2), pkt(1, 2), pkt(0, 1)})
	if n != 3 || err != nil {
		t.Errorf("full accept = %d, %v; want 3, nil", n, err)
	}
	if got := e.IngressBacklog(1); got != 5 {
		t.Errorf("backlog = %d, want 5", got)
	}

	// The batched path must deliver the same cells the per-packet
	// path does: drain both and compare egress.
	a, b := mk(), mk()
	ps := []packet.Packet{pkt(0, 2), pkt(1, 1), pkt(0, 2)}
	if n, err := a.OfferBatch(0, ps); n != len(ps) || err != nil {
		t.Fatalf("OfferBatch = %d, %v", n, err)
	}
	for k := range ps {
		if err := b.Offer(0, ps[k]); err != nil {
			t.Fatal(err)
		}
	}
	ea, err := a.StepBatch(200, nil)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.StepBatch(200, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ea) != len(eb) {
		t.Fatalf("egress %d vs %d", len(ea), len(eb))
	}
	for k := range ea {
		if ea[k].Output != eb[k].Output || ea[k].Input != eb[k].Input ||
			ea[k].Packet.Flow != eb[k].Packet.Flow ||
			!bytes.Equal(ea[k].Packet.Payload, eb[k].Packet.Payload) {
			t.Fatalf("egress %d diverged", k)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}
