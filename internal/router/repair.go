package router

import "fmt"

// stepEpochs is StepBatch's EpochSlots > 1 path: a sequence of
// plan → execute → commit rounds, each amortizing one barrier over up
// to K slots. Quiescence is probed at epoch boundaries (the in-epoch
// slots a lockstep engine would have fast-forwarded are ticked
// instead, which is bit-identical apart from the fast-forward
// counter); a round that cannot plan even one slot falls back to one
// exact lockstep slot so the serial reject/retry rule applies.
func (e *Engine) stepEpochs(slots int, out []Egress) ([]Egress, error) {
	r := e.r
	done := 0
	for done < slots {
		if r.Quiescent() {
			r.fastForward(uint64(slots - done))
			return out, nil
		}
		maxK := e.epochK
		if rem := slots - done; rem < maxK {
			maxK = rem
		}
		k := e.planEpoch(maxK)
		if k == 0 {
			// Ingress is waiting on a port whose tail-SRAM budget is
			// exhausted: no arrival can be guaranteed, so run one
			// lockstep slot — the buffer itself decides between admit
			// and reject/retry — and re-plan from whatever it did.
			e.estats.SerialFallbackSlots++
			var err error
			out, err = e.stepSlot(out)
			if err != nil {
				return out, fmt.Errorf("slot %d of batch: %w", done, err)
			}
			done++
			continue
		}
		e.estats.Epochs++
		e.estats.PlannedSlots += uint64(k)
		if k < maxK {
			e.estats.HorizonTruncations++
		}
		e.executeEpoch()
		var commit, errSlot int
		var err error
		out, commit, errSlot, err = e.commitEpoch(out)
		if err != nil {
			return out, fmt.Errorf("slot %d of batch: %w", done+errSlot, err)
		}
		done += commit
	}
	return out, nil
}

// commitEpoch repairs and retires an executed epoch. The committed
// prefix is the earliest divergence across ports (the whole plan when
// none diverged — every healthy run): its deliveries are collected in
// slot-major, input-port order, exactly the order lockstep slots
// would have produced. A truncated plan rolls the scheduler state
// (grant/accept pointers, match counter) back to the per-slot
// snapshot at the commit point, so the next round re-plans from
// committed state as if the speculated tail had never been scheduled.
//
// If some port executed past the commit point the shards are torn —
// those ticks consumed state under a matching the truncation just
// revoked and cannot be undone — so the engine poisons itself with
// ErrEpochDiverged after delivering the valid prefix. This is
// reachable only after a buffer invariant violation (the same regime
// where the lockstep engine returns per-port invariant errors); the
// bounded-lag design guarantees divergence-freedom, it does not
// repair corrupted buffers.
//
// Returns the egress, the committed slot count, the batch-relative
// slot of the returned error within this epoch, and the first error
// in slot-major port order.
func (e *Engine) commitEpoch(out []Egress) ([]Egress, int, int, error) {
	r := e.r
	p := e.plan
	P := r.cfg.Ports
	commit := p.k
	for i := 0; i < P; i++ {
		if d := int(e.div[i]); d < commit {
			commit = d
		}
	}
	torn := false
	for i := 0; i < P; i++ {
		if int(e.div[i]) > commit {
			torn = true
			break
		}
	}
	if commit < p.k {
		e.estats.Divergences++
		// Roll the scheduler back to the commit point: the speculated
		// tail's grants never happened.
		if commit == 0 {
			copy(r.grant, p.grantBase)
			copy(r.accept, p.acceptBase)
			r.stats.Matches = p.matchesBase
		} else {
			off := (commit - 1) * P
			copy(r.grant, p.grant[off:off+P])
			copy(r.accept, p.accept[off:off+P])
			r.stats.Matches = p.matches[commit-1]
		}
	}
	var firstErr error
	errSlot := 0
	for s := 0; s < commit; s++ {
		for i := 0; i < P; i++ {
			var err error
			out, err = r.collect(i, e.epDeliv[s*P+i], out)
			if err != nil && firstErr == nil {
				firstErr, errSlot = err, s
			}
		}
		r.stats.Slots++
	}
	e.estats.CommittedSlots += uint64(commit)
	if torn || commit == 0 {
		e.poisoned = fmt.Errorf("%w: committed %d of %d planned slots", ErrEpochDiverged, commit, p.k)
		if firstErr == nil {
			firstErr, errSlot = e.poisoned, commit
		}
	}
	return out, commit, errSlot, firstErr
}
