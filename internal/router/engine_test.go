package router

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
)

// slotRecord is a comparable snapshot of one slot's egress (payloads
// copied, since Egress payloads alias reassembler scratch).
type slotRecord struct {
	output, input int
	flow          int
	payload       []byte
}

// TestEngineMatchesSerialRouter pins the tentpole determinism claim:
// the sharded engine's egress stream, stats and buffer verdicts are
// bit-identical to the serial Router.Step path on the same offered
// workload, for every worker striping.
func TestEngineMatchesSerialRouter(t *testing.T) {
	const ports, classes, slots = 4, 2, 8000
	bufCfg := core.Config{B: 8, Bsmall: 2, Banks: 16}
	for _, workers := range []int{0, 2, 3} {
		serial, err := New(Config{Ports: ports, Classes: classes, Buffer: bufCfg, SchedulerIterations: 2})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(Config{Ports: ports, Classes: classes, Buffer: bufCfg, SchedulerIterations: 2}, workers)
		if err != nil {
			t.Fatal(err)
		}
		rngA := rand.New(rand.NewSource(42))
		rngB := rand.New(rand.NewSource(42))
		for slot := 0; slot < slots; slot++ {
			a := driveWorkload(t, rngA, serial.Offer, serial.Step, serial, ports, classes)
			b := driveWorkload(t, rngB, eng.Offer, eng.Step, serial, ports, classes)
			if len(a) != len(b) {
				t.Fatalf("workers=%d slot %d: serial %d egress, sharded %d", workers, slot, len(a), len(b))
			}
			for k := range a {
				if a[k].output != b[k].output || a[k].input != b[k].input ||
					a[k].flow != b[k].flow || !bytes.Equal(a[k].payload, b[k].payload) {
					t.Fatalf("workers=%d slot %d egress %d: serial %+v, sharded %+v",
						workers, slot, k, a[k], b[k])
				}
			}
		}
		if serial.Stats() != eng.Stats() {
			t.Errorf("workers=%d: stats diverged: serial %+v, sharded %+v", workers, serial.Stats(), eng.Stats())
		}
		for p := 0; p < ports; p++ {
			if serial.BufferStats(p) != eng.BufferStats(p) {
				t.Errorf("workers=%d port %d: buffer stats diverged", workers, p)
			}
			if !eng.BufferStats(p).Clean() {
				t.Errorf("workers=%d port %d: buffer not clean: %+v", workers, p, eng.BufferStats(p))
			}
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// driveWorkload offers a seeded slot workload and steps once; rv maps
// VOQ ids through the serial router so both sides use one mapping.
func driveWorkload(t *testing.T, rng *rand.Rand, offer func(int, packet.Packet) error,
	step func() ([]Egress, error), rv *Router, ports, classes int) []slotRecord {
	t.Helper()
	if rng.Intn(3) == 0 {
		in := rng.Intn(ports)
		out := rng.Intn(ports)
		class := rng.Intn(classes)
		payload := make([]byte, rng.Intn(4*packet.CellPayload))
		rng.Read(payload)
		err := offer(in, packet.Packet{Flow: rv.VOQ(out, class), Payload: payload})
		if err != nil && !errors.Is(err, ErrIngressFull) {
			t.Fatal(err)
		}
	}
	eg, err := step()
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]slotRecord, 0, len(eg))
	for _, e := range eg {
		recs = append(recs, slotRecord{
			output: e.Output, input: e.Input, flow: int(e.Packet.Flow),
			payload: append([]byte(nil), e.Packet.Payload...),
		})
	}
	return recs
}

// TestEngineStepBatch: StepBatch(slots) is slot-for-slot identical to
// repeated Step, and appends into the caller's slice.
func TestEngineStepBatch(t *testing.T) {
	bufCfg := core.Config{B: 8, Bsmall: 2, Banks: 16}
	a, err := NewEngine(Config{Ports: 2, Classes: 1, Buffer: bufCfg}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(Config{Ports: 2, Classes: 1, Buffer: bufCfg}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	payload := bytes.Repeat([]byte{3}, 2*packet.CellPayload)
	for port := 0; port < 2; port++ {
		for k := 0; k < 5; k++ {
			if err := a.Offer(port, packet.Packet{Flow: a.Router().VOQ(1-port, 0), Payload: payload}); err != nil {
				t.Fatal(err)
			}
			if err := b.Offer(port, packet.Packet{Flow: b.Router().VOQ(1-port, 0), Payload: payload}); err != nil {
				t.Fatal(err)
			}
		}
	}
	const slots = 3000
	var fromStep []Egress
	for s := 0; s < slots; s++ {
		eg, err := a.Step()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range eg {
			e.Packet.Payload = append([]byte(nil), e.Packet.Payload...)
			fromStep = append(fromStep, e)
		}
	}
	fromBatch, err := b.StepBatch(slots, make([]Egress, 0, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromStep) != len(fromBatch) {
		t.Fatalf("step delivered %d, batch %d", len(fromStep), len(fromBatch))
	}
	for k := range fromStep {
		if fromStep[k].Output != fromBatch[k].Output || fromStep[k].Input != fromBatch[k].Input ||
			!bytes.Equal(fromStep[k].Packet.Payload, fromBatch[k].Packet.Payload) {
			t.Fatalf("egress %d diverged", k)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestEngineOfferBatch: partial acceptance stops at ErrIngressFull.
func TestEngineOfferBatch(t *testing.T) {
	e, err := NewEngine(Config{
		Ports: 2, Classes: 1,
		Buffer:     core.Config{B: 8, Bsmall: 2, Banks: 16},
		IngressCap: 4,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]packet.Packet, 3)
	for k := range ps {
		ps[k] = packet.Packet{Flow: 0, Payload: bytes.Repeat([]byte{1}, 2*packet.CellPayload)}
	}
	n, err := e.OfferBatch(0, ps)
	if n != 2 || !errors.Is(err, ErrIngressFull) {
		t.Errorf("OfferBatch = %d, %v; want 2, ErrIngressFull", n, err)
	}
	if got := e.IngressBacklog(0); got != 4 {
		t.Errorf("backlog = %d", got)
	}
	if n, err := e.OfferBatch(5, ps); n != 0 || !errors.Is(err, ErrBadPort) {
		t.Errorf("OfferBatch bad port = %d, %v", n, err)
	}
}

// TestEngineClose: a closed engine rejects further use and Close is
// idempotent.
func TestEngineClose(t *testing.T) {
	e, err := NewEngine(Config{Ports: 2, Classes: 1, Buffer: core.Config{B: 8, Bsmall: 2, Banks: 16}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); !errors.Is(err, ErrClosed) {
		t.Errorf("Step after Close: %v", err)
	}
	if err := e.Offer(0, packet.Packet{Flow: 0}); !errors.Is(err, ErrClosed) {
		t.Errorf("Offer after Close: %v", err)
	}
	if _, err := e.OfferBatch(0, []packet.Packet{{Flow: 0}}); !errors.Is(err, ErrClosed) {
		t.Errorf("OfferBatch after Close: %v", err)
	}
}

// TestConfigErrorsWrapBadConfig: router config rejections fold into
// the core typed taxonomy.
func TestConfigErrorsWrapBadConfig(t *testing.T) {
	cases := []Config{
		{Ports: 0},
		{Ports: -3},
		{Ports: 2, Classes: -1},
		{Ports: 2, Buffer: core.Config{B: 8, Bsmall: 3, Banks: 16}}, // b does not divide B
	}
	for i, cfg := range cases {
		if _, err := New(cfg); !errors.Is(err, core.ErrBadConfig) {
			t.Errorf("case %d: New err = %v, want ErrBadConfig", i, err)
		}
		if _, err := NewEngine(cfg, 0); !errors.Is(err, core.ErrBadConfig) {
			t.Errorf("case %d: NewEngine err = %v, want ErrBadConfig", i, err)
		}
	}
}

// TestEngineZeroAllocSteadyState: once rings and reassembly buffers
// are warm, the serial engine's slot loop allocates nothing — on the
// lockstep path and on the epoch plan/execute/commit path alike. (The
// sharded path is asserted by BenchmarkRouterParallel's ReportAllocs.)
func TestEngineZeroAllocSteadyState(t *testing.T) {
	for _, epoch := range []int{1, 16} {
		t.Run(fmt.Sprintf("epoch=%d", epoch), func(t *testing.T) {
			e, err := NewEngine(Config{
				Ports: 4, Classes: 2,
				Buffer:     core.Config{B: 8, Bsmall: 2, Banks: 64},
				EpochSlots: epoch,
			}, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Deterministic sub-saturation workload (one 6-cell packet
			// per 5 slots, destinations round-robin) so every ring and
			// buffer occupancy plateaus during warmup.
			payload := make([]byte, 300)
			out := make([]Egress, 0, 256)
			slot := 0
			drive := func(slots int) {
				for s := 0; s < slots; s, slot = s+5, slot+5 {
					k := slot / 5
					_ = e.Offer(k%4, packet.Packet{
						Flow:    e.Router().VOQ((k/4)%4, k%2),
						Payload: payload,
					})
					var err error
					out, err = e.StepBatch(5, out[:0])
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			drive(8000) // warm every ring, arena and reassembly buffer
			if allocs := testing.AllocsPerRun(10, func() { drive(100) }); allocs != 0 {
				t.Errorf("steady-state engine slots allocated %.2f per 100-slot run", allocs)
			}
			if epoch > 1 {
				es := e.EpochStats()
				if es.Epochs == 0 {
					t.Fatal("epoch path never ran")
				}
				if es.Divergences != 0 {
					t.Errorf("epoch execution diverged %d times", es.Divergences)
				}
			}
		})
	}
}

// TestEngineFastForwardMatchesSerial pins the lockstep fast-forward:
// a StepBatch whose traffic drains mid-batch must skip the quiescent
// tail and still be bit-identical to the serial router stepping every
// slot — same egress, same router stats, same per-port buffer stats
// (skipped-slot counters aside) — and it must actually have skipped.
// The batch side runs both serially and fully sharded, so the race
// detector sees the coordinator's fastForward interleaved with live
// port workers.
func TestEngineFastForwardMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			testEngineFastForward(t, workers, 1)
		})
	}
}

// TestEpochFastForwardMatchesSerial is the epoch-boundary
// Quiescent/StepBatch interaction: with EpochSlots > 1 quiescence is
// probed between epochs, the drain lands mid-epoch (the planner ticks
// the idle tail of its window), and the quiescent remainder of each
// batch must still fast-forward — bit-identical to per-slot stepping
// apart from the fast-forward counter, and it must actually skip.
func TestEpochFastForwardMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			testEngineFastForward(t, workers, 16)
		})
	}
}

func testEngineFastForward(t *testing.T, batchWorkers, epochSlots int) {
	const ports, classes, slots = 4, 2, 20000
	bufCfg := core.Config{B: 8, Bsmall: 2, Banks: 16}
	mk := func(workers, epoch int) (*Engine, error) {
		return NewEngine(Config{Ports: ports, Classes: classes, Buffer: bufCfg, SchedulerIterations: 2, EpochSlots: epoch}, workers)
	}
	serialEng, err := mk(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	batchEng, err := mk(batchWorkers, epochSlots)
	if err != nil {
		t.Fatal(err)
	}
	defer batchEng.Close()
	rng := rand.New(rand.NewSource(9))
	offerBoth := func() {
		in, out, class := rng.Intn(ports), rng.Intn(ports), rng.Intn(classes)
		payload := make([]byte, 1+rng.Intn(3*packet.CellPayload))
		rng.Read(payload)
		for _, e := range []*Engine{serialEng, batchEng} {
			if err := e.Offer(in, packet.Packet{Flow: e.Router().VOQ(out, class), Payload: payload}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Several bursts with long quiescent tails between them.
	var serialOut, batchOut []slotRecord
	record := func(eg []Egress, dst *[]slotRecord) {
		for _, e := range eg {
			*dst = append(*dst, slotRecord{
				output: e.Output, input: e.Input, flow: int(e.Packet.Flow),
				payload: append([]byte(nil), e.Packet.Payload...),
			})
		}
	}
	for burst := 0; burst < 4; burst++ {
		for k := 0; k < 12; k++ {
			offerBoth()
		}
		for s := 0; s < slots/4; s++ {
			eg, err := serialEng.Step()
			if err != nil {
				t.Fatal(err)
			}
			record(eg, &serialOut)
		}
		eg, err := batchEng.StepBatch(slots/4, nil)
		if err != nil {
			t.Fatal(err)
		}
		record(eg, &batchOut)
	}
	if len(serialOut) != len(batchOut) {
		t.Fatalf("egress diverges: serial %d packets, batch %d", len(serialOut), len(batchOut))
	}
	for k := range serialOut {
		a, b := serialOut[k], batchOut[k]
		if a.output != b.output || a.input != b.input || a.flow != b.flow || !bytes.Equal(a.payload, b.payload) {
			t.Fatalf("egress %d diverges: %+v vs %+v", k, a, b)
		}
	}
	if serialEng.Stats() != batchEng.Stats() {
		t.Errorf("router stats diverge:\nserial %+v\nbatch  %+v", serialEng.Stats(), batchEng.Stats())
	}
	skipped := uint64(0)
	for p := 0; p < ports; p++ {
		ss, bs := serialEng.BufferStats(p), batchEng.BufferStats(p)
		skipped += bs.FastForwardedSlots
		ss.FastForwardedSlots, bs.FastForwardedSlots = 0, 0
		if ss != bs {
			t.Errorf("port %d buffer stats diverge:\nserial %+v\nbatch  %+v", p, ss, bs)
		}
		if !bs.Clean() {
			t.Errorf("port %d not clean: %+v", p, bs)
		}
	}
	if skipped == 0 {
		t.Error("batch engine never fast-forwarded: the differential exercised nothing")
	}
	if !batchEng.Quiescent() || !serialEng.Quiescent() {
		t.Error("engines not quiescent after drain")
	}
	if es := batchEng.EpochStats(); es.Divergences != 0 {
		t.Errorf("epoch execution diverged %d times; predictions must be exact", es.Divergences)
	}
}
