// Package sim provides workload generators and a slot-loop runner for
// the packet buffer. The generators model the traffic classes the
// paper's worst-case analysis must survive — most importantly the §3
// adversarial round-robin drain ("the scheduler requests goes through
// the queues in a round-robin manner removing one packet per queue"),
// plus uniform, bursty on/off, hotspot and single-queue patterns for
// the average case.
//
// Arrival processes and request policies are deterministic given their
// seed, so every experiment is reproducible.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/cell"
)

// View is the read-only buffer state a request policy may consult.
// Requesting a queue with zero Requestable cells is forbidden by the
// system model (§2), so every policy filters through this view.
type View interface {
	// Requestable returns how many cells of q may still be requested.
	Requestable(q cell.QueueID) int
	// Len returns the number of cells of q in the buffer.
	Len(q cell.QueueID) int
}

// ArrivalProcess produces at most one arriving cell per slot.
type ArrivalProcess interface {
	// Next returns the queue of the cell arriving at slot, or
	// cell.NoQueue for an idle slot.
	Next(slot cell.Slot) cell.QueueID
}

// BatchArrivalProcess is the optional fast path Runner.RunBatch uses
// to hoist the per-slot interface dispatch out of the inner loop: one
// NextBatch call generates the arrivals for len(out) consecutive
// slots starting at start. Implementations must be equivalent to
// calling Next once per slot in order.
type BatchArrivalProcess interface {
	ArrivalProcess
	NextBatch(start cell.Slot, out []cell.QueueID)
}

// RequestPolicy produces at most one scheduler request per slot.
type RequestPolicy interface {
	// Next returns the queue to request at slot, or cell.NoQueue. The
	// returned queue must have Requestable > 0.
	Next(slot cell.Slot, v View) cell.QueueID
}

// ---------------------------------------------------------------- arrivals

// uniformArrivals sends Bernoulli(load) arrivals to uniformly random
// queues.
type uniformArrivals struct {
	q    int
	load float64
	rng  *rand.Rand
}

// NewUniformArrivals returns an arrival process with the given offered
// load (cells per slot, 0..1) spread uniformly over q queues.
func NewUniformArrivals(q int, load float64, seed int64) (ArrivalProcess, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("sim: load must be in [0,1], got %v", load)
	}
	return &uniformArrivals{q: q, load: load, rng: rand.New(rand.NewSource(seed))}, nil
}

func (u *uniformArrivals) Next(cell.Slot) cell.QueueID {
	if u.rng.Float64() >= u.load {
		return cell.NoQueue
	}
	return cell.QueueID(u.rng.Intn(u.q))
}

// NextBatch implements BatchArrivalProcess.
func (u *uniformArrivals) NextBatch(start cell.Slot, out []cell.QueueID) {
	for i := range out {
		out[i] = u.Next(start + cell.Slot(i))
	}
}

// roundRobinArrivals cycles deterministically over the queues at the
// given load (every k-th slot idles to shape the rate).
type roundRobinArrivals struct {
	q    int
	load float64
	next int
	acc  float64
}

// NewRoundRobinArrivals returns a deterministic round-robin arrival
// process at the given load.
func NewRoundRobinArrivals(q int, load float64) (ArrivalProcess, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("sim: load must be in [0,1], got %v", load)
	}
	return &roundRobinArrivals{q: q, load: load}, nil
}

func (r *roundRobinArrivals) Next(cell.Slot) cell.QueueID {
	r.acc += r.load
	if r.acc < 1 {
		return cell.NoQueue
	}
	r.acc -= 1
	q := cell.QueueID(r.next)
	r.next = (r.next + 1) % r.q
	return q
}

// NextBatch implements BatchArrivalProcess.
func (r *roundRobinArrivals) NextBatch(start cell.Slot, out []cell.QueueID) {
	for i := range out {
		out[i] = r.Next(start + cell.Slot(i))
	}
}

// hotspotArrivals sends hotFrac of the traffic to queue 0 and spreads
// the rest uniformly.
type hotspotArrivals struct {
	q       int
	load    float64
	hotFrac float64
	rng     *rand.Rand
}

// NewHotspotArrivals returns a skewed arrival process: fraction
// hotFrac of cells target queue 0.
func NewHotspotArrivals(q int, load, hotFrac float64, seed int64) (ArrivalProcess, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	if load < 0 || load > 1 || hotFrac < 0 || hotFrac > 1 {
		return nil, fmt.Errorf("sim: load/hotFrac must be in [0,1]")
	}
	return &hotspotArrivals{q: q, load: load, hotFrac: hotFrac, rng: rand.New(rand.NewSource(seed))}, nil
}

func (h *hotspotArrivals) Next(cell.Slot) cell.QueueID {
	if h.rng.Float64() >= h.load {
		return cell.NoQueue
	}
	if h.rng.Float64() < h.hotFrac || h.q == 1 {
		return 0
	}
	return cell.QueueID(1 + h.rng.Intn(h.q-1))
}

// burstyArrivals is a two-state (on/off) Markov-modulated process: in
// the on state cells arrive back-to-back to one queue; bursts switch
// queues.
type burstyArrivals struct {
	q         int
	meanOn    float64
	meanOff   float64
	rng       *rand.Rand
	on        bool
	current   cell.QueueID
	remaining int
}

// NewBurstyArrivals returns an on/off burst process with geometric
// burst and gap lengths (means meanOn and meanOff slots). The offered
// load is meanOn/(meanOn+meanOff).
func NewBurstyArrivals(q int, meanOn, meanOff float64, seed int64) (ArrivalProcess, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	if meanOn < 1 || meanOff < 0 {
		return nil, fmt.Errorf("sim: meanOn must be ≥1 and meanOff ≥0")
	}
	return &burstyArrivals{q: q, meanOn: meanOn, meanOff: meanOff, rng: rand.New(rand.NewSource(seed))}, nil
}

func (b *burstyArrivals) geometric(mean float64) int {
	if mean <= 0 {
		return 0
	}
	n := 1
	for b.rng.Float64() < (mean-1)/mean {
		n++
	}
	return n
}

func (b *burstyArrivals) Next(cell.Slot) cell.QueueID {
	for b.remaining == 0 {
		b.on = !b.on
		if b.on {
			b.current = cell.QueueID(b.rng.Intn(b.q))
			b.remaining = b.geometric(b.meanOn)
		} else {
			b.remaining = b.geometric(b.meanOff)
		}
	}
	b.remaining--
	if !b.on {
		return cell.NoQueue
	}
	return b.current
}

// singleQueueArrivals floods one queue at full rate.
type singleQueueArrivals struct{ q cell.QueueID }

// NewSingleQueueArrivals floods queue q with one cell per slot.
func NewSingleQueueArrivals(q cell.QueueID) ArrivalProcess {
	return singleQueueArrivals{q: q}
}

func (s singleQueueArrivals) Next(cell.Slot) cell.QueueID { return s.q }

// NextBatch implements BatchArrivalProcess.
func (s singleQueueArrivals) NextBatch(_ cell.Slot, out []cell.QueueID) {
	for i := range out {
		out[i] = s.q
	}
}

// ---------------------------------------------------------------- requests

// roundRobinDrain is the paper's adversarial pattern: one cell per
// queue, cycling, skipping queues with nothing requestable.
type roundRobinDrain struct {
	q    int
	next int
}

// NewRoundRobinDrain returns the §3 adversarial request policy.
func NewRoundRobinDrain(q int) (RequestPolicy, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	return &roundRobinDrain{q: q}, nil
}

func (r *roundRobinDrain) Next(_ cell.Slot, v View) cell.QueueID {
	for i := 0; i < r.q; i++ {
		q := cell.QueueID((r.next + i) % r.q)
		if v.Requestable(q) > 0 {
			r.next = (int(q) + 1) % r.q
			return q
		}
	}
	return cell.NoQueue
}

// uniformRequests requests uniformly random non-empty queues at the
// given rate.
type uniformRequests struct {
	q    int
	rate float64
	rng  *rand.Rand
}

// NewUniformRequests returns a random request policy issuing requests
// at the given rate.
func NewUniformRequests(q int, rate float64, seed int64) (RequestPolicy, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("sim: rate must be in [0,1], got %v", rate)
	}
	return &uniformRequests{q: q, rate: rate, rng: rand.New(rand.NewSource(seed))}, nil
}

func (u *uniformRequests) Next(_ cell.Slot, v View) cell.QueueID {
	if u.rng.Float64() >= u.rate {
		return cell.NoQueue
	}
	// Try a few random probes, then fall back to a scan.
	for i := 0; i < 4; i++ {
		q := cell.QueueID(u.rng.Intn(u.q))
		if v.Requestable(q) > 0 {
			return q
		}
	}
	start := u.rng.Intn(u.q)
	for i := 0; i < u.q; i++ {
		q := cell.QueueID((start + i) % u.q)
		if v.Requestable(q) > 0 {
			return q
		}
	}
	return cell.NoQueue
}

// longestFirst always drains the longest queue — the opposite extreme
// of round-robin.
type longestFirst struct{ q int }

// NewLongestFirst returns a policy that requests the queue with the
// most requestable cells.
func NewLongestFirst(q int) (RequestPolicy, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	return &longestFirst{q: q}, nil
}

func (l *longestFirst) Next(_ cell.Slot, v View) cell.QueueID {
	best, bestN := cell.NoQueue, 0
	for q := 0; q < l.q; q++ {
		if n := v.Requestable(cell.QueueID(q)); n > bestN {
			best, bestN = cell.QueueID(q), n
		}
	}
	return best
}

// permutationDrain walks a fixed permutation, one cell per visit — a
// rotated variant of the adversarial pattern.
type permutationDrain struct {
	perm []cell.QueueID
	pos  int
}

// NewPermutationDrain cycles over the given queue permutation.
func NewPermutationDrain(perm []cell.QueueID) (RequestPolicy, error) {
	if len(perm) == 0 {
		return nil, fmt.Errorf("sim: permutation must be non-empty")
	}
	p := make([]cell.QueueID, len(perm))
	copy(p, perm)
	return &permutationDrain{perm: p}, nil
}

func (p *permutationDrain) Next(_ cell.Slot, v View) cell.QueueID {
	for i := 0; i < len(p.perm); i++ {
		q := p.perm[(p.pos+i)%len(p.perm)]
		if v.Requestable(q) > 0 {
			p.pos = (p.pos + i + 1) % len(p.perm)
			return q
		}
	}
	return cell.NoQueue
}

// idleRequests never requests (fill-only phases).
type idleRequests struct{}

// NewIdleRequests returns a policy that never issues requests.
func NewIdleRequests() RequestPolicy { return idleRequests{} }

func (idleRequests) Next(cell.Slot, View) cell.QueueID { return cell.NoQueue }
