// Package sim provides workload generators and a slot-loop runner for
// the packet buffer. The generators model the traffic classes the
// paper's worst-case analysis must survive — most importantly the §3
// adversarial round-robin drain ("the scheduler requests goes through
// the queues in a round-robin manner removing one packet per queue"),
// plus uniform, bursty on/off, hotspot and single-queue patterns for
// the average case.
//
// Arrival processes and request policies are deterministic given their
// seed, so every experiment is reproducible.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cell"
)

// View is the read-only buffer state a request policy may consult.
// Requesting a queue with zero Requestable cells is forbidden by the
// system model (§2), so every policy filters through this view.
type View interface {
	// Requestable returns how many cells of q may still be requested.
	Requestable(q cell.QueueID) int
	// Len returns the number of cells of q in the buffer.
	Len(q cell.QueueID) int
}

// ArrivalProcess produces at most one arriving cell per slot.
type ArrivalProcess interface {
	// Next returns the queue of the cell arriving at slot, or
	// cell.NoQueue for an idle slot.
	Next(slot cell.Slot) cell.QueueID
}

// BatchArrivalProcess is the optional fast path Runner.RunBatch uses
// to hoist the per-slot interface dispatch out of the inner loop: one
// NextBatch call generates the arrivals for len(out) consecutive
// slots starting at start. Implementations must be equivalent to
// calling Next once per slot in order.
type BatchArrivalProcess interface {
	ArrivalProcess
	NextBatch(start cell.Slot, out []cell.QueueID)
}

// SparseArrivalProcess is the optional fast path the Runner uses to
// fast-forward idle spans: NextArrival advances the process past the
// idle gap starting at slot from and returns the slot of its next
// arrival, exactly as if Next had been called once per slot in
// [from, returned) with every call returning cell.NoQueue. If the
// next arrival falls at or beyond limit the process advances only
// through limit-1 and returns limit. A process whose gap lengths are
// drawn directly (geometric Bernoulli, on/off burst counters) answers
// in O(1), so a load-ρ source costs O(ρ·slots) instead of O(slots).
type SparseArrivalProcess interface {
	ArrivalProcess
	NextArrival(from, limit cell.Slot) cell.Slot
}

// RequestPolicy produces at most one scheduler request per slot.
type RequestPolicy interface {
	// Next returns the queue to request at slot, or cell.NoQueue. The
	// returned queue must have Requestable > 0.
	Next(slot cell.Slot, v View) cell.QueueID
}

// StableRequestPolicy marks policies the Runner may elide while
// fast-forwarding: Next ignores its slot argument, consumes no
// per-slot state (no RNG draw per call), and a call that returns
// cell.NoQueue leaves the policy unchanged — so if it returns NoQueue
// once it keeps returning NoQueue until the buffer view changes. All
// deterministic policies in this package implement it; the rate-based
// random policy does not (it draws from its RNG every slot).
type StableRequestPolicy interface {
	RequestPolicy
	// IdleStable reports that the contract above holds.
	IdleStable() bool
}

// ---------------------------------------------------------------- arrivals

// uniformArrivals sends Bernoulli(load) arrivals to uniformly random
// queues.
type uniformArrivals struct {
	q    int
	load float64
	rng  *rand.Rand
}

// NewUniformArrivals returns an arrival process with the given offered
// load (cells per slot, 0..1) spread uniformly over q queues.
func NewUniformArrivals(q int, load float64, seed int64) (ArrivalProcess, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("sim: load must be in [0,1], got %v", load)
	}
	return &uniformArrivals{q: q, load: load, rng: rand.New(rand.NewSource(seed))}, nil
}

func (u *uniformArrivals) Next(cell.Slot) cell.QueueID {
	if u.rng.Float64() >= u.load {
		return cell.NoQueue
	}
	return cell.QueueID(u.rng.Intn(u.q))
}

// NextBatch implements BatchArrivalProcess.
func (u *uniformArrivals) NextBatch(start cell.Slot, out []cell.QueueID) {
	for i := range out {
		out[i] = u.Next(start + cell.Slot(i))
	}
}

// bernoulliArrivals is a Bernoulli(load) process over uniformly random
// queues that draws the geometric inter-arrival gaps directly (one RNG
// draw per arrival, not per slot) and tracks the next arrival as an
// absolute slot. Idle Next calls are therefore pure probes, which is
// what makes the O(1) NextArrival jump exact.
type bernoulliArrivals struct {
	q    int
	load float64
	rng  *rand.Rand
	next cell.Slot
	init bool
}

// noArrival is the "never" sentinel for bernoulliArrivals.next.
const noArrival = ^cell.Slot(0)

// NewBernoulliArrivals returns a sparse Bernoulli arrival process with
// the given offered load (cells per slot, 0..1) spread uniformly over
// q queues. Its per-slot marginal matches NewUniformArrivals, but the
// RNG is consumed per arrival rather than per slot, so it implements
// SparseArrivalProcess and idle spans cost nothing to generate.
func NewBernoulliArrivals(q int, load float64, seed int64) (ArrivalProcess, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("sim: load must be in [0,1], got %v", load)
	}
	return &bernoulliArrivals{q: q, load: load, rng: rand.New(rand.NewSource(seed))}, nil
}

// gap draws one geometric inter-arrival gap (≥ 1 slot).
func (a *bernoulliArrivals) gap() cell.Slot {
	if a.load >= 1 {
		return 1
	}
	// Inverse-CDF geometric: P(gap = k) = ρ(1−ρ)^(k−1).
	return 1 + cell.Slot(math.Log(1-a.rng.Float64())/math.Log(1-a.load))
}

// ensure lazily anchors the first arrival at the first polled slot.
func (a *bernoulliArrivals) ensure(slot cell.Slot) {
	if a.init {
		return
	}
	a.init = true
	if a.load <= 0 {
		a.next = noArrival
		return
	}
	a.next = slot + a.gap() - 1
}

func (a *bernoulliArrivals) Next(slot cell.Slot) cell.QueueID {
	a.ensure(slot)
	if slot < a.next {
		return cell.NoQueue
	}
	q := cell.QueueID(a.rng.Intn(a.q))
	a.next = slot + a.gap()
	return q
}

// NextBatch implements BatchArrivalProcess: idle slots are filled by
// comparison only, no RNG traffic.
func (a *bernoulliArrivals) NextBatch(start cell.Slot, out []cell.QueueID) {
	a.ensure(start)
	for i := range out {
		slot := start + cell.Slot(i)
		if slot < a.next {
			out[i] = cell.NoQueue
			continue
		}
		out[i] = a.Next(slot)
	}
}

// NextArrival implements SparseArrivalProcess. Idle probes do not
// mutate the process, so the jump is a pure min(next, limit).
func (a *bernoulliArrivals) NextArrival(from, limit cell.Slot) cell.Slot {
	a.ensure(from)
	t := a.next
	if t < from {
		t = from
	}
	if t > limit {
		t = limit
	}
	return t
}

// roundRobinArrivals cycles deterministically over the queues at the
// given load (every k-th slot idles to shape the rate).
type roundRobinArrivals struct {
	q    int
	load float64
	next int
	acc  float64
}

// NewRoundRobinArrivals returns a deterministic round-robin arrival
// process at the given load.
func NewRoundRobinArrivals(q int, load float64) (ArrivalProcess, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("sim: load must be in [0,1], got %v", load)
	}
	return &roundRobinArrivals{q: q, load: load}, nil
}

func (r *roundRobinArrivals) Next(cell.Slot) cell.QueueID {
	r.acc += r.load
	if r.acc < 1 {
		return cell.NoQueue
	}
	r.acc -= 1
	q := cell.QueueID(r.next)
	r.next = (r.next + 1) % r.q
	return q
}

// NextBatch implements BatchArrivalProcess.
func (r *roundRobinArrivals) NextBatch(start cell.Slot, out []cell.QueueID) {
	for i := range out {
		out[i] = r.Next(start + cell.Slot(i))
	}
}

// hotspotArrivals sends hotFrac of the traffic to queue 0 and spreads
// the rest uniformly.
type hotspotArrivals struct {
	q       int
	load    float64
	hotFrac float64
	rng     *rand.Rand
}

// NewHotspotArrivals returns a skewed arrival process: fraction
// hotFrac of cells target queue 0.
func NewHotspotArrivals(q int, load, hotFrac float64, seed int64) (ArrivalProcess, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	if load < 0 || load > 1 || hotFrac < 0 || hotFrac > 1 {
		return nil, fmt.Errorf("sim: load/hotFrac must be in [0,1]")
	}
	return &hotspotArrivals{q: q, load: load, hotFrac: hotFrac, rng: rand.New(rand.NewSource(seed))}, nil
}

func (h *hotspotArrivals) Next(cell.Slot) cell.QueueID {
	if h.rng.Float64() >= h.load {
		return cell.NoQueue
	}
	if h.rng.Float64() < h.hotFrac || h.q == 1 {
		return 0
	}
	return cell.QueueID(1 + h.rng.Intn(h.q-1))
}

// burstyArrivals is a two-state (on/off) Markov-modulated process: in
// the on state cells arrive back-to-back to one queue; bursts switch
// queues.
type burstyArrivals struct {
	q         int
	meanOn    float64
	meanOff   float64
	rng       *rand.Rand
	on        bool
	current   cell.QueueID
	remaining int
}

// NewBurstyArrivals returns an on/off burst process with geometric
// burst and gap lengths (means meanOn and meanOff slots). The offered
// load is meanOn/(meanOn+meanOff).
func NewBurstyArrivals(q int, meanOn, meanOff float64, seed int64) (ArrivalProcess, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	if meanOn < 1 || meanOff < 0 {
		return nil, fmt.Errorf("sim: meanOn must be ≥1 and meanOff ≥0")
	}
	return &burstyArrivals{q: q, meanOn: meanOn, meanOff: meanOff, rng: rand.New(rand.NewSource(seed))}, nil
}

func (b *burstyArrivals) geometric(mean float64) int {
	if mean <= 0 {
		return 0
	}
	n := 1
	for b.rng.Float64() < (mean-1)/mean {
		n++
	}
	return n
}

func (b *burstyArrivals) Next(cell.Slot) cell.QueueID {
	for b.remaining == 0 {
		b.toggle()
	}
	b.remaining--
	if !b.on {
		return cell.NoQueue
	}
	return b.current
}

func (b *burstyArrivals) toggle() {
	b.on = !b.on
	if b.on {
		b.current = cell.QueueID(b.rng.Intn(b.q))
		b.remaining = b.geometric(b.meanOn)
	} else {
		b.remaining = b.geometric(b.meanOff)
	}
}

// NextArrival implements SparseArrivalProcess: off-period slots are
// consumed by bulk-decrementing the remaining-gap counter, with the
// same RNG consumption per state toggle as per-slot Next calls.
func (b *burstyArrivals) NextArrival(from, limit cell.Slot) cell.Slot {
	for from < limit {
		for b.remaining == 0 {
			b.toggle()
		}
		if b.on {
			return from
		}
		k := cell.Slot(b.remaining)
		if k > limit-from {
			k = limit - from
		}
		b.remaining -= int(k)
		from += k
	}
	return limit
}

// singleQueueArrivals floods one queue at full rate.
type singleQueueArrivals struct{ q cell.QueueID }

// NewSingleQueueArrivals floods queue q with one cell per slot.
func NewSingleQueueArrivals(q cell.QueueID) ArrivalProcess {
	return singleQueueArrivals{q: q}
}

func (s singleQueueArrivals) Next(cell.Slot) cell.QueueID { return s.q }

// NextBatch implements BatchArrivalProcess. The process deliberately
// does not implement SparseArrivalProcess: a cell arrives every slot,
// so there is never anything to fast-forward and the batched path is
// strictly better.
func (s singleQueueArrivals) NextBatch(_ cell.Slot, out []cell.QueueID) {
	for i := range out {
		out[i] = s.q
	}
}

// ---------------------------------------------------------------- requests

// roundRobinDrain is the paper's adversarial pattern: one cell per
// queue, cycling, skipping queues with nothing requestable.
type roundRobinDrain struct {
	q    int
	next int
}

// NewRoundRobinDrain returns the §3 adversarial request policy.
func NewRoundRobinDrain(q int) (RequestPolicy, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	return &roundRobinDrain{q: q}, nil
}

func (r *roundRobinDrain) Next(_ cell.Slot, v View) cell.QueueID {
	for i := 0; i < r.q; i++ {
		q := cell.QueueID((r.next + i) % r.q)
		if v.Requestable(q) > 0 {
			r.next = (int(q) + 1) % r.q
			return q
		}
	}
	return cell.NoQueue
}

// IdleStable implements StableRequestPolicy: the scan is a pure
// function of the view and moves the cursor only when it requests.
func (r *roundRobinDrain) IdleStable() bool { return true }

// uniformRequests requests uniformly random non-empty queues at the
// given rate.
type uniformRequests struct {
	q    int
	rate float64
	rng  *rand.Rand
}

// NewUniformRequests returns a random request policy issuing requests
// at the given rate.
func NewUniformRequests(q int, rate float64, seed int64) (RequestPolicy, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("sim: rate must be in [0,1], got %v", rate)
	}
	return &uniformRequests{q: q, rate: rate, rng: rand.New(rand.NewSource(seed))}, nil
}

func (u *uniformRequests) Next(_ cell.Slot, v View) cell.QueueID {
	if u.rng.Float64() >= u.rate {
		return cell.NoQueue
	}
	// Try a few random probes, then fall back to a scan.
	for i := 0; i < 4; i++ {
		q := cell.QueueID(u.rng.Intn(u.q))
		if v.Requestable(q) > 0 {
			return q
		}
	}
	start := u.rng.Intn(u.q)
	for i := 0; i < u.q; i++ {
		q := cell.QueueID((start + i) % u.q)
		if v.Requestable(q) > 0 {
			return q
		}
	}
	return cell.NoQueue
}

// longestFirst always drains the longest queue — the opposite extreme
// of round-robin.
type longestFirst struct{ q int }

// NewLongestFirst returns a policy that requests the queue with the
// most requestable cells.
func NewLongestFirst(q int) (RequestPolicy, error) {
	if q <= 0 {
		return nil, fmt.Errorf("sim: queues must be positive, got %d", q)
	}
	return &longestFirst{q: q}, nil
}

func (l *longestFirst) Next(_ cell.Slot, v View) cell.QueueID {
	best, bestN := cell.NoQueue, 0
	for q := 0; q < l.q; q++ {
		if n := v.Requestable(cell.QueueID(q)); n > bestN {
			best, bestN = cell.QueueID(q), n
		}
	}
	return best
}

// IdleStable implements StableRequestPolicy (the policy is stateless).
func (l *longestFirst) IdleStable() bool { return true }

// permutationDrain walks a fixed permutation, one cell per visit — a
// rotated variant of the adversarial pattern.
type permutationDrain struct {
	perm []cell.QueueID
	pos  int
}

// NewPermutationDrain cycles over the given queue permutation.
func NewPermutationDrain(perm []cell.QueueID) (RequestPolicy, error) {
	if len(perm) == 0 {
		return nil, fmt.Errorf("sim: permutation must be non-empty")
	}
	p := make([]cell.QueueID, len(perm))
	copy(p, perm)
	return &permutationDrain{perm: p}, nil
}

func (p *permutationDrain) Next(_ cell.Slot, v View) cell.QueueID {
	for i := 0; i < len(p.perm); i++ {
		q := p.perm[(p.pos+i)%len(p.perm)]
		if v.Requestable(q) > 0 {
			p.pos = (p.pos + i + 1) % len(p.perm)
			return q
		}
	}
	return cell.NoQueue
}

// IdleStable implements StableRequestPolicy: the walk is a pure
// function of the view and moves the cursor only when it requests.
func (p *permutationDrain) IdleStable() bool { return true }

// idleRequests never requests (fill-only phases).
type idleRequests struct{}

// NewIdleRequests returns a policy that never issues requests.
func NewIdleRequests() RequestPolicy { return idleRequests{} }

func (idleRequests) Next(cell.Slot, View) cell.QueueID { return cell.NoQueue }

// IdleStable implements StableRequestPolicy (never any state).
func (idleRequests) IdleStable() bool { return true }
