package sim

import (
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
)

func TestLatencyTrackerBasics(t *testing.T) {
	tr := NewLatencyTracker()
	tr.OnArrival(3, 10)
	tr.OnArrival(3, 12)
	tr.OnArrival(5, 11)
	if got := tr.InFlight(); got != 3 {
		t.Errorf("InFlight = %d", got)
	}
	tr.OnDeliver(cell.Cell{Queue: 3, Seq: 0}, 30) // 20 slots
	tr.OnDeliver(cell.Cell{Queue: 3, Seq: 1}, 52) // 40 slots
	tr.OnDeliver(cell.Cell{Queue: 5, Seq: 0}, 41) // 30 slots
	// Unknown cell ignored.
	tr.OnDeliver(cell.Cell{Queue: 9, Seq: 7}, 99)
	s := tr.Stats()
	if s.Count != 3 || s.Min != 20 || s.Max != 40 || s.Mean != 30 || s.P50 != 30 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "p99") {
		t.Error("String() malformed")
	}
	if tr.InFlight() != 0 {
		t.Errorf("InFlight = %d after deliveries", tr.InFlight())
	}
}

func TestLatencyStatsEmpty(t *testing.T) {
	if got := NewLatencyTracker().Stats(); got.Count != 0 {
		t.Errorf("empty stats = %+v", got)
	}
}

func TestRunWithLatencyPipelineFloor(t *testing.T) {
	// Every delivery takes at least the request pipeline; under a
	// steady drain the sojourn must be ≥ pipeline length and finite.
	b, err := core.New(core.Config{Q: 4, B: 8, Bsmall: 2, Banks: 16})
	if err != nil {
		t.Fatal(err)
	}
	pipe := uint64(b.Config().Lookahead + b.Config().LatencySlots)
	arr, _ := NewRoundRobinArrivals(4, 1.0)
	req, _ := NewRoundRobinDrain(4)
	r := &Runner{Buffer: b, Arrivals: arr, Requests: req}
	res, lat, err := r.RunWithLatency(20000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.Stats)
	}
	if lat.Count == 0 {
		t.Fatal("no latency samples")
	}
	if lat.Min < pipe {
		t.Errorf("min latency %d below pipeline %d", lat.Min, pipe)
	}
	if lat.Mean < float64(lat.Min) || float64(lat.Max) < lat.Mean {
		t.Errorf("inconsistent stats: %v", lat)
	}
	// The runner's hooks must be restored.
	if r.OnDeliver != nil {
		t.Error("OnDeliver not restored")
	}
}

func TestRunWithLatencyLookaheadTradeoff(t *testing.T) {
	// [13]'s motivation for short lookaheads: a smaller lookahead gives
	// a smaller delivery delay (at the cost of SRAM). Verify the mean
	// sojourn drops when the lookahead shrinks.
	run := func(lookahead int) float64 {
		b, err := core.New(core.Config{Q: 4, B: 8, Bsmall: 2, Banks: 16, Lookahead: lookahead})
		if err != nil {
			t.Fatal(err)
		}
		arr, _ := NewRoundRobinArrivals(4, 1.0)
		req, _ := NewRoundRobinDrain(4)
		r := &Runner{Buffer: b, Arrivals: arr, Requests: req}
		_, lat, err := r.RunWithLatency(15000)
		if err != nil {
			t.Fatal(err)
		}
		return lat.Mean
	}
	long := run(0) // default = full lookahead
	short := run(2)
	if short >= long {
		t.Errorf("short-lookahead latency %.1f not below full-lookahead %.1f", short, long)
	}
}

func TestRunWithLatencyRejectsAllowDrops(t *testing.T) {
	b, err := core.New(core.Config{Q: 4, B: 8, Bsmall: 2, Banks: 16})
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := NewRoundRobinArrivals(4, 1.0)
	r := &Runner{Buffer: b, Arrivals: arr, Requests: NewIdleRequests(), AllowDrops: true}
	if _, _, err := r.RunWithLatency(10); err == nil {
		t.Error("AllowDrops accepted")
	}
}
