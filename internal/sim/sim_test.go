package sim

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
)

func testBuffer(t *testing.T, q int) *core.Buffer {
	t.Helper()
	b, err := core.New(core.Config{Q: q, B: 8, Bsmall: 2, Banks: 16})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fixedView implements View for generator-only tests.
type fixedView map[cell.QueueID]int

func (v fixedView) Requestable(q cell.QueueID) int { return v[q] }
func (v fixedView) Len(q cell.QueueID) int         { return v[q] }

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewUniformArrivals(0, 0.5, 1); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := NewUniformArrivals(4, 1.5, 1); err == nil {
		t.Error("load>1 accepted")
	}
	if _, err := NewRoundRobinArrivals(0, 0.5); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := NewRoundRobinArrivals(4, -0.1); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := NewHotspotArrivals(4, 0.5, 2, 1); err == nil {
		t.Error("hotFrac>1 accepted")
	}
	if _, err := NewBurstyArrivals(4, 0.5, 3, 1); err == nil {
		t.Error("meanOn<1 accepted")
	}
	if _, err := NewRoundRobinDrain(0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := NewUniformRequests(4, 2, 1); err == nil {
		t.Error("rate>1 accepted")
	}
	if _, err := NewLongestFirst(0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := NewPermutationDrain(nil); err == nil {
		t.Error("empty permutation accepted")
	}
}

func TestUniformArrivalsLoad(t *testing.T) {
	a, err := NewUniformArrivals(8, 0.6, 42)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	const slots = 100000
	for i := 0; i < slots; i++ {
		if a.Next(cell.Slot(i)) != cell.NoQueue {
			n++
		}
	}
	if got := float64(n) / slots; math.Abs(got-0.6) > 0.02 {
		t.Errorf("measured load %.3f, want 0.6", got)
	}
}

func TestRoundRobinArrivalsDeterministic(t *testing.T) {
	a, _ := NewRoundRobinArrivals(3, 1.0)
	want := []cell.QueueID{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := a.Next(cell.Slot(i)); got != w {
			t.Errorf("slot %d: %d, want %d", i, got, w)
		}
	}
	// Half load: every other slot idles.
	h, _ := NewRoundRobinArrivals(3, 0.5)
	idle, busy := 0, 0
	for i := 0; i < 1000; i++ {
		if h.Next(cell.Slot(i)) == cell.NoQueue {
			idle++
		} else {
			busy++
		}
	}
	if busy != 500 {
		t.Errorf("busy = %d, want 500", busy)
	}
	_ = idle
}

func TestHotspotSkew(t *testing.T) {
	a, _ := NewHotspotArrivals(8, 1.0, 0.9, 7)
	hot := 0
	const slots = 50000
	for i := 0; i < slots; i++ {
		if a.Next(cell.Slot(i)) == 0 {
			hot++
		}
	}
	if got := float64(hot) / slots; math.Abs(got-0.9) > 0.02 {
		t.Errorf("hot fraction %.3f, want 0.9", got)
	}
}

func TestBurstyArrivalsStructure(t *testing.T) {
	a, _ := NewBurstyArrivals(4, 10, 10, 3)
	busy := 0
	const slots = 100000
	prev := cell.NoQueue
	switches := 0
	for i := 0; i < slots; i++ {
		q := a.Next(cell.Slot(i))
		if q != cell.NoQueue {
			busy++
			if prev != cell.NoQueue && q != prev {
				switches++
			}
			prev = q
		}
	}
	if got := float64(busy) / slots; math.Abs(got-0.5) > 0.05 {
		t.Errorf("bursty load %.3f, want ≈0.5", got)
	}
	if switches == 0 {
		t.Error("bursts never switched queues")
	}
}

func TestRoundRobinDrainSkipsEmpty(t *testing.T) {
	p, _ := NewRoundRobinDrain(4)
	v := fixedView{1: 2, 3: 1}
	got := []cell.QueueID{
		p.Next(0, v), p.Next(1, v), p.Next(2, v),
	}
	if got[0] != 1 || got[1] != 3 || got[2] != 1 {
		t.Errorf("drain order = %v, want [1 3 1]", got)
	}
	empty := fixedView{}
	if q := p.Next(3, empty); q != cell.NoQueue {
		t.Errorf("empty view returned %d", q)
	}
}

func TestLongestFirst(t *testing.T) {
	p, _ := NewLongestFirst(4)
	if q := p.Next(0, fixedView{0: 1, 2: 5, 3: 2}); q != 2 {
		t.Errorf("got %d, want 2", q)
	}
	if q := p.Next(0, fixedView{}); q != cell.NoQueue {
		t.Errorf("got %d, want NoQueue", q)
	}
}

func TestPermutationDrain(t *testing.T) {
	p, _ := NewPermutationDrain([]cell.QueueID{2, 0, 1})
	v := fixedView{0: 5, 1: 5, 2: 5}
	got := []cell.QueueID{p.Next(0, v), p.Next(1, v), p.Next(2, v), p.Next(3, v)}
	want := []cell.QueueID{2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("perm order = %v, want %v", got, want)
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	r := &Runner{}
	if _, err := r.Run(10); err == nil {
		t.Error("empty runner ran")
	}
}

func TestRunnerAdversarialClean(t *testing.T) {
	b := testBuffer(t, 4)
	arr, _ := NewRoundRobinArrivals(4, 1.0)
	req, _ := NewRoundRobinDrain(4)
	delivered := 0
	r := &Runner{Buffer: b, Arrivals: arr, Requests: req,
		OnDeliver: func(c cell.Cell, _ bool) { delivered++ }}
	res, err := r.Run(20000)
	if err != nil {
		t.Fatalf("%v (stats %v)", err, res.Stats)
	}
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.Stats)
	}
	if delivered == 0 || uint64(delivered) != res.Stats.Deliveries {
		t.Errorf("delivered %d, stats %d", delivered, res.Stats.Deliveries)
	}
	// Full-load arrivals with a lagging drain: deliveries should be
	// a substantial fraction of arrivals.
	if res.Stats.Deliveries < res.Stats.Arrivals/2 {
		t.Errorf("only %d of %d delivered", res.Stats.Deliveries, res.Stats.Arrivals)
	}
}

func TestRunnerAllWorkloadMatrixClean(t *testing.T) {
	// Cross product of arrival processes and request policies on the
	// small CFDS configuration: every combination must be invariant
	// clean.
	const Q = 4
	arrivals := map[string]func() ArrivalProcess{
		"uniform": func() ArrivalProcess { a, _ := NewUniformArrivals(Q, 0.9, 11); return a },
		"rr":      func() ArrivalProcess { a, _ := NewRoundRobinArrivals(Q, 1.0); return a },
		"hotspot": func() ArrivalProcess { a, _ := NewHotspotArrivals(Q, 0.95, 0.8, 5); return a },
		"bursty":  func() ArrivalProcess { a, _ := NewBurstyArrivals(Q, 20, 4, 9); return a },
		"single":  func() ArrivalProcess { return NewSingleQueueArrivals(1) },
	}
	requests := map[string]func() RequestPolicy{
		"rrdrain": func() RequestPolicy { p, _ := NewRoundRobinDrain(Q); return p },
		"uniform": func() RequestPolicy { p, _ := NewUniformRequests(Q, 0.95, 13); return p },
		"longest": func() RequestPolicy { p, _ := NewLongestFirst(Q); return p },
		"perm":    func() RequestPolicy { p, _ := NewPermutationDrain([]cell.QueueID{3, 1, 0, 2}); return p },
	}
	for an, af := range arrivals {
		for rn, rf := range requests {
			t.Run(an+"/"+rn, func(t *testing.T) {
				r := &Runner{Buffer: testBuffer(t, Q), Arrivals: af(), Requests: rf()}
				res, err := r.Run(8000)
				if err != nil {
					t.Fatalf("%v (stats %v)", err, res.Stats)
				}
				if !res.Clean() {
					t.Fatalf("not clean: %v", res.Stats)
				}
			})
		}
	}
}

func TestRunnerDrain(t *testing.T) {
	b := testBuffer(t, 4)
	arr, _ := NewRoundRobinArrivals(4, 1.0)
	req, _ := NewRoundRobinDrain(4)
	r := &Runner{Buffer: b, Arrivals: arr, Requests: NewIdleRequests()}
	if _, err := r.Run(400); err != nil {
		t.Fatal(err)
	}
	r.Requests = req
	n, _, err := r.Drain(100000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 400 {
		t.Errorf("drained %d, want 400", n)
	}
	for q := cell.QueueID(0); q < 4; q++ {
		if b.Len(q) != 0 {
			t.Errorf("Len(%d) = %d", q, b.Len(q))
		}
	}
}

func TestRunnerBoundedDRAMWithDropsAllowed(t *testing.T) {
	b, err := core.New(core.Config{Q: 4, B: 8, Bsmall: 2, Banks: 16, BankCapacityBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		Buffer:     b,
		Arrivals:   NewSingleQueueArrivals(0),
		Requests:   NewIdleRequests(),
		AllowDrops: true,
	}
	res, err := r.Run(4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Drops == 0 {
		t.Error("expected drops under bounded DRAM flood")
	}
	if !res.Clean() {
		t.Errorf("drops-allowed run not clean: %v", res.Stats)
	}
}

func TestDrainTerminatesPromptly(t *testing.T) {
	// Regression: Drain's early exit used to run only on fully idle
	// slots, so a drain could burn all maxSlots after the buffer had
	// emptied. It must now stop as soon as no request is issued and
	// none is in flight.
	b := testBuffer(t, 4)
	req, _ := NewRoundRobinDrain(4)

	// An empty buffer drains in one slot.
	r := &Runner{Buffer: b, Arrivals: NewSingleQueueArrivals(0), Requests: req}
	start := b.Now()
	n, _, err := r.Drain(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("drained %d cells from empty buffer", n)
	}
	if used := uint64(b.Now() - start); used > 1 {
		t.Errorf("empty drain used %d slots, want 1", used)
	}

	// A populated buffer drains in O(pipeline) slots, not maxSlots.
	r.Requests = NewIdleRequests()
	if _, err := r.Run(100); err != nil {
		t.Fatal(err)
	}
	r.Requests = req
	start = b.Now()
	n, _, err = r.Drain(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("drained %d, want 100", n)
	}
	if used := uint64(b.Now() - start); used > 10000 {
		t.Errorf("drain used %d slots for 100 cells", used)
	}
}

func TestRunBatchArrivalEquivalence(t *testing.T) {
	// The batched arrival fast path must be slot-for-slot identical to
	// per-slot Next calls.
	for _, mk := range []struct {
		name string
		make func() ArrivalProcess
	}{
		{"rr", func() ArrivalProcess { a, _ := NewRoundRobinArrivals(4, 0.7); return a }},
		{"uniform", func() ArrivalProcess { a, _ := NewUniformArrivals(4, 0.6, 3); return a }},
		{"single", func() ArrivalProcess { return NewSingleQueueArrivals(2) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			ref, batched := mk.make(), mk.make().(BatchArrivalProcess)
			got := make([]cell.QueueID, 257)
			batched.NextBatch(0, got)
			for i, g := range got {
				if want := ref.Next(cell.Slot(i)); g != want {
					t.Fatalf("slot %d: batch %d, per-slot %d", i, g, want)
				}
			}
		})
	}
}
