package sim

import (
	"errors"
	"fmt"

	"repro/internal/cell"
	"repro/internal/core"
)

// Result summarizes one simulation run.
type Result struct {
	// Slots is the number of slots simulated.
	Slots uint64
	// Stats is the buffer's final statistics snapshot.
	Stats core.Stats
	// DropsAllowed reports whether ErrBufferFull was tolerated.
	DropsAllowed bool
}

// Clean reports whether the run upheld every worst-case guarantee
// (drops excluded when they were explicitly allowed).
func (r Result) Clean() bool {
	s := r.Stats
	if r.DropsAllowed {
		s.Drops = 0
	}
	return s.Clean()
}

// Runner drives a core.Buffer with an arrival process and a request
// policy, one slot at a time.
type Runner struct {
	// Buffer is the system under test.
	Buffer *core.Buffer
	// Arrivals feeds the ingress; Requests models the fabric scheduler.
	Arrivals ArrivalProcess
	Requests RequestPolicy
	// AllowDrops tolerates ErrBufferFull (bounded-DRAM experiments);
	// any other error aborts the run.
	AllowDrops bool
	// OnDeliver, when set, observes every delivered cell.
	OnDeliver func(c cell.Cell, bypassed bool)
}

// Run simulates the given number of slots.
func (r *Runner) Run(slots uint64) (Result, error) {
	return r.RunBatch(slots, 1)
}

// defaultBatch is the RunBatch chunk size when the caller passes 0.
const defaultBatch = 4096

// RunBatch simulates the given number of slots in chunks of batch
// (0 selects a default). It is the fast path for long steady-state
// runs: the per-slot work is reduced to generator calls plus
// Buffer.Tick — the arrival-process interface dispatch is hoisted out
// of the inner loop for BatchArrivalProcess implementations (one
// NextBatch call fills a whole chunk), the delivery-callback and
// drop-tolerance branches are resolved per batch, and the Stats
// snapshot is taken once at the end of the run instead of being
// rebuilt anywhere inside the loop.
//
// When the arrival process is sparse (SparseArrivalProcess) and the
// request policy is idle-stable (StableRequestPolicy), idle spans are
// not ticked at all: as soon as a slot carries no request and the
// buffer reports Quiescent, the runner jumps straight to the next
// arrival with Buffer.FastForward — bit-identical to ticking every
// skipped slot, but O(1) per idle span — so a load-ρ run costs
// O(ρ·slots), not O(slots).
func (r *Runner) RunBatch(slots, batch uint64) (Result, error) {
	if r.Buffer == nil || r.Arrivals == nil || r.Requests == nil {
		return Result{}, fmt.Errorf("sim: runner needs Buffer, Arrivals and Requests")
	}
	if batch == 0 {
		batch = defaultBatch
	}
	res := Result{DropsAllowed: r.AllowDrops}
	buf := r.Buffer
	onDeliver := r.OnDeliver
	sparseArr, sparse := r.Arrivals.(SparseArrivalProcess)
	if sp, ok := r.Requests.(StableRequestPolicy); !ok || !sp.IdleStable() {
		sparse = false
	}
	batchArr, batched := r.Arrivals.(BatchArrivalProcess)
	var arrBuf []cell.QueueID
	if !sparse && batched && batch > 1 {
		arrBuf = make([]cell.QueueID, batch)
	} else {
		batched = false
	}
	for done := uint64(0); done < slots; {
		n := batch
		if left := slots - done; left < n {
			n = left
		}
		if batched {
			batchArr.NextBatch(buf.Now(), arrBuf[:n])
		}
		for i := uint64(0); i < n; {
			now := buf.Now()
			var in core.TickInput
			if sparse {
				// Policy first: a slot with a request can never be
				// skipped, and an idle-stable policy that answers NoQueue
				// would answer NoQueue for every skipped slot too (the
				// view does not change across a fast-forward).
				in.Request = r.Requests.Next(now, buf)
				if in.Request == cell.NoQueue && buf.Quiescent() {
					next := sparseArr.NextArrival(now, now+cell.Slot(n-i))
					if next > now {
						i += buf.FastForward(uint64(next - now))
						continue
					}
				}
				in.Arrival = r.Arrivals.Next(now)
			} else {
				if batched {
					in.Arrival = arrBuf[i]
				} else {
					in.Arrival = r.Arrivals.Next(now)
				}
				in.Request = r.Requests.Next(now, buf)
			}
			out, err := buf.Tick(in)
			if err != nil && !(r.AllowDrops && errors.Is(err, core.ErrBufferFull)) {
				res.Slots = done + i + 1
				res.Stats = buf.Stats()
				return res, fmt.Errorf("sim: slot %d: %w", done+i, err)
			}
			if out.Delivered != nil && onDeliver != nil {
				onDeliver(*out.Delivered, out.Bypassed)
			}
			i++
		}
		done += n
	}
	res.Slots = slots
	res.Stats = buf.Stats()
	return res, nil
}

// Drain keeps requesting until the buffer is fully quiescent or
// maxSlots pass, with no further arrivals. It returns the number of
// cells delivered and the exact slot the last of them was delivered
// in (zero when nothing was delivered). Termination uses the buffer's
// quiescence predicate: the loop stops — without spending a slot —
// the moment the policy issues no request and an idle tick would be a
// pure time advance, so draining an already-empty buffer is O(1) and
// a populated one costs exactly the slots its pipeline and in-flight
// transfers need.
func (r *Runner) Drain(maxSlots uint64) (delivered uint64, lastSlot cell.Slot, err error) {
	buf := r.Buffer
	for s := uint64(0); s < maxSlots; s++ {
		in := core.TickInput{
			Arrival: cell.NoQueue,
			Request: r.Requests.Next(buf.Now(), buf),
		}
		if in.Request == cell.NoQueue && buf.Quiescent() {
			break
		}
		out, err := buf.Tick(in)
		if err != nil {
			return delivered, lastSlot, fmt.Errorf("sim: drain slot %d: %w", s, err)
		}
		if out.Delivered != nil {
			delivered++
			lastSlot = buf.Now() - 1
			if r.OnDeliver != nil {
				r.OnDeliver(*out.Delivered, out.Bypassed)
			}
		}
	}
	return delivered, lastSlot, nil
}
