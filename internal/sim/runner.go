package sim

import (
	"errors"
	"fmt"

	"repro/internal/cell"
	"repro/internal/core"
)

// Result summarizes one simulation run.
type Result struct {
	// Slots is the number of slots simulated.
	Slots uint64
	// Stats is the buffer's final statistics snapshot.
	Stats core.Stats
	// DropsAllowed reports whether ErrBufferFull was tolerated.
	DropsAllowed bool
}

// Clean reports whether the run upheld every worst-case guarantee
// (drops excluded when they were explicitly allowed).
func (r Result) Clean() bool {
	s := r.Stats
	if r.DropsAllowed {
		s.Drops = 0
	}
	return s.Clean()
}

// Runner drives a core.Buffer with an arrival process and a request
// policy, one slot at a time.
type Runner struct {
	// Buffer is the system under test.
	Buffer *core.Buffer
	// Arrivals feeds the ingress; Requests models the fabric scheduler.
	Arrivals ArrivalProcess
	Requests RequestPolicy
	// AllowDrops tolerates ErrBufferFull (bounded-DRAM experiments);
	// any other error aborts the run.
	AllowDrops bool
	// OnDeliver, when set, observes every delivered cell.
	OnDeliver func(c cell.Cell, bypassed bool)
}

// Run simulates the given number of slots.
func (r *Runner) Run(slots uint64) (Result, error) {
	if r.Buffer == nil || r.Arrivals == nil || r.Requests == nil {
		return Result{}, fmt.Errorf("sim: runner needs Buffer, Arrivals and Requests")
	}
	res := Result{DropsAllowed: r.AllowDrops}
	for s := uint64(0); s < slots; s++ {
		in := core.TickInput{
			Arrival: r.Arrivals.Next(r.Buffer.Now()),
			Request: r.Requests.Next(r.Buffer.Now(), r.Buffer),
		}
		out, err := r.Buffer.Tick(in)
		if err != nil {
			if r.AllowDrops && errors.Is(err, core.ErrBufferFull) {
				err = nil
			} else {
				res.Slots = s + 1
				res.Stats = r.Buffer.Stats()
				return res, fmt.Errorf("sim: slot %d: %w", s, err)
			}
		}
		if out.Delivered != nil && r.OnDeliver != nil {
			r.OnDeliver(*out.Delivered, out.Bypassed)
		}
	}
	res.Slots = slots
	res.Stats = r.Buffer.Stats()
	return res, nil
}

// Drain keeps requesting until the buffer empties or maxSlots pass,
// with no further arrivals. It returns the number of cells delivered.
func (r *Runner) Drain(maxSlots uint64) (uint64, error) {
	delivered := uint64(0)
	for s := uint64(0); s < maxSlots; s++ {
		in := core.TickInput{
			Arrival: cell.NoQueue,
			Request: r.Requests.Next(r.Buffer.Now(), r.Buffer),
		}
		out, err := r.Buffer.Tick(in)
		if err != nil {
			return delivered, fmt.Errorf("sim: drain slot %d: %w", s, err)
		}
		if out.Delivered != nil {
			delivered++
			if r.OnDeliver != nil {
				r.OnDeliver(*out.Delivered, out.Bypassed)
			}
		}
		if in.Request == cell.NoQueue && out.Delivered == nil {
			// Nothing requestable and the pipeline has emptied?
			if r.Buffer.Stats().Deliveries == r.Buffer.Stats().Requests {
				break
			}
		}
	}
	return delivered, nil
}
