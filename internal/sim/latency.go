package sim

import (
	"fmt"
	"sort"

	"repro/internal/cell"
)

// LatencyStats summarizes cell sojourn times (arrival slot → delivery
// slot). The paper's delay discussion (§7.2: "it would be desirable to
// match the link-rate targets with the minimum look-ahead to minimize
// the average cell delay") is about exactly this quantity.
type LatencyStats struct {
	// Count is the number of delivered cells measured.
	Count uint64
	// Min/Max/Mean are sojourn times in slots.
	Min, Max uint64
	Mean     float64
	// P50, P95, P99 are percentiles in slots.
	P50, P95, P99 uint64
}

// String implements fmt.Stringer.
func (l LatencyStats) String() string {
	return fmt.Sprintf("latency(slots): n=%d min=%d p50=%d mean=%.1f p95=%d p99=%d max=%d",
		l.Count, l.Min, l.P50, l.Mean, l.P95, l.P99, l.Max)
}

// LatencyTracker measures arrival→delivery sojourn per cell. Attach
// it to a Runner via Observe; it keys cells by (queue, seq), which the
// buffer guarantees unique and FIFO per queue.
type LatencyTracker struct {
	arrivals map[cell.QueueID]uint64 // next seq per queue
	inFlight map[trackKey]cell.Slot
	samples  []uint64
}

type trackKey struct {
	q   cell.QueueID
	seq uint64
}

// NewLatencyTracker returns an empty tracker.
func NewLatencyTracker() *LatencyTracker {
	return &LatencyTracker{
		arrivals: make(map[cell.QueueID]uint64),
		inFlight: make(map[trackKey]cell.Slot),
	}
}

// SeedNextSeq aligns the tracker with a buffer that already carries
// traffic: the next arrival the tracker observes for q will be keyed
// with the given sequence number (core.Buffer.ArrivedSeq). Without
// seeding, a tracker attached mid-run keys measured arrivals from 0
// and pairs them with the deliveries of older cells, silently
// cancelling the queueing delay out of every sample.
func (t *LatencyTracker) SeedNextSeq(q cell.QueueID, seq uint64) {
	t.arrivals[q] = seq
}

// OnArrival records a cell entering the buffer at slot now.
func (t *LatencyTracker) OnArrival(q cell.QueueID, now cell.Slot) {
	seq := t.arrivals[q]
	t.arrivals[q] = seq + 1
	t.inFlight[trackKey{q, seq}] = now
}

// OnDeliver records a delivery and accumulates its sojourn.
func (t *LatencyTracker) OnDeliver(c cell.Cell, now cell.Slot) {
	k := trackKey{c.Queue, c.Seq}
	if at, ok := t.inFlight[k]; ok {
		t.samples = append(t.samples, uint64(now-at))
		delete(t.inFlight, k)
	}
}

// InFlight returns the number of cells arrived but not yet delivered.
func (t *LatencyTracker) InFlight() int { return len(t.inFlight) }

// Stats summarizes the collected samples.
func (t *LatencyTracker) Stats() LatencyStats {
	if len(t.samples) == 0 {
		return LatencyStats{}
	}
	s := make([]uint64, len(t.samples))
	copy(s, t.samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	pct := func(p float64) uint64 {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return LatencyStats{
		Count: uint64(len(s)),
		Min:   s[0],
		Max:   s[len(s)-1],
		Mean:  sum / float64(len(s)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
	}
}

// RunWithLatency runs the Runner for the given slots while measuring
// per-cell sojourn times. It is a convenience wrapper that installs
// the tracker around the runner's stimulus and delivery paths.
func (r *Runner) RunWithLatency(slots uint64) (Result, LatencyStats, error) {
	if r.AllowDrops {
		// A dropped arrival consumes a tracker sequence number but not
		// a buffer one, desynchronizing the keying.
		return Result{}, LatencyStats{}, fmt.Errorf("sim: latency measurement requires AllowDrops=false")
	}
	tracker := NewLatencyTracker()
	buf := r.Buffer
	// Align with the buffer's numbering: warmup cells arrived before
	// measurement keep their seqs, and their (untracked) deliveries
	// are skipped instead of mispairing with measured arrivals.
	for q := 0; q < buf.Config().Q; q++ {
		tracker.SeedNextSeq(cell.QueueID(q), buf.ArrivedSeq(cell.QueueID(q)))
	}
	prevDeliver := r.OnDeliver
	arr := r.Arrivals
	r.Arrivals = arrivalTap{inner: arr, tap: func(q cell.QueueID, now cell.Slot) {
		if q != cell.NoQueue {
			tracker.OnArrival(q, now)
		}
	}}
	r.OnDeliver = func(c cell.Cell, bypassed bool) {
		// The callback fires after Tick has advanced the clock, so the
		// delivery slot is Now()-1 (arrivals are stamped pre-Tick).
		tracker.OnDeliver(c, buf.Now()-1)
		if prevDeliver != nil {
			prevDeliver(c, bypassed)
		}
	}
	defer func() {
		r.Arrivals = arr
		r.OnDeliver = prevDeliver
	}()
	res, err := r.Run(slots)
	return res, tracker.Stats(), err
}

// arrivalTap wraps an ArrivalProcess, observing each emission.
type arrivalTap struct {
	inner ArrivalProcess
	tap   func(q cell.QueueID, now cell.Slot)
}

func (a arrivalTap) Next(slot cell.Slot) cell.QueueID {
	q := a.inner.Next(slot)
	a.tap(q, slot)
	return q
}
