package sim

import (
	"fmt"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
)

// denseOnly hides a generator's batch and sparse fast paths, forcing
// the Runner onto the per-slot reference loop.
type denseOnly struct{ inner ArrivalProcess }

func (d denseOnly) Next(slot cell.Slot) cell.QueueID { return d.inner.Next(slot) }

// unstable hides a policy's IdleStable marker.
type unstable struct{ inner RequestPolicy }

func (u unstable) Next(slot cell.Slot, v View) cell.QueueID { return u.inner.Next(slot, v) }

// deliveryLog records every delivery with its slot for sequence
// comparison between runs.
type deliveryLog struct {
	buf     *core.Buffer
	entries []string
}

func (l *deliveryLog) observe(c cell.Cell, bypassed bool) {
	l.entries = append(l.entries,
		fmt.Sprintf("%d:%d:%d:%v", l.buf.Now(), c.Queue, c.Seq, bypassed))
}

// sparseCfg keeps the request pipeline short so idle gaps at the
// tested loads actually outlast it (a deliberately low-latency
// dimensioning; the invariant checks still run and must stay clean).
func sparseCfg(q int) core.Config {
	return core.Config{Q: q, B: 32, Bsmall: 4, Banks: 64, Lookahead: 8, LatencySlots: 24}
}

// TestRunBatchSparseEquivalence pins the Runner's fast-forward fast
// path to the per-slot reference loop: identical generators and seeds
// must produce identical deliveries (slot, queue, seq, bypass),
// identical statistics and an identical clock, across Bernoulli and
// bursty on/off traffic and ≥1e5 slots. The sparse run must actually
// skip slots, or the test guards nothing.
func TestRunBatchSparseEquivalence(t *testing.T) {
	const slots = 120000
	makers := map[string]func(q int, seed int64) (ArrivalProcess, error){
		"bernoulli0.01": func(q int, seed int64) (ArrivalProcess, error) { return NewBernoulliArrivals(q, 0.01, seed) },
		"bernoulli0.2":  func(q int, seed int64) (ArrivalProcess, error) { return NewBernoulliArrivals(q, 0.2, seed) },
		"bursty": func(q int, seed int64) (ArrivalProcess, error) {
			return NewBurstyArrivals(q, 16, 400, seed)
		},
	}
	for name, mk := range makers {
		for _, batch := range []uint64{0, 1, 777} {
			t.Run(fmt.Sprintf("%s/batch=%d", name, batch), func(t *testing.T) {
				run := func(dense bool) (Result, []string, *core.Buffer) {
					buf, err := core.New(sparseCfg(16))
					if err != nil {
						t.Fatal(err)
					}
					arr, err := mk(16, 42)
					if err != nil {
						t.Fatal(err)
					}
					req, _ := NewRoundRobinDrain(16)
					var reqP RequestPolicy = req
					if dense {
						arr = denseOnly{arr}
						reqP = unstable{req}
					}
					log := &deliveryLog{buf: buf}
					r := &Runner{Buffer: buf, Arrivals: arr, Requests: reqP, OnDeliver: log.observe}
					res, err := r.RunBatch(slots, batch)
					if err != nil {
						t.Fatalf("run (dense=%v): %v", dense, err)
					}
					return res, log.entries, buf
				}
				dres, dlog, dbuf := run(true)
				sres, slog, sbuf := run(false)
				if dbuf.Now() != sbuf.Now() {
					t.Errorf("clock diverges: dense %d, sparse %d", dbuf.Now(), sbuf.Now())
				}
				ds, ss := dres.Stats, sres.Stats
				if ss.FastForwardedSlots == 0 {
					t.Error("sparse run never fast-forwarded")
				}
				ss.FastForwardedSlots, ds.FastForwardedSlots = 0, 0
				if ds != ss {
					t.Errorf("stats diverge:\ndense  %+v\nsparse %+v", ds, ss)
				}
				if len(dlog) != len(slog) {
					t.Fatalf("delivery counts diverge: dense %d, sparse %d", len(dlog), len(slog))
				}
				for i := range dlog {
					if dlog[i] != slog[i] {
						t.Fatalf("delivery %d diverges: dense %s, sparse %s", i, dlog[i], slog[i])
					}
				}
			})
		}
	}
}

// TestRunBatchSparseZeroAlloc gates the sparse fast path at zero
// allocations per RunBatch call once warm.
func TestRunBatchSparseZeroAlloc(t *testing.T) {
	buf, err := core.New(sparseCfg(16))
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := NewBernoulliArrivals(16, 0.05, 7)
	req, _ := NewRoundRobinDrain(16)
	r := &Runner{Buffer: buf, Arrivals: arr, Requests: req}
	if _, err := r.RunBatch(5000, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := r.RunBatch(5000, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("sparse RunBatch allocates %.1f times per call, want 0", allocs)
	}
	if buf.Stats().FastForwardedSlots == 0 {
		t.Error("sparse run never fast-forwarded")
	}
}

// TestDrainQuiescence pins the rewritten Drain: an empty buffer
// drains in zero slots, a populated one stops at true quiescence (not
// at an arbitrary polling bound), and the returned last-delivery slot
// matches the final delivery observed by OnDeliver.
func TestDrainQuiescence(t *testing.T) {
	buf, err := core.New(sparseCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	req, _ := NewRoundRobinDrain(8)
	r := &Runner{Buffer: buf, Arrivals: NewSingleQueueArrivals(0), Requests: req}

	// Empty buffer: O(1), zero slots spent, zero last-delivery slot.
	start := buf.Now()
	n, last, err := r.Drain(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || last != 0 {
		t.Errorf("empty drain: delivered %d, lastSlot %d; want 0, 0", n, last)
	}
	if buf.Now() != start {
		t.Errorf("empty drain spent %d slots, want 0", buf.Now()-start)
	}

	// Fill, then drain: exact count, last slot cross-checked.
	r.Requests = NewIdleRequests()
	if _, err := r.Run(100); err != nil {
		t.Fatal(err)
	}
	var observedLast cell.Slot
	r.OnDeliver = func(cell.Cell, bool) { observedLast = buf.Now() - 1 }
	r.Requests = req
	n, last, err = r.Drain(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("drained %d, want 100", n)
	}
	if last != observedLast {
		t.Errorf("lastSlot %d, observed %d", last, observedLast)
	}
	if !buf.Quiescent() {
		t.Error("buffer not quiescent after drain")
	}
	if buf.PendingRequests() != 0 {
		t.Error("requests still pending after drain")
	}
}

// TestBernoulliMatchesPerSlot pins the generator itself: NextBatch and
// NextArrival must be slot-for-slot equivalent to per-slot Next calls.
func TestBernoulliMatchesPerSlot(t *testing.T) {
	mk := func() ArrivalProcess {
		a, err := NewBernoulliArrivals(8, 0.03, 99)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	ref := mk()
	want := make([]cell.QueueID, 4096)
	for i := range want {
		want[i] = ref.Next(cell.Slot(i))
	}

	batch := mk().(BatchArrivalProcess)
	got := make([]cell.QueueID, len(want))
	batch.NextBatch(0, got[:1000])
	batch.NextBatch(1000, got[1000:])
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextBatch slot %d: %d, want %d", i, got[i], want[i])
		}
	}

	sparse := mk().(SparseArrivalProcess)
	slot := cell.Slot(0)
	for int(slot) < len(want) {
		next := sparse.NextArrival(slot, cell.Slot(len(want)))
		for s := slot; s < next; s++ {
			if want[s] != cell.NoQueue {
				t.Fatalf("NextArrival skipped an arrival at slot %d", s)
			}
		}
		if int(next) == len(want) {
			break
		}
		if q := sparse.Next(next); q != want[next] {
			t.Fatalf("arrival at slot %d: %d, want %d", next, q, want[next])
		}
		slot = next + 1
	}
}

// TestBurstyNextArrivalMatchesPerSlot does the same for the on/off
// process, whose gap counters are consumed rather than peeked.
func TestBurstyNextArrivalMatchesPerSlot(t *testing.T) {
	mk := func() ArrivalProcess {
		a, err := NewBurstyArrivals(8, 6, 120, 5)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	ref := mk()
	want := make([]cell.QueueID, 8192)
	for i := range want {
		want[i] = ref.Next(cell.Slot(i))
	}

	sparse := mk().(SparseArrivalProcess)
	slot := cell.Slot(0)
	for int(slot) < len(want) {
		// Jump in bounded hops so mid-gap limits are exercised too.
		limit := slot + 97
		if int(limit) > len(want) {
			limit = cell.Slot(len(want))
		}
		next := sparse.NextArrival(slot, limit)
		for s := slot; s < next; s++ {
			if want[s] != cell.NoQueue {
				t.Fatalf("NextArrival skipped an arrival at slot %d", s)
			}
		}
		if next == limit {
			slot = limit
			continue
		}
		if q := sparse.Next(next); q != want[next] {
			t.Fatalf("arrival at slot %d: %d, want %d", next, q, want[next])
		}
		slot = next + 1
	}
}
