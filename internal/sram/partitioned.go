package sram

import (
	"fmt"

	"repro/internal/cell"
)

// PartitionedStore is the distributed (isolated) SRAM organization of
// §7.1: each queue owns a fixed circular-buffer partition of the
// array. It is trivial to build in hardware ("simple direct-mapped
// SRAM structures") but must provision every queue for its worst case,
// so the total is Q × per-queue-worst-case — the motivation for the
// shared organizations, quantified by the equivalence tests and the
// sizing benchmark.
//
// Like the shared stores it supports out-of-order insertion within a
// queue's window (the circular buffer is indexed by position, so a
// late block simply lands at its slot).
type PartitionedStore struct {
	perQueue  int
	queues    []partition
	total     int
	highWater int
	capacity  int
}

// partition is one queue's circular buffer; its backing arrays are
// allocated on first contact so idle queues cost one struct slot in
// the dense arena.
type partition struct {
	cells   []cell.Cell
	present []bool
	nextPop uint64
	count   int
}

var _ Store = (*PartitionedStore)(nil)

// NewPartitioned returns a PartitionedStore with queues partitions of
// perQueue cells each, slice-indexed by the physical queue ordinal.
func NewPartitioned(queues, perQueue int) (*PartitionedStore, error) {
	if queues <= 0 {
		return nil, fmt.Errorf("sram: queues must be positive, got %d", queues)
	}
	if perQueue <= 0 {
		return nil, fmt.Errorf("sram: perQueue must be positive, got %d", perQueue)
	}
	return &PartitionedStore{
		perQueue: perQueue,
		queues:   make([]partition, queues),
		capacity: queues * perQueue,
	}, nil
}

func (s *PartitionedStore) queue(q cell.PhysQueueID) *partition {
	for int(q) >= len(s.queues) {
		s.queues = append(s.queues, partition{})
	}
	p := &s.queues[q]
	if p.cells == nil {
		p.cells = make([]cell.Cell, s.perQueue)
		p.present = make([]bool, s.perQueue)
	}
	return p
}

// Insert implements Store. Unlike the shared organizations, the
// partition overflows as soon as *one queue* exceeds its share, even
// if the rest of the array is empty — the isolation cost.
func (s *PartitionedStore) Insert(q cell.PhysQueueID, pos uint64, c cell.Cell) error {
	p := s.queue(q)
	if pos < p.nextPop {
		return fmt.Errorf("%w: queue %d pos %d already popped", ErrDuplicate, q, pos)
	}
	if pos >= p.nextPop+uint64(s.perQueue) {
		return fmt.Errorf("%w: queue %d partition of %d cells (pos %d, window starts %d)",
			ErrFull, q, s.perQueue, pos, p.nextPop)
	}
	slot := int(pos % uint64(s.perQueue))
	if p.present[slot] {
		return fmt.Errorf("%w: queue %d pos %d", ErrDuplicate, q, pos)
	}
	p.cells[slot] = c
	p.present[slot] = true
	p.count++
	s.total++
	if s.total > s.highWater {
		s.highWater = s.total
	}
	return nil
}

// Pop implements Store.
func (s *PartitionedStore) Pop(q cell.PhysQueueID) (cell.Cell, error) {
	p := s.queue(q)
	slot := int(p.nextPop % uint64(s.perQueue))
	if !p.present[slot] {
		return cell.Cell{}, fmt.Errorf("%w: queue %d pos %d", ErrMissing, q, p.nextPop)
	}
	c := p.cells[slot]
	p.present[slot] = false
	p.nextPop++
	p.count--
	s.total--
	return c, nil
}

// Peek implements Store.
func (s *PartitionedStore) Peek(q cell.PhysQueueID) (cell.Cell, bool) {
	p := s.queue(q)
	slot := int(p.nextPop % uint64(s.perQueue))
	if !p.present[slot] {
		return cell.Cell{}, false
	}
	return p.cells[slot], true
}

// HasNext implements Store.
func (s *PartitionedStore) HasNext(q cell.PhysQueueID) bool {
	_, ok := s.Peek(q)
	return ok
}

// Len implements Store.
func (s *PartitionedStore) Len(q cell.PhysQueueID) int { return s.queue(q).count }

// Total implements Store.
func (s *PartitionedStore) Total() int { return s.total }

// Cap implements Store.
func (s *PartitionedStore) Cap() int { return s.capacity }

// PerQueue returns the partition size.
func (s *PartitionedStore) PerQueue() int { return s.perQueue }

// HighWater implements Store.
func (s *PartitionedStore) HighWater() int { return s.highWater }
