package sram

import (
	"testing"

	"repro/internal/cell"
)

// benchStore measures steady-state insert+pop cost per cell.
func benchStore(b *testing.B, s Store) {
	b.Helper()
	b.ReportAllocs()
	const queues = 64
	pos := make([]uint64, queues)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := cell.PhysQueueID(i % queues)
		p := pos[q]
		pos[q]++
		if err := s.Insert(q, p, cell.Cell{Queue: cell.QueueID(q), Seq: p}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Pop(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreCAM measures the global CAM organization.
func BenchmarkStoreCAM(b *testing.B) {
	benchStore(b, NewCAM(1<<16, 64))
}

// BenchmarkStoreLinkedList measures the unified linked list.
func BenchmarkStoreLinkedList(b *testing.B) {
	ls, err := NewList(1<<16, 4, 8, 64)
	if err != nil {
		b.Fatal(err)
	}
	benchStore(b, ls)
}

// BenchmarkStorePartitioned measures the distributed organization.
func BenchmarkStorePartitioned(b *testing.B) {
	ps, err := NewPartitioned(64, 1024)
	if err != nil {
		b.Fatal(err)
	}
	benchStore(b, ps)
}
