package sram

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cell"
)

// newStores returns one of each organization with identical logical
// parameters, for running the same scenario against both.
func newStores(t *testing.T, capacity, blockCells, sublists int) []Store {
	t.Helper()
	ls, err := NewList(capacity, blockCells, sublists, 16)
	if err != nil {
		t.Fatal(err)
	}
	return []Store{NewCAM(capacity, 16), ls}
}

func TestInsertPopInOrder(t *testing.T) {
	for _, s := range newStores(t, 64, 2, 4) {
		name := storeName(s)
		q := cell.PhysQueueID(3)
		for pos := uint64(0); pos < 8; pos++ {
			if err := s.Insert(q, pos, cell.Cell{Queue: 3, Seq: pos}); err != nil {
				t.Fatalf("%s insert %d: %v", name, pos, err)
			}
		}
		if got := s.Len(q); got != 8 {
			t.Errorf("%s Len = %d, want 8", name, got)
		}
		for pos := uint64(0); pos < 8; pos++ {
			if !s.HasNext(q) {
				t.Fatalf("%s HasNext false at %d", name, pos)
			}
			c, err := s.Pop(q)
			if err != nil {
				t.Fatalf("%s pop %d: %v", name, pos, err)
			}
			if c.Seq != pos {
				t.Errorf("%s pop %d got seq %d", name, pos, c.Seq)
			}
		}
		if s.Total() != 0 {
			t.Errorf("%s Total = %d after draining", name, s.Total())
		}
		if s.HighWater() != 8 {
			t.Errorf("%s HighWater = %d, want 8", name, s.HighWater())
		}
	}
}

func storeName(s Store) string {
	switch s.(type) {
	case *CAMStore:
		return "CAM"
	case *ListStore:
		return "List"
	default:
		return "?"
	}
}

func TestOutOfOrderBlockInsert(t *testing.T) {
	// b=2, B/b=2: blocks 0,1,2,3 map to sublists 0,1,0,1. Delivering
	// block 1 (positions 2,3) before block 0 (positions 0,1) is legal
	// in both organizations (different banks).
	for _, s := range newStores(t, 64, 2, 2) {
		name := storeName(s)
		q := cell.PhysQueueID(0)
		for _, pos := range []uint64{2, 3} {
			if err := s.Insert(q, pos, cell.Cell{Seq: pos}); err != nil {
				t.Fatalf("%s insert block1: %v", name, err)
			}
		}
		if s.HasNext(q) {
			t.Errorf("%s HasNext true before position 0 arrives", name)
		}
		if _, err := s.Pop(q); !errors.Is(err, ErrMissing) {
			t.Errorf("%s pop err = %v, want ErrMissing", name, err)
		}
		for _, pos := range []uint64{0, 1} {
			if err := s.Insert(q, pos, cell.Cell{Seq: pos}); err != nil {
				t.Fatalf("%s insert block0: %v", name, err)
			}
		}
		for pos := uint64(0); pos < 4; pos++ {
			c, err := s.Pop(q)
			if err != nil || c.Seq != pos {
				t.Fatalf("%s pop %d = %v, %v", name, pos, c, err)
			}
		}
	}
}

func TestCapacityEnforced(t *testing.T) {
	for _, s := range newStores(t, 4, 1, 1) {
		name := storeName(s)
		for pos := uint64(0); pos < 4; pos++ {
			if err := s.Insert(0, pos, cell.Cell{Seq: pos}); err != nil {
				t.Fatalf("%s insert %d: %v", name, pos, err)
			}
		}
		if err := s.Insert(0, 4, cell.Cell{Seq: 4}); !errors.Is(err, ErrFull) {
			t.Errorf("%s overfull insert err = %v, want ErrFull", name, err)
		}
		// Freeing one slot admits one more.
		if _, err := s.Pop(0); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert(0, 4, cell.Cell{Seq: 4}); err != nil {
			t.Errorf("%s insert after pop: %v", name, err)
		}
		if got := s.Cap(); got != 4 {
			t.Errorf("%s Cap = %d, want 4", name, got)
		}
	}
}

func TestDuplicateInsert(t *testing.T) {
	for _, s := range newStores(t, 16, 2, 2) {
		name := storeName(s)
		if err := s.Insert(1, 0, cell.Cell{}); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert(1, 0, cell.Cell{}); !errors.Is(err, ErrDuplicate) {
			t.Errorf("%s duplicate err = %v, want ErrDuplicate", name, err)
		}
		// Re-inserting an already-popped position is also a duplicate.
		if err := s.Insert(1, 1, cell.Cell{Seq: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Pop(1); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert(1, 0, cell.Cell{}); !errors.Is(err, ErrDuplicate) {
			t.Errorf("%s popped-pos reinsert err = %v, want ErrDuplicate", name, err)
		}
	}
}

func TestListRejectsWithinBankDisorder(t *testing.T) {
	// b=1, two sublists: positions 0,2,4.. in sublist 0. Inserting
	// position 4 then position 2 violates the bank FIFO discipline.
	ls, err := NewList(16, 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Insert(0, 4, cell.Cell{Seq: 4}); err != nil {
		t.Fatal(err)
	}
	if err := ls.Insert(0, 2, cell.Cell{Seq: 2}); !errors.Is(err, ErrOrder) {
		t.Errorf("err = %v, want ErrOrder", err)
	}
}

func TestCAMAcceptsAnyOrder(t *testing.T) {
	// The CAM organization has no ordering discipline (§8.2 item i).
	s := NewCAM(16, 4)
	for _, pos := range []uint64{4, 2, 0, 3, 1} {
		if err := s.Insert(0, pos, cell.Cell{Seq: pos}); err != nil {
			t.Fatalf("insert %d: %v", pos, err)
		}
	}
	for want := uint64(0); want < 5; want++ {
		c, err := s.Pop(0)
		if err != nil || c.Seq != want {
			t.Fatalf("pop = %v, %v; want seq %d", c, err, want)
		}
	}
}

func TestNewListValidation(t *testing.T) {
	cases := [][3]int{{0, 1, 1}, {4, 0, 1}, {4, 1, 0}, {-1, 1, 1}}
	for _, c := range cases {
		if _, err := NewList(c[0], c[1], c[2], 4); err == nil {
			t.Errorf("NewList(%v) succeeded, want error", c)
		}
	}
}

func TestMultiQueueIsolation(t *testing.T) {
	for _, s := range newStores(t, 64, 2, 2) {
		name := storeName(s)
		for q := cell.PhysQueueID(0); q < 4; q++ {
			for pos := uint64(0); pos < 4; pos++ {
				c := cell.Cell{Queue: cell.QueueID(q), Seq: pos}
				if err := s.Insert(q, pos, c); err != nil {
					t.Fatal(err)
				}
			}
		}
		if got := s.Total(); got != 16 {
			t.Errorf("%s Total = %d, want 16", name, got)
		}
		// Draining one queue leaves the others intact and in order.
		for pos := uint64(0); pos < 4; pos++ {
			if _, err := s.Pop(2); err != nil {
				t.Fatal(err)
			}
		}
		if got := s.Len(2); got != 0 {
			t.Errorf("%s Len(2) = %d", name, got)
		}
		for q := cell.PhysQueueID(0); q < 4; q++ {
			if q == 2 {
				continue
			}
			if got := s.Len(q); got != 4 {
				t.Errorf("%s Len(%d) = %d, want 4", name, q, got)
			}
			c, ok := s.Peek(q)
			if !ok || c.Queue != cell.QueueID(q) || c.Seq != 0 {
				t.Errorf("%s Peek(%d) = %v, %v", name, q, c, ok)
			}
		}
	}
}

// TestEquivalenceCAMList drives both organizations with the same
// randomized — but bank-FIFO-respecting — block arrival and pop
// schedule and requires identical observable behaviour. This is the
// §8.2 claim that both designs implement the same buffer.
func TestEquivalenceCAMList(t *testing.T) {
	const (
		queues     = 5
		blockCell  = 2
		sublists   = 4
		blocksPerQ = 12
		capacity   = queues * blockCell * blocksPerQ
	)
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cam := NewCAM(capacity, queues)
		ls, err := NewList(capacity, blockCell, sublists, queues)
		if err != nil {
			t.Fatal(err)
		}

		// nextBlock[q][s] is the next block ordinal of queue q destined
		// for sublist s that has not yet been delivered.
		type key struct{ q, s int }
		nextBlock := make(map[key]uint64)
		remaining := make(map[key]int)
		var keys []key
		for q := 0; q < queues; q++ {
			for s := 0; s < sublists; s++ {
				k := key{q, s}
				nextBlock[k] = uint64(s)
				remaining[k] = blocksPerQ / sublists
				keys = append(keys, k)
			}
		}
		popped := make([]uint64, queues)
		totalOps := queues * blocksPerQ

		for done := 0; done < totalOps; {
			if rng.Intn(2) == 0 {
				// Deliver the next block of a random (queue, sublist).
				k := keys[rng.Intn(len(keys))]
				if remaining[k] == 0 {
					continue
				}
				blk := nextBlock[k]
				for i := 0; i < blockCell; i++ {
					pos := blk*uint64(blockCell) + uint64(i)
					c := cell.Cell{Queue: cell.QueueID(k.q), Seq: pos}
					if err := cam.Insert(cell.PhysQueueID(k.q), pos, c); err != nil {
						t.Fatalf("seed %d cam insert: %v", seed, err)
					}
					if err := ls.Insert(cell.PhysQueueID(k.q), pos, c); err != nil {
						t.Fatalf("seed %d list insert: %v", seed, err)
					}
				}
				nextBlock[k] = blk + uint64(sublists)
				remaining[k]--
				done++
			} else {
				// Pop from a random queue; both stores must agree on
				// availability and content.
				q := cell.PhysQueueID(rng.Intn(queues))
				if cam.HasNext(q) != ls.HasNext(q) {
					t.Fatalf("seed %d: HasNext(%d) disagree: cam=%v list=%v",
						seed, q, cam.HasNext(q), ls.HasNext(q))
				}
				if !cam.HasNext(q) {
					continue
				}
				c1, err1 := cam.Pop(q)
				c2, err2 := ls.Pop(q)
				if err1 != nil || err2 != nil {
					t.Fatalf("seed %d pops: %v / %v", seed, err1, err2)
				}
				if c1 != c2 {
					t.Fatalf("seed %d: pop mismatch %v vs %v", seed, c1, c2)
				}
				if c1.Seq != popped[q] {
					t.Fatalf("seed %d: queue %d delivered seq %d, want %d",
						seed, q, c1.Seq, popped[q])
				}
				popped[q]++
			}
			if cam.Total() != ls.Total() {
				t.Fatalf("seed %d: totals diverge %d vs %d", seed, cam.Total(), ls.Total())
			}
		}
	}
}

func TestListSlabReuse(t *testing.T) {
	// Churn through many more cells than the capacity to exercise the
	// free list.
	ls, err := NewList(8, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for pos := uint64(0); pos < 1000; pos++ {
		if err := ls.Insert(0, pos, cell.Cell{Seq: pos}); err != nil {
			t.Fatalf("insert %d: %v", pos, err)
		}
		c, err := ls.Pop(0)
		if err != nil || c.Seq != pos {
			t.Fatalf("pop %d: %v %v", pos, c, err)
		}
	}
	if ls.Total() != 0 {
		t.Errorf("Total = %d", ls.Total())
	}
	if ls.HighWater() != 1 {
		t.Errorf("HighWater = %d, want 1", ls.HighWater())
	}
}
