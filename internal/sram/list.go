package sram

import (
	"fmt"

	"repro/internal/cell"
)

// nilIdx marks an empty slab pointer.
const nilIdx int32 = -1

// entry is one slot of the unified linked-list slab: a cell plus the
// pointer field to the next entry of the same sublist.
type entry struct {
	c    cell.Cell
	pos  uint64
	next int32
}

// listQueue is the per-queue bookkeeping of the linked-list
// organization: the resident-cell count and the global pop cursor. The
// per-sublist head/tail pointers and ordering state live in the
// store's flattened arrays (queue ordinal × sublists + sublist index),
// so adding a queue is one slice grow, not a per-queue allocation.
type listQueue struct {
	count   int
	nextPop uint64
}

// ListStore is the unified linked-list organization (§7.1): a
// direct-mapped slab where each entry holds one cell and a pointer to
// the next, plus a head/tail pointer table per list. For CFDS the
// store keeps Q·(B/b) sublists — one per (queue, bank-of-group) — so
// that out-of-order block delivery across banks never requires
// mid-list insertion (§8.2 item ii): within one bank, operations are
// strictly ordered, so each sublist grows FIFO.
//
// The slab free list is intrusive (threaded through the entries'
// next pointers), and all per-queue state is slice-indexed by the
// physical queue ordinal.
type ListStore struct {
	slab     []entry
	freeHead int32
	queues   []listQueue
	// head/tail/lastPos/seeded are indexed by q*sublists + sublist.
	// lastPos tracks the highest position inserted into a sublist, to
	// enforce the §8.2 in-order-per-bank discipline; seeded records
	// whether the sublist has received any cell yet.
	head, tail []int32
	lastPos    []uint64
	seeded     []bool
	sublists   int
	blockCell  int
	total      int
	highWater  int
}

var _ Store = (*ListStore)(nil)

// NewList returns a ListStore with the given capacity in cells,
// blockCells = b (cells per block), sublists = B/b (banks per group)
// and queues physical queue ordinals. capacity must be positive: a
// linked list is a physical slab.
func NewList(capacity, blockCells, sublists, queues int) (*ListStore, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("sram: list capacity must be positive, got %d", capacity)
	}
	if blockCells <= 0 {
		return nil, fmt.Errorf("sram: blockCells must be positive, got %d", blockCells)
	}
	if sublists <= 0 {
		return nil, fmt.Errorf("sram: sublists must be positive, got %d", sublists)
	}
	if queues < 0 {
		return nil, fmt.Errorf("sram: queues must be non-negative, got %d", queues)
	}
	s := &ListStore{
		slab:      make([]entry, capacity),
		queues:    make([]listQueue, queues),
		head:      make([]int32, queues*sublists),
		tail:      make([]int32, queues*sublists),
		lastPos:   make([]uint64, queues*sublists),
		seeded:    make([]bool, queues*sublists),
		sublists:  sublists,
		blockCell: blockCells,
	}
	for i := range s.head {
		s.head[i], s.tail[i] = nilIdx, nilIdx
	}
	// Thread the free list through the slab.
	for i := range s.slab {
		s.slab[i].next = int32(i + 1)
	}
	s.slab[capacity-1].next = nilIdx
	s.freeHead = 0
	return s, nil
}

func (s *ListStore) queue(q cell.PhysQueueID) *listQueue {
	for int(q) >= len(s.queues) {
		s.queues = append(s.queues, listQueue{})
		for i := 0; i < s.sublists; i++ {
			s.head = append(s.head, nilIdx)
			s.tail = append(s.tail, nilIdx)
			s.lastPos = append(s.lastPos, 0)
			s.seeded = append(s.seeded, false)
		}
	}
	return &s.queues[q]
}

// sublistFor returns the flattened sublist index for stream position
// pos of queue q: block ordinal mod (B/b), mirroring the block-cyclic
// bank interleave.
func (s *ListStore) sublistFor(q cell.PhysQueueID, pos uint64) int {
	return int(q)*s.sublists + int((pos/uint64(s.blockCell))%uint64(s.sublists))
}

// Insert implements Store. Within one sublist, positions must arrive
// in increasing order (the bank FIFO discipline); violating that
// returns ErrOrder.
func (s *ListStore) Insert(q cell.PhysQueueID, pos uint64, c cell.Cell) error {
	if s.freeHead == nilIdx {
		return fmt.Errorf("%w: capacity %d", ErrFull, len(s.slab))
	}
	st := s.queue(q)
	if pos < st.nextPop {
		return fmt.Errorf("%w: queue %d pos %d already popped", ErrDuplicate, q, pos)
	}
	li := s.sublistFor(q, pos)
	if s.seeded[li] && pos <= s.lastPos[li] {
		if pos == s.lastPos[li] {
			return fmt.Errorf("%w: queue %d pos %d", ErrDuplicate, q, pos)
		}
		return fmt.Errorf("%w: queue %d pos %d after %d in sublist %d",
			ErrOrder, q, pos, s.lastPos[li], li%s.sublists)
	}

	// Take a slab entry from the free list.
	idx := s.freeHead
	s.freeHead = s.slab[idx].next
	s.slab[idx] = entry{c: c, pos: pos, next: nilIdx}

	if s.tail[li] == nilIdx {
		s.head[li] = idx
	} else {
		s.slab[s.tail[li]].next = idx
	}
	s.tail[li] = idx
	s.lastPos[li] = pos
	s.seeded[li] = true
	st.count++
	s.total++
	if s.total > s.highWater {
		s.highWater = s.total
	}
	return nil
}

// Pop implements Store.
func (s *ListStore) Pop(q cell.PhysQueueID) (cell.Cell, error) {
	st := s.queue(q)
	li := s.sublistFor(q, st.nextPop)
	idx := s.head[li]
	if idx == nilIdx || s.slab[idx].pos != st.nextPop {
		return cell.Cell{}, fmt.Errorf("%w: queue %d pos %d", ErrMissing, q, st.nextPop)
	}
	c := s.slab[idx].c
	s.head[li] = s.slab[idx].next
	if s.head[li] == nilIdx {
		s.tail[li] = nilIdx
	}
	// Return the entry to the free list.
	s.slab[idx] = entry{next: s.freeHead}
	s.freeHead = idx

	st.nextPop++
	st.count--
	s.total--
	return c, nil
}

// Peek implements Store.
func (s *ListStore) Peek(q cell.PhysQueueID) (cell.Cell, bool) {
	st := s.queue(q)
	li := s.sublistFor(q, st.nextPop)
	idx := s.head[li]
	if idx == nilIdx || s.slab[idx].pos != st.nextPop {
		return cell.Cell{}, false
	}
	return s.slab[idx].c, true
}

// HasNext implements Store.
func (s *ListStore) HasNext(q cell.PhysQueueID) bool {
	_, ok := s.Peek(q)
	return ok
}

// Len implements Store.
func (s *ListStore) Len(q cell.PhysQueueID) int { return s.queue(q).count }

// Total implements Store.
func (s *ListStore) Total() int { return s.total }

// Cap implements Store.
func (s *ListStore) Cap() int { return len(s.slab) }

// HighWater implements Store.
func (s *ListStore) HighWater() int { return s.highWater }
