package sram

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cell"
)

func TestNewPartitionedValidation(t *testing.T) {
	if _, err := NewPartitioned(0, 4); err == nil {
		t.Error("queues=0 accepted")
	}
	if _, err := NewPartitioned(4, 0); err == nil {
		t.Error("perQueue=0 accepted")
	}
	p, err := NewPartitioned(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cap() != 32 || p.PerQueue() != 8 {
		t.Errorf("Cap=%d PerQueue=%d", p.Cap(), p.PerQueue())
	}
}

func TestPartitionedBasicFIFO(t *testing.T) {
	s, _ := NewPartitioned(2, 4)
	for pos := uint64(0); pos < 4; pos++ {
		if err := s.Insert(1, pos, cell.Cell{Queue: 1, Seq: pos}); err != nil {
			t.Fatal(err)
		}
	}
	for pos := uint64(0); pos < 4; pos++ {
		c, err := s.Pop(1)
		if err != nil || c.Seq != pos {
			t.Fatalf("pop %d = %v, %v", pos, c, err)
		}
	}
	if s.Total() != 0 || s.HighWater() != 4 {
		t.Errorf("Total=%d HighWater=%d", s.Total(), s.HighWater())
	}
}

func TestPartitionedIsolationCost(t *testing.T) {
	// The §7.1 point: one hot queue overflows its partition while the
	// array is otherwise empty; a shared store of identical total
	// capacity absorbs the same burst.
	const queues, perQueue = 4, 4
	part, _ := NewPartitioned(queues, perQueue)
	shared := NewCAM(queues*perQueue, queues)

	var partErr error
	accepted := 0
	for pos := uint64(0); pos < queues*perQueue; pos++ {
		c := cell.Cell{Queue: 0, Seq: pos}
		if err := shared.Insert(0, pos, c); err != nil {
			t.Fatalf("shared store rejected cell %d: %v", pos, err)
		}
		if partErr == nil {
			if partErr = part.Insert(0, pos, c); partErr == nil {
				accepted++
			}
		}
	}
	if !errors.Is(partErr, ErrFull) {
		t.Fatalf("partitioned err = %v, want ErrFull", partErr)
	}
	if accepted != perQueue {
		t.Errorf("partitioned accepted %d, want %d (its share)", accepted, perQueue)
	}
}

func TestPartitionedWindowWraps(t *testing.T) {
	// The circular buffer reuses slots as the window advances.
	s, _ := NewPartitioned(1, 2)
	for pos := uint64(0); pos < 100; pos++ {
		if err := s.Insert(0, pos, cell.Cell{Seq: pos}); err != nil {
			t.Fatalf("insert %d: %v", pos, err)
		}
		c, err := s.Pop(0)
		if err != nil || c.Seq != pos {
			t.Fatalf("pop %d: %v %v", pos, c, err)
		}
	}
}

func TestPartitionedOutOfOrderWithinWindow(t *testing.T) {
	s, _ := NewPartitioned(1, 4)
	// Insert 2,3 then 0,1 — all inside the window of 4.
	for _, pos := range []uint64{2, 3} {
		if err := s.Insert(0, pos, cell.Cell{Seq: pos}); err != nil {
			t.Fatal(err)
		}
	}
	if s.HasNext(0) {
		t.Error("HasNext before pos 0")
	}
	if _, err := s.Pop(0); !errors.Is(err, ErrMissing) {
		t.Errorf("err = %v", err)
	}
	for _, pos := range []uint64{0, 1} {
		if err := s.Insert(0, pos, cell.Cell{Seq: pos}); err != nil {
			t.Fatal(err)
		}
	}
	for pos := uint64(0); pos < 4; pos++ {
		c, err := s.Pop(0)
		if err != nil || c.Seq != pos {
			t.Fatalf("pop %d: %v %v", pos, c, err)
		}
	}
}

func TestPartitionedDuplicateAndStale(t *testing.T) {
	s, _ := NewPartitioned(1, 4)
	if err := s.Insert(0, 1, cell.Cell{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 1, cell.Cell{Seq: 1}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup err = %v", err)
	}
	if err := s.Insert(0, 0, cell.Cell{Seq: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pop(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 0, cell.Cell{}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("stale err = %v", err)
	}
}

// TestPartitionedEquivalenceWithCAM: within per-queue windows, the
// partitioned store behaves exactly like the shared CAM.
func TestPartitionedEquivalenceWithCAM(t *testing.T) {
	const queues, perQueue = 3, 4
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		part, _ := NewPartitioned(queues, perQueue)
		cam := NewCAM(queues*perQueue, queues)
		inserted := make([]uint64, queues)
		popped := make([]uint64, queues)
		for op := 0; op < 400; op++ {
			q := cell.PhysQueueID(rng.Intn(queues))
			if rng.Intn(2) == 0 && inserted[q] < popped[q]+uint64(perQueue) {
				pos := inserted[q]
				inserted[q]++
				c := cell.Cell{Queue: cell.QueueID(q), Seq: pos}
				if err := part.Insert(q, pos, c); err != nil {
					t.Fatalf("seed %d: part insert: %v", seed, err)
				}
				if err := cam.Insert(q, pos, c); err != nil {
					t.Fatalf("seed %d: cam insert: %v", seed, err)
				}
			} else {
				if part.HasNext(q) != cam.HasNext(q) {
					t.Fatalf("seed %d: HasNext diverges", seed)
				}
				if !part.HasNext(q) {
					continue
				}
				c1, e1 := part.Pop(q)
				c2, e2 := cam.Pop(q)
				if e1 != nil || e2 != nil || c1 != c2 {
					t.Fatalf("seed %d: pops diverge: %v/%v %v/%v", seed, c1, e1, c2, e2)
				}
				popped[q]++
			}
			if part.Total() != cam.Total() {
				t.Fatalf("seed %d: totals diverge", seed)
			}
		}
	}
}
