package sram

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/frame"
)

// Snapshot/Restore serialize the resident-cell state of a store
// through the trace frame codec. The arena geometry (capacity,
// sublist count, block size) is reconstructed by the owner from its
// configuration; only the occupancy — pop cursors, live cells keyed by
// stream position, ordering state and the high-water statistic — is
// framed. Restore assumes a freshly constructed store of the same
// geometry and replays the cells through Insert, so every internal
// index (ring windows, slab links, free list) is rebuilt rather than
// serialized; per-sublist ordering cursors are restored verbatim
// because they outlive the cells that set them.

// Snapshot writes the CAM occupancy.
func (s *CAMStore) Snapshot(w *frame.Writer) {
	live := 0
	for q := range s.queues {
		if st := &s.queues[q]; st.count > 0 || st.nextPop > 0 {
			live++
		}
	}
	w.Begin("sram-cam")
	w.Attr("queues", int64(live))
	w.Attr("total", int64(s.total))
	w.Attr("highwater", int64(s.highWater))
	for q := range s.queues {
		st := &s.queues[q]
		if st.count == 0 && st.nextPop == 0 {
			continue
		}
		w.Begin("sram-cam-queue")
		w.Attr("q", int64(q))
		w.Attr("nextpop", int64(st.nextPop))
		w.Attr("count", int64(st.count))
		for p := st.nextPop; p < st.nextPop+uint64(len(st.cells)); p++ {
			if slot := p & uint64(len(st.cells)-1); st.present[slot] {
				c := st.cells[slot]
				w.Row(int64(p), int64(c.Queue), int64(c.Seq))
			}
		}
	}
}

// Restore loads a snapshot written by Snapshot into a freshly
// constructed store of the same geometry.
func (s *CAMStore) Restore(r *frame.Reader) error {
	if err := r.Expect("sram-cam"); err != nil {
		return err
	}
	nq, err := r.NeedAttr("queues")
	if err != nil {
		return err
	}
	total, err := r.NeedAttr("total")
	if err != nil {
		return err
	}
	hw, err := r.NeedAttr("highwater")
	if err != nil {
		return err
	}
	for i := int64(0); i < nq; i++ {
		if err := r.Expect("sram-cam-queue"); err != nil {
			return err
		}
		q, err := r.NeedAttr("q")
		if err != nil {
			return err
		}
		nextPop, err := r.NeedAttr("nextpop")
		if err != nil {
			return err
		}
		count, err := r.NeedAttr("count")
		if err != nil {
			return err
		}
		st := s.queue(cell.PhysQueueID(q))
		st.nextPop = uint64(nextPop)
		for j := int64(0); j < count; j++ {
			row, err := r.NeedRow(3)
			if err != nil {
				return err
			}
			c := cell.Cell{Queue: cell.QueueID(row[1]), Seq: uint64(row[2])}
			if err := s.Insert(cell.PhysQueueID(q), uint64(row[0]), c); err != nil {
				return fmt.Errorf("sram: restore cam queue %d: %w", q, err)
			}
		}
	}
	if s.total != int(total) {
		return fmt.Errorf("%w: cam total %d, snapshot says %d", frame.ErrFrame, s.total, total)
	}
	s.highWater = int(hw)
	return nil
}

// Snapshot writes the linked-list occupancy.
func (s *ListStore) Snapshot(w *frame.Writer) {
	live := 0
	for q := range s.queues {
		if st := &s.queues[q]; st.count > 0 || st.nextPop > 0 {
			live++
		}
	}
	seeded := 0
	for _, ok := range s.seeded {
		if ok {
			seeded++
		}
	}
	w.Begin("sram-list")
	w.Attr("queues", int64(live))
	w.Attr("seeded", int64(seeded))
	w.Attr("total", int64(s.total))
	w.Attr("highwater", int64(s.highWater))
	for q := range s.queues {
		st := &s.queues[q]
		if st.count == 0 && st.nextPop == 0 {
			continue
		}
		w.Begin("sram-list-queue")
		w.Attr("q", int64(q))
		w.Attr("nextpop", int64(st.nextPop))
		w.Attr("count", int64(st.count))
		// Walk each sublist head-to-tail: positions increase within a
		// sublist, which is exactly the order Insert requires on replay.
		for li := q * s.sublists; li < (q+1)*s.sublists; li++ {
			for idx := s.head[li]; idx != nilIdx; idx = s.slab[idx].next {
				e := &s.slab[idx]
				w.Row(int64(e.pos), int64(e.c.Queue), int64(e.c.Seq))
			}
		}
	}
	// Ordering cursors survive their cells: a drained sublist still
	// rejects stale positions, and restore must preserve that.
	w.Begin("sram-list-sub")
	for li, ok := range s.seeded {
		if ok {
			w.Row(int64(li), int64(s.lastPos[li]))
		}
	}
}

// Restore loads a snapshot written by Snapshot into a freshly
// constructed store of the same geometry.
func (s *ListStore) Restore(r *frame.Reader) error {
	if err := r.Expect("sram-list"); err != nil {
		return err
	}
	nq, err := r.NeedAttr("queues")
	if err != nil {
		return err
	}
	seeded, err := r.NeedAttr("seeded")
	if err != nil {
		return err
	}
	total, err := r.NeedAttr("total")
	if err != nil {
		return err
	}
	hw, err := r.NeedAttr("highwater")
	if err != nil {
		return err
	}
	for i := int64(0); i < nq; i++ {
		if err := r.Expect("sram-list-queue"); err != nil {
			return err
		}
		q, err := r.NeedAttr("q")
		if err != nil {
			return err
		}
		nextPop, err := r.NeedAttr("nextpop")
		if err != nil {
			return err
		}
		count, err := r.NeedAttr("count")
		if err != nil {
			return err
		}
		st := s.queue(cell.PhysQueueID(q))
		st.nextPop = uint64(nextPop)
		for j := int64(0); j < count; j++ {
			row, err := r.NeedRow(3)
			if err != nil {
				return err
			}
			c := cell.Cell{Queue: cell.QueueID(row[1]), Seq: uint64(row[2])}
			if err := s.Insert(cell.PhysQueueID(q), uint64(row[0]), c); err != nil {
				return fmt.Errorf("sram: restore list queue %d: %w", q, err)
			}
		}
	}
	if s.total != int(total) {
		return fmt.Errorf("%w: list total %d, snapshot says %d", frame.ErrFrame, s.total, total)
	}
	if err := r.Expect("sram-list-sub"); err != nil {
		return err
	}
	for i := int64(0); i < seeded; i++ {
		row, err := r.NeedRow(2)
		if err != nil {
			return err
		}
		li := int(row[0])
		if li < 0 || li >= len(s.seeded) {
			return fmt.Errorf("%w: list sublist %d out of range", frame.ErrFrame, li)
		}
		s.seeded[li] = true
		s.lastPos[li] = uint64(row[1])
	}
	s.highWater = int(hw)
	return nil
}
