// Package sram implements the shared head/tail SRAM buffer
// organizations of §7.1 and §8.2: the global CAM (targeted at
// shortest access time) and the unified linked list (targeted at
// minimum area, time-multiplexed).
//
// Both organizations store cells of many physical queues in one shared
// memory and must support, for CFDS, *out-of-order insertion*: the
// DRAM scheduler may deliver blocks of one queue out of their natural
// order (§8.2). A cell's position in its queue's stream is therefore
// an explicit insertion key (`pos`); Pop always returns the next
// in-order cell.
//
// Per-queue bookkeeping is held in dense slices indexed by the
// physical queue ordinal (physical names are dense by construction:
// the renaming table of §6 hands out register-bounded ordinals). The
// stores grow their arenas on first contact with an ordinal beyond the
// constructed size, so growth is amortized and off the steady-state
// path.
//
// The two implementations are functionally equivalent (see the
// equivalence property test); they differ only in the hardware cost
// model (internal/cacti) and in the ordering discipline they require:
// the linked list relies on per-bank FIFO delivery (§8.2 implements
// Q·(B/b) sublists because "two operations over the same bank are
// always performed in strict order").
package sram

import (
	"errors"
	"fmt"

	"repro/internal/cell"
)

// Errors returned by the stores.
var (
	ErrFull      = errors.New("sram: store is full")
	ErrDuplicate = errors.New("sram: cell position already present")
	ErrMissing   = errors.New("sram: next in-order cell not present")
	ErrOrder     = errors.New("sram: out-of-order insertion within a bank sublist")
)

// Store is a shared SRAM buffer holding cells of many physical queues.
//
// Insert adds a cell at stream position pos of queue q (pos is the
// cell's 0-based ordinal in the queue's lifetime stream: block
// ordinal × b + offset). Positions may arrive out of order subject to
// the implementation's discipline. Pop removes and returns the cell at
// the queue's next unread position; HasNext reports whether Pop would
// succeed. Popped positions advance strictly one at a time.
type Store interface {
	Insert(q cell.PhysQueueID, pos uint64, c cell.Cell) error
	Pop(q cell.PhysQueueID) (cell.Cell, error)
	// Peek returns the next in-order cell without removing it.
	Peek(q cell.PhysQueueID) (cell.Cell, bool)
	// HasNext reports whether the next in-order cell of q is resident.
	HasNext(q cell.PhysQueueID) bool
	// Len returns the number of resident cells of q.
	Len(q cell.PhysQueueID) int
	// Total returns the number of resident cells across all queues.
	Total() int
	// Cap returns the store capacity in cells (0 = unbounded).
	Cap() int
	// HighWater returns the maximum Total ever observed, for
	// validating the dimensioning formulas.
	HighWater() int
}

// camQueue is the per-queue state of the CAM organization. The cells
// ring is indexed by stream position (not a queue identifier),
// mirroring the associative tag lookup of the hardware: the tag is
// (queue, position), and since positions of one queue are consumed
// strictly in order, the live tags always fall in the window
// [nextPop, nextPop+len(cells)), so a power-of-two ring addressed by
// pos&(len-1) resolves the lookup in O(1) without hashing.
type camQueue struct {
	cells   []cell.Cell
	present []bool
	nextPop uint64
	count   int
}

// ensure grows the ring until position pos fits in the window
// starting at nextPop, re-placing resident cells by their position.
func (st *camQueue) ensure(pos uint64) {
	need := pos - st.nextPop + 1
	size := uint64(len(st.cells))
	if size >= need {
		return
	}
	if size == 0 {
		size = 8
	}
	for size < need {
		size <<= 1
	}
	cells := make([]cell.Cell, size)
	present := make([]bool, size)
	oldMask := uint64(len(st.cells) - 1)
	newMask := size - 1
	for p := st.nextPop; p < st.nextPop+uint64(len(st.cells)); p++ {
		if st.present[p&oldMask] {
			cells[p&newMask] = st.cells[p&oldMask]
			present[p&newMask] = true
		}
	}
	st.cells = cells
	st.present = present
}

// CAMStore is the global content-addressable organization (§7.1):
// every cell carries a tag (queue identifier and relative order); a
// lookup searches all entries. Functionally this is an associative map
// keyed by (queue, position). Out-of-order insertion is trivial
// because the order is part of the tag (§8.2 item i).
type CAMStore struct {
	queues    []camQueue
	capacity  int
	total     int
	highWater int
}

var _ Store = (*CAMStore)(nil)

// NewCAM returns a CAMStore with the given capacity in cells
// (0 = unbounded) serving queues physical queue ordinals.
func NewCAM(capacity, queues int) *CAMStore {
	if queues < 0 {
		queues = 0
	}
	return &CAMStore{queues: make([]camQueue, queues), capacity: capacity}
}

func (s *CAMStore) queue(q cell.PhysQueueID) *camQueue {
	for int(q) >= len(s.queues) {
		s.queues = append(s.queues, camQueue{})
	}
	return &s.queues[q]
}

// Insert implements Store.
//
//pktbuf:hotpath
func (s *CAMStore) Insert(q cell.PhysQueueID, pos uint64, c cell.Cell) error {
	if s.capacity > 0 && s.total >= s.capacity {
		return fmt.Errorf("%w: capacity %d", ErrFull, s.capacity) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
	}
	st := s.queue(q)
	if pos < st.nextPop {
		return fmt.Errorf("%w: queue %d pos %d already popped", ErrDuplicate, q, pos) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
	}
	st.ensure(pos)
	slot := pos & uint64(len(st.cells)-1)
	if st.present[slot] {
		return fmt.Errorf("%w: queue %d pos %d", ErrDuplicate, q, pos) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
	}
	st.cells[slot] = c
	st.present[slot] = true
	st.count++
	s.total++
	if s.total > s.highWater {
		s.highWater = s.total
	}
	return nil
}

// Pop implements Store.
//
//pktbuf:hotpath
func (s *CAMStore) Pop(q cell.PhysQueueID) (cell.Cell, error) {
	st := s.queue(q)
	if st.count == 0 {
		return cell.Cell{}, fmt.Errorf("%w: queue %d pos %d", ErrMissing, q, st.nextPop) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
	}
	slot := st.nextPop & uint64(len(st.cells)-1)
	if !st.present[slot] {
		return cell.Cell{}, fmt.Errorf("%w: queue %d pos %d", ErrMissing, q, st.nextPop) //pktbuf:allow hotpath-noalloc cold invariant-violation path; allocates only when the slot already failed
	}
	c := st.cells[slot]
	st.present[slot] = false
	st.nextPop++
	st.count--
	s.total--
	return c, nil
}

// Peek implements Store.
//
//pktbuf:hotpath
func (s *CAMStore) Peek(q cell.PhysQueueID) (cell.Cell, bool) {
	st := s.queue(q)
	if st.count == 0 {
		return cell.Cell{}, false
	}
	slot := st.nextPop & uint64(len(st.cells)-1)
	if !st.present[slot] {
		return cell.Cell{}, false
	}
	return st.cells[slot], true
}

// HasNext implements Store.
//
//pktbuf:hotpath
func (s *CAMStore) HasNext(q cell.PhysQueueID) bool {
	_, ok := s.Peek(q)
	return ok
}

// Len implements Store.
func (s *CAMStore) Len(q cell.PhysQueueID) int { return s.queue(q).count }

// Total implements Store.
func (s *CAMStore) Total() int { return s.total }

// Cap implements Store.
func (s *CAMStore) Cap() int { return s.capacity }

// HighWater implements Store.
func (s *CAMStore) HighWater() int { return s.highWater }
