package mma

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
)

func TestNewLookaheadValidation(t *testing.T) {
	if _, err := NewLookahead(0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewLookahead(-3); err == nil {
		t.Error("negative size accepted")
	}
	l, err := NewLookahead(4)
	if err != nil || l.Size() != 4 {
		t.Fatalf("NewLookahead(4) = %v, %v", l, err)
	}
}

func TestLookaheadShiftPipeline(t *testing.T) {
	l, _ := NewLookahead(3)
	// Initially idle: first three shifts return NoPhysQueue.
	in := []cell.PhysQueueID{10, 11, 12, 13, cell.NoPhysQueue, 14}
	want := []cell.PhysQueueID{
		cell.NoPhysQueue, cell.NoPhysQueue, cell.NoPhysQueue, 10, 11, 12,
	}
	for i, q := range in {
		if got := l.Shift(q); got != want[i] {
			t.Errorf("shift %d: out = %d, want %d", i, got, want[i])
		}
	}
	// Remaining contents head-to-tail: 13, NoPhysQueue, 14.
	if l.At(0) != 13 || l.At(1) != cell.NoPhysQueue || l.At(2) != 14 {
		t.Errorf("contents = %d,%d,%d", l.At(0), l.At(1), l.At(2))
	}
	if got := l.Pending(); got != 2 {
		t.Errorf("Pending = %d, want 2", got)
	}
}

func TestLookaheadScanOrderAndEarlyStop(t *testing.T) {
	l, _ := NewLookahead(4)
	for _, q := range []cell.PhysQueueID{1, 2, 3, 4} {
		l.Shift(q)
	}
	var seen []cell.PhysQueueID
	l.Scan(func(i int, q cell.PhysQueueID) bool {
		seen = append(seen, q)
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 2 || seen[2] != 3 {
		t.Errorf("scan saw %v", seen)
	}
}

func TestLookaheadPendingProperty(t *testing.T) {
	// Property: Pending always equals the count of non-idle entries.
	f := func(ops []uint8) bool {
		l, _ := NewLookahead(8)
		for _, op := range ops {
			if op%3 == 0 {
				l.Shift(cell.NoPhysQueue)
			} else {
				l.Shift(cell.PhysQueueID(op % 5))
			}
			n := 0
			l.Scan(func(_ int, q cell.PhysQueueID) bool {
				if q != cell.NoPhysQueue {
					n++
				}
				return true
			})
			if n != l.Pending() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func allEligible(cell.PhysQueueID) bool { return true }

func TestECQFPaperExample(t *testing.T) {
	// §3's worked example: Q=4, b=3, L=6; lookahead (head to tail)
	// = 3,3,1,1,1,6 wait — Figure 3 shows lookahead "3 3 1 1 1 6" read
	// with occupancies Q1=2, Q2=2, Q3=2, Q4=... The text: with
	// occupancy counters and lookahead as shown, the MMA should select
	// queue 1: scanning, queue 3 loses 2 (occ 2->0), queue 1 loses 3
	// (occ 2 -> -1) => queue 1 critical first.
	look, _ := NewLookahead(6)
	e, err := NewECQF(look, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Occupancies from Figure 3: Q1=2, Q2=2, Q3=2, Q4=0 (absent).
	e.setOcc(1, 2)
	e.setOcc(2, 2)
	e.setOcc(3, 2)
	// Lookahead contents head->tail: 3,3,1,1,1,6. Entry order into the
	// shift register is the same (oldest first).
	for _, q := range []cell.PhysQueueID{3, 3, 1, 1, 1, 6} {
		look.Shift(q)
	}
	q, ok := e.Select(allEligible)
	if !ok || q != 1 {
		t.Errorf("Select = %d, %v; want queue 1 (paper example)", q, ok)
	}
}

func TestECQFCountsAndCriticality(t *testing.T) {
	look, _ := NewLookahead(4)
	e, _ := NewECQF(look, 2, 16)
	// No requests: nothing critical.
	if _, ok := e.Select(allEligible); ok {
		t.Error("empty lookahead selected a queue")
	}
	// Queue 7 has 0 occupancy and one pending request: critical.
	look.Shift(7)
	q, ok := e.Select(allEligible)
	if !ok || q != 7 {
		t.Errorf("Select = %d, %v; want 7", q, ok)
	}
	// After replenishing (occ 0+2=2), one request is covered.
	e.OnReplenish(7)
	if _, ok := e.Select(allEligible); ok {
		t.Error("covered queue still critical")
	}
	// Two more requests make it critical again (3 pending > 2 occ).
	look.Shift(7)
	look.Shift(7)
	if q, ok := e.Select(allEligible); !ok || q != 7 {
		t.Errorf("Select = %d, %v; want 7 again", q, ok)
	}
}

func TestECQFSkipsIneligibleCritical(t *testing.T) {
	look, _ := NewLookahead(4)
	e, _ := NewECQF(look, 2, 16)
	look.Shift(1)
	look.Shift(2)
	// Queue 1 critical first but ineligible; queue 2 must be chosen.
	notOne := func(q cell.PhysQueueID) bool { return q != 1 }
	q, ok := e.Select(notOne)
	if !ok || q != 2 {
		t.Errorf("Select = %d, %v; want 2", q, ok)
	}
}

func TestECQFIdlesWithoutCriticality(t *testing.T) {
	look, _ := NewLookahead(4)
	e, _ := NewECQF(look, 4, 16)
	// One pending request, occupancy 2: not critical (2-1 >= 0), so
	// the MMA must idle rather than inflate the SRAM.
	e.OnReplenish(5) // occ 4
	e.OnRequestLeave(5)
	e.OnRequestLeave(5) // occ 2
	look.Shift(5)
	if q, ok := e.Select(allEligible); ok {
		t.Errorf("Select = %d without criticality", q)
	}
}

func TestECQFLedger(t *testing.T) {
	look, _ := NewLookahead(2)
	e, _ := NewECQF(look, 3, 16)
	e.OnReplenish(9)
	e.OnReplenish(9)
	e.OnRequestLeave(9)
	if got := e.Occupancy(9); got != 5 {
		t.Errorf("Occupancy = %d, want 5", got)
	}
	e.OnRequestEnter(9) // no-op for ECQF
	if got := e.Occupancy(9); got != 5 {
		t.Errorf("Occupancy after enter = %d, want 5", got)
	}
}

func TestNewECQFValidation(t *testing.T) {
	look, _ := NewLookahead(2)
	if _, err := NewECQF(nil, 2, 16); err == nil {
		t.Error("nil lookahead accepted")
	}
	if _, err := NewECQF(look, 0, 16); err == nil {
		t.Error("zero granularity accepted")
	}
}

func TestMDQFSelectsDeepestDeficit(t *testing.T) {
	m, err := NewMDQF(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	m.OnRequestEnter(1) // occ -1
	m.OnRequestEnter(2)
	m.OnRequestEnter(2) // occ -2
	m.OnRequestEnter(3)
	m.OnReplenish(3) // occ +1: not in deficit, never selected
	q, ok := m.Select(allEligible)
	if !ok || q != 2 {
		t.Errorf("Select = %d, %v; want 2", q, ok)
	}
	// Eligibility veto falls through to the next deepest.
	q, ok = m.Select(func(q cell.PhysQueueID) bool { return q != 2 })
	if !ok || q != 1 {
		t.Errorf("Select = %d, %v; want 1", q, ok)
	}
	// Tie break toward lower id.
	m2, _ := NewMDQF(2, 16)
	m2.OnRequestEnter(8)
	m2.OnRequestEnter(4)
	if q, ok := m2.Select(allEligible); !ok || q != 4 {
		t.Errorf("tie Select = %d, %v; want 4", q, ok)
	}
}

func TestNewMDQFValidation(t *testing.T) {
	if _, err := NewMDQF(0, 16); err == nil {
		t.Error("zero granularity accepted")
	}
}

func TestTailMMA(t *testing.T) {
	tm, err := NewTailMMA(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTailMMA(0, 16); err == nil {
		t.Error("zero granularity accepted")
	}
	// No queue has b cells yet.
	tm.OnArrival(1)
	tm.OnArrival(1)
	if _, ok := tm.Select(func(cell.QueueID) bool { return true }); ok {
		t.Error("selected with <b cells")
	}
	tm.OnArrival(1)
	tm.OnArrival(2)
	tm.OnArrival(2)
	tm.OnArrival(2)
	tm.OnArrival(2)
	// Queue 2 has 4 >= queue 1's 3: largest first.
	q, ok := tm.Select(func(cell.QueueID) bool { return true })
	if !ok || q != 2 {
		t.Errorf("Select = %d, %v; want 2", q, ok)
	}
	tm.OnTransfer(2)
	if got := tm.Occupancy(2); got != 1 {
		t.Errorf("Occupancy(2) = %d, want 1", got)
	}
	// Now queue 1 is the only full queue.
	q, ok = tm.Select(func(cell.QueueID) bool { return true })
	if !ok || q != 1 {
		t.Errorf("Select = %d, %v; want 1", q, ok)
	}
	// Veto it: nothing to do.
	if _, ok := tm.Select(func(q cell.QueueID) bool { return q != 1 }); ok {
		t.Error("vetoed queue selected")
	}
	// Bypass drains the ledger.
	tm.OnBypass(1)
	if got := tm.Occupancy(1); got != 2 {
		t.Errorf("Occupancy(1) = %d, want 2", got)
	}
}

// TestECQFZeroMissSingleQueueTheory reproduces the §3 intuition on a
// minimal closed loop: Q queues drained round-robin, replenishments
// every b slots with an SRAM ledger of Q(b-1) plus lookahead
// Q(b-1)+1 — no queue's ledger may fall below zero at service time.
func TestECQFZeroMissSingleQueueTheory(t *testing.T) {
	const Q, b = 4, 3
	lookSize := Q*(b-1) + 1
	look, _ := NewLookahead(lookSize)
	e, _ := NewECQF(look, b, 64)
	// Start with every queue's SRAM primed at b-1 cells (steady state).
	for q := cell.PhysQueueID(0); q < Q; q++ {
		e.setOcc(q, b-1)
	}
	// Round-robin adversary for many slots; every b-th slot the MMA
	// replenishes.
	next := 0
	for slot := 0; slot < 10000; slot++ {
		q := cell.PhysQueueID(next)
		next = (next + 1) % Q
		out := look.Shift(q)
		if out != cell.NoPhysQueue {
			e.OnRequestLeave(out)
			if e.Occupancy(out) < 0 {
				t.Fatalf("slot %d: queue %d ledger went negative (miss)", slot, out)
			}
		}
		if slot%b == b-1 {
			if sel, ok := e.Select(allEligible); ok {
				e.OnReplenish(sel)
			}
		}
	}
}
