package mma

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/cell"
)

// This file pins the tentpole guarantee of the bitmap indices: the
// indexed Select implementations are bit-identical — same queue, same
// tie-breaks, same idle decisions — to the retained SelectScan linear
// references, across seeded random workloads that include negative
// ledgers, overflow-bucket occupancies, arena growth and all three
// eligibility modes (none, closure, bitset).

// eligModel drives the three eligibility modes from one queue→bool
// table so the closure and bitset views always agree.
type eligModel struct {
	mode    int // 0: all eligible, 1: closure, 2: bitset
	allowed []bool
	bits    *bitset.Set
}

func newEligModel(queues int) *eligModel {
	return &eligModel{allowed: make([]bool, queues), bits: bitset.New(queues)}
}

// reroll randomizes the mode and the allowed set.
func (e *eligModel) reroll(rng *rand.Rand) {
	e.mode = rng.Intn(3)
	for q := range e.allowed {
		ok := rng.Intn(4) != 0 // 75% eligible
		e.allowed[q] = ok
		if ok {
			e.bits.Set(q)
		} else {
			e.bits.Clear(q)
		}
	}
}

func (e *eligModel) physClosure() func(cell.PhysQueueID) bool {
	if e.mode != 1 {
		return nil
	}
	return func(q cell.PhysQueueID) bool { return e.allowed[q] }
}

func (e *eligModel) logClosure() func(cell.QueueID) bool {
	if e.mode != 1 {
		return nil
	}
	return func(q cell.QueueID) bool { return e.allowed[q] }
}

func (e *eligModel) headBits() *bitset.Set {
	if e.mode != 2 {
		return nil
	}
	return e.bits
}

func TestDifferentialECQF(t *testing.T) {
	cases := []struct {
		q, b, latency int
		load          float64
	}{
		{4, 1, 9, 0.9},
		{16, 2, 17, 0.8},
		{64, 4, 33, 0.95},
		{128, 3, 5, 0.5},
		{256, 8, 65, 0.99},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("Q=%d_b=%d", tc.q, tc.b), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000*tc.q + tc.b)))
			pipe := tc.q*(tc.b-1) + 1 + tc.latency
			look, err := NewLookahead(pipe)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewECQF(look, tc.b, tc.q)
			if err != nil {
				t.Fatal(err)
			}
			elig := newEligModel(tc.q)
			elig.reroll(rng)
			const slots = 120000
			for slot := 0; slot < slots; slot++ {
				in := cell.NoPhysQueue
				if rng.Float64() < tc.load {
					in = cell.PhysQueueID(rng.Intn(tc.q))
				}
				if out := look.Shift(in); out != cell.NoPhysQueue {
					e.OnRequestLeave(out)
				}
				if slot%tc.b == tc.b-1 {
					if slot%137 == 0 {
						elig.reroll(rng)
					}
					e.SetEligibility(elig.headBits())
					cl := elig.physClosure()
					wantQ, wantOK := e.SelectScan(cl)
					gotQ, gotOK := e.Select(cl)
					if gotQ != wantQ || gotOK != wantOK {
						t.Fatalf("slot %d (elig mode %d): Select = (%d,%v), SelectScan = (%d,%v)",
							slot, elig.mode, gotQ, gotOK, wantQ, wantOK)
					}
					if gotOK {
						e.OnReplenish(gotQ)
					}
				}
			}
		})
	}
}

// TestDifferentialECQFArenaGrowth shifts queues beyond the constructed
// name space mid-run, forcing the geometric arena growth path while
// the differential gate stays on.
func TestDifferentialECQFArenaGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	look, _ := NewLookahead(97)
	e, _ := NewECQF(look, 4, 2) // deliberately undersized
	for slot := 0; slot < 30000; slot++ {
		in := cell.NoPhysQueue
		if rng.Float64() < 0.9 {
			in = cell.PhysQueueID(rng.Intn(1 + slot/100)) // widening id range
		}
		if out := look.Shift(in); out != cell.NoPhysQueue {
			e.OnRequestLeave(out)
		}
		if slot%4 == 3 {
			wantQ, wantOK := e.SelectScan(nil)
			gotQ, gotOK := e.Select(nil)
			if gotQ != wantQ || gotOK != wantOK {
				t.Fatalf("slot %d: Select = (%d,%v), SelectScan = (%d,%v)", slot, gotQ, gotOK, wantQ, wantOK)
			}
			if gotOK {
				e.OnReplenish(gotQ)
			}
		}
	}
}

func TestDifferentialMDQF(t *testing.T) {
	cases := []struct {
		q, b      int
		replenish float64 // probability the selected queue is actually credited
	}{
		{4, 1, 1.0},
		{16, 2, 0.9},
		{64, 4, 0.7},
		{512, 8, 1.0},
		// replenish 0.05 starves the ledger so deficits blow far past
		// the overflow boundary (exact-scan bucket).
		{8, 2, 0.05},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("Q=%d_b=%d", tc.q, tc.b), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(2000*tc.q + tc.b)))
			m, err := NewMDQF(tc.b, tc.q)
			if err != nil {
				t.Fatal(err)
			}
			elig := newEligModel(tc.q)
			elig.reroll(rng)
			const slots = 120000
			for slot := 0; slot < slots; slot++ {
				if rng.Float64() < 0.8 {
					m.OnRequestEnter(cell.PhysQueueID(rng.Intn(tc.q)))
				}
				if slot%tc.b == tc.b-1 {
					if slot%211 == 0 {
						elig.reroll(rng)
					}
					m.SetEligibility(elig.headBits())
					cl := elig.physClosure()
					wantQ, wantOK := m.SelectScan(cl)
					gotQ, gotOK := m.Select(cl)
					if gotQ != wantQ || gotOK != wantOK {
						t.Fatalf("slot %d (elig mode %d): Select = (%d,%v), SelectScan = (%d,%v)",
							slot, elig.mode, gotQ, gotOK, wantQ, wantOK)
					}
					if gotOK && rng.Float64() < tc.replenish {
						m.OnReplenish(gotQ)
					}
				}
			}
		})
	}
}

func TestDifferentialTailMMA(t *testing.T) {
	cases := []struct {
		q, b     int
		transfer float64 // probability the selected block actually moves
	}{
		{4, 1, 1.0},
		{16, 2, 0.9},
		{64, 4, 0.8},
		{512, 8, 1.0},
		// transfer 0.05 lets occupancies pile far past the overflow
		// boundary (exact-scan bucket).
		{8, 4, 0.05},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("Q=%d_b=%d", tc.q, tc.b), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(3000*tc.q + tc.b)))
			tm, err := NewTailMMA(tc.b, tc.q)
			if err != nil {
				t.Fatal(err)
			}
			elig := newEligModel(tc.q)
			elig.reroll(rng)
			const slots = 120000
			for slot := 0; slot < slots; slot++ {
				if rng.Float64() < 0.9 {
					tm.OnArrival(cell.QueueID(rng.Intn(tc.q)))
				}
				// Occasional bypass on a queue with resident cells, as the
				// cut-through path would issue.
				if rng.Float64() < 0.2 {
					q := cell.QueueID(rng.Intn(tc.q))
					if tm.Occupancy(q) > 0 {
						tm.OnBypass(q)
					}
				}
				if slot%tc.b == tc.b-1 {
					if slot%173 == 0 {
						elig.reroll(rng)
					}
					cl := elig.logClosure()
					if elig.mode == 2 {
						// The tail MMA has no bitset mode; fold it into an
						// equivalent closure so all rerolls still exercise
						// restricted eligibility.
						cl = func(q cell.QueueID) bool { return elig.bits.Has(int(q)) }
					}
					wantQ, wantOK := tm.SelectScan(cl)
					gotQ, gotOK := tm.Select(cl)
					if gotQ != wantQ || gotOK != wantOK {
						t.Fatalf("slot %d (elig mode %d): Select = (%d,%v), SelectScan = (%d,%v)",
							slot, elig.mode, gotQ, gotOK, wantQ, wantOK)
					}
					if gotOK && rng.Float64() < tc.transfer {
						tm.OnTransfer(gotQ)
					}
				}
			}
		})
	}
}

// TestIndexedSelectZeroAlloc asserts the steady-state index paths —
// event updates plus Select — never allocate once warmed.
func TestIndexedSelectZeroAlloc(t *testing.T) {
	const q, b = 256, 4
	look, _ := NewLookahead(q*(b-1) + 1)
	e, _ := NewECQF(look, b, q)
	m, _ := NewMDQF(b, q)
	tm, _ := NewTailMMA(b, q)
	elig := bitset.New(q)
	for i := 0; i < q; i++ {
		elig.Set(i)
	}
	e.SetEligibility(elig)
	m.SetEligibility(elig)
	rng := rand.New(rand.NewSource(5))
	// Warm: fill the window, grow the position rings and buckets.
	for slot := 0; slot < 8*q*b; slot++ {
		if out := look.Shift(cell.PhysQueueID(rng.Intn(q))); out != cell.NoPhysQueue {
			e.OnRequestLeave(out)
		}
		m.OnRequestEnter(cell.PhysQueueID(rng.Intn(q)))
		tm.OnArrival(cell.QueueID(rng.Intn(q)))
		if slot%b == b-1 {
			if sel, ok := e.Select(nil); ok {
				e.OnReplenish(sel)
			}
			if sel, ok := m.Select(nil); ok {
				m.OnReplenish(sel)
			}
			if sel, ok := tm.Select(nil); ok {
				tm.OnTransfer(sel)
			}
		}
	}
	slot := 0
	allocs := testing.AllocsPerRun(2000, func() {
		slot++
		if out := look.Shift(cell.PhysQueueID(slot % q)); out != cell.NoPhysQueue {
			e.OnRequestLeave(out)
		}
		m.OnRequestEnter(cell.PhysQueueID((slot * 7) % q))
		tm.OnArrival(cell.QueueID((slot * 13) % q))
		if sel, ok := e.Select(nil); ok {
			e.OnReplenish(sel)
		}
		if sel, ok := m.Select(nil); ok {
			m.OnReplenish(sel)
		}
		if sel, ok := tm.Select(nil); ok {
			tm.OnTransfer(sel)
		}
	})
	if allocs != 0 {
		t.Fatalf("indexed MMA steady state allocated %.2f/op", allocs)
	}
}
