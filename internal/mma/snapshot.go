package mma

import (
	"repro/internal/cell"
	"repro/internal/frame"
)

// Snapshot/Restore serialize the MMA subsystem through the trace frame
// codec. Only the authoritative state is framed — the lookahead ring
// and the occupancy ledgers; every derived index (the ECQF
// critical-slot rings and bitmap, the bucketed max-trackers, the
// epoch-stamped scratch) is rebuilt on restore from the authoritative
// state, exactly as the incremental maintenance would have left it.

// Snapshot writes the lookahead window contents.
func (l *Lookahead) Snapshot(w *frame.Writer) {
	w.Begin("look")
	w.Attr("head", int64(l.head))
	w.Attr("count", int64(l.count))
	for i, q := range l.ring {
		if q != cell.NoPhysQueue {
			w.Row(int64(i), int64(q))
		}
	}
}

// Restore loads a lookahead snapshot into a freshly constructed
// register of the same size. Callers restoring an observing ECQF must
// restore it after the lookahead, so its window index is rebuilt from
// the restored ring.
func (l *Lookahead) Restore(r *frame.Reader) error {
	if err := r.Expect("look"); err != nil {
		return err
	}
	head, err := r.NeedAttr("head")
	if err != nil {
		return err
	}
	count, err := r.NeedAttr("count")
	if err != nil {
		return err
	}
	l.head = int(head)
	l.count = int(count)
	for i := int64(0); i < count; i++ {
		row, err := r.NeedRow(2)
		if err != nil {
			return err
		}
		l.ring[row[0]] = cell.PhysQueueID(row[1])
	}
	return nil
}

// snapshotOcc frames one occupancy ledger: rows of (queue, value) for
// the non-zero entries.
func snapshotOcc(w *frame.Writer, name string, occ []int32) {
	live := 0
	for _, v := range occ {
		if v != 0 {
			live++
		}
	}
	w.Begin(name)
	w.Attr("entries", int64(live))
	for q, v := range occ {
		if v != 0 {
			w.Row(int64(q), int64(v))
		}
	}
}

// restoreOcc loads a ledger written by snapshotOcc; set is called once
// per restored entry.
func restoreOcc(r *frame.Reader, name string, set func(q cell.PhysQueueID, v int32)) error {
	if err := r.Expect(name); err != nil {
		return err
	}
	entries, err := r.NeedAttr("entries")
	if err != nil {
		return err
	}
	for i := int64(0); i < entries; i++ {
		row, err := r.NeedRow(2)
		if err != nil {
			return err
		}
		set(cell.PhysQueueID(row[0]), int32(row[1]))
	}
	return nil
}

// Snapshot writes the ECQF ledger. The window side of its index is the
// lookahead's content, framed separately.
func (e *ECQF) Snapshot(w *frame.Writer) {
	snapshotOcc(w, "ecqf", e.occ)
}

// Restore loads an ECQF snapshot and rebuilds the critical-slot index
// from the restored ledger and the (already restored) lookahead.
func (e *ECQF) Restore(r *frame.Reader) error {
	err := restoreOcc(r, "ecqf", func(q cell.PhysQueueID, v int32) {
		e.ensure(q)
		e.occ[q] = v
	})
	if err != nil {
		return err
	}
	// Rebuild the per-queue window position rings oldest-first (the
	// head-to-tail scan order), then restore every queue's critical
	// slot; recompute is exactly the incremental invariant repair.
	e.look.Scan(func(i int, q cell.PhysQueueID) bool {
		if q != cell.NoPhysQueue {
			e.ensure(q)
			slot := e.look.head + i
			if slot >= len(e.look.ring) {
				slot -= len(e.look.ring)
			}
			e.pos[q].push(int32(slot))
		}
		return true
	})
	for q := range e.occ {
		e.recompute(cell.PhysQueueID(q))
	}
	return nil
}

// Snapshot writes the MDQF ledger.
func (m *MDQF) Snapshot(w *frame.Writer) {
	snapshotOcc(w, "mdqf", m.occ)
}

// Restore loads an MDQF snapshot, rebuilding the deficit buckets.
func (m *MDQF) Restore(r *frame.Reader) error {
	return restoreOcc(r, "mdqf", func(q cell.PhysQueueID, v int32) {
		m.ensure(q)
		m.occ[q] = v
		m.idx.update(int(q), 0, deficit(v))
	})
}

// Snapshot writes the tail MMA ledger.
func (t *TailMMA) Snapshot(w *frame.Writer) {
	snapshotOcc(w, "tmma", t.occ)
}

// Restore loads a tail MMA snapshot, rebuilding the occupancy buckets.
func (t *TailMMA) Restore(r *frame.Reader) error {
	return restoreOcc(r, "tmma", func(q cell.PhysQueueID, v int32) {
		lq := cell.QueueID(q)
		t.ensure(lq)
		t.occ[lq] = v
		t.idx.update(int(lq), 0, v)
	})
}
