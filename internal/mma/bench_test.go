package mma

import (
	"testing"

	"repro/internal/cell"
)

// BenchmarkLookaheadShift measures the shift-register datapath cost.
func BenchmarkLookaheadShift(b *testing.B) {
	b.ReportAllocs()
	l, _ := NewLookahead(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Shift(cell.PhysQueueID(i & 511))
	}
}

// BenchmarkECQFSelect measures one ECQF scan at the paper's OC-3072
// scale: Q=512 queues, a full pipeline of Q(b−1)+1+Λ ≈ 4.6k entries
// (b=4). This is the operation the hardware performs every b slots.
func BenchmarkECQFSelect(b *testing.B) {
	b.ReportAllocs()
	const pipe = 4573
	look, _ := NewLookahead(pipe)
	e, _ := NewECQF(look, 4, 512)
	for i := 0; i < pipe; i++ {
		look.Shift(cell.PhysQueueID(i % 512))
	}
	// Half-covered queues: a realistic mix of critical and covered.
	for q := cell.PhysQueueID(0); q < 512; q += 2 {
		e.OnReplenish(q)
		e.OnReplenish(q)
		e.OnReplenish(q)
	}
	eligible := func(cell.PhysQueueID) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Select(eligible); !ok {
			b.Fatal("nothing critical")
		}
	}
}

// BenchmarkMDQFSelect measures the lookahead-free baseline's scan.
func BenchmarkMDQFSelect(b *testing.B) {
	b.ReportAllocs()
	m, _ := NewMDQF(4, 512)
	for q := cell.PhysQueueID(0); q < 512; q++ {
		m.OnRequestEnter(q)
	}
	eligible := func(cell.PhysQueueID) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Select(eligible); !ok {
			b.Fatal("nothing in deficit")
		}
	}
}
