package mma

import (
	"testing"

	"repro/internal/cell"
)

// BenchmarkLookaheadShift measures the shift-register datapath cost.
func BenchmarkLookaheadShift(b *testing.B) {
	b.ReportAllocs()
	l, _ := NewLookahead(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Shift(cell.PhysQueueID(i & 511))
	}
}

// setupECQF primes an ECQF at the paper's OC-3072 scale: Q=512
// queues, a full pipeline of Q(b−1)+1+Λ ≈ 4.6k entries (b=4), half
// the queues covered — a realistic mix of critical and covered. The
// selection is the operation the hardware performs every b slots.
func setupECQF() *ECQF {
	const pipe = 4573
	look, _ := NewLookahead(pipe)
	e, _ := NewECQF(look, 4, 512)
	for i := 0; i < pipe; i++ {
		look.Shift(cell.PhysQueueID(i % 512))
	}
	for q := cell.PhysQueueID(0); q < 512; q += 2 {
		e.OnReplenish(q)
		e.OnReplenish(q)
		e.OnReplenish(q)
	}
	return e
}

// BenchmarkECQFSelect measures one indexed ECQF selection (a
// find-first-set over the critical-slot bitmap).
func BenchmarkECQFSelect(b *testing.B) {
	b.ReportAllocs()
	e := setupECQF()
	eligible := func(cell.PhysQueueID) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Select(eligible); !ok {
			b.Fatal("nothing critical")
		}
	}
}

// BenchmarkECQFSelectScan measures the retained reference scan over
// the same state — the cost the index removes from the hot path.
func BenchmarkECQFSelectScan(b *testing.B) {
	b.ReportAllocs()
	e := setupECQF()
	eligible := func(cell.PhysQueueID) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.SelectScan(eligible); !ok {
			b.Fatal("nothing critical")
		}
	}
}

func setupMDQF() *MDQF {
	m, _ := NewMDQF(4, 512)
	for q := cell.PhysQueueID(0); q < 512; q++ {
		m.OnRequestEnter(q)
	}
	return m
}

// BenchmarkMDQFSelect measures one indexed MDQF selection (deficit
// bucket probes).
func BenchmarkMDQFSelect(b *testing.B) {
	b.ReportAllocs()
	m := setupMDQF()
	eligible := func(cell.PhysQueueID) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Select(eligible); !ok {
			b.Fatal("nothing in deficit")
		}
	}
}

// BenchmarkMDQFSelectScan measures the lookahead-free baseline's
// retained reference scan over the dense name space.
func BenchmarkMDQFSelectScan(b *testing.B) {
	b.ReportAllocs()
	m := setupMDQF()
	eligible := func(cell.PhysQueueID) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.SelectScan(eligible); !ok {
			b.Fatal("nothing in deficit")
		}
	}
}
