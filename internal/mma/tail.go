package mma

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/cell"
)

// TailMMA is the ingress-side MMA of §3: every b slots it may order a
// transfer of b cells from the tail SRAM to DRAM, choosing "any queue
// with an occupancy counter higher than or equal to b". With that rule
// the tail SRAM never needs more than Q(b−1)+1 cells.
//
// This implementation picks the queue with the highest occupancy
// (largest backlog first), which satisfies the rule and minimizes the
// occupancy high-water mark; ties break toward the lowest queue id for
// determinism. The occupancy ledger is a dense slice indexed by the
// logical queue ordinal, and Select resolves the maximum from a
// bucketed occupancy index maintained by the arrival/transfer/bypass
// events instead of scanning all Q counters; SelectScan retains the
// linear scan as the differential-test reference.
type TailMMA struct {
	b   int
	occ []int32
	idx *maxTracker
}

// NewTailMMA builds a tail MMA with granularity b for queues logical
// queues. Queues beyond the initial size are accommodated by growing
// the ledger (amortized, off the steady-state path).
func NewTailMMA(b, queues int) (*TailMMA, error) {
	if b <= 0 {
		return nil, fmt.Errorf("mma: granularity must be positive, got %d", b)
	}
	if queues < 0 {
		return nil, fmt.Errorf("mma: queues must be non-negative, got %d", queues)
	}
	return &TailMMA{b: b, occ: make([]int32, queues), idx: newMaxTracker(queues, b)}, nil
}

func (t *TailMMA) ensure(q cell.QueueID) {
	if int(q) >= len(t.occ) {
		t.occ = arena.Grown(t.occ, int(q)+1)
	}
}

// adjust applies a ledger delta and mirrors it into the index.
func (t *TailMMA) adjust(q cell.QueueID, delta int32) {
	t.ensure(q)
	old := t.occ[q]
	t.occ[q] = old + delta
	t.idx.update(int(q), old, old+delta)
}

// OnArrival records one cell arriving into the tail SRAM for queue q.
func (t *TailMMA) OnArrival(q cell.QueueID) { t.adjust(q, 1) }

// OnTransfer debits one block handed to the DRAM side.
func (t *TailMMA) OnTransfer(q cell.QueueID) { t.adjust(q, -int32(t.b)) }

// OnBypass records one cell leaving the tail SRAM directly to the
// egress (the cut-through path for queues with no DRAM backlog).
func (t *TailMMA) OnBypass(q cell.QueueID) { t.adjust(q, -1) }

// Occupancy returns the tail-SRAM ledger for q.
func (t *TailMMA) Occupancy(q cell.QueueID) int {
	if q < 0 || int(q) >= len(t.occ) {
		return 0
	}
	return int(t.occ[q])
}

// Select returns the queue to write back, or ok=false if no queue has
// accumulated a full block. eligible lets the caller veto queues whose
// DRAM group cannot accept a write right now (the renaming layer then
// redirects them); nil means no queue is vetoed — callers whose write
// path can never stall (unbounded DRAM without renaming) pass nil and
// the walk degenerates to pure bitmap probes.
//
//pktbuf:hotpath
func (t *TailMMA) Select(eligible func(cell.QueueID) bool) (cell.QueueID, bool) {
	tr := t.idx
	for bi := tr.nonEmpty.Last(); bi >= 0; bi = tr.nonEmpty.PrevFrom(bi - 1) {
		set := tr.buckets[bi]
		if bi == tr.overflowAt {
			// Overflow bucket: occupancies ≥ overflowAt ≥ b with mixed
			// magnitudes; resolve exactly from the ledger. Any member
			// beats every exact bucket below.
			best, bestOcc, found := cell.NoQueue, int32(0), false
			for i := set.First(); i >= 0; i = set.NextFrom(i + 1) {
				if found && t.occ[i] <= bestOcc {
					continue
				}
				q := cell.QueueID(i)
				if eligible != nil && !eligible(q) {
					continue
				}
				best, bestOcc, found = q, t.occ[i], true
			}
			if found {
				return best, true
			}
			continue
		}
		if bi < t.b {
			// Exact buckets hold occupancy == bi: below the block size
			// nothing further down can qualify.
			break
		}
		for i := set.First(); i >= 0; i = set.NextFrom(i + 1) {
			q := cell.QueueID(i)
			if eligible == nil || eligible(q) {
				return q, true
			}
		}
	}
	return cell.NoQueue, false
}

// SelectScan is the retained reference implementation of Select: the
// linear scan over the dense logical name space. The differential
// tests assert Select ≡ SelectScan over seeded random workloads.
func (t *TailMMA) SelectScan(eligible func(cell.QueueID) bool) (cell.QueueID, bool) {
	best, bestOcc, found := cell.NoQueue, int32(0), false
	for i := range t.occ {
		n := t.occ[i]
		if n < int32(t.b) || (found && n <= bestOcc) {
			continue
		}
		q := cell.QueueID(i)
		if eligible != nil && !eligible(q) {
			continue
		}
		best, bestOcc, found = q, n, true
	}
	return best, found
}
