package mma

import (
	"fmt"

	"repro/internal/cell"
)

// TailMMA is the ingress-side MMA of §3: every b slots it may order a
// transfer of b cells from the tail SRAM to DRAM, choosing "any queue
// with an occupancy counter higher than or equal to b". With that rule
// the tail SRAM never needs more than Q(b−1)+1 cells.
//
// This implementation picks the queue with the highest occupancy
// (largest backlog first), which satisfies the rule and minimizes the
// occupancy high-water mark; ties break toward the lowest queue id for
// determinism.
type TailMMA struct {
	b   int
	occ map[cell.QueueID]int
}

// NewTailMMA builds a tail MMA with granularity b.
func NewTailMMA(b int) (*TailMMA, error) {
	if b <= 0 {
		return nil, fmt.Errorf("mma: granularity must be positive, got %d", b)
	}
	return &TailMMA{b: b, occ: make(map[cell.QueueID]int)}, nil
}

// OnArrival records one cell arriving into the tail SRAM for queue q.
func (t *TailMMA) OnArrival(q cell.QueueID) { t.occ[q]++ }

// OnTransfer debits one block handed to the DRAM side.
func (t *TailMMA) OnTransfer(q cell.QueueID) {
	t.occ[q] -= t.b
	if t.occ[q] == 0 {
		delete(t.occ, q)
	}
}

// OnBypass records one cell leaving the tail SRAM directly to the
// egress (the cut-through path for queues with no DRAM backlog).
func (t *TailMMA) OnBypass(q cell.QueueID) {
	t.occ[q]--
	if t.occ[q] == 0 {
		delete(t.occ, q)
	}
}

// Occupancy returns the tail-SRAM ledger for q.
func (t *TailMMA) Occupancy(q cell.QueueID) int { return t.occ[q] }

// Select returns the queue to write back, or ok=false if no queue has
// accumulated a full block. eligible lets the caller veto queues whose
// DRAM group cannot accept a write right now (the renaming layer then
// redirects them).
func (t *TailMMA) Select(eligible func(cell.QueueID) bool) (cell.QueueID, bool) {
	best, bestOcc, found := cell.NoQueue, 0, false
	for q, n := range t.occ {
		if n < t.b || !eligible(q) {
			continue
		}
		if !found || n > bestOcc || (n == bestOcc && q < best) {
			best, bestOcc, found = q, n, true
		}
	}
	return best, found
}
