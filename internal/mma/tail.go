package mma

import (
	"fmt"

	"repro/internal/cell"
)

// TailMMA is the ingress-side MMA of §3: every b slots it may order a
// transfer of b cells from the tail SRAM to DRAM, choosing "any queue
// with an occupancy counter higher than or equal to b". With that rule
// the tail SRAM never needs more than Q(b−1)+1 cells.
//
// This implementation picks the queue with the highest occupancy
// (largest backlog first), which satisfies the rule and minimizes the
// occupancy high-water mark; ties break toward the lowest queue id for
// determinism. The occupancy ledger is a dense slice indexed by the
// logical queue ordinal.
type TailMMA struct {
	b   int
	occ []int32
}

// NewTailMMA builds a tail MMA with granularity b for queues logical
// queues. Queues beyond the initial size are accommodated by growing
// the ledger (amortized, off the steady-state path).
func NewTailMMA(b, queues int) (*TailMMA, error) {
	if b <= 0 {
		return nil, fmt.Errorf("mma: granularity must be positive, got %d", b)
	}
	if queues < 0 {
		return nil, fmt.Errorf("mma: queues must be non-negative, got %d", queues)
	}
	return &TailMMA{b: b, occ: make([]int32, queues)}, nil
}

func (t *TailMMA) ensure(q cell.QueueID) {
	for int(q) >= len(t.occ) {
		t.occ = append(t.occ, 0)
	}
}

// OnArrival records one cell arriving into the tail SRAM for queue q.
func (t *TailMMA) OnArrival(q cell.QueueID) {
	t.ensure(q)
	t.occ[q]++
}

// OnTransfer debits one block handed to the DRAM side.
func (t *TailMMA) OnTransfer(q cell.QueueID) {
	t.ensure(q)
	t.occ[q] -= int32(t.b)
}

// OnBypass records one cell leaving the tail SRAM directly to the
// egress (the cut-through path for queues with no DRAM backlog).
func (t *TailMMA) OnBypass(q cell.QueueID) {
	t.ensure(q)
	t.occ[q]--
}

// Occupancy returns the tail-SRAM ledger for q.
func (t *TailMMA) Occupancy(q cell.QueueID) int {
	if q < 0 || int(q) >= len(t.occ) {
		return 0
	}
	return int(t.occ[q])
}

// Select returns the queue to write back, or ok=false if no queue has
// accumulated a full block. eligible lets the caller veto queues whose
// DRAM group cannot accept a write right now (the renaming layer then
// redirects them).
func (t *TailMMA) Select(eligible func(cell.QueueID) bool) (cell.QueueID, bool) {
	best, bestOcc, found := cell.NoQueue, int32(0), false
	for i := range t.occ {
		n := t.occ[i]
		if n < int32(t.b) || (found && n <= bestOcc) {
			continue
		}
		q := cell.QueueID(i)
		if !eligible(q) {
			continue
		}
		best, bestOcc, found = q, n, true
	}
	return best, found
}
