// Package mma implements the Memory Management Algorithm subsystem of
// §3 and §5.2: the lookahead shift register, per-queue occupancy
// counters, the Earliest Critical Queue First (ECQF) head MMA, a
// no-lookahead Most Deficit Queue First (MDQF) baseline, and the tail
// MMA.
//
// The MMA operates on *physical* queue identifiers: the renaming layer
// of §6 translates logical names before requests enter the lookahead,
// and "all previous results remain the same" (§6) with physical queues
// substituted.
package mma

import (
	"fmt"

	"repro/internal/cell"
)

// Lookahead is the request shift register of Figure 3/Figure 5. One
// entry enters at the tail and one leaves at the head every slot —
// idle slots carry cell.NoPhysQueue. Its length fixes how far into the
// future the MMA can see.
type Lookahead struct {
	ring  []cell.PhysQueueID
	head  int
	count int // number of non-idle entries, for stats
}

// NewLookahead returns a lookahead register with size slots, all idle.
// Size must be positive (a zero-lookahead MMA simply never consults
// it; modeling it as size 1 keeps the shift pipeline uniform).
func NewLookahead(size int) (*Lookahead, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mma: lookahead size must be positive, got %d", size)
	}
	ring := make([]cell.PhysQueueID, size)
	for i := range ring {
		ring[i] = cell.NoPhysQueue
	}
	return &Lookahead{ring: ring}, nil
}

// Size returns the register length in slots.
func (l *Lookahead) Size() int { return len(l.ring) }

// Pending returns the number of non-idle requests currently held.
func (l *Lookahead) Pending() int { return l.count }

// Shift advances the register by one slot: in enters at the tail and
// the head entry is returned. This is the only mutation — the register
// models hardware, so it moves exactly once per slot.
func (l *Lookahead) Shift(in cell.PhysQueueID) (out cell.PhysQueueID) {
	out = l.ring[l.head]
	l.ring[l.head] = in
	l.head = (l.head + 1) % len(l.ring)
	if out != cell.NoPhysQueue {
		l.count--
	}
	if in != cell.NoPhysQueue {
		l.count++
	}
	return out
}

// At returns the entry i positions from the head (i=0 is the next
// request to be served).
func (l *Lookahead) At(i int) cell.PhysQueueID {
	return l.ring[(l.head+i)%len(l.ring)]
}

// Scan calls fn for each entry from head to tail, stopping early if fn
// returns false. Idle entries are included (fn sees cell.NoPhysQueue)
// so callers observe true slot distances.
func (l *Lookahead) Scan(fn func(i int, q cell.PhysQueueID) bool) {
	for i := 0; i < len(l.ring); i++ {
		if !fn(i, l.At(i)) {
			return
		}
	}
}
