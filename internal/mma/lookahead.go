// Package mma implements the Memory Management Algorithm subsystem of
// §3 and §5.2: the lookahead shift register, per-queue occupancy
// counters, the Earliest Critical Queue First (ECQF) head MMA, a
// no-lookahead Most Deficit Queue First (MDQF) baseline, and the tail
// MMA.
//
// The MMA operates on *physical* queue identifiers: the renaming layer
// of §6 translates logical names before requests enter the lookahead,
// and "all previous results remain the same" (§6) with physical queues
// substituted.
//
// # Selection indices
//
// Every selector keeps two implementations: SelectScan is the direct
// transcription of the paper's rule as a linear scan (retained as the
// differential-test reference), and Select answers the same question
// from incrementally maintained hierarchical-bitmap indices
// (internal/bitset), so the per-decision cost is O(log₆₄ n) in the
// queue count and lookahead length instead of O(Q) / O(L). The two are
// bit-identical — same queue, same tie-breaks — which the seeded
// differential tests in differential_test.go pin down.
//
// Index invariants (checked implicitly by the differential suite):
//
//   - ECQF: for every physical queue q, pos[q] lists the ring slots of
//     q's requests currently in the window, oldest first; critSlot[q]
//     is the slot of q's (max(occ[q],0)+1)-th oldest request, or -1 if
//     q has no more than max(occ[q],0) requests pending; the crit
//     bitmap holds exactly the non-negative critSlot values. Every
//     mutation (shift in/out, ledger debit/credit) touches one queue
//     and restores the invariant for that queue in O(log₆₄ L).
//   - TailMMA / MDQF: the bucketed max-tracker places each queue with
//     a positive tracked value (tail occupancy, head deficit) in the
//     bucket of that exact value, clamping values ≥ overflowAt into
//     one overflow bucket that is resolved by an exact scan of its
//     members; the nonEmpty bitmap holds exactly the non-empty bucket
//     indices.
package mma

import (
	"fmt"

	"repro/internal/cell"
)

// Lookahead is the request shift register of Figure 3/Figure 5. One
// entry enters at the tail and one leaves at the head every slot —
// idle slots carry cell.NoPhysQueue. Its length fixes how far into the
// future the MMA can see.
type Lookahead struct {
	ring  []cell.PhysQueueID
	head  int
	count int // number of non-idle entries, for stats
	// onShift, when set, observes every Shift *after* the register
	// moved: slot is the ring index the incoming entry was written to
	// (the same index the outgoing entry occupied). ECQF registers
	// itself here to maintain its critical-position index; the last
	// registered observer wins.
	onShift func(slot int, in, out cell.PhysQueueID)
}

// NewLookahead returns a lookahead register with size slots, all idle.
// Size must be positive (a zero-lookahead MMA simply never consults
// it; modeling it as size 1 keeps the shift pipeline uniform).
func NewLookahead(size int) (*Lookahead, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mma: lookahead size must be positive, got %d", size)
	}
	ring := make([]cell.PhysQueueID, size)
	for i := range ring {
		ring[i] = cell.NoPhysQueue
	}
	return &Lookahead{ring: ring}, nil
}

// Size returns the register length in slots.
func (l *Lookahead) Size() int { return len(l.ring) }

// Pending returns the number of non-idle requests currently held.
func (l *Lookahead) Pending() int { return l.count }

// Shift advances the register by one slot: in enters at the tail and
// the head entry is returned. This is the only mutation — the register
// models hardware, so it moves exactly once per slot.
//
//pktbuf:hotpath
func (l *Lookahead) Shift(in cell.PhysQueueID) (out cell.PhysQueueID) {
	slot, out := l.shiftRaw(in)
	if l.onShift != nil {
		l.onShift(slot, in, out)
	}
	return out
}

// shiftRaw moves the register without notifying the shift observer and
// additionally reports the ring slot the exchange happened at. It
// exists for observers that drive the shift themselves (ECQF's fused
// shift-and-deliver path) and must never be mixed with Shift by anyone
// else — a skipped observer notification leaves the index stale.
//
//pktbuf:hotpath
func (l *Lookahead) shiftRaw(in cell.PhysQueueID) (slot int, out cell.PhysQueueID) {
	slot = l.head
	out = l.ring[slot]
	l.ring[slot] = in
	l.head = slot + 1
	if l.head == len(l.ring) {
		l.head = 0
	}
	if out != cell.NoPhysQueue {
		l.count--
	}
	if in != cell.NoPhysQueue {
		l.count++
	}
	return slot, out
}

// FastForward rotates the register head by n idle shifts in O(1). The
// caller must only invoke it on an empty register (Pending() == 0):
// rotating an all-idle ring is then exactly equivalent to n
// Shift(NoPhysQueue) calls — every entry read out would be idle, and
// the shift observer sees nothing on idle-in/idle-out shifts.
func (l *Lookahead) FastForward(n uint64) {
	l.head = int((uint64(l.head) + n) % uint64(len(l.ring)))
}

// At returns the entry i positions from the head (i=0 is the next
// request to be served). i must be in [0, Size()).
func (l *Lookahead) At(i int) cell.PhysQueueID {
	j := l.head + i
	if j >= len(l.ring) {
		j -= len(l.ring)
	}
	return l.ring[j]
}

// Scan calls fn for each entry from head to tail, stopping early if fn
// returns false. Idle entries are included (fn sees cell.NoPhysQueue)
// so callers observe true slot distances. The ring walk is split into
// two linear segments so the inner loop carries no modulo.
func (l *Lookahead) Scan(fn func(i int, q cell.PhysQueueID) bool) {
	n := len(l.ring)
	for j := l.head; j < n; j++ {
		if !fn(j-l.head, l.ring[j]) {
			return
		}
	}
	base := n - l.head
	for j := 0; j < l.head; j++ {
		if !fn(base+j, l.ring[j]) {
			return
		}
	}
}
