package mma

import (
	"fmt"

	"repro/internal/cell"
)

// HeadMMA is the interface of the head (egress-side) Memory Management
// Algorithm: every b slots it may order one replenishment of b cells
// from DRAM to the head SRAM.
//
// Implementations keep the §5.2 occupancy counters: incremented by b
// when a replenish request is *issued* (not when it completes) and
// decremented when a request leaves the lookahead. The counters are
// therefore a forward-looking ledger, deliberately distinct from the
// physical SRAM occupancy.
type HeadMMA interface {
	// OnRequestEnter records a scheduler request entering the pipeline.
	OnRequestEnter(q cell.PhysQueueID)
	// OnRequestLeave records a request leaving the lookahead (the cell
	// is granted to the arbiter this slot).
	OnRequestLeave(q cell.PhysQueueID)
	// Select picks the queue to replenish, or ok=false to stay idle.
	// eligible reports whether a queue can currently be replenished
	// from DRAM (it has a resident block and the write path allows it).
	Select(eligible func(cell.PhysQueueID) bool) (q cell.PhysQueueID, ok bool)
	// OnReplenish credits the ledger with one block of b cells; the
	// caller invokes it when the replenish request is handed to the
	// DRAM side.
	OnReplenish(q cell.PhysQueueID)
	// Occupancy returns the ledger value for q (may be negative while
	// requests outpace replenishment).
	Occupancy(q cell.PhysQueueID) int
}

// ECQF is the Earliest Critical Queue First head MMA of §3: scan the
// lookahead from head to tail, decrementing a scratch copy of each
// queue's occupancy counter per request; the first queue whose scratch
// counter goes negative is "critical" and is selected. With lookahead
// L* = Q(b−1)+1 this minimizes SRAM to Q(b−1) cells.
//
// All per-queue state is kept in dense slices indexed by the physical
// queue ordinal; the scratch counters are epoch-stamped so Select does
// no clearing work proportional to the queue count.
type ECQF struct {
	b    int
	look *Lookahead
	occ  []int32
	// scratch/stamp implement an epoch-validated scratch array: an
	// entry is live only when stamp[q] == epoch, so each Select starts
	// from logically-zero counters without touching O(queues) memory.
	scratch []int32
	stamp   []uint32
	epoch   uint32
}

var _ HeadMMA = (*ECQF)(nil)

// NewECQF builds an ECQF over the given lookahead with granularity b
// for a physical name space of queues ordinals. Queues beyond the
// initial size are accommodated by growing the arenas (amortized, off
// the steady-state path).
func NewECQF(look *Lookahead, b, queues int) (*ECQF, error) {
	if look == nil {
		return nil, fmt.Errorf("mma: ECQF needs a lookahead register")
	}
	if b <= 0 {
		return nil, fmt.Errorf("mma: granularity must be positive, got %d", b)
	}
	if queues < 0 {
		return nil, fmt.Errorf("mma: queues must be non-negative, got %d", queues)
	}
	return &ECQF{
		b:       b,
		look:    look,
		occ:     make([]int32, queues),
		scratch: make([]int32, queues),
		stamp:   make([]uint32, queues),
	}, nil
}

func (e *ECQF) ensure(q cell.PhysQueueID) {
	for int(q) >= len(e.occ) {
		e.occ = append(e.occ, 0)
		e.scratch = append(e.scratch, 0)
		e.stamp = append(e.stamp, 0)
	}
}

// OnRequestEnter implements HeadMMA. ECQF's ledger moves on replenish
// and leave events only; entry is a no-op but part of the interface so
// deficit-based MMAs can observe it.
func (e *ECQF) OnRequestEnter(cell.PhysQueueID) {}

// OnRequestLeave implements HeadMMA.
func (e *ECQF) OnRequestLeave(q cell.PhysQueueID) {
	e.ensure(q)
	e.occ[q]--
}

// OnReplenish credits the ledger with one block of b cells; the caller
// invokes it when the replenish request is handed to the DRAM side.
func (e *ECQF) OnReplenish(q cell.PhysQueueID) {
	e.ensure(q)
	e.occ[q] += int32(e.b)
}

// Occupancy implements HeadMMA.
func (e *ECQF) Occupancy(q cell.PhysQueueID) int {
	if q < 0 || int(q) >= len(e.occ) {
		return 0
	}
	return int(e.occ[q])
}

// Select implements HeadMMA: the earliest critical queue, in lookahead
// order. The scratch counters hold the number of pending lookahead
// requests seen so far per queue; queue q is critical at the request
// that makes occ[q] − seen[q] < 0. When no queue is critical the MMA
// idles — replenishing uncritical queues would only inflate the SRAM
// occupancy beyond the dimensioned bound.
func (e *ECQF) Select(eligible func(cell.PhysQueueID) bool) (cell.PhysQueueID, bool) {
	e.epoch++
	if e.epoch == 0 {
		// uint32 wrap: stale stamps could alias the new epoch.
		clear(e.stamp)
		e.epoch = 1
	}
	var (
		chosen cell.PhysQueueID
		found  bool
	)
	e.look.Scan(func(_ int, q cell.PhysQueueID) bool {
		if q == cell.NoPhysQueue {
			return true
		}
		e.ensure(q)
		if e.stamp[q] != e.epoch {
			e.stamp[q] = e.epoch
			e.scratch[q] = 0
		}
		e.scratch[q]++
		if e.occ[q]-e.scratch[q] < 0 {
			if eligible(q) {
				chosen, found = q, true
				return false
			}
			// Critical but not replenishable this cycle (e.g. its next
			// block's write is still in flight toward DRAM): keep
			// scanning for a later critical queue, and reset this
			// queue's scratch so criticality re-triggers only after b
			// more of its requests.
			e.scratch[q] -= int32(e.b)
		}
		return true
	})
	return chosen, found
}

// MDQF is the Most Deficit Queue First baseline: it ignores the
// lookahead contents and selects the eligible queue with the lowest
// ledger occupancy (deepest deficit). The paper notes ([13]) that
// MMAs without lookahead pay with a larger SRAM — the ablation bench
// quantifies that.
type MDQF struct {
	b   int
	occ []int32
}

var _ HeadMMA = (*MDQF)(nil)

// NewMDQF builds an MDQF with granularity b for a physical name space
// of queues ordinals.
func NewMDQF(b, queues int) (*MDQF, error) {
	if b <= 0 {
		return nil, fmt.Errorf("mma: granularity must be positive, got %d", b)
	}
	if queues < 0 {
		return nil, fmt.Errorf("mma: queues must be non-negative, got %d", queues)
	}
	return &MDQF{b: b, occ: make([]int32, queues)}, nil
}

func (m *MDQF) ensure(q cell.PhysQueueID) {
	for int(q) >= len(m.occ) {
		m.occ = append(m.occ, 0)
	}
}

// OnRequestEnter implements HeadMMA: MDQF reacts at entry time (it has
// no lookahead window, so the request is "seen" immediately).
func (m *MDQF) OnRequestEnter(q cell.PhysQueueID) {
	m.ensure(q)
	m.occ[q]--
}

// OnRequestLeave implements HeadMMA (a no-op: the debit was taken at
// entry).
func (m *MDQF) OnRequestLeave(cell.PhysQueueID) {}

// OnReplenish credits one block.
func (m *MDQF) OnReplenish(q cell.PhysQueueID) {
	m.ensure(q)
	m.occ[q] += int32(m.b)
}

// Occupancy implements HeadMMA.
func (m *MDQF) Occupancy(q cell.PhysQueueID) int {
	if q < 0 || int(q) >= len(m.occ) {
		return 0
	}
	return int(m.occ[q])
}

// Select implements HeadMMA: deepest deficit first, ties to the lowest
// queue id for determinism. Only queues in actual deficit (occupancy
// below zero, i.e. requests outstanding beyond replenished cells) are
// considered; otherwise the MMA idles like ECQF does. The dense arena
// makes this a linear scan over the physical name space.
func (m *MDQF) Select(eligible func(cell.PhysQueueID) bool) (cell.PhysQueueID, bool) {
	best, bestOcc, found := cell.NoPhysQueue, int32(0), false
	for i := range m.occ {
		q := cell.PhysQueueID(i)
		if m.occ[i] >= 0 || (found && m.occ[i] >= bestOcc) || !eligible(q) {
			continue
		}
		best, bestOcc, found = q, m.occ[i], true
	}
	return best, found
}
