package mma

import (
	"fmt"

	"repro/internal/cell"
)

// HeadMMA is the interface of the head (egress-side) Memory Management
// Algorithm: every b slots it may order one replenishment of b cells
// from DRAM to the head SRAM.
//
// Implementations keep the §5.2 occupancy counters: incremented by b
// when a replenish request is *issued* (not when it completes) and
// decremented when a request leaves the lookahead. The counters are
// therefore a forward-looking ledger, deliberately distinct from the
// physical SRAM occupancy.
type HeadMMA interface {
	// OnRequestEnter records a scheduler request entering the pipeline.
	OnRequestEnter(q cell.PhysQueueID)
	// OnRequestLeave records a request leaving the lookahead (the cell
	// is granted to the arbiter this slot).
	OnRequestLeave(q cell.PhysQueueID)
	// Select picks the queue to replenish, or ok=false to stay idle.
	// eligible reports whether a queue can currently be replenished
	// from DRAM (it has a resident block and the write path allows it).
	Select(eligible func(cell.PhysQueueID) bool) (q cell.PhysQueueID, ok bool)
	// OnReplenish credits the ledger with one block of b cells; the
	// caller invokes it when the replenish request is handed to the
	// DRAM side.
	OnReplenish(q cell.PhysQueueID)
	// Occupancy returns the ledger value for q (may be negative while
	// requests outpace replenishment).
	Occupancy(q cell.PhysQueueID) int
}

// ECQF is the Earliest Critical Queue First head MMA of §3: scan the
// lookahead from head to tail, decrementing a scratch copy of each
// queue's occupancy counter per request; the first queue whose scratch
// counter goes negative is "critical" and is selected. With lookahead
// L* = Q(b−1)+1 this minimizes SRAM to Q(b−1) cells.
type ECQF struct {
	b    int
	look *Lookahead
	occ  map[cell.PhysQueueID]int
	// scratch is reused across Select calls to avoid per-call
	// allocation on the hot path.
	scratch map[cell.PhysQueueID]int
}

var _ HeadMMA = (*ECQF)(nil)

// NewECQF builds an ECQF over the given lookahead with granularity b.
func NewECQF(look *Lookahead, b int) (*ECQF, error) {
	if look == nil {
		return nil, fmt.Errorf("mma: ECQF needs a lookahead register")
	}
	if b <= 0 {
		return nil, fmt.Errorf("mma: granularity must be positive, got %d", b)
	}
	return &ECQF{
		b:       b,
		look:    look,
		occ:     make(map[cell.PhysQueueID]int),
		scratch: make(map[cell.PhysQueueID]int),
	}, nil
}

// OnRequestEnter implements HeadMMA. ECQF's ledger moves on replenish
// and leave events only; entry is a no-op but part of the interface so
// deficit-based MMAs can observe it.
func (e *ECQF) OnRequestEnter(cell.PhysQueueID) {}

// OnRequestLeave implements HeadMMA.
func (e *ECQF) OnRequestLeave(q cell.PhysQueueID) { e.occ[q]-- }

// OnReplenish credits the ledger with one block of b cells; the caller
// invokes it when the replenish request is handed to the DRAM side.
func (e *ECQF) OnReplenish(q cell.PhysQueueID) { e.occ[q] += e.b }

// Occupancy implements HeadMMA.
func (e *ECQF) Occupancy(q cell.PhysQueueID) int { return e.occ[q] }

// Select implements HeadMMA: the earliest critical queue, in lookahead
// order. The scratch map holds the number of pending lookahead
// requests seen so far per queue; queue q is critical at the request
// that makes occ[q] − seen[q] < 0. When no queue is critical the MMA
// idles — replenishing uncritical queues would only inflate the SRAM
// occupancy beyond the dimensioned bound.
func (e *ECQF) Select(eligible func(cell.PhysQueueID) bool) (cell.PhysQueueID, bool) {
	clear(e.scratch)
	var (
		chosen cell.PhysQueueID
		found  bool
	)
	e.look.Scan(func(_ int, q cell.PhysQueueID) bool {
		if q == cell.NoPhysQueue {
			return true
		}
		e.scratch[q]++
		if e.occ[q]-e.scratch[q] < 0 {
			if eligible(q) {
				chosen, found = q, true
				return false
			}
			// Critical but not replenishable this cycle (e.g. its next
			// block's write is still in flight toward DRAM): keep
			// scanning for a later critical queue, and reset this
			// queue's scratch so criticality re-triggers only after b
			// more of its requests.
			e.scratch[q] -= e.b
		}
		return true
	})
	return chosen, found
}

// MDQF is the Most Deficit Queue First baseline: it ignores the
// lookahead contents and selects the eligible queue with the lowest
// ledger occupancy (deepest deficit). The paper notes ([13]) that
// MMAs without lookahead pay with a larger SRAM — the ablation bench
// quantifies that.
type MDQF struct {
	b   int
	occ map[cell.PhysQueueID]int
	// known tracks every queue ever seen, so Select can consider
	// queues whose requests all left the pipeline already.
	known map[cell.PhysQueueID]struct{}
}

var _ HeadMMA = (*MDQF)(nil)

// NewMDQF builds an MDQF with granularity b.
func NewMDQF(b int) (*MDQF, error) {
	if b <= 0 {
		return nil, fmt.Errorf("mma: granularity must be positive, got %d", b)
	}
	return &MDQF{
		b:     b,
		occ:   make(map[cell.PhysQueueID]int),
		known: make(map[cell.PhysQueueID]struct{}),
	}, nil
}

// OnRequestEnter implements HeadMMA: MDQF reacts at entry time (it has
// no lookahead window, so the request is "seen" immediately).
func (m *MDQF) OnRequestEnter(q cell.PhysQueueID) {
	m.occ[q]--
	m.known[q] = struct{}{}
}

// OnRequestLeave implements HeadMMA (a no-op: the debit was taken at
// entry).
func (m *MDQF) OnRequestLeave(cell.PhysQueueID) {}

// OnReplenish credits one block.
func (m *MDQF) OnReplenish(q cell.PhysQueueID) {
	m.occ[q] += m.b
	m.known[q] = struct{}{}
}

// Occupancy implements HeadMMA.
func (m *MDQF) Occupancy(q cell.PhysQueueID) int { return m.occ[q] }

// Select implements HeadMMA: deepest deficit first, ties to the lowest
// queue id for determinism. Only queues in actual deficit (occupancy
// below zero, i.e. requests outstanding beyond replenished cells) are
// considered; otherwise the MMA idles like ECQF does.
func (m *MDQF) Select(eligible func(cell.PhysQueueID) bool) (cell.PhysQueueID, bool) {
	best, bestOcc, found := cell.NoPhysQueue, 0, false
	for q := range m.known {
		if m.occ[q] >= 0 || !eligible(q) {
			continue
		}
		if !found || m.occ[q] < bestOcc || (m.occ[q] == bestOcc && q < best) {
			best, bestOcc, found = q, m.occ[q], true
		}
	}
	return best, found
}
