package mma

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/bitset"
	"repro/internal/cell"
)

// HeadMMA is the interface of the head (egress-side) Memory Management
// Algorithm: every b slots it may order one replenishment of b cells
// from DRAM to the head SRAM.
//
// Implementations keep the §5.2 occupancy counters: incremented by b
// when a replenish request is *issued* (not when it completes) and
// decremented when a request leaves the lookahead. The counters are
// therefore a forward-looking ledger, deliberately distinct from the
// physical SRAM occupancy.
type HeadMMA interface {
	// OnRequestEnter records a scheduler request entering the pipeline.
	OnRequestEnter(q cell.PhysQueueID)
	// OnRequestLeave records a request leaving the lookahead (the cell
	// is granted to the arbiter this slot).
	OnRequestLeave(q cell.PhysQueueID)
	// Select picks the queue to replenish, or ok=false to stay idle.
	// eligible reports whether a queue can currently be replenished
	// from DRAM (it has a resident block and the write path allows it);
	// nil means every queue is eligible. When an eligibility bitset has
	// been installed with SetEligibility it takes precedence and the
	// closure is not consulted.
	Select(eligible func(cell.PhysQueueID) bool) (q cell.PhysQueueID, ok bool)
	// SetEligibility installs a dense per-physical-queue eligibility
	// bitset (the DRAM layer's "readable now" bits) consulted by Select
	// in place of the per-candidate closure. Pass nil to fall back to
	// the closure.
	SetEligibility(bits *bitset.Set)
	// OnReplenish credits the ledger with one block of b cells; the
	// caller invokes it when the replenish request is handed to the
	// DRAM side.
	OnReplenish(q cell.PhysQueueID)
	// Occupancy returns the ledger value for q (may be negative while
	// requests outpace replenishment).
	Occupancy(q cell.PhysQueueID) int
}

// ECQF is the Earliest Critical Queue First head MMA of §3: scan the
// lookahead from head to tail, decrementing a scratch copy of each
// queue's occupancy counter per request; the first queue whose scratch
// counter goes negative is "critical" and is selected. With lookahead
// L* = Q(b−1)+1 this minimizes SRAM to Q(b−1) cells.
//
// SelectScan performs that scan literally. Select answers the same
// question from an incrementally maintained index: queue q first goes
// critical at its (max(occ[q],0)+1)-th pending request, so the index
// keeps, per queue, the ring slot of exactly that request (critSlot)
// and a hierarchical bitmap over ring slots (crit) holding all of
// them. Selection is then a find-first-set from the window head —
// O(log₆₄ L) instead of re-walking the Q(b−1)+1 lookahead — and every
// ledger or window event updates the one affected queue in O(log₆₄ L).
//
// All per-queue state is kept in dense slices indexed by the physical
// queue ordinal; the scratch counters are epoch-stamped so SelectScan
// does no clearing work proportional to the queue count.
type ECQF struct {
	b    int
	look *Lookahead
	occ  []int32
	// scratch/stamp implement an epoch-validated scratch array: an
	// entry is live only when stamp[q] == epoch, so each SelectScan
	// starts from logically-zero counters without touching O(queues)
	// memory.
	scratch []int32
	stamp   []uint32
	epoch   uint32

	// pos[q] lists the ring slots of q's requests currently in the
	// window, oldest first; critSlot[q] is the slot of the request at
	// which q goes critical (-1 if none); crit is the bitmap of all
	// critical slots. elig, when non-nil, is the DRAM-published
	// readable-now bitset consulted per critical candidate.
	pos      []posRing
	critSlot []int32
	crit     *bitset.Set
	elig     *bitset.Set
}

var _ HeadMMA = (*ECQF)(nil)

// NewECQF builds an ECQF over the given lookahead with granularity b
// for a physical name space of queues ordinals. Queues beyond the
// initial size are accommodated by growing the arenas (amortized, off
// the steady-state path). The ECQF registers itself as the lookahead's
// shift observer to keep its index current; at most one ECQF may drive
// a given lookahead.
func NewECQF(look *Lookahead, b, queues int) (*ECQF, error) {
	if look == nil {
		return nil, fmt.Errorf("mma: ECQF needs a lookahead register")
	}
	if b <= 0 {
		return nil, fmt.Errorf("mma: granularity must be positive, got %d", b)
	}
	if queues < 0 {
		return nil, fmt.Errorf("mma: queues must be non-negative, got %d", queues)
	}
	if look.onShift != nil {
		// A silently replaced observer would leave the first ECQF's
		// index stale while its SelectScan stayed correct — fail loudly
		// instead.
		return nil, fmt.Errorf("mma: lookahead already has a shift observer (one ECQF per lookahead)")
	}
	e := &ECQF{
		b:        b,
		look:     look,
		occ:      make([]int32, queues),
		scratch:  make([]int32, queues),
		stamp:    make([]uint32, queues),
		pos:      make([]posRing, queues),
		critSlot: make([]int32, queues),
		crit:     bitset.New(look.Size()),
	}
	for i := range e.critSlot {
		e.critSlot[i] = -1
	}
	look.onShift = e.onShift
	return e, nil
}

func (e *ECQF) ensure(q cell.PhysQueueID) {
	if int(q) < len(e.occ) {
		return
	}
	n := int(q) + 1
	old := len(e.occ)
	e.occ = arena.Grown(e.occ, n)
	e.scratch = arena.Grown(e.scratch, n)
	e.stamp = arena.Grown(e.stamp, n)
	e.pos = arena.Grown(e.pos, n)
	e.critSlot = arena.Grown(e.critSlot, n)
	for i := old; i < n; i++ {
		e.critSlot[i] = -1
	}
}

// onShift maintains the window side of the index: the exiting entry's
// slot is removed from its queue's position ring and the entering
// entry's slot appended, then the affected queues' critical slots are
// recomputed. When in == out the pop-then-push order keeps the ring
// consistent.
func (e *ECQF) onShift(slot int, in, out cell.PhysQueueID) {
	if out != cell.NoPhysQueue {
		e.ensure(out)
		e.pos[out].popFront()
		e.recompute(out)
	}
	if in != cell.NoPhysQueue {
		e.ensure(in)
		e.pos[in].push(int32(slot))
		e.recompute(in)
	}
}

// ShiftDelivered advances the lookahead by one slot exactly like
// Lookahead.Shift, but with the exiting request's leave event (the
// OnRequestLeave ledger debit) folded into the same index update. The
// caller guarantees the exiting request — when there is one — is
// delivered in this very slot, which is the dense steady state of the
// core tick: the window exit and the delivery point are the same
// pipeline stage. Fusing the two events collapses their index work:
// popping q's oldest window position shifts the critical index from
// pos[k] to pos[k+1], and the ledger debit (k→k−1) shifts it straight
// back, so the critical bitmap usually does not move at all and the
// two hierarchical clear/set walks of the unfused sequence vanish. The
// intermediate state is unobservable (no selection runs between the
// shift and the delivery inside one slot), so the final index is
// bit-identical to Shift followed by OnRequestLeave — which the
// kernel differential suite pins.
func (e *ECQF) ShiftDelivered(in cell.PhysQueueID) (out cell.PhysQueueID) {
	slot, out := e.look.shiftRaw(in)
	if out != cell.NoPhysQueue {
		e.ensure(out)
		e.pos[out].popFront()
		e.occ[out]--
		e.recompute(out)
	}
	if in != cell.NoPhysQueue {
		e.ensure(in)
		e.pos[in].push(int32(slot))
		e.recompute(in)
	}
	return out
}

// recompute restores the critSlot/crit invariant for q after any
// event that moved its ledger or its window membership.
func (e *ECQF) recompute(q cell.PhysQueueID) {
	k := int(e.occ[q])
	if k < 0 {
		k = 0
	}
	slot := int32(-1)
	if r := &e.pos[q]; r.len() > k {
		slot = r.at(k)
	}
	if old := e.critSlot[q]; old != slot {
		if old >= 0 {
			e.crit.Clear(int(old))
		}
		if slot >= 0 {
			e.crit.Set(int(slot))
		}
		e.critSlot[q] = slot
	}
}

// setOcc force-sets a ledger value (test seam for reconstructing the
// paper's worked examples mid-flight).
func (e *ECQF) setOcc(q cell.PhysQueueID, v int32) {
	e.ensure(q)
	e.occ[q] = v
	e.recompute(q)
}

// OnRequestEnter implements HeadMMA. ECQF's ledger moves on replenish
// and leave events only; entry is a no-op but part of the interface so
// deficit-based MMAs can observe it. (Window membership is tracked at
// the lookahead shift, which is when the request physically enters the
// register.)
func (e *ECQF) OnRequestEnter(cell.PhysQueueID) {}

// OnRequestLeave implements HeadMMA.
func (e *ECQF) OnRequestLeave(q cell.PhysQueueID) {
	e.ensure(q)
	e.occ[q]--
	e.recompute(q)
}

// OnReplenish credits the ledger with one block of b cells; the caller
// invokes it when the replenish request is handed to the DRAM side.
func (e *ECQF) OnReplenish(q cell.PhysQueueID) {
	e.ensure(q)
	e.occ[q] += int32(e.b)
	e.recompute(q)
}

// Occupancy implements HeadMMA.
func (e *ECQF) Occupancy(q cell.PhysQueueID) int {
	if q < 0 || int(q) >= len(e.occ) {
		return 0
	}
	return int(e.occ[q])
}

// SetEligibility implements HeadMMA.
func (e *ECQF) SetEligibility(bits *bitset.Set) { e.elig = bits }

func (e *ECQF) eligibleQ(q cell.PhysQueueID, eligible func(cell.PhysQueueID) bool) bool {
	if e.elig != nil {
		return e.elig.Has(int(q))
	}
	return eligible == nil || eligible(q)
}

// Select implements HeadMMA: the earliest critical queue, in lookahead
// order, resolved from the critical-slot index. The walk visits
// critical slots in head-to-tail order (two bitmap segments, since the
// window wraps the ring) and returns the first whose queue is
// eligible; an ineligible critical queue can never win — in the
// reference scan its scratch counter is pushed back by b so it only
// re-triggers, still ineligible, b requests later — so skipping it is
// exact. When no critical queue is eligible the MMA idles —
// replenishing uncritical queues would only inflate the SRAM occupancy
// beyond the dimensioned bound.
//
//pktbuf:hotpath
func (e *ECQF) Select(eligible func(cell.PhysQueueID) bool) (cell.PhysQueueID, bool) {
	head := e.look.head
	n := len(e.look.ring)
	// Circular walk over the critical-slot bitmap from the window head:
	// one wrapped find-first-set per candidate, terminating when the
	// circular distance from head stops growing (the walk has lapped).
	slot := e.crit.NextFromWrap(head)
	for slot >= 0 {
		if q := e.look.ring[slot]; e.eligibleQ(q, eligible) {
			return q, true
		}
		next := e.crit.NextFromWrap(slot + 1)
		dNext, dSlot := next-head, slot-head
		if dNext < 0 {
			dNext += n
		}
		if dSlot < 0 {
			dSlot += n
		}
		if next < 0 || dNext <= dSlot {
			break
		}
		slot = next
	}
	return cell.NoPhysQueue, false
}

// SelectScan is the retained reference implementation of Select: the
// §3 linear scan over the lookahead with epoch-stamped scratch
// counters. The scratch counters hold the number of pending lookahead
// requests seen so far per queue; queue q is critical at the request
// that makes occ[q] − seen[q] < 0. The differential tests assert
// Select ≡ SelectScan over seeded random workloads.
func (e *ECQF) SelectScan(eligible func(cell.PhysQueueID) bool) (cell.PhysQueueID, bool) {
	e.epoch++
	if e.epoch == 0 {
		// uint32 wrap: stale stamps could alias the new epoch.
		clear(e.stamp)
		e.epoch = 1
	}
	chosen, found := cell.NoPhysQueue, false
	e.look.Scan(func(_ int, q cell.PhysQueueID) bool {
		if q == cell.NoPhysQueue {
			return true
		}
		e.ensure(q)
		if e.stamp[q] != e.epoch {
			e.stamp[q] = e.epoch
			e.scratch[q] = 0
		}
		e.scratch[q]++
		if e.occ[q]-e.scratch[q] < 0 {
			if e.eligibleQ(q, eligible) {
				chosen, found = q, true
				return false
			}
			// Critical but not replenishable this cycle (e.g. its next
			// block's write is still in flight toward DRAM): keep
			// scanning for a later critical queue, and reset this
			// queue's scratch so criticality re-triggers only after b
			// more of its requests.
			e.scratch[q] -= int32(e.b)
		}
		return true
	})
	return chosen, found
}

// MDQF is the Most Deficit Queue First baseline: it ignores the
// lookahead contents and selects the eligible queue with the lowest
// ledger occupancy (deepest deficit). The paper notes ([13]) that
// MMAs without lookahead pay with a larger SRAM — the ablation bench
// quantifies that.
//
// Select resolves the deepest deficit from a bucketed max-tracker over
// deficit values instead of scanning the physical name space; see the
// package documentation for the index invariants.
type MDQF struct {
	b    int
	occ  []int32
	idx  *maxTracker
	elig *bitset.Set
}

var _ HeadMMA = (*MDQF)(nil)

// NewMDQF builds an MDQF with granularity b for a physical name space
// of queues ordinals.
func NewMDQF(b, queues int) (*MDQF, error) {
	if b <= 0 {
		return nil, fmt.Errorf("mma: granularity must be positive, got %d", b)
	}
	if queues < 0 {
		return nil, fmt.Errorf("mma: queues must be non-negative, got %d", queues)
	}
	return &MDQF{b: b, occ: make([]int32, queues), idx: newMaxTracker(queues, 1)}, nil
}

func (m *MDQF) ensure(q cell.PhysQueueID) {
	if int(q) >= len(m.occ) {
		m.occ = arena.Grown(m.occ, int(q)+1)
	}
}

// deficit converts a ledger value to the tracker's key: only queues
// with occupancy below zero are candidates.
func deficit(occ int32) int32 {
	if occ >= 0 {
		return 0
	}
	return -occ
}

// OnRequestEnter implements HeadMMA: MDQF reacts at entry time (it has
// no lookahead window, so the request is "seen" immediately).
func (m *MDQF) OnRequestEnter(q cell.PhysQueueID) {
	m.ensure(q)
	old := m.occ[q]
	m.occ[q] = old - 1
	m.idx.update(int(q), deficit(old), deficit(old-1))
}

// OnRequestLeave implements HeadMMA (a no-op: the debit was taken at
// entry).
func (m *MDQF) OnRequestLeave(cell.PhysQueueID) {}

// OnReplenish credits one block.
func (m *MDQF) OnReplenish(q cell.PhysQueueID) {
	m.ensure(q)
	old := m.occ[q]
	m.occ[q] = old + int32(m.b)
	m.idx.update(int(q), deficit(old), deficit(old+int32(m.b)))
}

// Occupancy implements HeadMMA.
func (m *MDQF) Occupancy(q cell.PhysQueueID) int {
	if q < 0 || int(q) >= len(m.occ) {
		return 0
	}
	return int(m.occ[q])
}

// SetEligibility implements HeadMMA.
func (m *MDQF) SetEligibility(bits *bitset.Set) { m.elig = bits }

// Select implements HeadMMA: deepest deficit first, ties to the lowest
// queue id for determinism, resolved from the deficit buckets. Only
// queues in actual deficit (occupancy below zero, i.e. requests
// outstanding beyond replenished cells) are considered; otherwise the
// MMA idles like ECQF does.
func (m *MDQF) Select(eligible func(cell.PhysQueueID) bool) (cell.PhysQueueID, bool) {
	tr := m.idx
	for bi := tr.nonEmpty.Last(); bi >= 0; bi = tr.nonEmpty.PrevFrom(bi - 1) {
		set := tr.buckets[bi]
		if bi == tr.overflowAt {
			// Overflow bucket: members have deficit ≥ overflowAt with
			// mixed magnitudes; resolve exactly from the ledger. Any
			// member beats every exact bucket below.
			best, bestOcc, found := cell.NoPhysQueue, int32(0), false
			for i := set.First(); i >= 0; i = set.NextFrom(i + 1) {
				if found && m.occ[i] >= bestOcc {
					continue
				}
				q := cell.PhysQueueID(i)
				if m.elig != nil {
					if !m.elig.Has(i) {
						continue
					}
				} else if eligible != nil && !eligible(q) {
					continue
				}
				best, bestOcc, found = q, m.occ[i], true
			}
			if found {
				return best, true
			}
			continue
		}
		// Exact bucket: every member has deficit bi; lowest eligible
		// id wins. With an eligibility bitset the walk ANDs it in at
		// word granularity.
		if m.elig != nil {
			if i := set.NextAndFrom(m.elig, 0); i >= 0 {
				return cell.PhysQueueID(i), true
			}
			continue
		}
		for i := set.First(); i >= 0; i = set.NextFrom(i + 1) {
			q := cell.PhysQueueID(i)
			if eligible == nil || eligible(q) {
				return q, true
			}
		}
	}
	return cell.NoPhysQueue, false
}

// SelectScan is the retained reference implementation of Select: the
// linear scan over the dense physical name space. The differential
// tests assert Select ≡ SelectScan over seeded random workloads.
func (m *MDQF) SelectScan(eligible func(cell.PhysQueueID) bool) (cell.PhysQueueID, bool) {
	best, bestOcc, found := cell.NoPhysQueue, int32(0), false
	for i := range m.occ {
		q := cell.PhysQueueID(i)
		if m.occ[i] >= 0 || (found && m.occ[i] >= bestOcc) || !m.eligibleQ(q, eligible) {
			continue
		}
		best, bestOcc, found = q, m.occ[i], true
	}
	return best, found
}

func (m *MDQF) eligibleQ(q cell.PhysQueueID, eligible func(cell.PhysQueueID) bool) bool {
	if m.elig != nil {
		return m.elig.Has(int(q))
	}
	return eligible == nil || eligible(q)
}
