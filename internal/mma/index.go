package mma

import "repro/internal/bitset"

// posRing is a growable FIFO of lookahead ring slots for one queue's
// in-window requests, oldest first, with O(1) indexed access (the
// ECQF index addresses the k-th oldest request directly). Steady
// state never grows: capacity doubles on overflow, amortized.
type posRing struct {
	buf  []int32
	head int
	n    int
}

func (r *posRing) len() int { return r.n }

func (r *posRing) push(v int32) {
	if r.n == len(r.buf) {
		c := 2 * len(r.buf)
		if c < 4 {
			c = 4
		}
		nb := make([]int32, c)
		for i := 0; i < r.n; i++ {
			nb[i] = r.at(i)
		}
		r.buf, r.head = nb, 0
	}
	j := r.head + r.n
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	r.buf[j] = v
	r.n++
}

func (r *posRing) popFront() int32 {
	v := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

// at returns the i-th oldest element; i must be in [0, len()).
func (r *posRing) at(i int) int32 {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return r.buf[j]
}

// maxTracker is the bucketed max index behind TailMMA and MDQF: each
// member queue with a positive tracked value (tail-SRAM occupancy,
// head-side deficit) sits in the hierarchical bitset of that exact
// value's bucket, and nonEmpty indexes the non-empty buckets, so
// "largest value first, ties to the lowest queue id" resolves in
// O(log₆₄) bitmap probes. Values at or above overflowAt share one
// overflow bucket whose winner is found by an exact scan of its
// members — the owner keeps the true values, so selections stay
// bit-identical to a full linear scan at any magnitude while the
// bucket arena stays O(overflowAt · Q/64) words.
type maxTracker struct {
	overflowAt int
	buckets    []*bitset.Set // [1, overflowAt]; index overflowAt = overflow
	nonEmpty   *bitset.Set   // over bucket indices
	members    int           // capacity for lazily allocated buckets
}

// newMaxTracker builds a tracker for members queues whose candidacy
// threshold is minValue (values below it never win; the overflow
// boundary is kept above it so overflow members always qualify).
func newMaxTracker(members, minValue int) *maxTracker {
	overflowAt := 64
	if overflowAt < minValue {
		overflowAt = minValue
	}
	return &maxTracker{
		overflowAt: overflowAt,
		buckets:    make([]*bitset.Set, overflowAt+1),
		nonEmpty:   bitset.New(overflowAt + 1),
		members:    members,
	}
}

func (t *maxTracker) bucketOf(v int32) int {
	if v <= 0 {
		return -1
	}
	if int(v) >= t.overflowAt {
		return t.overflowAt
	}
	return int(v)
}

// update moves queue q from tracked value oldV to tracked value newV.
// Non-positive values mean "not a member".
func (t *maxTracker) update(q int, oldV, newV int32) {
	if q >= t.members {
		t.members = q + 1
	}
	ob, nb := t.bucketOf(oldV), t.bucketOf(newV)
	if ob == nb {
		return
	}
	if ob >= 0 {
		set := t.buckets[ob]
		set.Clear(q)
		if set.Empty() {
			t.nonEmpty.Clear(ob)
		}
	}
	if nb >= 0 {
		set := t.buckets[nb]
		if set == nil {
			set = bitset.New(t.members)
			t.buckets[nb] = set
		} else if q >= set.Len() {
			set.Grow(t.members)
		}
		if set.Empty() {
			t.nonEmpty.Set(nb)
		}
		set.Set(q)
	}
}
