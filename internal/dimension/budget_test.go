package dimension

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
)

func TestLatencySlotsBudget(t *testing.T) {
	c := oc3072(8, 0)
	// β=1 must equal the paper's equation (3).
	if got, want := c.LatencySlotsBudget(1), c.LatencySlots(); got != want {
		t.Errorf("budget-1 latency = %d, want %d", got, want)
	}
	// β=2 adds one extra Dmax·b of skip delay.
	want := c.LatencySlots() + c.MaxSkips()*c.Bsmall
	if got := c.LatencySlotsBudget(2); got != want {
		t.Errorf("budget-2 latency = %d, want %d", got, want)
	}
	// Degenerate budget clamps to 1.
	if got := c.LatencySlotsBudget(0); got != c.LatencySlots() {
		t.Errorf("budget-0 latency = %d", got)
	}
	// RADS case stays zero for any budget.
	if got := oc3072(32, 0).LatencySlotsBudget(3); got != 0 {
		t.Errorf("RADS budget latency = %d", got)
	}
}

func TestLatencyBudgetMonotoneProperty(t *testing.T) {
	f := func(qRaw uint16, bExp, beta uint8) bool {
		q := int(qRaw)%1024 + 1
		b := 1 << (int(bExp) % 6)
		c := Config{Q: q, B: 32, Bsmall: b, M: 256}
		if c.Validate() != nil {
			return true
		}
		b1 := int(beta)%4 + 1
		// Monotone in budget; always ≥ the analytic equation (3).
		if c.LatencySlotsBudget(b1+1) < c.LatencySlotsBudget(b1) {
			return false
		}
		return c.LatencySlotsBudget(b1) >= c.LatencySlots() || c.RRSize() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchedulingTimeOtherRates(t *testing.T) {
	// Sanity: the OC-192 slot is 51.2 ns, so b=1 scheduling gets the
	// full 51.2 ns (trivial), matching the paper's remark that slower
	// rates don't need any of this machinery.
	c := Config{Q: 16, B: 2, Bsmall: 1, M: 2, Lookahead: 0}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.SchedulingTimeNS(cell.OC192); got != 51.2 {
		t.Errorf("sched time = %v", got)
	}
}

func TestTotalSRAMBytes(t *testing.T) {
	c := oc3072(4, FullLookahead(512, 4))
	want := (c.HeadSRAMSize() + c.TailSRAMSize()) * cell.Size
	if got := c.TotalSRAMBytes(); got != want {
		t.Errorf("TotalSRAMBytes = %d, want %d", got, want)
	}
}

func TestErrInfeasibleExists(t *testing.T) {
	if ErrInfeasible == nil {
		t.Fatal("ErrInfeasible must be defined for search helpers")
	}
}
