package dimension

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cell"
)

// oc768 and oc3072 are the paper's two evaluation points (§7, §8).
func oc768(b, lookahead int) Config {
	return Config{Q: 128, B: 8, Bsmall: b, M: 256, Lookahead: lookahead}
}

func oc3072(b, lookahead int) Config {
	return Config{Q: 512, B: 32, Bsmall: b, M: 256, Lookahead: lookahead}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"oc3072 b=8", oc3072(8, 100), true},
		{"rads", oc3072(32, 100), true},
		{"zero Q", Config{Q: 0, B: 8, Bsmall: 8, M: 256}, false},
		{"zero B", Config{Q: 1, B: 0, Bsmall: 1, M: 256}, false},
		{"zero b", Config{Q: 1, B: 8, Bsmall: 0, M: 256}, false},
		{"b exceeds B", Config{Q: 1, B: 8, Bsmall: 16, M: 256}, false},
		{"b not divisor", Config{Q: 1, B: 8, Bsmall: 3, M: 256}, false},
		{"zero M", Config{Q: 1, B: 8, Bsmall: 8, M: 0}, false},
		{"group mismatch", Config{Q: 1, B: 8, Bsmall: 1, M: 12}, false},
		{"negative lookahead", Config{Q: 1, B: 8, Bsmall: 8, M: 256, Lookahead: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestGroupStructure(t *testing.T) {
	c := oc3072(8, 0)
	if got := c.BanksPerGroup(); got != 4 {
		t.Errorf("BanksPerGroup = %d, want 4", got)
	}
	if got := c.Groups(); got != 64 {
		t.Errorf("Groups = %d, want 64", got)
	}
	if got := c.QueuesPerGroup(); got != 8 {
		t.Errorf("QueuesPerGroup = %d, want 8", got)
	}
}

func TestFullLookahead(t *testing.T) {
	// §3: ECQF needs lookahead Q(B-1)+1.
	if got := FullLookahead(512, 32); got != 512*31+1 {
		t.Errorf("FullLookahead(512,32) = %d", got)
	}
	if got := FullLookahead(10, 1); got != 1 {
		t.Errorf("FullLookahead(10,1) = %d, want 1", got)
	}
}

func TestRADSSRAMSizeFullLookahead(t *testing.T) {
	// §3: minimum SRAM with ECQF is Q(B-1).
	if got := RADSSRAMSize(512, FullLookahead(512, 32), 32); got != 512*31 {
		t.Errorf("full-lookahead size = %d, want %d", got, 512*31)
	}
	// Beyond-full lookahead changes nothing.
	if got := RADSSRAMSize(512, 10*FullLookahead(512, 32), 32); got != 512*31 {
		t.Errorf("over-full lookahead size = %d", got)
	}
}

func TestRADSSRAMSizePaperAnchors(t *testing.T) {
	// §7.2: OC-3072 SRAM ranges 6.2 MB (min lookahead) to 1.0 MB (max);
	// OC-768 ranges 300 kB to 64 kB. Check within 15%.
	approx := func(gotCells int, wantBytes float64) bool {
		got := float64(gotCells * cell.Size)
		return math.Abs(got-wantBytes)/wantBytes < 0.15
	}
	if got := RADSSRAMSize(512, FullLookahead(512, 32), 32); !approx(got, 1.0e6) {
		t.Errorf("OC-3072 max-lookahead = %d cells (%.2f MB), want ~1.0 MB", got, float64(got*64)/1e6)
	}
	if got := RADSSRAMSize(512, 32, 32); !approx(got, 6.2e6) {
		t.Errorf("OC-3072 min-lookahead = %d cells (%.2f MB), want ~6.2 MB", got, float64(got*64)/1e6)
	}
	if got := RADSSRAMSize(128, FullLookahead(128, 8), 8); !approx(got, 64e3) {
		t.Errorf("OC-768 max-lookahead = %d cells (%.1f kB), want ~64 kB", got, float64(got*64)/1e3)
	}
	if got := RADSSRAMSize(128, 8, 8); !approx(got, 300e3) {
		t.Errorf("OC-768 min-lookahead = %d cells (%.1f kB), want ~300 kB", got, float64(got*64)/1e3)
	}
}

func TestRADSSRAMSizeMonotone(t *testing.T) {
	// Property: size is non-increasing in lookahead, non-decreasing in
	// Q and b.
	f := func(q8 uint8, lRaw uint16, bExp uint8) bool {
		q := int(q8)%100 + 1
		b := 1 << (int(bExp) % 6) // 1..32
		l := int(lRaw) % (FullLookahead(q, b) + 10)
		s := RADSSRAMSize(q, l, b)
		if s < 0 {
			return false
		}
		if RADSSRAMSize(q, l+1, b) > s {
			return false
		}
		if RADSSRAMSize(q+1, l, b) < s {
			return false
		}
		if b < 32 && RADSSRAMSize(q, l, b*2) < s {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRADSSRAMSizeDegenerate(t *testing.T) {
	if got := RADSSRAMSize(0, 10, 8); got != 0 {
		t.Errorf("q=0 size = %d", got)
	}
	if got := RADSSRAMSize(10, 10, 0); got != 0 {
		t.Errorf("b=0 size = %d", got)
	}
	// b=1: no batching slack at full lookahead.
	if got := RADSSRAMSize(100, FullLookahead(100, 1), 1); got != 0 {
		t.Errorf("b=1 full-lookahead size = %d, want 0", got)
	}
}

func TestRRSizeTable2(t *testing.T) {
	// Table 2, OC-3072 row (Q=512, B=32, M=256). The b=1..8 columns
	// follow R = ⌈2Q/G⌉·(B/b) exactly; the printed b=16 and b=32
	// cells (8 and 0) reflect the same bound with the degenerate
	// no-overlap case — we reproduce 0 at b=32 (B/b=1) and flag the
	// b=16 delta in EXPERIMENTS.md.
	want := map[int]int{1: 4096, 2: 1024, 4: 256, 8: 64, 16: 16, 32: 0}
	for b, r := range want {
		if got := oc3072(b, 0).RRSize(); got != r {
			t.Errorf("OC-3072 b=%d: RRSize = %d, want %d", b, got, r)
		}
	}
	// OC-768 row (Q=128, B=8, M=256).
	want768 := map[int]int{1: 64, 2: 16, 4: 4, 8: 0}
	for b, r := range want768 {
		if got := oc768(b, 0).RRSize(); got != r {
			t.Errorf("OC-768 b=%d: RRSize = %d, want %d", b, got, r)
		}
	}
}

func TestSchedulingTimeTable2(t *testing.T) {
	// Table 2: sched time = b × slot time; "-" (0) when RR empty.
	tests := []struct {
		cfg  Config
		rate cell.LineRate
		want float64
	}{
		{oc3072(16, 0), cell.OC3072, 51.2},
		{oc3072(8, 0), cell.OC3072, 25.6},
		{oc3072(4, 0), cell.OC3072, 12.8},
		{oc3072(2, 0), cell.OC3072, 6.4},
		{oc3072(1, 0), cell.OC3072, 3.2},
		{oc3072(32, 0), cell.OC3072, 0},
		{oc768(4, 0), cell.OC768, 51.2},
		{oc768(2, 0), cell.OC768, 25.6},
		{oc768(1, 0), cell.OC768, 12.8},
		{oc768(8, 0), cell.OC768, 0},
	}
	for _, tt := range tests {
		if got := tt.cfg.SchedulingTimeNS(tt.rate); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("b=%d: sched time = %v, want %v", tt.cfg.Bsmall, got, tt.want)
		}
	}
}

func TestMaxSkipsBounds(t *testing.T) {
	// Dmax = (⌈2Q/G⌉−1)(B/b); zero in the RADS case.
	c := oc3072(8, 0)
	// G=64, 2Q/G=16, B/b=4 → 15*4=60.
	if got := c.MaxSkips(); got != 60 {
		t.Errorf("MaxSkips = %d, want 60", got)
	}
	if got := oc3072(32, 0).MaxSkips(); got != 0 {
		t.Errorf("RADS MaxSkips = %d, want 0", got)
	}
}

func TestMaxSkipsSingleQueueTwoStreams(t *testing.T) {
	// Even a single queue contributes two streams (read + write) to
	// its group, so one stream can overtake the other: Dmax = (2−1)·2.
	c := Config{Q: 1, B: 8, Bsmall: 4, M: 16}
	if got := c.StreamsPerGroup(); got != 2 {
		t.Errorf("StreamsPerGroup = %d, want 2", got)
	}
	if got := c.MaxSkips(); got != 2 {
		t.Errorf("MaxSkips = %d, want 2", got)
	}
}

func TestLatencySlots(t *testing.T) {
	c := oc3072(8, 0)
	wantR, wantD := 64, 60
	want := (wantR-1)*8 + wantD*8 + 32
	if got := c.LatencySlots(); got != want {
		t.Errorf("LatencySlots = %d, want %d", got, want)
	}
	if got := oc3072(32, 0).LatencySlots(); got != 0 {
		t.Errorf("RADS LatencySlots = %d, want 0", got)
	}
}

func TestHeadSRAMSize(t *testing.T) {
	c := oc3072(8, FullLookahead(512, 8))
	want := 512*7 + 60*8
	if got := c.HeadSRAMSize(); got != want {
		t.Errorf("HeadSRAMSize = %d, want %d", got, want)
	}
	// RADS case reduces to rads_sram_size.
	r := oc3072(32, FullLookahead(512, 32))
	if got := r.HeadSRAMSize(); got != 512*31 {
		t.Errorf("RADS HeadSRAMSize = %d, want %d", got, 512*31)
	}
}

func TestCFDSBeatsRADSOnSRAM(t *testing.T) {
	// The paper's headline: CFDS reduces SRAM size by about an order
	// of magnitude at the optimum b. Compare totals at full lookahead.
	rads := oc3072(32, FullLookahead(512, 32))
	cfds := oc3072(4, FullLookahead(512, 4))
	if cfds.TotalSRAMBytes()*4 >= rads.TotalSRAMBytes() {
		t.Errorf("CFDS b=4 total=%d B not <1/4 of RADS total=%d B",
			cfds.TotalSRAMBytes(), rads.TotalSRAMBytes())
	}
}

func TestDelayAccounting(t *testing.T) {
	c := oc3072(8, 1000)
	if got := c.DelaySlots(); got != 1000+c.LatencySlots() {
		t.Errorf("DelaySlots = %d", got)
	}
	sec := c.DelaySeconds(cell.OC3072)
	want := float64(c.DelaySlots()) * 3.2e-9
	if math.Abs(sec-want) > 1e-15 {
		t.Errorf("DelaySeconds = %v, want %v", sec, want)
	}
}

func TestIsRADS(t *testing.T) {
	if !oc3072(32, 0).IsRADS() {
		t.Error("b=B should be RADS")
	}
	if oc3072(16, 0).IsRADS() {
		t.Error("b<B should not be RADS")
	}
}

func TestRRSizePropertyNonNegativeAndMonotone(t *testing.T) {
	// Property: RRSize and MaxSkips are non-negative, RRSize > MaxSkips
	// whenever both are nonzero, and halving b never shrinks the RR.
	f := func(qRaw uint16, bExp, mExp uint8) bool {
		q := int(qRaw)%2048 + 1
		bigB := 32
		b := 1 << (int(bExp) % 6)
		m := bigB << (int(mExp) % 5) // keep M divisible by B/b
		c := Config{Q: q, B: bigB, Bsmall: b, M: m}
		if c.Validate() != nil {
			return true // skip invalid combinations
		}
		r, d := c.RRSize(), c.MaxSkips()
		if r < 0 || d < 0 {
			return false
		}
		if r > 0 && d >= r {
			return false
		}
		if b > 1 {
			half := Config{Q: q, B: bigB, Bsmall: b / 2, M: m}
			if half.Validate() == nil && half.RRSize() < r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
