// Package dimension implements the paper's dimensioning formulas: the
// RADS SRAM size / lookahead trade-off of [13], and the CFDS register
// and latency bounds of §5 (equations (1)-(4)).
//
// The formulas are the analytic counterpart of the slot-accurate
// simulator in internal/core: the simulator's property tests check
// that observed occupancies, skip counts and delays never exceed the
// bounds computed here.
package dimension

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cell"
)

// Config carries the parameters of Table 1 (the RADS/CFDS legend).
type Config struct {
	// Q is the number of Virtual Output Queues the buffer serves.
	// With renaming enabled this is the number of *physical* queues
	// (the paper oversubscribes physical queues by a factor A; all
	// dimensioning uses the physical count).
	Q int
	// B is the RADS granularity: the DRAM random access time measured
	// in time slots. Transfers in RADS move B cells every B slots.
	B int
	// Bsmall is the CFDS granularity b (b ≤ B). CFDS transfers move b
	// cells every b slots; B/b accesses are overlapped across the
	// banks of a group.
	Bsmall int
	// M is the number of DRAM banks.
	M int
	// Lookahead is the MMA lookahead shift-register size L in slots.
	Lookahead int
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Q <= 0:
		return fmt.Errorf("dimension: Q must be positive, got %d", c.Q)
	case c.B <= 0:
		return fmt.Errorf("dimension: B must be positive, got %d", c.B)
	case c.Bsmall <= 0:
		return fmt.Errorf("dimension: b must be positive, got %d", c.Bsmall)
	case c.Bsmall > c.B:
		return fmt.Errorf("dimension: b=%d must not exceed B=%d", c.Bsmall, c.B)
	case c.B%c.Bsmall != 0:
		return fmt.Errorf("dimension: b=%d must divide B=%d", c.Bsmall, c.B)
	case c.M <= 0:
		return fmt.Errorf("dimension: M must be positive, got %d", c.M)
	case c.M%(c.B/c.Bsmall) != 0:
		return fmt.Errorf("dimension: banks per group B/b=%d must divide M=%d", c.B/c.Bsmall, c.M)
	case c.Lookahead < 0:
		return fmt.Errorf("dimension: lookahead must be non-negative, got %d", c.Lookahead)
	}
	return nil
}

// BanksPerGroup returns B/b, the number of banks in each group (§5.1).
func (c Config) BanksPerGroup() int { return c.B / c.Bsmall }

// Groups returns G = M/(B/b), the number of bank groups (§5.1).
func (c Config) Groups() int { return c.M / c.BanksPerGroup() }

// QueuesPerGroup returns ⌈Q/G⌉, the number of queues statically
// assigned to each bank group (§5.1).
func (c Config) QueuesPerGroup() int {
	g := c.Groups()
	return (c.Q + g - 1) / g
}

// FullLookahead returns L* = Q(b−1)+1, the lookahead at which ECQF
// achieves its minimum SRAM size (§3). For b = 1 the MMA needs no
// batching slack and one slot of lookahead suffices.
func FullLookahead(q, b int) int { return q*(b-1) + 1 }

// ecqfSlackFactor calibrates the sub-full-lookahead growth of the
// RADS SRAM size against the paper's §7.2 anchor numbers (300 kB →
// 64 kB for OC-768; 6.2 MB → 1.0 MB for OC-3072). See DESIGN.md §2.
const ecqfSlackFactor = 0.8

// RADSSRAMSize returns rads_sram_size(Q, L, b): the head-SRAM size in
// cells needed for a zero-miss guarantee with Q queues, granularity b
// and lookahead L (the function the paper imports from [13]).
//
// At full lookahead L ≥ L* = Q(b−1)+1 the ECQF bound Q(b−1) applies.
// For shorter lookaheads the requirement grows as
// Q·b·0.8·ln(L*/L); the constant is calibrated to the paper's §7.2
// endpoints (see DESIGN.md). L is clamped below at b (the MMA cannot
// act on less than one batch of pending requests).
func RADSSRAMSize(q, lookahead, b int) int {
	if q <= 0 || b <= 0 {
		return 0
	}
	base := q * (b - 1)
	full := FullLookahead(q, b)
	if lookahead >= full {
		return base
	}
	l := lookahead
	if l < b {
		l = b
	}
	extra := ecqfSlackFactor * float64(q) * float64(b) * math.Log(float64(full)/float64(l))
	return base + int(math.Ceil(extra))
}

// StreamsPerGroup returns 2·⌈Q/G⌉: every queue contributes one read
// and one write request stream to its statically assigned group. (For
// Q ≥ G this equals the paper's 2Q/G; for sparse configurations the
// two streams of a single queue still share the group's banks, so the
// factor 2 must survive the ceiling.)
func (c Config) StreamsPerGroup() int {
	g := c.Groups()
	return 2 * ((c.Q + g - 1) / g)
}

// RRSize returns R, the Requests Register size of equation (1):
//
//	R = 2⌈Q/G⌉ · (B/b)
//
// Within one group at most 2⌈Q/G⌉ request streams (a read and a write
// stream per resident queue) can target the same bank before the
// round-robin interleave moves them on, and each access occupies the
// bank for B/b DSA cycles, so at most B/b requests accumulate behind
// each. When B/b = 1 an access completes before the next decision and
// no reordering is ever needed, so R = 0 (RADS degenerate case).
func (c Config) RRSize() int {
	bpg := c.BanksPerGroup()
	if bpg <= 1 {
		return 0
	}
	return c.StreamsPerGroup() * bpg
}

// MaxSkips returns Dmax, equation (2): the maximum number of times the
// DSA can skip over a pending request.
//
//	Dmax = (2⌈Q/G⌉ − 1) · (B/b)
//
// While a request waits for its locked bank, each of the other
// 2⌈Q/G⌉−1 streams mapped to the group can overtake it at most B/b
// times (once per cycle of the bank's busy window).
func (c Config) MaxSkips() int {
	bpg := c.BanksPerGroup()
	if bpg <= 1 {
		return 0
	}
	streams := c.StreamsPerGroup()
	if streams <= 1 {
		return 0
	}
	return (streams - 1) * bpg
}

// LatencySlots returns Λ, equation (3): the size of the latency shift
// register in slots — the maximum delay a replenish request can
// suffer in the DSS before its cells are resident in SRAM.
//
//	Λ = (R−1)·b + Dmax·b + B
//
// (R−1)·b slots to drain ahead of it in FIFO order, Dmax·b slots of
// skip delay, plus the B-slot DRAM access itself. Zero for the RADS
// degenerate case (the MMA already accounts for the in-flight access).
func (c Config) LatencySlots() int { return c.LatencySlotsBudget(1) }

// LatencySlotsBudget generalizes equation (3) to a DSA that issues up
// to budget requests per cycle (the implementation issues 2 — one
// read and one write block per b slots, matching the 2× line-rate
// buffer bandwidth). Each lock window of a waiting request's bank now
// admits budget overtakes per cycle, scaling the skip term:
//
//	Λ(β) = (R−1)·b + β·Dmax·b + B
func (c Config) LatencySlotsBudget(budget int) int {
	r := c.RRSize()
	if r == 0 {
		return 0
	}
	if budget < 1 {
		budget = 1
	}
	return (r-1)*c.Bsmall + budget*c.MaxSkips()*c.Bsmall + c.B
}

// HeadSRAMSize returns equation (4): the head SRAM size in cells for a
// CFDS configuration — the MMA requirement plus the reorder slack.
//
//	SRAM = rads_sram_size(Q, L, b) + Dmax·b
func (c Config) HeadSRAMSize() int {
	return RADSSRAMSize(c.Q, c.Lookahead, c.Bsmall) + c.MaxSkips()*c.Bsmall
}

// TailSRAMSize returns the tail SRAM size in cells. The t-MMA bound is
// Q(b−1)+1 (§3); CFDS adds the same reorder slack as the head side,
// because written cells stay resident until the DSS issues them. (The
// simulator's configuration adds further engineering slack on top —
// staging residency and MMA phase — see core.Config.ApplyDefaults.)
func (c Config) TailSRAMSize() int {
	base := c.Q*(c.Bsmall-1) + 1
	return base + c.MaxSkips()*c.Bsmall
}

// TotalSRAMBytes returns the combined head+tail SRAM size in bytes
// (the quantity plotted in Figure 10's area panel).
func (c Config) TotalSRAMBytes() int {
	return (c.HeadSRAMSize() + c.TailSRAMSize()) * cell.Size
}

// DelaySlots returns the total request-to-delivery pipeline length in
// slots: the MMA lookahead plus the DSS latency register (the x-axis
// of Figure 10).
func (c Config) DelaySlots() int { return c.Lookahead + c.LatencySlots() }

// DelaySeconds converts DelaySlots to seconds at the given line rate.
func (c Config) DelaySeconds(rate cell.LineRate) float64 {
	return float64(c.DelaySlots()) * rate.SlotTimeNS() * 1e-9
}

// SchedulingTimeNS returns the time available to the RR selection
// logic to schedule one request: one DSA cycle, i.e. b slots (the
// quantity in Table 2's "Sched. time" rows). Returns 0 when the RR is
// degenerate (R = 0), shown as "-" in the paper.
func (c Config) SchedulingTimeNS(rate cell.LineRate) float64 {
	if c.RRSize() == 0 {
		return 0
	}
	return float64(c.Bsmall) * rate.SlotTimeNS()
}

// ErrInfeasible is returned by search helpers when no configuration
// satisfies the constraint.
var ErrInfeasible = errors.New("dimension: no feasible configuration")

// IsRADS reports whether the configuration degenerates to the RADS
// baseline (b = B: one bank group access at a time, no reordering).
func (c Config) IsRADS() bool { return c.Bsmall == c.B }
