// Sizing: explores the paper's central trade-off for a buffer you
// might actually build — how the CFDS granularity b moves SRAM sizes,
// technology cost (CACTI-style access time and area at 0.13 µm) and
// pipeline delay for a given queue count and line rate.
//
// Run with: go run ./examples/sizing
package main

import (
	"fmt"
	"log"

	"repro/internal/cacti"
	"repro/internal/cell"
	"repro/internal/dimension"
)

func main() {
	log.SetFlags(0)

	const (
		queues = 512
		banks  = 256
	)
	rate := cell.OC3072
	bigB := rate.Granularity(cell.DefaultDRAMAccessNS)

	fmt.Printf("Dimensioning a %d-queue buffer at %v (B=%d, M=%d, 48 ns DRAM)\n\n",
		queues, rate, bigB, banks)
	fmt.Printf("%4s %10s %10s %10s %12s %12s %12s %8s\n",
		"b", "head kB", "tail kB", "RR", "access ns", "area cm2", "delay us", "ok?")

	budget := rate.AccessBudgetNS()
	for b := bigB; b >= 1; b /= 2 {
		c := dimension.Config{
			Q: queues, B: bigB, Bsmall: b, M: banks,
			Lookahead: dimension.FullLookahead(queues, b),
		}
		if err := c.Validate(); err != nil {
			log.Fatal(err)
		}
		head, tail := c.HeadSRAMSize(), c.TailSRAMSize()
		larger := head
		if tail > larger {
			larger = tail
		}
		access := cacti.ForCells(cacti.OrgCAM, larger).AccessNS
		area := cacti.ForCells(cacti.OrgCAM, head).AreaCM2 +
			cacti.ForCells(cacti.OrgCAM, tail).AreaCM2
		verdict := "no"
		if access <= budget {
			verdict = "YES"
		}
		tag := ""
		if b == bigB {
			tag = " (RADS)"
		}
		fmt.Printf("%4d %10.1f %10.1f %10d %12.2f %12.3f %12.2f %8s%s\n",
			b,
			float64(head*cell.Size)/1e3, float64(tail*cell.Size)/1e3,
			c.RRSize(), access, area,
			c.DelaySeconds(rate)*1e6, verdict, tag)
	}

	fmt.Printf("\naccess budget at %v: %.1f ns per cell\n", rate, budget)
	fmt.Println("Pick the smallest delay whose access time fits the budget —")
	fmt.Println("the paper's conclusion: an interior b (2–4) is optimal at OC-3072.")
}
