// Sizing: explores the paper's central trade-off for a buffer you
// might actually build — how the CFDS granularity b moves SRAM sizes,
// technology cost (CACTI-style access time and area at 0.13 µm) and
// pipeline delay for a given queue count and line rate, entirely
// through the public API (pktbuf.DimensionFor and
// pktbuf.EstimateTechnology).
//
// Run with: go run ./examples/sizing
package main

import (
	"fmt"
	"log"

	"repro/pktbuf"
)

func main() {
	log.SetFlags(0)

	const (
		queues = 512
		banks  = 256
	)
	rate := pktbuf.OC3072

	base, err := pktbuf.DimensionFor(pktbuf.Config{Queues: queues, LineRate: rate, Banks: banks})
	if err != nil {
		log.Fatal(err)
	}
	bigB := base.GranularityB

	fmt.Printf("Dimensioning a %d-queue buffer at %v (B=%d, M=%d, 48 ns DRAM)\n\n",
		queues, rate, bigB, banks)
	fmt.Printf("%4s %10s %10s %10s %12s %12s %12s %8s\n",
		"b", "head kB", "tail kB", "RR", "access ns", "area cm2", "delay us", "ok?")

	var budget float64
	for b := bigB; b >= 1; b /= 2 {
		cfg := pktbuf.Config{Queues: queues, LineRate: rate, Granularity: b, Banks: banks}
		s, err := pktbuf.DimensionFor(cfg)
		if err != nil {
			log.Fatal(err)
		}
		est, err := pktbuf.EstimateTechnology(cfg)
		if err != nil {
			log.Fatal(err)
		}
		budget = est.BudgetNS
		verdict := "no"
		if est.Feasible {
			verdict = "YES"
		}
		tag := ""
		if b == bigB {
			tag = " (RADS)"
		}
		delayUS := float64(s.DelaySlots) * rate.SlotTimeNS() * 1e-3
		fmt.Printf("%4d %10.1f %10.1f %10d %12.2f %12.3f %12.2f %8s%s\n",
			b,
			float64(s.HeadSRAMCells*pktbuf.CellSize)/1e3,
			float64(s.TailSRAMCells*pktbuf.CellSize)/1e3,
			s.RequestRegister, est.AccessNS, est.AreaCM2,
			delayUS, verdict, tag)
	}

	fmt.Printf("\naccess budget at %v: %.1f ns per cell\n", rate, budget)
	fmt.Printf("optimal granularity (smallest feasible delay): b=%d\n",
		pktbuf.OptimalGranularity(queues, rate, pktbuf.GlobalCAM))
	fmt.Println("Pick the smallest delay whose access time fits the budget —")
	fmt.Println("the paper's conclusion: an interior b (2–4) is optimal at OC-3072.")
}
