// Quickstart: build a CFDS packet buffer, push cells into a few VOQs,
// request them back, and confirm in-order, miss-free delivery.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pktbuf"
)

func main() {
	log.SetFlags(0)

	// A 64-queue OC-3072 buffer with CFDS granularity b=4 over 256
	// DRAM banks. Every SRAM/register size defaults to the paper's
	// dimensioning formulas.
	buf, err := pktbuf.New(pktbuf.Config{
		Queues:      64,
		LineRate:    pktbuf.OC3072,
		Granularity: 4,
		Banks:       256,
	})
	if err != nil {
		log.Fatal(err)
	}

	sizing, err := pktbuf.DimensionFor(pktbuf.Config{
		Queues: 64, LineRate: pktbuf.OC3072, Granularity: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dimensioning: B=%d lookahead=%d headSRAM=%d cells tailSRAM=%d cells RR=%d latency=%d slots\n",
		sizing.GranularityB, sizing.Lookahead, sizing.HeadSRAMCells,
		sizing.TailSRAMCells, sizing.RequestRegister, sizing.LatencySlots)

	// Phase 1: 20 cells each into queues 3, 7 and 11 (one arrival per
	// slot, the line rate), pushed through the batch entry point.
	queues := []pktbuf.Queue{3, 7, 11}
	fill := make([]pktbuf.Input, 60)
	for i := range fill {
		fill[i] = pktbuf.Input{Arrival: queues[i%len(queues)], Request: pktbuf.None}
	}
	outs := make([]pktbuf.Output, len(fill))
	if _, err := buf.TickBatch(fill, outs); err != nil {
		log.Fatalf("arrivals: %v", err)
	}
	for _, q := range queues {
		fmt.Printf("queue %d buffered: %d cells\n", q, buf.Len(q))
	}

	// Phase 2: the fabric scheduler drains them round-robin, one
	// request per slot. Deliveries come back after the buffer's fixed
	// request pipeline.
	delivered := 0
	next := 0
	for slot := 0; delivered < 60 && slot < 10000; slot++ {
		in := pktbuf.Input{Arrival: pktbuf.None, Request: pktbuf.None}
		for range queues {
			q := queues[next%len(queues)]
			next++
			if buf.Requestable(q) > 0 {
				in.Request = q
				break
			}
		}
		out, err := buf.Tick(in)
		if err != nil {
			log.Fatalf("slot %d: %v", slot, err)
		}
		if out.Ok {
			delivered++
			if delivered <= 3 || delivered == 60 {
				fmt.Printf("delivery %2d: queue %d seq %d (bypass=%v)\n",
					delivered, out.Delivered.Queue, out.Delivered.Seq, out.Bypassed)
			}
		}
	}

	st := buf.Stats()
	fmt.Printf("\nfinal: %d arrivals, %d deliveries, %d misses, head SRAM high-water %d cells\n",
		st.Arrivals, st.Deliveries, st.Misses, st.HeadSRAMHighWater)
	if st.Clean() && delivered == 60 {
		fmt.Println("OK: every cell delivered in order with zero misses")
	} else {
		log.Fatal("FAILED: guarantees violated")
	}
}
