// VOQ router: an input-queued router line card (Figure 1 of the
// paper) built on the packet buffer. Four input ports each hold a VOQ
// buffer with one logical queue per (output port, service class); a
// round-robin fabric scheduler matches inputs to outputs every slot
// and pulls cells through the buffers.
//
// The example forwards a bursty traffic mix for 50k slots and reports
// per-port throughput and the buffers' invariant verdicts.
//
// Run with: go run ./examples/voqrouter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/pktbuf"
)

const (
	ports   = 4
	classes = 2
	// voqs is the number of logical queues per input buffer: one per
	// (output, class).
	voqs  = ports * classes
	slots = 50000
)

// voq maps an (output, class) pair to a logical queue id.
func voq(output, class int) pktbuf.Queue {
	return pktbuf.Queue(output*classes + class)
}

// port is one input line card: its VOQ buffer plus arrival state.
type port struct {
	id  int
	buf *pktbuf.Buffer
	rng *rand.Rand
	// forwarded counts cells handed to the switch fabric per output.
	forwarded [ports]int
}

func newPort(id int) (*port, error) {
	buf, err := pktbuf.New(pktbuf.Config{
		Queues:      voqs,
		LineRate:    pktbuf.OC3072,
		Granularity: 4,
		Banks:       256,
	})
	if err != nil {
		return nil, err
	}
	return &port{id: id, buf: buf, rng: rand.New(rand.NewSource(int64(1000 + id)))}, nil
}

// arrival draws this slot's arriving cell: bursty toward a "hot"
// output that rotates per port, mixed over two service classes.
func (p *port) arrival(slot int) pktbuf.Queue {
	if p.rng.Float64() > 0.85 { // 85% offered load
		return pktbuf.None
	}
	var output int
	if p.rng.Float64() < 0.5 {
		output = (p.id + slot/2048) % ports // rotating hotspot
	} else {
		output = p.rng.Intn(ports)
	}
	class := 0
	if p.rng.Float64() < 0.3 {
		class = 1
	}
	return voq(output, class)
}

// requestFor returns a requestable VOQ of p addressed to output, class
// priority first, or None.
func (p *port) requestFor(output int) pktbuf.Queue {
	for class := 0; class < classes; class++ {
		if q := voq(output, class); p.buf.Requestable(q) > 0 {
			return q
		}
	}
	return pktbuf.None
}

func main() {
	log.SetFlags(0)

	inputs := make([]*port, ports)
	for i := range inputs {
		p, err := newPort(i)
		if err != nil {
			log.Fatal(err)
		}
		inputs[i] = p
	}

	// Round-robin matcher state: the output each input starts probing
	// from, rotated every slot (a simple desynchronized round-robin
	// fabric schedule).
	for slot := 0; slot < slots; slot++ {
		// Compute a matching: each output is granted to at most one
		// input; each input requests at most one output.
		granted := [ports]int{} // output -> input+1 (0 = free)
		request := [ports]pktbuf.Queue{}
		for i, p := range inputs {
			request[i] = pktbuf.None
			for k := 0; k < ports; k++ {
				output := (i + slot + k) % ports
				if granted[output] != 0 {
					continue
				}
				if q := p.requestFor(output); q != pktbuf.None {
					granted[output] = i + 1
					request[i] = q
					break
				}
			}
		}
		// Advance every input buffer one slot.
		for i, p := range inputs {
			in := pktbuf.Input{Arrival: p.arrival(slot), Request: request[i]}
			out, err := p.buf.Tick(in)
			if err != nil {
				log.Fatalf("port %d slot %d: %v", i, slot, err)
			}
			if out.Ok {
				output := int(out.Delivered.Queue) / classes
				p.forwarded[output]++
			}
		}
	}

	fmt.Printf("%-8s %12s %12s %10s %s\n", "port", "arrivals", "forwarded", "misses", "per-output")
	totalForwarded := 0
	allClean := true
	for _, p := range inputs {
		st := p.buf.Stats()
		sum := 0
		for _, n := range p.forwarded {
			sum += n
		}
		totalForwarded += sum
		allClean = allClean && st.Clean()
		fmt.Printf("in[%d]    %12d %12d %10d %v\n", p.id, st.Arrivals, sum, st.Misses, p.forwarded)
	}
	fmt.Printf("\nfabric throughput: %.2f cells/slot across %d ports\n",
		float64(totalForwarded)/float64(slots), ports)
	if allClean {
		fmt.Println("OK: all port buffers clean (zero misses, zero conflicts)")
	} else {
		log.Fatal("FAILED: a buffer violated its guarantees")
	}
}
