// VOQ router: the input-queued router of the paper's Figure 1, built
// on the public router engine. Four input ports each hold a VOQ
// packet buffer with one logical queue per (output port, service
// class); the engine's iSLIP fabric scheduler matches inputs to
// outputs every slot and pulls cells through the buffers, one worker
// goroutine per port.
//
// The example forwards a bursty traffic mix for 50k slots and reports
// per-port throughput and the buffers' invariant verdicts.
//
// Run with: go run ./examples/voqrouter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/pktbuf"
	"repro/pktbuf/packet"
	"repro/pktbuf/router"
)

const (
	ports   = 4
	classes = 2
	slots   = 50000
)

// arrival draws one port's packet for this burst: bursty toward a
// "hot" output that rotates per port, mixed over two service classes.
func arrival(e *router.Engine, rng *rand.Rand, port, slot int) packet.Packet {
	var output int
	if rng.Float64() < 0.5 {
		output = (port + slot/2048) % ports // rotating hotspot
	} else {
		output = rng.Intn(ports)
	}
	class := 0
	if rng.Float64() < 0.3 {
		class = 1
	}
	// ~2.4 cells mean packet size at 85% offered load per port.
	payload := make([]byte, rng.Intn(4*packet.CellPayload))
	rng.Read(payload)
	return packet.Packet{Flow: e.VOQ(output, class), Payload: payload}
}

func main() {
	log.SetFlags(0)

	eng, err := router.New(router.Config{
		Ports:   ports,
		Classes: classes,
		Buffer: pktbuf.Config{
			LineRate:    pktbuf.OC3072,
			Granularity: 4,
			Banks:       256,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	rng := rand.New(rand.NewSource(1000))
	// forwarded[input][output] counts packets switched per pair.
	var forwarded [ports][ports]int
	out := make([]router.Egress, 0, 64)
	for slot := 0; slot < slots; slot++ {
		for port := 0; port < ports; port++ {
			// One packet per port per ~2.8 slots ≈ 85% offered load in
			// cells.
			if rng.Float64() < 0.35 {
				p := arrival(eng, rng, port, slot)
				if err := eng.Offer(port, p); err != nil {
					log.Fatalf("port %d slot %d: %v", port, slot, err)
				}
			}
		}
		out, err = eng.StepBatch(1, out[:0])
		if err != nil {
			log.Fatalf("slot %d: %v", slot, err)
		}
		for _, e := range out {
			forwarded[e.Input][e.Output]++
		}
	}

	fmt.Printf("%-8s %12s %12s %10s %s\n", "port", "arrivals", "switched", "misses", "per-output")
	st := eng.Stats()
	allClean := true
	for p := 0; p < ports; p++ {
		bs := eng.BufferStats(p)
		sum := 0
		for _, n := range forwarded[p] {
			sum += n
		}
		allClean = allClean && bs.Clean()
		fmt.Printf("in[%d]    %12d %12d %10d %v\n", p, bs.Arrivals, sum, bs.Misses, forwarded[p])
	}
	fmt.Printf("\nfabric: %.2f cells/slot switched, %.2f matches/slot across %d ports (%d workers)\n",
		float64(st.SwitchedCells)/float64(st.Slots),
		float64(st.Matches)/float64(st.Slots), ports, eng.Workers())
	fmt.Printf("packets: %d offered, %d delivered\n", st.OfferedPackets, st.DeliveredPackets)
	if allClean {
		fmt.Println("OK: all port buffers clean (zero misses, zero conflicts)")
	} else {
		log.Fatal("FAILED: a buffer violated its guarantees")
	}
}
