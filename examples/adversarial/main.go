// Adversarial: subjects RADS and CFDS buffers to the paper's §3
// worst-case pattern — every queue backlogged, the scheduler draining
// them round-robin one cell at a time so that all head-SRAM queues
// empty almost simultaneously — and verifies the zero-miss guarantee
// plus the §5.3 reordering bounds. It then demonstrates the §6
// fragmentation problem by flooding one queue against a bounded DRAM,
// with and without renaming.
//
// Run with: go run ./examples/adversarial
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/sim"
)

const queues = 32

func adversarialRun(name string, b int) {
	buf, err := core.New(core.Config{Q: queues, B: 32, Bsmall: b, Banks: 256})
	if err != nil {
		log.Fatal(err)
	}
	cfg := buf.Config()

	arr, _ := sim.NewRoundRobinArrivals(queues, 1.0)
	req, _ := sim.NewRoundRobinDrain(queues)

	// Backlog every queue into DRAM first, then run the adversary.
	warm := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
	if _, err := warm.Run(uint64(queues * cfg.Bsmall * 8)); err != nil {
		log.Fatalf("%s warmup: %v", name, err)
	}
	run := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	res, err := run.Run(300000)
	if err != nil {
		log.Fatalf("%s: INVARIANT VIOLATION: %v", name, err)
	}

	d := cfg.Dimension()
	skipBound := cfg.IssuesPerCycle * d.MaxSkips()
	st := res.Stats
	fmt.Printf("%-14s b=%-3d misses=%d deliveries=%-8d headHW=%d/%d tailHW=%d/%d rrOcc=%d/%d skips=%d (bound %d)\n",
		name, cfg.Bsmall, st.Misses, st.Deliveries,
		st.HeadHighWater, cfg.HeadSRAMCells,
		st.TailHighWater, cfg.TailSRAMCells,
		st.DSS.MaxOccupancy, cfg.RRCapacity,
		st.DSS.MaxSkips, skipBound)
	if st.Misses != 0 || st.DSS.MaxSkips > skipBound {
		log.Fatalf("%s: guarantee violated", name)
	}
}

func fragmentationDemo(renaming bool) int {
	buf, err := core.New(core.Config{
		Q: queues, B: 32, Bsmall: 4, Banks: 256,
		BankCapacityBlocks: 4, Renaming: renaming,
	})
	if err != nil {
		log.Fatal(err)
	}
	accepted := 0
	for i := 0; i < 100000; i++ {
		_, err := buf.Tick(core.TickInput{Arrival: 0, Request: cell.NoQueue})
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, core.ErrBufferFull):
			return accepted
		default:
			log.Fatalf("fragmentation demo: %v", err)
		}
	}
	return accepted
}

func main() {
	log.SetFlags(0)

	fmt.Println("=== §3 adversarial round-robin drain (zero-miss check) ===")
	adversarialRun("RADS", 32)
	for _, b := range []int{16, 8, 4, 2} {
		adversarialRun("CFDS", b)
	}

	fmt.Println("\n=== §6 DRAM fragmentation (single queue vs bounded DRAM) ===")
	without := fragmentationDemo(false)
	with := fragmentationDemo(true)
	fmt.Printf("accepted cells without renaming: %6d (one group's share)\n", without)
	fmt.Printf("accepted cells with    renaming: %6d (%.1fx)\n", with, float64(with)/float64(without))
	if with <= without {
		log.Fatal("FAILED: renaming did not increase usable DRAM")
	}
	fmt.Println("\nOK: zero misses under the worst case; renaming defeats fragmentation")
}
