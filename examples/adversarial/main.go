// Adversarial: subjects RADS and CFDS buffers to the paper's §3
// worst-case pattern — every queue backlogged, the scheduler draining
// them round-robin one cell at a time so that all head-SRAM queues
// empty almost simultaneously — and verifies the zero-miss guarantee
// plus the §5.3 reordering bounds. It then demonstrates the §6
// fragmentation problem by flooding one queue against a bounded DRAM,
// with and without renaming. Everything runs through the public API.
//
// Run with: go run ./examples/adversarial
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/pktbuf"
	"repro/pktbuf/sim"
)

const queues = 32

func adversarialRun(name string, b int) {
	buf, err := pktbuf.New(pktbuf.Config{
		Queues:      queues,
		LineRate:    pktbuf.OC3072, // B=32 at 48 ns DRAM
		Granularity: b,
		Banks:       256,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := buf.Sizing()

	arr, _ := sim.NewRoundRobinArrivals(queues, 1.0)
	req, _ := sim.NewRoundRobinDrain(queues)

	// Backlog every queue into DRAM first, then run the adversary.
	warm := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
	if _, err := warm.Run(uint64(queues * s.Granularity * 8)); err != nil {
		log.Fatalf("%s warmup: %v", name, err)
	}
	run := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	res, err := run.Run(300000)
	if err != nil {
		log.Fatalf("%s: INVARIANT VIOLATION: %v", name, err)
	}

	// The DSA issues up to 2 requests per b-slot cycle (one read plus
	// one write), so the delivered skip bound is 2·Dmax.
	skipBound := 2 * s.MaxSkips
	st := res.Stats
	fmt.Printf("%-14s b=%-3d misses=%d deliveries=%-8d headHW=%d/%d tailHW=%d/%d rrOcc=%d/%d skips=%d (bound %d)\n",
		name, s.Granularity, st.Misses, st.Deliveries,
		st.HeadSRAMHighWater, s.HeadSRAMCells,
		st.TailSRAMHighWater, s.TailSRAMCells,
		st.MaxRequestRegisterOccupancy, s.RequestRegister,
		st.MaxRequestSkips, skipBound)
	if st.Misses != 0 || st.MaxRequestSkips > skipBound {
		log.Fatalf("%s: guarantee violated", name)
	}
}

func fragmentationDemo(renaming bool) int {
	buf, err := pktbuf.New(pktbuf.Config{
		Queues:             queues,
		LineRate:           pktbuf.OC3072,
		Granularity:        4,
		Banks:              256,
		BankCapacityBlocks: 4,
		Renaming:           renaming,
	})
	if err != nil {
		log.Fatal(err)
	}
	accepted := 0
	for i := 0; i < 100000; i++ {
		_, err := buf.Tick(pktbuf.Input{Arrival: 0, Request: pktbuf.None})
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, pktbuf.ErrBufferFull):
			return accepted
		default:
			log.Fatalf("fragmentation demo: %v", err)
		}
	}
	return accepted
}

func main() {
	log.SetFlags(0)

	fmt.Println("=== §3 adversarial round-robin drain (zero-miss check) ===")
	adversarialRun("RADS", 0) // Granularity 0 = b=B, the RADS baseline
	for _, b := range []int{16, 8, 4, 2} {
		adversarialRun("CFDS", b)
	}

	fmt.Println("\n=== §6 DRAM fragmentation (single queue vs bounded DRAM) ===")
	without := fragmentationDemo(false)
	with := fragmentationDemo(true)
	fmt.Printf("accepted cells without renaming: %6d (one group's share)\n", without)
	fmt.Printf("accepted cells with    renaming: %6d (%.1fx)\n", with, float64(with)/float64(without))
	if with <= without {
		log.Fatal("FAILED: renaming did not increase usable DRAM")
	}
	fmt.Println("\nOK: zero misses under the worst case; renaming defeats fragmentation")
}
