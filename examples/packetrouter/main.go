// Packet router: drives the full system of the paper's Figure 1 built
// entirely on the public API — variable-length packets segmented into
// 64-byte cells, buffered in per-input VOQ packet buffers (CFDS),
// switched by a round-robin fabric matching, and reassembled at the
// output ports. The buffer transports (queue, seq) identities; the
// line card keeps each cell's payload chunk keyed by that identity,
// so the final byte-for-byte comparison verifies that every cell of
// every packet crossed the router exactly once and strictly in order.
//
// Run with: go run ./examples/packetrouter
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/pktbuf"
)

const (
	ports   = 4
	classes = 2
	// voqs is the number of logical queues per input buffer: one per
	// (output port, service class).
	voqs  = ports * classes
	slots = 60000
)

// voq maps an (output, class) pair to a logical queue id.
func voq(output, class int) pktbuf.Queue {
	return pktbuf.Queue(output*classes + class)
}

// packet is one in-flight packet at an input port's VOQ: the payload
// it must reassemble to, and the reassembly progress.
type packet struct {
	expect []byte
	got    []byte
}

// voqState is the line-card bookkeeping for one VOQ of one input: the
// payload chunk of every cell pushed into the buffer, in seq order,
// and the FIFO of packets those cells belong to.
type voqState struct {
	// chunks[i] is the 64-byte payload of the cell with seq
	// nextDeliverSeq+i (cells deliver strictly in seq order).
	chunks         [][]byte
	nextDeliverSeq uint64
	packets        []*packet
}

// port is one input line card: its VOQ buffer, the per-slot cell
// injection queue, and per-VOQ reassembly state.
type port struct {
	id  int
	buf *pktbuf.Buffer
	// pending is the FIFO of cells waiting to enter the buffer (one
	// arrival per slot, the line rate).
	pending []pktbuf.Queue
	vq      [voqs]voqState
}

func newPort(id int) (*port, error) {
	buf, err := pktbuf.New(pktbuf.Config{
		Queues:      voqs,
		LineRate:    pktbuf.OC3072,
		Granularity: 4,
		Banks:       256,
	})
	if err != nil {
		return nil, err
	}
	return &port{id: id, buf: buf}, nil
}

// offer segments a packet into cells and queues them for injection.
func (p *port) offer(q pktbuf.Queue, payload []byte) {
	st := &p.vq[q]
	st.packets = append(st.packets, &packet{expect: payload})
	for off := 0; off < len(payload); off += pktbuf.CellSize {
		end := off + pktbuf.CellSize
		if end > len(payload) {
			end = len(payload)
		}
		st.chunks = append(st.chunks, payload[off:end])
		p.pending = append(p.pending, q)
	}
}

// arrival pops the next cell to inject this slot, or None.
func (p *port) arrival() pktbuf.Queue {
	if len(p.pending) == 0 {
		return pktbuf.None
	}
	q := p.pending[0]
	p.pending = p.pending[1:]
	return q
}

// requestFor returns a requestable VOQ of p addressed to output,
// class priority first, or None.
func (p *port) requestFor(output int) pktbuf.Queue {
	for class := 0; class < classes; class++ {
		if q := voq(output, class); p.buf.Requestable(q) > 0 {
			return q
		}
	}
	return pktbuf.None
}

// deliver routes a delivered cell to its packet's reassembly buffer
// and returns the reassembled packet when it completes.
func (p *port) deliver(c pktbuf.Cell) (*packet, error) {
	st := &p.vq[c.Queue]
	if c.Seq != st.nextDeliverSeq || len(st.chunks) == 0 || len(st.packets) == 0 {
		return nil, fmt.Errorf("input %d queue %d: unexpected cell seq %d (want %d)",
			p.id, c.Queue, c.Seq, st.nextDeliverSeq)
	}
	st.nextDeliverSeq++
	chunk := st.chunks[0]
	st.chunks = st.chunks[1:]
	pk := st.packets[0]
	pk.got = append(pk.got, chunk...)
	if len(pk.got) < len(pk.expect) {
		return nil, nil
	}
	st.packets = st.packets[1:]
	return pk, nil
}

func main() {
	log.SetFlags(0)

	inputs := make([]*port, ports)
	for i := range inputs {
		p, err := newPort(i)
		if err != nil {
			log.Fatal(err)
		}
		inputs[i] = p
	}

	rng := rand.New(rand.NewSource(2003))
	offered, bytesIn, verified, switched := 0, 0, 0, 0

	step := func(slot int) {
		// Round-robin matching: each output granted to at most one
		// input; each input requests at most one cell.
		granted := [ports]bool{}
		request := [ports]pktbuf.Queue{}
		for i, p := range inputs {
			request[i] = pktbuf.None
			for k := 0; k < ports; k++ {
				output := (i + slot + k) % ports
				if granted[output] {
					continue
				}
				if q := p.requestFor(output); q != pktbuf.None {
					granted[output] = true
					request[i] = q
					break
				}
			}
		}
		// Advance every input buffer one slot.
		for i, p := range inputs {
			in := pktbuf.Input{Arrival: p.arrival(), Request: request[i]}
			out, err := p.buf.Tick(in)
			if err != nil {
				log.Fatalf("port %d slot %d: %v", i, slot, err)
			}
			if !out.Ok {
				continue
			}
			switched++
			pk, err := p.deliver(out.Delivered)
			if err != nil {
				log.Fatal(err)
			}
			if pk != nil {
				if !bytes.Equal(pk.got, pk.expect) {
					log.Fatalf("corrupted packet from input %d (%d bytes)", i, len(pk.expect))
				}
				verified++
			}
		}
	}

	for slot := 0; slot < slots; slot++ {
		// ~5% packet arrival probability per input per slot — roughly
		// 60% offered load in cells with the trimodal size mix below.
		if rng.Float64() < 0.05 {
			in := rng.Intn(ports)
			out := rng.Intn(ports)
			class := rng.Intn(classes)
			// Internet-ish trimodal sizes: 40 B acks, 576 B, 1500 B MTU.
			var size int
			switch rng.Intn(3) {
			case 0:
				size = 40
			case 1:
				size = 576
			default:
				size = 1500
			}
			payload := make([]byte, size)
			rng.Read(payload)
			inputs[in].offer(voq(out, class), payload)
			offered++
			bytesIn += size
		}
		step(slot)
	}
	// Drain what remains.
	for slot := slots; slot < 11*slots && verified < offered; slot++ {
		step(slot)
	}

	fmt.Printf("offered packets:   %d (%d bytes)\n", offered, bytesIn)
	fmt.Printf("delivered packets: %d (byte-verified)\n", verified)
	fmt.Printf("switched cells:    %d (%.2f cells/slot)\n",
		switched, float64(switched)/float64(slots))
	clean := true
	for _, p := range inputs {
		if st := p.buf.Stats(); !st.Clean() {
			clean = false
			fmt.Printf("input %d buffer NOT clean: %+v\n", p.id, st)
		}
	}
	if verified == offered && clean {
		fmt.Println("OK: every packet delivered byte-identical; all buffers clean")
	} else {
		log.Fatalf("FAILED: verified %d of %d", verified, offered)
	}
}
