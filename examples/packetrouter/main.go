// Packet router: drives the full system of the paper's Figure 1 —
// variable-length packets segmented into 64-byte cells, buffered in
// per-input VOQ packet buffers (CFDS), switched by an iSLIP fabric
// scheduler, and reassembled at the output ports. Verifies that every
// packet crosses the router byte-identical.
//
// Run with: go run ./examples/packetrouter
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/router"
)

const (
	ports   = 4
	classes = 2
	slots   = 60000
)

func main() {
	log.SetFlags(0)

	r, err := router.New(router.Config{
		Ports:               ports,
		Classes:             classes,
		Buffer:              core.Config{B: 32, Bsmall: 4, Banks: 256},
		SchedulerIterations: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2003))
	type sentKey struct{ in, out int }
	sent := map[sentKey][][]byte{}
	offered, bytesIn := 0, 0

	newPacket := func() (int, packet.Packet, []byte) {
		in := rng.Intn(ports)
		out := rng.Intn(ports)
		class := rng.Intn(classes)
		// Internet-ish trimodal sizes: 40 B acks, 576 B, 1500 B MTU.
		var size int
		switch rng.Intn(3) {
		case 0:
			size = 40
		case 1:
			size = 576
		default:
			size = 1500
		}
		payload := make([]byte, size)
		rng.Read(payload)
		return in, packet.Packet{Flow: r.VOQ(out, class), Payload: payload}, payload
	}

	verified := 0
	for slot := 0; slot < slots; slot++ {
		// ~60% offered load in packets.
		if rng.Float64() < 0.05 {
			in, p, payload := newPacket()
			out := int(p.Flow) / classes
			if err := r.Offer(in, p); err == nil {
				sent[sentKey{in, out}] = append(sent[sentKey{in, out}], payload)
				offered++
				bytesIn += len(payload)
			}
		}
		egress, err := r.Step()
		if err != nil {
			log.Fatalf("slot %d: %v", slot, err)
		}
		for _, e := range egress {
			k := sentKey{e.Input, e.Output}
			q := sent[k]
			found := -1
			for i := range q {
				if bytes.Equal(q[i], e.Packet.Payload) {
					found = i
					break
				}
			}
			if found < 0 {
				log.Fatalf("corrupted packet at output %d (from input %d, %d bytes)",
					e.Output, e.Input, len(e.Packet.Payload))
			}
			sent[k] = append(q[:found], q[found+1:]...)
			verified++
		}
	}
	// Drain what remains.
	for slot := 0; slot < 10*slots && verified < offered; slot++ {
		egress, err := r.Step()
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range egress {
			k := sentKey{e.Input, e.Output}
			q := sent[k]
			found := -1
			for i := range q {
				if bytes.Equal(q[i], e.Packet.Payload) {
					found = i
					break
				}
			}
			if found < 0 {
				log.Fatalf("corrupted packet during drain at output %d", e.Output)
			}
			sent[k] = append(q[:found], q[found+1:]...)
			verified++
		}
	}

	st := r.Stats()
	fmt.Printf("offered packets:   %d (%d bytes)\n", offered, bytesIn)
	fmt.Printf("delivered packets: %d (byte-verified %d)\n", st.DeliveredPackets, verified)
	fmt.Printf("switched cells:    %d over %d slots (%.2f cells/slot)\n",
		st.SwitchedCells, st.Slots, float64(st.SwitchedCells)/float64(st.Slots))
	clean := true
	for p := 0; p < ports; p++ {
		if bs := r.BufferStats(p); !bs.Clean() {
			clean = false
			fmt.Printf("input %d buffer NOT clean: %v\n", p, bs)
		}
	}
	if verified == offered && clean {
		fmt.Println("OK: every packet delivered byte-identical; all buffers clean")
	} else {
		log.Fatalf("FAILED: verified %d of %d", verified, offered)
	}
}
