// Packet router: drives the full system of the paper's Figure 1 —
// variable-length packets segmented into 64-byte cells, buffered in
// per-input VOQ packet buffers (CFDS), switched by an iSLIP fabric
// matching, and reassembled at the output ports — entirely through
// the public router engine, and byte-verifies every packet.
//
// The engine guarantees per-(input, flow) FIFO delivery, so the
// harness keeps each stream's offered payloads in a FIFO and compares
// the egress byte-for-byte: a single misordered, duplicated or lost
// cell anywhere in the fabric surfaces as a mismatch here.
//
// Run with: go run ./examples/packetrouter
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/pktbuf"
	"repro/pktbuf/packet"
	"repro/pktbuf/router"
)

const (
	ports   = 4
	classes = 2
	voqs    = ports * classes
	slots   = 60000
)

func main() {
	log.SetFlags(0)

	eng, err := router.New(router.Config{
		Ports:   ports,
		Classes: classes,
		Buffer: pktbuf.Config{
			LineRate:    pktbuf.OC3072,
			Granularity: 4,
			Banks:       256,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	rng := rand.New(rand.NewSource(2003))
	// expected[input][flow] is the FIFO of payloads in flight on one
	// (input, VOQ) stream.
	var expected [ports][voqs][][]byte
	offered, bytesIn, verified := 0, 0, 0

	verify := func(eg []router.Egress) {
		for _, e := range eg {
			q := expected[e.Input][e.Packet.Flow]
			if len(q) == 0 {
				log.Fatalf("unexpected packet at output %d from input %d", e.Output, e.Input)
			}
			if !bytes.Equal(q[0], e.Packet.Payload) {
				log.Fatalf("corrupted packet from input %d flow %d (%d bytes)",
					e.Input, e.Packet.Flow, len(q[0]))
			}
			expected[e.Input][e.Packet.Flow] = q[1:]
			verified++
		}
	}

	out := make([]router.Egress, 0, 64)
	step := func(n int) {
		var err error
		out, err = eng.StepBatch(n, out[:0])
		if err != nil {
			log.Fatal(err)
		}
		verify(out)
	}

	for slot := 0; slot < slots; slot++ {
		// ~5% packet arrival probability per input per slot — roughly
		// 60% offered load in cells with the trimodal size mix below.
		if rng.Float64() < 0.05 {
			in := rng.Intn(ports)
			flow := eng.VOQ(rng.Intn(ports), rng.Intn(classes))
			// Internet-ish trimodal sizes: 40 B acks, 576 B, 1500 B MTU.
			var size int
			switch rng.Intn(3) {
			case 0:
				size = 40
			case 1:
				size = 576
			default:
				size = 1500
			}
			payload := make([]byte, size)
			rng.Read(payload)
			if err := eng.Offer(in, packet.Packet{Flow: flow, Payload: payload}); err != nil {
				log.Fatalf("offer: %v", err)
			}
			expected[in][flow] = append(expected[in][flow], payload)
			offered++
			bytesIn += size
		}
		step(1)
	}
	// Drain what remains.
	for slot := 0; slot < 10*slots && verified < offered; slot += 64 {
		step(64)
	}

	st := eng.Stats()
	fmt.Printf("offered packets:   %d (%d bytes)\n", offered, bytesIn)
	fmt.Printf("delivered packets: %d (byte-verified)\n", verified)
	fmt.Printf("switched cells:    %d (%.2f cells/slot, %d workers)\n",
		st.SwitchedCells, float64(st.SwitchedCells)/float64(slots), eng.Workers())
	clean := true
	for p := 0; p < ports; p++ {
		if bs := eng.BufferStats(p); !bs.Clean() {
			clean = false
			fmt.Printf("input %d buffer NOT clean: %+v\n", p, bs)
		}
	}
	if verified == offered && clean {
		fmt.Println("OK: every packet delivered byte-identical; all buffers clean")
	} else {
		log.Fatalf("FAILED: verified %d of %d", verified, offered)
	}
}
