// Package repro is a full reproduction of "Design and Implementation
// of High-Performance Memory Systems for Future Packet Buffers"
// (García, Corbal, Cerdà, Valero — MICRO-36, 2003).
//
// The public API is the repro/pktbuf tree: repro/pktbuf (the buffer:
// Tick/TickBatch, typed sentinel errors, sizing and the technology
// model), repro/pktbuf/packet (cell segmentation and reassembly),
// repro/pktbuf/router (the sharded Figure-1 router engine),
// repro/pktbuf/sim (the batched simulation driver and the workload
// generators) and repro/pktbuf/trace (slot-trace record and replay).
// The substrates (DRAM banking, shared SRAM organizations, MMAs, the
// DRAM Scheduler Subsystem, queue renaming, the CACTI-style
// technology model and the experiment generators) live under
// repro/internal and are implementation detail; examples and the
// pktbufsim harness consume only the public surface, and
// api_surface_test.go pins the exported API against a golden
// snapshot. See README.md for the map, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the paper-versus-measured record.
// The benchmarks in bench_test.go regenerate every table and figure
// of the paper's evaluation.
//
// # Dense-arena hot path
//
// The simulator is slot-accurate: one core.Buffer.Tick per cell time.
// All per-queue state on that path — tail-SRAM deques, sequence
// cursors, occupancy ledgers, SRAM queue tables, DRAM reservation
// cursors and renaming registers — lives in dense slices indexed by
// the queue ordinal, sized from the configuration at construction
// (logical ids are [0, Q); physical ids are [0, P) because the §6
// renaming table hands out register-bounded ordinals). DRAM→SRAM
// completions are scheduled on a fixed slot ring, and block payload
// storage is pooled, so steady-state Tick performs no hashing and no
// allocation. BENCH_baseline.json records the gate: the BenchmarkTick*
// suite must stay ≥2× under the map-keyed seed at 0 allocs/op.
//
// # Bitmap selection indices
//
// Selection decisions are decoupled from the queue count: instead of
// scanning Q occupancy counters (TailMMA, MDQF) or re-walking the
// Q(b−1)+1-slot lookahead (ECQF) every b slots, the MMA layer keeps
// incrementally maintained hierarchical bitmaps (repro/internal/bitset
// — multi-level find-first-set indices in the O(1)-scheduler style):
// ECQF tracks the lookahead slot at which each queue turns critical,
// the tail and deficit selectors bucket queues by exact occupancy, and
// the DRAM publishes its per-queue "readable now" eligibility as a
// dense bitset the selectors consult instead of per-candidate
// callbacks. Selections are bit-identical to the retained linear-scan
// references (SelectScan), which seeded differential tests pin over
// 10⁵-slot random workloads; BenchmarkTickQueueScaling holds per-slot
// cost near-flat from Q=64 to Q=65536 (BENCH_baseline.json,
// bitmap_index_pr4).
//
// # Batched simulation driver
//
// sim.Runner.RunBatch(slots, batch) is the long-run fast path: it
// chunks the slot loop, hoists the arrival-generator interface
// dispatch out of the inner loop for sim.BatchArrivalProcess
// implementations, resolves the delivery-callback and drop-tolerance
// branches per batch, and snapshots statistics once per run.
// cmd/pktbufsim exposes it as -batch; Runner.Run is the batch-size-1
// special case. The same design is mirrored on the public surface:
// pktbuf.Buffer.TickBatch and pktbuf/sim.Runner.RunBatch drive the
// buffer through the façade at internal speed (BenchmarkPktbuf* in
// facade_bench_test.go holds them within ~1% of the internal suite at
// zero allocations per slot).
//
// # Event-driven idle time (sparse fast-forward)
//
// Idle time is O(1), not O(slots). Buffer.Quiescent reports that an
// idle tick would be a pure time advance — request pipeline and
// completion calendar empty, Requests Register empty, neither MMA
// with a transfer to order; note this is about in-flight work, not
// occupancy, so a buffer holding unrequested cells is quiescent.
// Buffer.FastForward(n) then advances the clock n slots in O(1),
// bit-identically to n idle Ticks: ring indices and the MMA cycle
// phase follow the clock analytically, and the elided DSA cycles are
// credited to the scheduler's empty-cycle count. The only trace a
// jump leaves is Stats.FastForwardedSlots, which dense ticking keeps
// at zero by definition — equivalence comparisons exclude it.
// TickBatch converts runs of fully idle inputs to FastForward (its
// outputs land in batch-local scratch: every out[i].Delivered of one
// batch is valid until the next Tick/TickBatch call, and the public
// façade's value-semantics Outputs are valid forever). The sim
// Runners skip idle spans entirely when the arrival process can jump
// to its next arrival (SparseArrivalProcess; NewBernoulliArrivals
// draws geometric gaps, one RNG call per arrival) and the request
// policy is idle-stable (StableRequestPolicy), making a load-ρ run
// cost O(ρ·slots); router.Engine.StepBatch fast-forwards all port
// shards in lockstep once every port is quiescent. Fast-forwarding
// engages only when idle gaps outlast the request pipeline
// (lookahead + latency register), so sparse deployments shorten it
// via the Lookahead/LatencySlots overrides. Seeded differential
// suites (internal/core/fastforward_test.go and the runner/router
// equivalents) pin jump ≡ tick bit-identically across ECQF/MDQF,
// b ∈ {1,2,4,8}, bounded and unbounded DRAM, and every cycle phase;
// BENCH_baseline.json (sparse_ff_pr5) records ≥14× per-slot cost
// reduction at ρ=0.01 against the dense reference at the same load.
//
// # Dense fused batch kernel
//
// Busy time is batched the way idle time is skipped. TickBatch splits
// its input into maximal busy spans (slots carrying an arrival or a
// request) and idle runs: idle runs fast-forward as above, and each
// busy span executes in a structure-of-arrays fused kernel
// (internal/core/kernel.go) rather than span-many Tick calls. A
// per-span prologue hoists what per-slot Tick re-derives every call —
// slot index, MMA cycle phase, logical-ring head, and the substrate
// devirtualized to concrete pointers (ECQF vs MDQF, CAM vs list SRAM,
// renaming vs identity) — and an epilogue writes the carried counters
// back once; the per-slot working set (sequence numbers, system
// occupancy, pending requests) lives in dense parallel arrays. The
// kernel also fuses ECQF's lookahead shift with the same slot's
// delivery (ecqf.ShiftDelivered): their two critical-slot recomputes
// cancel in the bitmap index, so one recompute — usually a no-op —
// replaces two Clear/Set pairs. Slot-at-a-time Tick is retained
// untouched as the differential reference; kernel_test.go pins the
// fused path bit-identical to it (statistics included,
// FastForwardedSlots excluded) across MMAs, granularities, DRAM
// bounds and renaming, including batch boundaries and error slots.
// BENCH_baseline.json (fused_kernel_pr6) records the dense gate —
// ~125–140 ns/slot at the Q=512 design point, 0 allocs/op — and
// cmd/benchcheck gates CI at +25% over the recorded rows.
//
// # Sharded router engine
//
// repro/pktbuf/router promotes the paper's system context (Figure 1)
// to the public surface as a concurrent engine: one VOQ buffer shard
// per input port, each advanced by a dedicated worker goroutine, with
// the iSLIP request-grant-accept exchange as the only per-slot
// synchronization barrier. Port ticks touch only port-local state
// (dense per-VOQ metadata deques, matching the core's arena
// discipline), the scheduler consumes only the request vectors the
// ports published after their previous ticks, and egress is collected
// in input-port order into a per-batch payload arena — so the sharded
// engine is deterministic, bit-identical to the serial Workers: 1
// path (pinned by golden-equivalence tests at both the internal and
// public layers), race-clean under go test -race, and 0 allocs/op at
// steady state. cmd/pktbufsim -router -ports N drives it from the
// CLI; BENCH_baseline.json's router_pr3 section records the scaling
// baselines.
//
// # Machine-checked contracts
//
// The invariants above are enforced by repo-specific static analysis
// (repro/internal/analysis, driven by cmd/pktbufvet standalone or via
// go vet -vettool). Three comment directives carry the contracts in
// the source itself: //pktbuf:hotpath on a function declaration
// asserts the allocation-free discipline (no map/channel traffic, no
// append, no closures, no interface boxing — and, via the escape
// gate over go build -gcflags=-m, no new heap escapes beyond the
// reviewed baseline in testdata/escapes_baseline.txt);
// //pktbuf:owner=<func> on a struct field asserts the single-writer
// discipline the serving loop and SPSC rings rely on, checked over
// the call graph with atomic Loads exempt; and //pktbuf:allow
// <analyzer> <reason> waives one finding on one line, reason
// mandatory. Two more analyzers need no annotations: errwrap pins the
// error-taxonomy rule (everything returned across the public
// repro/pktbuf API matches a typed sentinel under errors.Is) and
// publicapi pins the façade rule (examples and commands build on the
// public surface only). CI keeps the whole tree at zero findings; see
// README.md "Static analysis".
package repro
