// Package repro is a full reproduction of "Design and Implementation
// of High-Performance Memory Systems for Future Packet Buffers"
// (García, Corbal, Cerdà, Valero — MICRO-36, 2003).
//
// The public API lives in repro/pktbuf; the substrates (DRAM banking,
// shared SRAM organizations, MMAs, the DRAM Scheduler Subsystem,
// queue renaming, the CACTI-style technology model and the experiment
// generators) live under repro/internal. See README.md for the map,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation.
package repro
