package repro

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/sim"
)

// TestHighWaterBounds drives the buffer through the §3 adversarial
// round-robin pattern across the CFDS granularity sweep and asserts
// that the observed high-water marks respect the dimensioned bounds:
// the tail/head SRAM occupancy maxima never exceed the configured
// capacities (equation (4) and the §3 tail bound plus engineering
// slack), and the Requests Register occupancy never exceeds the
// equation (1) capacity. b = 32 is the RADS degenerate case b = B.
func TestHighWaterBounds(t *testing.T) {
	const (
		queues = 16
		slots  = 100000
	)
	for _, bsmall := range []int{1, 2, 4, 32} {
		cfg := core.Config{Q: queues, B: 32, Bsmall: bsmall, Banks: 256}
		buf, err := core.New(cfg)
		if err != nil {
			t.Fatalf("b=%d: %v", bsmall, err)
		}
		final := buf.Config()
		arr, _ := sim.NewRoundRobinArrivals(queues, 1.0)
		req, _ := sim.NewRoundRobinDrain(queues)
		warm := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: sim.NewIdleRequests()}
		if _, err := warm.Run(uint64(queues * final.B * 4)); err != nil {
			t.Fatalf("b=%d warmup: %v", bsmall, err)
		}
		r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
		res, err := r.RunBatch(slots, 0)
		if err != nil {
			t.Fatalf("b=%d: %v (stats %v)", bsmall, err, res.Stats)
		}
		s := res.Stats
		if !s.Clean() {
			t.Errorf("b=%d: run not clean: %v", bsmall, s)
		}
		if s.TailHighWater <= 0 || s.TailHighWater > final.TailSRAMCells {
			t.Errorf("b=%d: tail SRAM high water %d outside (0, %d]",
				bsmall, s.TailHighWater, final.TailSRAMCells)
		}
		if s.HeadHighWater < 0 || s.HeadHighWater > final.HeadSRAMCells {
			t.Errorf("b=%d: head SRAM high water %d outside [0, %d]",
				bsmall, s.HeadHighWater, final.HeadSRAMCells)
		}
		if s.DSS.MaxOccupancy < 0 || s.DSS.MaxOccupancy > final.RRCapacity {
			t.Errorf("b=%d: RR occupancy high water %d outside [0, %d]",
				bsmall, s.DSS.MaxOccupancy, final.RRCapacity)
		}
		if bsmall > 1 && bsmall < final.B && s.HeadHighWater == 0 {
			t.Errorf("b=%d: head SRAM never used — DRAM path untested", bsmall)
		}
	}
}

// TestRandomizedFIFOEquivalence is the seeded end-to-end equivalence
// check for the dense-arena datapath: a random workload over 10⁵ slots
// must deliver every queue's cells in strictly increasing sequence
// order (per-queue FIFO, the buffer's externally observable contract)
// and finish Clean.
func TestRandomizedFIFOEquivalence(t *testing.T) {
	const (
		queues = 32
		slots  = 100000
		seed   = 42
	)
	cfg := core.Config{Q: queues, B: 32, Bsmall: 4, Banks: 256}
	buf, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := sim.NewUniformArrivals(queues, 0.9, seed)
	if err != nil {
		t.Fatal(err)
	}
	req, err := sim.NewUniformRequests(queues, 0.8, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	next := make([]uint64, queues)
	deliveries := 0
	r := &sim.Runner{
		Buffer:   buf,
		Arrivals: arr,
		Requests: req,
		OnDeliver: func(c cell.Cell, _ bool) {
			if c.Seq != next[c.Queue] {
				t.Fatalf("queue %d delivered seq %d, want %d", c.Queue, c.Seq, next[c.Queue])
			}
			next[c.Queue]++
			deliveries++
		},
	}
	res, err := r.RunBatch(slots, 0)
	if err != nil {
		t.Fatalf("%v (stats %v)", err, res.Stats)
	}
	if !res.Stats.Clean() {
		t.Errorf("run not clean: %v", res.Stats)
	}
	if deliveries == 0 {
		t.Fatal("no deliveries observed")
	}
	if uint64(deliveries) != res.Stats.Deliveries {
		t.Errorf("OnDeliver saw %d cells, stats say %d", deliveries, res.Stats.Deliveries)
	}
	// Drain what remains and re-verify the FIFO order end to end.
	drainReq, _ := sim.NewRoundRobinDrain(queues)
	r.Requests = drainReq
	if _, _, err := r.Drain(10 * slots); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for q := 0; q < queues; q++ {
		if got := buf.Len(cell.QueueID(q)); got != 0 {
			t.Errorf("queue %d still holds %d cells after drain", q, got)
		}
	}
}

// TestRunBatchMatchesRun pins the batched driver to the per-slot
// driver: identical workloads must produce identical statistics.
func TestRunBatchMatchesRun(t *testing.T) {
	run := func(batch uint64) core.Stats {
		t.Helper()
		buf, err := core.New(core.Config{Q: 8, B: 8, Bsmall: 2, Banks: 64})
		if err != nil {
			t.Fatal(err)
		}
		arr, _ := sim.NewRoundRobinArrivals(8, 0.7)
		req, _ := sim.NewRoundRobinDrain(8)
		r := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
		res, err := r.RunBatch(20000, batch)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		return res.Stats
	}
	perSlot := run(1)
	for _, batch := range []uint64{0, 7, 4096} {
		if got := run(batch); got != perSlot {
			t.Errorf("batch=%d stats diverge:\n got %v\nwant %v", batch, got, perSlot)
		}
	}
}
