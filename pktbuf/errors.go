package pktbuf

import "repro/internal/core"

// The façade's error taxonomy. Every error returned by New, Tick,
// TickBatch and DimensionFor that corresponds to one of these
// conditions wraps the matching sentinel, so callers dispatch with
// errors.Is without importing anything under repro/internal:
//
//	out, err := buf.Tick(in)
//	switch {
//	case errors.Is(err, pktbuf.ErrBufferFull): // drop policy
//	case errors.Is(err, pktbuf.ErrBadRequest): // scheduler bug
//	}
//
// Any other non-nil error from Tick reports a violated worst-case
// invariant (a head-SRAM miss, out-of-order delivery, or a SRAM
// dimensioning overflow) — on a correctly dimensioned buffer these
// never occur, and they indicate a configuration or implementation
// problem rather than a recoverable condition.
var (
	// ErrBufferFull reports that the buffer (DRAM and tail SRAM) is
	// genuinely out of space and the arriving cell was rejected. Only
	// possible with a bounded DRAM (Config.BankCapacityBlocks > 0);
	// the slot otherwise completes normally.
	ErrBufferFull = core.ErrBufferFull
	// ErrUnknownQueue reports an arrival for a queue outside
	// [0, Config.Queues).
	ErrUnknownQueue = core.ErrUnknownQueue
	// ErrBadRequest reports a scheduler request for a queue with
	// nothing requestable — forbidden by the system model (§2). Gate
	// requests on Buffer.Requestable to avoid it.
	ErrBadRequest = core.ErrBadRequest
	// ErrBadConfig reports a configuration rejected by New,
	// DimensionFor or EstimateTechnology: an unknown LineRate, a
	// granularity that does not divide B, non-positive queue or bank
	// counts, and so on.
	ErrBadConfig = core.ErrBadConfig
)
