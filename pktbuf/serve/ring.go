package serve

import "sync/atomic"

// spscRing is a bounded single-producer single-consumer ring of queue
// ids — the per-connection handoff between a network goroutine and
// the serving loop. Push and pop are one atomic load plus one atomic
// store each and never allocate, so the serving loop's per-slot cost
// is independent of connection count and the I/O goroutines never
// block on the loop (a full ring is a visible admission failure, not
// a stall).
type spscRing struct {
	buf  []int32
	mask uint64
	// head is the consumer cursor, tail the producer cursor; both grow
	// monotonically and are reduced modulo len(buf) on access. The
	// owner annotations encode the SPSC contract: only pop advances
	// head and only push advances tail (atomic Loads are free from
	// either side).
	head atomic.Uint64 //pktbuf:owner=spscRing.pop
	tail atomic.Uint64 //pktbuf:owner=spscRing.push
}

// newSpscRing builds a ring with the given capacity rounded up to a
// power of two (minimum 2).
func newSpscRing(capacity int) *spscRing {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &spscRing{buf: make([]int32, n), mask: uint64(n - 1)}
}

// cap returns the ring capacity in cells.
func (r *spscRing) capacity() int { return len(r.buf) }

// push appends q; it reports false when the ring is full. Producer
// side only.
func (r *spscRing) push(q int32) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = q
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest element. Consumer side only.
func (r *spscRing) pop() (int32, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return 0, false
	}
	q := r.buf[h&r.mask]
	r.head.Store(h + 1)
	return q, true
}

// empty reports whether the ring currently holds nothing. Safe from
// either side (the answer is advisory under concurrency).
func (r *spscRing) empty() bool { return r.head.Load() == r.tail.Load() }

// size returns the current occupancy. Advisory under concurrency.
func (r *spscRing) size() int { return int(r.tail.Load() - r.head.Load()) }
