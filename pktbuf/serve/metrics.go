package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// histBuckets are the serving-loop batch-latency histogram bounds in
// seconds (a tick batch is hundreds of slots, so these span ~1µs to
// ~1s of engine work).
var histBuckets = [...]float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1, 1,
}

// histogram is a fixed-bucket latency histogram (no allocation per
// observation; guarded by Server.statsMu).
type histogram struct {
	counts [len(histBuckets) + 1]uint64 // +Inf tail
	sum    float64
	count  uint64
	slots  uint64 // total slots ticked across observed batches
}

func (h *histogram) observe(seconds float64) {
	i := 0
	for i < len(histBuckets) && seconds > histBuckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += seconds
	h.count++
}

// Handler returns the control-plane HTTP handler: GET /metrics in
// Prometheus text format and GET /healthz. Serve it on its own
// listener (the data plane speaks the wire protocol, not HTTP):
//
//	go http.Serve(ctlLis, srv.Handler())
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/healthz", s.serveHealthz)
	return mux
}

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.closed.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "closed\n")
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
	default:
		io.WriteString(w, "ok\n")
	}
}

// serveMetrics renders the engine and admission counters in
// Prometheus text exposition format. Engine counters come from the
// loop's published snapshot — scraping never touches live engine
// state.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	s.statsMu.Lock()
	st := s.pub
	slots := s.pubSlots
	hist := s.hist
	tickErrs := s.tickErrs
	s.statsMu.Unlock()
	adm := s.Admission()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("pktbufd_slots_total", "Engine slot clock (ticked plus fast-forwarded).", slots)
	counter("pktbufd_arrivals_total", "Cells written into the buffer engine.", st.Arrivals)
	counter("pktbufd_requests_total", "Read requests issued to the engine.", st.Requests)
	counter("pktbufd_deliveries_total", "Cells delivered to egress.", st.Deliveries)
	counter("pktbufd_bypasses_total", "Deliveries served via the SRAM bypass path.", st.Bypasses)
	counter("pktbufd_misses_total", "Deliveries that violated the paper's zero-miss guarantee.", st.Misses)
	counter("pktbufd_engine_drops_total", "Arrivals dropped by bounded DRAM capacity.", st.Drops)
	counter("pktbufd_bad_requests_total", "Requests rejected by the engine as invalid.", st.BadRequests)
	counter("pktbufd_fast_forwarded_slots_total", "Idle slots crossed analytically instead of ticked.", st.FastForwardedSlots)
	gauge("pktbufd_tail_sram_high_water_cells", "Peak tail (arrival) SRAM occupancy.", int64(st.TailSRAMHighWater))
	gauge("pktbufd_head_sram_high_water_cells", "Peak head (departure) SRAM occupancy.", int64(st.HeadSRAMHighWater))
	gauge("pktbufd_request_register_high_water", "Peak MMA request-register occupancy.", int64(st.MaxRequestRegisterOccupancy))
	gauge("pktbufd_request_skips_max", "Worst-case per-request skip count observed.", int64(st.MaxRequestSkips))

	counter("pktbufd_admitted_cells_total", "Cells accepted into per-connection ingress rings.", adm.Admitted)
	counter("pktbufd_admission_rejects_total", "Cells rejected by admission control (all codes).", adm.Rejected())
	for _, rc := range []struct {
		code string
		v    uint64
	}{
		{"ingress_full", adm.RejectedIngressFull},
		{"window_full", adm.RejectedWindowFull},
		{"draining", adm.RejectedDraining},
		{"bad_flow", adm.RejectedBadFlow},
	} {
		fmt.Fprintf(w, "pktbufd_admission_rejects{code=%q} %d\n", rc.code, rc.v)
	}
	counter("pktbufd_tick_errors_total", "Engine errors absorbed by the serving loop.", tickErrs)
	gauge("pktbufd_connections", "Open data-plane connections.", int64(adm.Conns))
	gauge("pktbufd_flows", "VOQs currently assigned to connections.", int64(adm.Flows))
	counter("pktbufd_serving_batch_slots_total", "Slots ticked through serving-loop batches.", hist.slots)

	// Batch latency histogram.
	name := "pktbufd_serving_batch_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Wall time per serving-loop tick batch.\n# TYPE %s histogram\n", name, name)
	cum := uint64(0)
	for i, le := range histBuckets {
		cum += hist.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	cum += hist.counts[len(histBuckets)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, hist.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, hist.count)
}
