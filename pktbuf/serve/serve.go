// Package serve is the long-lived network-facing serving layer over
// the packet-buffer engine: the batch simulator's core promoted to a
// daemon. A Server owns one pktbuf.Buffer, maps client connections to
// VOQs, and drives the engine from a single clocked serving loop that
// batches all pending ingest into TickBatch once per pass —
// fast-forwarding through idle time with the Quiescent/FastForward
// machinery, so an idle daemon burns no CPU beyond a parked goroutine.
//
// The architecture follows the event-driven decomposition the batch
// layers already use: the engine (the serving loop and its buffer),
// the ingest front-end (one reader/writer goroutine pair per
// connection, speaking the repro/pktbuf/serve/wire frame protocol),
// and the metrics/control plane (Prometheus-text /metrics, /healthz,
// graceful drain) are independent pieces that communicate through
// bounded rings and counters — never through shared buffer state.
//
// Admission control rides the module's typed error taxonomy: a burst
// that overruns a connection's bounded ingress ring is rejected with
// a Reject frame mapping to repro/pktbuf/router.ErrIngressFull, a
// connection over its in-system window maps to pktbuf.ErrBufferFull,
// and a draining server answers ErrDraining — always with a
// retry-after hint, never with a dropped goroutine or an unbounded
// queue. The serving loop itself allocates nothing in steady state:
// every per-slot structure (ingress/egress rings, the round-robin
// request scheduler, the batch conversion buffers) is preallocated at
// construction, which the package's allocation gate pins.
//
// With Config.Resumable the serving tier is crash-safe. Every
// handshake mints a session token; a connection that dies detaches
// its session instead of releasing it, and a client that reconnects
// with the token (Client does this automatically when dialed through
// DialWith with a Retry budget) is reconciled against per-queue
// arrival/delivery sequence numbers so no cell is duplicated or lost
// across the gap. Checkpoint serializes the whole server — engine
// snapshot plus session table — between serving batches;
// RestoreServer boots a successor that resumes those sessions, which
// is how a pktbufd restarted after a crash carries its clients
// through. Config.KeepAlive arms Ping/Pong probing and read
// deadlines on both sides so a silent peer surfaces as the typed
// ErrPeerTimeout instead of a goroutine parked forever. The
// internal/faultnet chaos suite pins exactly-once delivery through
// kill/restart, torn frames and blackholes under the race detector.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/pktbuf"
	"repro/pktbuf/router"
	"repro/pktbuf/serve/wire"
	"repro/pktbuf/trace"
)

// ErrDraining reports admission refused because the server is
// draining for shutdown.
var ErrDraining = errors.New("serve: server draining")

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("serve: server closed")

// ErrSessionUnknown reports a resume attempt naming a session token
// the server does not hold — expired, cleanly closed, or from before
// an un-checkpointed restart. Not transient: the client must start a
// fresh session.
var ErrSessionUnknown = errors.New("serve: unknown session")

// ErrPeerTimeout reports a connection reaped because the peer went
// silent past the keepalive deadline (no frames, not even a Pong, for
// two KeepAlive intervals).
var ErrPeerTimeout = errors.New("serve: peer missed keepalive deadline")

// CodeErr maps a wire backpressure code onto the module's typed error
// taxonomy, so clients dispatch rejects with errors.Is exactly like
// local engine errors: CodeIngressFull → router.ErrIngressFull,
// CodeWindowFull → pktbuf.ErrBufferFull, CodeDraining → ErrDraining,
// CodeBadFlow → router.ErrBadFlow, CodeSessionUnknown →
// ErrSessionUnknown.
func CodeErr(c wire.Code) error {
	switch c {
	case wire.CodeIngressFull:
		return router.ErrIngressFull
	case wire.CodeWindowFull:
		return pktbuf.ErrBufferFull
	case wire.CodeDraining:
		return ErrDraining
	case wire.CodeBadFlow:
		return router.ErrBadFlow
	case wire.CodeSessionUnknown:
		return ErrSessionUnknown
	}
	return fmt.Errorf("serve: unknown reject code %q: %w", c, wire.ErrFrame)
}

// Config describes a Server.
type Config struct {
	// Buffer is the engine configuration; Queues bounds the number of
	// flows servable at once.
	Buffer pktbuf.Config
	// MaxConns bounds concurrent client connections (default 128).
	MaxConns int
	// IngressRing is the per-connection ingress ring capacity in cells
	// (rounded up to a power of two, default 1024): the largest burst
	// buffered ahead of the serving loop before Submits are rejected
	// with wire.CodeIngressFull. Size it to absorb the client's frame
	// size times the worst reader-scheduling hiccup expected between
	// serving-loop passes.
	IngressRing int
	// Window is the per-connection in-system cell cap (default: the
	// buffer's request-to-delivery pipeline depth plus IngressRing, so
	// one connection can keep the pipeline full). A connection keeping
	// submitted−delivered below Window is never rejected for window
	// space; the cap also sizes the egress ring, which therefore can
	// never overflow.
	Window int
	// Batch is the serving loop's TickBatch size in slots (default
	// 256).
	Batch int
	// TickEvery paces the serving loop in wall-clock time per slot;
	// zero runs free (a slot per loop iteration, as fast as the engine
	// goes). When paced, idle wall time is crossed with FastForward
	// instead of ticking.
	TickEvery time.Duration
	// Resumable retains the session of a connection that fails without
	// a clean Bye: its flows stay allocated, its buffered cells keep
	// draining (deliveries park for the session's next connection), and
	// a client reconnecting with the session token resumes exactly
	// where it left off — no duplicate and no lost deliveries. Implied
	// by RestoreServer. Sessions that never resume hold their flows
	// until the server restarts, so leave this off for servers with
	// anonymous churning clients.
	Resumable bool
	// KeepAlive enables liveness probing on data-plane connections:
	// the server Pings an idle peer every KeepAlive and reaps
	// connections silent for two KeepAlive intervals (read deadline),
	// surfacing ErrPeerTimeout in the error log. Writes get the same
	// deadline so a wedged peer cannot stall a writer goroutine
	// forever. Zero disables probing and deadlines.
	KeepAlive time.Duration
	// Record captures the per-slot stimulus the loop feeds the engine
	// as a repro/pktbuf/trace trace (Server.Trace), so a served run
	// can be replayed bit-identically through the batch sim. Recording
	// appends to a growing slice and is meant for tests and short
	// runs, not perpetual serving.
	Record bool
	// ErrorLog receives engine invariant violations and connection
	// failures (default: the log package's standard logger).
	ErrorLog *log.Logger
}

// rejectReason indexes the admission-reject counters.
type rejectReason int

const (
	rejIngressFull rejectReason = iota
	rejWindowFull
	rejDraining
	rejBadFlow
	rejReasons
)

// Server is a serving daemon instance. Construct with NewServer,
// attach listeners with Serve, and stop with Shutdown (graceful) or
// Close (immediate).
type Server struct {
	cfg    Config
	buf    *pktbuf.Buffer
	sizing pktbuf.Sizing

	mu        sync.Mutex
	conns     map[*conn]struct{}
	freeQ     []int32
	listeners map[net.Listener]struct{}
	// sessions maps tokens to live sessions (Resumable servers only).
	sessions map[uint64]*session
	// tokenFallback backs newToken if crypto/rand ever fails.
	tokenFallback uint64

	draining atomic.Bool
	closed   atomic.Bool

	// owner maps a VOQ to the connection that registered it; the
	// serving loop reads it lock-free when routing deliveries.
	owner []atomic.Pointer[conn]

	// ingestCh carries conn-activation tokens from readers to the
	// serving loop: at most one token per connection is in flight
	// (conn.armed), so the channel never blocks a reader.
	ingestCh chan *conn
	// resumeCh carries connections whose resume handshake awaits the
	// serving loop (attachResume); at most one entry per connection.
	resumeCh chan *conn
	// wakeCh pokes a parked serving loop (shutdown, drain).
	wakeCh chan struct{}
	// ckpt holds a pending checkpoint request for the serving loop,
	// which serves it between batches; the loop's steady-state cost is
	// one atomic nil-check.
	ckpt   atomic.Pointer[ckptReq]
	ckptMu sync.Mutex

	drainedOnce sync.Once
	drainedCh   chan struct{}
	loopDone    chan struct{}

	connWG sync.WaitGroup

	// Serving-loop private state (touched only by the loop goroutine;
	// see loop.go).
	ready      []int32         //pktbuf:owner=Server.loop
	readyCount int             //pktbuf:owner=Server.loop
	inRing     []bool          //pktbuf:owner=Server.loop
	rrRing     []int32         //pktbuf:owner=Server.loop
	rrHead     int             //pktbuf:owner=Server.loop
	rrLen      int             //pktbuf:owner=Server.loop
	active     []*conn         //pktbuf:owner=Server.loop
	parked     []int32         //pktbuf:owner=Server.loop
	actCur     int             //pktbuf:owner=Server.loop
	inBatch    []pktbuf.Input  //pktbuf:owner=Server.loop
	outBatch   []pktbuf.Output //pktbuf:owner=Server.loop
	dirty      []*conn         //pktbuf:owner=Server.loop
	rec        trace.Trace     //pktbuf:owner=Server.loop
	epoch      time.Time       //pktbuf:owner=Server.loop

	// Published telemetry (statsMu): the loop refreshes these once per
	// batch so the metrics plane never touches live engine state.
	statsMu     sync.Mutex
	pub         pktbuf.Stats
	pubSlots    uint64
	hist        histogram
	tickErrs    uint64
	lastTickErr string

	rejects  [rejReasons]atomic.Uint64
	admitted atomic.Uint64
	connG    atomic.Int64
	flowG    atomic.Int64
}

// NewServer builds the engine, preallocates every serving-loop
// structure, and starts the loop (parked until ingest arrives).
// Rejected configurations return errors matching pktbuf.ErrBadConfig.
func NewServer(cfg Config) (*Server, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	go s.loop()
	return s, nil
}

// newServer is NewServer without starting the loop goroutine, so
// tests can drive serveOnce synchronously.
func newServer(cfg Config) (*Server, error) {
	buf, err := pktbuf.New(cfg.Buffer)
	if err != nil {
		return nil, err
	}
	return newServerWith(cfg, buf)
}

// newServerWith builds a Server around an existing engine (freshly
// constructed, or reconstructed by RestoreServer).
func newServerWith(cfg Config, buf *pktbuf.Buffer) (*Server, error) {
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 128
	}
	if cfg.MaxConns < 0 {
		return nil, fmt.Errorf("%w: serve: MaxConns must not be negative", pktbuf.ErrBadConfig)
	}
	if cfg.IngressRing == 0 {
		cfg.IngressRing = 1024
	}
	if cfg.Batch == 0 {
		cfg.Batch = 256
	}
	if cfg.IngressRing < 0 || cfg.Window < 0 || cfg.Batch < 0 || cfg.TickEvery < 0 || cfg.KeepAlive < 0 {
		return nil, fmt.Errorf("%w: serve: negative IngressRing/Window/Batch/TickEvery/KeepAlive", pktbuf.ErrBadConfig)
	}
	sizing := buf.Sizing()
	if cfg.Window == 0 {
		// One connection can keep the whole request→delivery pipeline
		// full plus a ring's worth of burst.
		cfg.Window = sizing.DelaySlots + cfg.IngressRing
	}
	if cfg.ErrorLog == nil {
		cfg.ErrorLog = log.Default()
	}
	q := cfg.Buffer.Queues
	s := &Server{
		cfg:       cfg,
		buf:       buf,
		sizing:    sizing,
		conns:     make(map[*conn]struct{}),
		freeQ:     make([]int32, 0, q),
		listeners: make(map[net.Listener]struct{}),
		sessions:  make(map[uint64]*session),
		owner:     make([]atomic.Pointer[conn], q),
		ingestCh:  make(chan *conn, cfg.MaxConns+1),
		resumeCh:  make(chan *conn, cfg.MaxConns+1),
		wakeCh:    make(chan struct{}, 1),
		drainedCh: make(chan struct{}),
		loopDone:  make(chan struct{}),
		ready:     make([]int32, q),
		inRing:    make([]bool, q),
		rrRing:    make([]int32, q),
		active:    make([]*conn, 0, cfg.MaxConns+1),
		parked:    make([]int32, q),
		inBatch:   make([]pktbuf.Input, cfg.Batch),
		outBatch:  make([]pktbuf.Output, cfg.Batch),
		dirty:     make([]*conn, 0, cfg.MaxConns+1),
	}
	// Low queue ids are handed out first.
	for i := q - 1; i >= 0; i-- {
		s.freeQ = append(s.freeQ, int32(i))
	}
	return s, nil
}

// Config returns the normalized configuration (defaults resolved).
func (s *Server) Config() Config { return s.cfg }

// Sizing returns the engine's as-built structure sizes.
func (s *Server) Sizing() pktbuf.Sizing { return s.sizing }

// Serve accepts data-plane connections on lis until the listener
// fails or the server shuts down; it returns ErrServerClosed on clean
// shutdown. Multiple listeners may be served concurrently.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() || s.draining.Load() {
		s.mu.Unlock()
		lis.Close()
		return ErrServerClosed
	}
	s.listeners[lis] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, lis)
		s.mu.Unlock()
	}()
	for {
		nc, err := lis.Accept()
		if err != nil {
			if s.closed.Load() || s.draining.Load() {
				return ErrServerClosed
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		s.mu.Lock()
		over := len(s.conns) >= s.cfg.MaxConns || s.draining.Load()
		if !over {
			c := newConn(s, nc)
			s.conns[c] = struct{}{}
			s.connWG.Add(2)
			go c.readLoop()
			go c.writeLoop()
			s.connG.Add(1)
		}
		s.mu.Unlock()
		if over {
			// Over the connection cap (or draining): refuse before the
			// handshake rather than queueing unboundedly.
			nc.Close()
		}
	}
}

// wakeLoop pokes a parked serving loop.
func (s *Server) wakeLoop() {
	select {
	case s.wakeCh <- struct{}{}:
	default:
	}
}

// Shutdown drains gracefully: stop accepting connections and cells
// (further Submits are rejected with wire.CodeDraining), announce
// Drain to every client, run the engine until every admitted cell has
// been delivered and the buffer is quiescent, flush and close the
// connections, then stop. It returns ctx's error (after an immediate
// Close) if the context expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.sendCtrl(wire.TDrain, nil)
	}
	s.wakeLoop()
	select {
	case <-s.drainedCh:
	case <-ctx.Done():
		s.Close()
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
	// Engine drained: every admitted cell is in an egress ring or
	// already on the wire. Ask the writers to flush, confirm with Bye,
	// and close.
	s.mu.Lock()
	conns = conns[:0]
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.closing.Store(true)
		c.wakeWriter()
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.Close()
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
	s.closed.Store(true)
	s.wakeLoop()
	<-s.loopDone
	return nil
}

// Close stops immediately: listeners and connections are torn down
// without draining. Cells still in flight are dropped. Close is
// idempotent.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.closed.Store(true)
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.nc.Close()
		c.wakeWriter()
	}
	s.wakeLoop()
	<-s.loopDone
	s.connWG.Wait()
	return nil
}

// BufferStats returns the engine statistics snapshot the serving loop
// last published (refreshed once per batch). Safe to call from any
// goroutine at any time; it never touches live engine state.
func (s *Server) BufferStats() pktbuf.Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.pub
}

// Slots returns the engine's published slot clock.
func (s *Server) Slots() uint64 {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.pubSlots
}

// AdmissionStats aggregates the ingest front-end counters.
type AdmissionStats struct {
	// Admitted counts cells accepted into ingress rings.
	Admitted uint64
	// RejectedIngressFull, RejectedWindowFull, RejectedDraining and
	// RejectedBadFlow count rejected cells by backpressure code.
	RejectedIngressFull, RejectedWindowFull uint64
	RejectedDraining, RejectedBadFlow       uint64
	// Conns and Flows are the current registration gauges.
	Conns, Flows int
}

// Rejected sums every reject counter.
func (a AdmissionStats) Rejected() uint64 {
	return a.RejectedIngressFull + a.RejectedWindowFull + a.RejectedDraining + a.RejectedBadFlow
}

// Admission returns the ingest front-end counters.
func (s *Server) Admission() AdmissionStats {
	return AdmissionStats{
		Admitted:            s.admitted.Load(),
		RejectedIngressFull: s.rejects[rejIngressFull].Load(),
		RejectedWindowFull:  s.rejects[rejWindowFull].Load(),
		RejectedDraining:    s.rejects[rejDraining].Load(),
		RejectedBadFlow:     s.rejects[rejBadFlow].Load(),
		Conns:               int(s.connG.Load()),
		Flows:               int(s.flowG.Load()),
	}
}

// Trace returns the recorded per-slot stimulus (Config.Record) once
// the serving loop has stopped — after Shutdown or Close — and nil
// before that: the recording belongs to the loop while it runs.
// Replaying the trace through a repro/pktbuf/sim Runner against an
// identically configured buffer reproduces the served run's engine
// statistics bit-identically (FastForwardedSlots aside, as always).
func (s *Server) Trace() *trace.Trace {
	select {
	case <-s.loopDone:
		return &s.rec //pktbuf:allow singlewriter loop has exited; loopDone close happens-before this read
	default:
		return nil
	}
}
