package serve

import (
	"testing"

	"repro/pktbuf"
)

// TestServingLoopZeroAlloc pins the acceptance criterion that the
// steady-state serving loop allocates nothing per slot. It drives the
// loop body (serveOnce) synchronously on a loopless server, playing
// both the reader (admitting cells) and the writer (draining egress
// rings and refunding window credit) around it — the allocation
// budget is measured around the tick loop, exactly as the criterion
// states, not around per-connection socket I/O.
func TestServingLoopZeroAlloc(t *testing.T) {
	s, err := newServer(Config{
		Buffer: pktbuf.Config{Queues: 64, LineRate: pktbuf.OC768, Granularity: 2, Banks: 64},
		// Sessions and checkpointing on: the session table, the parked
		// delivery accounting, and the checkpoint request check must not
		// add allocations to the serving path.
		Resumable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(s, nil)
	s.conns[c] = struct{}{}
	qs := s.allocFlows(c, 16)
	if qs == nil {
		t.Fatal("flow allocation failed")
	}
	c.queues = qs
	c.windowCap = s.cfg.Window
	c.window.Store(int64(c.windowCap))

	const cells = 128
	round := func() {
		for i := 0; i < cells; i++ {
			if r, ok := c.admit(qs[i%len(qs)]); !ok {
				t.Fatalf("admit rejected with reason %d", r)
			}
		}
		// Run the loop until the engine is quiescent again (all cells
		// requested, piped through the delay line, and delivered).
		for s.serveOnce() {
		}
		// Play the writer: drain the egress ring and return credit.
		n := 0
		for {
			if _, ok := c.egress.pop(); !ok {
				break
			}
			n++
		}
		c.window.Add(int64(n))
		if n != cells {
			t.Fatalf("delivered %d cells, want %d", n, cells)
		}
	}

	round() // warm up reusable scratch (engine batch buffers, rings)
	if avg := testing.AllocsPerRun(10, round); avg != 0 {
		t.Fatalf("steady-state serving loop allocates %v times per round, want 0", avg)
	}
	st := s.buf.Stats()
	if st.Arrivals != st.Deliveries || st.Arrivals < 11*cells || st.Arrivals%cells != 0 {
		t.Fatalf("engine stats = %+v, want every admitted cell delivered across ≥11 rounds", st)
	}
	if !st.Clean() {
		t.Fatalf("engine stats not clean: %+v", st)
	}
}
