package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/pktbuf"
	"repro/pktbuf/router"
	"repro/pktbuf/serve/wire"
)

// Client is a data-plane client for a pktbufd server: it handshakes
// for a set of flows, submits cells, and consumes deliveries on a
// background reader. Submit respects the server-granted in-system
// window, so a Client that is the only writer for its flows is never
// window-rejected; ingress-ring rejects (a burst outrunning the
// serving loop) surface asynchronously through Rejects.
//
// A Client built with DialWith and a Retry policy survives connection
// failures: it reconnects with jittered exponential backoff and
// resumes its session, reconciling counters with the server so that
// every submitted cell is delivered exactly once per queue —
// redeliveries it already holds are discarded, deliveries the server
// lost are re-synthesized, and submissions the server never saw are
// resubmitted. Fail-fast reject codes (bad_flow, session_unknown)
// abort the retry loop with the matching typed error.
//
// Submit may be called from one goroutine at a time; the accessors
// are safe from any goroutine.
type Client struct {
	cfg DialConfig

	// wmu guards the wire writer and its connection as a pair; a
	// reconnect swaps both together.
	wmu sync.Mutex
	w   *wire.Writer
	wnc net.Conn

	nc net.Conn // current conn (read side); swapped on reconnect

	flows   []pktbuf.Queue
	welcome wire.Welcome
	session uint64

	// OnDeliver, if set before the first Submit, observes every
	// delivered cell in order, with per-queue sequence numbers
	// reconstructed by counting (deliveries are strictly sequential per
	// VOQ). Redeliveries discarded during a resume are not observed —
	// the callback sees each cell exactly once. Called from the reader
	// goroutine.
	OnDeliver func(pktbuf.Cell)

	mu          sync.Mutex
	cond        *sync.Cond
	inFlight    int
	submitted   uint64
	delivered   uint64
	rejected    uint64
	rejects     []wire.Reject
	perQueue    map[pktbuf.Queue]uint64 // cells received, per queue
	submitPQ    map[pktbuf.Queue]uint64 // cells submitted, per queue
	dedup       map[pktbuf.Queue]uint64 // redeliveries left to discard
	err         error
	draining    bool
	byeOK       bool
	byeSent     bool
	reconnectng bool
	// resubmitting counts live resubmission goroutines; Bye waits them
	// out so the final Bye frame cannot overtake a replayed cell.
	resubmitting int
	epochN       uint64 // bumped per successful (re)connect
	resumes      uint64
	pingStop     chan struct{}

	rng *rand.Rand // reader goroutine only

	done chan struct{}
}

// Retry configures automatic reconnection with session resumption.
type Retry struct {
	// Attempts bounds consecutive failed reconnect attempts before the
	// Client gives up (0 disables reconnection entirely).
	Attempts int
	// Base and Max bound the jittered exponential backoff between
	// attempts (defaults 50ms and 5s). Each delay is drawn uniformly
	// from [d/2, d] with d doubling from Base up to Max.
	Base, Max time.Duration
	// Seed seeds the jitter source; zero uses a time-derived seed.
	Seed int64
}

// DialConfig describes a resilient client connection.
type DialConfig struct {
	// Addr is the server's data-plane TCP address (ignored when Dialer
	// is set).
	Addr string
	// Flows is the number of VOQs to handshake for.
	Flows int
	// KeepAlive mirrors Config.KeepAlive on the client side: probe an
	// idle server every KeepAlive and treat two silent intervals as a
	// dead connection (which the Retry policy then resumes).
	KeepAlive time.Duration
	// Retry enables reconnection; the zero value disables it.
	Retry Retry
	// Dialer overrides the TCP dial — fault-injection harnesses point
	// it at a wrapped network, retrying clients at a moved server.
	Dialer func() (net.Conn, error)
}

// ClientStats is a Client counter snapshot.
type ClientStats struct {
	// Submitted counts cells handed to Submit; Delivered counts cells
	// returned by the server; Rejected counts cells the server refused
	// (see Rejects for the frames). Discarded redeliveries after a
	// resume are not double-counted in Delivered.
	Submitted, Delivered, Rejected uint64
	// InFlight is cells currently charged against the window.
	InFlight int
	// Resumes counts successful session resumptions.
	Resumes uint64
}

// Dial connects to a pktbufd data-plane address and handshakes for
// the given number of flows, without a retry policy.
func Dial(addr string, flows int) (*Client, error) {
	return DialWith(DialConfig{Addr: addr, Flows: flows})
}

// DialWith connects according to cfg. With a Retry policy the initial
// dial and handshake are retried with the same backoff as later
// reconnects; fail-fast rejects (bad_flow) abort immediately.
func DialWith(cfg DialConfig) (*Client, error) {
	if cfg.Dialer == nil {
		addr := cfg.Addr
		cfg.Dialer = func() (net.Conn, error) {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
			}
			return nc, nil
		}
	}
	rng := newJitter(cfg.Retry.Seed)
	attempts := cfg.Retry.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff(rng, cfg.Retry, attempt-1))
		}
		nc, err := cfg.Dialer()
		if err != nil {
			lastErr = err
			continue
		}
		c, err := newClient(nc, cfg, rng)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if resumeFatal(err) {
			break
		}
	}
	return nil, lastErr
}

// NewClient handshakes over an existing connection (which the Client
// then owns), without a retry policy.
func NewClient(nc net.Conn, flows int) (*Client, error) {
	return newClient(nc, DialConfig{Flows: flows}, newJitter(0))
}

func newJitter(seed int64) *rand.Rand {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return rand.New(rand.NewSource(seed))
}

// backoff draws the jittered exponential delay for the given attempt.
func backoff(rng *rand.Rand, r Retry, attempt int) time.Duration {
	base, max := r.Base, r.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

func newClient(nc net.Conn, cfg DialConfig, rng *rand.Rand) (*Client, error) {
	c := &Client{
		cfg:      cfg,
		nc:       nc,
		wnc:      nc,
		w:        wire.NewWriter(nc),
		perQueue: make(map[pktbuf.Queue]uint64, cfg.Flows),
		submitPQ: make(map[pktbuf.Queue]uint64, cfg.Flows),
		dedup:    make(map[pktbuf.Queue]uint64),
		rng:      rng,
		done:     make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	if err := c.w.WriteFrame(wire.THello, wire.Hello{Flows: cfg.Flows}.AppendTo(nil)); err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		nc.Close()
		return nil, err
	}
	r := wire.NewReader(nc)
	c.armDeadline()
	t, p, err := r.Next()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if t == wire.TReject {
		rej, perr := wire.ParseReject(p)
		nc.Close()
		if perr != nil {
			return nil, perr
		}
		return nil, fmt.Errorf("serve: handshake rejected: %w", CodeErr(rej.Code))
	}
	if t != wire.TWelcome {
		nc.Close()
		return nil, fmt.Errorf("%w: handshake got %v, want Welcome", wire.ErrFrame, t)
	}
	if c.welcome, err = wire.ParseWelcome(p); err != nil {
		nc.Close()
		return nil, err
	}
	c.session = c.welcome.Session
	t, p, err = r.Next()
	if err != nil || t != wire.TFlows {
		nc.Close()
		if err == nil {
			err = fmt.Errorf("%w: handshake got %v, want Flows", wire.ErrFrame, t)
		}
		return nil, err
	}
	if err := wire.DecodeCells(p, wire.Deliveries, func(q pktbuf.Queue) error {
		c.flows = append(c.flows, q)
		c.perQueue[q] = 0
		return nil
	}); err != nil {
		nc.Close()
		return nil, err
	}
	c.startPinger()
	go c.readLoop(r)
	return c, nil
}

// armDeadline extends the read deadline to two keepalive intervals.
func (c *Client) armDeadline() {
	if c.cfg.KeepAlive <= 0 {
		return
	}
	c.mu.Lock()
	nc := c.nc
	c.mu.Unlock()
	nc.SetReadDeadline(time.Now().Add(2 * c.cfg.KeepAlive))
}

// startPinger (re)starts the keepalive prober for the current
// connection epoch. Callers must not hold mu... it takes it.
func (c *Client) startPinger() {
	if c.cfg.KeepAlive <= 0 {
		return
	}
	stop := make(chan struct{})
	c.mu.Lock()
	if c.pingStop != nil {
		close(c.pingStop)
	}
	c.pingStop = stop
	c.mu.Unlock()
	go func() {
		t := time.NewTicker(c.cfg.KeepAlive)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-c.done:
				return
			case <-t.C:
				c.wmu.Lock()
				err := c.w.WriteFrame(wire.TPing, nil)
				if err == nil {
					err = c.w.Flush()
				}
				c.wmu.Unlock()
				if err != nil {
					return
				}
			}
		}
	}()
}

// Flows returns the VOQ ids assigned by the server.
func (c *Client) Flows() []pktbuf.Queue { return c.flows }

// Welcome returns the server-granted limits.
func (c *Client) Welcome() wire.Welcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.welcome
}

// resumable reports whether a broken connection should be resumed
// rather than failed. Callers hold mu.
func (c *Client) resumable() bool {
	return c.cfg.Retry.Attempts > 0 && c.session != 0 && !c.byeSent
}

// Submit sends one Submit frame carrying qs, blocking first until the
// in-system window has room for the whole burst (so a single-writer
// client never trips CodeWindowFull) and until any in-progress
// reconnect completes. It fails fast once the server is draining or
// the connection is irrecoverably broken. Bursts larger than the
// window are an error.
//
// On a resumable client a mid-write connection failure is not an
// error: the cells are accounted as submitted and the resume
// reconciliation guarantees the server ends up with exactly one copy
// of each (resubmitted if the crash swallowed them).
func (c *Client) Submit(qs []pktbuf.Queue) error {
	if len(qs) == 0 {
		return nil
	}
	c.mu.Lock()
	if len(qs) > c.welcome.Window {
		win := c.welcome.Window
		c.mu.Unlock()
		return fmt.Errorf("serve: burst of %d exceeds window %d: %w",
			len(qs), win, pktbuf.ErrBadConfig)
	}
	for c.err == nil && !c.draining &&
		(c.reconnectng || c.welcome.Window-c.inFlight < len(qs)) {
		c.cond.Wait()
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	if c.draining {
		c.mu.Unlock()
		return ErrDraining
	}
	c.inFlight += len(qs)
	c.submitted += uint64(len(qs))
	for _, q := range qs {
		c.submitPQ[q]++
	}
	c.mu.Unlock()
	c.wmu.Lock()
	nc := c.wnc
	err := c.w.WriteCells(wire.TSubmit, wire.Arrivals, qs)
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		res := c.resumable()
		c.mu.Unlock()
		if res {
			// Kick the reader off the dead connection; reconciliation on
			// resume decides whether this burst arrived.
			nc.Close()
			return nil
		}
		c.fail(err)
		return err
	}
	return nil
}

// submitRaw writes a resubmission burst: window-gated like Submit but
// without recounting the cells (they were counted when first
// submitted). A stale epoch aborts silently — a newer reconnect owns
// reconciliation now.
func (c *Client) submitRaw(qs []pktbuf.Queue, epoch uint64) bool {
	c.mu.Lock()
	for c.err == nil && c.epochN == epoch &&
		(c.reconnectng || c.welcome.Window-c.inFlight < len(qs)) {
		c.cond.Wait()
	}
	if c.err != nil || c.epochN != epoch {
		c.mu.Unlock()
		return false
	}
	c.inFlight += len(qs)
	c.mu.Unlock()
	c.wmu.Lock()
	nc := c.wnc
	err := c.w.WriteCells(wire.TSubmit, wire.Arrivals, qs)
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		nc.Close()
		return false
	}
	return true
}

// Bye announces end of submission, waits for the server to confirm
// the connection fully drained (its final Bye), and closes. A nil
// return means every submitted cell was delivered or explicitly
// rejected. Bye waits out an in-progress reconnect first; it also
// ends the retry policy — a connection lost after Bye is a failure.
func (c *Client) Bye(ctx context.Context) error {
	c.mu.Lock()
	for c.err == nil && (c.reconnectng || c.resubmitting > 0) {
		c.cond.Wait()
	}
	c.byeSent = true
	err := c.err
	nc := c.nc
	c.mu.Unlock()
	if err != nil {
		return err
	}
	c.wmu.Lock()
	err = c.w.WriteFrame(wire.TBye, nil)
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
		nc.Close()
		return err
	}
	select {
	case <-c.done:
	case <-ctx.Done():
		nc.Close()
		return fmt.Errorf("serve: bye: %w", ctx.Err())
	}
	c.mu.Lock()
	ok := c.byeOK
	err = c.err
	c.mu.Unlock()
	nc.Close()
	if !ok && err != nil && err != io.EOF {
		return err
	}
	return nil
}

// Close drops the connection immediately.
func (c *Client) Close() error {
	c.mu.Lock()
	c.byeSent = true // no resumption after an explicit Close
	nc := c.nc
	c.mu.Unlock()
	if err := nc.Close(); err != nil {
		return fmt.Errorf("serve: close: %w", err)
	}
	return nil
}

// Stats snapshots the client counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{
		Submitted: c.submitted,
		Delivered: c.delivered,
		Rejected:  c.rejected,
		InFlight:  c.inFlight,
		Resumes:   c.resumes,
	}
}

// Received returns the per-queue count of cells received so far — the
// client-side exactly-once ledger (sequence numbers are implicit:
// queue q has received cells 0..Received(q)-1).
func (c *Client) Received(q pktbuf.Queue) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.perQueue[q]
}

// Rejects returns the Reject frames received so far. Map a reject
// onto the typed error taxonomy with CodeErr.
func (c *Client) Rejects() []wire.Reject {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.Reject, len(c.rejects))
	copy(out, c.rejects)
	return out
}

// Err returns the connection error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Draining reports whether the server announced Drain.
func (c *Client) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Done is closed when the reader goroutine exits for good (server
// Bye, retry policy exhausted, or unrecoverable failure).
func (c *Client) Done() <-chan struct{} { return c.done }

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// readLoop owns the read side across connection epochs: it consumes
// frames until the connection breaks, then — if the session is
// resumable — reconnects and carries on.
func (c *Client) readLoop(r *wire.Reader) {
	defer close(c.done)
	for {
		err := c.readFrames(r)
		if err == nil {
			return // clean server Bye
		}
		c.mu.Lock()
		res := c.resumable() && !c.draining
		c.mu.Unlock()
		if !res {
			c.fail(err)
			return
		}
		nr, rerr := c.reconnect(err)
		if rerr != nil {
			c.fail(rerr)
			return
		}
		r = nr
	}
}

// readFrames consumes one connection's frames. nil means clean Bye;
// everything else is a connection-epoch failure.
func (c *Client) readFrames(r *wire.Reader) error {
	for {
		c.armDeadline()
		t, p, err := r.Next()
		if err != nil {
			return err
		}
		switch t {
		case wire.TDeliver:
			if err := c.handleDeliver(p); err != nil {
				return err
			}
		case wire.TReject:
			rej, perr := wire.ParseReject(p)
			if perr != nil {
				return perr
			}
			c.mu.Lock()
			c.rejected += uint64(rej.Dropped)
			c.inFlight -= rej.Dropped
			c.rejects = append(c.rejects, rej)
			c.cond.Broadcast()
			c.mu.Unlock()
		case wire.TPing:
			c.wmu.Lock()
			if c.w.WriteFrame(wire.TPong, nil) == nil {
				c.w.Flush()
			}
			c.wmu.Unlock()
		case wire.TPong:
			// Liveness proven; the deadline was re-armed above.
		case wire.TDrain:
			c.mu.Lock()
			c.draining = true
			c.cond.Broadcast()
			c.mu.Unlock()
		case wire.TBye:
			c.mu.Lock()
			c.byeOK = true
			c.cond.Broadcast()
			c.mu.Unlock()
			return nil
		default:
			return fmt.Errorf("%w: unexpected %v frame from server", wire.ErrFrame, t)
		}
	}
}

// handleDeliver counts one Deliver frame's cells, discarding
// redeliveries the resume reconciliation marked as already held.
func (c *Client) handleDeliver(p []byte) error {
	return wire.DecodeCells(p, wire.Deliveries, func(q pktbuf.Queue) error {
		c.mu.Lock()
		if c.dedup[q] > 0 {
			// A redelivery of a cell received before the resume: server
			// credit returns, but the cell is already counted.
			c.dedup[q]--
			c.inFlight--
			c.cond.Broadcast()
			c.mu.Unlock()
			return nil
		}
		seq := c.perQueue[q]
		c.perQueue[q] = seq + 1
		c.delivered++
		c.inFlight--
		c.cond.Broadcast()
		c.mu.Unlock()
		if c.OnDeliver != nil {
			c.OnDeliver(pktbuf.Cell{Queue: q, Seq: seq})
		}
		return nil
	})
}

// resumeFatal reports a handshake error that retrying cannot fix.
func resumeFatal(err error) bool {
	return errors.Is(err, ErrSessionUnknown) || errors.Is(err, router.ErrBadFlow)
}

// reconnect re-dials and resumes the session with jittered
// exponential backoff, honoring the reject taxonomy: transient codes
// (draining, ingress_full) are retried, fail-fast codes
// (session_unknown, bad_flow) abort with the typed error. On success
// it returns the new connection's reader and spawns the resubmission
// of cells the server never saw.
func (c *Client) reconnect(cause error) (*wire.Reader, error) {
	c.mu.Lock()
	c.reconnectng = true
	if c.pingStop != nil {
		close(c.pingStop)
		c.pingStop = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.nc.Close()
	lastErr := cause
	for attempt := 0; attempt < c.cfg.Retry.Attempts; attempt++ {
		time.Sleep(backoff(c.rng, c.cfg.Retry, attempt))
		nc, err := c.cfg.Dialer()
		if err != nil {
			lastErr = err
			continue
		}
		r, need, err := c.resumeHandshake(nc)
		if err != nil {
			nc.Close()
			if resumeFatal(err) {
				return nil, fmt.Errorf("serve: resume: %w", err)
			}
			lastErr = err
			continue
		}
		c.mu.Lock()
		c.resumes++
		epoch := c.epochN
		c.reconnectng = false
		if len(need) > 0 {
			c.resubmitting++
		}
		c.cond.Broadcast()
		c.mu.Unlock()
		c.startPinger()
		if len(need) > 0 {
			go func() {
				defer func() {
					c.mu.Lock()
					c.resubmitting--
					c.cond.Broadcast()
					c.mu.Unlock()
				}()
				c.resubmit(need, epoch)
			}()
		}
		return r, nil
	}
	return nil, fmt.Errorf("serve: reconnect failed after %d attempts: %w",
		c.cfg.Retry.Attempts, lastErr)
}

// resumeHandshake performs the resume exchange on a fresh connection
// and reconciles the client ledgers against the server's counters.
// It returns the per-queue resubmission counts (cells the server
// never saw).
func (c *Client) resumeHandshake(nc net.Conn) (*wire.Reader, map[pktbuf.Queue]uint64, error) {
	c.mu.Lock()
	hello := wire.Hello{Flows: len(c.flows), Session: c.session}
	acks := make([]uint64, len(c.flows))
	for i, q := range c.flows {
		acks[i] = c.perQueue[q]
	}
	c.mu.Unlock()
	w := wire.NewWriter(nc)
	if err := w.WriteFrame(wire.THello, hello.AppendTo(nil)); err != nil {
		return nil, nil, err
	}
	if err := w.WriteFrame(wire.TAcks, wire.AppendSeqs(nil, c.flows, acks)); err != nil {
		return nil, nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, nil, err
	}
	if c.cfg.KeepAlive > 0 {
		nc.SetReadDeadline(time.Now().Add(2 * c.cfg.KeepAlive))
	}
	r := wire.NewReader(nc)
	t, p, err := r.Next()
	if err != nil {
		return nil, nil, err
	}
	if t == wire.TReject {
		rej, perr := wire.ParseReject(p)
		if perr != nil {
			return nil, nil, perr
		}
		return nil, nil, fmt.Errorf("serve: resume rejected: %w", CodeErr(rej.Code))
	}
	if t != wire.TWelcome {
		return nil, nil, fmt.Errorf("%w: resume got %v, want Welcome", wire.ErrFrame, t)
	}
	wlc, err := wire.ParseWelcome(p)
	if err != nil {
		return nil, nil, err
	}
	if !wlc.Resumed || wlc.Session != c.session {
		return nil, nil, fmt.Errorf("%w: server did not resume session", wire.ErrFrame)
	}
	t, p, err = r.Next()
	if err != nil || t != wire.TSeqs {
		if err == nil {
			err = fmt.Errorf("%w: resume got %v, want Seqs", wire.ErrFrame, t)
		}
		return nil, nil, err
	}
	// Reconciliation, per queue, against (a = arrived, d = delivered
	// and gone, r = received here): discard the next max(0, r−d)
	// redeliveries, expect a−min(d,r) in-flight cells, resubmit the
	// submitted−a the server never saw.
	need := make(map[pktbuf.Queue]uint64)
	c.mu.Lock()
	for q := range c.dedup {
		delete(c.dedup, q)
	}
	inFlight := 0
	perr := wire.ParseSeqPairs(p, func(q pktbuf.Queue, a, d uint64) error {
		recv := c.perQueue[q]
		if recv > d {
			c.dedup[q] = recv - d
		}
		low := d
		if recv < low {
			low = recv
		}
		inFlight += int(a - low)
		if sub := c.submitPQ[q]; sub > a {
			need[q] = sub - a
		}
		return nil
	})
	if perr != nil {
		c.mu.Unlock()
		return nil, nil, perr
	}
	c.inFlight = inFlight
	c.welcome = wlc
	c.epochN++
	c.mu.Unlock()
	// Swap the write side last: anything written before this point went
	// to the dead socket and is covered by reconciliation.
	c.wmu.Lock()
	c.w = w
	c.wnc = nc
	c.wmu.Unlock()
	c.mu.Lock()
	c.nc = nc
	c.mu.Unlock()
	return r, need, nil
}

// resubmit replays cells the server never saw, in window-sized
// bursts. Runs concurrently with the reader (which frees window
// space) and with user Submits; cells are (queue, seq) pairs with
// sequence numbers assigned on arrival, so interleaving is harmless.
func (c *Client) resubmit(need map[pktbuf.Queue]uint64, epoch uint64) {
	c.mu.Lock()
	burstCap := c.welcome.Window
	c.mu.Unlock()
	if burstCap > 4096 {
		burstCap = 4096
	}
	burst := make([]pktbuf.Queue, 0, burstCap)
	for _, q := range c.flows {
		n := need[q]
		for n > 0 {
			burst = append(burst, q)
			n--
			if len(burst) == burstCap {
				if !c.submitRaw(burst, epoch) {
					return
				}
				burst = burst[:0]
			}
		}
	}
	if len(burst) > 0 {
		c.submitRaw(burst, epoch)
	}
}
