package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/pktbuf"
	"repro/pktbuf/serve/wire"
)

// Client is a data-plane client for a pktbufd server: it handshakes
// for a set of flows, submits cells, and consumes deliveries on a
// background reader. Submit respects the server-granted in-system
// window, so a Client that is the only writer for its flows is never
// window-rejected; ingress-ring rejects (a burst outrunning the
// serving loop) surface asynchronously through Rejects.
//
// Submit may be called from one goroutine at a time; the accessors
// are safe from any goroutine.
type Client struct {
	nc net.Conn

	wmu sync.Mutex
	w   *wire.Writer

	flows   []pktbuf.Queue
	welcome wire.Welcome

	// OnDeliver, if set before the first Submit, observes every
	// delivered cell in order, with per-queue sequence numbers
	// reconstructed by counting (deliveries are strictly sequential per
	// VOQ). Called from the reader goroutine.
	OnDeliver func(pktbuf.Cell)

	mu        sync.Mutex
	cond      *sync.Cond
	inFlight  int
	submitted uint64
	delivered uint64
	rejected  uint64
	rejects   []wire.Reject
	perQueue  map[pktbuf.Queue]uint64
	err       error
	draining  bool
	byeOK     bool

	done chan struct{}
}

// ClientStats is a Client counter snapshot.
type ClientStats struct {
	// Submitted counts cells handed to Submit; Delivered counts cells
	// returned by the server; Rejected counts cells the server refused
	// (see Rejects for the frames).
	Submitted, Delivered, Rejected uint64
	// InFlight is submitted − delivered − rejected: cells currently in
	// the server's system charged against the window.
	InFlight int
}

// Dial connects to a pktbufd data-plane address and handshakes for
// the given number of flows.
func Dial(addr string, flows int) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	return NewClient(nc, flows)
}

// NewClient handshakes over an existing connection (which the Client
// then owns).
func NewClient(nc net.Conn, flows int) (*Client, error) {
	c := &Client{
		nc:       nc,
		w:        wire.NewWriter(nc),
		perQueue: make(map[pktbuf.Queue]uint64, flows),
		done:     make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	if err := c.w.WriteFrame(wire.THello, wire.Hello{Flows: flows}.AppendTo(nil)); err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		nc.Close()
		return nil, err
	}
	r := wire.NewReader(nc)
	t, p, err := r.Next()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if t == wire.TReject {
		rej, perr := wire.ParseReject(p)
		nc.Close()
		if perr != nil {
			return nil, perr
		}
		return nil, fmt.Errorf("serve: handshake rejected: %w", CodeErr(rej.Code))
	}
	if t != wire.TWelcome {
		nc.Close()
		return nil, fmt.Errorf("%w: handshake got %v, want Welcome", wire.ErrFrame, t)
	}
	if c.welcome, err = wire.ParseWelcome(p); err != nil {
		nc.Close()
		return nil, err
	}
	t, p, err = r.Next()
	if err != nil || t != wire.TFlows {
		nc.Close()
		if err == nil {
			err = fmt.Errorf("%w: handshake got %v, want Flows", wire.ErrFrame, t)
		}
		return nil, err
	}
	if err := wire.DecodeCells(p, wire.Deliveries, func(q pktbuf.Queue) error {
		c.flows = append(c.flows, q)
		c.perQueue[q] = 0
		return nil
	}); err != nil {
		nc.Close()
		return nil, err
	}
	go c.readLoop(r)
	return c, nil
}

// Flows returns the VOQ ids assigned by the server.
func (c *Client) Flows() []pktbuf.Queue { return c.flows }

// Welcome returns the server-granted limits.
func (c *Client) Welcome() wire.Welcome { return c.welcome }

// Submit sends one Submit frame carrying qs, blocking first until the
// in-system window has room for the whole burst (so a single-writer
// client never trips CodeWindowFull). It fails fast once the server
// is draining or the connection broke. Bursts larger than the window
// are an error.
func (c *Client) Submit(qs []pktbuf.Queue) error {
	if len(qs) == 0 {
		return nil
	}
	if len(qs) > c.welcome.Window {
		return fmt.Errorf("serve: burst of %d exceeds window %d: %w",
			len(qs), c.welcome.Window, pktbuf.ErrBadConfig)
	}
	c.mu.Lock()
	for c.err == nil && !c.draining && c.welcome.Window-c.inFlight < len(qs) {
		c.cond.Wait()
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	if c.draining {
		c.mu.Unlock()
		return ErrDraining
	}
	c.inFlight += len(qs)
	c.submitted += uint64(len(qs))
	c.mu.Unlock()
	c.wmu.Lock()
	err := c.w.WriteCells(wire.TSubmit, wire.Arrivals, qs)
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
	}
	return err
}

// Bye announces end of submission, waits for the server to confirm
// the connection fully drained (its final Bye), and closes. A nil
// return means every submitted cell was delivered or explicitly
// rejected.
func (c *Client) Bye(ctx context.Context) error {
	c.wmu.Lock()
	err := c.w.WriteFrame(wire.TBye, nil)
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
		c.nc.Close()
		return err
	}
	select {
	case <-c.done:
	case <-ctx.Done():
		c.nc.Close()
		return fmt.Errorf("serve: bye: %w", ctx.Err())
	}
	c.mu.Lock()
	ok := c.byeOK
	err = c.err
	c.mu.Unlock()
	c.nc.Close()
	if !ok && err != nil && err != io.EOF {
		return err
	}
	return nil
}

// Close drops the connection immediately.
func (c *Client) Close() error {
	if err := c.nc.Close(); err != nil {
		return fmt.Errorf("serve: close: %w", err)
	}
	return nil
}

// Stats snapshots the client counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{
		Submitted: c.submitted,
		Delivered: c.delivered,
		Rejected:  c.rejected,
		InFlight:  c.inFlight,
	}
}

// Rejects returns the Reject frames received so far. Map a reject
// onto the typed error taxonomy with CodeErr.
func (c *Client) Rejects() []wire.Reject {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.Reject, len(c.rejects))
	copy(out, c.rejects)
	return out
}

// Err returns the connection error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Draining reports whether the server announced Drain.
func (c *Client) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Done is closed when the reader goroutine exits (server Bye or
// connection failure).
func (c *Client) Done() <-chan struct{} { return c.done }

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *Client) readLoop(r *wire.Reader) {
	defer close(c.done)
	for {
		t, p, err := r.Next()
		if err != nil {
			c.fail(err)
			return
		}
		switch t {
		case wire.TDeliver:
			n := 0
			derr := wire.DecodeCells(p, wire.Deliveries, func(q pktbuf.Queue) error {
				n++
				c.mu.Lock()
				seq := c.perQueue[q]
				c.perQueue[q] = seq + 1
				c.mu.Unlock()
				if c.OnDeliver != nil {
					c.OnDeliver(pktbuf.Cell{Queue: q, Seq: seq})
				}
				return nil
			})
			c.mu.Lock()
			c.delivered += uint64(n)
			c.inFlight -= n
			c.cond.Broadcast()
			c.mu.Unlock()
			if derr != nil {
				c.fail(derr)
				return
			}
		case wire.TReject:
			rej, perr := wire.ParseReject(p)
			if perr != nil {
				c.fail(perr)
				return
			}
			c.mu.Lock()
			c.rejected += uint64(rej.Dropped)
			c.inFlight -= rej.Dropped
			c.rejects = append(c.rejects, rej)
			c.cond.Broadcast()
			c.mu.Unlock()
		case wire.TDrain:
			c.mu.Lock()
			c.draining = true
			c.cond.Broadcast()
			c.mu.Unlock()
		case wire.TBye:
			c.mu.Lock()
			c.byeOK = true
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		default:
			c.fail(fmt.Errorf("%w: unexpected %v frame from server", wire.ErrFrame, t))
			return
		}
	}
}
