package serve

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/pktbuf"
	"repro/pktbuf/serve/wire"
)

// A session is the durable identity of a client across connections:
// the token named in Welcome, the VOQs the client owns, and — through
// the engine's per-queue arrived/delivered counters — everything
// needed to resume after either side crashes. Because a cell is a
// pure (queue, sequence) pair, a session carries no payload state:
// lost deliveries are re-synthesized from counters and lost
// submissions are resubmitted by the client, so the checkpoint entry
// for a session is just its token and queue list.
type session struct {
	token  uint64
	queues []int32
	// attached is the connection currently serving the session (nil
	// while detached). A resuming connection swaps itself in and
	// force-detaches a stale predecessor, so the newest connection
	// always wins.
	attached atomic.Pointer[conn]
}

// newToken draws a nonzero session token. Callers hold Server.mu.
func (s *Server) newToken() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand never fails on supported platforms; fall back
			// to a counter rather than handing out a zero token.
			s.tokenFallback++
			return s.tokenFallback
		}
		tok := binary.LittleEndian.Uint64(b[:])
		if tok != 0 && s.sessions[tok] == nil {
			return tok
		}
	}
}

// allocFlows hands out n free VOQ ids, or nil when the pool is short.
// On a Resumable server it also mints the session that owns them.
func (s *Server) allocFlows(c *conn, n int) []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > len(s.freeQ) {
		return nil
	}
	qs := make([]int32, n)
	copy(qs, s.freeQ[len(s.freeQ)-n:])
	s.freeQ = s.freeQ[:len(s.freeQ)-n]
	for _, q := range qs {
		s.owner[q].Store(c)
	}
	s.flowG.Add(int64(n))
	c.queues = qs
	if s.cfg.Resumable {
		sess := &session{token: s.newToken(), queues: qs}
		sess.attached.Store(c)
		s.sessions[sess.token] = sess
		c.sess.Store(sess)
	}
	return qs
}

// resumeSession reattaches c to the session named by token, or
// reports nil for an unknown token. A stale predecessor connection is
// force-detached: its socket is closed and the serving loop stops
// ingesting from it, so its unprocessed cells surface as resubmits.
func (s *Server) resumeSession(c *conn, token uint64) *session {
	s.mu.Lock()
	sess := s.sessions[token]
	if sess == nil {
		s.mu.Unlock()
		return nil
	}
	old := sess.attached.Swap(c)
	c.sess.Store(sess)
	c.queues = sess.queues
	s.mu.Unlock()
	if old != nil && old != c {
		old.gone.Store(true)
		old.closing.Store(true)
		old.nc.Close()
		old.wakeWriter()
	}
	return sess
}

// releaseConn ends a connection cleanly: flows return to the pool,
// the session (if any) is forgotten, and the socket is closed. The
// caller guarantees the connection has no cells left in the system.
// If another connection has already resumed the session, only this
// connection's registration is dropped — the flows now belong to the
// successor.
func (s *Server) releaseConn(c *conn) {
	s.mu.Lock()
	if _, ok := s.conns[c]; ok {
		delete(s.conns, c)
		s.connG.Add(-1)
	}
	sess := c.sess.Load()
	succ := (*conn)(nil)
	if sess != nil {
		succ = sess.attached.Load()
	}
	if succ != nil && succ != c {
		for _, q := range c.queues {
			s.owner[q].CompareAndSwap(c, nil)
		}
	} else {
		for _, q := range c.queues {
			s.owner[q].CompareAndSwap(c, nil)
			s.freeQ = append(s.freeQ, q)
		}
		s.flowG.Add(int64(-len(c.queues)))
		if sess != nil {
			delete(s.sessions, sess.token)
			sess.attached.Store(nil)
		}
		c.queues = nil
	}
	s.mu.Unlock()
	c.nc.Close()
}

// detachConn tears down a failed connection while keeping its session
// alive for resumption: the socket closes and delivery routing stops
// (cells park for the session's next connection), but the flows stay
// allocated and the engine keeps draining the session's cells.
func (s *Server) detachConn(c *conn) {
	s.mu.Lock()
	if _, ok := s.conns[c]; ok {
		delete(s.conns, c)
		s.connG.Add(-1)
	}
	for _, q := range c.queues {
		s.owner[q].CompareAndSwap(c, nil)
	}
	if sess := c.sess.Load(); sess != nil {
		sess.attached.CompareAndSwap(c, nil)
	}
	s.mu.Unlock()
	c.nc.Close()
}

// attachResume finishes a resume handshake on the serving goroutine,
// where the engine counters, parked deliveries and ready state can be
// read at one consistent point. Reconciliation is pure counter
// arithmetic: with a = cells arrived, d = cells delivered-and-gone
// (delivered minus parked) and r = the client's received count for a
// queue,
//
//   - max(0, d−r) deliveries are synthesized immediately (the engine
//     discarded them before the crash; the client never got them),
//   - the client discards its first max(0, r−d) redeliveries (it
//     already holds them; see the TSeqs frame), and
//   - the client resubmits its submitted−a trailing cells (the engine
//     never saw them).
//
// Every path preserves per-queue FIFO delivery, so the client's
// counted sequence numbers line up exactly once.
func (s *Server) attachResume(c *conn) {
	sess := c.sess.Load()
	if sess == nil || sess.attached.Load() != c || c.closing.Load() {
		return // superseded or already dead; nothing to attach
	}
	qs := sess.queues
	n := len(qs)
	arrived := make([]uint64, n)
	delivered := make([]uint64, n)
	flowQs := make([]pktbuf.Queue, n)
	var charge, synthTotal int64
	for i, q := range qs {
		s.owner[q].Store(c)
		qq := pktbuf.Queue(q)
		flowQs[i] = qq
		a := s.buf.ArrivedSeq(qq)
		d := s.buf.DeliveredSeq(qq) - uint64(s.parked[q])
		arrived[i], delivered[i] = a, d
		charge += int64(a - d)
		if acked := c.resumeAcks[i]; d > acked {
			synthTotal += int64(d - acked)
		}
	}
	c.window.Store(int64(c.windowCap) - charge)
	welcome := wire.Welcome{
		Flows:       n,
		IngressRing: c.ingress.capacity(),
		Window:      c.windowCap,
		Session:     sess.token,
		Resumed:     true,
	}
	c.sendCtrl(wire.TWelcome, welcome.AppendTo(nil))
	c.sendCtrl(wire.TSeqs, wire.AppendSeqPairs(nil, flowQs, arrived, delivered))
	if synthTotal > 0 {
		// Deliveries the engine discarded before the checkpoint and the
		// client never received: cells are pure (queue, seq) pairs, so
		// they are rebuilt from the counters alone.
		synth := make([]pktbuf.Queue, 0, synthTotal)
		for i, q := range qs {
			for acked := c.resumeAcks[i]; acked < delivered[i]; acked++ {
				synth = append(synth, pktbuf.Queue(q))
			}
		}
		c.sendCtrl(wire.TDeliver, encodeCellPayload(synth))
	}
	for _, q := range qs {
		// Parked deliveries flow out through the egress ring like live
		// ones; the charge computed above covers them until the writer
		// returns their credit.
		for ; s.parked[q] > 0; s.parked[q]-- {
			if !c.egress.push(q) {
				s.cfg.ErrorLog.Printf("pktbufd: egress overflow on resumed queue %d (window accounting bug)", q)
				break
			}
		}
		// Re-arm the request scheduler for everything still buffered;
		// ready counts survived the detach, so only the delta (cells
		// restored from a checkpoint) is added.
		if r := int32(s.buf.Requestable(pktbuf.Queue(q))); r > s.ready[q] {
			s.readyCount += int(r - s.ready[q])
			s.ready[q] = r
			s.rrPush(q)
		}
	}
	c.wakeWriter()
}

// serveCheckpointVersion is the checkpoint layout version.
const serveCheckpointVersion = 1

// ckptReq asks the serving loop to write a checkpoint at its next
// batch boundary.
type ckptReq struct {
	w    io.Writer
	done chan error
}

// Checkpoint writes a crash-consistent checkpoint — the session table
// followed by the engine snapshot — to w. The write happens on the
// serving goroutine at a batch boundary, so it never races a tick;
// the calling goroutine blocks until it completes. Restore with
// RestoreServer. Returns ErrServerClosed once the serving loop has
// stopped.
func (s *Server) Checkpoint(w io.Writer) error {
	req := &ckptReq{w: w, done: make(chan error, 1)}
	s.ckptMu.Lock()
	select {
	case <-s.loopDone:
		s.ckptMu.Unlock()
		return ErrServerClosed
	default:
	}
	s.ckpt.Store(req)
	s.wakeLoop()
	s.ckptMu.Unlock()
	select {
	case err := <-req.done:
		return err
	case <-s.loopDone:
		if s.ckpt.CompareAndSwap(req, nil) {
			return ErrServerClosed
		}
		return <-req.done
	}
}

// writeCheckpoint runs on the serving goroutine between batches.
func (s *Server) writeCheckpoint(w io.Writer) error {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].token < sessions[j].token })
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# pktbufd checkpoint: session table, then the engine snapshot.\n")
	fmt.Fprintf(bw, "!serve-checkpoint version=%d sessions=%d\n", serveCheckpointVersion, len(sessions))
	for _, sess := range sessions {
		fmt.Fprintf(bw, "%d", sess.token)
		for _, q := range sess.queues {
			fmt.Fprintf(bw, " %d", q)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintf(bw, "!serve-checkpoint-end\n")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("serve: checkpoint: %w", err)
	}
	return s.buf.Snapshot(w)
}

// RestoreServer reconstructs a server from a checkpoint written by
// Checkpoint. cfg plays the same role as in NewServer and its Buffer
// section must match the checkpointed engine's configuration
// (mismatches surface pktbuf.ErrSnapshot); Resumable is implied.
// The restored server starts with no connections: clients reattach
// through the session-resume handshake, which redelivers exactly the
// cells each client is missing. Attach listeners with Serve as usual.
func RestoreServer(r io.Reader, cfg Config) (*Server, error) {
	br := bufio.NewReader(r)
	head, err := readCheckpointLine(br)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint header: %w", err)
	}
	var version, count int
	if _, err := fmt.Sscanf(head, "!serve-checkpoint version=%d sessions=%d", &version, &count); err != nil {
		return nil, fmt.Errorf("serve: bad checkpoint header %q: %w", head, pktbuf.ErrSnapshot)
	}
	if version != serveCheckpointVersion {
		return nil, fmt.Errorf("serve: checkpoint version %d: %w", version, pktbuf.ErrSnapshotVersion)
	}
	type sessRec struct {
		token  uint64
		queues []int32
	}
	recs := make([]sessRec, 0, count)
	for i := 0; i < count; i++ {
		line, err := readCheckpointLine(br)
		if err != nil {
			return nil, fmt.Errorf("serve: checkpoint session %d: %w", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) < 1 {
			return nil, fmt.Errorf("serve: empty checkpoint session line: %w", pktbuf.ErrSnapshot)
		}
		tok, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil || tok == 0 {
			return nil, fmt.Errorf("serve: bad session token %q: %w", fields[0], pktbuf.ErrSnapshot)
		}
		queues := make([]int32, 0, len(fields)-1)
		for _, f := range fields[1:] {
			q, err := strconv.ParseInt(f, 10, 32)
			if err != nil || q < 0 {
				return nil, fmt.Errorf("serve: bad session queue %q: %w", f, pktbuf.ErrSnapshot)
			}
			queues = append(queues, int32(q))
		}
		recs = append(recs, sessRec{token: tok, queues: queues})
	}
	if line, err := readCheckpointLine(br); err != nil || line != "!serve-checkpoint-end" {
		return nil, fmt.Errorf("serve: checkpoint session table not terminated: %w", pktbuf.ErrSnapshot)
	}
	buf, err := pktbuf.Restore(br, cfg.Buffer)
	if err != nil {
		return nil, err
	}
	cfg.Resumable = true
	s, err := newServerWith(cfg, buf)
	if err != nil {
		return nil, err
	}
	taken := make(map[int32]bool)
	for _, rec := range recs {
		for _, q := range rec.queues {
			if int(q) >= len(s.owner) || taken[q] {
				return nil, fmt.Errorf("serve: checkpoint session queue %d out of range or duplicated: %w", q, pktbuf.ErrSnapshot)
			}
			taken[q] = true
		}
		sess := &session{token: rec.token, queues: rec.queues}
		s.sessions[rec.token] = sess
		s.flowG.Add(int64(len(rec.queues)))
	}
	kept := s.freeQ[:0]
	for _, q := range s.freeQ {
		if !taken[q] {
			kept = append(kept, q)
		}
	}
	s.freeQ = kept
	go s.loop()
	return s, nil
}

// readCheckpointLine reads the next non-comment, non-blank line.
func readCheckpointLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if err == io.EOF && line == "" {
				return "", fmt.Errorf("truncated: %w", pktbuf.ErrSnapshot)
			} else if err != io.EOF {
				return "", err
			}
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, nil
	}
}
