package serve

import (
	"errors"
	"runtime"
	"time"

	"repro/pktbuf"
	"repro/pktbuf/trace"
)

// loop is the single serving goroutine: the only code that touches
// the buffer engine. Each pass drains connection-activation tokens,
// assembles one TickBatch from pending requests and arrivals, ticks
// the engine, routes deliveries to egress rings, and publishes a
// stats snapshot. With nothing to do it parks on a channel — and in
// paced mode crosses the idle gap with FastForward on wake — so an
// idle daemon consumes no CPU.
func (s *Server) loop() {
	defer close(s.loopDone)
	s.epoch = time.Now()
	for {
		if s.closed.Load() {
			return
		}
		// Serve a pending checkpoint between batches: the engine is at a
		// batch boundary here, so the snapshot races nothing. Steady
		// state pays one atomic nil-check.
		if req := s.ckpt.Load(); req != nil {
			s.ckpt.Store(nil)
			req.done <- s.writeCheckpoint(req.w)
		}
		if s.serveOnce() {
			s.pace()
			// In free-running mode the loop never blocks while cells are
			// in flight; yield so connection readers get CPU every pass
			// rather than every preemption quantum. On GOMAXPROCS=1 the
			// difference is a ~10ms reader convoy that overflows ingress
			// rings under load.
			runtime.Gosched()
			continue
		}
		// Idle: engine quiescent, no ready cells, no pending ingest.
		if s.draining.Load() {
			if s.drainSweepClean() {
				s.drainedOnce.Do(func() { close(s.drainedCh) })
				return
			}
			// A straggling admission is mid-flight; re-check shortly.
			s.parkTimeout(100 * time.Microsecond)
			continue
		}
		s.park()
	}
}

// serveOnce runs one serving-loop pass and reports whether any slot
// was ticked. It is the loop body factored out so tests can drive the
// loop synchronously (and pin its zero-allocation claim); it must not
// run concurrently with a live loop goroutine.
//
//pktbuf:hotpath
func (s *Server) serveOnce() bool {
	s.drainActivations()
	n := 0
	if len(s.active) > 0 || s.readyCount > 0 {
		n = s.buildBatch()
	}
	if n == 0 {
		if s.buf.Quiescent() {
			return false
		}
		// No fresh ingest but cells are still in flight: tick idle
		// slots to advance the request→delivery pipeline.
		n = len(s.inBatch)
		for i := range s.inBatch {
			s.inBatch[i] = pktbuf.Input{Arrival: pktbuf.None, Request: pktbuf.None}
		}
	}
	start := time.Now()
	s.tickBatch(n)
	s.observe(time.Since(start), n)
	return true
}

// drainActivations moves pending connection-activation tokens onto
// the active list and finishes pending session resumes. Token
// uniqueness (conn.armed) guarantees a connection appears at most
// once.
func (s *Server) drainActivations() {
	for {
		select {
		case c := <-s.resumeCh:
			s.attachResume(c)
		case c := <-s.ingestCh:
			s.active = append(s.active, c)
		default:
			return
		}
	}
}

// buildBatch fills inBatch with up to Batch slots. For each slot the
// request is chosen first (round-robin over queues with ready cells,
// one cell per turn) and the arrival second (round-robin over active
// connections), matching engine semantics: a cell arriving at slot i
// is requestable from slot i+1, so a slot's request must not see its
// own arrival.
func (s *Server) buildBatch() int {
	n := 0
	for n < len(s.inBatch) {
		req := s.popReady()
		arr := s.popArrival()
		if req < 0 && arr < 0 {
			break
		}
		s.inBatch[n] = pktbuf.Input{Arrival: pktbuf.Queue(arr), Request: pktbuf.Queue(req)}
		if arr >= 0 {
			s.noteReady(int32(arr))
		}
		n++
	}
	return n
}

// popReady returns the next queue to request from, or -1. Queues wait
// in an intrusive FIFO ring (rrRing/inRing); a queue granting a cell
// re-enters at the tail, which yields per-queue round-robin service.
// Entries whose count already hit zero are lazily skipped.
func (s *Server) popReady() int32 {
	for s.rrLen > 0 {
		q := s.rrRing[s.rrHead]
		s.rrHead++
		if s.rrHead == len(s.rrRing) {
			s.rrHead = 0
		}
		s.rrLen--
		s.inRing[q] = false
		if s.ready[q] == 0 {
			continue
		}
		s.ready[q]--
		s.readyCount--
		if s.ready[q] > 0 {
			s.rrPush(q)
		}
		return q
	}
	return -1
}

// rrPush appends q to the ready ring unless already present.
func (s *Server) rrPush(q int32) {
	if s.inRing[q] {
		return
	}
	s.inRing[q] = true
	tail := s.rrHead + s.rrLen
	if tail >= len(s.rrRing) {
		tail -= len(s.rrRing)
	}
	s.rrRing[tail] = q
	s.rrLen++
}

// noteReady records one arrived cell as requestable.
func (s *Server) noteReady(q int32) {
	s.ready[q]++
	s.readyCount++
	s.rrPush(q)
}

// popArrival pops the next ingress cell, round-robin across active
// connections, or returns -1. A connection whose ring is empty is
// deactivated with a disarm/recheck handshake so a concurrent push is
// never stranded.
func (s *Server) popArrival() int32 {
	for tries := len(s.active); tries > 0; tries-- {
		if s.actCur >= len(s.active) {
			s.actCur = 0
		}
		c := s.active[s.actCur]
		if !c.gone.Load() {
			if q, ok := c.ingress.pop(); ok {
				s.actCur++
				return q
			}
		}
		// Empty — or the connection died with a resumable session, in
		// which case its unprocessed cells are abandoned here (the
		// client resubmits them; ingesting them now would duplicate).
		last := len(s.active) - 1
		s.active[s.actCur] = s.active[last]
		s.active[last] = nil
		s.active = s.active[:last]
		c.armed.Store(false)
		if !c.gone.Load() && !c.ingress.empty() && c.armed.CompareAndSwap(false, true) {
			// A push landed between pop and disarm: keep the connection
			// active (it holds the token again, so no channel round-trip).
			s.active = append(s.active, c)
		}
	}
	return -1
}

// tickBatch feeds inBatch[:n] to the engine, routes deliveries, and
// wakes writers whose connections received cells. Engine errors are
// absorbed per slot: the offending slot still completes (TickBatch
// contract), bookkeeping is unwound, and the rest of the batch
// proceeds.
func (s *Server) tickBatch(n int) {
	k := 0
	for k < n {
		m, err := s.buf.TickBatch(s.inBatch[k:n], s.outBatch[k:n])
		for i := k; i < k+m; i++ {
			if s.outBatch[i].Ok {
				s.route(s.outBatch[i].Delivered.Queue)
			}
		}
		k += m
		if err == nil {
			break
		}
		s.noteTickErr(s.inBatch[k-1], err)
		if m == 0 {
			break
		}
	}
	if s.cfg.Record {
		for i := 0; i < k; i++ {
			s.rec.Events = append(s.rec.Events, trace.Event{
				Arrival: s.inBatch[i].Arrival,
				Request: s.inBatch[i].Request,
			})
		}
	}
	for _, c := range s.dirty {
		c.dirtyMark = false
		c.wakeWriter()
	}
	s.dirty = s.dirty[:0]
	s.publish()
}

// route pushes a delivered cell onto its owner's egress ring. The
// credit window guarantees space. A nil owner on a Resumable server
// means the owning connection died with its session alive: the
// delivery parks (a pure count — cells are (queue, seq) pairs) and is
// replayed into the session's next connection at attach.
func (s *Server) route(q pktbuf.Queue) {
	c := s.owner[q].Load()
	if c == nil {
		if s.cfg.Resumable {
			s.parked[q]++
		}
		return
	}
	if !c.egress.push(int32(q)) {
		s.cfg.ErrorLog.Printf("pktbufd: egress ring overflow on queue %d (window accounting bug)", q)
		return
	}
	if !c.dirtyMark {
		c.dirtyMark = true
		s.dirty = append(s.dirty, c)
	}
}

// noteTickErr records an engine error for one slot. A bounded-DRAM
// drop (ErrBufferFull) unwinds the dropped arrival's ready accounting
// and refunds the connection's window credit; everything else is just
// counted.
func (s *Server) noteTickErr(in pktbuf.Input, err error) {
	if errors.Is(err, pktbuf.ErrBufferFull) && in.Arrival != pktbuf.None {
		q := in.Arrival
		if s.ready[q] > 0 {
			s.ready[q]--
			s.readyCount--
		}
		if c := s.owner[q].Load(); c != nil {
			c.window.Add(1)
		}
	}
	s.statsMu.Lock()
	s.tickErrs++
	s.lastTickErr = err.Error()
	s.statsMu.Unlock()
}

// publish refreshes the published stats snapshot.
func (s *Server) publish() {
	st := s.buf.Stats()
	now := s.buf.Now()
	s.statsMu.Lock()
	s.pub = st
	s.pubSlots = now
	s.statsMu.Unlock()
}

// observe records one batch in the serving-loop latency histogram.
func (s *Server) observe(d time.Duration, slots int) {
	s.statsMu.Lock()
	s.hist.observe(d.Seconds())
	s.hist.slots += uint64(slots)
	s.statsMu.Unlock()
}

// pace sleeps until the wall-clock deadline of the engine's current
// slot (paced mode only).
func (s *Server) pace() {
	if s.cfg.TickEvery <= 0 {
		return
	}
	target := s.epoch.Add(time.Duration(s.buf.Now()) * s.cfg.TickEvery)
	if d := time.Until(target); d > 0 {
		time.Sleep(d)
	}
}

// park blocks until ingest or a control poke arrives, then (paced
// mode) crosses the idle wall-clock gap with FastForward — the
// whole point of the quiescence machinery: an idle daemon neither
// ticks nor spins.
func (s *Server) park() {
	select {
	case c := <-s.ingestCh:
		s.active = append(s.active, c)
	case <-s.wakeCh:
	}
	s.fastForwardIdle()
}

// parkTimeout is park with an upper bound on the wait.
func (s *Server) parkTimeout(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case c := <-s.ingestCh:
		s.active = append(s.active, c)
	case <-s.wakeCh:
	case <-t.C:
	}
}

// fastForwardIdle advances the quiescent engine over idle wall time
// in one jump (paced mode).
func (s *Server) fastForwardIdle() {
	if s.cfg.TickEvery <= 0 {
		return
	}
	want := uint64(time.Since(s.epoch) / s.cfg.TickEvery)
	now := s.buf.Now()
	if want <= now {
		return
	}
	n := s.buf.FastForward(want - now)
	if n > 0 {
		if s.cfg.Record {
			for i := uint64(0); i < n; i++ {
				s.rec.Events = append(s.rec.Events, trace.Event{Arrival: pktbuf.None, Request: pktbuf.None})
			}
		}
		s.publish()
	}
}

// drainSweepClean proves no admitted cell remains outside the engine:
// no pending activation token, every ingress ring empty, no admission
// mid-flight. Combined with the quiescent engine and empty ready
// state that gated the call, the server is fully drained. Memory
// ordering: the draining flag is set before the sweep reads, so any
// admission the sweep misses starts after the sweep and observes the
// flag — and is rejected.
func (s *Server) drainSweepClean() bool {
	select {
	case c := <-s.ingestCh:
		s.active = append(s.active, c)
		return false
	default:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		if c.admitting.Load() != 0 || !c.ingress.empty() {
			return false
		}
	}
	return true
}
