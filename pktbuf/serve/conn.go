package serve

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/pktbuf"
	"repro/pktbuf/serve/wire"
	"repro/pktbuf/trace"
)

// conn is one data-plane connection: a reader goroutine that decodes
// Submit frames and admits cells into the ingress ring, and a writer
// goroutine that drains the egress ring into Deliver frames. The two
// goroutines and the serving loop share only the rings and atomics —
// admission never takes a lock on the serving path.
type conn struct {
	s  *Server
	nc net.Conn

	// queues are the VOQ ids this connection owns (assigned at
	// handshake, released at teardown).
	queues []int32

	ingress *spscRing // reader → serving loop
	egress  *spscRing // serving loop → writer

	// window counts remaining in-system credit: the reader decrements
	// per admitted cell, the writer increments per delivered cell. The
	// egress ring holds windowCap cells, so when credit is respected a
	// delivery push can never fail.
	window    atomic.Int64
	windowCap int

	// admitting counts admissions in flight (between the first credit
	// check and the ring push), letting the serving loop's drain sweep
	// prove no cell can appear after it looks.
	admitting atomic.Int32

	// armed is true while an activation token for this connection is
	// either queued on Server.ingestCh or held by the serving loop's
	// active list; it guarantees at most one token in flight.
	armed atomic.Bool

	// closing means no further Submits will be admitted (client Bye,
	// read failure, or server shutdown); the writer exits once the
	// connection's cells have drained.
	closing atomic.Bool

	// sawBye records a clean client Bye, distinguishing an orderly
	// close (session released) from a connection failure (session
	// retained for resumption on a Resumable server).
	sawBye atomic.Bool

	// gone tells the serving loop to stop ingesting from this
	// connection: it died (or was superseded) with a live session, so
	// its unprocessed ingress cells will surface as client resubmits on
	// the session's next connection rather than entering the engine
	// twice.
	gone atomic.Bool

	// sess is the durable session this connection serves (nil on a
	// non-Resumable server). Stored by the reader goroutine during the
	// handshake; the writer goroutine reads it when deciding how to
	// tear down.
	sess atomic.Pointer[session]
	// resumeAcks holds the resuming client's per-queue received counts
	// (aligned with sess.queues) until the serving loop attaches.
	resumeAcks []uint64

	// ctrl queues control frames (Welcome/Flows/Reject/Drain) for the
	// writer goroutine, which owns the socket.
	ctrlMu sync.Mutex
	ctrl   []ctrlMsg

	// wakeW signals the writer that deliveries or control frames are
	// pending.
	wakeW chan struct{}

	// dirtyMark is serving-loop private: the connection is already on
	// the loop's dirty list for the current batch.
	dirtyMark bool
}

type ctrlMsg struct {
	t       wire.Type
	payload []byte
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		s:       s,
		nc:      nc,
		ingress: newSpscRing(s.cfg.IngressRing),
		egress:  newSpscRing(s.cfg.Window),
		wakeW:   make(chan struct{}, 1),
	}
}

// inSystem returns the connection's admitted-but-undelivered cell
// count (advisory under concurrency).
func (c *conn) inSystem() int64 { return int64(c.windowCap) - c.window.Load() }

// sendCtrl queues a control frame for the writer.
func (c *conn) sendCtrl(t wire.Type, payload []byte) {
	c.ctrlMu.Lock()
	c.ctrl = append(c.ctrl, ctrlMsg{t: t, payload: payload})
	c.ctrlMu.Unlock()
	c.wakeWriter()
}

func (c *conn) wakeWriter() {
	select {
	case c.wakeW <- struct{}{}:
	default:
	}
}

// admit accepts one cell for VOQ q, or reports the reject reason. It
// is the reader-side admission path: typed, bounded, lock-free.
func (c *conn) admit(q int32) (rejectReason, bool) {
	c.admitting.Add(1)
	defer c.admitting.Add(-1)
	if c.s.draining.Load() || c.closing.Load() {
		return rejDraining, false
	}
	if q < 0 || int(q) >= len(c.s.owner) || c.s.owner[q].Load() != c {
		return rejBadFlow, false
	}
	if c.window.Add(-1) < 0 {
		c.window.Add(1)
		return rejWindowFull, false
	}
	if !c.ingress.push(q) {
		c.window.Add(1)
		return rejIngressFull, false
	}
	c.s.admitted.Add(1)
	if c.armed.CompareAndSwap(false, true) {
		c.s.ingestCh <- c
		c.s.wakeLoop()
	}
	return 0, true
}

// retryHint estimates how many serving-loop slots should free the
// rejected resource: the connection's in-system backlog, floored at
// one batch.
func (c *conn) retryHint() uint64 {
	in := c.inSystem()
	if b := int64(c.s.cfg.Batch); in < b {
		in = b
	}
	return uint64(in)
}

// readLoop handshakes and then admits Submit frames until the client
// says Bye or the connection fails.
func (c *conn) readLoop() {
	defer c.s.connWG.Done()
	defer func() {
		// Whatever the exit reason: no more admissions, and the writer
		// finishes draining and tears down.
		c.closing.Store(true)
		c.wakeWriter()
	}()
	r := wire.NewReader(c.nc)
	ka := c.s.cfg.KeepAlive
	c.armDeadline(ka)
	if !c.handshake(r) {
		return
	}
	for {
		c.armDeadline(ka)
		t, payload, err := r.Next()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				c.s.cfg.ErrorLog.Printf("pktbufd: read %s: %v", c.nc.RemoteAddr(), ErrPeerTimeout)
			} else if err != io.EOF && !c.s.closed.Load() && !errors.Is(err, net.ErrClosed) {
				c.s.cfg.ErrorLog.Printf("pktbufd: read %s: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		switch t {
		case wire.TSubmit:
			c.handleSubmit(payload)
		case wire.TPing:
			c.sendCtrl(wire.TPong, nil)
		case wire.TPong:
			// Liveness proven; the deadline was re-armed above.
		case wire.TBye:
			c.sawBye.Store(true)
			return
		default:
			c.s.cfg.ErrorLog.Printf("pktbufd: %s sent unexpected %v frame", c.nc.RemoteAddr(), t)
			return
		}
	}
}

// armDeadline extends the read deadline to two keepalive intervals
// out; a peer that stays silent longer — not even answering Pings —
// is reaped (ErrPeerTimeout).
func (c *conn) armDeadline(ka time.Duration) {
	if ka > 0 {
		c.nc.SetReadDeadline(time.Now().Add(2 * ka))
	}
}

// handshake consumes Hello, allocates flows, and queues
// Welcome+Flows. On failure it queues a Reject and reports false.
func (c *conn) handshake(r *wire.Reader) bool {
	t, payload, err := r.Next()
	if err != nil {
		return false
	}
	if t != wire.THello {
		c.s.cfg.ErrorLog.Printf("pktbufd: %s opened with %v, want Hello", c.nc.RemoteAddr(), t)
		return false
	}
	hello, err := wire.ParseHello(payload)
	if err != nil {
		c.s.cfg.ErrorLog.Printf("pktbufd: %s bad Hello: %v", c.nc.RemoteAddr(), err)
		return false
	}
	if c.s.draining.Load() {
		rej := wire.Reject{Code: wire.CodeDraining}
		c.sendCtrl(wire.TReject, rej.AppendTo(nil))
		return false
	}
	if hello.Session != 0 {
		return c.resumeHandshake(r, hello)
	}
	qs := c.s.allocFlows(c, hello.Flows)
	if qs == nil {
		// Not enough free VOQs for the request.
		rej := wire.Reject{Code: wire.CodeBadFlow, Dropped: hello.Flows}
		c.sendCtrl(wire.TReject, rej.AppendTo(nil))
		return false
	}
	c.windowCap = c.s.cfg.Window
	c.window.Store(int64(c.windowCap))
	welcome := wire.Welcome{
		Flows:       len(qs),
		IngressRing: c.ingress.capacity(),
		Window:      c.windowCap,
	}
	if sess := c.sess.Load(); sess != nil {
		welcome.Session = sess.token
	}
	c.sendCtrl(wire.TWelcome, welcome.AppendTo(nil))
	flowQs := make([]pktbuf.Queue, len(qs))
	for i, q := range qs {
		flowQs[i] = pktbuf.Queue(q)
	}
	c.sendCtrl(wire.TFlows, encodeCellPayload(flowQs))
	return true
}

// resumeHandshake serves a Hello that names a session token: it reads
// the client's TAcks frame, reattaches the session, and hands the
// connection to the serving loop, which finishes the handshake
// (Welcome + TSeqs + redeliveries) at a point consistent with the
// engine counters.
func (c *conn) resumeHandshake(r *wire.Reader, hello wire.Hello) bool {
	t, payload, err := r.Next()
	if err != nil || t != wire.TAcks {
		c.s.cfg.ErrorLog.Printf("pktbufd: %s resume without Acks (got %v, err %v)", c.nc.RemoteAddr(), t, err)
		return false
	}
	acks := make(map[pktbuf.Queue]uint64)
	if err := wire.ParseSeqs(payload, func(q pktbuf.Queue, n uint64) error {
		acks[q] = n
		return nil
	}); err != nil {
		c.s.cfg.ErrorLog.Printf("pktbufd: %s bad Acks: %v", c.nc.RemoteAddr(), err)
		return false
	}
	sess := c.s.resumeSession(c, hello.Session)
	if sess == nil {
		rej := wire.Reject{Code: wire.CodeSessionUnknown}
		c.sendCtrl(wire.TReject, rej.AppendTo(nil))
		return false
	}
	c.resumeAcks = make([]uint64, len(sess.queues))
	known := 0
	for i, q := range sess.queues {
		if n, ok := acks[pktbuf.Queue(q)]; ok {
			c.resumeAcks[i] = n
			known++
		}
	}
	if known != len(acks) {
		// The client acked a queue this session does not own.
		rej := wire.Reject{Code: wire.CodeBadFlow}
		c.sendCtrl(wire.TReject, rej.AppendTo(nil))
		return false
	}
	c.windowCap = c.s.cfg.Window
	// No credit until the loop attaches and computes the session's
	// in-system charge; the client waits for Welcome before submitting
	// anyway.
	c.window.Store(0)
	c.s.resumeCh <- c
	c.s.wakeLoop()
	return true
}

// encodeCellPayload renders a one-shot Deliveries-side cell payload
// (handshake path only; steady-state framing goes through the writer
// goroutine's reused wire.Writer scratch).
func encodeCellPayload(qs []pktbuf.Queue) []byte {
	t := trace.Trace{Events: make([]trace.Event, len(qs))}
	for i, q := range qs {
		t.Events[i] = trace.Event{Arrival: pktbuf.None, Request: q}
	}
	var b bytes.Buffer
	if err := t.Write(&b); err != nil {
		return nil
	}
	return b.Bytes()
}

// handleSubmit admits the frame's cells as a prefix and queues one
// Reject for the remainder on the first failure.
func (c *conn) handleSubmit(payload []byte) {
	accepted, total := 0, 0
	reason := rejectReason(-1)
	err := wire.DecodeCells(payload, wire.Arrivals, func(q pktbuf.Queue) error {
		total++
		if reason >= 0 {
			return nil // already failing; just count the dropped tail
		}
		if r, ok := c.admit(int32(q)); !ok {
			reason = r
		} else {
			accepted++
		}
		return nil
	})
	if err != nil {
		c.s.cfg.ErrorLog.Printf("pktbufd: %s bad Submit: %v", c.nc.RemoteAddr(), err)
		c.closing.Store(true)
		c.wakeWriter()
		return
	}
	if reason >= 0 {
		c.s.rejects[reason].Add(uint64(total - accepted))
		rej := wire.Reject{
			Code:       rejectCode(reason),
			Accepted:   accepted,
			Dropped:    total - accepted,
			RetrySlots: c.retryHint(),
		}
		c.sendCtrl(wire.TReject, rej.AppendTo(nil))
	}
}

func rejectCode(r rejectReason) wire.Code {
	switch r {
	case rejIngressFull:
		return wire.CodeIngressFull
	case rejWindowFull:
		return wire.CodeWindowFull
	case rejDraining:
		return wire.CodeDraining
	}
	return wire.CodeBadFlow
}

// writeLoop owns the socket's write side: control frames first, then
// egress-ring deliveries, then — once the connection is closing and
// empty — a final Bye. On a write failure it keeps consuming the
// egress ring (restoring window credit) so the serving loop is never
// wedged by a dead client — unless the session is resumable, in which
// case it exits immediately and leaves the cells in the engine for
// the session's next connection.
func (c *conn) writeLoop() {
	defer c.s.connWG.Done()
	defer c.teardown()
	w := wire.NewWriter(c.nc)
	cells := make([]pktbuf.Queue, 0, 256)
	failed := false
	var ctrl []ctrlMsg
	ka := c.s.cfg.KeepAlive
	var pingT *time.Timer
	if ka > 0 {
		pingT = time.NewTimer(ka)
		defer pingT.Stop()
	}
	ping := func() {
		if failed {
			return
		}
		if ka > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(2 * ka))
		}
		if w.WriteFrame(wire.TPing, nil) != nil || w.Flush() != nil {
			failed = true
		}
	}
	for {
		progress := false
		// Control frames.
		c.ctrlMu.Lock()
		ctrl = append(ctrl[:0], c.ctrl...)
		c.ctrl = c.ctrl[:0]
		c.ctrlMu.Unlock()
		for _, m := range ctrl {
			progress = true
			if failed {
				continue
			}
			if err := w.WriteFrame(m.t, m.payload); err != nil {
				failed = true
			}
		}
		// Deliveries.
		for {
			cells = cells[:0]
			for len(cells) < cap(cells) {
				q, ok := c.egress.pop()
				if !ok {
					break
				}
				cells = append(cells, pktbuf.Queue(q))
			}
			if len(cells) == 0 {
				break
			}
			progress = true
			if !failed {
				if err := w.WriteCells(wire.TDeliver, wire.Deliveries, cells); err != nil {
					failed = true
				}
			}
			// Credit returns whether or not the client heard about it.
			c.window.Add(int64(len(cells)))
		}
		if progress && !failed {
			if ka > 0 {
				c.nc.SetWriteDeadline(time.Now().Add(2 * ka))
			}
			if err := w.Flush(); err != nil {
				failed = true
			}
		}
		if c.s.closed.Load() {
			return
		}
		if c.resumableExit(failed) {
			// The connection died with a live session: leave its cells in
			// the engine (deliveries will park) and detach right away
			// instead of draining into a dead socket.
			return
		}
		if c.closing.Load() && c.inSystem() == 0 && c.ingress.empty() && c.admitting.Load() == 0 {
			if !failed {
				if w.WriteFrame(wire.TBye, nil) == nil {
					w.Flush()
				}
			}
			return
		}
		if !progress {
			if pingT == nil {
				<-c.wakeW
			} else {
				select {
				case <-c.wakeW:
				case <-pingT.C:
					ping()
					pingT.Reset(ka)
				}
			}
		} else if pingT != nil {
			// A busy connection still probes on schedule: the peer may
			// have nothing to send back but must keep answering Pings.
			select {
			case <-pingT.C:
				ping()
				pingT.Reset(ka)
			default:
			}
		}
	}
}

// resumableExit reports whether the writer should abandon the
// connection with its session intact: the peer is gone (write failure,
// read failure without Bye, or superseded by a resuming connection)
// and the server retains sessions.
func (c *conn) resumableExit(failed bool) bool {
	if c.sess.Load() == nil || c.sawBye.Load() || c.s.draining.Load() {
		return false
	}
	return failed || c.gone.Load() || c.closing.Load()
}

// teardown ends the writer's ownership of the connection: a clean
// close releases the session and its flows; a failure on a Resumable
// server detaches, keeping the session alive for resumption.
func (c *conn) teardown() {
	if c.resumableExit(true) {
		c.gone.Store(true)
		c.s.detachConn(c)
		return
	}
	c.s.releaseConn(c)
}
