package serve_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/pktbuf"
	"repro/pktbuf/serve"
)

// crashHarness is a resumable server living behind a fault-injection
// network, restartable from checkpoints, with a stable dialer that
// always points at the current incarnation.
type crashHarness struct {
	t   *testing.T
	fn  *faultnet.Network
	cfg serve.Config

	addr     atomic.Value // string
	lastConn atomic.Pointer[faultnet.Conn]

	srv *serve.Server
}

func newCrashHarness(t *testing.T, cfg serve.Config) *crashHarness {
	t.Helper()
	cfg.Resumable = true
	if cfg.ErrorLog == nil {
		// Crash tests tear down connections by design; keep the reaping
		// noise out of the test log.
		cfg.ErrorLog = log.New(io.Discard, "", 0)
	}
	h := &crashHarness{t: t, fn: faultnet.New(), cfg: cfg}
	h.start(nil)
	t.Cleanup(func() {
		h.fn.CutAll()
		h.srv.Close()
	})
	return h
}

// start boots a server incarnation — fresh, or restored from a
// checkpoint — and points the harness dialer at it.
func (h *crashHarness) start(ckpt []byte) {
	h.t.Helper()
	var srv *serve.Server
	var err error
	if ckpt == nil {
		srv, err = serve.NewServer(h.cfg)
	} else {
		srv, err = serve.RestoreServer(bytes.NewReader(ckpt), h.cfg)
	}
	if err != nil {
		h.t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.t.Fatal(err)
	}
	h.srv = srv
	h.addr.Store(lis.Addr().String())
	go srv.Serve(h.fn.Listen(lis))
}

// crash checkpoints the current incarnation (unless ckpt is false),
// kills it abruptly — every connection cut, no drain — and boots the
// successor.
func (h *crashHarness) crash(ckpt bool) {
	h.t.Helper()
	var buf bytes.Buffer
	if ckpt {
		if err := h.srv.Checkpoint(&buf); err != nil {
			h.t.Fatalf("Checkpoint: %v", err)
		}
	}
	h.fn.CutAll()
	h.srv.Close()
	if ckpt {
		h.start(buf.Bytes())
	} else {
		h.start(nil)
	}
}

func (h *crashHarness) dialer() func() (net.Conn, error) {
	return func() (net.Conn, error) {
		nc, err := h.fn.Dial(func() (net.Conn, error) {
			return net.Dial("tcp", h.addr.Load().(string))
		})
		if err == nil {
			h.lastConn.Store(nc.(*faultnet.Conn))
		}
		return nc, err
	}
}

func (h *crashHarness) dial(flows int, retry serve.Retry, keepAlive time.Duration) *serve.Client {
	h.t.Helper()
	c, err := serve.DialWith(serve.DialConfig{
		Flows:     flows,
		KeepAlive: keepAlive,
		Retry:     retry,
		Dialer:    h.dialer(),
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(func() { c.Close() })
	return c
}

// watchOrder installs an OnDeliver hook asserting strictly sequential
// per-queue delivery — the exactly-once audit's ordering half.
func watchOrder(t *testing.T, c *serve.Client) {
	lastSeq := make(map[pktbuf.Queue]uint64)
	c.OnDeliver = func(cell pktbuf.Cell) {
		if want := lastSeq[cell.Queue]; cell.Seq != want {
			t.Errorf("queue %d delivered seq %d, want %d", cell.Queue, cell.Seq, want)
		}
		lastSeq[cell.Queue] = cell.Seq + 1
	}
}

// submitSpread submits n cells round-robin over the client's flows,
// recording them in the test-side per-queue ledger.
func submitSpread(t *testing.T, c *serve.Client, n int, ledger map[pktbuf.Queue]uint64) {
	t.Helper()
	flows := c.Flows()
	burst := make([]pktbuf.Queue, 0, 10)
	for i := 0; i < n; i++ {
		q := flows[i%len(flows)]
		burst = append(burst, q)
		ledger[q]++
		if len(burst) == cap(burst) {
			if err := c.Submit(burst); err != nil {
				t.Fatalf("Submit: %v", err)
			}
			burst = burst[:0]
		}
	}
	if len(burst) > 0 {
		if err := c.Submit(burst); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
}

// auditExactlyOnce checks the client ledger against the test ledger:
// every submitted cell delivered exactly once, nothing in flight.
func auditExactlyOnce(t *testing.T, c *serve.Client, ledger map[pktbuf.Queue]uint64) {
	t.Helper()
	var total uint64
	for q, want := range ledger {
		total += want
		if got := c.Received(q); got != want {
			t.Errorf("queue %d received %d cells, want %d", q, got, want)
		}
	}
	st := c.Stats()
	if st.Submitted != total || st.Delivered != total || st.InFlight != 0 || st.Rejected != 0 {
		t.Errorf("client stats = %+v, want %d submitted and delivered, none in flight or rejected", st, total)
	}
}

// TestCheckpointRestoreResumeExactlyOnce is the crash-recovery
// contract end to end: a server checkpointed mid-flight is killed
// without warning and restored from the (by then stale) checkpoint;
// the client rides through on its retry policy and the session-resume
// reconciliation, and every cell — pre-checkpoint, in-flight at the
// checkpoint, post-checkpoint, and post-crash — is delivered exactly
// once, in order.
func TestCheckpointRestoreResumeExactlyOnce(t *testing.T) {
	h := newCrashHarness(t, serve.Config{Buffer: bufCfg(8)})
	c := h.dial(4, serve.Retry{Attempts: 200, Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Seed: 1}, 0)
	watchOrder(t, c)
	ledger := make(map[pktbuf.Queue]uint64)

	// Phase 1: a fully delivered prefix.
	submitSpread(t, c, 200, ledger)
	waitFor(t, 10*time.Second, "phase 1 deliveries", func() bool {
		return c.Stats().Delivered == 200
	})
	// Phase 2: cells in flight while the checkpoint is cut — these are
	// restored inside the engine.
	submitSpread(t, c, 120, ledger)
	var ckpt bytes.Buffer
	if err := h.srv.Checkpoint(&ckpt); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Phase 3: traffic after the checkpoint, so the restored state is
	// stale: deliveries the client received but the checkpoint never
	// saw (redelivered, then discarded by the dedup counters) and
	// submissions the restored engine never saw (resubmitted).
	submitSpread(t, c, 80, ledger)
	waitFor(t, 10*time.Second, "post-checkpoint deliveries", func() bool {
		return c.Stats().Delivered >= 250
	})

	// Crash: cut every connection, discard the live server, restore
	// from the stale checkpoint.
	h.fn.CutAll()
	h.srv.Close()
	h.start(ckpt.Bytes())

	// Phase 4: the session resumes transparently and traffic continues.
	submitSpread(t, c, 100, ledger)
	waitFor(t, 20*time.Second, "all deliveries after resume", func() bool {
		st := c.Stats()
		return st.Delivered == 500 && st.InFlight == 0
	})
	auditExactlyOnce(t, c, ledger)
	if st := c.Stats(); st.Resumes < 1 {
		t.Fatalf("client stats = %+v, want at least one resume", st)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("client error after resume: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Bye(ctx); err != nil {
		t.Fatalf("Bye: %v", err)
	}
	if err := h.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestChaosCrashRestartSoak kills and restores the server repeatedly
// under continuous traffic — alternating crashes with a frame torn
// mid-write (a process dying in flush) — and audits exactly-once
// delivery per queue at the end.
func TestChaosCrashRestartSoak(t *testing.T) {
	h := newCrashHarness(t, serve.Config{Buffer: bufCfg(8)})
	c := h.dial(4, serve.Retry{Attempts: 400, Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: 7}, 0)
	watchOrder(t, c)
	ledger := make(map[pktbuf.Queue]uint64)
	var ledgerMu sync.Mutex // submitSpread runs from two goroutines below

	submitted := 0
	submit := func(n int) {
		ledgerMu.Lock()
		defer ledgerMu.Unlock()
		submitSpread(t, c, n, ledger)
		submitted += n
	}

	const rounds = 5
	var torn sync.WaitGroup
	for round := 0; round < rounds; round++ {
		submit(150)
		goal := uint64(submitted - 60) // most of the backlog delivered
		waitFor(t, 20*time.Second, "round progress", func() bool {
			return c.Stats().Delivered >= goal
		})
		// More cells after the checkpoint inside crash(): half the
		// rounds also tear the client's current write mid-frame first,
		// so the server dies holding a truncated Submit.
		submit(40)
		if round%2 == 1 {
			if nc := h.lastConn.Load(); nc != nil {
				nc.PartialThenHang(8)
				torn.Add(1)
				go func() {
					defer torn.Done()
					submit(10) // blocks in the hung write until the cut
				}()
				time.Sleep(2 * time.Millisecond)
			}
		}
		h.crash(true)
	}
	torn.Wait()
	submit(50)

	ledgerMu.Lock()
	total := uint64(submitted)
	ledgerMu.Unlock()
	waitFor(t, 30*time.Second, "soak to quiesce", func() bool {
		st := c.Stats()
		return st.Delivered == total && st.InFlight == 0
	})
	auditExactlyOnce(t, c, ledger)
	if st := c.Stats(); st.Resumes < rounds {
		t.Fatalf("client stats = %+v, want at least %d resumes", st, rounds)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Bye(ctx); err != nil {
		t.Fatalf("Bye: %v", err)
	}
	if err := h.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestKeepAliveReapsSilentPeer pins the server half of the liveness
// contract: a peer that stops answering (not even Pongs) is reaped
// after two KeepAlive intervals instead of holding its flows forever.
func TestKeepAliveReapsSilentPeer(t *testing.T) {
	srv, addr := startServer(t, serve.Config{
		Buffer:    bufCfg(4),
		KeepAlive: 20 * time.Millisecond,
		ErrorLog:  log.New(io.Discard, "", 0),
	})
	s := rawDial(t, addr, 1)
	s.submit([]pktbuf.Queue{s.flows[0]})
	for s.delivered < 1 {
		s.pump()
	}
	// Go silent: no reads, no Pongs. The server must reap the
	// connection and free its flow.
	waitFor(t, 5*time.Second, "silent peer reaped", func() bool {
		adm := srv.Admission()
		return adm.Conns == 0 && adm.Flows == 0
	})
	// The reaped socket is closed server-side: draining it hits an
	// error after at most the Pings the server queued before reaping.
	s.nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < 64; i++ {
		if _, _, err := s.r.Next(); err != nil {
			return
		}
	}
	t.Fatal("reaped connection still delivering frames")
}

// TestClientKeepAliveDetectsSilentServer pins the client half: when
// the network black-holes traffic without closing sockets, the
// client's read deadline trips and surfaces a timeout instead of
// hanging forever.
func TestClientKeepAliveDetectsSilentServer(t *testing.T) {
	h := newCrashHarness(t, serve.Config{Buffer: bufCfg(4), KeepAlive: 15 * time.Millisecond})
	c := h.dial(1, serve.Retry{}, 15*time.Millisecond)
	ledger := make(map[pktbuf.Queue]uint64)
	submitSpread(t, c, 5, ledger)
	waitFor(t, 10*time.Second, "warm-up deliveries", func() bool {
		return c.Stats().Delivered == 5
	})
	h.fn.Blackhole(true)
	defer h.fn.Blackhole(false)
	waitFor(t, 5*time.Second, "client timeout", func() bool {
		return c.Err() != nil
	})
	var ne net.Error
	if err := c.Err(); !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("client error = %v, want a timeout", err)
	}
	select {
	case <-c.Done():
	case <-time.After(time.Second):
		t.Fatal("client Done not closed after timeout")
	}
}

// TestResumeSessionUnknownFailFast pins the fail-fast half of the
// reject taxonomy: resuming against a server that does not know the
// session (restarted without a checkpoint) aborts the retry loop with
// ErrSessionUnknown instead of burning the whole backoff budget.
func TestResumeSessionUnknownFailFast(t *testing.T) {
	h := newCrashHarness(t, serve.Config{Buffer: bufCfg(4)})
	c := h.dial(2, serve.Retry{Attempts: 100, Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 3}, 0)
	ledger := make(map[pktbuf.Queue]uint64)
	submitSpread(t, c, 10, ledger)
	waitFor(t, 10*time.Second, "warm-up deliveries", func() bool {
		return c.Stats().Delivered == 10
	})
	h.crash(false) // no checkpoint: the successor has no session table
	waitFor(t, 10*time.Second, "fail-fast error", func() bool {
		return c.Err() != nil
	})
	if err := c.Err(); !errors.Is(err, serve.ErrSessionUnknown) {
		t.Fatalf("client error = %v, want ErrSessionUnknown", err)
	}
	if st := c.Stats(); st.Resumes != 0 {
		t.Fatalf("client stats = %+v, want no successful resume", st)
	}
}

// TestReconnectExhaustsAttempts: with no server coming back, the
// retry loop gives up after its attempt budget and reports how hard
// it tried.
func TestReconnectExhaustsAttempts(t *testing.T) {
	h := newCrashHarness(t, serve.Config{Buffer: bufCfg(4)})
	c := h.dial(1, serve.Retry{Attempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond, Seed: 5}, 0)
	ledger := make(map[pktbuf.Queue]uint64)
	submitSpread(t, c, 4, ledger)
	h.fn.CutAll()
	h.srv.Close() // and no successor
	waitFor(t, 10*time.Second, "retry exhaustion", func() bool {
		return c.Err() != nil
	})
	if err := c.Err(); !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("client error = %v, want reconnect exhaustion after 3 attempts", err)
	}
}

// TestInitialDialRetry: DialWith's first connection is covered by the
// same backoff policy as reconnects.
func TestInitialDialRetry(t *testing.T) {
	srv, addr := startServer(t, serve.Config{Buffer: bufCfg(4)})
	_ = srv
	var calls atomic.Int32
	c, err := serve.DialWith(serve.DialConfig{
		Flows: 1,
		Retry: serve.Retry{Attempts: 10, Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 9},
		Dialer: func() (net.Conn, error) {
			if calls.Add(1) <= 3 {
				return nil, errors.New("synthetic dial failure")
			}
			return net.Dial("tcp", addr)
		},
	})
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	defer c.Close()
	if got := calls.Load(); got != 4 {
		t.Fatalf("dialer called %d times, want 4", got)
	}
	if err := c.Submit([]pktbuf.Queue{c.Flows()[0]}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "delivery", func() bool { return c.Stats().Delivered == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Bye(ctx); err != nil {
		t.Fatalf("Bye: %v", err)
	}
}

// TestShutdownUnderChurnRace drives a resumable, keepalive-enabled
// server with submitting clients and connection churn, then shuts
// down gracefully mid-flight. The assertions are the drain contract
// (no deadlock, Shutdown returns nil) — under -race it also proves
// the session machinery clean under concurrency.
func TestShutdownUnderChurnRace(t *testing.T) {
	h := newCrashHarness(t, serve.Config{Buffer: bufCfg(32), KeepAlive: 20 * time.Millisecond})
	var wg sync.WaitGroup
	retry := serve.Retry{Attempts: 5, Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 11}
	for i := 0; i < 3; i++ {
		c := h.dial(4, retry, 20*time.Millisecond)
		wg.Add(1)
		go func(c *serve.Client) {
			defer wg.Done()
			flows := c.Flows()
			for i := 0; ; i++ {
				if err := c.Submit([]pktbuf.Queue{flows[i%len(flows)]}); err != nil {
					return // draining or closed — both fine
				}
			}
		}(c)
	}
	// Churn: keep dialing and dropping fresh sessions during shutdown.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c, err := serve.DialWith(serve.DialConfig{Flows: 1, Dialer: h.dialer()})
			if err != nil {
				return // listener closed: shutdown has begun
			}
			c.Submit([]pktbuf.Queue{c.Flows()[0]})
			c.Close()
		}
	}()
	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
}
