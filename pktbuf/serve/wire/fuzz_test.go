package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/pktbuf"
)

// FuzzFrameRoundTrip drives the frame codec with arbitrary type bytes
// and payloads: every encodable frame must decode back to exactly the
// bytes written, an oversized length prefix must be rejected with
// ErrTooLarge before any payload is buffered, and any truncation of a
// valid frame must surface as io.ErrUnexpectedEOF — never as a clean
// io.EOF, which is reserved for exact frame boundaries.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(THello), []byte("flows=4"), 0)
	f.Add(uint8(TSubmit), []byte{}, 0)
	f.Add(uint8(TDeliver), []byte("a3\nr7\n"), 3)
	f.Add(uint8(0xff), bytes.Repeat([]byte{0}, 4096), 1)
	f.Fuzz(func(t *testing.T, typ uint8, payload []byte, cut int) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteFrame(Type(typ), payload); err != nil {
			if len(payload) > MaxPayload && errors.Is(err, ErrTooLarge) {
				return // correctly refused to encode
			}
			t.Fatalf("WriteFrame(%d, %d bytes): %v", typ, len(payload), err)
		}
		if len(payload) > MaxPayload {
			t.Fatalf("WriteFrame accepted %d-byte payload over MaxPayload", len(payload))
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		frame := buf.Bytes()

		// Round trip: the decoder must return the same type and payload,
		// then a clean io.EOF at the frame boundary.
		r := NewReader(bytes.NewReader(frame))
		gotType, gotPayload, err := r.Next()
		if err != nil {
			t.Fatalf("Next on a complete frame: %v", err)
		}
		if gotType != Type(typ) || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip: got (%d, %d bytes), want (%d, %d bytes)",
				gotType, len(gotPayload), typ, len(payload))
		}
		if _, _, err := r.Next(); err != io.EOF {
			t.Fatalf("after the last frame: got %v, want io.EOF verbatim", err)
		}

		// Truncation: dropping bytes from a non-empty frame must be
		// io.ErrUnexpectedEOF, except cutting to zero bytes, which is a
		// clean boundary.
		if cut < 0 {
			cut = -cut
		}
		keep := cut % len(frame) // frame is at least headerLen bytes
		r = NewReader(bytes.NewReader(frame[:keep]))
		_, _, err = r.Next()
		switch {
		case keep == 0:
			if err != io.EOF {
				t.Fatalf("empty stream: got %v, want io.EOF", err)
			}
		default:
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("frame truncated to %d/%d bytes: got %v, want io.ErrUnexpectedEOF",
					keep, len(frame), err)
			}
		}

		// Oversized: a header declaring more than MaxPayload must be
		// rejected from the length prefix alone.
		var hdr [headerLen]byte
		hdr[0] = typ
		binary.BigEndian.PutUint32(hdr[1:], uint32(MaxPayload+1+len(payload)))
		r = NewReader(bytes.NewReader(hdr[:]))
		if _, _, err := r.Next(); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("oversized length prefix: got %v, want ErrTooLarge", err)
		}
	})
}

// FuzzDecodeCells feeds arbitrary payloads through the cell decoder:
// it must never panic, and whatever it accepts must re-encode to a
// stream that decodes to the same queue sequence.
func FuzzDecodeCells(f *testing.F) {
	f.Add([]byte("a3\na5\n"), true)
	f.Add([]byte("r0\nr1\nr2\n"), false)
	f.Add([]byte(".\n"), true)
	f.Add([]byte("garbage"), false)
	f.Fuzz(func(t *testing.T, payload []byte, arrivals bool) {
		side := Deliveries
		if arrivals {
			side = Arrivals
		}
		var qs []pktbuf.Queue
		if err := DecodeCells(payload, side, func(q pktbuf.Queue) error {
			qs = append(qs, q)
			return nil
		}); err != nil {
			if !errors.Is(err, ErrFrame) {
				t.Fatalf("DecodeCells: non-ErrFrame error %v", err)
			}
			return
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		typ := TDeliver
		if arrivals {
			typ = TSubmit
		}
		if err := w.WriteCells(typ, side, qs); err != nil {
			t.Fatalf("WriteCells: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		_, p, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		var got []pktbuf.Queue
		if err := DecodeCells(p, side, func(q pktbuf.Queue) error {
			got = append(got, q)
			return nil
		}); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(got) != len(qs) {
			t.Fatalf("re-decode: %d cells, want %d", len(got), len(qs))
		}
		for i := range got {
			if got[i] != qs[i] {
				t.Fatalf("cell %d: got queue %d, want %d", i, got[i], qs[i])
			}
		}
	})
}
