package wire

import (
	"bytes"
	"errors"
	"testing"

	"repro/pktbuf"
)

// TestResumeFrameRoundTrip covers the session-resumption vocabulary:
// Hello/Welcome session fields and the TPing/TPong/TAcks/TSeqs frames.
func TestResumeFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)

	hello := Hello{Flows: 4, Session: 0xdeadbeefcafe}
	if err := w.WriteFrame(THello, hello.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	welcome := Welcome{Flows: 4, IngressRing: 64, Window: 128, Session: 0xdeadbeefcafe, Resumed: true}
	if err := w.WriteFrame(TWelcome, welcome.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	qs := []pktbuf.Queue{2, 5, 9}
	acks := []uint64{17, 0, 400}
	if err := w.WriteFrame(TAcks, AppendSeqs(nil, qs, acks)); err != nil {
		t.Fatal(err)
	}
	arrived := []uint64{20, 3, 401}
	delivered := []uint64{17, 1, 399}
	if err := w.WriteFrame(TSeqs, AppendSeqPairs(nil, qs, arrived, delivered)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(TPing, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(TPong, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	typ, p, err := r.Next()
	if err != nil || typ != THello {
		t.Fatalf("frame 1: %v %v", typ, err)
	}
	if h, err := ParseHello(p); err != nil || h != hello {
		t.Fatalf("ParseHello = %+v, %v; want %+v", h, err, hello)
	}
	typ, p, err = r.Next()
	if err != nil || typ != TWelcome {
		t.Fatalf("frame 2: %v %v", typ, err)
	}
	if wl, err := ParseWelcome(p); err != nil || wl != welcome {
		t.Fatalf("ParseWelcome = %+v, %v; want %+v", wl, err, welcome)
	}
	typ, p, err = r.Next()
	if err != nil || typ != TAcks {
		t.Fatalf("frame 3: %v %v", typ, err)
	}
	i := 0
	if err := ParseSeqs(p, func(q pktbuf.Queue, n uint64) error {
		if q != qs[i] || n != acks[i] {
			t.Fatalf("acks[%d] = (%d, %d), want (%d, %d)", i, q, n, qs[i], acks[i])
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(qs) {
		t.Fatalf("ParseSeqs yielded %d entries, want %d", i, len(qs))
	}
	typ, p, err = r.Next()
	if err != nil || typ != TSeqs {
		t.Fatalf("frame 4: %v %v", typ, err)
	}
	i = 0
	if err := ParseSeqPairs(p, func(q pktbuf.Queue, a, d uint64) error {
		if q != qs[i] || a != arrived[i] || d != delivered[i] {
			t.Fatalf("seqs[%d] = (%d, %d, %d), want (%d, %d, %d)",
				i, q, a, d, qs[i], arrived[i], delivered[i])
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(qs) {
		t.Fatalf("ParseSeqPairs yielded %d entries, want %d", i, len(qs))
	}
	for _, want := range []Type{TPing, TPong} {
		typ, p, err = r.Next()
		if err != nil || typ != want || len(p) != 0 {
			t.Fatalf("keepalive frame: %v %q %v, want %v", typ, p, err, want)
		}
	}
}

// TestFreshHelloOmitsSession pins wire compatibility: a session-less
// Hello and an un-resumed Welcome encode exactly as they did before
// resumption existed, so old and new endpoints interoperate.
func TestFreshHelloOmitsSession(t *testing.T) {
	if p := (Hello{Flows: 3}).AppendTo(nil); bytes.Contains(p, []byte("session")) {
		t.Fatalf("fresh Hello mentions session: %q", p)
	}
	if p := (Welcome{Flows: 3, IngressRing: 8, Window: 16}).AppendTo(nil); bytes.Contains(p, []byte("resumed")) {
		t.Fatalf("un-resumed Welcome mentions resumed: %q", p)
	}
}

func TestParseSeqErrors(t *testing.T) {
	if err := ParseSeqs([]byte("5=x"), func(pktbuf.Queue, uint64) error { return nil }); !errors.Is(err, ErrFrame) {
		t.Fatalf("bad count: %v, want ErrFrame", err)
	}
	if err := ParseSeqPairs([]byte("5=1"), func(pktbuf.Queue, uint64, uint64) error { return nil }); !errors.Is(err, ErrFrame) {
		t.Fatalf("pair without colon: %v, want ErrFrame", err)
	}
	if err := ParseSeqPairs([]byte("5=1:b"), func(pktbuf.Queue, uint64, uint64) error { return nil }); !errors.Is(err, ErrFrame) {
		t.Fatalf("bad delivered: %v, want ErrFrame", err)
	}
	sentinel := errors.New("stop")
	if err := ParseSeqPairs(AppendSeqPairs(nil, []pktbuf.Queue{1, 2}, []uint64{3, 4}, []uint64{1, 2}),
		func(pktbuf.Queue, uint64, uint64) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("callback error: %v, want sentinel", err)
	}
}
