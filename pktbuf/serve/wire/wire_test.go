package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/pktbuf"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)

	hello := Hello{Flows: 12}
	if err := w.WriteFrame(THello, hello.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	welcome := Welcome{Flows: 12, IngressRing: 256, Window: 4096}
	if err := w.WriteFrame(TWelcome, welcome.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	flows := []pktbuf.Queue{3, 7, 11}
	if err := w.WriteCells(TFlows, Deliveries, flows); err != nil {
		t.Fatal(err)
	}
	submit := []pktbuf.Queue{3, 3, 7, 11, 3}
	if err := w.WriteCells(TSubmit, Arrivals, submit); err != nil {
		t.Fatal(err)
	}
	rej := Reject{Code: CodeIngressFull, Accepted: 2, Dropped: 3, RetrySlots: 64}
	if err := w.WriteFrame(TReject, rej.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(TDrain, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(TBye, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	typ, p, err := r.Next()
	if err != nil || typ != THello {
		t.Fatalf("frame 1: %v %v", typ, err)
	}
	if h, err := ParseHello(p); err != nil || h != hello {
		t.Fatalf("ParseHello = %+v, %v", h, err)
	}
	typ, p, err = r.Next()
	if err != nil || typ != TWelcome {
		t.Fatalf("frame 2: %v %v", typ, err)
	}
	if wl, err := ParseWelcome(p); err != nil || wl != welcome {
		t.Fatalf("ParseWelcome = %+v, %v", wl, err)
	}
	typ, p, err = r.Next()
	if err != nil || typ != TFlows {
		t.Fatalf("frame 3: %v %v", typ, err)
	}
	var gotFlows []pktbuf.Queue
	if err := DecodeCells(p, Deliveries, func(q pktbuf.Queue) error {
		gotFlows = append(gotFlows, q)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(gotFlows) != len(flows) {
		t.Fatalf("flows = %v, want %v", gotFlows, flows)
	}
	for i := range flows {
		if gotFlows[i] != flows[i] {
			t.Fatalf("flows = %v, want %v", gotFlows, flows)
		}
	}
	typ, p, err = r.Next()
	if err != nil || typ != TSubmit {
		t.Fatalf("frame 4: %v %v", typ, err)
	}
	var gotSub []pktbuf.Queue
	if err := DecodeCells(p, Arrivals, func(q pktbuf.Queue) error {
		gotSub = append(gotSub, q)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(gotSub) != len(submit) {
		t.Fatalf("submit = %v, want %v", gotSub, submit)
	}
	typ, p, err = r.Next()
	if err != nil || typ != TReject {
		t.Fatalf("frame 5: %v %v", typ, err)
	}
	if got, err := ParseReject(p); err != nil || got != rej {
		t.Fatalf("ParseReject = %+v, %v", got, err)
	}
	for _, want := range []Type{TDrain, TBye} {
		typ, p, err = r.Next()
		if err != nil || typ != want || len(p) != 0 {
			t.Fatalf("trailer frame: %v %q %v, want %v", typ, p, err, want)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestDecodeCellsWrongSide(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteCells(TSubmit, Arrivals, []pktbuf.Queue{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	_, p, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeCells(p, Deliveries, func(pktbuf.Queue) error { return nil }); !errors.Is(err, ErrFrame) {
		t.Fatalf("wrong-side decode: %v, want ErrFrame", err)
	}
	// Mixed records ("a3 r7") are not cell frames either.
	if err := DecodeCells([]byte("a3 r7\n"), Arrivals, func(pktbuf.Queue) error { return nil }); !errors.Is(err, ErrFrame) {
		t.Fatalf("mixed-record decode: %v, want ErrFrame", err)
	}
	// Idle records are not cells.
	if err := DecodeCells([]byte(".\n"), Arrivals, func(pktbuf.Queue) error { return nil }); !errors.Is(err, ErrFrame) {
		t.Fatalf("idle-record decode: %v, want ErrFrame", err)
	}
}

func TestDecodeCellsCallbackError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteCells(TSubmit, Arrivals, []pktbuf.Queue{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	_, p, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	n := 0
	if err := DecodeCells(p, Arrivals, func(pktbuf.Queue) error {
		n++
		if n == 2 {
			return sentinel
		}
		return nil
	}); !errors.Is(err, sentinel) {
		t.Fatalf("callback error: %v, want sentinel", err)
	}
	if n != 2 {
		t.Fatalf("callback ran %d times, want 2", n)
	}
}

func TestOversizeFrames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(TSubmit, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize write: %v, want ErrTooLarge", err)
	}
	// A hostile header announcing an oversize payload is rejected
	// before any buffering.
	hdr := []byte{byte(TSubmit), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := NewReader(bytes.NewReader(hdr)).Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize read: %v, want ErrTooLarge", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteCells(TSubmit, Arrivals, []pktbuf.Queue{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{1, 3, len(whole) - 1} {
		if _, _, err := NewReader(bytes.NewReader(whole[:cut])).Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestParseControlErrors(t *testing.T) {
	if _, err := ParseHello([]byte("flows=0")); !errors.Is(err, ErrFrame) {
		t.Fatalf("flows=0: %v, want ErrFrame", err)
	}
	if _, err := ParseHello([]byte("garbage")); !errors.Is(err, ErrFrame) {
		t.Fatalf("garbage hello: %v, want ErrFrame", err)
	}
	if _, err := ParseReject([]byte("ok=1 dropped=2")); !errors.Is(err, ErrFrame) {
		t.Fatalf("codeless reject: %v, want ErrFrame", err)
	}
	if _, err := ParseWelcome([]byte("flows=abc")); !errors.Is(err, ErrFrame) {
		t.Fatalf("bad welcome value: %v, want ErrFrame", err)
	}
}

func TestWriterReuseNoGrowth(t *testing.T) {
	// Repeated WriteCells calls reuse the writer's encode scratch.
	var sink strings.Builder
	w := NewWriter(&sink)
	qs := []pktbuf.Queue{1, 2, 3, 4}
	for i := 0; i < 100; i++ {
		if err := w.WriteCells(TDeliver, Deliveries, qs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(strings.NewReader(sink.String()))
	for i := 0; i < 100; i++ {
		typ, p, err := r.Next()
		if err != nil || typ != TDeliver {
			t.Fatalf("frame %d: %v %v", i, typ, err)
		}
		n := 0
		if err := DecodeCells(p, Deliveries, func(q pktbuf.Queue) error {
			if q != qs[n] {
				t.Fatalf("frame %d cell %d = %d, want %d", i, n, q, qs[n])
			}
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if n != len(qs) {
			t.Fatalf("frame %d: %d cells, want %d", i, n, len(qs))
		}
	}
}
