// Package wire is the frame codec pktbufd speaks on its data-plane
// TCP listener: gRPC-style length-prefixed frames, with every
// cell-carrying payload expressed in the repro/pktbuf/trace record
// format. A frame is a 1-byte type, a 4-byte big-endian payload
// length, and the payload; cell payloads are trace record streams
// (one record per cell — "a<q>" for submitted arrivals, "r<q>" for
// delivered cells, exactly the framing the batch tooling records and
// replays), and control payloads are single-line "key=value" text.
//
// The protocol is deliberately small:
//
//	client → server: Hello{Flows} · Submit(cells) · Bye
//	server → client: Welcome{Flows,IngressRing,Window} · Flows(cells:
//	    the assigned VOQ ids) · Deliver(cells) · Reject{Code,
//	    Accepted, Dropped, RetrySlots} · Drain · Bye
//
// Deliveries are strictly sequential per VOQ (a guarantee the buffer
// engine enforces), so Deliver frames carry only queue ids: a client
// reconstructs per-queue sequence numbers by counting. Reject frames
// are the admission-control half of the taxonomy: they report how
// many cells of the offending Submit frame were admitted (a prefix),
// how many were dropped, the backpressure code, and an advisory
// retry-after hint in slots. Frames from one peer are processed in
// order, so a Reject always refers to the earliest not-yet-rejected
// Submit frame.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/pktbuf"
	"repro/pktbuf/trace"
)

// Type identifies a frame.
type Type uint8

// Frame types. Bye is used in both directions: from the client it
// means "no more submits, drain me and confirm"; from the server it
// confirms the connection is fully drained and about to close.
const (
	THello Type = iota + 1
	TSubmit
	TBye
	TWelcome
	TFlows
	TDeliver
	TReject
	TDrain
	// TPing / TPong are the keepalive probe and its echo; both carry an
	// empty payload. Either side may probe; the peer must echo promptly
	// or be reaped by the prober's read deadline.
	TPing
	TPong
	// TAcks (client → server) carries the client's per-queue count of
	// cells received so far; sent with a resuming Hello so the server
	// can suppress redelivery of cells the client already holds.
	TAcks
	// TSeqs (server → client) carries the server's per-queue
	// (arrived, delivered) counter pairs; sent with a resumed Welcome so
	// the client can resubmit exactly the cells the server never saw and
	// discard exactly the redeliveries it already holds.
	TSeqs
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case THello:
		return "Hello"
	case TSubmit:
		return "Submit"
	case TBye:
		return "Bye"
	case TWelcome:
		return "Welcome"
	case TFlows:
		return "Flows"
	case TDeliver:
		return "Deliver"
	case TReject:
		return "Reject"
	case TDrain:
		return "Drain"
	case TPing:
		return "Ping"
	case TPong:
		return "Pong"
	case TAcks:
		return "Acks"
	case TSeqs:
		return "Seqs"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// MaxPayload bounds a frame payload; both sides reject larger frames
// before buffering them, so a malformed or hostile peer cannot force
// an unbounded allocation.
const MaxPayload = 1 << 20

// ErrFrame reports a malformed frame or payload.
var ErrFrame = errors.New("wire: malformed frame")

// ErrTooLarge reports a frame payload over MaxPayload.
var ErrTooLarge = errors.New("wire: frame payload too large")

// headerLen is the fixed frame header size (type + length).
const headerLen = 5

// Side selects which half of a trace record carries cells in a frame
// payload: Submit frames use the arrival half, Deliver (and Flows)
// frames use the request half, mirroring which side of the buffer the
// cells cross.
type Side int

// Sides.
const (
	Arrivals Side = iota
	Deliveries
)

// A Writer frames and writes messages to one peer. It buffers
// internally; callers must Flush after writing a batch of frames. It
// is not safe for concurrent use — route all writes for a connection
// through one goroutine.
type Writer struct {
	w   *bufio.Writer
	hdr [headerLen]byte
	// enc and tr are reused across WriteCells calls so steady-state
	// framing costs no allocation beyond bufio's buffer.
	enc bytes.Buffer
	tr  trace.Trace
	kv  []byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteFrame writes one frame.
func (w *Writer) WriteFrame(t Type, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	w.hdr[0] = byte(t)
	binary.BigEndian.PutUint32(w.hdr[1:], uint32(len(payload)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// WriteCells writes one cell-carrying frame (Submit, Deliver or
// Flows): qs, in order, encoded as trace records on the given side.
func (w *Writer) WriteCells(t Type, side Side, qs []pktbuf.Queue) error {
	if cap(w.tr.Events) < len(qs) {
		w.tr.Events = make([]trace.Event, len(qs))
	}
	w.tr.Events = w.tr.Events[:len(qs)]
	for i, q := range qs {
		ev := trace.Event{Arrival: pktbuf.None, Request: pktbuf.None}
		if side == Arrivals {
			ev.Arrival = q
		} else {
			ev.Request = q
		}
		w.tr.Events[i] = ev
	}
	w.enc.Reset()
	if err := w.tr.Write(&w.enc); err != nil {
		return err
	}
	return w.WriteFrame(t, w.enc.Bytes())
}

// Flush pushes buffered frames to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// A Reader reads frames from one peer, reusing its payload buffer:
// the payload returned by Next is valid only until the following Next
// call. It is not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next reads one frame. The returned payload aliases the reader's
// internal buffer. io.EOF is returned verbatim at a clean frame
// boundary; a connection dropped mid-frame surfaces as
// io.ErrUnexpectedEOF.
func (r *Reader) Next() (Type, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r.r, hdr[:1]); err != nil {
		if err == io.EOF {
			// Clean frame boundary: the sentinel, verbatim, by
			// contract.
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: read frame: %w", err)
	}
	if _, err := io.ReadFull(r.r, hdr[1:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("wire: read frame: %w", err)
	}
	t := Type(hdr[0])
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("wire: read frame: %w", err)
	}
	return t, r.buf, nil
}

// DecodeCells parses a cell-carrying payload (the trace record
// format) and calls fn for every cell in order. Records carrying the
// wrong side, idle records and paired records are rejected: a cell
// frame is a pure single-side stream. fn returning an error stops the
// walk and returns that error.
func DecodeCells(payload []byte, side Side, fn func(pktbuf.Queue) error) error {
	t, err := trace.Read(bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrFrame, err)
	}
	for _, ev := range t.Events {
		q := ev.Arrival
		other := ev.Request
		if side == Deliveries {
			q, other = other, q
		}
		if q == pktbuf.None || other != pktbuf.None {
			return fmt.Errorf("%w: mixed or idle record in cell frame", ErrFrame)
		}
		if err := fn(q); err != nil {
			return err
		}
	}
	return nil
}

// Hello is the client's opening message.
type Hello struct {
	// Flows is the number of VOQs the client asks to own.
	Flows int
	// Session resumes an earlier session by its token (0 = new
	// session). A resuming Hello is followed by a TAcks frame carrying
	// the client's per-queue received counts.
	Session uint64
}

// AppendTo encodes h.
func (h Hello) AppendTo(dst []byte) []byte {
	dst = append(dst, "flows="...)
	dst = strconv.AppendInt(dst, int64(h.Flows), 10)
	if h.Session != 0 {
		dst = append(dst, " session="...)
		dst = strconv.AppendUint(dst, h.Session, 10)
	}
	return dst
}

// ParseHello decodes a Hello payload.
func ParseHello(p []byte) (Hello, error) {
	kv, err := parseKV(p)
	if err != nil {
		return Hello{}, err
	}
	f, ok := kv["flows"]
	if !ok || f <= 0 {
		return Hello{}, fmt.Errorf("%w: Hello needs flows>0", ErrFrame)
	}
	return Hello{Flows: int(f), Session: kv["session"]}, nil
}

// Welcome is the server's handshake reply; the assigned VOQ ids
// follow in a Flows frame.
type Welcome struct {
	// Flows is the number of VOQs assigned.
	Flows int
	// IngressRing is the connection's ingress ring capacity in cells:
	// the largest burst the server will buffer ahead of the serving
	// loop before rejecting with RejectIngressFull.
	IngressRing int
	// Window is the connection's in-system cell cap: submitted cells
	// not yet delivered back. A client that keeps
	// submitted−delivered < Window is never rejected with
	// RejectWindowFull.
	Window int
	// Session is the token naming this session for later resumption.
	Session uint64
	// Resumed reports that the Hello's session token was recognized and
	// the session's flows and delivery cursors were reattached; a
	// resumed Welcome is followed by a TSeqs frame instead of TFlows.
	Resumed bool
}

// AppendTo encodes w.
func (w Welcome) AppendTo(dst []byte) []byte {
	dst = append(dst, "flows="...)
	dst = strconv.AppendInt(dst, int64(w.Flows), 10)
	dst = append(dst, " ring="...)
	dst = strconv.AppendInt(dst, int64(w.IngressRing), 10)
	dst = append(dst, " window="...)
	dst = strconv.AppendInt(dst, int64(w.Window), 10)
	dst = append(dst, " session="...)
	dst = strconv.AppendUint(dst, w.Session, 10)
	if w.Resumed {
		dst = append(dst, " resumed=1"...)
	}
	return dst
}

// ParseWelcome decodes a Welcome payload.
func ParseWelcome(p []byte) (Welcome, error) {
	kv, err := parseKV(p)
	if err != nil {
		return Welcome{}, err
	}
	return Welcome{
		Flows:       int(kv["flows"]),
		IngressRing: int(kv["ring"]),
		Window:      int(kv["window"]),
		Session:     kv["session"],
		Resumed:     kv["resumed"] != 0,
	}, nil
}

// Code names a backpressure condition in a Reject frame. The serve
// package maps codes onto the module's typed error taxonomy
// (repro/pktbuf/router.ErrIngressFull, repro/pktbuf.ErrBufferFull, …)
// so clients dispatch with errors.Is.
type Code string

// Reject codes.
const (
	// CodeIngressFull: the submit burst overran the connection's
	// ingress ring (Welcome.IngressRing). Transient — retry after the
	// hint.
	CodeIngressFull Code = "ingress_full"
	// CodeWindowFull: the connection hit its in-system cell cap
	// (Welcome.Window). Retry after deliveries free the window.
	CodeWindowFull Code = "window_full"
	// CodeDraining: the server is draining for shutdown and admits
	// nothing new.
	CodeDraining Code = "draining"
	// CodeBadFlow: a submitted cell named a VOQ the connection does
	// not own. Not transient — fix the client.
	CodeBadFlow Code = "bad_flow"
	// CodeSessionUnknown: a resuming Hello named a session token the
	// server does not hold (expired, reaped, or from before the last
	// un-checkpointed restart). Not transient — the client must start a
	// fresh session and resubmit from its own records.
	CodeSessionUnknown Code = "session_unknown"
)

// Reject reports that the tail of a Submit frame was not admitted.
type Reject struct {
	// Code is the backpressure condition.
	Code Code
	// Accepted and Dropped partition the offending Submit frame: its
	// first Accepted cells were admitted, the remaining Dropped cells
	// were not (admission stops at the first failure).
	Accepted, Dropped int
	// RetrySlots is an advisory hint: roughly how many slots of
	// serving-loop progress should free the resource.
	RetrySlots uint64
}

// AppendTo encodes r.
func (r Reject) AppendTo(dst []byte) []byte {
	dst = append(dst, "code="...)
	dst = append(dst, r.Code...)
	dst = append(dst, " ok="...)
	dst = strconv.AppendInt(dst, int64(r.Accepted), 10)
	dst = append(dst, " dropped="...)
	dst = strconv.AppendInt(dst, int64(r.Dropped), 10)
	dst = append(dst, " retry="...)
	return strconv.AppendUint(dst, r.RetrySlots, 10)
}

// ParseReject decodes a Reject payload.
func ParseReject(p []byte) (Reject, error) {
	var code Code
	rest := make([]byte, 0, len(p))
	for _, f := range strings.Fields(string(p)) {
		if c, ok := strings.CutPrefix(f, "code="); ok {
			code = Code(c)
			continue
		}
		if len(rest) > 0 {
			rest = append(rest, ' ')
		}
		rest = append(rest, f...)
	}
	if code == "" {
		return Reject{}, fmt.Errorf("%w: Reject needs a code", ErrFrame)
	}
	kv, err := parseKV(rest)
	if err != nil {
		return Reject{}, err
	}
	return Reject{
		Code:       code,
		Accepted:   int(kv["ok"]),
		Dropped:    int(kv["dropped"]),
		RetrySlots: kv["retry"],
	}, nil
}

// AppendSeqs encodes a per-queue counter vector (a TAcks or TSeqs
// payload): one "q=count" field per queue, in the order given.
func AppendSeqs(dst []byte, qs []pktbuf.Queue, counts []uint64) []byte {
	for i, q := range qs {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = strconv.AppendInt(dst, int64(q), 10)
		dst = append(dst, '=')
		dst = strconv.AppendUint(dst, counts[i], 10)
	}
	return dst
}

// ParseSeqs decodes a per-queue counter vector, calling fn once per
// queue in payload order. fn returning an error stops the walk and
// returns that error.
func ParseSeqs(p []byte, fn func(q pktbuf.Queue, n uint64) error) error {
	for _, f := range strings.Fields(string(p)) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("%w: bad seq field %q", ErrFrame, f)
		}
		q, err := strconv.ParseInt(k, 10, 32)
		if err != nil || q < 0 {
			return fmt.Errorf("%w: bad seq queue %q", ErrFrame, f)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("%w: bad seq count %q", ErrFrame, f)
		}
		if err := fn(pktbuf.Queue(q), n); err != nil {
			return err
		}
	}
	return nil
}

// AppendSeqPairs encodes a per-queue (arrived, delivered) counter
// vector (a TSeqs payload): one "q=arrived:delivered" field per queue,
// in the order given.
func AppendSeqPairs(dst []byte, qs []pktbuf.Queue, arrived, delivered []uint64) []byte {
	for i, q := range qs {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = strconv.AppendInt(dst, int64(q), 10)
		dst = append(dst, '=')
		dst = strconv.AppendUint(dst, arrived[i], 10)
		dst = append(dst, ':')
		dst = strconv.AppendUint(dst, delivered[i], 10)
	}
	return dst
}

// ParseSeqPairs decodes a per-queue (arrived, delivered) counter
// vector, calling fn once per queue in payload order. fn returning an
// error stops the walk and returns that error.
func ParseSeqPairs(p []byte, fn func(q pktbuf.Queue, arrived, delivered uint64) error) error {
	for _, f := range strings.Fields(string(p)) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("%w: bad seq field %q", ErrFrame, f)
		}
		q, err := strconv.ParseInt(k, 10, 32)
		if err != nil || q < 0 {
			return fmt.Errorf("%w: bad seq queue %q", ErrFrame, f)
		}
		av, dv, ok := strings.Cut(v, ":")
		if !ok {
			return fmt.Errorf("%w: bad seq pair %q", ErrFrame, f)
		}
		a, err := strconv.ParseUint(av, 10, 64)
		if err != nil {
			return fmt.Errorf("%w: bad seq count %q", ErrFrame, f)
		}
		d, err := strconv.ParseUint(dv, 10, 64)
		if err != nil {
			return fmt.Errorf("%w: bad seq count %q", ErrFrame, f)
		}
		if err := fn(pktbuf.Queue(q), a, d); err != nil {
			return err
		}
	}
	return nil
}

// parseKV parses "key=value" fields with unsigned integer values.
func parseKV(p []byte) (map[string]uint64, error) {
	kv := make(map[string]uint64)
	for _, f := range strings.Fields(string(p)) {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("%w: bad field %q", ErrFrame, f)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad value %q", ErrFrame, f)
		}
		kv[k] = n
	}
	return kv, nil
}
