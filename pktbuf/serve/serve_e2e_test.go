package serve_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pktbuf"
	"repro/pktbuf/router"
	"repro/pktbuf/serve"
	"repro/pktbuf/serve/wire"
	"repro/pktbuf/sim"
	"repro/pktbuf/trace"
)

func bufCfg(queues int) pktbuf.Config {
	return pktbuf.Config{Queues: queues, LineRate: pktbuf.OC768, Granularity: 2, Banks: 64}
}

// startServer builds a server, serves a loopback listener, and wires
// cleanup. It returns the server and the data-plane address.
func startServer(t *testing.T, cfg serve.Config) (*serve.Server, string) {
	t.Helper()
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServeEndToEnd(t *testing.T) {
	srv, addr := startServer(t, serve.Config{Buffer: bufCfg(8)})
	c, err := serve.Dial(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Flows()); got != 4 {
		t.Fatalf("assigned %d flows, want 4", got)
	}
	w := c.Welcome()
	if w.Flows != 4 || w.IngressRing <= 0 || w.Window <= 0 {
		t.Fatalf("welcome = %+v", w)
	}
	// Deliveries must come back strictly sequential per VOQ.
	lastSeq := make(map[pktbuf.Queue]uint64)
	c.OnDeliver = func(cell pktbuf.Cell) {
		if want := lastSeq[cell.Queue]; cell.Seq != want {
			t.Errorf("queue %d delivered seq %d, want %d", cell.Queue, cell.Seq, want)
		}
		lastSeq[cell.Queue] = cell.Seq + 1
	}
	const perFlow = 50
	flows := c.Flows()
	burst := make([]pktbuf.Queue, 0, 16)
	for i := 0; i < perFlow; i++ {
		for _, q := range flows {
			burst = append(burst, q)
			if len(burst) == cap(burst) {
				if err := c.Submit(burst); err != nil {
					t.Fatal(err)
				}
				burst = burst[:0]
			}
		}
	}
	if err := c.Submit(burst); err != nil {
		t.Fatal(err)
	}
	total := uint64(perFlow * len(flows))
	waitFor(t, 10*time.Second, "all deliveries", func() bool {
		return c.Stats().Delivered == total
	})
	if st := c.Stats(); st.Rejected != 0 || st.InFlight != 0 {
		t.Fatalf("client stats = %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Bye(ctx); err != nil {
		t.Fatalf("Bye: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	st := srv.BufferStats()
	if st.Arrivals != total || st.Deliveries != total {
		t.Fatalf("server stats = %+v, want %d arrivals and deliveries", st, total)
	}
	if adm := srv.Admission(); adm.Admitted != total || adm.Rejected() != 0 {
		t.Fatalf("admission = %+v", adm)
	}
}

// TestServedRunMatchesReplay is the acceptance-criteria equivalence
// gate: a served run's engine statistics must be bit-identical to a
// pktbuf/sim replay of the recorded per-slot stimulus
// (FastForwardedSlots aside, which is excluded from equivalence by
// definition).
func TestServedRunMatchesReplay(t *testing.T) {
	cfg := serve.Config{Buffer: bufCfg(16), Record: true}
	srv, addr := startServer(t, cfg)
	clients := make([]*serve.Client, 2)
	for i := range clients {
		c, err := serve.Dial(addr, 4)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	for round := 0; round < 40; round++ {
		for i, c := range clients {
			flows := c.Flows()
			burst := []pktbuf.Queue{
				flows[round%len(flows)],
				flows[(round+i)%len(flows)],
				flows[(round*3+i)%len(flows)],
			}
			if err := c.Submit(burst); err != nil {
				t.Fatal(err)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, c := range clients {
		if err := c.Bye(ctx); err != nil {
			t.Fatalf("Bye: %v", err)
		}
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	served := srv.BufferStats()
	tr := srv.Trace()
	if tr == nil || len(tr.Events) == 0 {
		t.Fatal("no trace recorded")
	}

	// Replay the stimulus through the batch sim against a fresh,
	// identically configured engine.
	buf, err := pktbuf.New(cfg.Buffer)
	if err != nil {
		t.Fatal(err)
	}
	arr, req := trace.NewReplayer(tr).Halves()
	runner := &sim.Runner{Buffer: buf, Arrivals: arr, Requests: req}
	res, err := runner.RunBatch(uint64(len(tr.Events)), 512)
	if err != nil {
		t.Fatal(err)
	}
	replayed := res.Stats
	served.FastForwardedSlots = 0
	replayed.FastForwardedSlots = 0
	if served != replayed {
		t.Fatalf("served run and replay diverged:\nserved:   %+v\nreplayed: %+v", served, replayed)
	}
	if served.Deliveries == 0 {
		t.Fatal("equivalence test delivered nothing")
	}
}

// rawSession is a hand-driven wire session for tests that must
// violate the polite Client's pacing.
type rawSession struct {
	t  *testing.T
	nc net.Conn
	w  *wire.Writer
	r  *wire.Reader

	flows     []pktbuf.Queue
	welcome   wire.Welcome
	delivered int
	rejects   []wire.Reject
}

func rawDial(t *testing.T, addr string, flows int) *rawSession {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	s := &rawSession{t: t, nc: nc, w: wire.NewWriter(nc), r: wire.NewReader(nc)}
	if err := s.w.WriteFrame(wire.THello, wire.Hello{Flows: flows}.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	if err := s.w.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, p, err := s.r.Next()
	if err != nil || typ != wire.TWelcome {
		t.Fatalf("handshake frame 1: %v %v", typ, err)
	}
	if s.welcome, err = wire.ParseWelcome(p); err != nil {
		t.Fatal(err)
	}
	typ, p, err = s.r.Next()
	if err != nil || typ != wire.TFlows {
		t.Fatalf("handshake frame 2: %v %v", typ, err)
	}
	if err := wire.DecodeCells(p, wire.Deliveries, func(q pktbuf.Queue) error {
		s.flows = append(s.flows, q)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func (s *rawSession) submit(qs []pktbuf.Queue) {
	s.t.Helper()
	if err := s.w.WriteCells(wire.TSubmit, wire.Arrivals, qs); err != nil {
		s.t.Fatal(err)
	}
	if err := s.w.Flush(); err != nil {
		s.t.Fatal(err)
	}
}

// pump reads one frame, folding deliveries and rejects into the
// session counters.
func (s *rawSession) pump() {
	s.t.Helper()
	s.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, p, err := s.r.Next()
	if err != nil {
		s.t.Fatalf("pump: %v", err)
	}
	switch typ {
	case wire.TDeliver:
		if err := wire.DecodeCells(p, wire.Deliveries, func(pktbuf.Queue) error {
			s.delivered++
			return nil
		}); err != nil {
			s.t.Fatal(err)
		}
	case wire.TReject:
		rej, err := wire.ParseReject(p)
		if err != nil {
			s.t.Fatal(err)
		}
		s.rejects = append(s.rejects, rej)
	case wire.TDrain, wire.TBye:
		// Shutdown notices; nothing to fold.
	default:
		s.t.Fatalf("pump: unexpected %v frame", typ)
	}
}

// TestAdmissionBackpressure overruns each bounded admission resource
// with raw frames and verifies the typed rejection plus a successful
// resume once the backlog drains — the serving daemon's backpressure
// contract end to end.
func TestAdmissionBackpressure(t *testing.T) {
	cases := []struct {
		name string
		cfg  serve.Config
		// burst builds the overrunning submit from the assigned flows.
		burst    func(flows []pktbuf.Queue) []pktbuf.Queue
		wantCode wire.Code
		wantErr  error
	}{
		{
			name: "ingress_full",
			cfg: serve.Config{
				Buffer:      bufCfg(8),
				IngressRing: 8,
				Batch:       1,
				TickEvery:   200 * time.Microsecond,
			},
			burst: func(flows []pktbuf.Queue) []pktbuf.Queue {
				qs := make([]pktbuf.Queue, 64)
				for i := range qs {
					qs[i] = flows[i%len(flows)]
				}
				return qs
			},
			wantCode: wire.CodeIngressFull,
			wantErr:  router.ErrIngressFull,
		},
		{
			name: "window_full",
			cfg: serve.Config{
				Buffer:      bufCfg(8),
				IngressRing: 256,
				Window:      4,
				// Pace the loop so the window cannot drain mid-burst.
				Batch:     1,
				TickEvery: 200 * time.Microsecond,
			},
			burst: func(flows []pktbuf.Queue) []pktbuf.Queue {
				qs := make([]pktbuf.Queue, 16)
				for i := range qs {
					qs[i] = flows[i%len(flows)]
				}
				return qs
			},
			wantCode: wire.CodeWindowFull,
			wantErr:  pktbuf.ErrBufferFull,
		},
		{
			name: "bad_flow",
			cfg:  serve.Config{Buffer: bufCfg(8)},
			burst: func(flows []pktbuf.Queue) []pktbuf.Queue {
				return []pktbuf.Queue{flows[0], 7777}
			},
			wantCode: wire.CodeBadFlow,
			wantErr:  router.ErrBadFlow,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, addr := startServer(t, tc.cfg)
			s := rawDial(t, addr, 2)
			burst := tc.burst(s.flows)
			s.submit(burst)
			for len(s.rejects) == 0 {
				s.pump()
			}
			rej := s.rejects[0]
			if rej.Code != tc.wantCode {
				t.Fatalf("reject code = %q, want %q", rej.Code, tc.wantCode)
			}
			if !errors.Is(serve.CodeErr(rej.Code), tc.wantErr) {
				t.Fatalf("CodeErr(%q) = %v, not %v", rej.Code, serve.CodeErr(rej.Code), tc.wantErr)
			}
			if rej.Accepted+rej.Dropped != len(burst) {
				t.Fatalf("reject partitions %d+%d cells, burst had %d",
					rej.Accepted, rej.Dropped, len(burst))
			}
			if rej.Dropped == 0 {
				t.Fatal("reject dropped nothing")
			}
			if tc.wantCode != wire.CodeBadFlow && rej.RetrySlots == 0 {
				t.Fatalf("reject carries no retry hint: %+v", rej)
			}
			// Drain: every admitted cell must still be delivered.
			for s.delivered < rej.Accepted {
				s.pump()
			}
			// Resume: a polite burst after the drain is admitted in full
			// and delivered — the rejection was backpressure, not a wedged
			// connection.
			resume := []pktbuf.Queue{s.flows[0], s.flows[1]}
			s.submit(resume)
			for s.delivered < rej.Accepted+len(resume) {
				s.pump()
			}
			if len(s.rejects) != 1 {
				t.Fatalf("resume was rejected: %+v", s.rejects[1:])
			}
			got := srv.Admission()
			if got.Rejected() != uint64(rej.Dropped) {
				t.Fatalf("server counted %d rejects, want %d", got.Rejected(), rej.Dropped)
			}
		})
	}
}

// TestGracefulDrain covers the shutdown path: Drain is announced,
// in-flight cells are delivered, new submits are refused with the
// draining code, and the server confirms each connection with a final
// Bye.
func TestGracefulDrain(t *testing.T) {
	srv, addr := startServer(t, serve.Config{Buffer: bufCfg(8)})
	c, err := serve.Dial(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	flows := c.Flows()
	for i := 0; i < 20; i++ {
		if err := c.Submit([]pktbuf.Queue{flows[i%2]}); err != nil {
			t.Fatal(err)
		}
	}
	// Make sure the server holds the cells before draining starts, so
	// the drain actually has work to flush.
	waitFor(t, 10*time.Second, "server admission", func() bool {
		return srv.Admission().Admitted == 20
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client never saw the server close")
	}
	if !c.Draining() {
		t.Fatal("client never saw Drain")
	}
	if st := c.Stats(); st.Delivered != 20 || st.InFlight != 0 {
		t.Fatalf("client stats after drain = %+v", st)
	}
	if err := c.Submit([]pktbuf.Queue{flows[0]}); !errors.Is(err, serve.ErrDraining) && err == nil {
		t.Fatalf("submit after drain = %v, want error", err)
	}
}

// TestDrainingRejectsRawSubmit pins the reject code a client sees
// when it submits into a draining server. A paced sibling connection
// keeps cells in flight so the drain window stays open while the raw
// session submits.
func TestDrainingRejectsRawSubmit(t *testing.T) {
	srv, addr := startServer(t, serve.Config{
		Buffer:    bufCfg(64),
		TickEvery: 500 * time.Microsecond,
	})
	// Sibling with a deep backlog: draining it takes a few hundred
	// paced slots.
	sib, err := serve.Dial(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	burst := make([]pktbuf.Queue, 0, 200)
	for i := 0; i < 200; i++ {
		burst = append(burst, sib.Flows()[i%4])
	}
	if err := sib.Submit(burst); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "sibling admission", func() bool {
		return srv.Admission().Admitted == 200
	})
	s := rawDial(t, addr, 1)
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	// The health endpoint flips to "draining" once the flag is set;
	// from then on every new cell must be refused.
	h := srv.Handler()
	waitFor(t, 5*time.Second, "draining health state", func() bool {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code == 503
	})
	s.submit([]pktbuf.Queue{s.flows[0]})
	for len(s.rejects) == 0 {
		s.pump()
	}
	if got := s.rejects[0].Code; got != wire.CodeDraining {
		t.Fatalf("reject code while draining = %q, want %q", got, wire.CodeDraining)
	}
	if !errors.Is(serve.CodeErr(wire.CodeDraining), serve.ErrDraining) {
		t.Fatal("CodeDraining does not map to ErrDraining")
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := sib.Stats(); st.Delivered != 200 {
		t.Fatalf("sibling delivered %d cells through the drain, want 200", st.Delivered)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	srv, addr := startServer(t, serve.Config{Buffer: bufCfg(8)})
	c, err := serve.Dial(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	flows := c.Flows()
	for i := 0; i < 10; i++ {
		if err := c.Submit([]pktbuf.Queue{flows[i%2]}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "deliveries", func() bool { return c.Stats().Delivered == 10 })

	h := srv.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"pktbufd_arrivals_total 10",
		"pktbufd_deliveries_total 10",
		"pktbufd_admitted_cells_total 10",
		"pktbufd_admission_rejects_total 0",
		fmt.Sprintf("pktbufd_connections %d", 1),
		"# TYPE pktbufd_serving_batch_duration_seconds histogram",
		"pktbufd_serving_batch_duration_seconds_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c.Bye(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("healthz after shutdown = %d, want 503", rec.Code)
	}
}
